// E8 (§4.3): graph patterns — evaluating comma-separated path patterns and
// joining on shared singletons, against the equivalent single-path
// formulation. The join formulation evaluates each leg over the whole graph
// before joining, so it pays for unanchored legs; the single path pattern
// propagates bindings left to right.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace gpml {
namespace {

using bench::RunOrDie;

PropertyGraph& Graph() {
  static PropertyGraph* g = new PropertyGraph([] {
    FraudGraphOptions options;
    options.num_accounts = 400;
    return MakeFraudGraph(options);
  }());
  return *g;
}

void BM_Sec43_SinglePathFormulation(benchmark::State& state) {
  PropertyGraph& g = Graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(
        g,
        "MATCH (p:Phone WHERE p.isBlocked='yes')~[:hasPhone]~(s:Account)"
        "-[t:Transfer WHERE t.amount>1M]->()"));
  }
}
BENCHMARK(BM_Sec43_SinglePathFormulation)->Unit(benchmark::kMillisecond);

void BM_Sec43_TwoDeclJoin(benchmark::State& state) {
  PropertyGraph& g = Graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(
        g,
        "MATCH (p:Phone WHERE p.isBlocked='yes')~[:hasPhone]~(s:Account), "
        "(s)-[t:Transfer WHERE t.amount>1M]->()"));
  }
}
BENCHMARK(BM_Sec43_TwoDeclJoin)->Unit(benchmark::kMillisecond);

void BM_Sec43_ThreeDeclJoin(benchmark::State& state) {
  // The paper's three-legged pattern out of s.
  PropertyGraph& g = Graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(
        g,
        "MATCH (s:Account)-[:signInWithIP]-(), "
        "(s)-[t:Transfer WHERE t.amount>1M]->(), "
        "(s)~[:hasPhone]~(p:Phone WHERE p.isBlocked='yes')"));
  }
}
BENCHMARK(BM_Sec43_ThreeDeclJoin)->Unit(benchmark::kMillisecond);

void BM_Sec43_CrossProductGuarded(benchmark::State& state) {
  // Disjoint decls: pure cross product of two small sets.
  PropertyGraph& g = Graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(
        g, "MATCH (c:City WHERE c.name='Ankh-Morpork'), "
           "(p:Phone WHERE p.isBlocked='yes')"));
  }
}
BENCHMARK(BM_Sec43_CrossProductGuarded);

}  // namespace
}  // namespace gpml
