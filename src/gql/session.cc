#include "gql/session.h"

#include "gql/result_table.h"
#include "parser/parser.h"
#include "planner/explain.h"

namespace gpml {

Status Session::UseGraph(const std::string& name) {
  GPML_ASSIGN_OR_RETURN(graph_, catalog_.GetGraph(name));
  return Status::OK();
}

Result<Table> Session::Execute(const std::string& statement) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  std::string rest;
  if (planner::StripExplainPrefix(statement, &rest)) {
    GPML_ASSIGN_OR_RETURN(std::string text, Explain(rest));
    return planner::ExplainTable(text);
  }
  GPML_ASSIGN_OR_RETURN(MatchStatement stmt, ParseStatement(statement));
  Engine engine(*graph_, options_);
  GPML_ASSIGN_OR_RETURN(MatchOutput output, engine.Match(stmt.pattern));
  if (!stmt.has_return) {
    return ProjectAllVariables(output, *graph_);
  }
  return ProjectRows(output, *graph_, stmt.return_items,
                     stmt.return_distinct);
}

Result<MatchOutput> Session::Match(const std::string& match_text) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  Engine engine(*graph_, options_);
  return engine.Match(match_text);
}

Result<std::string> Session::Explain(const std::string& statement) const {
  if (graph_ == nullptr) {
    return Status::InvalidArgument("no graph selected; call UseGraph first");
  }
  std::string text = statement;
  std::string rest;
  if (planner::StripExplainPrefix(text, &rest)) text = rest;
  GPML_ASSIGN_OR_RETURN(MatchStatement stmt, ParseStatement(text));
  Engine engine(*graph_, options_);
  return engine.Explain(stmt.pattern);
}

}  // namespace gpml
