// E4 (Figure 4): the flagship fraud query — unblocked and blocked accounts
// co-located in one city, connected by a chain of transfers — at increasing
// graph scale, for the GPML engine and the classic CRPQ baseline (§3's
// SPARQL-style endpoint semantics).
//
// Expected shape (no absolute numbers exist in the paper): both scale
// polynomially; the CRPQ baseline is cheaper since it never materializes
// paths — exactly the §5/§8 finiteness discussion.

#include <benchmark/benchmark.h>

#include "baseline/crpq.h"
#include "bench_util.h"

namespace gpml {
namespace {

using bench::RunOrDie;

PropertyGraph& Graph(int accounts) {
  static auto* cache = new std::map<int, PropertyGraph>();
  auto it = cache->find(accounts);
  if (it == cache->end()) {
    FraudGraphOptions options;
    options.num_accounts = accounts;
    options.num_cities = std::max(2, accounts / 100);
    it = cache->emplace(accounts, MakeFraudGraph(options)).first;
  }
  return it->second;
}

void BM_Fig4_Gpml(benchmark::State& state) {
  PropertyGraph& g = Graph(static_cast<int>(state.range(0)));
  const std::string query =
      "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
      "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
      "(y:Account WHERE y.isBlocked='yes'), "
      "ANY (x)-[:Transfer]->+(y)";
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunOrDie(g, query);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
// The ANY selector enumerates one witness per reachable endpoint pair
// before the join narrows to co-located pairs, so the 1000-account point
// exceeds the (deliberate) match guard: the sweep stops at 300. The CRPQ
// baseline below, computing reachability only, scales further — exactly
// the asymmetry §5/§8 discuss.
BENCHMARK(BM_Fig4_Gpml)->Arg(100)->Arg(300)->Unit(
    benchmark::kMillisecond);

void BM_Fig4_CrpqBaseline(benchmark::State& state) {
  PropertyGraph& g = Graph(static_cast<int>(state.range(0)));
  baseline::CrpqQuery q;
  q.atoms = {{"x", "isLocatedIn", "g"},
             {"y", "isLocatedIn", "g"},
             {"x", "Transfer+", "y"}};
  q.filters = {{"x", "Account", "isBlocked", Value::String("no")},
               {"y", "Account", "isBlocked", Value::String("yes")},
               {"g", "", "name", Value::String("Ankh-Morpork")}};
  q.output_vars = {"x", "y"};
  size_t rows = 0;
  for (auto _ : state) {
    Result<Table> t = baseline::EvalCrpq(g, q);
    if (!t.ok()) std::abort();
    rows = t->num_rows();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig4_CrpqBaseline)->Arg(100)->Arg(300)->Arg(1000)->Unit(
    benchmark::kMillisecond);

void BM_Fig4_GpmlWithShortestWitness(benchmark::State& state) {
  // Variant returning one witness path per pair (ANY SHORTEST), the
  // Cypher-style rendition of §3.
  PropertyGraph& g = Graph(static_cast<int>(state.range(0)));
  const std::string query =
      "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
      "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
      "(y:Account WHERE y.isBlocked='yes'), "
      "ANY SHORTEST p = (x)-[:Transfer]->+(y)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(g, query));
  }
}
BENCHMARK(BM_Fig4_GpmlWithShortestWitness)->Arg(100)->Arg(300)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace gpml
