#ifndef GPML_CATALOG_CATALOG_H_
#define GPML_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "graph/property_graph.h"

namespace gpml {

/// A named collection of relational tables and property graphs — the shared
/// environment of Figure 9 in which the GPML processor runs. SQL/PGQ
/// registers base tables and derives graphs from them (graph views); GQL
/// registers graphs directly. Graphs are owned by shared_ptr so sessions and
/// long-running queries can hold them independently of catalog mutations.
class Catalog {
 public:
  Catalog() = default;

  Status AddTable(std::string name, Table table);
  Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  Status AddGraph(std::string name, PropertyGraph graph);
  Result<std::shared_ptr<const PropertyGraph>> GetGraph(
      const std::string& name) const;
  bool HasGraph(const std::string& name) const {
    return graphs_.count(name) > 0;
  }

  std::vector<std::string> TableNames() const;
  std::vector<std::string> GraphNames() const;

 private:
  std::map<std::string, Table> tables_;
  std::map<std::string, std::shared_ptr<const PropertyGraph>> graphs_;
};

}  // namespace gpml

#endif  // GPML_CATALOG_CATALOG_H_
