#ifndef GPML_SERVER_WORKER_POOL_H_
#define GPML_SERVER_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpml {
namespace server {

/// A fixed-size thread pool with a BOUNDED queue — the server's
/// backpressure mechanism (docs/server.md). Submit never blocks and never
/// queues unboundedly: when every worker is busy and the queue is at
/// max_queue, it returns false and the caller turns that into a
/// structured SERVER_SATURATED error instead of letting latency (and
/// memory) grow without bound.
///
/// Shutdown drains: every task accepted before Shutdown runs to
/// completion before the workers join — the graceful-shutdown half of the
/// server contract (in-flight executions finish; new work is rejected).
class WorkerPool {
 public:
  WorkerPool(size_t num_threads, size_t max_queue);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `task`. False (task not accepted) when the queue is full or
  /// the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Like Submit, but stamps the enqueue time and hands the task its own
  /// queue wait (milliseconds between submission and worker pickup) — the
  /// server's `queue` span. Without this, execution spans start at worker
  /// pickup and queue wait is invisible in traces and slow-query entries.
  bool SubmitTimed(std::function<void(double queue_ms)> task);

  /// Rejects new submissions, runs everything already accepted, joins the
  /// workers. Idempotent.
  void Shutdown();

  /// Tasks waiting (not yet started). Running tasks are not counted.
  size_t queue_depth() const;
  /// Tasks currently executing.
  size_t active() const;
  size_t num_threads() const { return threads_.size(); }
  size_t max_queue() const { return max_queue_; }

 private:
  /// A queued task plus its enqueue timestamp (monotonic microseconds);
  /// the worker computes the queue wait at pickup.
  struct QueuedTask {
    std::function<void(double queue_ms)> fn;
    uint64_t enqueued_us = 0;
  };

  void WorkerLoop();
  bool Enqueue(QueuedTask task);

  const size_t max_queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        // Signals workers: work or stop.
  std::condition_variable idle_cv_;   // Signals Shutdown: all drained.
  std::deque<QueuedTask> queue_;
  size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace server
}  // namespace gpml

#endif  // GPML_SERVER_WORKER_POOL_H_
