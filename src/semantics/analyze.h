#ifndef GPML_SEMANTICS_ANALYZE_H_
#define GPML_SEMANTICS_ANALYZE_H_

#include <map>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/result.h"

namespace gpml {

/// Everything the engine and the hosts need to know about one variable of a
/// normalized graph pattern.
struct VarInfo {
  enum class Kind { kNode, kEdge, kPath };

  std::string name;
  Kind kind = Kind::kNode;
  bool anonymous = false;     // Introduced by normalization ($n1, $e2).
  int depth = 0;              // Quantifiers enclosing the declaration.
  bool group = false;         // depth > 0: binds once per iteration (§4.4).
  bool conditional = false;   // May stay unbound (§4.6): under `?`, or not
                              // declared in every union/alternation branch.
  std::vector<int> decls;     // Indices of path declarations declaring it.
};

/// Result of semantic analysis over a *normalized* graph pattern.
class Analysis {
 public:
  const std::map<std::string, VarInfo>& variables() const { return vars_; }

  bool Has(const std::string& name) const { return vars_.count(name) > 0; }
  const VarInfo& Get(const std::string& name) const {
    return vars_.at(name);
  }

 private:
  friend class AnalyzerImpl;
  std::map<std::string, VarInfo> vars_;
};

/// Validates the variable rules of §4.4, §4.6 and §4.7 on a normalized
/// pattern and computes per-variable facts:
///
///  * a variable is used consistently as node, edge, or path variable;
///  * a variable is not declared both inside and outside a quantifier;
///  * implicit equi-joins on conditional singletons are rejected (§4.6);
///  * SAME / ALL_DIFFERENT arguments are unconditional singletons (§4.7);
///  * group variables referenced across their quantifier are only used
///    under aggregation (§4.4, "crossing the quantifier");
///  * aggregates are rejected in inline node/edge predicates;
///  * every variable referenced in a predicate or RETURN item is declared.
Result<Analysis> Analyze(const GraphPattern& normalized);

}  // namespace gpml

#endif  // GPML_SEMANTICS_ANALYZE_H_
