#include "parser/parser.h"

#include <gtest/gtest.h>

#include "ast/print.h"

namespace gpml {
namespace {

GraphPattern MustParse(const std::string& text) {
  Result<GraphPattern> g = ParseGraphPattern(text);
  EXPECT_TRUE(g.ok()) << text << " -> " << g.status();
  return g.ok() ? *g : GraphPattern{};
}

const PathPattern& Pattern(const GraphPattern& g, size_t i = 0) {
  return *g.paths[i].pattern;
}

TEST(ParserTest, MinimalNodePattern) {
  GraphPattern g = MustParse("MATCH ()");
  ASSERT_EQ(g.paths.size(), 1u);
  const PathPattern& p = Pattern(g);
  ASSERT_EQ(p.elements.size(), 1u);
  EXPECT_EQ(p.elements[0].kind, PathElement::Kind::kNode);
  EXPECT_TRUE(p.elements[0].node.var.empty());
}

TEST(ParserTest, NodeWithVarLabelWhere) {
  GraphPattern g =
      MustParse("MATCH (x:Account WHERE x.isBlocked='no')");
  const NodePattern& n = Pattern(g).elements[0].node;
  EXPECT_EQ(n.var, "x");
  ASSERT_NE(n.labels, nullptr);
  EXPECT_EQ(n.labels->ToString(), "Account");
  ASSERT_NE(n.where, nullptr);
  EXPECT_EQ(n.where->ToString(), "x.isBlocked = 'no'");
}

TEST(ParserTest, LabelExpressionOperators) {
  GraphPattern g = MustParse("MATCH (x:Account|IP) (y:!%) (z:(A&B)|C)");
  const PathPattern& p = Pattern(g);
  EXPECT_EQ(p.elements[0].node.labels->ToString(), "Account|IP");
  EXPECT_EQ(p.elements[1].node.labels->ToString(), "!%");
  EXPECT_EQ(p.elements[2].node.labels->ToString(), "A&B|C");
}

TEST(ParserTest, AllSevenEdgeOrientations) {
  struct Case {
    const char* text;
    EdgeOrientation orientation;
  };
  const Case cases[] = {
      {"MATCH (a)<-[e]-(b)", EdgeOrientation::kLeft},
      {"MATCH (a)~[e]~(b)", EdgeOrientation::kUndirected},
      {"MATCH (a)-[e]->(b)", EdgeOrientation::kRight},
      {"MATCH (a)<~[e]~(b)", EdgeOrientation::kLeftOrUndirected},
      {"MATCH (a)~[e]~>(b)", EdgeOrientation::kUndirectedOrRight},
      {"MATCH (a)<-[e]->(b)", EdgeOrientation::kLeftOrRight},
      {"MATCH (a)-[e]-(b)", EdgeOrientation::kAny},
  };
  for (const Case& c : cases) {
    GraphPattern g = MustParse(c.text);
    const PathPattern& p = Pattern(g);
    ASSERT_EQ(p.elements.size(), 3u) << c.text;
    EXPECT_EQ(p.elements[1].edge.orientation, c.orientation) << c.text;
    EXPECT_EQ(p.elements[1].edge.var, "e") << c.text;
  }
}

TEST(ParserTest, AbbreviatedEdgeOrientations) {
  struct Case {
    const char* text;
    EdgeOrientation orientation;
  };
  const Case cases[] = {
      {"MATCH (a)<-(b)", EdgeOrientation::kLeft},
      {"MATCH (a)~(b)", EdgeOrientation::kUndirected},
      {"MATCH (a)->(b)", EdgeOrientation::kRight},
      {"MATCH (a)<~(b)", EdgeOrientation::kLeftOrUndirected},
      {"MATCH (a)~>(b)", EdgeOrientation::kUndirectedOrRight},
      {"MATCH (a)<->(b)", EdgeOrientation::kLeftOrRight},
      {"MATCH (a)-(b)", EdgeOrientation::kAny},
  };
  for (const Case& c : cases) {
    GraphPattern g = MustParse(c.text);
    const PathPattern& p = Pattern(g);
    ASSERT_EQ(p.elements.size(), 3u) << c.text;
    EXPECT_EQ(p.elements[1].kind, PathElement::Kind::kEdge) << c.text;
    EXPECT_EQ(p.elements[1].edge.orientation, c.orientation) << c.text;
  }
}

TEST(ParserTest, EdgeWithLabelAndWhere) {
  GraphPattern g =
      MustParse("MATCH -[e:Transfer WHERE e.amount>5M]->");
  const EdgePattern& e = Pattern(g).elements[0].edge;
  EXPECT_EQ(e.var, "e");
  EXPECT_EQ(e.labels->ToString(), "Transfer");
  EXPECT_EQ(e.where->ToString(), "e.amount > 5000000");
}

TEST(ParserTest, QuantifiersOnEdges) {
  GraphPattern g = MustParse("MATCH (a)-[:Transfer]->{2,5}(b)");
  const PathElement& q = Pattern(g).elements[1];
  EXPECT_EQ(q.kind, PathElement::Kind::kQuantified);
  EXPECT_TRUE(q.bare_edge);
  EXPECT_EQ(q.min, 2u);
  EXPECT_EQ(*q.max, 5u);
}

TEST(ParserTest, StarPlusQuestionQuantifiers) {
  GraphPattern g = MustParse("MATCH (a)->*(b)->+(c) (x)[->(y)]?");
  const PathPattern& p = Pattern(g);
  EXPECT_EQ(p.elements[1].min, 0u);
  EXPECT_FALSE(p.elements[1].max.has_value());
  EXPECT_EQ(p.elements[3].min, 1u);
  EXPECT_FALSE(p.elements[3].max.has_value());
  EXPECT_EQ(p.elements[6].kind, PathElement::Kind::kOptional);
}

TEST(ParserTest, OpenEndedAndExactQuantifier) {
  GraphPattern g = MustParse("MATCH (a)->{3,}(b)->{4}(c)");
  const PathPattern& p = Pattern(g);
  EXPECT_EQ(p.elements[1].min, 3u);
  EXPECT_FALSE(p.elements[1].max.has_value());
  EXPECT_EQ(p.elements[3].min, 4u);
  EXPECT_EQ(*p.elements[3].max, 4u);
}

TEST(ParserTest, BadQuantifierBounds) {
  EXPECT_FALSE(ParseGraphPattern("MATCH (a)->{5,2}(b)").ok());
}

TEST(ParserTest, ParenthesizedPatternWithWhere) {
  GraphPattern g = MustParse(
      "MATCH [(a:Account)-[:Transfer]->(b:Account) WHERE a.owner=b.owner]"
      "{2,5}");
  const PathElement& q = Pattern(g).elements[0];
  EXPECT_EQ(q.kind, PathElement::Kind::kQuantified);
  EXPECT_FALSE(q.bare_edge);
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->ToString(), "a.owner = b.owner");
}

TEST(ParserTest, ParenthesizedWithRestrictor) {
  GraphPattern g =
      MustParse("MATCH [TRAIL (x)-[e]->*(y) WHERE COUNT(e.*) > 1]");
  const PathElement& par = Pattern(g).elements[0];
  EXPECT_EQ(par.kind, PathElement::Kind::kParen);
  EXPECT_EQ(par.restrictor, Restrictor::kTrail);
  EXPECT_NE(par.where, nullptr);
}

TEST(ParserTest, RoundParenthesizedPathPattern) {
  GraphPattern g = MustParse("MATCH ((a)-[e]->(b))");
  EXPECT_EQ(Pattern(g).elements[0].kind, PathElement::Kind::kParen);
}

TEST(ParserTest, PathVariable) {
  GraphPattern g = MustParse("MATCH p = (a)-[:Transfer]->(b)");
  EXPECT_EQ(g.paths[0].path_var, "p");
}

TEST(ParserTest, RestrictorsAtHead) {
  EXPECT_EQ(MustParse("MATCH TRAIL (a)->*(b)").paths[0].restrictor,
            Restrictor::kTrail);
  EXPECT_EQ(MustParse("MATCH ACYCLIC (a)->*(b)").paths[0].restrictor,
            Restrictor::kAcyclic);
  EXPECT_EQ(MustParse("MATCH SIMPLE (a)->*(b)").paths[0].restrictor,
            Restrictor::kSimple);
}

TEST(ParserTest, Selectors) {
  EXPECT_EQ(MustParse("MATCH ANY SHORTEST (a)->*(b)").paths[0].selector.kind,
            Selector::Kind::kAnyShortest);
  EXPECT_EQ(MustParse("MATCH ALL SHORTEST (a)->*(b)").paths[0].selector.kind,
            Selector::Kind::kAllShortest);
  EXPECT_EQ(MustParse("MATCH ANY (a)->*(b)").paths[0].selector.kind,
            Selector::Kind::kAny);
  Selector s = MustParse("MATCH ANY 3 (a)->*(b)").paths[0].selector;
  EXPECT_EQ(s.kind, Selector::Kind::kAnyK);
  EXPECT_EQ(s.k, 3);
  s = MustParse("MATCH SHORTEST 2 (a)->*(b)").paths[0].selector;
  EXPECT_EQ(s.kind, Selector::Kind::kShortestK);
  EXPECT_EQ(s.k, 2);
  s = MustParse("MATCH SHORTEST 2 GROUP (a)->*(b)").paths[0].selector;
  EXPECT_EQ(s.kind, Selector::Kind::kShortestKGroup);
}

TEST(ParserTest, SelectorWithRestrictorAndPathVar) {
  GraphPattern g =
      MustParse("MATCH ALL SHORTEST TRAIL p = (a)-[t:Transfer]->*(b)");
  EXPECT_EQ(g.paths[0].selector.kind, Selector::Kind::kAllShortest);
  EXPECT_EQ(g.paths[0].restrictor, Restrictor::kTrail);
  EXPECT_EQ(g.paths[0].path_var, "p");
}

TEST(ParserTest, PathPatternUnionAndAlternation) {
  GraphPattern g = MustParse("MATCH (c:City) | (c:Country)");
  EXPECT_EQ(Pattern(g).kind, PathPattern::Kind::kUnion);
  EXPECT_EQ(Pattern(g).alternatives.size(), 2u);

  g = MustParse("MATCH (c:City) |+| (c:Country)");
  EXPECT_EQ(Pattern(g).kind, PathPattern::Kind::kAlternation);
}

TEST(ParserTest, UnionOfQuantifiedEdges) {
  // §4.5: MATCH ->{1,5} | ->{3,7}.
  GraphPattern g = MustParse("MATCH ->{1,5} | ->{3,7}");
  ASSERT_EQ(Pattern(g).kind, PathPattern::Kind::kUnion);
  EXPECT_EQ(Pattern(g).alternatives.size(), 2u);
}

TEST(ParserTest, MultiplePathPatterns) {
  GraphPattern g = MustParse(
      "MATCH (s:Account)-[:signInWithIP]-(), "
      "(s)-[t:Transfer WHERE t.amount>1M]->(), "
      "(s)~[:hasPhone]~(p:Phone WHERE p.isBlocked='yes')");
  EXPECT_EQ(g.paths.size(), 3u);
}

TEST(ParserTest, PostfilterWhere) {
  GraphPattern g = MustParse("MATCH (x:Account) WHERE x.isBlocked='no'");
  ASSERT_NE(g.where, nullptr);
  EXPECT_EQ(g.where->ToString(), "x.isBlocked = 'no'");
}

TEST(ParserTest, ReturnClause) {
  Result<MatchStatement> s =
      ParseStatement("MATCH (x) RETURN x.owner AS o, COUNT(x) AS n");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_TRUE(s->has_return);
  ASSERT_EQ(s->return_items.size(), 2u);
  EXPECT_EQ(s->return_items[0].alias, "o");
  EXPECT_EQ(s->return_items[1].alias, "n");
}

TEST(ParserTest, ReturnDistinct) {
  Result<MatchStatement> s = ParseStatement("MATCH (x) RETURN DISTINCT x");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->return_distinct);
}

TEST(ParserTest, LessThanVersusArrowLeft) {
  // `a.w <-1` must parse as a.w < -1, not as an edge arrow.
  Result<ExprPtr> e = ParseExpression("a.w <-1");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->ToString(), "a.w < 0 - 1");
}

TEST(ParserTest, ExpressionPrecedence) {
  Result<ExprPtr> e = ParseExpression("1 + 2 * 3 > 6 AND NOT FALSE");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "1 + 2 * 3 > 6 AND NOT false");
}

TEST(ParserTest, GraphicalPredicates) {
  Result<ExprPtr> e = ParseExpression("e IS DIRECTED");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, Expr::Kind::kIsDirected);

  e = ParseExpression("s IS SOURCE OF e");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, Expr::Kind::kIsSourceOf);

  e = ParseExpression("d IS DESTINATION OF e");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, Expr::Kind::kIsDestinationOf);

  e = ParseExpression("SAME(p, q, r)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->vars.size(), 3u);

  e = ParseExpression("ALL_DIFFERENT(p, q)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, Expr::Kind::kAllDifferent);
}

TEST(ParserTest, IsNullForms) {
  Result<ExprPtr> e = ParseExpression("x.prop IS NULL");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, Expr::Kind::kIsNull);
  EXPECT_FALSE((*e)->negated);
  e = ParseExpression("x.prop IS NOT NULL");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->negated);
}

TEST(ParserTest, Aggregates) {
  Result<ExprPtr> e = ParseExpression("SUM(t.amount) > 10M");
  ASSERT_TRUE(e.ok());
  e = ParseExpression("COUNT(e.*) / (COUNT(e.*) + 1) > 1");
  ASSERT_TRUE(e.ok()) << e.status();
  e = ParseExpression("COUNT(DISTINCT e) = COUNT(e)");
  ASSERT_TRUE(e.ok());
  e = ParseExpression("LISTAGG(e.ID, ', ')");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->separator, ", ");
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseGraphPattern("match trail (a)->*(b) where a.x=1").ok());
  EXPECT_TRUE(ParseGraphPattern("MATCH any shortest (a)->*(b)").ok());
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseGraphPattern("MATCH").ok());
  EXPECT_FALSE(ParseGraphPattern("MATCH (a").ok());
  EXPECT_FALSE(ParseGraphPattern("MATCH (a) extra").ok());
  EXPECT_FALSE(ParseGraphPattern("(a)->(b)").ok());  // Missing MATCH.
  EXPECT_FALSE(ParseGraphPattern("MATCH (a)-[e]").ok());
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("FOO(x)").ok());
}

TEST(ParserTest, ColumnsList) {
  Result<std::vector<ReturnItem>> items =
      ParseColumns("x.owner AS A, y.owner AS B, COUNT(e) AS hops");
  ASSERT_TRUE(items.ok());
  ASSERT_EQ(items->size(), 3u);
  EXPECT_EQ((*items)[0].alias, "A");
  EXPECT_EQ((*items)[2].alias, "hops");
}

TEST(ParserTest, ParameterPlaceholders) {
  Result<ExprPtr> e = ParseExpression("x.owner = $owner AND $flag");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->ToString(), "x.owner = $owner AND $flag");

  GraphPattern g = MustParse(
      "MATCH (x:Account WHERE x.owner = $owner)"
      "-[t:Transfer WHERE t.amount > $min]->(y) WHERE y.owner <> $owner");
  const PathPattern& p = *g.paths[0].pattern;
  ASSERT_EQ(p.elements.size(), 3u);
  EXPECT_EQ(p.elements[0].node.where->rhs->kind, Expr::Kind::kParam);
  EXPECT_EQ(p.elements[0].node.where->rhs->var, "owner");
  EXPECT_EQ(p.elements[1].edge.where->rhs->var, "min");
  ASSERT_NE(g.where, nullptr);
  EXPECT_EQ(g.where->rhs->var, "owner");
}

TEST(ParserTest, ReturnLimit) {
  Result<MatchStatement> s =
      ParseStatement("MATCH (x) RETURN x LIMIT 5");
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_TRUE(s->limit.has_value());
  EXPECT_EQ(*s->limit, 5u);

  Result<MatchStatement> zero = ParseStatement("MATCH (x) RETURN x LIMIT 0");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(*zero->limit, 0u);

  Result<MatchStatement> none = ParseStatement("MATCH (x) RETURN x");
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->limit.has_value());

  // LIMIT needs a non-negative integer; the magnitude suffix is allowed.
  EXPECT_FALSE(ParseStatement("MATCH (x) RETURN x LIMIT").ok());
  EXPECT_FALSE(ParseStatement("MATCH (x) RETURN x LIMIT x").ok());
  Result<MatchStatement> big =
      ParseStatement("MATCH (x) RETURN x LIMIT 1K");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(*big->limit, 1000u);

  // LIMIT can still be a variable name outside the clause position.
  Result<MatchStatement> ident = ParseStatement("MATCH (limit) RETURN limit");
  EXPECT_TRUE(ident.ok()) << ident.status();
}

}  // namespace
}  // namespace gpml
