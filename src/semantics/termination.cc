#include "semantics/termination.h"

#include <map>
#include <string>
#include <vector>

namespace gpml {

namespace {

class TerminationChecker {
 public:
  explicit TerminationChecker(const Analysis& analysis)
      : analysis_(analysis) {}

  Status Check(const GraphPattern& g) {
    for (const PathPatternDecl& d : g.paths) {
      has_selector_ = !d.selector.IsNone();
      restrictor_depth_ = d.restrictor != Restrictor::kNone ? 0 : -1;
      quant_stack_.clear();
      // First walk: record, for every variable, whether its innermost
      // unbounded quantifier is restrictor-bounded; also check rule 1.
      GPML_RETURN_IF_ERROR(WalkPath(*d.pattern));
    }
    // Rule 2 needs the per-variable boundedness computed above, then a pass
    // over the prefilter expressions; prefilter expressions were collected
    // during WalkPath.
    for (const auto& [expr, vars_bounded] : prefilters_) {
      GPML_RETURN_IF_ERROR(CheckPrefilter(*expr, vars_bounded));
    }
    return Status::OK();
  }

 private:
  struct QuantInfo {
    bool unbounded = false;
    bool restricted = false;  // A restrictor encloses it (at any level).
  };

  bool InRestrictorScope() const { return restrictor_depth_ >= 0; }

  Status WalkPath(const PathPattern& p) {
    switch (p.kind) {
      case PathPattern::Kind::kConcat:
        for (const PathElement& e : p.elements) {
          GPML_RETURN_IF_ERROR(WalkElement(e));
        }
        return Status::OK();
      case PathPattern::Kind::kUnion:
      case PathPattern::Kind::kAlternation:
        for (const auto& a : p.alternatives) {
          GPML_RETURN_IF_ERROR(WalkPath(*a));
        }
        return Status::OK();
    }
    return Status::Internal("unknown path pattern kind");
  }

  Status WalkElement(const PathElement& e) {
    switch (e.kind) {
      case PathElement::Kind::kNode:
        RecordVarBoundedness(e.node.var);
        return Status::OK();
      case PathElement::Kind::kEdge:
        RecordVarBoundedness(e.edge.var);
        return Status::OK();
      case PathElement::Kind::kParen: {
        bool entered = false;
        if (e.restrictor != Restrictor::kNone && !InRestrictorScope()) {
          restrictor_depth_ = static_cast<int>(quant_stack_.size());
          entered = true;
        }
        if (e.where != nullptr) RecordPrefilter(e.where);
        Status st = WalkPath(*e.sub);
        if (entered) restrictor_depth_ = -1;
        return st;
      }
      case PathElement::Kind::kQuantified: {
        bool unbounded = !e.max.has_value();
        // A restrictor written on the quantified pattern itself ([TRAIL x]*)
        // applies to each *iteration's* segment, so it bounds neither the
        // iteration count nor this quantifier — only an enclosing restrictor
        // or a selector does.
        if (unbounded && !InRestrictorScope() && !has_selector_) {
          return Status::NonTerminating(
              "unbounded quantifier {" + std::to_string(e.min) +
              ",} is not within the scope of a restrictor or selector (§5)");
        }
        QuantInfo qi;
        qi.unbounded = unbounded;
        qi.restricted = InRestrictorScope();  // Before the own restrictor.
        bool entered = false;
        if (e.restrictor != Restrictor::kNone && !InRestrictorScope()) {
          restrictor_depth_ = static_cast<int>(quant_stack_.size());
          entered = true;
        }
        quant_stack_.push_back(qi);
        // Iteration WHERE evaluates inside the quantifier, so it is recorded
        // after pushing the quantifier frame.
        if (e.where != nullptr) RecordPrefilter(e.where);
        Status st = WalkPath(*e.sub);
        quant_stack_.pop_back();
        if (entered) restrictor_depth_ = -1;
        return st;
      }
      case PathElement::Kind::kOptional: {
        if (e.where != nullptr) RecordPrefilter(e.where);
        return WalkPath(*e.sub);
      }
    }
    return Status::Internal("unknown path element kind");
  }

  /// A variable declared here is "effectively bounded" iff every enclosing
  /// unbounded quantifier is restrictor-bounded.
  void RecordVarBoundedness(const std::string& var) {
    bool bounded = true;
    for (const QuantInfo& q : quant_stack_) {
      if (q.unbounded && !q.restricted) bounded = false;
    }
    auto it = var_bounded_.find(var);
    if (it == var_bounded_.end()) {
      var_bounded_[var] = bounded;
    } else {
      it->second = it->second && bounded;
    }
  }

  void RecordPrefilter(const ExprPtr& e) {
    if (e->ContainsAggregate()) prefilters_.push_back({e, &var_bounded_});
  }

  Status CheckPrefilter(const Expr& e,
                        const std::map<std::string, bool>* bounded) {
    if (e.kind == Expr::Kind::kAggregate) {
      std::vector<std::string> vars;
      e.arg->CollectVariables(&vars);
      for (const std::string& v : vars) {
        auto it = bounded->find(v);
        // Unknown variables are reported by Analyze; only boundedness is
        // checked here.
        if (it != bounded->end() && !it->second) {
          return Status::NonTerminating(
              "prefilter aggregates over effectively-unbounded group "
              "variable " +
              v + " (§5.3); bound the quantifier or move the predicate to "
              "the final WHERE clause");
        }
      }
    }
    for (const ExprPtr* child : {&e.lhs, &e.rhs, &e.arg}) {
      if (*child != nullptr) {
        GPML_RETURN_IF_ERROR(CheckPrefilter(**child, bounded));
      }
    }
    return Status::OK();
  }

  const Analysis& analysis_;
  bool has_selector_ = false;
  int restrictor_depth_ = -1;  // -1 = not in restrictor scope.
  std::vector<QuantInfo> quant_stack_;
  std::map<std::string, bool> var_bounded_;
  std::vector<std::pair<ExprPtr, const std::map<std::string, bool>*>>
      prefilters_;
};

}  // namespace

Status CheckTermination(const GraphPattern& normalized,
                        const Analysis& analysis) {
  TerminationChecker checker(analysis);
  return checker.Check(normalized);
}

}  // namespace gpml
