#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/sample_graph.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::Rows;

// E6: the full Figure 5 edge-pattern orientation table, evaluated on a
// 3-node fixture with one directed edge u->v and one undirected edge u~w.

class EdgePatternTest : public ::testing::Test {
 protected:
  EdgePatternTest() {
    GraphBuilder b;
    b.AddNode("u", {"N"});
    b.AddNode("v", {"N"});
    b.AddNode("w", {"N"});
    b.AddDirectedEdge("d", "u", "v", {"D"});
    b.AddUndirectedEdge("a", "u", "w", {"U"});
    g_ = std::move(std::move(b).Build()).value();
  }
  PropertyGraph g_;
};

TEST_F(EdgePatternTest, PointingRight) {
  EXPECT_EQ(Rows(g_, "MATCH (x)-[e]->(y)", "x, e, y"),
            (std::vector<std::string>{"u|d|v"}));
}

TEST_F(EdgePatternTest, PointingLeft) {
  EXPECT_EQ(Rows(g_, "MATCH (x)<-[e]-(y)", "x, e, y"),
            (std::vector<std::string>{"v|d|u"}));
}

TEST_F(EdgePatternTest, Undirected) {
  // Each undirected edge is traversable from both endpoints.
  EXPECT_EQ(Rows(g_, "MATCH (x)~[e]~(y)", "x, e, y"),
            (std::vector<std::string>{"u|a|w", "w|a|u"}));
}

TEST_F(EdgePatternTest, LeftOrUndirected) {
  EXPECT_EQ(Rows(g_, "MATCH (x)<~[e]~(y)", "x, e, y"),
            (std::vector<std::string>{"u|a|w", "v|d|u", "w|a|u"}));
}

TEST_F(EdgePatternTest, UndirectedOrRight) {
  EXPECT_EQ(Rows(g_, "MATCH (x)~[e]~>(y)", "x, e, y"),
            (std::vector<std::string>{"u|a|w", "u|d|v", "w|a|u"}));
}

TEST_F(EdgePatternTest, LeftOrRight) {
  // §4.2: a directionless directed match returns each directed edge twice,
  // once per traversal direction.
  EXPECT_EQ(Rows(g_, "MATCH (x)<-[e]->(y)", "x, e, y"),
            (std::vector<std::string>{"u|d|v", "v|d|u"}));
}

TEST_F(EdgePatternTest, AnyDirection) {
  EXPECT_EQ(Rows(g_, "MATCH (x)-[e]-(y)", "x, e, y"),
            (std::vector<std::string>{"u|a|w", "u|d|v", "v|d|u", "w|a|u"}));
}

TEST_F(EdgePatternTest, AbbreviationsMatchFullForms) {
  const char* pairs[][2] = {
      {"MATCH (x)->(y)", "MATCH (x)-[]->(y)"},
      {"MATCH (x)<-(y)", "MATCH (x)<-[]-(y)"},
      {"MATCH (x)~(y)", "MATCH (x)~[]~(y)"},
      {"MATCH (x)<~(y)", "MATCH (x)<~[]~(y)"},
      {"MATCH (x)~>(y)", "MATCH (x)~[]~>(y)"},
      {"MATCH (x)<->(y)", "MATCH (x)<-[]->(y)"},
      {"MATCH (x)-(y)", "MATCH (x)-[]-(y)"},
  };
  for (const auto& p : pairs) {
    EXPECT_EQ(Rows(g_, p[0], "x, y"), Rows(g_, p[1], "x, y"))
        << p[0] << " vs " << p[1];
  }
}

TEST_F(EdgePatternTest, LabelFilterOnEdge) {
  EXPECT_EQ(Rows(g_, "MATCH (x)-[e:D]-(y)", "x, y"),
            (std::vector<std::string>{"u|v", "v|u"}));
  EXPECT_EQ(Rows(g_, "MATCH (x)-[e:U]-(y)", "x, y"),
            (std::vector<std::string>{"u|w", "w|u"}));
  EXPECT_TRUE(Rows(g_, "MATCH (x)-[e:Z]-(y)", "x").empty());
}

TEST_F(EdgePatternTest, DirectedSelfLoopMatchesBothWays) {
  GraphBuilder b;
  b.AddNode("s", {"N"});
  b.AddDirectedEdge("loop", "s", "s", {"D"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  // Forward and backward traversals produce the same reduced binding.
  EXPECT_EQ(Rows(g, "MATCH (x)-[e]-(y)", "x, e, y"),
            (std::vector<std::string>{"s|loop|s"}));
  EXPECT_EQ(Rows(g, "MATCH (x)-[e]->(y)", "x, e, y"),
            (std::vector<std::string>{"s|loop|s"}));
}

TEST_F(EdgePatternTest, UndirectedSelfLoop) {
  GraphBuilder b;
  b.AddNode("s", {"N"});
  b.AddUndirectedEdge("loop", "s", "s", {"U"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  EXPECT_EQ(Rows(g, "MATCH (x)~[e]~(y)", "x, e, y"),
            (std::vector<std::string>{"s|loop|s"}));
  EXPECT_TRUE(Rows(g, "MATCH (x)-[e]->(y)", "x").empty());
}

TEST_F(EdgePatternTest, PaperTransferDirections) {
  PropertyGraph paper = BuildPaperGraph();
  // §4.2: source of every transfer reaching Aretha.
  EXPECT_EQ(Rows(paper,
                 "MATCH (y WHERE y.owner='Aretha')<-[e:Transfer]-(x)",
                 "x, e"),
            (std::vector<std::string>{"a3|t2"}));
}

}  // namespace
}  // namespace gpml
