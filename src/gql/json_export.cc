#include "gql/json_export.h"

#include <cstdio>
#include <sstream>

namespace gpml {

namespace {

/// Length of the well-formed UTF-8 sequence starting at p (RFC 3629 table:
/// no overlongs, no surrogates, max U+10FFFF), or 0 when the bytes do not
/// start one. `remaining` bounds the lookahead.
size_t Utf8SequenceLength(const unsigned char* p, size_t remaining) {
  const unsigned char b0 = p[0];
  if (b0 < 0x80) return 1;
  auto cont = [&](size_t i) { return (p[i] & 0xC0u) == 0x80u; };
  if (b0 >= 0xC2 && b0 <= 0xDF) {
    return (remaining >= 2 && cont(1)) ? 2 : 0;
  }
  if (b0 >= 0xE0 && b0 <= 0xEF) {
    if (remaining < 3 || !cont(1) || !cont(2)) return 0;
    const unsigned char b1 = p[1];
    if (b0 == 0xE0 && b1 < 0xA0) return 0;  // Overlong.
    if (b0 == 0xED && b1 > 0x9F) return 0;  // Surrogate U+D800..U+DFFF.
    return 3;
  }
  if (b0 >= 0xF0 && b0 <= 0xF4) {
    if (remaining < 4 || !cont(1) || !cont(2) || !cont(3)) return 0;
    const unsigned char b1 = p[1];
    if (b0 == 0xF0 && b1 < 0x90) return 0;  // Overlong.
    if (b0 == 0xF4 && b1 > 0x8F) return 0;  // Above U+10FFFF.
    return 4;
  }
  return 0;  // 0x80..0xC1 (continuation/overlong lead), 0xF5..0xFF.
}

constexpr char kReplacement[] = "\xEF\xBF\xBD";  // U+FFFD.

}  // namespace

bool IsValidUtf8(const std::string& s) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(s.data());
  size_t i = 0;
  while (i < s.size()) {
    size_t len = Utf8SequenceLength(p + i, s.size() - i);
    if (len == 0) return false;
    i += len;
  }
  return true;
}

std::string SanitizeUtf8(const std::string& s) {
  if (IsValidUtf8(s)) return s;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(s.data());
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    size_t len = Utf8SequenceLength(p + i, s.size() - i);
    if (len == 0) {
      out += kReplacement;
      ++i;
    } else {
      out.append(s, i, len);
      i += len;
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(s.data());
  std::string out;
  out.reserve(s.size() + 2);
  size_t i = 0;
  while (i < s.size()) {
    const unsigned char c = p[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
      ++i;
      continue;
    }
    if (c < 0x80) {
      out += static_cast<char>(c);
      ++i;
      continue;
    }
    size_t len = Utf8SequenceLength(p + i, s.size() - i);
    if (len == 0) {
      out += kReplacement;
      ++i;
    } else {
      out.append(s, i, len);
      i += len;
    }
  }
  return out;
}

namespace {

std::string ValueToJson(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return v.bool_value() ? "true" : "false";
    case ValueType::kInt: return std::to_string(v.int_value());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << v.double_value();
      return os.str();
    }
    case ValueType::kString:
      return "\"" + JsonEscape(v.string_value()) + "\"";
  }
  return "null";
}

std::string PathToJson(const PropertyGraph& g, const Path& p) {
  std::ostringstream os;
  os << "{\"kind\":\"path\",\"length\":" << p.Length() << ",\"elements\":[";
  for (size_t i = 0; i < p.nodes().size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(g.node(p.nodes()[i]).name) << "\"";
    if (i < p.edges().size()) {
      os << ",\"" << JsonEscape(g.edge(p.edges()[i]).name) << "\"";
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace

std::string ElementToJson(const PropertyGraph& g, const ElementRef& ref) {
  const ElementData& d = g.element(ref);
  std::ostringstream os;
  os << "{\"kind\":\"" << (ref.is_node() ? "node" : "edge") << "\",";
  os << "\"name\":\"" << JsonEscape(d.name) << "\",";
  if (ref.is_edge()) {
    const EdgeData& e = g.edge(ref.id);
    os << "\"directed\":" << (e.directed ? "true" : "false") << ",";
    os << "\"endpoints\":[\"" << JsonEscape(g.node(e.u).name) << "\",\""
       << JsonEscape(g.node(e.v).name) << "\"],";
  }
  os << "\"labels\":[";
  for (size_t i = 0; i < d.labels.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(d.labels[i]) << "\"";
  }
  os << "],\"properties\":{";
  bool first = true;
  for (const auto& [k, v] : d.properties) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(k) << "\":" << ValueToJson(v);
  }
  os << "}}";
  return os.str();
}

std::string RowToJson(const MatchOutput& output, const ResultRow& row,
                      const PropertyGraph& g) {
  std::ostringstream os;
  os << "{";
  RowScope scope(output, row);
  bool first_var = true;
  for (int v = 0; v < output.vars->size(); ++v) {
    const VarInfo& info = output.vars->info(v);
    if (info.anonymous) continue;
    if (!first_var) os << ",";
    first_var = false;
    os << "\"" << JsonEscape(info.name) << "\":";
    if (info.kind == VarInfo::Kind::kPath) {
      const Path* p = scope.LookupPath(v);
      os << (p == nullptr ? "null" : PathToJson(g, *p));
      continue;
    }
    if (info.group) {
      os << "[";
      std::vector<ElementRef> elems = scope.CollectGroup(v);
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) os << ",";
        os << ElementToJson(g, elems[i]);
      }
      os << "]";
      continue;
    }
    std::optional<ElementRef> el = scope.LookupSingleton(v);
    os << (el.has_value() ? ElementToJson(g, *el) : "null");
  }
  os << "}";
  return os.str();
}

std::string ExportJson(const MatchOutput& output, const PropertyGraph& g) {
  std::ostringstream os;
  os << "{\"rows\":[";
  bool first_row = true;
  for (const ResultRow& row : output.rows) {
    if (!first_row) os << ",";
    first_row = false;
    os << RowToJson(output, row, g);
  }
  os << "]}";
  return os.str();
}

}  // namespace gpml
