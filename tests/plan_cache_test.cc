// Compiled-plan caching: entries live on the immutable PropertyGraph (same
// atomic-shared_ptr slot discipline as GraphStats), keyed by (graph identity
// token, pattern fingerprint). Repeated queries skip normalize/analyze/plan;
// a structurally identical but distinct graph never shares entries; moving a
// graph moves its cache (identity follows the data); results are invariant
// in the cache.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "eval/engine.h"
#include "gql/session.h"
#include "graph/sample_graph.h"
#include "parser/parser.h"
#include "pgq/graph_table.h"
#include "planner/explain.h"
#include "planner/plan_cache.h"

namespace gpml {
namespace {

const char* kQuery =
    "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
    "(c:City WHERE c.name='Ankh-Morpork')<-[:isLocatedIn]-"
    "(y:Account WHERE y.isBlocked='yes'), "
    "ANY (x)-[:Transfer]->+(y)";

TEST(PlanCacheTest, SecondExecutionHits) {
  PropertyGraph g = BuildPaperGraph();
  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  Engine engine(g, options);

  Result<MatchOutput> first = engine.Match(kQuery);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(metrics.plan_cache_hits, 0u);
  EXPECT_EQ(metrics.plan_cache_misses, 1u);
  size_t rows = first->rows.size();

  Result<MatchOutput> second = engine.Match(kQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(metrics.plan_cache_hits, 1u);
  EXPECT_EQ(metrics.plan_cache_misses, 0u);
  EXPECT_EQ(second->rows.size(), rows);
}

TEST(PlanCacheTest, SharedAcrossEnginesAndHosts) {
  // The cache lives on the graph, so a fresh Engine — and each host, which
  // constructs one per statement — reuses plans compiled by any other.
  Catalog catalog;
  ASSERT_TRUE(catalog.AddGraph("bank", BuildPaperGraph()).ok());

  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;

  Session session(catalog);
  session.set_options(options);  // Runtime plumbing: metrics, threads, cache.
  EXPECT_TRUE(session.options().use_plan_cache);
  ASSERT_TRUE(session.UseGraph("bank").ok());
  ASSERT_TRUE(session.Execute(kQuery).ok());
  EXPECT_EQ(metrics.plan_cache_misses, 1u);

  // SQL/PGQ host, same graph object from the catalog: hit.
  GraphTableQuery query;
  query.graph = "bank";
  query.match = kQuery;
  query.columns = "x.owner AS owner";
  ASSERT_TRUE(GraphTable(catalog, query, options).ok());
  EXPECT_EQ(metrics.plan_cache_hits, 1u);
}

TEST(PlanCacheTest, DistinctPatternsAndPlannerModesMiss) {
  PropertyGraph g = BuildPaperGraph();
  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;

  ASSERT_TRUE(Engine(g, options).Match(kQuery).ok());
  EXPECT_EQ(metrics.plan_cache_misses, 1u);

  // A different pattern: miss.
  ASSERT_TRUE(Engine(g, options).Match("MATCH (x:Account)").ok());
  EXPECT_EQ(metrics.plan_cache_misses, 1u);
  EXPECT_EQ(metrics.plan_cache_hits, 0u);

  // Same pattern, planner off: a DirectPlan is a different plan — miss.
  options.use_planner = false;
  ASSERT_TRUE(Engine(g, options).Match(kQuery).ok());
  EXPECT_EQ(metrics.plan_cache_misses, 1u);

  // And hits once warmed.
  ASSERT_TRUE(Engine(g, options).Match(kQuery).ok());
  EXPECT_EQ(metrics.plan_cache_hits, 1u);
}

TEST(PlanCacheTest, InvalidatedByGraphIdentity) {
  // Two structurally identical graphs have distinct identity tokens and
  // never share cached plans.
  PropertyGraph a = BuildPaperGraph();
  PropertyGraph b = BuildPaperGraph();
  EXPECT_NE(a.identity_token(), b.identity_token());

  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  ASSERT_TRUE(Engine(a, options).Match(kQuery).ok());
  EXPECT_EQ(metrics.plan_cache_misses, 1u);

  ASSERT_TRUE(Engine(b, options).Match(kQuery).ok());
  EXPECT_EQ(metrics.plan_cache_misses, 1u)
      << "a cached plan must not cross graph identities";
  EXPECT_EQ(metrics.plan_cache_hits, 0u);

  // Direct slot check: a's entry is invisible through b even if someone
  // transplanted the snapshot (Lookup revalidates the identity token).
  std::string fp = planner::PlanFingerprint(
      *ParseGraphPattern(kQuery), /*use_planner=*/true);
  EXPECT_NE(planner::LookupPlan(a, fp), nullptr);
  b.set_plan_cache(a.plan_cache());
  EXPECT_EQ(planner::LookupPlan(b, fp), nullptr);
}

TEST(PlanCacheTest, MovePreservesIdentityAndCache) {
  PropertyGraph g = BuildPaperGraph();
  uint64_t token = g.identity_token();
  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  ASSERT_TRUE(Engine(g, options).Match(kQuery).ok());
  EXPECT_EQ(metrics.plan_cache_misses, 1u);

  PropertyGraph moved = std::move(g);
  EXPECT_EQ(moved.identity_token(), token);
  ASSERT_TRUE(Engine(moved, options).Match(kQuery).ok());
  EXPECT_EQ(metrics.plan_cache_hits, 1u) << "identity follows the data";
}

TEST(PlanCacheTest, DisabledCacheNeverStoresOrHits) {
  PropertyGraph g = BuildPaperGraph();
  EngineMetrics metrics;
  EngineOptions options;
  options.use_plan_cache = false;
  options.metrics = &metrics;
  Engine engine(g, options);
  ASSERT_TRUE(engine.Match(kQuery).ok());
  ASSERT_TRUE(engine.Match(kQuery).ok());
  EXPECT_EQ(metrics.plan_cache_hits, 0u);
  EXPECT_EQ(metrics.plan_cache_misses, 1u);
  EXPECT_EQ(g.plan_cache(), nullptr);
}

TEST(PlanCacheTest, ResultsInvariantUnderCaching) {
  PropertyGraph g = BuildPaperGraph();
  EngineOptions cold;
  cold.use_plan_cache = false;
  Result<MatchOutput> want = Engine(g, cold).Match(kQuery);
  ASSERT_TRUE(want.ok());

  Engine warm(g);
  for (int i = 0; i < 2; ++i) {  // Miss, then hit.
    Result<MatchOutput> got = warm.Match(kQuery);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->rows.size(), want->rows.size());
    for (size_t r = 0; r < got->rows.size(); ++r) {
      ASSERT_EQ(got->rows[r].bindings.size(), want->rows[r].bindings.size());
      for (size_t b = 0; b < got->rows[r].bindings.size(); ++b) {
        EXPECT_TRUE(got->rows[r].bindings[b]->SameReduced(
            *want->rows[r].bindings[b]))
            << "row " << r << " binding " << b;
      }
    }
  }
}

TEST(PlanCacheTest, ExplainReportsCacheAndThreads) {
  PropertyGraph g = BuildPaperGraph();
  EngineOptions options;
  options.num_threads = 4;
  Engine engine(g, options);

  Result<std::string> cold = engine.Explain(kQuery);
  ASSERT_TRUE(cold.ok());
  Result<planner::ExplainedPlan> parsed_cold = planner::ParseExplain(*cold);
  ASSERT_TRUE(parsed_cold.ok()) << parsed_cold.status() << "\n" << *cold;
  EXPECT_TRUE(parsed_cold->has_exec);
  EXPECT_EQ(parsed_cold->threads, 4u);
  EXPECT_FALSE(parsed_cold->cached);

  Result<std::string> warm = engine.Explain(kQuery);
  ASSERT_TRUE(warm.ok());
  Result<planner::ExplainedPlan> parsed_warm = planner::ParseExplain(*warm);
  ASSERT_TRUE(parsed_warm.ok());
  EXPECT_TRUE(parsed_warm->cached) << *warm;
  EXPECT_EQ(parsed_warm->threads, 4u);
}

TEST(PlanCacheTest, EvictionBoundsTheSnapshot) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  for (size_t i = 0; i < planner::kPlanCacheMaxEntries + 10; ++i) {
    std::string q =
        "MATCH (x:Account WHERE x.owner='u" + std::to_string(i) + "')";
    ASSERT_TRUE(engine.Match(q).ok()) << q;
  }
  auto cache = g.plan_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_LE(cache->entries.size(), planner::kPlanCacheMaxEntries + 1);
}

TEST(PlanCacheTest, ConcurrentWarmupIsSafe) {
  // Two engines racing on a cold cache: copy-on-write inserts may drop an
  // entry (last store wins) but must never corrupt or mis-serve; exercised
  // under TSan in CI.
  PropertyGraph g = BuildPaperGraph();
  auto worker = [&g]() {
    Engine engine(g);
    for (int i = 0; i < 8; ++i) {
      Result<MatchOutput> out = engine.Match(kQuery);
      ASSERT_TRUE(out.ok());
    }
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
  EXPECT_NE(g.plan_cache(), nullptr);
}

}  // namespace
}  // namespace gpml
