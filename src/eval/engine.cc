#include "eval/engine.h"

#include <unordered_map>
#include <unordered_set>

#include "eval/nfa.h"
#include "parser/parser.h"
#include "semantics/normalize.h"
#include "semantics/termination.h"

namespace gpml {

std::optional<ElementRef> RowScope::LookupSingleton(int var) const {
  for (size_t i = row_.bindings.size(); i-- > 0;) {
    const ElementRef* el = row_.bindings[i]->LastOf(var);
    if (el != nullptr) return *el;
  }
  return std::nullopt;
}

std::vector<ElementRef> RowScope::CollectGroup(int var) const {
  std::vector<ElementRef> out;
  for (const auto& pb : row_.bindings) {
    std::vector<ElementRef> part = pb->ElementsOf(var);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

const Path* RowScope::LookupPath(int var) const {
  for (size_t i = 0; i < row_.bindings.size(); ++i) {
    if (i < output_.path_vars.size() && output_.path_vars[i] == var) {
      return &row_.bindings[i]->path;
    }
  }
  return nullptr;
}

namespace {

/// Joins the accumulated rows with the next declaration's bindings on the
/// given join variables (hash join; cross product when none).
Result<std::vector<ResultRow>> JoinDecl(
    std::vector<ResultRow> rows,
    const std::vector<std::shared_ptr<const PathBinding>>& bindings,
    const std::vector<int>& join_vars, size_t max_rows) {
  auto key_of_binding =
      [&](const PathBinding& pb) -> std::optional<std::vector<ElementRef>> {
    std::vector<ElementRef> key;
    key.reserve(join_vars.size());
    for (int v : join_vars) {
      const ElementRef* el = pb.LastOf(v);
      if (el == nullptr) return std::nullopt;
      key.push_back(*el);
    }
    return key;
  };
  auto hash_key = [](const std::vector<ElementRef>& key) {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const ElementRef& r : key) h = HashCombine(h, ElementRefHash()(r));
    return h;
  };

  // Index the new declaration's bindings by join key.
  std::unordered_map<size_t, std::vector<size_t>> index;
  std::vector<std::optional<std::vector<ElementRef>>> keys(bindings.size());
  for (size_t i = 0; i < bindings.size(); ++i) {
    keys[i] = key_of_binding(*bindings[i]);
    if (keys[i].has_value()) index[hash_key(*keys[i])].push_back(i);
  }

  std::vector<ResultRow> out;
  for (ResultRow& row : rows) {
    std::optional<std::vector<ElementRef>> row_key;
    if (!join_vars.empty()) {
      std::vector<ElementRef> key;
      key.reserve(join_vars.size());
      bool ok = true;
      for (int v : join_vars) {
        const ElementRef* el = nullptr;
        for (size_t i = row.bindings.size(); i-- > 0 && el == nullptr;) {
          el = row.bindings[i]->LastOf(v);
        }
        if (el == nullptr) {
          ok = false;
          break;
        }
        key.push_back(*el);
      }
      if (!ok) continue;
      row_key = std::move(key);
    }

    auto extend_with = [&](size_t i) -> Status {
      ResultRow nr = row;
      nr.bindings.push_back(bindings[i]);
      out.push_back(std::move(nr));
      if (out.size() > max_rows) {
        return Status::ResourceExhausted(
            "joined result exceeded max_rows; refine the pattern or raise "
            "EngineOptions::max_rows");
      }
      return Status::OK();
    };

    if (!row_key.has_value()) {
      for (size_t i = 0; i < bindings.size(); ++i) {
        GPML_RETURN_IF_ERROR(extend_with(i));
      }
    } else {
      auto it = index.find(hash_key(*row_key));
      if (it == index.end()) continue;
      for (size_t i : it->second) {
        if (*keys[i] == *row_key) {
          GPML_RETURN_IF_ERROR(extend_with(i));
        }
      }
    }
  }
  return out;
}

}  // namespace

Result<MatchOutput> Engine::Match(const std::string& match_text) const {
  GPML_ASSIGN_OR_RETURN(GraphPattern pattern, ParseGraphPattern(match_text));
  return Match(pattern);
}

Result<MatchOutput> Engine::Match(const GraphPattern& pattern) const {
  MatchOutput out;
  GPML_ASSIGN_OR_RETURN(out.normalized, Normalize(pattern));
  GPML_ASSIGN_OR_RETURN(Analysis analysis, Analyze(out.normalized));
  GPML_RETURN_IF_ERROR(CheckTermination(out.normalized, analysis));
  out.vars = std::make_shared<VarTable>(analysis);

  // Evaluate every path declaration independently (§6.5), then join.
  bool first = true;
  std::vector<ResultRow> rows;
  for (size_t d = 0; d < out.normalized.paths.size(); ++d) {
    const PathPatternDecl& decl = out.normalized.paths[d];
    out.path_vars.push_back(
        decl.path_var.empty() ? -1 : out.vars->Find(decl.path_var));

    GPML_ASSIGN_OR_RETURN(Program program,
                          CompilePattern(decl, *out.vars));
    GPML_ASSIGN_OR_RETURN(
        MatchSet match, RunPattern(graph_, program, *out.vars,
                                   options_.matcher));
    std::vector<std::shared_ptr<const PathBinding>> bindings;
    bindings.reserve(match.bindings.size());
    for (PathBinding& pb : match.bindings) {
      bindings.push_back(std::make_shared<const PathBinding>(std::move(pb)));
    }

    if (first) {
      rows.reserve(bindings.size());
      for (auto& b : bindings) {
        ResultRow r;
        r.bindings.push_back(std::move(b));
        rows.push_back(std::move(r));
      }
      first = false;
      continue;
    }

    // Join variables: named non-group singletons declared both in this
    // declaration and in any earlier one.
    std::vector<int> join_vars;
    for (int v = 0; v < out.vars->size(); ++v) {
      const VarInfo& info = out.vars->info(v);
      if (info.anonymous || info.group || info.conditional) continue;
      if (info.kind == VarInfo::Kind::kPath) continue;
      bool in_this = false;
      bool in_earlier = false;
      for (int di : info.decls) {
        if (di == static_cast<int>(d)) in_this = true;
        if (di < static_cast<int>(d)) in_earlier = true;
      }
      if (in_this && in_earlier) join_vars.push_back(v);
    }
    GPML_ASSIGN_OR_RETURN(
        rows, JoinDecl(std::move(rows), bindings, join_vars,
                       options_.max_rows));
  }

  // Match mode (§7.1 Language Opportunity): DIFFERENT EDGES requires all
  // matched edges across the whole graph pattern to be pairwise distinct;
  // DIFFERENT NODES likewise for nodes. The default (REPEATABLE ELEMENTS)
  // is the paper's homomorphism semantics.
  if (out.normalized.mode != MatchMode::kRepeatableElements) {
    // Distinctness is over logical bindings: all occurrences of one named
    // singleton variable are a single binding (equi-joins assert equality,
    // they must not self-collide), while group-variable iterations and
    // anonymous positions each count separately — so a walk reusing an
    // edge across quantifier iterations is rejected under DIFFERENT EDGES.
    bool edges_only = out.normalized.mode == MatchMode::kDifferentEdges;
    std::vector<ResultRow> kept;
    kept.reserve(rows.size());
    for (ResultRow& row : rows) {
      std::unordered_set<uint32_t> seen;
      std::unordered_set<uint64_t> singleton_bindings;
      bool ok = true;
      for (const auto& pb : row.bindings) {
        for (const ElementaryBinding& b : pb->reduced) {
          if (b.element.is_edge() != edges_only) continue;
          const VarInfo& vi = out.vars->info(b.var);
          if (!vi.group && !vi.anonymous) {
            uint64_t key = (static_cast<uint64_t>(b.var) << 32) |
                           b.element.id;
            if (!singleton_bindings.insert(key).second) continue;
          }
          if (!seen.insert(b.element.id).second) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
      if (ok) kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }

  // Final WHERE: the postfilter of §5.2.
  if (out.normalized.where != nullptr) {
    std::vector<ResultRow> filtered;
    for (ResultRow& row : rows) {
      RowScope scope(out, row);
      GPML_ASSIGN_OR_RETURN(
          TriBool ok,
          EvalPredicate(*out.normalized.where, graph_, *out.vars, scope));
      if (ok == TriBool::kTrue) filtered.push_back(std::move(row));
    }
    rows = std::move(filtered);
  }

  out.rows = std::move(rows);
  return out;
}

}  // namespace gpml
