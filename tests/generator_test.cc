#include "graph/generator.h"

#include <gtest/gtest.h>

namespace gpml {
namespace {

TEST(GeneratorTest, ChainShape) {
  PropertyGraph g = MakeChainGraph(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  // First node has out-degree 1, last has in-degree 1.
  EXPECT_EQ(g.adjacencies(g.FindNode("v0")).size(), 1u);
  EXPECT_EQ(g.adjacencies(g.FindNode("v4")).size(), 1u);
}

TEST(GeneratorTest, CycleShape) {
  PropertyGraph g = MakeCycleGraph(6);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 6u);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(g.adjacencies(n).size(), 2u);  // One out, one in.
  }
}

TEST(GeneratorTest, CompleteGraphShape) {
  PropertyGraph g = MakeCompleteGraph(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 20u);  // n*(n-1).
}

TEST(GeneratorTest, DiamondChainShape) {
  PropertyGraph g = MakeDiamondChain(3);
  // Nodes: s0 + 3 per diamond; edges: 4 per diamond.
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_NE(g.FindNode("s3"), kInvalidId);
}

TEST(GeneratorTest, GridShape) {
  PropertyGraph g = MakeGridGraph(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  // Right edges: (w-1)*h = 8; down edges: w*(h-1) = 9.
  EXPECT_EQ(g.num_edges(), 17u);
}

TEST(GeneratorTest, FraudGraphRespectsOptions) {
  FraudGraphOptions opt;
  opt.num_accounts = 100;
  opt.transfers_per_account = 3;
  opt.num_cities = 5;
  PropertyGraph g = MakeFraudGraph(opt);
  EXPECT_EQ(g.NodesWithLabel("Account").size(), 100u);
  EXPECT_EQ(g.NodesWithLabel("City").size(), 5u);
  EXPECT_EQ(g.EdgesWithLabel("Transfer").size(), 300u);
  EXPECT_EQ(g.EdgesWithLabel("isLocatedIn").size(), 100u);
  EXPECT_EQ(g.EdgesWithLabel("hasPhone").size(), 100u);
}

TEST(GeneratorTest, FraudGraphDeterministicInSeed) {
  FraudGraphOptions opt;
  opt.num_accounts = 50;
  PropertyGraph g1 = MakeFraudGraph(opt);
  PropertyGraph g2 = MakeFraudGraph(opt);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (EdgeId e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).u, g2.edge(e).u);
    EXPECT_EQ(g1.edge(e).v, g2.edge(e).v);
  }
}

TEST(GeneratorTest, RandomGraphDeterministicAndMixed) {
  PropertyGraph g1 = MakeRandomGraph(20, 40, 3, 0.3, 7);
  PropertyGraph g2 = MakeRandomGraph(20, 40, 3, 0.3, 7);
  EXPECT_EQ(g1.num_edges(), 40u);
  size_t undirected = 0;
  for (EdgeId e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).directed, g2.edge(e).directed);
    if (!g1.edge(e).directed) ++undirected;
  }
  EXPECT_GT(undirected, 0u);
  EXPECT_LT(undirected, 40u);
}

TEST(GeneratorTest, RandomGraphDiffersAcrossSeeds) {
  PropertyGraph g1 = MakeRandomGraph(20, 40, 3, 0.3, 7);
  PropertyGraph g2 = MakeRandomGraph(20, 40, 3, 0.3, 8);
  bool any_diff = false;
  for (EdgeId e = 0; e < g1.num_edges() && !any_diff; ++e) {
    any_diff = g1.edge(e).u != g2.edge(e).u || g1.edge(e).v != g2.edge(e).v;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace gpml
