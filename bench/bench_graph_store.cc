// E1: property graph substrate — construction, adjacency traversal, label
// index. Establishes the substrate costs underneath every other benchmark.

#include <benchmark/benchmark.h>

#include "graph/generator.h"
#include "graph/sample_graph.h"

namespace gpml {
namespace {

void BM_BuildPaperGraph(benchmark::State& state) {
  for (auto _ : state) {
    PropertyGraph g = BuildPaperGraph();
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_BuildPaperGraph);

void BM_BuildFraudGraph(benchmark::State& state) {
  FraudGraphOptions options;
  options.num_accounts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PropertyGraph g = MakeFraudGraph(options);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * options.num_accounts);
}
BENCHMARK(BM_BuildFraudGraph)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AdjacencyScan(benchmark::State& state) {
  FraudGraphOptions options;
  options.num_accounts = static_cast<int>(state.range(0));
  PropertyGraph g = MakeFraudGraph(options);
  for (auto _ : state) {
    size_t total = 0;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      for (const Adjacency& a : g.adjacencies(n)) total += a.edge;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()) * 2);
}
BENCHMARK(BM_AdjacencyScan)->Arg(1000)->Arg(10000);

void BM_LabelIndexLookup(benchmark::State& state) {
  FraudGraphOptions options;
  options.num_accounts = 10000;
  PropertyGraph g = MakeFraudGraph(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.NodesWithLabel("Account").size());
    benchmark::DoNotOptimize(g.EdgesWithLabel("Transfer").size());
  }
}
BENCHMARK(BM_LabelIndexLookup);

void BM_PropertyAccess(benchmark::State& state) {
  PropertyGraph g = BuildPaperGraph();
  NodeId a1 = g.FindNode("a1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.node(a1).GetProperty("owner"));
    benchmark::DoNotOptimize(g.node(a1).GetProperty("missing"));
  }
}
BENCHMARK(BM_PropertyAccess);

}  // namespace
}  // namespace gpml
