#include "gql/graph_projection.h"

#include <gtest/gtest.h>

#include "eval/engine.h"
#include "graph/sample_graph.h"

namespace gpml {
namespace {

// E20 (§6.6): graph-shaped output — each path binding defines a subgraph.

class GraphProjectionTest : public ::testing::Test {
 protected:
  GraphProjectionTest() : g_(BuildPaperGraph()) {}

  PropertyGraph Project(const std::string& query) {
    Engine engine(g_);
    Result<MatchOutput> out = engine.Match(query);
    EXPECT_TRUE(out.ok()) << out.status();
    Result<PropertyGraph> projected = ProjectGraph(g_, *out);
    EXPECT_TRUE(projected.ok()) << projected.status();
    return std::move(*projected);
  }

  PropertyGraph g_;
};

TEST_F(GraphProjectionTest, SingleBindingSubgraph) {
  PropertyGraph sub = Project(
      "MATCH (a WHERE a.owner='Jay')-[e:Transfer]->(b)");
  EXPECT_EQ(sub.num_nodes(), 2u);
  EXPECT_EQ(sub.num_edges(), 1u);
  EXPECT_NE(sub.FindNode("a4"), kInvalidId);
  EXPECT_NE(sub.FindNode("a6"), kInvalidId);
  EXPECT_NE(sub.FindEdge("t4"), kInvalidId);
}

TEST_F(GraphProjectionTest, PropertiesAndLabelsCarryOver) {
  PropertyGraph sub = Project(
      "MATCH (a WHERE a.owner='Jay')-[e:Transfer]->(b)");
  const NodeData& a4 = sub.node(sub.FindNode("a4"));
  EXPECT_TRUE(a4.HasLabel("Account"));
  EXPECT_EQ(a4.GetProperty("isBlocked"), Value::String("yes"));
  const EdgeData& t4 = sub.edge(sub.FindEdge("t4"));
  EXPECT_EQ(t4.GetProperty("amount"), Value::Int(10'000'000));
  EXPECT_TRUE(t4.directed);
}

TEST_F(GraphProjectionTest, UnionOfBindings) {
  // The §5.1 TRAIL query: union of all three trails covers the Transfer
  // subgraph reached between Dave and Aretha.
  PropertyGraph sub = Project(
      "MATCH TRAIL (a WHERE a.owner='Dave')-[t:Transfer]->*"
      "(b WHERE b.owner='Aretha')");
  // Nodes: a6,a3,a2,a5,a1. Edges: t5,t2,t6,t8,t1,t7.
  EXPECT_EQ(sub.num_nodes(), 5u);
  EXPECT_EQ(sub.num_edges(), 6u);
  EXPECT_EQ(sub.FindNode("a4"), kInvalidId) << "Jay is not on any trail";
}

TEST_F(GraphProjectionTest, EmptyResultYieldsEmptyGraph) {
  PropertyGraph sub = Project("MATCH (x:NoSuchLabel)");
  EXPECT_EQ(sub.num_nodes(), 0u);
  EXPECT_EQ(sub.num_edges(), 0u);
}

TEST_F(GraphProjectionTest, UndirectedEdgesPreserved) {
  PropertyGraph sub = Project("MATCH (a:Account)~[h:hasPhone]~(p:Phone)");
  EXPECT_EQ(sub.num_edges(), 6u);
  for (EdgeId e = 0; e < sub.num_edges(); ++e) {
    EXPECT_FALSE(sub.edge(e).directed);
  }
}

TEST_F(GraphProjectionTest, ProjectionIsQueryableAgain) {
  // Composability: run GPML over the projected graph (Figure 9's "new
  // graph" output feeding another MATCH).
  PropertyGraph sub = Project(
      "MATCH TRAIL (a WHERE a.owner='Dave')-[t:Transfer]->*"
      "(b WHERE b.owner='Aretha')");
  Engine engine(sub);
  Result<MatchOutput> out = engine.Match(
      "MATCH ANY SHORTEST (a WHERE a.owner='Dave')-[t:Transfer]->*"
      "(b WHERE b.owner='Aretha')");
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->rows.size(), 1u);
  EXPECT_EQ(out->rows[0].bindings[0]->path.ToString(sub),
            "path(a6,t5,a3,t2,a2)");
}

}  // namespace
}  // namespace gpml
