#include "graph/property_graph.h"

#include <algorithm>
#include <atomic>

namespace gpml {

uint64_t PropertyGraph::NextIdentityToken() {
  // Starts at 1 so 0 can mean "no graph" in cache keys and tests.
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool ElementData::HasLabel(const std::string& label) const {
  return std::binary_search(labels.begin(), labels.end(), label);
}

const Value& ElementData::GetProperty(const std::string& prop) const {
  static const Value kNull = Value::Null();
  auto it = properties.find(prop);
  return it == properties.end() ? kNull : it->second;
}

NodeId PropertyGraph::FindNode(const std::string& name) const {
  auto it = node_by_name_.find(name);
  return it == node_by_name_.end() ? kInvalidId : it->second;
}

EdgeId PropertyGraph::FindEdge(const std::string& name) const {
  auto it = edge_by_name_.find(name);
  return it == edge_by_name_.end() ? kInvalidId : it->second;
}

const std::vector<NodeId>& PropertyGraph::NodesWithLabel(
    const std::string& label) const {
  static const std::vector<NodeId> kEmpty;
  auto it = nodes_by_label_.find(label);
  return it == nodes_by_label_.end() ? kEmpty : it->second;
}

const std::vector<EdgeId>& PropertyGraph::EdgesWithLabel(
    const std::string& label) const {
  static const std::vector<EdgeId> kEmpty;
  auto it = edges_by_label_.find(label);
  return it == edges_by_label_.end() ? kEmpty : it->second;
}

NodeId PropertyGraph::Cross(EdgeId e, NodeId from, Traversal t) const {
  const EdgeData& ed = edges_[e];
  switch (t) {
    case Traversal::kForward:
      if (ed.directed && ed.u == from) return ed.v;
      return kInvalidId;
    case Traversal::kBackward:
      if (ed.directed && ed.v == from) return ed.u;
      return kInvalidId;
    case Traversal::kUndirected:
      if (!ed.directed) {
        if (ed.u == from) return ed.v;
        if (ed.v == from) return ed.u;
      }
      return kInvalidId;
  }
  return kInvalidId;
}

std::string PropertyGraph::Summary() const {
  return std::to_string(num_nodes()) + " nodes, " + std::to_string(num_edges()) +
         " edges";
}

void PropertyGraph::BuildIndexes() {
  adjacency_.assign(nodes_.size(), {});
  node_by_name_.clear();
  edge_by_name_.clear();
  nodes_by_label_.clear();
  edges_by_label_.clear();

  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (!nodes_[n].name.empty()) node_by_name_[nodes_[n].name] = n;
    for (const std::string& l : nodes_[n].labels) {
      nodes_by_label_[l].push_back(n);
    }
  }
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const EdgeData& ed = edges_[e];
    if (!ed.name.empty()) edge_by_name_[ed.name] = e;
    for (const std::string& l : ed.labels) edges_by_label_[l].push_back(e);
    if (ed.directed) {
      adjacency_[ed.u].push_back({e, ed.v, Traversal::kForward});
      adjacency_[ed.v].push_back({e, ed.u, Traversal::kBackward});
    } else {
      adjacency_[ed.u].push_back({e, ed.v, Traversal::kUndirected});
      // A non-loop undirected edge can be crossed from either endpoint; a
      // loop contributes a single adjacency record.
      if (ed.u != ed.v) {
        adjacency_[ed.v].push_back({e, ed.u, Traversal::kUndirected});
      }
    }
  }
}

}  // namespace gpml
