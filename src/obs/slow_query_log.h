#ifndef GPML_OBS_SLOW_QUERY_LOG_H_
#define GPML_OBS_SLOW_QUERY_LOG_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gpml {
namespace obs {

/// What the engine captures when an execution's wall clock exceeds
/// EngineOptions::slow_query_ms: enough to reconstruct what ran, where the
/// time went, and what the planner did — without the user having had
/// tracing attached in advance.
struct SlowQueryRecord {
  uint64_t sequence = 0;     // Monotonic per log; total_added() - N .. -1.
  uint64_t graph_token = 0;  // PropertyGraph::identity_token of the run.
  std::string fingerprint;   // Parameterized pattern text ($names kept).
  double total_ms = 0;       // Wall clock of the execution.
  size_t rows = 0;           // Result rows delivered.
  std::string explain;       // EXPLAIN ANALYZE rendering with actuals.
  std::string trace_json;    // The execution's span tree as JSON lines.
  std::string tenant;        // Server tenant ("" for in-process hosts).
  std::string trace_id;      // Client-supplied correlation id ("" if none).
};

/// A bounded, thread-safe ring buffer of slow-query captures: the newest
/// `capacity` records are kept, older ones are overwritten. Only slow
/// executions ever touch the mutex, so the buffer costs the hot path
/// nothing. Retrievable from both hosts (gql::Session::SlowQueries,
/// pgq::GraphTableSlowQueries) and directly via GlobalSlowQueryLog().
class SlowQueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  explicit SlowQueryLog(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Add(SlowQueryRecord record);

  /// The retained records, oldest first.
  std::vector<SlowQueryRecord> Snapshot() const;

  /// Records ever added (retained + overwritten).
  uint64_t total_added() const;

  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  std::vector<SlowQueryRecord> ring_;  // Grows to capacity_, then wraps.
  size_t next_ = 0;                    // Overwrite position once full.
  uint64_t added_ = 0;
};

/// The process-wide slow-query log the engine uses when
/// EngineOptions::slow_log is null. Never destroyed (safe during static
/// teardown).
SlowQueryLog& GlobalSlowQueryLog();

}  // namespace obs
}  // namespace gpml

#endif  // GPML_OBS_SLOW_QUERY_LOG_H_
