#ifndef GPML_GQL_RESULT_TABLE_H_
#define GPML_GQL_RESULT_TABLE_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "catalog/table.h"
#include "common/result.h"
#include "eval/engine.h"

namespace gpml {

/// Projects pattern-matching output through RETURN/COLUMNS items into a
/// relational table — the common machinery behind GQL's RETURN and
/// SQL/PGQ's GRAPH_TABLE ... COLUMNS (Figure 9). Elements render as their
/// external names, paths in path(...) notation, group variables referenced
/// under aggregates per §4.4.
Result<Table> ProjectRows(const MatchOutput& output, const PropertyGraph& g,
                          const std::vector<ReturnItem>& items,
                          bool distinct);

/// Convenience projection when no RETURN list is given: one column per
/// named, non-anonymous element variable (group variables render as a
/// comma-separated list) plus one per path variable.
Result<Table> ProjectAllVariables(const MatchOutput& output,
                                  const PropertyGraph& g);

/// Streaming projection: pulls rows out of `cursor` and projects them as
/// they arrive, so LIMIT queries never materialize the full match set.
/// Row content and order are identical to ProjectRows over the
/// materialized output (a prefix under `limit`). DISTINCT keeps ProjectRows
/// parity too — set semantics with the final sort of DeduplicateRows — so
/// it dedupes while streaming but drains the source fully and applies
/// `limit` to the sorted distinct rows.
Result<Table> ProjectCursor(Cursor& cursor, const PropertyGraph& g,
                            const std::vector<ReturnItem>& items,
                            bool distinct,
                            std::optional<uint64_t> limit = std::nullopt);

}  // namespace gpml

#endif  // GPML_GQL_RESULT_TABLE_H_
