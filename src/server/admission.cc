#include "server/admission.h"

#include <algorithm>
#include <limits>

namespace gpml {
namespace server {

void AdmissionController::SetQuota(const std::string& tenant,
                                   TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = GetLocked(tenant);
  state.quota = quota;
  state.quota_set = true;
}

TenantQuota AdmissionController::QuotaFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TenantState* state = FindLocked(tenant);
  if (state == nullptr) return default_quota_;
  return EffectiveQuotaLocked(*state);
}

Status AdmissionController::AdmitSession(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = GetLocked(tenant);
  const TenantQuota& quota = EffectiveQuotaLocked(state);
  if (quota.max_sessions != 0 && state.sessions >= quota.max_sessions) {
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' is at its session quota (" +
        std::to_string(quota.max_sessions) + ")");
  }
  ++state.sessions;
  return Status::OK();
}

void AdmissionController::ReleaseSession(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = GetLocked(tenant);
  if (state.sessions > 0) --state.sessions;
}

Status AdmissionController::AdmitQuery(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = GetLocked(tenant);
  const TenantQuota& quota = EffectiveQuotaLocked(state);
  if (quota.max_total_steps != 0 &&
      state.total_steps >= quota.max_total_steps) {
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' spent its cumulative step budget (" +
        std::to_string(quota.max_total_steps) + " steps)");
  }
  if (quota.max_concurrent != 0 && state.in_flight >= quota.max_concurrent) {
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' is at its concurrency quota (" +
        std::to_string(quota.max_concurrent) + " queries in flight)");
  }
  ++state.in_flight;
  return Status::OK();
}

void AdmissionController::ReleaseQuery(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = GetLocked(tenant);
  if (state.in_flight > 0) --state.in_flight;
}

void AdmissionController::ChargeSteps(const std::string& tenant,
                                      uint64_t steps) {
  std::lock_guard<std::mutex> lock(mu_);
  GetLocked(tenant).total_steps += steps;
}

uint64_t AdmissionController::RemainingSteps(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TenantState* state = FindLocked(tenant);
  uint64_t cap = state != nullptr ? EffectiveQuotaLocked(*state).max_total_steps
                                  : default_quota_.max_total_steps;
  if (cap == 0) return std::numeric_limits<uint64_t>::max();
  uint64_t spent = state != nullptr ? state->total_steps : 0;
  return spent >= cap ? 0 : cap - spent;
}

MatcherOptions AdmissionController::ApplyQuota(const std::string& tenant,
                                               MatcherOptions matcher) const {
  TenantQuota quota = QuotaFor(tenant);
  uint64_t remaining = RemainingSteps(tenant);
  if (quota.max_steps_per_query != 0) {
    matcher.max_steps = std::min(matcher.max_steps, quota.max_steps_per_query);
  }
  if (remaining < matcher.max_steps) {
    matcher.max_steps = static_cast<size_t>(remaining);
  }
  if (quota.max_matches_per_query != 0) {
    matcher.max_matches =
        std::min(matcher.max_matches, quota.max_matches_per_query);
  }
  return matcher;
}

AdmissionController::TenantCounts AdmissionController::CountsFor(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TenantState* state = FindLocked(tenant);
  if (state == nullptr) return {};
  return {state->sessions, state->in_flight, state->total_steps};
}

const AdmissionController::TenantState* AdmissionController::FindLocked(
    const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

AdmissionController::TenantState& AdmissionController::GetLocked(
    const std::string& tenant) {
  return tenants_[tenant];
}

const TenantQuota& AdmissionController::EffectiveQuotaLocked(
    const TenantState& state) const {
  return state.quota_set ? state.quota : default_quota_;
}

}  // namespace server
}  // namespace gpml
