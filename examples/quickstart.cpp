// Quickstart: build a property graph, run GPML patterns, print results.
//
// This walks the first steps of the paper: the Figure 1 banking graph, node
// and edge patterns (§4.1), concatenation (§4.2), quantifiers (§4.4), a
// restrictor (§5) and a selector (Figure 8) — then shows the observability
// layer (docs/observability.md): a per-query trace of the engine's stages
// and the Prometheus rendering of the graph's metrics registry.

#include <cstdio>
#include <string>

#include "catalog/catalog.h"
#include "eval/engine.h"
#include "gql/result_table.h"
#include "gql/session.h"
#include "graph/sample_graph.h"
#include "obs/trace.h"

namespace {

void Run(const gpml::Session& session, const std::string& query) {
  std::printf("gpml> %s\n", query.c_str());
  gpml::Result<gpml::Table> table = session.Execute(query);
  if (!table.ok()) {
    std::printf("  error: %s\n\n", table.status().ToString().c_str());
    return;
  }
  std::printf("%s(%zu rows)\n\n", table->ToString().c_str(),
              table->num_rows());
}

}  // namespace

int main() {
  gpml::Catalog catalog;
  gpml::Status st = catalog.AddGraph("bank", gpml::BuildPaperGraph());
  if (!st.ok()) {
    std::printf("setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  gpml::Session session(catalog);
  st = session.UseGraph("bank");
  if (!st.ok()) {
    std::printf("USE failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // §4.1: node patterns with label and property filters.
  Run(session,
      "MATCH (x:Account WHERE x.isBlocked='no') RETURN x.owner AS owner");

  // §4.1: edge patterns.
  Run(session,
      "MATCH -[e:Transfer WHERE e.amount>5M]-> RETURN e AS transfer");

  // §4.2: concatenation; all directed 2-hop transfer chains.
  Run(session,
      "MATCH (s)-[e:Transfer]->(m)-[f:Transfer]->(t) "
      "RETURN s, m, t");

  // §4.4: quantified patterns with a group aggregate postfilter.
  Run(session,
      "MATCH (a:Account) [()-[t:Transfer]->() WHERE t.amount>1M]{2,5} "
      "(b:Account) WHERE SUM(t.amount) > 30M "
      "RETURN a.owner AS src, b.owner AS dst, SUM(t.amount) AS total");

  // §5: TRAIL restrictor, the Dave-to-Aretha example.
  Run(session,
      "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->* "
      "(b WHERE b.owner='Aretha') RETURN p");

  // Figure 8: ANY SHORTEST selector.
  Run(session,
      "MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[t:Transfer]->* "
      "(b WHERE b.owner='Aretha') RETURN p");

  // Observability: attach a trace to the session and re-run one query to
  // see where the engine spent its time, stage by stage.
  gpml::obs::Trace trace;
  gpml::EngineOptions traced = session.options();
  traced.trace = &trace;
  session.set_options(traced);
  Run(session,
      "MATCH (x:Account WHERE x.isBlocked='no') RETURN x.owner AS owner");
  std::printf("trace of the last query (one JSON line per span):\n%s\n",
              trace.ToJsonLines().c_str());

  // Every execution above also fed the graph's metrics registry; this is
  // what a monitoring server would scrape from /metrics.
  gpml::Result<std::string> metrics = session.MetricsText();
  if (metrics.ok()) {
    std::printf("metrics registry (Prometheus text format):\n%s",
                metrics->c_str());
  }

  return 0;
}
