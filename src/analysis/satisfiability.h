#ifndef GPML_ANALYSIS_SATISFIABILITY_H_
#define GPML_ANALYSIS_SATISFIABILITY_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "ast/ast.h"
#include "common/value.h"

namespace gpml {
namespace analysis {

/// Folds a literal-only expression tree to its constant value using the
/// runtime Value operations. Returns nullopt when the tree touches
/// variables, parameters or graph state, or when evaluation would error
/// (the type checker owns those diagnostics).
std::optional<Value> FoldConstant(const Expr& e);

/// Classifies a predicate under SQL three-valued logic when its truth value
/// is independent of any binding. Short-circuits through AND/OR, so
/// `FALSE AND x.a = 1` folds to kFalse even though the right side does not
/// fold. Returns nullopt when the outcome depends on bindings.
std::optional<TriBool> FoldPredicate(const Expr& e);

/// True if any node in the tree is a $parameter reference.
bool ContainsParam(const Expr& e);

/// Appends the conjuncts of the top-level AND chain of `e` (left-to-right).
void FlattenAnd(const ExprPtr& e, std::vector<ExprPtr>* out);

/// Satisfiability verdict for one WHERE site: emits GPML-W101 (constant
/// FALSE/UNKNOWN), GPML-W102 (constant TRUE) and GPML-W103 (contradictory
/// `var.prop = literal` conjuncts) and returns true when the predicate can
/// never hold. Pass emit_always_true=false when the caller also runs
/// DropAlwaysTrueConjuncts on the same predicate (it owns the W102s then).
bool PredicateUnsatisfiable(const ExprPtr& where, DiagnosticList* diags,
                            bool emit_always_true = true);

/// Rewrites a postfilter by dropping parameter-free conjuncts that fold to
/// constant TRUE (emitting GPML-W102 per dropped conjunct). TriAnd(TRUE, x)
/// = x, so the rewrite is row-preserving; parameter-bearing conjuncts are
/// kept so the bind-time ParamSignature is unchanged. Returns the rewritten
/// predicate — nullptr when every conjunct was dropped, `where` unchanged
/// when nothing folded.
ExprPtr DropAlwaysTrueConjuncts(const ExprPtr& where, DiagnosticList* diags);

/// Detects label conjunctions that no element can satisfy: a name both
/// required and negated along a pure AND spine (`:A & !A`). On detection
/// stores the conflicting name and returns true.
bool LabelConjunctionContradicts(const LabelExpr& labels,
                                 std::string* conflicted);

}  // namespace analysis
}  // namespace gpml

#endif  // GPML_ANALYSIS_SATISFIABILITY_H_
