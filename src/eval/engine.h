#ifndef GPML_EVAL_ENGINE_H_
#define GPML_EVAL_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/result.h"
#include "eval/binding.h"
#include "eval/expr_eval.h"
#include "eval/matcher.h"
#include "graph/property_graph.h"
#include "semantics/analyze.h"

namespace gpml {

struct EngineOptions {
  MatcherOptions matcher;
  size_t max_rows = 1u << 20;  // Join-output guard.
};

/// One solution of a graph pattern: a path binding per path declaration
/// (§6.5 "Multiple patterns"), sharing singleton variables.
struct ResultRow {
  std::vector<std::shared_ptr<const PathBinding>> bindings;
};

/// The output of pattern matching, self-contained: rows plus the compiled
/// context needed to interpret them (variable table, normalized pattern with
/// the expressions the rows may be projected through, per-declaration path
/// variables).
struct MatchOutput {
  std::vector<ResultRow> rows;
  std::shared_ptr<const VarTable> vars;
  GraphPattern normalized;        // Keeps pattern ASTs alive.
  std::vector<int> path_vars;     // Per declaration; -1 when absent.

  size_t size() const { return rows.size(); }
};

/// Expression scope over one result row: singleton lookups see the last
/// binding of a variable, group collections span the whole row, path
/// variables resolve to their declaration's matched path. Used for the
/// final WHERE postfilter and by both hosts for projection.
class RowScope : public EvalScope {
 public:
  RowScope(const MatchOutput& output, const ResultRow& row)
      : output_(output), row_(row) {}

  std::optional<ElementRef> LookupSingleton(int var) const override;
  std::vector<ElementRef> CollectGroup(int var) const override;
  const Path* LookupPath(int var) const override;

 private:
  const MatchOutput& output_;
  const ResultRow& row_;
};

/// The GPML processor of Figure 9: evaluates graph patterns over one
/// property graph. Both hosts (SQL/PGQ's GRAPH_TABLE and GQL sessions)
/// delegate here; the pre-projection semantics is identical in both, as the
/// paper requires.
class Engine {
 public:
  explicit Engine(const PropertyGraph& graph, EngineOptions options = {})
      : graph_(graph), options_(options) {}

  /// Full pipeline from MATCH text: parse, normalize (§6.2), analyze
  /// (§4.4/§4.6/§4.7), termination-check (§5), compile, match, join
  /// declarations on shared singletons, apply the final WHERE.
  Result<MatchOutput> Match(const std::string& match_text) const;

  /// Same, starting from a parsed (unnormalized) pattern.
  Result<MatchOutput> Match(const GraphPattern& pattern) const;

  const PropertyGraph& graph() const { return graph_; }
  const EngineOptions& options() const { return options_; }

 private:
  const PropertyGraph& graph_;
  EngineOptions options_;
};

}  // namespace gpml

#endif  // GPML_EVAL_ENGINE_H_
