#ifndef GPML_EVAL_REFERENCE_EVAL_H_
#define GPML_EVAL_REFERENCE_EVAL_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/result.h"
#include "eval/binding.h"
#include "eval/matcher.h"
#include "graph/property_graph.h"

namespace gpml {

/// The reference evaluator implements the execution model of Section 6
/// *literally*: patterns are expanded into a set of rigid patterns (fixed
/// quantifier iteration counts, one union/alternation branch each, §6.3),
/// each rigid pattern is matched and joined (§6.4), bindings are reduced and
/// deduplicated (§6.5), and selectors run last. It exists for two purposes:
///
///  * it regenerates the intermediate artifacts of the paper's worked
///    example (the rigid patterns π(n,ℓ) and their annotated bindings);
///  * it differentially tests the production NFA engine: both must produce
///    identical reduced binding sets on every graph and pattern.
///
/// Unbounded quantifiers are expanded up to a cap. With a restrictor in
/// scope the cap is exact (TRAIL paths have at most |E| edges, ACYCLIC /
/// SIMPLE at most |N|); with only a selector the cap is a configured
/// approximation — fine for the differential tests, which compare against
/// shortest-path results on small graphs.
struct ReferenceOptions {
  /// 0 = auto: |E|+1 under TRAIL, |N|+1 under ACYCLIC/SIMPLE,
  /// 2|N|+2 otherwise.
  uint64_t expansion_cap = 0;
  size_t max_rigid_patterns = 200000;
  size_t max_matches = 1u << 20;
};

/// One item of a rigid pattern: an annotated node or edge pattern. The
/// annotation (the paper's superscripts) is the iteration path, e.g. b in
/// the third iteration of the first quantifier is rendered "b^3".
struct RigidItem {
  bool is_node = true;
  const NodePattern* node = nullptr;
  const EdgePattern* edge = nullptr;
  int var = -1;             // Interned base variable.
  std::string suffix;       // Iteration annotation ("", "^3", "^3^1", ...).
};

/// A WHERE attached to a segment of the rigid pattern (parenthesized or
/// per-iteration predicate), evaluated when the segment completes.
struct RigidWhere {
  ExprPtr expr;
  size_t from = 0;  // Item range [from, to).
  size_t to = 0;
  std::string suffix;  // Resolution context for singleton references.
};

/// A restrictor over a segment of the rigid pattern.
struct RigidScope {
  Restrictor restrictor = Restrictor::kNone;
  size_t from = 0;
  size_t to = 0;
};

struct RigidPattern {
  std::vector<RigidItem> items;
  std::vector<RigidWhere> wheres;
  std::vector<RigidScope> scopes;
  std::vector<int32_t> tags;

  /// Rendering à la §6.3: (a)-[b^1:Transfer...]->($n2^1)...
  std::string ToString(const VarTable& vars) const;
};

/// Expands a normalized declaration into rigid patterns (§6.3). Exposed so
/// tests can reproduce the paper's π(n,ℓ) listings.
Result<std::vector<RigidPattern>> ExpandPattern(
    const PathPatternDecl& decl, const VarTable& vars,
    const PropertyGraph& g, const ReferenceOptions& options);

/// Full reference evaluation of one declaration (§6.3–§6.5 + selector).
Result<MatchSet> RunReference(const PropertyGraph& g,
                              const PathPatternDecl& decl,
                              const VarTable& vars,
                              const ReferenceOptions& options);

}  // namespace gpml

#endif  // GPML_EVAL_REFERENCE_EVAL_H_
