#include "eval/matcher.h"

#include <algorithm>
#include <map>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "eval/expr_eval.h"
#include "eval/selector.h"
#include "obs/clock.h"

namespace gpml {

namespace {

// ---------------------------------------------------------------------------
// Persistent id set (restrictor memory): linked additions, O(depth) lookup.
// ---------------------------------------------------------------------------

struct IdSetNode {
  uint32_t id;
  std::shared_ptr<const IdSetNode> prev;
};
using IdSet = std::shared_ptr<const IdSetNode>;

bool IdSetContains(const IdSet& set, uint32_t id) {
  for (const IdSetNode* cur = set.get(); cur != nullptr;
       cur = cur->prev.get()) {
    if (cur->id == id) return true;
  }
  return false;
}

IdSet IdSetAdd(const IdSet& set, uint32_t id) {
  auto node = std::make_shared<IdSetNode>();
  node->id = id;
  node->prev = set;
  return node;
}

size_t IdSetHash(const IdSet& set) {
  // Order-insensitive: XOR of element hashes (sets, not sequences).
  size_t h = 0;
  for (const IdSetNode* cur = set.get(); cur != nullptr;
       cur = cur->prev.get()) {
    h ^= (cur->id + 0x9e3779b9u) * 0x85ebca6bu;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Search state
// ---------------------------------------------------------------------------

struct ScopeState {
  int scope_id = -1;
  Restrictor restrictor = Restrictor::kNone;
  NodeId start_node = kInvalidId;
  bool start_revisited = false;  // SIMPLE: the one allowed repeat happened.
  IdSet edges;                   // TRAIL memory.
  IdSet nodes;                   // ACYCLIC / SIMPLE memory.
};

struct FrameState {
  uint32_t chain_size_at_begin = 0;
  uint32_t edges_at_begin = 0;
};

/// serials[depth] with inline storage: states are copied on every accepted
/// edge step, and quantifier nesting deeper than the inline capacity is
/// rare, so the common copy is a memcpy instead of a vector allocation.
class Serials {
 public:
  void assign(size_t n, uint64_t v) {
    if (n > kInline) {
      big_.assign(n, v);
    } else {
      big_.clear();
      for (size_t i = 0; i < kInline; ++i) small_[i] = v;
    }
  }
  uint64_t& operator[](size_t i) {
    return big_.empty() ? small_[i] : big_[i];
  }
  uint64_t operator[](size_t i) const {
    return big_.empty() ? small_[i] : big_[i];
  }

 private:
  static constexpr size_t kInline = 4;
  uint64_t small_[kInline] = {0, 0, 0, 0};
  std::vector<uint64_t> big_;
};

struct State {
  int pc = 0;
  NodeId node = kInvalidId;
  NodeId start = kInvalidId;
  uint32_t edges = 0;
  BindingChain chain;
  EnvChain env;
  Serials serials;  // Index = quantifier depth; [0] == 0.
  std::vector<FrameState> frames;
  std::vector<ScopeState> scopes;
  std::vector<int32_t> tags;
};

// ---------------------------------------------------------------------------
// Expression scope over an in-flight state
// ---------------------------------------------------------------------------

class SearchScope : public EvalScope {
 public:
  SearchScope(const State& state, int pending_var, ElementRef pending_el,
              bool has_pending, const Params* params)
      : state_(state),
        pending_var_(pending_var),
        pending_el_(pending_el),
        has_pending_(has_pending),
        params_(params) {}

  std::optional<ElementRef> LookupSingleton(int var) const override {
    if (has_pending_ && var == pending_var_) return pending_el_;
    const EnvLink* e = LookupEnv(state_.env, var);
    if (e == nullptr) return std::nullopt;
    return e->element;
  }

  std::vector<ElementRef> CollectGroup(int var) const override {
    // Innermost frame delimits the group (§4.4 per-iteration predicates and
    // §5.3 prefilters); without a frame, the whole binding so far.
    uint32_t floor = state_.frames.empty()
                         ? 0
                         : state_.frames.back().chain_size_at_begin;
    std::vector<ElementRef> out;
    for (const BindingLink* cur = state_.chain.get();
         cur != nullptr && cur->size > floor; cur = cur->prev.get()) {
      if (cur->binding.var == var) out.push_back(cur->binding.element);
    }
    std::reverse(out.begin(), out.end());
    if (has_pending_ && var == pending_var_) out.push_back(pending_el_);
    return out;
  }

  const Value* LookupParam(const std::string& name) const override {
    return FindParam(params_, name);
  }

 private:
  const State& state_;
  int pending_var_;
  ElementRef pending_el_;
  bool has_pending_;
  const Params* params_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Seed computation (shared by all shards; computed once per RunPattern)
// ---------------------------------------------------------------------------

/// Seeds: start nodes. An explicit seed filter (planner-restricted start
/// list) takes precedence; otherwise, when the first check constrains the
/// node's labels with required conjuncts (a plain name, or any conjunction
/// containing names), only nodes carrying every conjunct can match, so seed
/// from the most selective conjunct's label index — a superset of the
/// matches in the same ascending-id order the full scan would visit them.
std::vector<NodeId> ComputeSeeds(const PropertyGraph& g,
                                 const Program& program,
                                 const std::vector<NodeId>* seed_filter) {
  if (seed_filter != nullptr) return *seed_filter;
  int pc = program.start;
  while (true) {
    const Instr& in = program.code[static_cast<size_t>(pc)];
    if (in.op == Instr::Op::kScopeBegin || in.op == Instr::Op::kJump ||
        in.op == Instr::Op::kFrameBegin || in.op == Instr::Op::kTag) {
      pc = in.next;
      continue;
    }
    if (in.op == Instr::Op::kNodeCheck && in.node->labels != nullptr) {
      std::vector<const std::string*> required;
      in.node->labels->CollectRequiredNames(&required);
      const std::vector<NodeId>* best = nullptr;
      for (const std::string* name : required) {
        const std::vector<NodeId>& candidates = g.NodesWithLabel(*name);
        if (best == nullptr || candidates.size() < best->size()) {
          best = &candidates;
        }
      }
      if (best != nullptr) return *best;
    }
    break;
  }
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) all[i] = i;
  return all;
}

namespace {

// ---------------------------------------------------------------------------
// The matcher: one shard's search over a contiguous block of the seed list
// ---------------------------------------------------------------------------

class Matcher {
 public:
  /// `budget` == nullptr (single-shard runs) keeps the limits in plain
  /// local counters — the exact historical per-step check, no atomics in
  /// the interpreter loop. With a shared budget (parallel shards), steps
  /// are charged in batches of `charge_stride` to keep the hot loop off the
  /// shared cache line (overshoot bounded by one batch per shard).
  Matcher(const PropertyGraph& g, const Program& program, const VarTable& vars,
          const MatcherOptions& options, const NodeId* seeds,
          size_t num_seeds, SharedBudget* budget, size_t charge_stride,
          const Params* params)
      : g_(g),
        program_(program),
        vars_(vars),
        options_(options),
        seeds_(seeds),
        num_seeds_(num_seeds),
        budget_(budget),
        charge_stride_(charge_stride),
        params_(params) {}

  Status Run() {
    if (!program_.selector.IsNone()) return RunBfs();
    // Block-at-a-time route (docs/vectorized.md): eligible linear programs
    // with all predicate kernels bindable. Anything else — and the
    // differential oracle with use_batch off — runs the tuple-at-a-time
    // interpreter.
    if (options_.use_batch && TryBindBatch()) return RunBatch();
    return RunDfs();
  }

  /// Raw accepted bindings in discovery order, deduplicated within this
  /// shard (DFS: seed order; BFS: level order). Sorting, cross-shard
  /// deduplication, and the selector are applied by the caller's merge.
  std::vector<PathBinding> TakeResults() { return std::move(results_); }

  size_t steps() const { return steps_; }
  size_t batch_blocks() const { return batch_blocks_; }
  size_t batch_candidates() const { return batch_candidates_; }
  size_t batch_survivors() const { return batch_survivors_; }

 private:
  // --- shared helpers ------------------------------------------------------

  Status Budget() {
    ++steps_;
    if (budget_ == nullptr) {
      if (steps_ > options_.max_steps) {
        return Status::ResourceExhausted(
            "match search exceeded max_steps; tighten the pattern or raise "
            "MatcherOptions::max_steps");
      }
      return Status::OK();
    }
    if (++pending_steps_ >= charge_stride_) {
      size_t n = pending_steps_;
      pending_steps_ = 0;
      return budget_->ChargeSteps(n);
    }
    return Status::OK();
  }

  State MakeStart(NodeId s) const {
    State st;
    st.pc = program_.start;
    st.node = s;
    st.start = s;
    st.serials.assign(static_cast<size_t>(program_.max_depth) + 1, 0);
    return st;
  }

  /// Label admissibility of a node check: the graph-bound symbol predicate
  /// when available (bit tests, no strings), else the legacy string match.
  bool NodeLabelsMatch(const Instr& in, NodeId node) const {
    if (in.node->labels == nullptr) return true;
    if (options_.use_csr && in.lpred >= 0) {
      SymSpan syms = g_.node_label_syms(node);
      return program_.label_preds[static_cast<size_t>(in.lpred)].Matches(
          g_.node_label_bits(node), syms.data, syms.count);
    }
    return in.node->labels->Matches(g_.node(node).labels);
  }

  /// Same for an edge step's label expression.
  bool EdgeLabelsMatch(const Instr& in, EdgeId edge) const {
    if (in.edge->labels == nullptr) return true;
    if (options_.use_csr && in.lpred >= 0) {
      SymSpan syms = g_.edge_label_syms(edge);
      return program_.label_preds[static_cast<size_t>(in.lpred)].Matches(
          g_.edge_label_bits(edge), syms.data, syms.count);
    }
    return in.edge->labels->Matches(g_.edge(edge).labels);
  }

  /// The adjacency records an edge step must consider from `node`: with the
  /// CSR path and a usable label partition, the contiguous bucket of the
  /// step's (most selective) label symbol; otherwise the full list.
  /// `*prefiltered` reports that bucket membership already implies the label
  /// expression (single plain names), so TryEdge skips the re-check.
  AdjSpan ExpansionRange(const Instr& in, NodeId node,
                         bool* prefiltered) const {
    if (options_.use_csr && in.edge_label_sym != kNoLabelPartition) {
      *prefiltered = in.edge_prefiltered;
      if (in.edge_label_sym == kInvalidSymbol) return {};  // Unknown label.
      return g_.csr().Range(node, in.edge_label_sym);
    }
    *prefiltered = false;
    return g_.AdjacencySpan(node);
  }

  /// Checks a node pattern against `node` with `state`'s environment;
  /// returns false to prune. On success appends the binding (out).
  Result<bool> ApplyNodeCheck(const Instr& in, State* state) {
    const NodePattern& np = *in.node;
    if (!NodeLabelsMatch(in, state->node)) return false;
    ElementRef ref = ElementRef::Node(state->node);

    // Implicit equi-join (§4.2): a previous binding of the same variable in
    // the same iteration instance must be the same node.
    const VarInfo& vi = vars_.info(in.var);
    if (!vi.anonymous) {
      const EnvLink* prev = LookupEnv(state->env, in.var);
      uint64_t serial = state->serials[static_cast<size_t>(vi.depth)];
      if (prev != nullptr && prev->serial == serial) {
        if (!(prev->element == ref)) return false;
      } else {
        state->env = ExtendEnv(state->env, in.var, ref, serial);
      }
    }
    if (np.where != nullptr) {
      SearchScope scope(*state, in.var, ref, /*has_pending=*/true, params_);
      GPML_ASSIGN_OR_RETURN(TriBool ok,
                            EvalPredicate(*np.where, g_, vars_, scope));
      if (ok != TriBool::kTrue) return false;
    }
    state->chain = Extend(state->chain, {in.var, ref});
    return true;
  }

  /// Orientation admissibility (Figure 5).
  static bool Admits(EdgeOrientation o, Traversal t) {
    switch (o) {
      case EdgeOrientation::kLeft: return t == Traversal::kBackward;
      case EdgeOrientation::kUndirected: return t == Traversal::kUndirected;
      case EdgeOrientation::kRight: return t == Traversal::kForward;
      case EdgeOrientation::kLeftOrUndirected:
        return t != Traversal::kForward;
      case EdgeOrientation::kUndirectedOrRight:
        return t != Traversal::kBackward;
      case EdgeOrientation::kLeftOrRight: return t != Traversal::kUndirected;
      case EdgeOrientation::kAny: return true;
    }
    return false;
  }

  /// Restrictor admission of the edge step (eid, next), split into a
  /// side-effect-free check on the source state and a mutation applied to
  /// the successor copy — so rejected steps never pay the State copy.
  /// Together they implement exactly the historical per-scope semantics:
  /// TRAIL forbids edge repeats, ACYCLIC node repeats, SIMPLE allows one
  /// repeat of the scope's first node as the final position.
  static bool CheckRestrictors(const State& state, EdgeId eid, NodeId next) {
    for (const ScopeState& sc : state.scopes) {
      switch (sc.restrictor) {
        case Restrictor::kTrail:
          if (IdSetContains(sc.edges, eid)) return false;
          break;
        case Restrictor::kAcyclic:
          if (IdSetContains(sc.nodes, next)) return false;
          break;
        case Restrictor::kSimple:
          if (sc.start_revisited) return false;
          if (IdSetContains(sc.nodes, next) && next != sc.start_node) {
            return false;
          }
          break;
        case Restrictor::kNone:
          break;
      }
    }
    return true;
  }

  /// Applies the step to the successor's scope memories. Pre-condition:
  /// CheckRestrictors passed on the source state (which shares the same
  /// persistent id sets), so a SIMPLE repeat here can only be the start
  /// node closing the path.
  static void ApplyRestrictors(State* state, EdgeId eid, NodeId next) {
    for (ScopeState& sc : state->scopes) {
      switch (sc.restrictor) {
        case Restrictor::kTrail:
          sc.edges = IdSetAdd(sc.edges, eid);
          break;
        case Restrictor::kAcyclic:
          sc.nodes = IdSetAdd(sc.nodes, next);
          break;
        case Restrictor::kSimple:
          if (IdSetContains(sc.nodes, next)) {
            sc.start_revisited = true;
          } else {
            sc.nodes = IdSetAdd(sc.nodes, next);
          }
          break;
        case Restrictor::kNone:
          break;
      }
    }
  }

  /// Attempts the edge step `in` from `state` over adjacency `adj`;
  /// on success returns the successor state. `label_prechecked` is set when
  /// `adj` came from the CSR partition that already guarantees the label
  /// expression.
  Result<std::optional<State>> TryEdge(const Instr& in, const State& state,
                                       const Adjacency& adj,
                                       bool label_prechecked) {
    const EdgePattern& ep = *in.edge;
    if (!Admits(ep.orientation, adj.traversal)) return std::optional<State>();
    if (!label_prechecked && !EdgeLabelsMatch(in, adj.edge)) {
      return std::optional<State>();
    }
    ElementRef ref = ElementRef::Edge(adj.edge);

    // Every rejection test runs against the source state first; the State
    // copy (persistent-chain refcounts, scope/frame vectors) is paid only
    // by admitted steps.
    const VarInfo& vi = vars_.info(in.var);
    bool extend_env = false;
    uint64_t serial = 0;
    if (!vi.anonymous) {
      const EnvLink* prev = LookupEnv(state.env, in.var);
      serial = state.serials[static_cast<size_t>(vi.depth)];
      if (prev != nullptr && prev->serial == serial) {
        if (!(prev->element == ref)) return std::optional<State>();
      } else {
        extend_env = true;
      }
    }
    if (ep.where != nullptr) {
      SearchScope scope(state, in.var, ref, /*has_pending=*/true, params_);
      GPML_ASSIGN_OR_RETURN(TriBool ok,
                            EvalPredicate(*ep.where, g_, vars_, scope));
      if (ok != TriBool::kTrue) return std::optional<State>();
    }
    if (!CheckRestrictors(state, adj.edge, adj.neighbor)) {
      return std::optional<State>();
    }

    State next = state;
    if (extend_env) next.env = ExtendEnv(next.env, in.var, ref, serial);
    ApplyRestrictors(&next, adj.edge, adj.neighbor);
    next.chain = Extend(next.chain, {in.var, ref}, adj.traversal);
    next.node = adj.neighbor;
    next.edges = state.edges + 1;
    next.pc = in.next;
    return std::optional<State>(std::move(next));
  }

  /// Runs epsilon work from `state` until edge steps (appended to `parked`)
  /// or accepts (recorded). Forks are handled with an explicit worklist —
  /// a member scratch so its capacity persists across the (very frequent)
  /// calls instead of reallocating per admitted edge. Not reentrant; no
  /// callee reaches AdvanceEpsilon again.
  Status AdvanceEpsilon(State state, std::vector<State>* parked) {
    std::vector<State>& work = epsilon_work_;
    work.clear();
    work.push_back(std::move(state));
    while (!work.empty()) {
      State cur = std::move(work.back());
      work.pop_back();
      bool dead = false;
      while (!dead) {
        GPML_RETURN_IF_ERROR(Budget());
        const Instr& in = program_.code[static_cast<size_t>(cur.pc)];
        switch (in.op) {
          case Instr::Op::kAccept: {
            GPML_RETURN_IF_ERROR(RecordAccept(cur.chain, cur.tags));
            dead = true;
            break;
          }
          case Instr::Op::kEdgeStep:
            parked->push_back(std::move(cur));
            dead = true;
            break;
          case Instr::Op::kNodeCheck: {
            GPML_ASSIGN_OR_RETURN(bool ok, ApplyNodeCheck(in, &cur));
            if (!ok) {
              dead = true;
            } else {
              cur.pc = in.next;
            }
            break;
          }
          case Instr::Op::kSplit: {
            State fork = cur;
            fork.pc = in.alt;
            work.push_back(std::move(fork));
            cur.pc = in.next;
            break;
          }
          case Instr::Op::kJump:
            cur.pc = in.next;
            break;
          case Instr::Op::kFrameBegin: {
            FrameState f;
            f.chain_size_at_begin = cur.chain ? cur.chain->size : 0;
            f.edges_at_begin = cur.edges;
            cur.frames.push_back(f);
            if (in.quant_frame) {
              cur.serials[static_cast<size_t>(in.depth + 1)] = ++serial_gen_;
            }
            cur.pc = in.next;
            break;
          }
          case Instr::Op::kWhereCheck: {
            SearchScope scope(cur, -1, ElementRef(), /*has_pending=*/false,
                              params_);
            GPML_ASSIGN_OR_RETURN(TriBool ok,
                                  EvalPredicate(*in.where, g_, vars_, scope));
            if (ok != TriBool::kTrue) {
              dead = true;
            } else {
              cur.pc = in.next;
            }
            break;
          }
          case Instr::Op::kFrameEnd: {
            const FrameState& f = cur.frames.back();
            if (in.guard_progress && cur.edges == f.edges_at_begin) {
              dead = true;  // Zero-width loop iteration: cut.
              break;
            }
            cur.frames.pop_back();
            cur.pc = in.next;
            break;
          }
          case Instr::Op::kScopeBegin: {
            ScopeState sc;
            sc.scope_id = in.scope_id;
            sc.restrictor = in.restrictor;
            sc.start_node = cur.node;
            if (sc.restrictor == Restrictor::kAcyclic ||
                sc.restrictor == Restrictor::kSimple) {
              sc.nodes = IdSetAdd(nullptr, cur.node);
            }
            cur.scopes.push_back(std::move(sc));
            cur.pc = in.next;
            break;
          }
          case Instr::Op::kScopeEnd: {
            cur.scopes.pop_back();
            cur.pc = in.next;
            break;
          }
          case Instr::Op::kTag: {
            cur.tags.push_back(in.tag);
            cur.pc = in.next;
            break;
          }
        }
      }
    }
    return Status::OK();
  }

  /// Records one accepted binding (shared by the interpreter's kAccept and
  /// the batch drain, which accepts in the same order — so the shard-local
  /// keep-first dedup is route-independent).
  Status RecordAccept(const BindingChain& chain,
                      const std::vector<int32_t>& tags) {
    PathBinding pb = ReduceChain(chain, vars_, tags);
    size_t h = pb.ReducedHash();
    auto [it, inserted] = seen_.emplace(h, std::vector<size_t>());
    for (size_t idx : it->second) {
      if (results_[idx].SameReduced(pb)) return Status::OK();  // Duplicate.
    }
    it->second.push_back(results_.size());
    results_.push_back(std::move(pb));
    Status charge;
    if (budget_ == nullptr) {
      if (results_.size() > options_.max_matches) {
        charge = Status::ResourceExhausted(
            "match set exceeded max_matches; add restrictors/selectors or "
            "raise MatcherOptions::max_matches");
      }
    } else {
      charge = budget_->ChargeMatch();
    }
    if (!charge.ok()) {
      // Keep partial deliveries within the configured limit: the binding
      // that tripped max_matches is dropped (the search stops on the error
      // either way, so the dangling seen_ entry is never consulted).
      results_.pop_back();
      it->second.pop_back();
    }
    return charge;
  }

  // --- DFS route (no selector) --------------------------------------------

  Status RunDfs() {
    for (size_t i = 0; i < num_seeds_; ++i) {
      GPML_RETURN_IF_ERROR(RunDfsSeed(seeds_[i]));
    }
    return Status::OK();
  }

  /// One seed's depth-first search — also the batch route's per-seed
  /// fallback when a frontier level overflows the in-memory cap.
  Status RunDfsSeed(NodeId seed) {
    std::vector<State> stack;
    GPML_RETURN_IF_ERROR(AdvanceEpsilon(MakeStart(seed), &stack));
    while (!stack.empty()) {
      State cur = std::move(stack.back());
      stack.pop_back();
      const Instr& in = program_.code[static_cast<size_t>(cur.pc)];
      bool prefiltered = false;
      AdjSpan range = ExpansionRange(in, cur.node, &prefiltered);
      for (const Adjacency& adj : range) {
        GPML_RETURN_IF_ERROR(Budget());
        GPML_ASSIGN_OR_RETURN(std::optional<State> next,
                              TryEdge(in, cur, adj, prefiltered));
        if (next.has_value()) {
          GPML_RETURN_IF_ERROR(AdvanceEpsilon(std::move(*next), &stack));
        }
      }
    }
    return Status::OK();
  }

  // --- Batch route (docs/vectorized.md) -----------------------------------
  //
  // Linear fixed-length patterns expand level by level: levels_[l] holds
  // every partial binding of length l as a 16-byte FrontierEntry instead of
  // a State (no environment links, no chain refcounts — the binding is the
  // parent-pointer path itself). Each level is expanded in blocks of
  // kBatchBlockTarget entries: the block's adjacency candidates are gathered
  // into dense arrays, the filter cascade runs as selection-vector passes
  // over those arrays, and only final-hop survivors ever materialize a
  // BindingChain. Rows come out byte-identical to the scalar DFS because the
  // drain replays its accept order: the DFS pops parked states in reverse of
  // their push order at every level, so the level-(L-1) entries are visited
  // in exact reverse of the forward build order, each emitting its surviving
  // final-hop children in forward adjacency order.

  /// One partial binding on a frontier level: the node reached, the edge
  /// that reached it (kInvalidId on level 0), and the parent entry on the
  /// previous level.
  struct FrontierEntry {
    NodeId node = kInvalidId;
    EdgeId edge = kInvalidId;
    uint32_t parent = 0;
    Traversal traversal = Traversal::kForward;
  };

  /// Struct-of-arrays candidate block: the gathered adjacency records of one
  /// frontier block, plus the two selection vectors the filter passes
  /// ping-pong between.
  struct CandidateBlock {
    std::vector<uint32_t> parent;  // Absolute index into the source level.
    std::vector<EdgeId> edge;
    std::vector<NodeId> neighbor;
    std::vector<Traversal> traversal;
    std::vector<uint32_t> sel;
    std::vector<uint32_t> sel2;

    void Clear() {
      parent.clear();
      edge.clear();
      neighbor.clear();
      traversal.clear();
    }
    size_t size() const { return parent.size(); }
  };

  /// Per-seed frontier size cap: a level growing past this falls the seed
  /// back to the scalar DFS (bounded memory; the DFS recomputes from
  /// scratch, which is safe because the batch route emits no accepts until
  /// the final drain).
  static constexpr size_t kMaxLevelEntries = 1u << 22;

  /// Charges `n` batch-gathered candidates against the step budget in one
  /// call. Equivalent to n Budget() calls (same stride flushing), so shared
  /// budgets see the same charge cadence; only the per-route step totals
  /// differ (the batch path charges per adjacency candidate, the interpreter
  /// additionally per epsilon instruction).
  Status ChargeBatchSteps(size_t n) {
    steps_ += n;
    if (budget_ == nullptr) {
      if (steps_ > options_.max_steps) {
        return Status::ResourceExhausted(
            "match search exceeded max_steps; tighten the pattern or raise "
            "MatcherOptions::max_steps");
      }
      return Status::OK();
    }
    pending_steps_ += n;
    if (pending_steps_ >= charge_stride_) {
      size_t m = pending_steps_;
      pending_steps_ = 0;
      return budget_->ChargeSteps(m);
    }
    return Status::OK();
  }

  /// Binds the program's compiled predicate kernels to this run's $params.
  /// False routes the run to the scalar interpreter: the program is not
  /// batch-eligible, or a kernel references an unbound parameter (the scalar
  /// evaluator then reproduces the unbound-parameter error exactly).
  bool TryBindBatch() {
    const BatchPlan* bp = program_.batch.get();
    if (bp == nullptr || !bp->eligible) return false;
    node_kernels_.assign(bp->nodes.size(), BoundPredicateKernel());
    edge_kernels_.assign(bp->edges.size(), BoundPredicateKernel());
    for (size_t i = 0; i < bp->nodes.size(); ++i) {
      if (bp->nodes[i].has_kernel &&
          !BindPredicateKernel(bp->nodes[i].kernel, params_,
                               &node_kernels_[i])) {
        return false;
      }
    }
    for (size_t i = 0; i < bp->edges.size(); ++i) {
      if (bp->edges[i].has_kernel &&
          !BindPredicateKernel(bp->edges[i].kernel, params_,
                               &edge_kernels_[i])) {
        return false;
      }
    }
    return true;
  }

  /// The ancestor of `levels_[level][idx]` at `target_level`, by walking
  /// parent pointers — how equi-join passes reach the joined-to binding
  /// without any environment structure.
  const FrontierEntry& Ancestor(size_t level, uint32_t idx,
                                size_t target_level) const {
    const FrontierEntry* e = &levels_[level][idx];
    while (level > target_level) {
      idx = e->parent;
      --level;
      e = &levels_[level][idx];
    }
    return *e;
  }

  /// Expands levels_[h] into levels_[h+1] block-at-a-time. Returns true on
  /// overflow (the caller falls back to the scalar DFS for this seed).
  Result<bool> ExpandLevel(size_t h) {
    const BatchPlan& bp = *program_.batch;
    const BatchPlan::EdgeStep& es = bp.edges[h];
    const BatchPlan::NodeStep& ns = bp.nodes[h + 1];
    const Instr& edge_in = program_.code[static_cast<size_t>(es.pc)];
    const Instr& node_in = program_.code[static_cast<size_t>(ns.pc)];
    const EdgeOrientation orientation = edge_in.edge->orientation;
    const bool edge_prefiltered = options_.use_csr &&
                                  edge_in.edge_label_sym != kNoLabelPartition &&
                                  edge_in.edge_prefiltered;
    const bool check_edge_label =
        !edge_prefiltered && edge_in.edge->labels != nullptr;
    const bool check_node_label =
        node_in.node->labels != nullptr && !ns.label_implied;

    const std::vector<FrontierEntry>& frontier = levels_[h];
    std::vector<FrontierEntry>& next = levels_[h + 1];
    CandidateBlock& blk = block_;

    for (size_t base = 0; base < frontier.size();
         base += kBatchBlockTarget) {
      const size_t limit =
          std::min(base + kBatchBlockTarget, frontier.size());
      blk.Clear();

      // Gather: every adjacency candidate of the block's frontier entries,
      // straight out of the contiguous CSR label bucket (or the full
      // adjacency list when no partition applies).
      for (size_t f = base; f < limit; ++f) {
        bool prefiltered = false;
        AdjSpan range =
            ExpansionRange(edge_in, frontier[f].node, &prefiltered);
        for (size_t k = 0; k < range.count; ++k) {
          const Adjacency& adj = range[k];
          blk.parent.push_back(static_cast<uint32_t>(f));
          blk.edge.push_back(adj.edge);
          blk.neighbor.push_back(adj.neighbor);
          blk.traversal.push_back(adj.traversal);
        }
      }
      const size_t n = blk.size();
      GPML_RETURN_IF_ERROR(ChargeBatchSteps(n));
      ++batch_blocks_;
      batch_candidates_ += n;
      if (n == 0) continue;

      // Filter cascade over selection vectors: each pass scans the current
      // survivor list and compacts it. Pass order is free to differ from
      // the interpreter's check order because every pass is a pure
      // conjunct — the surviving set is the same either way.
      blk.sel.resize(n);
      for (size_t i = 0; i < n; ++i) {
        blk.sel[i] = static_cast<uint32_t>(i);
      }
      auto filter = [&blk](auto&& keep) {
        blk.sel2.clear();
        for (uint32_t i : blk.sel) {
          if (keep(i)) blk.sel2.push_back(i);
        }
        blk.sel.swap(blk.sel2);
      };

      if (orientation != EdgeOrientation::kAny) {
        filter([&](uint32_t i) {
          return Admits(orientation, blk.traversal[i]);
        });
      }
      if (check_edge_label) {
        filter([&](uint32_t i) {
          return EdgeLabelsMatch(edge_in, blk.edge[i]);
        });
      }
      if (!edge_kernels_[h].terms.empty()) {
        const BoundPredicateKernel& kernel = edge_kernels_[h];
        filter([&](uint32_t i) {
          return EvalKernel(kernel, g_, /*is_node=*/false, blk.edge[i]);
        });
      }
      if (es.eq_pos >= 0) {
        // Edge equi-join: hop q's edge lives on the level-(q+1) entry.
        const size_t target = static_cast<size_t>(es.eq_pos) + 1;
        filter([&](uint32_t i) {
          return Ancestor(h, blk.parent[i], target).edge == blk.edge[i];
        });
      }
      if (ns.eq_pos >= 0) {
        const size_t target = static_cast<size_t>(ns.eq_pos);
        filter([&](uint32_t i) {
          return Ancestor(h, blk.parent[i], target).node == blk.neighbor[i];
        });
      }
      if (check_node_label) {
        filter([&](uint32_t i) {
          return NodeLabelsMatch(node_in, blk.neighbor[i]);
        });
      }
      if (!node_kernels_[h + 1].terms.empty()) {
        const BoundPredicateKernel& kernel = node_kernels_[h + 1];
        filter([&](uint32_t i) {
          return EvalKernel(kernel, g_, /*is_node=*/true, blk.neighbor[i]);
        });
      }

      batch_survivors_ += blk.sel.size();
      for (uint32_t i : blk.sel) {
        next.push_back({blk.neighbor[i], blk.edge[i], blk.parent[i],
                        blk.traversal[i]});
      }
      if (next.size() > kMaxLevelEntries) return true;  // Overflow.
    }
    return false;
  }

  /// Materializes the binding chain of a final-level entry, exactly as the
  /// interpreter would have built it: node, then (edge, node) per hop, with
  /// the edge link carrying the traversal direction.
  BindingChain BuildChain(size_t level, uint32_t idx) {
    const BatchPlan& bp = *program_.batch;
    // Collect the entry's ancestor path root-first.
    chain_scratch_.resize(level + 1);
    {
      const FrontierEntry* e = &levels_[level][idx];
      size_t l = level;
      while (true) {
        chain_scratch_[l] = e;
        if (l == 0) break;
        e = &levels_[l - 1][e->parent];
        --l;
      }
    }
    BindingChain chain = Extend(
        nullptr, {bp.nodes[0].var, ElementRef::Node(chain_scratch_[0]->node)});
    for (size_t l = 1; l <= level; ++l) {
      const FrontierEntry& e = *chain_scratch_[l];
      chain = Extend(chain, {bp.edges[l - 1].var, ElementRef::Edge(e.edge)},
                     e.traversal);
      chain = Extend(chain, {bp.nodes[l].var, ElementRef::Node(e.node)});
    }
    return chain;
  }

  Status RunBatch() {
    const BatchPlan& bp = *program_.batch;
    const size_t hops = bp.edges.size();
    levels_.resize(hops + 1);
    const std::vector<int32_t> no_tags;  // Eligible programs emit no kTag.

    for (size_t s = 0; s < num_seeds_; ++s) {
      const NodeId seed = seeds_[s];
      // Level 0: the seed must pass the first node check (seeding may have
      // come from a label-index superset, exactly like the scalar route).
      GPML_RETURN_IF_ERROR(ChargeBatchSteps(1));
      const Instr& first = program_.code[static_cast<size_t>(bp.nodes[0].pc)];
      if (!NodeLabelsMatch(first, seed)) continue;
      if (!node_kernels_[0].terms.empty() &&
          !EvalKernel(node_kernels_[0], g_, /*is_node=*/true, seed)) {
        continue;
      }
      if (hops == 0) {
        GPML_RETURN_IF_ERROR(RecordAccept(
            Extend(nullptr, {bp.nodes[0].var, ElementRef::Node(seed)}),
            no_tags));
        continue;
      }

      for (std::vector<FrontierEntry>& level : levels_) level.clear();
      levels_[0].push_back({seed, kInvalidId, 0, Traversal::kForward});
      bool overflow = false;
      for (size_t h = 0; h < hops && !overflow; ++h) {
        GPML_ASSIGN_OR_RETURN(overflow, ExpandLevel(h));
        if (!overflow && levels_[h + 1].empty()) break;
      }
      if (overflow) {
        // Bounded-memory fallback: redo this seed tuple-at-a-time. No
        // accepts have been emitted for it yet, so the replay keeps the
        // result stream identical (the already-charged batch steps stay
        // charged — deterministic overshoot).
        GPML_RETURN_IF_ERROR(RunDfsSeed(seed));
        continue;
      }
      if (levels_[hops].empty()) continue;

      // Drain in scalar-DFS accept order: level-(hops-1) entries in reverse
      // of forward build order, each emitting its surviving final-hop
      // children in forward adjacency order. Children of one parent are
      // contiguous in levels_[hops] because the gather walks parents in
      // order — so a per-parent offset table suffices.
      const std::vector<FrontierEntry>& parents = levels_[hops - 1];
      const std::vector<FrontierEntry>& finals = levels_[hops];
      drain_offsets_.assign(parents.size() + 1, 0);
      for (const FrontierEntry& e : finals) {
        ++drain_offsets_[e.parent + 1];
      }
      for (size_t p = 1; p <= parents.size(); ++p) {
        drain_offsets_[p] += drain_offsets_[p - 1];
      }
      for (size_t p = parents.size(); p-- > 0;) {
        for (size_t i = drain_offsets_[p]; i < drain_offsets_[p + 1]; ++i) {
          GPML_RETURN_IF_ERROR(RecordAccept(
              BuildChain(hops, static_cast<uint32_t>(i)), no_tags));
        }
      }
    }
    return Status::OK();
  }

  // --- BFS route (selector present) ---------------------------------------

  /// Pruning key: product state plus everything that influences future
  /// admissibility or result identity (named environment with iteration
  /// currency, open-frame contents, restrictor memories, provenance tags).
  /// The key hashes the start node, so visit budgets are per start node and
  /// seed-partitioned shards prune exactly like the sequential frontier.
  size_t StateKey(const State& state) const {
    size_t h = 0x9ddfea08eb382d69ULL;
    h = HashCombine(h, static_cast<size_t>(state.pc));
    h = HashCombine(h, state.node);
    h = HashCombine(h, state.start);
    // Latest binding per named var, with "bound in the current iteration
    // instance at its depth" as part of the key instead of the raw serial.
    std::unordered_set<int> seen_vars;
    for (const EnvLink* e = state.env.get(); e != nullptr;
         e = e->prev.get()) {
      if (!seen_vars.insert(e->var).second) continue;
      const VarInfo& vi = vars_.info(e->var);
      bool current =
          e->serial == state.serials[static_cast<size_t>(vi.depth)];
      h = HashCombine(h, static_cast<size_t>(e->var) * 2654435761u);
      h = HashCombine(h, ElementRefHash()(e->element));
      h = HashCombine(h, current ? 0x51u : 0x7fu);
    }
    if (!state.frames.empty()) {
      uint32_t floor = state.frames.front().chain_size_at_begin;
      for (const BindingLink* b = state.chain.get();
           b != nullptr && b->size > floor; b = b->prev.get()) {
        h = HashCombine(h, static_cast<size_t>(b->binding.var));
        h = HashCombine(h, ElementRefHash()(b->binding.element));
      }
      h = HashCombine(h, state.frames.size());
    }
    for (const ScopeState& sc : state.scopes) {
      h = HashCombine(h, static_cast<size_t>(sc.restrictor));
      h = HashCombine(h, sc.start_node);
      h = HashCombine(h, sc.start_revisited ? 1u : 2u);
      h = HashCombine(h, IdSetHash(sc.edges));
      h = HashCombine(h, IdSetHash(sc.nodes));
    }
    for (int32_t t : state.tags) h = HashCombine(h, 0xabcd + static_cast<size_t>(t));
    return h;
  }

  /// May `state` (parked at an edge step, at BFS level `level`) expand?
  bool AdmitExpansion(const State& state, uint32_t level) {
    size_t key = StateKey(state);
    Visits& v = visits_[key];
    switch (program_.selector.kind) {
      case Selector::Kind::kAny:
      case Selector::Kind::kAnyShortest:
        if (v.count >= 1) return false;
        v.count = 1;
        return true;
      case Selector::Kind::kAllShortest:
        if (v.count == 0) {
          v.count = 1;
          v.min_level = level;
          return true;
        }
        return level <= v.min_level;
      case Selector::Kind::kAnyK:
      case Selector::Kind::kShortestK: {
        size_t k = static_cast<size_t>(program_.selector.k);
        if (v.count >= k) return false;
        ++v.count;
        return true;
      }
      case Selector::Kind::kShortestKGroup: {
        size_t k = static_cast<size_t>(program_.selector.k);
        for (uint32_t l : v.levels) {
          if (l == level) return true;
        }
        if (v.levels.size() < k) {
          v.levels.push_back(level);
          return true;
        }
        return false;
      }
      case Selector::Kind::kNone:
        return true;
    }
    return true;
  }

  Status RunBfs() {
    std::vector<State> frontier;
    for (size_t i = 0; i < num_seeds_; ++i) {
      GPML_RETURN_IF_ERROR(AdvanceEpsilon(MakeStart(seeds_[i]), &frontier));
    }
    while (!frontier.empty()) {
      std::vector<State> next_frontier;
      for (const State& cur : frontier) {
        if (!AdmitExpansion(cur, cur.edges)) continue;
        const Instr& in = program_.code[static_cast<size_t>(cur.pc)];
        bool prefiltered = false;
        AdjSpan range = ExpansionRange(in, cur.node, &prefiltered);
        for (const Adjacency& adj : range) {
          GPML_RETURN_IF_ERROR(Budget());
          GPML_ASSIGN_OR_RETURN(std::optional<State> nxt,
                                TryEdge(in, cur, adj, prefiltered));
          if (nxt.has_value()) {
            GPML_RETURN_IF_ERROR(
                AdvanceEpsilon(std::move(*nxt), &next_frontier));
          }
        }
      }
      frontier = std::move(next_frontier);
    }
    // Results were recorded in nondecreasing path length because accepts at
    // level L are recorded while processing level L; keep stable order.
    return Status::OK();
  }

  struct Visits {
    size_t count = 0;
    uint32_t min_level = 0;
    std::vector<uint32_t> levels;
  };

  const PropertyGraph& g_;
  const Program& program_;
  const VarTable& vars_;
  const MatcherOptions& options_;
  const NodeId* seeds_;
  size_t num_seeds_;
  SharedBudget* budget_;  // nullptr: local exact limits (single shard).
  const size_t charge_stride_;
  const Params* params_;  // $name bindings for inline predicates; may be null.

  size_t steps_ = 0;
  size_t pending_steps_ = 0;
  uint64_t serial_gen_ = 0;
  std::vector<State> epsilon_work_;  // AdvanceEpsilon scratch.
  // Batch-route state (sized once, reused across seeds and levels):
  std::vector<BoundPredicateKernel> node_kernels_;  // Indexed like
  std::vector<BoundPredicateKernel> edge_kernels_;  // BatchPlan::nodes/edges.
  std::vector<std::vector<FrontierEntry>> levels_;
  CandidateBlock block_;
  std::vector<const FrontierEntry*> chain_scratch_;  // BuildChain ancestors.
  std::vector<size_t> drain_offsets_;
  size_t batch_blocks_ = 0;
  size_t batch_candidates_ = 0;
  size_t batch_survivors_ = 0;
  std::vector<PathBinding> results_;
  std::unordered_map<size_t, std::vector<size_t>> seen_;
  std::unordered_map<size_t, Visits> visits_;
};

// ---------------------------------------------------------------------------
// Shard orchestration and deterministic merge
// ---------------------------------------------------------------------------

struct ShardOutcome {
  Status status = Status::OK();
  std::vector<PathBinding> results;
  size_t steps = 0;
  size_t batch_blocks = 0;
  size_t batch_candidates = 0;
  size_t batch_survivors = 0;
  double ms = 0;  // Shard wall clock, measured inside the worker.
};

/// Steps charged per shared-budget access in parallel shards. The budget can
/// overshoot by at most `kParallelChargeStride * shards` steps, traded for
/// keeping the interpreter loop off the contended atomic.
constexpr size_t kParallelChargeStride = 256;

void RunShard(const PropertyGraph& g, const Program& program,
              const VarTable& vars, const MatcherOptions& options,
              const NodeId* seeds, size_t num_seeds, SharedBudget* budget,
              size_t charge_stride, const Params* params, bool keep_partial,
              ShardOutcome* out) {
  obs::Stopwatch shard_clock;
  Matcher m(g, program, vars, options, seeds, num_seeds, budget,
            charge_stride, params);
  out->status = m.Run();
  out->steps = m.steps();
  out->batch_blocks = m.batch_blocks();
  out->batch_candidates = m.batch_candidates();
  out->batch_survivors = m.batch_survivors();
  if (out->status.ok()) {
    out->results = m.TakeResults();
    out->ms = shard_clock.ElapsedMs();
    return;
  }
  // Partial-delivery mode (streaming cursors): budget exhaustion keeps the
  // bindings found so far instead of discarding them; the caller reports
  // the truncation through a flag rather than an error.
  if (keep_partial && out->status.code() == StatusCode::kResourceExhausted) {
    out->results = m.TakeResults();
  }
  if (budget != nullptr &&
      out->status.message() != SharedBudget::kAbortedBySibling) {
    // A genuine failure: tell sibling shards to stop at their next budget
    // check instead of finishing doomed work.
    budget->Abort();
  }
  out->ms = shard_clock.ElapsedMs();
}

/// The status RunPattern reports for a sharded run: the first genuine error
/// in shard (= seed) order; shards that merely stopped because a sibling
/// exhausted the shared budget are skipped in favor of the real cause.
Status MergeStatuses(const std::vector<ShardOutcome>& outcomes) {
  const Status* first_error = nullptr;
  for (const ShardOutcome& o : outcomes) {
    if (o.status.ok()) continue;
    if (first_error == nullptr) first_error = &o.status;
    if (o.status.message() != SharedBudget::kAbortedBySibling) {
      return o.status;
    }
  }
  return first_error == nullptr ? Status::OK() : *first_error;
}

/// Concatenates shard results in shard order (= seed-index order), removes
/// cross-shard duplicates keeping the first occurrence, stable-sorts by path
/// length, and applies the selector — exactly the sequential pipeline:
/// sequential discovery order equals the shard-order concatenation because
/// shards are contiguous seed blocks (DFS emits per seed, BFS per level with
/// seeds in order within each level, and equal bindings always have equal
/// path length, so the keep-first choice is order-independent too).
MatchSet MergeShards(std::vector<ShardOutcome> outcomes,
                     const Program& program, bool cross_shard_dedup) {
  std::vector<PathBinding> all;
  size_t total = 0;
  for (const ShardOutcome& o : outcomes) total += o.results.size();
  all.reserve(total);
  for (ShardOutcome& o : outcomes) {
    std::move(o.results.begin(), o.results.end(), std::back_inserter(all));
  }

  if (cross_shard_dedup) {
    std::vector<PathBinding> uniq;
    uniq.reserve(all.size());
    std::unordered_map<size_t, std::vector<size_t>> seen;
    for (PathBinding& pb : all) {
      size_t h = pb.ReducedHash();
      auto [it, inserted] = seen.emplace(h, std::vector<size_t>());
      bool duplicate = false;
      for (size_t idx : it->second) {
        if (uniq[idx].SameReduced(pb)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      it->second.push_back(uniq.size());
      uniq.push_back(std::move(pb));
    }
    all = std::move(uniq);
  }

  // DFS results sort by length here (historically SortResults); BFS results
  // are already level-ordered, so the stable sort is the identity — either
  // way ApplySelector's nondecreasing-length precondition holds.
  std::stable_sort(all.begin(), all.end(),
                   [](const PathBinding& a, const PathBinding& b) {
                     return a.path.Length() < b.path.Length();
                   });

  MatchSet out;
  out.bindings = std::move(all);
  ApplySelector(program.selector, &out.bindings);
  return out;
}

}  // namespace

Result<MatchSet> RunPattern(const PropertyGraph& g, const Program& program,
                            const VarTable& vars,
                            const MatcherOptions& options,
                            const std::vector<NodeId>* seed_filter,
                            MatchStats* stats, const Params* params,
                            SharedBudget* shared_budget,
                            bool* budget_exhausted) {
  obs::Stopwatch run_clock;
  std::vector<NodeId> seeds = ComputeSeeds(g, program, seed_filter);
  const double seed_ms = run_clock.ElapsedMs();
  if (budget_exhausted != nullptr) *budget_exhausted = false;
  const bool keep_partial = budget_exhausted != nullptr;

  // Fan out only when every worker gets a meaningful block: thread
  // spawn/join costs tens of microseconds, which would dominate small
  // queries (the shard count never changes results, only latency).
  const size_t threads = std::max<size_t>(1, options.num_threads);
  const size_t per_shard = std::max<size_t>(1, options.min_seeds_per_shard);
  const size_t shards =
      std::max<size_t>(1, std::min(threads, seeds.size() / per_shard));

  SharedBudget local_budget(options.max_steps, options.max_matches);
  std::vector<ShardOutcome> outcomes(shards);
  bool seeds_distinct = true;

  if (shards == 1) {
    // Single shard: with no external budget, plain local counters — no
    // atomics, RecordAccept's dedup already global: exactly the historical
    // sequential engine. An external budget (streaming cursor chunks) is
    // charged per step (stride 1), so the cumulative limit fires at the
    // same instruction a single materializing call would have stopped at.
    RunShard(g, program, vars, options, seeds.data(), seeds.size(),
             /*budget=*/shared_budget, /*charge_stride=*/1, params,
             keep_partial, &outcomes[0]);
  } else {
    SharedBudget* budget =
        shared_budget != nullptr ? shared_budget : &local_budget;
    // Equal bindings always share their start node (reduction keeps the
    // first node binding), so cross-shard duplicates exist only if the
    // seed list itself repeats a node — possible only through an external
    // seed_filter; the label index, full scan, and the planner's bound
    // lists are distinct by construction.
    std::unordered_set<NodeId> distinct(seeds.begin(), seeds.end());
    seeds_distinct = distinct.size() == seeds.size();

    // Contiguous seed blocks preserve seed-index order across the merge.
    std::vector<std::thread> workers;
    workers.reserve(shards);
    const size_t base = seeds.size() / shards;
    const size_t extra = seeds.size() % shards;
    size_t offset = 0;
    for (size_t i = 0; i < shards; ++i) {
      size_t count = base + (i < extra ? 1 : 0);
      workers.emplace_back(RunShard, std::cref(g), std::cref(program),
                           std::cref(vars), std::cref(options),
                           seeds.data() + offset, count, budget,
                           kParallelChargeStride, params, keep_partial,
                           &outcomes[i]);
      offset += count;
    }
    for (std::thread& t : workers) t.join();
  }

  if (stats != nullptr) {
    stats->seeds = seeds.size();
    stats->shards = shards;
    stats->steps = 0;
    stats->batch_blocks = 0;
    stats->batch_candidates = 0;
    stats->batch_survivors = 0;
    stats->seed_ms = seed_ms;
    stats->shard_ms.clear();
    stats->shard_ms.reserve(outcomes.size());
    for (const ShardOutcome& o : outcomes) {
      stats->steps += o.steps;
      stats->batch_blocks += o.batch_blocks;
      stats->batch_candidates += o.batch_candidates;
      stats->batch_survivors += o.batch_survivors;
      stats->shard_ms.push_back(o.ms);
    }
  }
  Status merged = MergeStatuses(outcomes);
  if (!merged.ok()) {
    if (!keep_partial || merged.code() != StatusCode::kResourceExhausted) {
      if (stats != nullptr) stats->match_ms = run_clock.ElapsedMs();
      return merged;
    }
    *budget_exhausted = true;  // Deliver the partial set below.
  }
  MatchSet result =
      MergeShards(std::move(outcomes), program,
                  /*cross_shard_dedup=*/shards > 1 && !seeds_distinct);
  if (stats != nullptr) stats->match_ms = run_clock.ElapsedMs();
  return result;
}

}  // namespace gpml
