#include "analysis/diagnostic.h"

namespace gpml {
namespace analysis {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string s = code;
  s += " ";
  s += SeverityName(severity);
  if (span.valid()) {
    s += " (offset=" + std::to_string(span.begin) + ")";
  }
  s += ": " + message;
  if (!hint.empty()) s += " [hint: " + hint + "]";
  return s;
}

bool DiagnosticList::has_errors() const {
  for (const Diagnostic& d : items_) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

size_t DiagnosticList::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : items_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::string DiagnosticList::ToString() const {
  std::string out;
  for (const Diagnostic& d : items_) {
    if (!out.empty()) out += "\n";
    out += d.ToString();
  }
  return out;
}

std::string DiagnosticList::Render(const std::string& source) const {
  std::string out;
  for (const Diagnostic& d : items_) {
    if (!out.empty()) out += "\n";
    out += d.ToString();
    if (d.span.valid()) {
      std::string snippet = RenderSourceSnippet(source, d.span.begin,
                                                d.span.end);
      if (!snippet.empty()) out += "\n" + snippet;
    }
  }
  return out;
}

}  // namespace analysis
}  // namespace gpml
