// Wire protocol building blocks (server/protocol.h, server/json.h): the
// status <-> wire error table shared by server and client, scalar Value
// encoding for $params, response envelopes, and the strict JSON parser.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <string>

#include "common/status.h"
#include "server/json.h"
#include "server/protocol.h"

namespace gpml {
namespace server {
namespace {

// --- the wire error table --------------------------------------------------

// Every StatusCode the codebase can produce, no omissions: adding a code
// to common/status.h without extending the wire table must fail here.
const StatusCode kAllCodes[] = {
    StatusCode::kOk,           StatusCode::kInvalidArgument,
    StatusCode::kSyntaxError,  StatusCode::kSemanticError,
    StatusCode::kNonTerminating, StatusCode::kNotFound,
    StatusCode::kAlreadyExists, StatusCode::kResourceExhausted,
    StatusCode::kUnimplemented, StatusCode::kInternal,
};

TEST(WireErrorTableTest, CoversEveryStatusCode) {
  ASSERT_EQ(sizeof(kAllCodes) / sizeof(kAllCodes[0]), kWireErrorTableSize)
      << "update kAllCodes and the protocol table together";
  std::set<int> codes;
  std::set<std::string> names;
  for (StatusCode code : kAllCodes) {
    WireError wire = ToWireError(code);
    ASSERT_NE(wire.name, nullptr);
    EXPECT_NE(wire.name[0], '\0');
    codes.insert(wire.code);
    names.insert(std::string(wire.name));
  }
  // Distinct on both axes: a client can dispatch on either.
  EXPECT_EQ(codes.size(), kWireErrorTableSize);
  EXPECT_EQ(names.size(), kWireErrorTableSize);
}

// The numeric assignments are wire-stable: changing one breaks deployed
// clients, so each is pinned individually.
TEST(WireErrorTableTest, StableAssignments) {
  EXPECT_EQ(ToWireError(StatusCode::kOk).code, 0);
  EXPECT_STREQ(ToWireError(StatusCode::kOk).name, "OK");
  EXPECT_EQ(ToWireError(StatusCode::kInvalidArgument).code, 100);
  EXPECT_STREQ(ToWireError(StatusCode::kInvalidArgument).name,
            "INVALID_ARGUMENT");
  EXPECT_EQ(ToWireError(StatusCode::kSyntaxError).code, 101);
  EXPECT_STREQ(ToWireError(StatusCode::kSyntaxError).name, "SYNTAX_ERROR");
  EXPECT_EQ(ToWireError(StatusCode::kSemanticError).code, 102);
  EXPECT_STREQ(ToWireError(StatusCode::kSemanticError).name, "SEMANTIC_ERROR");
  EXPECT_EQ(ToWireError(StatusCode::kNonTerminating).code, 103);
  EXPECT_STREQ(ToWireError(StatusCode::kNonTerminating).name,
            "NON_TERMINATING");
  EXPECT_EQ(ToWireError(StatusCode::kNotFound).code, 104);
  EXPECT_STREQ(ToWireError(StatusCode::kNotFound).name, "NOT_FOUND");
  EXPECT_EQ(ToWireError(StatusCode::kAlreadyExists).code, 105);
  EXPECT_STREQ(ToWireError(StatusCode::kAlreadyExists).name, "ALREADY_EXISTS");
  EXPECT_EQ(ToWireError(StatusCode::kResourceExhausted).code, 106);
  EXPECT_STREQ(ToWireError(StatusCode::kResourceExhausted).name,
            "RESOURCE_EXHAUSTED");
  EXPECT_EQ(ToWireError(StatusCode::kUnimplemented).code, 107);
  EXPECT_STREQ(ToWireError(StatusCode::kUnimplemented).name, "UNIMPLEMENTED");
  EXPECT_EQ(ToWireError(StatusCode::kInternal).code, 108);
  EXPECT_STREQ(ToWireError(StatusCode::kInternal).name, "INTERNAL");
}

TEST(WireErrorTableTest, RoundTripsEveryCode) {
  for (StatusCode code : kAllCodes) {
    EXPECT_EQ(FromWireCode(ToWireError(code).code), code);
  }
}

TEST(WireErrorTableTest, UnknownWireCodeMapsToInternal) {
  EXPECT_EQ(FromWireCode(1), StatusCode::kInternal);
  EXPECT_EQ(FromWireCode(99), StatusCode::kInternal);
  EXPECT_EQ(FromWireCode(109), StatusCode::kInternal);
  EXPECT_EQ(FromWireCode(-1), StatusCode::kInternal);
}

// --- response envelopes ----------------------------------------------------

TEST(EnvelopeTest, ErrorResponseShape) {
  std::string line = ErrorResponse(Status::NotFound("no such cursor"),
                                   kReasonSessionExpired, "42");
  Result<JsonValue> parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const JsonValue* ok = parsed->Find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->bool_v);
  const JsonValue* id = parsed->Find("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->int_v, 42);
  const JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->int_v, 104);
  EXPECT_EQ(error->Find("name")->string_v, "NOT_FOUND");
  EXPECT_EQ(error->Find("message")->string_v, "no such cursor");
  EXPECT_EQ(error->Find("reason")->string_v, "SESSION_EXPIRED");

  // The client-side reconstruction through the same table.
  Status status = StatusFromWireError(*error);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("no such cursor"), std::string::npos);
  EXPECT_NE(status.message().find("SESSION_EXPIRED"), std::string::npos);
  EXPECT_EQ(ReasonFromWireError(*error), "SESSION_EXPIRED");
}

TEST(EnvelopeTest, ErrorResponseWithoutIdOrReason) {
  std::string line = ErrorResponse(Status::SyntaxError("bad token"), "", "");
  Result<JsonValue> parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Find("id"), nullptr);
  const JsonValue* error = parsed->Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->int_v, 101);
  EXPECT_EQ(error->Find("reason"), nullptr);
  EXPECT_EQ(ReasonFromWireError(*error), "");
}

TEST(EnvelopeTest, ErrorMessageIsEscaped) {
  std::string line =
      ErrorResponse(Status::InvalidArgument("quote \" and\nnewline"), "", "");
  Result<JsonValue> parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n  " << line;
  EXPECT_EQ(parsed->Find("error")->Find("message")->string_v,
            "quote \" and\nnewline");
}

TEST(EnvelopeTest, OkResponseHead) {
  EXPECT_EQ(OkResponseHead(""), "{\"ok\":true");
  EXPECT_EQ(OkResponseHead("7"), "{\"ok\":true,\"id\":7");
  Result<JsonValue> parsed = ParseJson(OkResponseHead("7") + "}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("ok")->bool_v);
}

TEST(EnvelopeTest, StatusFromWireErrorDefensiveDefaults) {
  // Degenerate error objects from a hostile/buggy server must still come
  // back as errors, never as kOk.
  Result<JsonValue> empty = ParseJson("{}");
  ASSERT_TRUE(empty.ok());
  Status status = StatusFromWireError(*empty);
  EXPECT_EQ(status.code(), StatusCode::kInternal);

  Result<JsonValue> ok_code = ParseJson("{\"code\":0,\"message\":\"lies\"}");
  ASSERT_TRUE(ok_code.ok());
  EXPECT_EQ(StatusFromWireError(*ok_code).code(), StatusCode::kInternal);
}

// --- scalar Value encoding for $params -------------------------------------

Value RoundTripValue(const Value& value) {
  std::string wire = ValueToWireJson(value);
  Result<JsonValue> parsed = ParseJson(wire);
  EXPECT_TRUE(parsed.ok()) << wire << ": " << parsed.status();
  Result<Value> back = WireJsonToValue(*parsed);
  EXPECT_TRUE(back.ok()) << wire;
  return *back;
}

TEST(ValueWireTest, ScalarsRoundTrip) {
  EXPECT_EQ(RoundTripValue(Value::Null()).type(), ValueType::kNull);
  EXPECT_EQ(RoundTripValue(Value::Bool(true)).bool_value(), true);
  EXPECT_EQ(RoundTripValue(Value::Bool(false)).bool_value(), false);
  EXPECT_EQ(RoundTripValue(Value::Int(0)).int_value(), 0);
  EXPECT_EQ(RoundTripValue(Value::Int(-7)).int_value(), -7);
  EXPECT_EQ(RoundTripValue(
                Value::Int(std::numeric_limits<int64_t>::max()))
                .int_value(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(RoundTripValue(
                Value::Int(std::numeric_limits<int64_t>::min()))
                .int_value(),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(RoundTripValue(Value::String("hi \"there\"")).string_value(),
            "hi \"there\"");
  EXPECT_EQ(RoundTripValue(Value::Double(2.5)).double_value(), 2.5);
}

// An integral double must come back as a double, not collapse into an
// int: 3.0 and 3 are different GQL values.
TEST(ValueWireTest, IntegralDoubleStaysDouble) {
  EXPECT_EQ(ValueToWireJson(Value::Double(3.0)), "3.0");
  Value back = RoundTripValue(Value::Double(3.0));
  EXPECT_EQ(back.type(), ValueType::kDouble);
  EXPECT_EQ(back.double_value(), 3.0);
  Value as_int = RoundTripValue(Value::Int(3));
  EXPECT_EQ(as_int.type(), ValueType::kInt);
}

TEST(ValueWireTest, CompositeJsonRejectedAsParam) {
  Result<JsonValue> arr = ParseJson("[1,2]");
  ASSERT_TRUE(arr.ok());
  EXPECT_FALSE(WireJsonToValue(*arr).ok());
  Result<JsonValue> obj = ParseJson("{\"a\":1}");
  ASSERT_TRUE(obj.ok());
  EXPECT_FALSE(WireJsonToValue(*obj).ok());
}

TEST(ValueWireTest, ParamsRoundTrip) {
  Params params;
  params["owner"] = Value::String("u7");
  params["depth"] = Value::Int(3);
  params["rate"] = Value::Double(0.5);
  params["flag"] = Value::Bool(true);
  std::string wire = ParamsToWireJson(params);
  Result<JsonValue> parsed = ParseJson(wire);
  ASSERT_TRUE(parsed.ok()) << wire;
  Result<Params> back = WireJsonToParams(*parsed);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), params.size());
  EXPECT_EQ((*back)["owner"].string_value(), "u7");
  EXPECT_EQ((*back)["depth"].int_value(), 3);
  EXPECT_EQ((*back)["rate"].double_value(), 0.5);
  EXPECT_EQ((*back)["flag"].bool_value(), true);
}

TEST(ValueWireTest, AbsentParamsMeansEmpty) {
  JsonValue null_json;  // Default-constructed: kNull.
  Result<Params> params = WireJsonToParams(null_json);
  ASSERT_TRUE(params.ok());
  EXPECT_TRUE(params->empty());

  Result<JsonValue> arr = ParseJson("[1]");
  ASSERT_TRUE(arr.ok());
  EXPECT_FALSE(WireJsonToParams(*arr).ok()) << "params must be an object";
}

// --- the strict JSON parser ------------------------------------------------

TEST(ParseJsonTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_v);
  EXPECT_FALSE(ParseJson("false")->bool_v);
  EXPECT_EQ(ParseJson("42")->int_v, 42);
  EXPECT_EQ(ParseJson("-42")->int_v, -42);
  EXPECT_TRUE(ParseJson("4.5")->is_double());
  EXPECT_EQ(ParseJson("4.5")->double_v, 4.5);
  EXPECT_TRUE(ParseJson("1e3")->is_double());
  EXPECT_EQ(ParseJson("1e3")->double_v, 1000.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_v, "hi");
  EXPECT_EQ(ParseJson("  42  ")->int_v, 42) << "surrounding whitespace";
}

TEST(ParseJsonTest, Int64BoundsStayInt) {
  EXPECT_EQ(ParseJson("9223372036854775807")->int_v,
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(ParseJson("-9223372036854775808")->int_v,
            std::numeric_limits<int64_t>::min());
}

TEST(ParseJsonTest, IntOverflowBecomesDouble) {
  Result<JsonValue> over = ParseJson("9223372036854775808");
  ASSERT_TRUE(over.ok());
  EXPECT_TRUE(over->is_double());
  Result<JsonValue> under = ParseJson("-9223372036854775809");
  ASSERT_TRUE(under.ok());
  EXPECT_TRUE(under->is_double());
}

TEST(ParseJsonTest, StringEscapes) {
  EXPECT_EQ(ParseJson("\"a\\\"b\\\\c\\/d\\bx\\fy\\nz\\rw\\tv\"")->string_v,
            "a\"b\\c/d\bx\fy\nz\rw\tv");
  EXPECT_EQ(ParseJson("\"\\u0041\"")->string_v, "A");
  EXPECT_EQ(ParseJson("\"\\u00e9\"")->string_v, "\xc3\xa9");
  EXPECT_EQ(ParseJson("\"\\u20ac\"")->string_v, "\xe2\x82\xac");
}

TEST(ParseJsonTest, SurrogatePairsCombine) {
  // U+1F600 as \uD83D\uDE00 must decode to the 4-byte UTF-8 sequence.
  EXPECT_EQ(ParseJson("\"\\ud83d\\ude00\"")->string_v, "\xf0\x9f\x98\x80");
}

TEST(ParseJsonTest, LoneSurrogateIsError) {
  EXPECT_FALSE(ParseJson("\"\\ud83d\"").ok());
  EXPECT_FALSE(ParseJson("\"\\ud83dx\"").ok());
  EXPECT_FALSE(ParseJson("\"\\ude00\"").ok()) << "low surrogate first";
}

TEST(ParseJsonTest, RawControlCharInStringIsError) {
  EXPECT_FALSE(ParseJson("\"a\nb\"").ok());
  EXPECT_FALSE(ParseJson(std::string("\"a\0b\"", 5)).ok());
}

TEST(ParseJsonTest, InvalidRawUtf8IsError) {
  EXPECT_FALSE(ParseJson("\"a\x80z\"").ok());
  EXPECT_FALSE(ParseJson("\"\xed\xa0\x80\"").ok()) << "CESU surrogate";
}

TEST(ParseJsonTest, TrailingGarbageIsError) {
  EXPECT_FALSE(ParseJson("42 43").ok());
  EXPECT_FALSE(ParseJson("{}x").ok());
  EXPECT_FALSE(ParseJson("{} {}").ok());
  EXPECT_TRUE(ParseJson("{}  ").ok()) << "trailing whitespace is fine";
}

TEST(ParseJsonTest, MalformedDocuments) {
  const char* bad[] = {"",      "{",    "[",     "{\"a\"}", "{\"a\":}",
                       "[1,]",  "{,}",  "\"",    "tru",     "01",
                       "+1",    "1.",   ".5",    "nul",     "[1 2]",
                       "{\"a\" 1}", "{1:2}"};
  for (const char* doc : bad) {
    EXPECT_FALSE(ParseJson(doc).ok()) << "should reject: " << doc;
  }
}

TEST(ParseJsonTest, NestingDepthCapped) {
  std::string at_cap(kJsonMaxDepth, '[');
  at_cap += std::string(kJsonMaxDepth, ']');
  EXPECT_TRUE(ParseJson(at_cap).ok()) << "depth == kJsonMaxDepth is legal";
  std::string over(kJsonMaxDepth + 1, '[');
  over += std::string(kJsonMaxDepth + 1, ']');
  EXPECT_FALSE(ParseJson(over).ok());
}

TEST(ParseJsonTest, ObjectsKeepOrderAndDuplicates) {
  Result<JsonValue> parsed = ParseJson("{\"a\":1,\"b\":2,\"a\":3}");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->object_v.size(), 3u);
  EXPECT_EQ(parsed->object_v[0].first, "a");
  EXPECT_EQ(parsed->object_v[1].first, "b");
  EXPECT_EQ(parsed->Find("a")->int_v, 1) << "Find returns the first";
  EXPECT_EQ(parsed->Find("missing"), nullptr);
}

TEST(ParseJsonTest, RawSpanRecoversOriginalBytes) {
  std::string doc = "{\"a\": [1,  2], \"b\": {\"c\": \"x\\ny\"}}";
  Result<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->RawSpan(doc), doc);
  EXPECT_EQ(parsed->Find("a")->RawSpan(doc), "[1,  2]");
  EXPECT_EQ(parsed->Find("b")->RawSpan(doc), "{\"c\": \"x\\ny\"}");
  EXPECT_EQ(parsed->Find("b")->Find("c")->RawSpan(doc), "\"x\\ny\"");
}

TEST(ParseJsonTest, SerializeRoundTrips) {
  const char* docs[] = {
      "null", "true", "-42", "\"caf\xc3\xa9\"", "[1,2.5,\"x\",null]",
      "{\"a\":{\"b\":[true,false]},\"c\":\"q\"}"};
  for (const char* doc : docs) {
    Result<JsonValue> first = ParseJson(doc);
    ASSERT_TRUE(first.ok()) << doc;
    std::string text = first->Serialize();
    Result<JsonValue> second = ParseJson(text);
    ASSERT_TRUE(second.ok()) << text;
    EXPECT_EQ(second->Serialize(), text) << "serialize is a fixed point";
  }
}

}  // namespace
}  // namespace server
}  // namespace gpml
