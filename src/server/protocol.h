#ifndef GPML_SERVER_PROTOCOL_H_
#define GPML_SERVER_PROTOCOL_H_

#include <cstddef>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"
#include "eval/params.h"
#include "server/json.h"

namespace gpml {
namespace server {

/// The wire protocol version served by this build. Bumped only on
/// incompatible changes; `hello` reports it so clients can refuse.
inline constexpr int kProtocolVersion = 1;

/// One row of the StatusCode <-> wire-error table: the numeric code and
/// the SCREAMING_SNAKE name that go into every error response,
///
///   {"ok":false,"error":{"code":104,"name":"NOT_FOUND","message":"..."}}
///
/// Codes are STABLE protocol surface — clients switch on them, dashboards
/// group by them — so existing values never change; new StatusCodes get
/// new numbers. Both the server's response writer and the client
/// library's status reconstruction go through this one table
/// (server_protocol_test pins every StatusCode's mapping).
struct WireError {
  int code = 0;
  const char* name = "";
};

/// The wire mapping of `code`. Total: every StatusCode has a row.
WireError ToWireError(StatusCode code);

/// Inverse lookup; unknown wire codes (a newer server talking to an older
/// client) degrade to kInternal rather than failing the decode.
StatusCode FromWireCode(int code);

/// Number of StatusCode values the table covers. server_protocol_test
/// asserts this matches its own exhaustive list, so adding a StatusCode
/// without extending the table is a test failure, not a silent kInternal.
inline constexpr size_t kWireErrorTableSize = 10;

/// Machine-readable reasons for server-layer rejections that share a
/// StatusCode with engine errors (all kResourceExhausted / kNotFound /
/// kInvalidArgument at the Status level). Sent as error.reason; stable.
inline constexpr const char* kReasonSessionExpired = "SESSION_EXPIRED";
inline constexpr const char* kReasonServerSaturated = "SERVER_SATURATED";
inline constexpr const char* kReasonServerStopping = "SERVER_STOPPING";
inline constexpr const char* kReasonTenantSessions = "TENANT_SESSIONS";
inline constexpr const char* kReasonTenantConcurrency = "TENANT_CONCURRENCY";
inline constexpr const char* kReasonTenantStepBudget = "TENANT_STEP_BUDGET";
inline constexpr const char* kReasonBadRequest = "BAD_REQUEST";

/// Renders `value` for the wire. Int and Double stay distinguishable:
/// doubles always carry a '.', 'e' or "NaN"-less textual marker (3.0, not
/// 3), because ParseJson types bare integers as kInt.
std::string ValueToWireJson(const Value& value);

/// Decodes a request parameter value: null/bool/string map directly,
/// numbers map to Int when the document spelled an integer and Double
/// otherwise. Arrays/objects are a kInvalidArgument (parameters are
/// scalars).
Result<Value> WireJsonToValue(const JsonValue& json);

/// Decodes an `{"name": value, ...}` object into engine Params.
Result<Params> WireJsonToParams(const JsonValue& json);

/// Renders a Params map as a JSON object (client request encoding).
std::string ParamsToWireJson(const Params& params);

/// Builds the standard error response line (no trailing newline):
///   {"ok":false,"error":{"code":N,"name":"...","message":"..."[,
///    "reason":"..."]}[,"id":<id>]}
/// `id_raw` is the request's raw "id" span, echoed verbatim when present.
std::string ErrorResponse(const Status& status, const std::string& reason = "",
                          const std::string& id_raw = "");

/// Prefix of a success response: `{"ok":true` plus the echoed id — the
/// handler appends its own fields and the closing brace.
std::string OkResponseHead(const std::string& id_raw);

/// Reconstructs a Status from a parsed error response object (the value
/// under "error"). Missing/malformed fields degrade gracefully.
Status StatusFromWireError(const JsonValue& error);

/// The "reason" field of a parsed error response object, or "".
std::string ReasonFromWireError(const JsonValue& error);

}  // namespace server
}  // namespace gpml

#endif  // GPML_SERVER_PROTOCOL_H_
