#include "gql/json_export.h"

#include <sstream>

namespace gpml {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string ValueToJson(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return v.bool_value() ? "true" : "false";
    case ValueType::kInt: return std::to_string(v.int_value());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << v.double_value();
      return os.str();
    }
    case ValueType::kString:
      return "\"" + JsonEscape(v.string_value()) + "\"";
  }
  return "null";
}

std::string PathToJson(const PropertyGraph& g, const Path& p) {
  std::ostringstream os;
  os << "{\"kind\":\"path\",\"length\":" << p.Length() << ",\"elements\":[";
  for (size_t i = 0; i < p.nodes().size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(g.node(p.nodes()[i]).name) << "\"";
    if (i < p.edges().size()) {
      os << ",\"" << JsonEscape(g.edge(p.edges()[i]).name) << "\"";
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace

std::string ElementToJson(const PropertyGraph& g, const ElementRef& ref) {
  const ElementData& d = g.element(ref);
  std::ostringstream os;
  os << "{\"kind\":\"" << (ref.is_node() ? "node" : "edge") << "\",";
  os << "\"name\":\"" << JsonEscape(d.name) << "\",";
  if (ref.is_edge()) {
    const EdgeData& e = g.edge(ref.id);
    os << "\"directed\":" << (e.directed ? "true" : "false") << ",";
    os << "\"endpoints\":[\"" << JsonEscape(g.node(e.u).name) << "\",\""
       << JsonEscape(g.node(e.v).name) << "\"],";
  }
  os << "\"labels\":[";
  for (size_t i = 0; i < d.labels.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(d.labels[i]) << "\"";
  }
  os << "],\"properties\":{";
  bool first = true;
  for (const auto& [k, v] : d.properties) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(k) << "\":" << ValueToJson(v);
  }
  os << "}}";
  return os.str();
}

std::string ExportJson(const MatchOutput& output, const PropertyGraph& g) {
  std::ostringstream os;
  os << "{\"rows\":[";
  bool first_row = true;
  for (const ResultRow& row : output.rows) {
    if (!first_row) os << ",";
    first_row = false;
    os << "{";
    RowScope scope(output, row);
    bool first_var = true;
    for (int v = 0; v < output.vars->size(); ++v) {
      const VarInfo& info = output.vars->info(v);
      if (info.anonymous) continue;
      if (!first_var) os << ",";
      first_var = false;
      os << "\"" << JsonEscape(info.name) << "\":";
      if (info.kind == VarInfo::Kind::kPath) {
        const Path* p = scope.LookupPath(v);
        os << (p == nullptr ? "null" : PathToJson(g, *p));
        continue;
      }
      if (info.group) {
        os << "[";
        std::vector<ElementRef> elems = scope.CollectGroup(v);
        for (size_t i = 0; i < elems.size(); ++i) {
          if (i > 0) os << ",";
          os << ElementToJson(g, elems[i]);
        }
        os << "]";
        continue;
      }
      std::optional<ElementRef> el = scope.LookupSingleton(v);
      os << (el.has_value() ? ElementToJson(g, *el) : "null");
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace gpml
