#ifndef GPML_PLANNER_EXPLAIN_H_
#define GPML_PLANNER_EXPLAIN_H_

#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "planner/planner.h"

namespace gpml {
namespace planner {

/// Execution-level facts rendered into EXPLAIN alongside the plan: the
/// resolved worker count and whether the plan was served from the graph's
/// plan cache.
struct ExplainExec {
  size_t threads = 1;
  bool cached = false;
};

/// Renders a plan as stable, line-oriented text, one `step` line per
/// declaration in execution order:
///
///   plan: 2 declaration(s), planner=on
///   exec: threads=4 cached=true
///   step 1: decl=0 dir=forward anchor=left var=x seeds~2 source=label:Account
///       fanout~1.5 join=[] selector=none
///   step 2: decl=1 dir=reversed anchor=right var=y seeds~3 source=bound:y
///       fanout~2 join=[x,y] selector=ALL SHORTEST
///
/// (each step is a single line; wrapped here for readability). The `exec:`
/// line appears when `exec` is non-null. When `stats` is non-null a
/// `-- graph stats --` section is appended. The format is parsed back by
/// ParseExplain, which keeps renderer and parser honest. Free-form values
/// (variable names, labels, selectors) are escaped with EscapeExplainValue
/// so quotes, spaces, and newlines cannot break the line framing.
std::string ExplainPlan(const Plan& plan, const VarTable& vars,
                        const GraphStats* stats = nullptr,
                        const ExplainExec* exec = nullptr);

/// Escapes a free-form value for embedding as a space-delimited `key=value`
/// token of an EXPLAIN line: backslash, newline, carriage return, space and
/// comma become \\ \n \r \s \c. With `keep_spaces` (the final token of a
/// line, which extends to end of line) spaces stay literal. Unescape inverts
/// exactly; unknown escapes and a trailing backslash are kept literally.
std::string EscapeExplainValue(const std::string& value,
                               bool keep_spaces = false);
std::string UnescapeExplainValue(const std::string& value);

/// A step line of an EXPLAIN rendering, decoded.
struct ExplainedDecl {
  int step = -1;        // 1-based execution position.
  int decl_index = -1;  // Source declaration index.
  bool reversed = false;
  std::string anchor;   // "left" or "right".
  std::string var;      // Anchor variable name; "_" when none.
  double seeds = 0;     // Estimated enumerated seeds; -1 ("*") for bound
                        // steps, whose seed count is a run-time join size.
  std::string source;   // "all", "label:<L>", or "bound:<var>".
  std::vector<std::string> join_vars;
  std::string selector;
};

struct ExplainedPlan {
  bool planner_on = false;
  bool has_exec = false;   // An `exec:` line was present.
  size_t threads = 0;      // From the exec line; 0 when absent.
  bool cached = false;     // From the exec line; false when absent.
  std::vector<ExplainedDecl> decls;
};

/// Parses ExplainPlan output back into its decisions (roundtrip tests,
/// tooling). Ignores the optional stats section.
Result<ExplainedPlan> ParseExplain(const std::string& text);

/// Renders a plan text as a one-column table ("plan", one row per line) —
/// the shape both hosts return for EXPLAIN statements.
Table ExplainTable(const std::string& text);

/// If `statement` starts with the EXPLAIN keyword (case-insensitive, after
/// whitespace), strips it into `*rest` and returns true.
bool StripExplainPrefix(const std::string& statement, std::string* rest);

}  // namespace planner
}  // namespace gpml

#endif  // GPML_PLANNER_EXPLAIN_H_
