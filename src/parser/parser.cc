#include "parser/parser.h"

#include <optional>

#include "common/source.h"
#include "common/strings.h"
#include "parser/lexer.h"

namespace gpml {

namespace {

/// Recursive-descent parser over the token stream. Keywords are matched
/// case-insensitively against identifier tokens, so they stay usable as
/// variable/property names in non-keyword positions.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<MatchStatement> ParseStatementAll();
  Result<GraphPattern> ParseGraphPatternAll();
  Result<ExprPtr> ParseExpressionAll();
  Result<std::vector<ReturnItem>> ParseColumnsAll();

 private:
  // --- token plumbing -----------------------------------------------------
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead = 1) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool At(TokenKind k) const { return Cur().kind == k; }
  bool Eat(TokenKind k) {
    if (!At(k)) return false;
    Advance();
    return true;
  }
  Status Expect(TokenKind k, const char* context) {
    if (Eat(k)) return Status::OK();
    return Err(std::string("expected ") + TokenKindName(k) + " in " + context);
  }
  bool AtKeyword(const char* kw) const {
    return Cur().kind == TokenKind::kIdent &&
           EqualsIgnoreCase(Cur().text, kw);
  }
  bool EatKeyword(const char* kw) {
    if (!AtKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status Err(const std::string& msg) const {
    return Status::SyntaxError(msg + " (offset=" +
                               std::to_string(Cur().offset) + ", at '" +
                               (Cur().kind == TokenKind::kEnd
                                    ? "<end>"
                                    : (Cur().text.empty()
                                           ? TokenKindName(Cur().kind)
                                           : Cur().text)) +
                               "')");
  }

  /// End offset of the most recently consumed token — the natural `end` for
  /// a span that began at an earlier token's `offset`.
  size_t PrevEnd() const { return pos_ > 0 ? tokens_[pos_ - 1].end() : 0; }
  /// Span from `begin` to the end of the last consumed token.
  SourceSpan SpanFrom(size_t begin) const { return {begin, PrevEnd()}; }

  /// In expression position `<-` means `<` followed by unary minus: splits
  /// the current kArrowLeft token into kLt (returned) and kMinus (kept).
  void SplitArrowLeft() {
    Token minus;
    minus.kind = TokenKind::kMinus;
    minus.offset = Cur().offset + 1;
    minus.length = 1;
    tokens_[pos_].kind = TokenKind::kLt;
    tokens_[pos_].length = 1;
    tokens_.insert(tokens_.begin() + static_cast<long>(pos_) + 1, minus);
  }

  // --- grammar ------------------------------------------------------------
  Result<GraphPattern> ParseGraphPatternBody();
  Result<PathPatternDecl> ParsePathDecl();
  std::optional<Selector> TryParseSelector();
  Restrictor TryParseRestrictor();
  Result<PathPatternPtr> ParsePathPattern();
  Result<PathPatternPtr> ParseConcat();
  Result<PathElement> ParseElement();
  Result<PathElement> ParseParenElement(TokenKind close);
  Result<NodePattern> ParseNodePattern();
  Result<EdgePattern> ParseEdgePattern();
  Result<EdgePattern> ParseEdgePatternInner();
  Status ParseSpec(std::string* var, LabelExprPtr* labels, ExprPtr* where);
  Result<LabelExprPtr> ParseLabelExpr();
  Result<LabelExprPtr> ParseLabelAnd();
  Result<LabelExprPtr> ParseLabelUnary();
  bool AtQuantifier() const;
  /// Returns min/max; for `?` sets is_question. `span` receives the byte
  /// range of the quantifier itself ({m,n}, *, + or ?).
  Status ParseQuantifier(uint64_t* min, std::optional<uint64_t>* max,
                         bool* is_question, SourceSpan* span);

  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseCall(const std::string& name);

  Result<std::vector<ReturnItem>> ParseReturnItems();

  /// True when the current token can begin a path element.
  bool AtElementStart() const;
  /// True when current token begins an edge pattern.
  bool AtEdgeStart() const;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

Result<MatchStatement> Parser::ParseStatementAll() {
  MatchStatement stmt;
  GPML_ASSIGN_OR_RETURN(stmt.pattern, ParseGraphPatternBody());
  if (EatKeyword("RETURN")) {
    stmt.has_return = true;
    if (EatKeyword("DISTINCT")) stmt.return_distinct = true;
    GPML_ASSIGN_OR_RETURN(stmt.return_items, ParseReturnItems());
    // LIMIT n: cap the result table at n rows. Execution pushes the limit
    // into the cursor so matching can stop early (docs/api.md).
    if (EatKeyword("LIMIT")) {
      if (!At(TokenKind::kInt) || Cur().int_value < 0) {
        return Err("expected non-negative integer after LIMIT");
      }
      stmt.limit = static_cast<uint64_t>(Cur().int_value);
      Advance();
    }
  }
  Eat(TokenKind::kSemicolon);
  if (!At(TokenKind::kEnd)) return Err("unexpected trailing input");
  return stmt;
}

Result<GraphPattern> Parser::ParseGraphPatternAll() {
  GPML_ASSIGN_OR_RETURN(GraphPattern g, ParseGraphPatternBody());
  Eat(TokenKind::kSemicolon);
  if (!At(TokenKind::kEnd)) return Err("unexpected trailing input");
  return g;
}

Result<ExprPtr> Parser::ParseExpressionAll() {
  GPML_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
  if (!At(TokenKind::kEnd)) return Err("unexpected trailing input");
  return e;
}

Result<std::vector<ReturnItem>> Parser::ParseColumnsAll() {
  GPML_ASSIGN_OR_RETURN(std::vector<ReturnItem> items, ParseReturnItems());
  if (!At(TokenKind::kEnd)) return Err("unexpected trailing input");
  return items;
}

// ---------------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------------

Result<GraphPattern> Parser::ParseGraphPatternBody() {
  if (!EatKeyword("MATCH")) return Err("expected MATCH");
  GraphPattern g;
  // Optional match mode (§7.1 Language Opportunity; published GQL syntax):
  // MATCH [REPEATABLE ELEMENTS | DIFFERENT EDGES | DIFFERENT NODES] ...
  if (AtKeyword("REPEATABLE")) {
    Advance();
    if (!EatKeyword("ELEMENTS")) {
      return Err("expected ELEMENTS after REPEATABLE");
    }
    g.mode = MatchMode::kRepeatableElements;
  } else if (AtKeyword("DIFFERENT")) {
    Advance();
    if (EatKeyword("EDGES")) {
      g.mode = MatchMode::kDifferentEdges;
    } else if (EatKeyword("NODES")) {
      g.mode = MatchMode::kDifferentNodes;
    } else {
      return Err("expected EDGES or NODES after DIFFERENT");
    }
  }
  while (true) {
    GPML_ASSIGN_OR_RETURN(PathPatternDecl decl, ParsePathDecl());
    g.paths.push_back(std::move(decl));
    if (!Eat(TokenKind::kComma)) break;
  }
  if (EatKeyword("WHERE")) {
    GPML_ASSIGN_OR_RETURN(g.where, ParseExpr());
  }
  return g;
}

Result<PathPatternDecl> Parser::ParsePathDecl() {
  PathPatternDecl decl;
  if (std::optional<Selector> sel = TryParseSelector(); sel.has_value()) {
    decl.selector = *sel;
  }
  decl.restrictor = TryParseRestrictor();
  // Path variable: IDENT '=' <pattern>.
  if (Cur().kind == TokenKind::kIdent && Peek().kind == TokenKind::kEq) {
    decl.path_var = Cur().text;
    Advance();
    Advance();
  }
  GPML_ASSIGN_OR_RETURN(decl.pattern, ParsePathPattern());
  return decl;
}

std::optional<Selector> Parser::TryParseSelector() {
  Selector s;
  if (AtKeyword("ANY")) {
    // ANY SHORTEST | ANY k | ANY — but bare "ANY" must not swallow a node
    // variable: it is followed by a pattern opener either way, so no
    // ambiguity (selectors precede the pattern).
    Advance();
    if (EatKeyword("SHORTEST")) {
      s.kind = Selector::Kind::kAnyShortest;
    } else if (At(TokenKind::kInt)) {
      s.kind = Selector::Kind::kAnyK;
      s.k = static_cast<int>(Cur().int_value);
      Advance();
    } else {
      s.kind = Selector::Kind::kAny;
    }
    return s;
  }
  if (AtKeyword("ALL") && EqualsIgnoreCase(Peek().text, "SHORTEST") &&
      Peek().kind == TokenKind::kIdent) {
    Advance();
    Advance();
    s.kind = Selector::Kind::kAllShortest;
    return s;
  }
  if (AtKeyword("SHORTEST") && Peek().kind == TokenKind::kInt) {
    Advance();
    s.k = static_cast<int>(Cur().int_value);
    Advance();
    if (EatKeyword("GROUP")) {
      s.kind = Selector::Kind::kShortestKGroup;
    } else {
      s.kind = Selector::Kind::kShortestK;
    }
    return s;
  }
  return std::nullopt;
}

Restrictor Parser::TryParseRestrictor() {
  if (EatKeyword("TRAIL")) return Restrictor::kTrail;
  if (EatKeyword("ACYCLIC")) return Restrictor::kAcyclic;
  if (EatKeyword("SIMPLE")) return Restrictor::kSimple;
  return Restrictor::kNone;
}

Result<PathPatternPtr> Parser::ParsePathPattern() {
  GPML_ASSIGN_OR_RETURN(PathPatternPtr first, ParseConcat());
  if (!At(TokenKind::kPipe) && !At(TokenKind::kPipePlusPipe)) return first;

  // A chain of unions/alternations. Mixed chains group left-to-right with
  // same-operator runs merged into one node.
  PathPatternPtr acc = first;
  while (At(TokenKind::kPipe) || At(TokenKind::kPipePlusPipe)) {
    bool multiset = At(TokenKind::kPipePlusPipe);
    TokenKind op = Cur().kind;
    std::vector<PathPatternPtr> alts;
    alts.push_back(acc);
    while (Eat(op)) {
      GPML_ASSIGN_OR_RETURN(PathPatternPtr next, ParseConcat());
      alts.push_back(std::move(next));
    }
    acc = multiset ? PathPattern::Alternation(std::move(alts))
                   : PathPattern::Union(std::move(alts));
  }
  return acc;
}

bool Parser::AtEdgeStart() const {
  switch (Cur().kind) {
    case TokenKind::kMinus:
    case TokenKind::kArrowLeft:
    case TokenKind::kArrowRight:
    case TokenKind::kTilde:
    case TokenKind::kLeftTilde:
    case TokenKind::kTildeRight:
    case TokenKind::kLeftRight:
      return true;
    default:
      return false;
  }
}

bool Parser::AtElementStart() const {
  return At(TokenKind::kLParen) || At(TokenKind::kLBracket) || AtEdgeStart();
}

Result<PathPatternPtr> Parser::ParseConcat() {
  std::vector<PathElement> elements;
  if (!AtElementStart()) return Err("expected a node, edge or path pattern");
  while (AtElementStart()) {
    GPML_ASSIGN_OR_RETURN(PathElement e, ParseElement());
    elements.push_back(std::move(e));
  }
  return PathPattern::Concat(std::move(elements));
}

Result<PathElement> Parser::ParseElement() {
  if (At(TokenKind::kLBracket)) {
    Advance();
    return ParseParenElement(TokenKind::kRBracket);
  }
  if (At(TokenKind::kLParen)) {
    // Disambiguate node pattern vs parenthesized path pattern: a
    // parenthesized path pattern starts with an element opener or a
    // restrictor keyword; a node pattern starts with ident/':'/WHERE/')'.
    const Token& nxt = Peek();
    bool paren_path =
        nxt.kind == TokenKind::kLParen || nxt.kind == TokenKind::kLBracket ||
        nxt.kind == TokenKind::kMinus || nxt.kind == TokenKind::kArrowLeft ||
        nxt.kind == TokenKind::kArrowRight || nxt.kind == TokenKind::kTilde ||
        nxt.kind == TokenKind::kLeftTilde ||
        nxt.kind == TokenKind::kTildeRight ||
        nxt.kind == TokenKind::kLeftRight;
    if (nxt.kind == TokenKind::kIdent &&
        (EqualsIgnoreCase(nxt.text, "TRAIL") ||
         EqualsIgnoreCase(nxt.text, "ACYCLIC") ||
         EqualsIgnoreCase(nxt.text, "SIMPLE")) &&
        Peek(2).kind != TokenKind::kRParen &&
        Peek(2).kind != TokenKind::kColon && Peek(2).kind != TokenKind::kEnd &&
        !(Peek(2).kind == TokenKind::kIdent &&
          EqualsIgnoreCase(Peek(2).text, "WHERE"))) {
      paren_path = true;
    }
    if (paren_path) {
      Advance();
      return ParseParenElement(TokenKind::kRParen);
    }
    GPML_ASSIGN_OR_RETURN(NodePattern n, ParseNodePattern());
    return PathElement::Node(std::move(n));
  }
  // Edge pattern, optionally quantified (bare-edge quantifier, §4.4).
  GPML_ASSIGN_OR_RETURN(EdgePattern e, ParseEdgePattern());
  if (AtQuantifier()) {
    uint64_t min = 0;
    std::optional<uint64_t> max;
    bool question = false;
    SourceSpan qspan;
    GPML_RETURN_IF_ERROR(ParseQuantifier(&min, &max, &question, &qspan));
    PathPatternPtr sub =
        PathPattern::Concat({PathElement::Edge(std::move(e))});
    if (question) {
      return PathElement::Optional(std::move(sub), Restrictor::kNone, nullptr,
                                   /*bare_edge=*/true);
    }
    PathElement q = PathElement::Quantified(
        std::move(sub), min, max, Restrictor::kNone, nullptr,
        /*bare_edge=*/true);
    q.quantifier_span = qspan;
    return q;
  }
  return PathElement::Edge(std::move(e));
}

Result<PathElement> Parser::ParseParenElement(TokenKind close) {
  Restrictor r = TryParseRestrictor();
  GPML_ASSIGN_OR_RETURN(PathPatternPtr sub, ParsePathPattern());
  ExprPtr where;
  if (EatKeyword("WHERE")) {
    GPML_ASSIGN_OR_RETURN(where, ParseExpr());
  }
  GPML_RETURN_IF_ERROR(Expect(close, "parenthesized path pattern"));
  if (AtQuantifier()) {
    uint64_t min = 0;
    std::optional<uint64_t> max;
    bool question = false;
    SourceSpan qspan;
    GPML_RETURN_IF_ERROR(ParseQuantifier(&min, &max, &question, &qspan));
    if (question) {
      return PathElement::Optional(std::move(sub), r, std::move(where),
                                   /*bare_edge=*/false);
    }
    PathElement q = PathElement::Quantified(std::move(sub), min, max, r,
                                            std::move(where),
                                            /*bare_edge=*/false);
    q.quantifier_span = qspan;
    return q;
  }
  return PathElement::Paren(std::move(sub), r, std::move(where));
}

Result<NodePattern> Parser::ParseNodePattern() {
  size_t begin = Cur().offset;
  GPML_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "node pattern"));
  NodePattern n;
  GPML_RETURN_IF_ERROR(ParseSpec(&n.var, &n.labels, &n.where));
  GPML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "node pattern"));
  n.span = SpanFrom(begin);
  return n;
}

Result<EdgePattern> Parser::ParseEdgePattern() {
  size_t begin = Cur().offset;
  GPML_ASSIGN_OR_RETURN(EdgePattern e, ParseEdgePatternInner());
  e.span = SpanFrom(begin);
  return e;
}

Result<EdgePattern> Parser::ParseEdgePatternInner() {
  EdgePattern e;
  // Abbreviated forms (single token, no spec).
  if (At(TokenKind::kArrowRight)) {
    Advance();
    e.orientation = EdgeOrientation::kRight;
    return e;
  }
  if (At(TokenKind::kLeftRight)) {
    Advance();
    e.orientation = EdgeOrientation::kLeftOrRight;
    return e;
  }
  if (At(TokenKind::kTildeRight)) {
    Advance();
    e.orientation = EdgeOrientation::kUndirectedOrRight;
    return e;
  }

  // Bracketed or abbreviated-without-spec left prefixes.
  if (At(TokenKind::kArrowLeft)) {
    Advance();
    if (Eat(TokenKind::kLBracket)) {
      GPML_RETURN_IF_ERROR(ParseSpec(&e.var, &e.labels, &e.where));
      GPML_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "edge pattern"));
      if (Eat(TokenKind::kArrowRight)) {
        e.orientation = EdgeOrientation::kLeftOrRight;  // <-[ ]->
      } else if (Eat(TokenKind::kMinus)) {
        e.orientation = EdgeOrientation::kLeft;  // <-[ ]-
      } else {
        return Err("expected - or -> after ] in edge pattern");
      }
      return e;
    }
    e.orientation = EdgeOrientation::kLeft;  // abbreviation <-
    return e;
  }
  if (At(TokenKind::kLeftTilde)) {
    Advance();
    if (Eat(TokenKind::kLBracket)) {
      GPML_RETURN_IF_ERROR(ParseSpec(&e.var, &e.labels, &e.where));
      GPML_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "edge pattern"));
      if (Eat(TokenKind::kTilde)) {
        e.orientation = EdgeOrientation::kLeftOrUndirected;  // <~[ ]~
      } else {
        return Err("expected ~ after ] in edge pattern");
      }
      return e;
    }
    e.orientation = EdgeOrientation::kLeftOrUndirected;  // abbreviation <~
    return e;
  }
  if (At(TokenKind::kTilde)) {
    Advance();
    if (Eat(TokenKind::kLBracket)) {
      GPML_RETURN_IF_ERROR(ParseSpec(&e.var, &e.labels, &e.where));
      GPML_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "edge pattern"));
      if (Eat(TokenKind::kTildeRight)) {
        e.orientation = EdgeOrientation::kUndirectedOrRight;  // ~[ ]~>
      } else if (Eat(TokenKind::kTilde)) {
        e.orientation = EdgeOrientation::kUndirected;  // ~[ ]~
      } else {
        return Err("expected ~ or ~> after ] in edge pattern");
      }
      return e;
    }
    e.orientation = EdgeOrientation::kUndirected;  // abbreviation ~
    return e;
  }
  if (At(TokenKind::kMinus)) {
    Advance();
    if (Eat(TokenKind::kLBracket)) {
      GPML_RETURN_IF_ERROR(ParseSpec(&e.var, &e.labels, &e.where));
      GPML_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "edge pattern"));
      if (Eat(TokenKind::kArrowRight)) {
        e.orientation = EdgeOrientation::kRight;  // -[ ]->
      } else if (Eat(TokenKind::kMinus)) {
        e.orientation = EdgeOrientation::kAny;  // -[ ]-
      } else {
        return Err("expected - or -> after ] in edge pattern");
      }
      return e;
    }
    e.orientation = EdgeOrientation::kAny;  // abbreviation -
    return e;
  }
  return Err("expected edge pattern");
}

Status Parser::ParseSpec(std::string* var, LabelExprPtr* labels,
                         ExprPtr* where) {
  if (Cur().kind == TokenKind::kIdent && !AtKeyword("WHERE")) {
    *var = Cur().text;
    Advance();
  }
  if (Eat(TokenKind::kColon)) {
    GPML_ASSIGN_OR_RETURN(*labels, ParseLabelExpr());
  }
  if (EatKeyword("WHERE")) {
    GPML_ASSIGN_OR_RETURN(*where, ParseExpr());
  }
  return Status::OK();
}

Result<LabelExprPtr> Parser::ParseLabelExpr() {
  GPML_ASSIGN_OR_RETURN(LabelExprPtr left, ParseLabelAnd());
  while (At(TokenKind::kPipe)) {
    // `(x:A|B)` label disjunction; inside a node/edge spec `|` cannot be a
    // path union, so this is unambiguous.
    Advance();
    GPML_ASSIGN_OR_RETURN(LabelExprPtr right, ParseLabelAnd());
    left = LabelExpr::Or(std::move(left), std::move(right));
  }
  return left;
}

Result<LabelExprPtr> Parser::ParseLabelAnd() {
  GPML_ASSIGN_OR_RETURN(LabelExprPtr left, ParseLabelUnary());
  while (At(TokenKind::kAmp)) {
    Advance();
    GPML_ASSIGN_OR_RETURN(LabelExprPtr right, ParseLabelUnary());
    left = LabelExpr::And(std::move(left), std::move(right));
  }
  return left;
}

Result<LabelExprPtr> Parser::ParseLabelUnary() {
  if (Eat(TokenKind::kBang)) {
    GPML_ASSIGN_OR_RETURN(LabelExprPtr sub, ParseLabelUnary());
    return LabelExpr::Not(std::move(sub));
  }
  if (Eat(TokenKind::kPercent)) return LabelExpr::Wildcard();
  if (Eat(TokenKind::kLParen)) {
    GPML_ASSIGN_OR_RETURN(LabelExprPtr sub, ParseLabelExpr());
    GPML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "label expression"));
    return sub;
  }
  if (Cur().kind == TokenKind::kIdent) {
    LabelExprPtr name = LabelExpr::Name(Cur().text);
    Advance();
    return name;
  }
  return Err("expected label expression");
}

bool Parser::AtQuantifier() const {
  return At(TokenKind::kStar) || At(TokenKind::kPlus) ||
         At(TokenKind::kQuestion) || At(TokenKind::kLBrace);
}

Status Parser::ParseQuantifier(uint64_t* min, std::optional<uint64_t>* max,
                               bool* is_question, SourceSpan* span) {
  size_t begin = Cur().offset;
  *is_question = false;
  if (Eat(TokenKind::kStar)) {
    *min = 0;
    *max = std::nullopt;
    *span = SpanFrom(begin);
    return Status::OK();
  }
  if (Eat(TokenKind::kPlus)) {
    *min = 1;
    *max = std::nullopt;
    *span = SpanFrom(begin);
    return Status::OK();
  }
  if (Eat(TokenKind::kQuestion)) {
    *is_question = true;
    *min = 0;
    *max = 1;
    *span = SpanFrom(begin);
    return Status::OK();
  }
  GPML_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "quantifier"));
  if (!At(TokenKind::kInt)) return Err("expected integer in quantifier");
  *min = static_cast<uint64_t>(Cur().int_value);
  Advance();
  if (Eat(TokenKind::kComma)) {
    if (At(TokenKind::kInt)) {
      *max = static_cast<uint64_t>(Cur().int_value);
      Advance();
    } else {
      *max = std::nullopt;  // {m,}
    }
  } else {
    *max = *min;  // {m} — convenience extension, equivalent to {m,m}.
  }
  GPML_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "quantifier"));
  *span = SpanFrom(begin);
  if (max->has_value() && **max < *min) {
    return Status::SyntaxError("quantifier upper bound below lower bound"
                               " (offset=" + std::to_string(begin) + ")");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  size_t begin = Cur().offset;
  GPML_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (AtKeyword("OR")) {
    Advance();
    GPML_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Expr::WithSpan(
        Expr::Binary(BinaryOp::kOr, std::move(left), std::move(right)),
        SpanFrom(begin));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  size_t begin = Cur().offset;
  GPML_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (AtKeyword("AND")) {
    Advance();
    GPML_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = Expr::WithSpan(
        Expr::Binary(BinaryOp::kAnd, std::move(left), std::move(right)),
        SpanFrom(begin));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  size_t begin = Cur().offset;
  if (EatKeyword("NOT")) {
    GPML_ASSIGN_OR_RETURN(ExprPtr sub, ParseNot());
    return Expr::WithSpan(Expr::Not(std::move(sub)), SpanFrom(begin));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  size_t begin = Cur().offset;
  GPML_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

  // IS forms: IS [NOT] NULL, IS DIRECTED, IS SOURCE OF e, IS DESTINATION OF.
  if (AtKeyword("IS")) {
    Advance();
    bool negated = EatKeyword("NOT");
    if (EatKeyword("NULL")) {
      return Expr::WithSpan(Expr::IsNull(std::move(left), negated),
                            SpanFrom(begin));
    }
    if (negated) return Err("expected NULL after IS NOT");
    if (EatKeyword("DIRECTED")) {
      if (left->kind != Expr::Kind::kVarRef) {
        return Err("IS DIRECTED applies to a variable");
      }
      return Expr::WithSpan(Expr::IsDirected(left->var), SpanFrom(begin));
    }
    bool source = false;
    if (EatKeyword("SOURCE")) {
      source = true;
    } else if (!EatKeyword("DESTINATION")) {
      return Err("expected NULL, DIRECTED, SOURCE or DESTINATION after IS");
    }
    if (!EatKeyword("OF")) return Err("expected OF");
    if (Cur().kind != TokenKind::kIdent) return Err("expected edge variable");
    std::string edge_var = Cur().text;
    Advance();
    if (left->kind != Expr::Kind::kVarRef) {
      return Err("IS SOURCE/DESTINATION OF applies to a variable");
    }
    return Expr::WithSpan(source ? Expr::IsSourceOf(left->var, edge_var)
                                 : Expr::IsDestinationOf(left->var, edge_var),
                          SpanFrom(begin));
  }

  BinaryOp op;
  if (At(TokenKind::kArrowLeft)) SplitArrowLeft();  // x <-1 means x < -1
  switch (Cur().kind) {
    case TokenKind::kEq: op = BinaryOp::kEq; break;
    case TokenKind::kNeq: op = BinaryOp::kNeq; break;
    case TokenKind::kLt: op = BinaryOp::kLt; break;
    case TokenKind::kLe: op = BinaryOp::kLe; break;
    case TokenKind::kGt: op = BinaryOp::kGt; break;
    case TokenKind::kGe: op = BinaryOp::kGe; break;
    default: return left;
  }
  Advance();
  GPML_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
  return Expr::WithSpan(Expr::Binary(op, std::move(left), std::move(right)),
                        SpanFrom(begin));
}

Result<ExprPtr> Parser::ParseAdditive() {
  size_t begin = Cur().offset;
  GPML_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
    BinaryOp op = At(TokenKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
    Advance();
    GPML_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = Expr::WithSpan(
        Expr::Binary(op, std::move(left), std::move(right)), SpanFrom(begin));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  size_t begin = Cur().offset;
  GPML_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (At(TokenKind::kStar) || At(TokenKind::kSlash)) {
    BinaryOp op = At(TokenKind::kStar) ? BinaryOp::kMul : BinaryOp::kDiv;
    Advance();
    GPML_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = Expr::WithSpan(
        Expr::Binary(op, std::move(left), std::move(right)), SpanFrom(begin));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  size_t begin = Cur().offset;
  if (Eat(TokenKind::kMinus)) {
    GPML_ASSIGN_OR_RETURN(ExprPtr sub, ParseUnary());
    return Expr::WithSpan(Expr::Binary(BinaryOp::kSub,
                                       Expr::Lit(Value::Int(0)),
                                       std::move(sub)),
                          SpanFrom(begin));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  size_t begin = Cur().offset;
  switch (Cur().kind) {
    case TokenKind::kInt: {
      ExprPtr e = Expr::Lit(Value::Int(Cur().int_value));
      Advance();
      return Expr::WithSpan(std::move(e), SpanFrom(begin));
    }
    case TokenKind::kDouble: {
      ExprPtr e = Expr::Lit(Value::Double(Cur().double_value));
      Advance();
      return Expr::WithSpan(std::move(e), SpanFrom(begin));
    }
    case TokenKind::kString: {
      ExprPtr e = Expr::Lit(Value::String(Cur().string_value));
      Advance();
      return Expr::WithSpan(std::move(e), SpanFrom(begin));
    }
    case TokenKind::kParam: {
      ExprPtr e = Expr::Param(Cur().text);
      Advance();
      return Expr::WithSpan(std::move(e), SpanFrom(begin));
    }
    case TokenKind::kLParen: {
      Advance();
      GPML_ASSIGN_OR_RETURN(ExprPtr sub, ParseExpr());
      GPML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "expression"));
      return sub;
    }
    case TokenKind::kIdent: {
      if (EatKeyword("TRUE")) {
        return Expr::WithSpan(Expr::Lit(Value::Bool(true)), SpanFrom(begin));
      }
      if (EatKeyword("FALSE")) {
        return Expr::WithSpan(Expr::Lit(Value::Bool(false)), SpanFrom(begin));
      }
      if (EatKeyword("NULL")) {
        return Expr::WithSpan(Expr::Lit(Value::Null()), SpanFrom(begin));
      }
      std::string name = Cur().text;
      Advance();
      if (At(TokenKind::kLParen)) {
        GPML_ASSIGN_OR_RETURN(ExprPtr call, ParseCall(name));
        return Expr::WithSpan(std::move(call), SpanFrom(begin));
      }
      if (Eat(TokenKind::kDot)) {
        if (Eat(TokenKind::kStar)) {
          return Expr::WithSpan(Expr::Prop(name, "*"), SpanFrom(begin));
        }
        if (Cur().kind != TokenKind::kIdent) {
          return Err("expected property name after '.'");
        }
        std::string prop = Cur().text;
        Advance();
        return Expr::WithSpan(Expr::Prop(name, prop), SpanFrom(begin));
      }
      return Expr::WithSpan(Expr::Var(name), SpanFrom(begin));
    }
    default:
      return Err("expected expression");
  }
}

Result<ExprPtr> Parser::ParseCall(const std::string& name) {
  GPML_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "function call"));

  auto parse_var_list = [&]() -> Result<std::vector<std::string>> {
    std::vector<std::string> vars;
    while (true) {
      if (Cur().kind != TokenKind::kIdent) {
        return Err("expected variable name");
      }
      vars.push_back(Cur().text);
      Advance();
      if (!Eat(TokenKind::kComma)) break;
    }
    GPML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "variable list"));
    return vars;
  };

  if (EqualsIgnoreCase(name, "SAME")) {
    GPML_ASSIGN_OR_RETURN(std::vector<std::string> vars, parse_var_list());
    return Expr::Same(std::move(vars));
  }
  if (EqualsIgnoreCase(name, "ALL_DIFFERENT")) {
    GPML_ASSIGN_OR_RETURN(std::vector<std::string> vars, parse_var_list());
    return Expr::AllDifferent(std::move(vars));
  }
  if (EqualsIgnoreCase(name, "PATH_LENGTH")) {
    if (Cur().kind != TokenKind::kIdent) return Err("expected path variable");
    std::string var = Cur().text;
    Advance();
    GPML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "PATH_LENGTH"));
    return Expr::PathLength(std::move(var));
  }

  AggFunc agg;
  if (EqualsIgnoreCase(name, "COUNT")) {
    agg = AggFunc::kCount;
  } else if (EqualsIgnoreCase(name, "SUM")) {
    agg = AggFunc::kSum;
  } else if (EqualsIgnoreCase(name, "AVG")) {
    agg = AggFunc::kAvg;
  } else if (EqualsIgnoreCase(name, "MIN")) {
    agg = AggFunc::kMin;
  } else if (EqualsIgnoreCase(name, "MAX")) {
    agg = AggFunc::kMax;
  } else if (EqualsIgnoreCase(name, "LISTAGG")) {
    agg = AggFunc::kListAgg;
  } else {
    return Err("unknown function " + name);
  }

  bool distinct = EatKeyword("DISTINCT");
  GPML_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
  std::string separator;
  if (agg == AggFunc::kListAgg && Eat(TokenKind::kComma)) {
    if (Cur().kind != TokenKind::kString) {
      return Err("expected string separator in LISTAGG");
    }
    separator = Cur().string_value;
    Advance();
  }
  GPML_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "aggregate"));
  return Expr::Aggregate(agg, std::move(arg), distinct, std::move(separator));
}

Result<std::vector<ReturnItem>> Parser::ParseReturnItems() {
  std::vector<ReturnItem> items;
  while (true) {
    ReturnItem item;
    GPML_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (EatKeyword("AS")) {
      if (Cur().kind != TokenKind::kIdent) return Err("expected alias");
      item.alias = Cur().text;
      Advance();
    } else {
      item.alias = item.expr->ToString();
    }
    items.push_back(std::move(item));
    if (!Eat(TokenKind::kComma)) break;
  }
  return items;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

namespace {

// Errors carry "offset=N"; the parser only sees tokens, so the caret
// snippet for that offset is attached here, where the text is in hand.
template <typename T>
Result<T> WithSnippet(Result<T> r, const std::string& text) {
  if (r.ok()) return r;
  return AttachSnippet(r.status(), text);
}

}  // namespace

Result<MatchStatement> ParseStatement(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return AttachSnippet(tokens.status(), text);
  Parser p(std::move(tokens).value());
  return WithSnippet(p.ParseStatementAll(), text);
}

Result<GraphPattern> ParseGraphPattern(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return AttachSnippet(tokens.status(), text);
  Parser p(std::move(tokens).value());
  return WithSnippet(p.ParseGraphPatternAll(), text);
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return AttachSnippet(tokens.status(), text);
  Parser p(std::move(tokens).value());
  return WithSnippet(p.ParseExpressionAll(), text);
}

Result<std::vector<ReturnItem>> ParseColumns(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return AttachSnippet(tokens.status(), text);
  Parser p(std::move(tokens).value());
  return WithSnippet(p.ParseColumnsAll(), text);
}

}  // namespace gpml
