#ifndef GPML_OBS_TRACE_H_
#define GPML_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gpml {
namespace obs {

/// One timed region of a query execution. Spans nest through explicit
/// parent indices (no hidden stack), so the engine can interleave open
/// spans and append reconstructed ones (per-shard timings measured inside
/// the matcher, plan/compile costs replayed from the plan-cache entry).
struct Span {
  std::string name;
  int parent = -1;          // Index into Trace::spans(); -1 = root.
  uint64_t start_us = 0;    // Relative to the trace epoch (first span).
  int64_t duration_us = -1; // -1 while the span is still open.
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// The span tree of one engine execution, attached via
/// EngineOptions::trace: parse, normalize/analyze, plan, compile, then per
/// declaration seed + match (with one span per worker shard), join, and the
/// final filter (docs/observability.md lists the taxonomy). The engine
/// clears and refills it on every execution, mirroring EngineMetrics'
/// reset-on-execute semantics.
///
/// Not thread-safe: one Trace belongs to one executing call. Worker shards
/// never touch it — the matcher reports per-shard wall times through
/// MatchStats and the engine appends the shard spans after the join.
class Trace {
 public:
  static constexpr int kNoParent = -1;

  /// Opens a span under `parent` (kNoParent for a root) and returns its
  /// index. The first span after Clear() fixes the trace epoch.
  int Begin(std::string name, int parent = kNoParent);

  /// Closes the span, capturing its monotonic duration.
  void End(int span);

  /// Attaches a key/value attribute to an open or closed span.
  void Attr(int span, std::string key, std::string value);

  /// Appends an already-measured span (shard timings, replayed plan-cache
  /// compile costs). `start_us` is relative to the trace epoch.
  int AddComplete(std::string name, int parent, uint64_t start_us,
                  uint64_t duration_us);

  /// Microseconds since the trace epoch (0 before the first span).
  uint64_t NowUs() const;

  void Clear();
  bool empty() const { return spans_.empty(); }
  const std::vector<Span>& spans() const { return spans_; }

  /// The first span with this name, or nullptr — test/report convenience.
  const Span* Find(const std::string& name) const;

  /// Summed duration (ms) over all closed spans with this name; 0 when
  /// absent. This is how EngineMetrics' stage totals are derived.
  double TotalMs(const std::string& name) const;

  /// One JSON object per span, newline-terminated — the JSON-lines payload
  /// TraceSinks receive and the slow-query log stores:
  ///   {"span":"match","parent":1,"start_us":120,"dur_us":950,
  ///    "attrs":{"decl":"0"}}
  /// Open spans render "dur_us":-1.
  std::string ToJsonLines() const;

 private:
  uint64_t epoch_us_ = 0;  // Absolute monotonic time of the first span.
  std::vector<Span> spans_;
};

/// Where finished traces go (EngineOptions::trace_sink): the engine calls
/// Emit once per completed execution. Implementations must be thread-safe —
/// concurrent executions sharing one options struct share the sink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const Trace& trace) = 0;
};

/// Accumulates emitted traces as JSON lines in memory (tests, examples).
class StringTraceSink : public TraceSink {
 public:
  void Emit(const Trace& trace) override;

  /// All lines emitted so far, leaving the buffer empty.
  std::string TakeOutput();
  size_t traces_emitted() const;

 private:
  mutable std::mutex mu_;
  std::string buffer_;
  size_t count_ = 0;
};

/// Writes emitted traces as JSON lines to a stdio stream (not owned) —
/// point it at stderr or a log file for always-on tracing.
class FileTraceSink : public TraceSink {
 public:
  explicit FileTraceSink(std::FILE* out) : out_(out) {}
  void Emit(const Trace& trace) override;

 private:
  std::mutex mu_;
  std::FILE* out_;
};

}  // namespace obs
}  // namespace gpml

#endif  // GPML_OBS_TRACE_H_
