#include "common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace gpml {

TriBool TriNot(TriBool v) {
  switch (v) {
    case TriBool::kFalse: return TriBool::kTrue;
    case TriBool::kTrue: return TriBool::kFalse;
    case TriBool::kUnknown: return TriBool::kUnknown;
  }
  return TriBool::kUnknown;
}

TriBool TriAnd(TriBool a, TriBool b) {
  if (a == TriBool::kFalse || b == TriBool::kFalse) return TriBool::kFalse;
  if (a == TriBool::kTrue && b == TriBool::kTrue) return TriBool::kTrue;
  return TriBool::kUnknown;
}

TriBool TriOr(TriBool a, TriBool b) {
  if (a == TriBool::kTrue || b == TriBool::kTrue) return TriBool::kTrue;
  if (a == TriBool::kFalse && b == TriBool::kFalse) return TriBool::kFalse;
  return TriBool::kUnknown;
}

const char* TriBoolName(TriBool v) {
  switch (v) {
    case TriBool::kFalse: return "false";
    case TriBool::kTrue: return "true";
    case TriBool::kUnknown: return "unknown";
  }
  return "unknown";
}

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return "BOOL";
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "?";
}

double Value::AsDouble() const {
  return is_int() ? static_cast<double>(int_value()) : double_value();
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kBool: return bool_value() ? "true" : "false";
    case ValueType::kInt: return std::to_string(int_value());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << double_value();
      return os.str();
    }
    case ValueType::kString: return string_value();
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) return a.int_value() == b.int_value();
    return a.AsDouble() == b.AsDouble();
  }
  return a.repr_ == b.repr_;
}

bool operator<(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) return a.int_value() < b.int_value();
    return a.AsDouble() < b.AsDouble();
  }
  return a.repr_ < b.repr_;
}

TriBool Value::SqlEquals(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return TriBool::kUnknown;
  if (a.is_numeric() && b.is_numeric()) {
    return a == b ? TriBool::kTrue : TriBool::kFalse;
  }
  if (a.type() != b.type()) return TriBool::kFalse;
  return a == b ? TriBool::kTrue : TriBool::kFalse;
}

Result<int> Value::SqlCompare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Status::InvalidArgument("cannot order NULL values");
  }
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type() != b.type()) {
    return Status::SemanticError(
        std::string("cannot compare ") + ValueTypeName(a.type()) + " with " +
        ValueTypeName(b.type()));
  }
  switch (a.type()) {
    case ValueType::kBool:
      return static_cast<int>(a.bool_value()) -
             static_cast<int>(b.bool_value());
    case ValueType::kString:
      return a.string_value().compare(b.string_value());
    default:
      return Status::SemanticError("type not ordered");
  }
}

namespace {

Result<Value> NumericBinary(const Value& a, const Value& b, char op) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    return Status::SemanticError(
        std::string("arithmetic requires numeric operands, got ") +
        ValueTypeName(a.type()) + " and " + ValueTypeName(b.type()));
  }
  if (a.is_int() && b.is_int() && op != '/') {
    int64_t x = a.int_value();
    int64_t y = b.int_value();
    switch (op) {
      case '+': return Value::Int(x + y);
      case '-': return Value::Int(x - y);
      case '*': return Value::Int(x * y);
    }
  }
  double x = a.AsDouble();
  double y = b.AsDouble();
  switch (op) {
    case '+': return Value::Double(x + y);
    case '-': return Value::Double(x - y);
    case '*': return Value::Double(x * y);
    case '/':
      if (y == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(x / y);
  }
  return Status::Internal("bad arithmetic op");
}

}  // namespace

Result<Value> Value::Add(const Value& a, const Value& b) {
  // String concatenation is permitted for '+' as a convenience (LISTAGG-style
  // aggregation in the PGQ host builds on it).
  if (a.is_string() && b.is_string()) {
    return Value::String(a.string_value() + b.string_value());
  }
  return NumericBinary(a, b, '+');
}
Result<Value> Value::Subtract(const Value& a, const Value& b) {
  return NumericBinary(a, b, '-');
}
Result<Value> Value::Multiply(const Value& a, const Value& b) {
  return NumericBinary(a, b, '*');
}
Result<Value> Value::Divide(const Value& a, const Value& b) {
  return NumericBinary(a, b, '/');
}

size_t Value::Hash() const {
  // Numeric values hash through double with a shared seed so that 1 and 1.0
  // (which compare equal) hash identically.
  constexpr size_t kNumericSeed = 0x9e3779b97f4a7c15ULL;
  switch (type()) {
    case ValueType::kNull: return 0x2545f4914f6cdd1dULL;
    case ValueType::kBool: return bool_value() ? 0x6a09e667 : 0xbb67ae85;
    case ValueType::kInt:
      return kNumericSeed ^
             std::hash<double>()(static_cast<double>(int_value()));
    case ValueType::kDouble:
      return kNumericSeed ^ std::hash<double>()(double_value());
    case ValueType::kString:
      return 0x517cc1b727220a95ULL ^ std::hash<std::string>()(string_value());
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace gpml
