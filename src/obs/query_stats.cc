#include "obs/query_stats.h"

#include <algorithm>

#include "obs/clock.h"

namespace gpml {
namespace obs {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Fnv1a(const std::string& text, uint64_t h = kFnvOffset) {
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

uint64_t HashPlanText(const std::string& explain_text) {
  return Fnv1a(explain_text);
}

size_t QueryStatsStore::KeyHash::operator()(const Key& k) const {
  // Fold the tenant into the fingerprint hash with a separator byte so
  // ("ab", "c") and ("a", "bc") cannot collide structurally.
  uint64_t h = Fnv1a(k.tenant);
  h ^= 0xff;
  h *= kFnvPrime;
  return static_cast<size_t>(Fnv1a(k.fingerprint, h));
}

QueryStatsStore::RecordOutcome QueryStatsStore::Record(
    const QueryObservation& obs) {
  RecordOutcome outcome;
  const uint64_t now_us = MonotonicMicros();
  const uint64_t latency_us = static_cast<uint64_t>(
      obs.total_ms > 0 ? obs.total_ms * 1e3 : 0.0);
  const size_t bucket = Histogram::BucketIndex(latency_us);

  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;

  Key key{obs.tenant, obs.fingerprint};
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    outcome.new_entry = true;
    if (entries_.size() >= capacity_) {
      // Evict the least-recently-updated entry.
      const Key& victim = lru_.back();
      entries_.erase(victim);
      lru_.pop_back();
      ++evictions_;
      outcome.evicted = true;
    }
    lru_.push_front(key);
    Entry entry;
    entry.stats.fingerprint = obs.fingerprint;
    entry.stats.tenant = obs.tenant;
    entry.stats.latency_buckets.assign(Histogram::kNumBounds + 1, 0);
    entry.lru_pos = lru_.begin();
    it = entries_.emplace(std::move(key), std::move(entry)).first;
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    it->second.lru_pos = lru_.begin();
  }

  QueryStatEntry& s = it->second.stats;
  const bool first_call = s.calls == 0;
  s.graph_token = obs.graph_token;  // Last writer wins (stable in practice).
  ++s.calls;
  if (obs.error) ++s.errors;
  if (obs.truncated) ++s.truncations;
  s.rows += obs.rows;
  s.seeds += obs.seeds;
  s.steps += obs.steps;
  if (obs.cache_hit) {
    ++s.cache_hits;
  } else {
    ++s.cache_misses;
  }
  if (obs.batch_engaged) ++s.batch_calls;
  s.total_ms += obs.total_ms;
  if (first_call || obs.total_ms < s.min_ms) s.min_ms = obs.total_ms;
  if (first_call || obs.total_ms > s.max_ms) s.max_ms = obs.total_ms;
  s.latency_buckets[bucket] += 1;

  // Plan ring: find the observation's plan among the remembered ones.
  PlanRecord* rec = nullptr;
  for (PlanRecord& p : s.plans) {
    if (p.plan_hash == obs.plan_hash) {
      rec = &p;
      break;
    }
  }
  // back() is the plan currently in use; arriving under any other hash —
  // brand new or a remembered older plan — is a change.
  const bool current_plan =
      !s.plans.empty() && s.plans.back().plan_hash == obs.plan_hash;
  if (!s.plans.empty() && !current_plan) {
    outcome.plan_changed = true;
    s.plan_changed = true;
    ++s.plan_changes;
  }
  if (rec == nullptr) {
    if (s.plans.size() >= kMaxPlans) {
      s.plans.erase(s.plans.begin());  // Drop the oldest remembered plan.
    }
    s.plans.push_back(PlanRecord{});
    rec = &s.plans.back();
    rec->plan_hash = obs.plan_hash;
    rec->first_seen_us = now_us;
    rec->min_ms = obs.total_ms;
    rec->max_ms = obs.total_ms;
  } else if (!current_plan) {
    // Revisited an older remembered plan: move it to the current slot.
    PlanRecord revived = *rec;
    s.plans.erase(s.plans.begin() + (rec - s.plans.data()));
    s.plans.push_back(revived);
    rec = &s.plans.back();
  }
  rec->last_seen_us = now_us;
  ++rec->calls;
  rec->total_ms += obs.total_ms;
  if (obs.total_ms < rec->min_ms) rec->min_ms = obs.total_ms;
  if (obs.total_ms > rec->max_ms) rec->max_ms = obs.total_ms;

  return outcome;
}

std::vector<QueryStatEntry> QueryStatsStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryStatEntry> out;
  out.reserve(entries_.size());
  for (const Key& key : lru_) {
    auto it = entries_.find(key);
    if (it != entries_.end()) out.push_back(it->second.stats);
  }
  return out;
}

uint64_t QueryStatsStore::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

uint64_t QueryStatsStore::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t QueryStatsStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void QueryStatsStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

QueryStatsStore& GlobalQueryStats() {
  static QueryStatsStore* store = new QueryStatsStore();
  return *store;
}

}  // namespace obs
}  // namespace gpml
