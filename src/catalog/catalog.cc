#include "catalog/catalog.h"

namespace gpml {

Status Catalog::AddTable(std::string name, Table table) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  tables_.emplace(std::move(name), std::move(table));
  return Status::OK();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return &it->second;
}

Status Catalog::AddGraph(std::string name, PropertyGraph graph) {
  if (graphs_.count(name) > 0) {
    return Status::AlreadyExists("graph already exists: " + name);
  }
  graphs_.emplace(std::move(name),
                  std::make_shared<const PropertyGraph>(std::move(graph)));
  return Status::OK();
}

Result<std::shared_ptr<const PropertyGraph>> Catalog::GetGraph(
    const std::string& name) const {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) return Status::NotFound("no graph named " + name);
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [k, v] : tables_) names.push_back(k);
  return names;
}

std::vector<std::string> Catalog::GraphNames() const {
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [k, v] : graphs_) names.push_back(k);
  return names;
}

}  // namespace gpml
