#ifndef GPML_PLANNER_PLAN_CACHE_H_
#define GPML_PLANNER_PLAN_CACHE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "analysis/diagnostic.h"
#include "ast/ast.h"
#include "eval/binding.h"
#include "eval/nfa.h"
#include "graph/property_graph.h"
#include "obs/metrics.h"
#include "planner/planner.h"

namespace gpml {
namespace planner {

/// Everything Engine::Match derives from a pattern before touching graph
/// data: the normalized pattern (§6.2), the interned variable table
/// (§4.4/§4.6/§4.7 analysis), and the statistics-driven Plan. A cache hit
/// skips normalize, analyze, termination checking, and planning; only
/// per-declaration compilation and the search itself re-run. The entry is
/// immutable and shared: the AST inside is shared_ptr-kept, so concurrent
/// engines can execute from one entry.
///
/// Motivated by "Towards Cross-Model Efficiency in SQL/PGQ" (Rotschield &
/// Peterfreund, 2025): both hosts funnel through the same Engine, so one
/// cached compilation serves SQL/PGQ GRAPH_TABLE calls and GQL session
/// statements alike.
struct CachedPlan {
  GraphPattern normalized;
  std::shared_ptr<const VarTable> vars;
  Plan plan;
  /// One compiled, graph-bound program per plan declaration (in plan
  /// order): label expressions are already resolved to symbol-id predicates
  /// and CSR partitions against the owning graph, so a cache hit skips
  /// pattern compilation and label-predicate binding too. Safe to share:
  /// matcher shards only read programs.
  std::vector<std::shared_ptr<const Program>> programs;
  /// Wall-clock cost of building this entry (normalize+analyze, planning,
  /// and per-declaration compile+bind), recorded once before publication.
  /// Cache hits replay these into the trace as `cached` spans so EXPLAIN
  /// ANALYZE can still show what the compilation originally cost, while
  /// EngineMetrics::plan_ms reports 0 for the hit itself (the execution
  /// paid nothing). See docs/observability.md.
  double analyze_ms = 0;
  double plan_ms = 0;
  double compile_ms = 0;
  /// Wall-clock cost of the static analyzer pass alone (a slice of the
  /// prepare pipeline measured separately so bench_query_api can report
  /// prepare-time analysis overhead).
  double analysis_ms = 0;
  /// Static-analyzer findings recorded at compile time (warnings and notes;
  /// errors fail Prepare and are never cached). Carried through cache hits
  /// so EXPLAIN's `warnings=` section and PreparedQuery::diagnostics() see
  /// them without re-analyzing.
  analysis::DiagnosticList diagnostics;
  /// The analyzer proved no binding can exist (an unsatisfiable mandatory
  /// site): execution skips seeding and matching entirely and publishes
  /// metrics with 0 seeds and 0 steps — the cached empty plan.
  bool always_empty = false;
  /// The workload-statistics key: Print of the normalized pattern, $names
  /// kept. Unlike the cache fingerprint it does NOT embed planning flags —
  /// toggling use_seed_index must keep one stats entry (same query shape)
  /// while producing a different plan_hash, which is exactly how
  /// QueryStatsStore detects a plan change. Computed once on the cache-miss
  /// path; hits reuse it for free.
  std::string stats_fingerprint;
  /// FNV-1a of the plan's EXPLAIN rendering (obs::HashPlanText): the stable
  /// plan identity QueryStatsStore tracks per fingerprint. Identical plans
  /// hash identically across cache hits, processes, and runs.
  uint64_t plan_hash = 0;
};

/// An immutable snapshot map of fingerprint -> CachedPlan, stored on the
/// PropertyGraph next to the GraphStats slot (same atomic-shared_ptr
/// discipline, see PropertyGraph::plan_cache). `graph_token` records which
/// graph identity the snapshot was built for; Lookup revalidates it so a
/// snapshot can never serve plans for a different graph.
struct PlanCache {
  uint64_t graph_token = 0;
  std::unordered_map<std::string, std::shared_ptr<const CachedPlan>> entries;
};

/// Snapshots are rebuilt from scratch when they would exceed this many
/// entries (epoch flush) — a crude but lock-free bound on ad-hoc query
/// churn; steady-state workloads repeat far fewer distinct patterns.
inline constexpr size_t kPlanCacheMaxEntries = 128;

/// Deterministic fingerprint of (pattern, planning mode): the pattern's
/// surface-syntax rendering — Print roundtrips with the parser, so distinct
/// patterns render distinctly — plus the planner, seed-index, and static-
/// analysis flags, which select between PlanPattern/DirectPlan outputs,
/// index-backed vs label-scan seeding, and analyzed vs raw compilation
/// (analysis may rewrite the postfilter and mark the plan always-empty, so
/// the two modes must not share entries). The graph half of the cache key
/// is the identity token carried by the cache snapshot itself.
std::string PlanFingerprint(const GraphPattern& pattern, bool use_planner,
                            bool use_seed_index = true,
                            bool use_analysis = true);

/// The cached entry of `g` for `fingerprint`, or nullptr on a miss (also
/// when the stored snapshot belongs to a different graph identity). When
/// `registry` is non-null the outcome is counted there as
/// gpml_plan_cache_hits_total / gpml_plan_cache_misses_total — the engine
/// passes the graph's registry unless metrics publication is disabled.
std::shared_ptr<const CachedPlan> LookupPlan(
    const PropertyGraph& g, const std::string& fingerprint,
    obs::MetricsRegistry* registry = nullptr);

/// Publishes `entry` under `fingerprint` by copy-on-write: loads the current
/// snapshot, copies it extended with the entry, and stores it back. Racing
/// publishers may overwrite each other's entry (last store wins); that only
/// costs a later recompute, never correctness.
void StorePlan(const PropertyGraph& g, const std::string& fingerprint,
               std::shared_ptr<const CachedPlan> entry);

}  // namespace planner
}  // namespace gpml

#endif  // GPML_PLANNER_PLAN_CACHE_H_
