#ifndef GPML_AST_LABEL_EXPR_H_
#define GPML_AST_LABEL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

namespace gpml {

struct LabelExpr;
/// Label expressions are immutable after parsing and freely shared between
/// the original and normalized/expanded pattern trees.
using LabelExprPtr = std::shared_ptr<const LabelExpr>;

/// A label expression (§4.1): conjunction `&`, disjunction `|`, negation `!`,
/// grouping, the wildcard `%` (matches any element that has at least one
/// label — hence `!%` matches exactly the label-less elements), and plain
/// label names. Evaluated against the label set of a node or edge.
struct LabelExpr {
  enum class Kind { kName, kWildcard, kNot, kAnd, kOr };

  Kind kind = Kind::kName;
  std::string name;              // kName only.
  LabelExprPtr left;             // kNot (operand), kAnd/kOr.
  LabelExprPtr right;            // kAnd/kOr.

  static LabelExprPtr Name(std::string n);
  static LabelExprPtr Wildcard();
  static LabelExprPtr Not(LabelExprPtr e);
  static LabelExprPtr And(LabelExprPtr l, LabelExprPtr r);
  static LabelExprPtr Or(LabelExprPtr l, LabelExprPtr r);

  /// `labels` must be sorted (as stored in ElementData).
  bool Matches(const std::vector<std::string>& labels) const;

  /// Appends the names an element *must* carry for this expression to match:
  /// a plain name is required, and a conjunction requires both sides'
  /// requirements. Disjunctions, negations and the wildcard contribute
  /// nothing (no single name is necessary under them). Seeding from any
  /// required name's label index is therefore sound — every match carries it.
  void CollectRequiredNames(std::vector<const std::string*>* out) const;

  /// Renders with minimal parentheses, e.g. "Account|IP", "!(A&B)".
  std::string ToString() const;

  /// Structural equality (used by parser round-trip tests).
  static bool Equal(const LabelExprPtr& a, const LabelExprPtr& b);
};

}  // namespace gpml

#endif  // GPML_AST_LABEL_EXPR_H_
