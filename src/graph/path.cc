#include "graph/path.h"

#include <unordered_set>

#include "common/strings.h"

namespace gpml {

Path Path::Reversed() const {
  Path out;
  out.nodes_.assign(nodes_.rbegin(), nodes_.rend());
  out.edges_.assign(edges_.rbegin(), edges_.rend());
  out.traversals_.reserve(traversals_.size());
  for (size_t i = traversals_.size(); i-- > 0;) {
    Traversal t = traversals_[i];
    if (t == Traversal::kForward) {
      t = Traversal::kBackward;
    } else if (t == Traversal::kBackward) {
      t = Traversal::kForward;
    }
    out.traversals_.push_back(t);
  }
  return out;
}

void Path::Concatenate(const Path& tail) {
  if (tail.IsEmpty()) return;
  if (IsEmpty()) {
    *this = tail;
    return;
  }
  for (size_t i = 0; i < tail.edges_.size(); ++i) {
    Append(tail.edges_[i], tail.traversals_[i], tail.nodes_[i + 1]);
  }
}

bool Path::IsTrail() const {
  std::unordered_set<EdgeId> seen;
  for (EdgeId e : edges_) {
    if (!seen.insert(e).second) return false;
  }
  return true;
}

bool Path::IsAcyclic() const {
  std::unordered_set<NodeId> seen;
  for (NodeId n : nodes_) {
    if (!seen.insert(n).second) return false;
  }
  return true;
}

bool Path::IsSimple() const {
  if (nodes_.size() <= 1) return true;
  std::unordered_set<NodeId> seen;
  // Interior nodes must be unique; the last node may only coincide with the
  // first (closing a cycle).
  for (size_t i = 0; i + 1 < nodes_.size(); ++i) {
    if (!seen.insert(nodes_[i]).second) return false;
  }
  NodeId last = nodes_.back();
  if (seen.count(last) > 0 && last != nodes_.front()) return false;
  return true;
}

std::string Path::ToString(const PropertyGraph& g) const {
  std::vector<std::string> parts;
  parts.reserve(nodes_.size() + edges_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    parts.push_back(g.node(nodes_[i]).name);
    if (i < edges_.size()) parts.push_back(g.edge(edges_[i]).name);
  }
  return "path(" + Join(parts, ",") + ")";
}

size_t Path::Hash() const {
  size_t h = 0x9ae16a3b2f90404fULL;
  for (NodeId n : nodes_) h = HashCombine(h, n);
  for (EdgeId e : edges_) h = HashCombine(h, 0x100000000ULL + e);
  return h;
}

}  // namespace gpml
