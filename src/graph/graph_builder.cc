#include "graph/graph_builder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace gpml {

namespace {

void NormalizeLabels(std::vector<std::string>* labels) {
  std::sort(labels->begin(), labels->end());
  labels->erase(std::unique(labels->begin(), labels->end()), labels->end());
}

ElementData MakeElementData(std::string name, std::vector<std::string> labels,
                            PropertyList properties) {
  ElementData d;
  d.name = std::move(name);
  d.labels = std::move(labels);
  NormalizeLabels(&d.labels);
  for (auto& [k, v] : properties) d.properties[k] = std::move(v);
  return d;
}

}  // namespace

NodeId GraphBuilder::AddNode(std::string name,
                             std::vector<std::string> labels,
                             PropertyList properties) {
  NodeData n;
  static_cast<ElementData&>(n) =
      MakeElementData(std::move(name), std::move(labels), std::move(properties));
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void GraphBuilder::AddDirectedEdge(std::string name, const std::string& from,
                                   const std::string& to,
                                   std::vector<std::string> labels,
                                   PropertyList properties) {
  PendingEdge pe;
  static_cast<ElementData&>(pe.data) =
      MakeElementData(std::move(name), std::move(labels), std::move(properties));
  pe.data.directed = true;
  pe.from = from;
  pe.to = to;
  edges_.push_back(std::move(pe));
}

void GraphBuilder::AddUndirectedEdge(std::string name, const std::string& a,
                                     const std::string& b,
                                     std::vector<std::string> labels,
                                     PropertyList properties) {
  PendingEdge pe;
  static_cast<ElementData&>(pe.data) =
      MakeElementData(std::move(name), std::move(labels), std::move(properties));
  pe.data.directed = false;
  pe.from = a;
  pe.to = b;
  edges_.push_back(std::move(pe));
}

Result<PropertyGraph> GraphBuilder::Build() && {
  PropertyGraph g;
  std::unordered_map<std::string, NodeId> by_name;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const std::string& name = nodes_[i].name;
    if (!name.empty() && !by_name.emplace(name, i).second) {
      return Status::AlreadyExists("duplicate node name: " + name);
    }
  }
  std::unordered_set<std::string> edge_names;
  for (PendingEdge& pe : edges_) {
    if (!pe.data.name.empty() && !edge_names.insert(pe.data.name).second) {
      return Status::AlreadyExists("duplicate edge name: " + pe.data.name);
    }
    auto from_it = by_name.find(pe.from);
    if (from_it == by_name.end()) {
      return Status::NotFound("edge " + pe.data.name +
                              " references unknown node: " + pe.from);
    }
    auto to_it = by_name.find(pe.to);
    if (to_it == by_name.end()) {
      return Status::NotFound("edge " + pe.data.name +
                              " references unknown node: " + pe.to);
    }
    pe.data.u = from_it->second;
    pe.data.v = to_it->second;
  }

  g.nodes_ = std::move(nodes_);
  g.edges_.reserve(edges_.size());
  for (PendingEdge& pe : edges_) g.edges_.push_back(std::move(pe.data));
  g.BuildIndexes();
  return g;
}

}  // namespace gpml
