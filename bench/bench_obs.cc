// Observability-overhead contract on the Figure 4 fraud workload (300
// accounts). Like bench_planner this is a plain executable with a checked
// contract, run under ctest as a regression gate:
//
//  1. Overhead (enforced only in optimized, unsanitized builds): running
//     with the full observability stack attached — EngineMetrics, a Trace,
//     a TraceSink, registry publication, slow-query capture armed — must
//     cost <= 2% wall time vs running with everything off. This is the
//     contract that lets instrumentation stay on by default
//     (docs/observability.md).
//  2. Query-stats overhead (same build gating): recording into the
//     per-fingerprint statistics store (obs/query_stats.h), with everything
//     else off, must also cost <= 2% wall time vs the bare baseline.
//  3. Functional (always enforced): the instrumented run actually produced
//     telemetry — span tree with a closed "query" root, emitted JSON lines,
//     advanced registry counters, a well-formed Prometheus rendering, a
//     slow-query capture whose EXPLAIN ANALYZE text parses back, an exact
//     per-fingerprint stats entry, and a seed-index toggle surfacing as
//     exactly one recorded plan change.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "eval/engine.h"
#include "graph/generator.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/query_stats.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "planner/explain.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GPML_BENCH_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GPML_BENCH_SANITIZED 1
#endif
#endif

namespace gpml {
namespace {

constexpr char kFraudQuery[] =
    "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
    "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
    "(y:Account WHERE y.isBlocked='yes'), "
    "ANY (x)-[:Transfer]->+(y)";

PropertyGraph MakeWorkloadGraph() {
  FraudGraphOptions options;
  options.num_accounts = 300;
  options.num_cities = 3;
  return MakeFraudGraph(options);
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Everything off: no metrics, no trace, no sink, no registry publication,
/// slow-query capture disabled. The baseline the 2% budget is against.
EngineOptions OffOptions() {
  EngineOptions options;
  options.num_threads = 1;  // Single-threaded for timing stability.
  options.publish_metrics = false;
  options.publish_query_stats = false;
  options.slow_query_ms = -1;
  return options;
}

/// The full stack attached, slow threshold high enough to never fire
/// during the timed loop (capture itself is measured separately).
EngineOptions OnOptions(EngineMetrics* metrics, obs::Trace* trace,
                        obs::TraceSink* sink, obs::QueryStatsStore* stats) {
  EngineOptions options;
  options.num_threads = 1;
  options.metrics = metrics;
  options.trace = trace;
  options.trace_sink = sink;
  options.publish_metrics = true;
  options.publish_query_stats = true;
  options.query_stats = stats;
  options.slow_query_ms = 1e9;
  return options;
}

double MeasureOnce(const PropertyGraph& g, const EngineOptions& options,
                   bool* ok, size_t* rows) {
  Engine engine(g, options);
  auto start = std::chrono::steady_clock::now();
  Result<MatchOutput> out = engine.Match(kFraudQuery);
  double ms = MillisSince(start);
  if (!out.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 out.status().ToString().c_str());
    *ok = false;
    return ms;
  }
  *rows = out->rows.size();
  return ms;
}

bool OverheadGateActive() {
#ifdef GPML_BENCH_SANITIZED
  return false;
#elif !defined(NDEBUG)
  return false;
#else
  return true;
#endif
}

int RunBench() {
  bool ok = true;
  bench::JsonReport report("obs");
  PropertyGraph g = MakeWorkloadGraph();

  EngineMetrics metrics;
  obs::Trace trace;
  obs::StringTraceSink sink;
  obs::QueryStatsStore full_store;
  EngineOptions off = OffOptions();
  EngineOptions on = OnOptions(&metrics, &trace, &sink, &full_store);

  // Warm the plan cache, stats, and label indexes so both sides measure
  // pure matching work.
  size_t rows_off = 0, rows_on = 0;
  MeasureOnce(g, off, &ok, &rows_off);
  MeasureOnce(g, on, &ok, &rows_on);
  if (!ok) return 1;

  // Interleaved min-of-N, alternating which configuration goes first each
  // repetition: pairing cancels slow thermal/clock drift, alternation
  // cancels any systematic first-vs-second bias within a pair.
  constexpr int kRepetitions = 9;
  auto measure_pair = [&](double* best_off, double* best_on) {
    for (int rep = 0; rep < kRepetitions && ok; ++rep) {
      double ms_off, ms_on;
      if (rep % 2 == 0) {
        ms_off = MeasureOnce(g, off, &ok, &rows_off);
        ms_on = MeasureOnce(g, on, &ok, &rows_on);
      } else {
        ms_on = MeasureOnce(g, on, &ok, &rows_on);
        ms_off = MeasureOnce(g, off, &ok, &rows_off);
      }
      *best_off = std::min(*best_off, ms_off);
      *best_on = std::min(*best_on, ms_on);
    }
  };
  auto overhead = [](double best_off, double best_on) {
    return best_off > 0 ? (best_on - best_off) / best_off * 100.0 : 0;
  };
  double best_off = 1e300, best_on = 1e300;
  measure_pair(&best_off, &best_on);
  if (OverheadGateActive() && ok && overhead(best_off, best_on) > 2.0) {
    // One retry before declaring failure: the first round may have run on
    // a machine still hot or loaded from an earlier bench gate. Minima
    // accumulate across rounds, so a genuine regression still fails.
    std::printf("overhead %.2f%% on first round; re-measuring\n",
                overhead(best_off, best_on));
    measure_pair(&best_off, &best_on);
  }
  if (!ok) return 1;

  double overhead_pct = overhead(best_off, best_on);
  std::printf(
      "observability overhead: off %.3fms, on %.3fms (%+.2f%%), rows %zu\n",
      best_off, best_on, overhead_pct, rows_on);
  report.Add("fraud300:obs=off", best_off, 0, 0, rows_off);
  report.Add("fraud300:obs=on", best_on, metrics.seeded_nodes,
             metrics.matcher_steps, rows_on,
             {{"overhead_pct", overhead_pct}});

  if (rows_off != rows_on) {
    std::fprintf(stderr, "FAIL: instrumentation changed the result (%zu vs %zu rows)\n",
                 rows_off, rows_on);
    ok = false;
  }
  if (!OverheadGateActive()) {
    std::printf(
        "overhead gate: SKIPPED (sanitizer or unoptimized build distorts "
        "timings)\n");
  } else if (overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% > 2%% "
                 "(off %.3fms, on %.3fms)\n",
                 overhead_pct, best_off, best_on);
    ok = false;
  }

  // --- query-stats recording alone, against the same 2% budget -----------
  // Everything else stays off so the gate isolates what the per-fingerprint
  // store adds to every execution (docs/observability.md).
  obs::QueryStatsStore stats_store;
  EngineOptions stats = OffOptions();
  stats.publish_query_stats = true;
  stats.query_stats = &stats_store;
  size_t rows_stats = 0;
  size_t stats_calls = 0;
  MeasureOnce(g, stats, &ok, &rows_stats);  // Warm, like the main gate.
  ++stats_calls;
  if (!ok) return 1;
  auto measure_stats_pair = [&](double* best_base, double* best_stats) {
    for (int rep = 0; rep < kRepetitions && ok; ++rep) {
      double ms_base, ms_stats;
      if (rep % 2 == 0) {
        ms_base = MeasureOnce(g, off, &ok, &rows_off);
        ms_stats = MeasureOnce(g, stats, &ok, &rows_stats);
      } else {
        ms_stats = MeasureOnce(g, stats, &ok, &rows_stats);
        ms_base = MeasureOnce(g, off, &ok, &rows_off);
      }
      ++stats_calls;
      *best_base = std::min(*best_base, ms_base);
      *best_stats = std::min(*best_stats, ms_stats);
    }
  };
  double best_base = 1e300, best_stats = 1e300;
  measure_stats_pair(&best_base, &best_stats);
  if (OverheadGateActive() && ok && overhead(best_base, best_stats) > 2.0) {
    std::printf("query-stats overhead %.2f%% on first round; re-measuring\n",
                overhead(best_base, best_stats));
    measure_stats_pair(&best_base, &best_stats);
  }
  if (!ok) return 1;
  double stats_overhead_pct = overhead(best_base, best_stats);
  std::printf(
      "query-stats overhead: off %.3fms, stats %.3fms (%+.2f%%)\n",
      best_base, best_stats, stats_overhead_pct);
  report.Add("fraud300:stats=on", best_stats, 0, 0, rows_stats,
             {{"overhead_pct", stats_overhead_pct}});
  if (!OverheadGateActive()) {
    std::printf("query-stats gate: SKIPPED (sanitizer or unoptimized build "
                "distorts timings)\n");
  } else if (stats_overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "FAIL: query-stats overhead %.2f%% > 2%% "
                 "(off %.3fms, stats %.3fms)\n",
                 stats_overhead_pct, best_base, best_stats);
    ok = false;
  }

  // The store must have seen every instrumented execution, exactly.
  std::vector<obs::QueryStatEntry> recorded = stats_store.Snapshot();
  if (recorded.size() != 1 || recorded[0].calls != stats_calls ||
      recorded[0].rows != stats_calls * rows_stats ||
      recorded[0].steps == 0) {
    std::fprintf(stderr,
                 "FAIL: query-stats entry does not match the workload "
                 "(%zu entries; want calls %zu rows %zu)\n",
                 recorded.size(), stats_calls, stats_calls * rows_stats);
    ok = false;
  }

  // Plan-change regression detection: flipping the seed index between runs
  // of the same fingerprint must surface as exactly one plan change.
  obs::QueryStatsStore change_store;
  EngineOptions indexed = OffOptions();
  indexed.publish_query_stats = true;
  indexed.query_stats = &change_store;
  EngineOptions scanned = indexed;
  scanned.use_seed_index = false;
  size_t rows_toggle = 0;
  MeasureOnce(g, indexed, &ok, &rows_toggle);
  MeasureOnce(g, scanned, &ok, &rows_toggle);
  MeasureOnce(g, scanned, &ok, &rows_toggle);
  std::vector<obs::QueryStatEntry> toggled = change_store.Snapshot();
  if (toggled.size() != 1 || !toggled[0].plan_changed ||
      toggled[0].plan_changes != 1 || toggled[0].plans.size() != 2) {
    std::fprintf(stderr,
                 "FAIL: seed-index toggle did not record exactly one plan "
                 "change (%zu entries)\n",
                 toggled.size());
    ok = false;
  }

  // --- functional contract: the telemetry is actually there ---------------
  const obs::Span* root = trace.Find("query");
  if (trace.empty() || root == nullptr || root->duration_us < 0) {
    std::fprintf(stderr, "FAIL: no closed 'query' span in the trace\n");
    ok = false;
  }
  if (sink.traces_emitted() == 0 ||
      sink.TakeOutput().find("\"span\":\"query\"") == std::string::npos) {
    std::fprintf(stderr, "FAIL: trace sink received no query span\n");
    ok = false;
  }
  obs::MetricsSnapshot snapshot = g.metrics_registry()->Snapshot();
  if (snapshot.CounterValue("gpml_executions_total") == 0 ||
      snapshot.CounterValue("gpml_rows_total") == 0) {
    std::fprintf(stderr, "FAIL: registry counters did not advance\n");
    ok = false;
  }
  std::string prom = obs::RenderPrometheus(snapshot);
  if (prom.find("# TYPE gpml_executions_total counter") == std::string::npos ||
      prom.find("gpml_query_duration_us_bucket") == std::string::npos) {
    std::fprintf(stderr, "FAIL: Prometheus rendering incomplete:\n%s\n",
                 prom.c_str());
    ok = false;
  }

  // Slow-query capture: threshold 0 sends this run into a private log; its
  // EXPLAIN ANALYZE text must parse back (the ms= roundtrip contract).
  obs::SlowQueryLog slow_log(4);
  EngineOptions slow = OnOptions(&metrics, &trace, &sink, &full_store);
  slow.slow_query_ms = 0;
  slow.slow_log = &slow_log;
  size_t rows_slow = 0;
  MeasureOnce(g, slow, &ok, &rows_slow);
  std::vector<obs::SlowQueryRecord> captured = slow_log.Snapshot();
  if (captured.empty()) {
    std::fprintf(stderr, "FAIL: slow-query capture did not fire\n");
    ok = false;
  } else {
    const obs::SlowQueryRecord& rec = captured.back();
    Result<planner::ExplainedPlan> parsed = planner::ParseExplain(rec.explain);
    if (rec.fingerprint.empty() || rec.trace_json.empty() || !parsed.ok() ||
        !parsed->analyzed || parsed->total_ms < 0) {
      std::fprintf(stderr, "FAIL: slow-query record incomplete:\n%s\n",
                   rec.explain.c_str());
      ok = false;
    }
  }

  report.Write();
  std::printf(ok ? "observability contract holds: <= 2%% overhead, live "
                   "telemetry on all surfaces\n"
                 : "observability contract VIOLATED (see stderr)\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gpml

int main() { return gpml::RunBench(); }
