#ifndef GPML_BASELINE_CRPQ_H_
#define GPML_BASELINE_CRPQ_H_

#include <map>
#include <string>
#include <vector>

#include "baseline/regex.h"
#include "catalog/table.h"
#include "common/result.h"
#include "graph/property_graph.h"

namespace gpml {
namespace baseline {

/// A conjunctive regular path query (§3, §8): a set of atoms x —regex→ y
/// over node variables, with optional per-variable label and property-equals
/// filters. This is the academic baseline GPML extends — it returns node
/// bindings only (endpoint semantics, like SPARQL in §3), no paths, no group
/// variables, no restrictors/selectors.
///
/// The Figure 4 query as a CRPQ:
///   atoms:  x -isLocatedIn-> g,  y -isLocatedIn-> g,  x -Transfer+-> y
///   filters: x:Account{isBlocked=no}, y:Account{isBlocked=yes},
///            g{name=Ankh-Morpork}
struct CrpqAtom {
  std::string from_var;
  std::string regex;
  std::string to_var;
};

struct CrpqFilter {
  std::string var;
  std::string label;     // Empty = unconstrained.
  std::string property;  // Optional property equality...
  Value value;           // ...against this value.
};

struct CrpqQuery {
  std::vector<CrpqAtom> atoms;
  std::vector<CrpqFilter> filters;
  std::vector<std::string> output_vars;
};

/// Evaluates by computing each atom's endpoint relation via product-
/// automaton BFS and hash-joining the relations — the standard CRPQ
/// evaluation strategy. Output columns are the node names of output_vars.
Result<Table> EvalCrpq(const PropertyGraph& g, const CrpqQuery& query);

}  // namespace baseline
}  // namespace gpml

#endif  // GPML_BASELINE_CRPQ_H_
