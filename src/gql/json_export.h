#ifndef GPML_GQL_JSON_EXPORT_H_
#define GPML_GQL_JSON_EXPORT_H_

#include <string>

#include "eval/engine.h"
#include "graph/property_graph.h"

namespace gpml {

/// JSON export of match results — the §7.1 Language Opportunity
/// ("Exporting a graph element or path binding to JSON", also floated in
/// §6.6 for raw multi-path bindings). Also the row encoding of the network
/// wire protocol (src/server/, docs/server.md), which is why the escaping
/// below is hardened: every exported string is valid UTF-8 and every
/// exported document parses under a strict JSON parser.
///
/// Shape:
/// {
///   "rows": [
///     {
///       "a":    {"kind":"node","name":"a4","labels":["Account"],
///                "properties":{"owner":"Jay","isBlocked":"yes"}},
///       "b":    [ {...}, {...} ],          // group variable: array
///       "p":    {"kind":"path","length":2,
///                "elements":["a6","t5","a3","t2","a2"]},
///       "miss": null                       // unbound conditional variable
///     }, ...
///   ]
/// }
/// Anonymous variables are omitted. Deterministic key order (variable id).
std::string ExportJson(const MatchOutput& output, const PropertyGraph& g);

/// One result row as a JSON object — exactly the element ExportJson emits
/// into its "rows" array. `output` supplies the row's interpretation
/// context (variable table, parameter bindings); its own `rows` vector is
/// ignored, so a streaming Cursor's context() works directly. The server
/// serves these objects verbatim over the wire, which is what makes
/// remote rows byte-identical to an in-process export.
std::string RowToJson(const MatchOutput& output, const ResultRow& row,
                      const PropertyGraph& g);

/// One element as a JSON object (exposed for element-level export).
std::string ElementToJson(const PropertyGraph& g, const ElementRef& ref);

/// Escapes a string for inclusion in JSON output. Hardened for wire use:
///  * the JSON two-character escapes (\" \\ \b \f \n \r \t) are used where
///    they exist; every other control character below 0x20 becomes \u00XX,
///  * invalid UTF-8 (stray continuation bytes, overlong encodings, CESU
///    surrogate encodings, code points above U+10FFFF, truncated
///    sequences) is replaced byte-for-byte with U+FFFD, exactly as
///    SanitizeUtf8 does, so the output is always valid UTF-8 and the
///    escaped text always parses back (json_export_test round-trips every
///    1- and 2-byte sequence exhaustively).
/// Valid UTF-8 above 0x7F is passed through verbatim (never \u-escaped).
std::string JsonEscape(const std::string& s);

/// True when `s` is well-formed UTF-8 (RFC 3629: no overlongs, no
/// surrogate code points, nothing above U+10FFFF).
bool IsValidUtf8(const std::string& s);

/// Returns `s` with every byte that is not part of a well-formed UTF-8
/// sequence replaced by U+FFFD (one replacement per invalid byte).
/// Identity on valid UTF-8; idempotent.
std::string SanitizeUtf8(const std::string& s);

}  // namespace gpml

#endif  // GPML_GQL_JSON_EXPORT_H_
