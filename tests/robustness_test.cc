// Hardening sweeps: degenerate graphs, degenerate patterns, deep nesting,
// parser resilience on hostile inputs, and engine behaviour at the edges
// of the spec that the paper's prose does not exercise.

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/sample_graph.h"
#include "parser/parser.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::CountRows;
using testing_util::MatchStatusOf;
using testing_util::Rows;

// --- degenerate graphs ------------------------------------------------------

TEST(RobustnessTest, SingleNodeNoEdges) {
  GraphBuilder b;
  b.AddNode("only", {"N"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  EXPECT_EQ(CountRows(g, "MATCH (x)"), 1u);
  EXPECT_EQ(CountRows(g, "MATCH (x)-[e]-(y)"), 0u);
  EXPECT_EQ(CountRows(g, "MATCH TRAIL (x)-[e]->*(y)"), 1u);  // Zero-length.
}

TEST(RobustnessTest, OnlySelfLoops) {
  GraphBuilder b;
  b.AddNode("s", {"N"});
  b.AddDirectedEdge("d", "s", "s", {"T"});
  b.AddUndirectedEdge("u", "s", "s", {"T"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  // TRAIL from s: zero-length, d alone, u alone, d+u, u+d — each edge used
  // at most once in every enumeration.
  Engine engine(g);
  Result<MatchOutput> out = engine.Match("MATCH TRAIL p = (x)-[e]-*(x)");
  ASSERT_TRUE(out.ok()) << out.status();
  for (const ResultRow& row : out->rows) {
    EXPECT_TRUE(row.bindings[0]->path.IsTrail());
  }
  EXPECT_EQ(out->rows.size(), 5u);
}

TEST(RobustnessTest, ParallelEdgesUnderQuantifier) {
  GraphBuilder b;
  b.AddNode("u", {"N"});
  b.AddNode("v", {"N"});
  for (int i = 0; i < 3; ++i) {
    b.AddDirectedEdge("e" + std::to_string(i), "u", "v", {"T"});
  }
  b.AddDirectedEdge("back", "v", "u", {"T"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  // 3-walks: from u (u->v->u->v): 3*1*3 = 9; from v (v->u->v->u): 1*3*1 =
  // 3. Parallel edges are distinct elements, so all 12 bindings differ.
  EXPECT_EQ(CountRows(g, "MATCH (x)-[:T]->{3}(y)"), 12u);
}

// --- degenerate patterns ----------------------------------------------------

TEST(RobustnessTest, EmptyNodePatternAlone) {
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(CountRows(g, "MATCH ()"), 14u);
}

TEST(RobustnessTest, ZeroQuantifierOnlyJoinsEndpoints) {
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(CountRows(g, "MATCH (a)[->(b)]{0,0}(c)"), 14u);
}

TEST(RobustnessTest, DeeplyNestedQuantifiers) {
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(MatchStatusOf(
                g, "MATCH (a)[[[[()-[:Transfer]->()]{1,2}]{1,2}]{1,2}]{1,2}"
                   "(b)"),
            Status::OK());
}

TEST(RobustnessTest, DeeplyNestedUnions) {
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(MatchStatusOf(g,
                          "MATCH (x)[[->(a:City) | ->(a:Country)] | "
                          "[->(a:Phone) | ->(a:IP)]]"),
            Status::OK());
}

TEST(RobustnessTest, LongConcatenation) {
  PropertyGraph g = BuildPaperGraph();
  std::string q = "MATCH (n0)";
  for (int i = 1; i <= 12; ++i) {
    q += "-[:Transfer]->(n" + std::to_string(i) + ")";
  }
  EXPECT_EQ(MatchStatusOf(g, q), Status::OK());
}

TEST(RobustnessTest, WhereOnEveryElement) {
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(
      CountRows(g,
                "MATCH (a WHERE a.owner='Scott')"
                "-[e:Transfer WHERE e.amount>1M]->"
                "(b WHERE b.owner='Mike')"
                "-[f:Transfer WHERE f.amount>9M]->"
                "(c WHERE c.owner='Aretha')"),
      1u);
}

// --- parser resilience -------------------------------------------------------

class HostileInputTest : public ::testing::TestWithParam<const char*> {};

TEST_P(HostileInputTest, NeverCrashesOnlyErrors) {
  // Any outcome is fine except a crash; errors must be Status-carried.
  Result<GraphPattern> r = ParseGraphPattern(GetParam());
  if (!r.ok()) {
    EXPECT_FALSE(r.status().message().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Garbage, HostileInputTest,
    ::testing::Values(
        "", "M", "MATCH", "MATCH MATCH", "MATCH ( ( ( (",
        "MATCH )", "MATCH (x))", "MATCH (x WHERE)", "MATCH (x:)",
        "MATCH (x:WHERE)", "MATCH -[", "MATCH -[]", "MATCH -[]-",
        "MATCH <-<-<-", "MATCH (a)-[e]>(b)", "MATCH (a){2,3}",
        "MATCH (a)->{,3}(b)", "MATCH (a)->{}(b)", "MATCH (a)->{3(b)",
        "MATCH (a) WHERE", "MATCH (a) WHERE (", "MATCH (a) WHERE 1 +",
        "MATCH (a) WHERE COUNT(", "MATCH (a) WHERE SAME()",
        "MATCH (a) RETURN", "MATCH (a) | ", "MATCH | (a)",
        "MATCH (a) |+| ", "MATCH ANY", "MATCH SHORTEST (a)",
        "MATCH ALL (a)", "MATCH TRAIL", "MATCH p = ", "MATCH p == (a)",
        "MATCH 'str'", "MATCH 5M", "MATCH (a WHERE 'unterminated)",
        "MATCH (a)<~>(b)", "MATCH ~~(a)", "MATCH (a)-[e:%%]->(b)"));

TEST(RobustnessTest, VeryLongIdentifiers) {
  std::string long_name(3000, 'x');
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(MatchStatusOf(g, "MATCH (" + long_name + ":Account)"),
            Status::OK());
}

TEST(RobustnessTest, UnicodeInStringLiterals) {
  PropertyGraph g = BuildPaperGraph();
  // UTF-8 bytes flow through string literals untouched.
  EXPECT_EQ(CountRows(g, "MATCH (x WHERE x.owner='Ünïcödé')"), 0u);
}

// --- spec edge cases ----------------------------------------------------------

TEST(RobustnessTest, ForwardReferenceInInlineWhereIsUnknown) {
  PropertyGraph g = BuildPaperGraph();
  // y is not yet bound when the edge predicate runs: comparison is UNKNOWN,
  // so nothing matches — not an error.
  EXPECT_EQ(CountRows(g, "MATCH (x)-[e:Transfer WHERE y.owner='Jay']->(y)"),
            0u);
}

TEST(RobustnessTest, PropertyAccessOnEdgeVarNamedLikeKeyword) {
  PropertyGraph g = BuildPaperGraph();
  // Non-reserved keywords: a variable may be called 'match' or 'trail'.
  EXPECT_EQ(CountRows(g, "MATCH (match:City)"), 1u);
  EXPECT_EQ(CountRows(g, "MATCH (trail:Account WHERE trail.owner='Jay')"),
            1u);
}

TEST(RobustnessTest, CaseSensitiveLabelsAndProperties) {
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(CountRows(g, "MATCH (x:account)"), 0u);
  EXPECT_EQ(CountRows(g, "MATCH (x:Account WHERE x.Owner='Jay')"), 0u);
}

TEST(RobustnessTest, SelfJoinAcrossDeclsOnEveryVariable) {
  PropertyGraph g = BuildPaperGraph();
  // Identical decls joined on all three variables: same count as one decl.
  EXPECT_EQ(CountRows(g, "MATCH (x)-[e:Transfer]->(y), (x)-[e]->(y)"),
            CountRows(g, "MATCH (x)-[e:Transfer]->(y)"));
}

TEST(RobustnessTest, NumericPropertyComparisonAcrossIntDouble) {
  GraphBuilder b;
  b.AddNode("n1", {"N"}, {{"w", Value::Double(2.5)}});
  b.AddNode("n2", {"N"}, {{"w", Value::Int(3)}});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  EXPECT_EQ(Rows(g, "MATCH (x:N WHERE x.w > 2.4)", "x").size(), 2u);
  EXPECT_EQ(Rows(g, "MATCH (x:N WHERE x.w = 3)", "x"),
            (std::vector<std::string>{"n2"}));
}

}  // namespace
}  // namespace gpml
