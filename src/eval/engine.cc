#include "eval/engine.h"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "ast/print.h"
#include "common/source.h"
#include "eval/nfa.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "planner/explain.h"
#include "planner/stats.h"
#include "semantics/normalize.h"
#include "semantics/termination.h"

namespace gpml {

std::optional<ElementRef> RowScope::LookupSingleton(int var) const {
  for (size_t i = row_.bindings.size(); i-- > 0;) {
    const ElementRef* el = row_.bindings[i]->LastOf(var);
    if (el != nullptr) return *el;
  }
  return std::nullopt;
}

std::vector<ElementRef> RowScope::CollectGroup(int var) const {
  std::vector<ElementRef> out;
  for (const auto& pb : row_.bindings) {
    std::vector<ElementRef> part = pb->ElementsOf(var);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

const Path* RowScope::LookupPath(int var) const {
  for (size_t i = 0; i < row_.bindings.size(); ++i) {
    if (i < output_.path_vars.size() && output_.path_vars[i] == var) {
      return &row_.bindings[i]->path;
    }
  }
  return nullptr;
}

namespace {

/// Joins the accumulated rows with the next declaration's bindings on the
/// given join variables (hash join; cross product when none). Exceeding
/// `max_rows` is an error under BudgetPolicy::kError; with `truncate` the
/// rows joined so far are returned and `*truncated` is set.
Result<std::vector<ResultRow>> JoinDecl(
    std::vector<ResultRow> rows,
    const std::vector<std::shared_ptr<const PathBinding>>& bindings,
    const std::vector<int>& join_vars, size_t max_rows, bool truncate,
    bool* truncated) {
  auto key_of_binding =
      [&](const PathBinding& pb) -> std::optional<std::vector<ElementRef>> {
    std::vector<ElementRef> key;
    key.reserve(join_vars.size());
    for (int v : join_vars) {
      const ElementRef* el = pb.LastOf(v);
      if (el == nullptr) return std::nullopt;
      key.push_back(*el);
    }
    return key;
  };
  auto hash_key = [](const std::vector<ElementRef>& key) {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const ElementRef& r : key) h = HashCombine(h, ElementRefHash()(r));
    return h;
  };

  // Index the new declaration's bindings by join key.
  std::unordered_map<size_t, std::vector<size_t>> index;
  std::vector<std::optional<std::vector<ElementRef>>> keys(bindings.size());
  for (size_t i = 0; i < bindings.size(); ++i) {
    keys[i] = key_of_binding(*bindings[i]);
    if (keys[i].has_value()) index[hash_key(*keys[i])].push_back(i);
  }

  std::vector<ResultRow> out;
  bool stop = false;
  for (ResultRow& row : rows) {
    if (stop) break;
    std::optional<std::vector<ElementRef>> row_key;
    if (!join_vars.empty()) {
      std::vector<ElementRef> key;
      key.reserve(join_vars.size());
      bool ok = true;
      for (int v : join_vars) {
        const ElementRef* el = nullptr;
        for (size_t i = row.bindings.size(); i-- > 0 && el == nullptr;) {
          el = row.bindings[i]->LastOf(v);
        }
        if (el == nullptr) {
          ok = false;
          break;
        }
        key.push_back(*el);
      }
      if (!ok) continue;
      row_key = std::move(key);
    }

    auto extend_with = [&](size_t i) -> Status {
      ResultRow nr = row;
      nr.bindings.push_back(bindings[i]);
      out.push_back(std::move(nr));
      if (out.size() > max_rows) {
        if (truncate) {
          out.pop_back();  // Keep exactly max_rows rows.
          *truncated = true;
          stop = true;
          return Status::OK();
        }
        return Status::ResourceExhausted(
            "joined result exceeded max_rows; refine the pattern or raise "
            "EngineOptions::max_rows");
      }
      return Status::OK();
    };

    if (!row_key.has_value()) {
      for (size_t i = 0; i < bindings.size() && !stop; ++i) {
        GPML_RETURN_IF_ERROR(extend_with(i));
      }
    } else {
      auto it = index.find(hash_key(*row_key));
      if (it == index.end()) continue;
      for (size_t i : it->second) {
        if (stop) break;
        if (*keys[i] == *row_key) {
          GPML_RETURN_IF_ERROR(extend_with(i));
        }
      }
    }
  }
  return out;
}

/// Match-mode admission of one joined row (§7.1 Language Opportunity):
/// DIFFERENT EDGES requires all matched edges across the whole graph
/// pattern to be pairwise distinct, DIFFERENT NODES likewise for nodes.
/// Distinctness is over logical bindings: all occurrences of one named
/// singleton variable are a single binding (equi-joins assert equality,
/// they must not self-collide), while group-variable iterations and
/// anonymous positions each count separately — so a walk reusing an edge
/// across quantifier iterations is rejected under DIFFERENT EDGES.
bool ModeAdmitsRow(const MatchOutput& ctx, const ResultRow& row) {
  if (ctx.normalized.mode == MatchMode::kRepeatableElements) return true;
  bool edges_only = ctx.normalized.mode == MatchMode::kDifferentEdges;
  std::unordered_set<uint32_t> seen;
  std::unordered_set<uint64_t> singleton_bindings;
  for (const auto& pb : row.bindings) {
    for (const ElementaryBinding& b : pb->reduced) {
      if (b.element.is_edge() != edges_only) continue;
      const VarInfo& vi = ctx.vars->info(b.var);
      if (!vi.group && !vi.anonymous) {
        uint64_t key =
            (static_cast<uint64_t>(b.var) << 32) | b.element.id;
        if (!singleton_bindings.insert(key).second) continue;
      }
      if (!seen.insert(b.element.id).second) return false;
    }
  }
  return true;
}

/// The shared per-row tail of every execution path: match-mode filter, then
/// the final WHERE postfilter of §5.2. Batch materialization and both
/// cursor modes run every row through this in the same order, which is what
/// keeps streamed rows byte-identical to Engine::Match.
Result<bool> RowSurvives(const MatchOutput& ctx, const PropertyGraph& g,
                         const ResultRow& row) {
  if (!ModeAdmitsRow(ctx, row)) return false;
  if (ctx.normalized.where != nullptr) {
    RowScope scope(ctx, row);
    GPML_ASSIGN_OR_RETURN(
        TriBool ok,
        EvalPredicate(*ctx.normalized.where, g, *ctx.vars, scope));
    if (ok != TriBool::kTrue) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Streaming eligibility: fixed-length patterns
// ---------------------------------------------------------------------------

std::optional<uint64_t> FixedPatternLength(const PathPattern& p);

/// The edge count every match of `e` must have, nullopt when it varies.
std::optional<uint64_t> FixedElementLength(const PathElement& e) {
  switch (e.kind) {
    case PathElement::Kind::kNode:
      return 0;
    case PathElement::Kind::kEdge:
      return 1;
    case PathElement::Kind::kParen:
      return FixedPatternLength(*e.sub);
    case PathElement::Kind::kQuantified: {
      if (!e.max.has_value() || *e.max != e.min) return std::nullopt;
      std::optional<uint64_t> sub = FixedPatternLength(*e.sub);
      if (!sub.has_value()) return std::nullopt;
      return e.min * *sub;
    }
    case PathElement::Kind::kOptional: {
      std::optional<uint64_t> sub = FixedPatternLength(*e.sub);
      if (sub.has_value() && *sub == 0) return 0;
      return std::nullopt;  // 0 or |sub| edges: varies.
    }
  }
  return std::nullopt;
}

/// The edge count every match of `p` must have, nullopt when it varies.
/// Matches of a fixed-length pattern all sort equal under the merge's
/// by-path-length order, so chunked seed-order generation reproduces the
/// full run's binding order exactly — the streaming cursor's eligibility
/// test (docs/api.md).
std::optional<uint64_t> FixedPatternLength(const PathPattern& p) {
  switch (p.kind) {
    case PathPattern::Kind::kConcat: {
      uint64_t total = 0;
      for (const PathElement& e : p.elements) {
        std::optional<uint64_t> len = FixedElementLength(e);
        if (!len.has_value()) return std::nullopt;
        total += *len;
      }
      return total;
    }
    case PathPattern::Kind::kUnion:
    case PathPattern::Kind::kAlternation: {
      std::optional<uint64_t> common;
      for (const PathPatternPtr& alt : p.alternatives) {
        std::optional<uint64_t> len = FixedPatternLength(*alt);
        if (!len.has_value()) return std::nullopt;
        if (common.has_value() && *common != *len) return std::nullopt;
        common = len;
      }
      return common.has_value() ? common : std::optional<uint64_t>(0);
    }
  }
  return std::nullopt;
}

/// Resolves the index-seeding value of an anchor estimate: the planned
/// literal, or the bind-time value of the $parameter the equality compares
/// against. nullptr when the parameter is unbound or NULL (the engine then
/// falls back to label-scan seeding, which is always result-identical).
const Value* ResolveIndexValue(const planner::SeedEstimate& anchor,
                               const Params* params) {
  if (anchor.index_param.empty()) return &anchor.index_value;
  if (params == nullptr) return nullptr;
  auto it = params->find(anchor.index_param);
  if (it == params->end() || it->second.is_null()) return nullptr;
  return &it->second;
}

/// First-row chunk of the streaming cursor; chunks grow geometrically so a
/// full drain pays O(log seeds) chunk overheads while LIMIT 1 touches only
/// a handful of seeds.
constexpr size_t kFirstChunkSeeds = 8;
constexpr size_t kMaxChunkSeeds = 4096;

// ---------------------------------------------------------------------------
// Observability helpers (docs/observability.md)
// ---------------------------------------------------------------------------

uint64_t MsToUs(double ms) { return static_cast<uint64_t>(ms * 1000.0); }

// Stage-histogram series of the graph registry; the base metric is shared,
// the label selects the pipeline stage (obs/prometheus.h splits them back).
constexpr char kStagePlan[] = "gpml_stage_duration_us{stage=\"plan\"}";
constexpr char kStageSeed[] = "gpml_stage_duration_us{stage=\"seed\"}";
constexpr char kStageMatch[] = "gpml_stage_duration_us{stage=\"match\"}";
constexpr char kStageJoin[] = "gpml_stage_duration_us{stage=\"join\"}";
constexpr char kStageFilter[] = "gpml_stage_duration_us{stage=\"filter\"}";

/// Captures one slow execution into the configured (or global) log.
void CaptureSlowQuery(const EngineOptions& options, const PropertyGraph& g,
                      const planner::CachedPlan& prepared,
                      const planner::ExplainExec& exec,
                      const std::vector<planner::DeclActual>* actuals,
                      const obs::Trace* trace, double total_ms,
                      size_t rows) {
  obs::SlowQueryRecord rec;
  rec.graph_token = g.identity_token();
  // Parameterized fingerprint: $names render as themselves, so the capture
  // never leaks bound values (matches the plan cache's keying).
  rec.fingerprint = Print(prepared.normalized);
  rec.total_ms = total_ms;
  rec.rows = rows;
  rec.explain = planner::ExplainPlan(prepared.plan, *prepared.vars,
                                     /*stats=*/nullptr, &exec, actuals,
                                     &prepared.diagnostics);
  if (trace != nullptr) rec.trace_json = trace->ToJsonLines();
  rec.tenant = options.tenant;
  rec.trace_id = options.trace_id;
  obs::SlowQueryLog& log = options.slow_log != nullptr
                               ? *options.slow_log
                               : obs::GlobalSlowQueryLog();
  log.Add(std::move(rec));
}

/// Folds one completed execution — success, error, or truncation — into
/// the query-stats store (EngineOptions::query_stats, defaulting to the
/// process-wide store) and publishes the gpml_querystats_* /
/// gpml_plan_changes_total counters into the graph's registry. One short
/// mutexed update per completion; the matcher's inner loop never sees it.
void RecordQueryStats(const EngineOptions& options, const PropertyGraph& g,
                      const planner::CachedPlan& prepared, bool cache_hit,
                      double total_ms, uint64_t rows, uint64_t seeds,
                      uint64_t steps, bool error, bool truncated,
                      bool batch_engaged) {
  if (!options.publish_query_stats) return;
  obs::QueryObservation o;
  // Stats key: the parameterized pattern text (same discipline as the
  // slow-query fingerprint — bound values never leak). The cached copy
  // avoids re-rendering per execution; plan-cache-off runs compute it
  // fresh in PreparePlan either way.
  o.fingerprint = prepared.stats_fingerprint;
  o.graph_token = g.identity_token();
  o.tenant = options.tenant;
  o.plan_hash = prepared.plan_hash;
  o.total_ms = total_ms;
  o.rows = rows;
  o.seeds = seeds;
  o.steps = steps;
  o.error = error;
  o.truncated = truncated;
  o.cache_hit = cache_hit;
  o.batch_engaged = batch_engaged;
  obs::QueryStatsStore& store = options.query_stats != nullptr
                                    ? *options.query_stats
                                    : obs::GlobalQueryStats();
  obs::QueryStatsStore::RecordOutcome outcome = store.Record(o);
  if (options.publish_metrics) {
    std::shared_ptr<obs::MetricsRegistry> registry = g.metrics_registry();
    registry->GetCounter("gpml_querystats_observations_total")->Increment();
    if (outcome.evicted) {
      registry->GetCounter("gpml_querystats_evictions_total")->Increment();
    }
    if (outcome.plan_changed) {
      registry->GetCounter("gpml_plan_changes_total")->Increment();
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine: prepare
// ---------------------------------------------------------------------------

Result<Engine::Analyzed> Engine::AnalyzePattern(
    const GraphPattern& pattern) const {
  Analyzed p;
  GPML_ASSIGN_OR_RETURN(p.normalized, Normalize(pattern));
  GPML_ASSIGN_OR_RETURN(p.analysis, Analyze(p.normalized));
  GPML_RETURN_IF_ERROR(CheckTermination(p.normalized, p.analysis));
  p.vars = std::make_shared<const VarTable>(p.analysis);
  return p;
}

size_t Engine::ResolvedThreads() const {
  if (options_.num_threads != 0) return options_.num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

Result<planner::Plan> Engine::PlanNormalized(const GraphPattern& normalized,
                                             const VarTable& vars) const {
  if (!options_.use_planner) {
    return planner::DirectPlan(normalized, vars);
  }
  std::shared_ptr<const planner::GraphStats> stats =
      planner::GetStats(graph_);
  planner::PlannerConfig config;
  config.use_seed_index = options_.use_seed_index;
  // Exact per-(label, key, value) counts for equality selectivities
  // (docs/planner.md): the planner reads the graph's property seed index
  // instead of the System-R constant whenever an estimate hint resolves.
  config.histograms = &graph_;
  return planner::PlanPattern(normalized, vars, *stats, config);
}

Result<std::shared_ptr<const planner::CachedPlan>> Engine::PreparePlan(
    const GraphPattern& pattern, bool* cache_hit) const {
  *cache_hit = false;
  std::string fingerprint;
  if (options_.use_plan_cache) {
    // The fingerprint is the parameterized pattern text: $name placeholders
    // render as themselves, so executions differing only in bound values
    // share one entry — the prepare-once contract.
    fingerprint = planner::PlanFingerprint(pattern, options_.use_planner,
                                           options_.use_seed_index,
                                           options_.use_analysis);
    // The registry outlives this call: the graph's member slot keeps it.
    if (std::shared_ptr<const planner::CachedPlan> cached = planner::LookupPlan(
            graph_, fingerprint,
            options_.publish_metrics ? graph_.metrics_registry().get()
                                     : nullptr)) {
      *cache_hit = true;
      return cached;
    }
  }
  auto entry = std::make_shared<planner::CachedPlan>();
  obs::Stopwatch analyze_clock;
  GPML_ASSIGN_OR_RETURN(Analyzed p, AnalyzePattern(pattern));
  entry->normalized = std::move(p.normalized);
  entry->vars = std::move(p.vars);
  entry->analyze_ms = analyze_clock.ElapsedMs();
  if (options_.use_analysis) {
    // Static analysis (docs/analysis.md): collect-all diagnostics over the
    // normalized pattern. Errors fail Prepare; warnings/notes are cached on
    // the entry so EXPLAIN and Lint see them on cache hits too. The pass
    // may rewrite the postfilter (dropping parameter-free TRUE conjuncts)
    // and prove the pattern empty — both recorded before planning so the
    // plan is built against the rewritten pattern.
    obs::Stopwatch analysis_clock;
    analysis::QueryAnalysis qa =
        analysis::AnalyzeQuery(entry->normalized, p.analysis, &graph_);
    entry->analysis_ms = analysis_clock.ElapsedMs();
    if (options_.publish_metrics && !qa.diagnostics.empty()) {
      graph_.metrics_registry()
          ->GetCounter("gpml_diagnostics_emitted_total")
          ->Increment(qa.diagnostics.size());
    }
    if (qa.diagnostics.has_errors()) {
      return Status::SemanticError(qa.diagnostics.ToString());
    }
    if (qa.postfilter_rewritten) {
      entry->normalized.where = qa.rewritten_postfilter;
    }
    entry->diagnostics = std::move(qa.diagnostics);
    entry->always_empty = qa.always_empty;
  }
  obs::Stopwatch plan_clock;
  GPML_ASSIGN_OR_RETURN(entry->plan,
                        PlanNormalized(entry->normalized, *entry->vars));
  entry->plan_ms = plan_clock.ElapsedMs();
  // Compile and graph-bind every declaration's program now, so cache hits
  // skip compilation and label-predicate binding as well as planning. The
  // entry is keyed on the graph identity token, so the bound symbol ids can
  // never be replayed against a different graph.
  obs::Stopwatch compile_clock;
  entry->programs.reserve(entry->plan.decls.size());
  for (const planner::DeclPlan& dp : entry->plan.decls) {
    GPML_ASSIGN_OR_RETURN(Program program,
                          CompilePattern(dp.decl, *entry->vars));
    // The variable table enables the batch plan (Program::batch): predicate
    // kernels and equi-join targets compile once here and ride the cache.
    BindProgramToGraph(&program, graph_, entry->vars.get());
    entry->programs.push_back(
        std::make_shared<const Program>(std::move(program)));
  }
  entry->compile_ms = compile_clock.ElapsedMs();
  // Workload-statistics identity, computed once per compile so executions
  // (cache hits included) never pay for rendering. The stats fingerprint
  // deliberately omits the planning flags the cache fingerprint embeds:
  // toggling use_seed_index keeps one stats entry while the plan hash —
  // FNV-1a of the plan's EXPLAIN rendering, diagnostics excluded so
  // warnings don't masquerade as replans — flips, which is exactly the
  // signal QueryStatsStore turns into a plan-change event.
  entry->stats_fingerprint = Print(entry->normalized);
  entry->plan_hash = obs::HashPlanText(planner::ExplainPlan(
      entry->plan, *entry->vars, /*stats=*/nullptr, /*exec=*/nullptr,
      /*actuals=*/nullptr, /*warnings=*/nullptr));
  std::shared_ptr<const planner::CachedPlan> shared = std::move(entry);
  if (options_.use_plan_cache) {
    planner::StorePlan(graph_, fingerprint, shared);
  }
  return shared;
}

Result<PreparedQuery> Engine::Prepare(const std::string& match_text) const {
  obs::Stopwatch parse_clock;
  GPML_ASSIGN_OR_RETURN(GraphPattern pattern, ParseGraphPattern(match_text));
  double parse_ms = parse_clock.ElapsedMs();
  GPML_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(pattern));
  prepared.parse_ms_ = parse_ms;
  return prepared;
}

Result<PreparedQuery> Engine::Prepare(const GraphPattern& pattern) const {
  bool cache_hit = false;
  GPML_ASSIGN_OR_RETURN(std::shared_ptr<const planner::CachedPlan> plan,
                        PreparePlan(pattern, &cache_hit));
  ParamSignature signature = CollectPatternParams(plan->normalized);
  return PreparedQuery(graph_, options_, std::move(plan),
                       std::move(signature), cache_hit);
}

// ---------------------------------------------------------------------------
// Engine: plan / explain
// ---------------------------------------------------------------------------

Result<planner::Plan> Engine::Plan(const GraphPattern& pattern) const {
  bool cache_hit = false;
  GPML_ASSIGN_OR_RETURN(std::shared_ptr<const planner::CachedPlan> prepared,
                        PreparePlan(pattern, &cache_hit));
  return prepared->plan;
}

Result<std::string> Engine::Explain(const std::string& match_text) const {
  GPML_ASSIGN_OR_RETURN(GraphPattern pattern, ParseGraphPattern(match_text));
  return Explain(pattern);
}

Result<std::string> Engine::Explain(const GraphPattern& pattern) const {
  bool cache_hit = false;
  GPML_ASSIGN_OR_RETURN(std::shared_ptr<const planner::CachedPlan> prepared,
                        PreparePlan(pattern, &cache_hit));
  planner::ExplainExec exec;
  exec.threads = ResolvedThreads();
  exec.cached = cache_hit;
  exec.batch = options_.use_batch ? kBatchBlockTarget : 0;
  return planner::ExplainPlan(prepared->plan, *prepared->vars,
                              /*stats=*/nullptr, &exec, /*actuals=*/nullptr,
                              &prepared->diagnostics);
}

Result<std::string> Engine::ExplainAnalyze(const std::string& match_text,
                                           const Params& params) const {
  GPML_ASSIGN_OR_RETURN(GraphPattern pattern, ParseGraphPattern(match_text));
  return ExplainAnalyze(pattern, params);
}

Result<std::string> Engine::ExplainAnalyze(const GraphPattern& pattern,
                                           const Params& params) const {
  // Run with private metrics and a private trace so the rendering carries
  // measured wall-clock actuals (`ms=`, `plan_ms=`, `actual_ms=`) even when
  // the caller attached neither.
  EngineMetrics metrics;
  obs::Trace trace;
  EngineOptions opts = options_;
  opts.metrics = &metrics;
  opts.trace = &trace;
  Engine sub(graph_, opts);
  GPML_ASSIGN_OR_RETURN(PreparedQuery prepared, sub.Prepare(pattern));
  GPML_RETURN_IF_ERROR(ValidateParams(prepared.signature_, params));
  std::shared_ptr<const Params> shared =
      params.empty() ? nullptr : std::make_shared<const Params>(params);
  std::vector<planner::DeclActual> actuals;
  GPML_ASSIGN_OR_RETURN(
      MatchOutput out,
      sub.ExecutePlan(*prepared.plan_, prepared.cache_hit_, std::move(shared),
                      &actuals));
  planner::ExplainExec exec;
  exec.threads = ResolvedThreads();
  exec.cached = prepared.cache_hit_;
  exec.batch = options_.use_batch ? kBatchBlockTarget : 0;
  exec.analyzed = true;
  exec.rows = out.rows.size();
  exec.truncated = out.truncated;
  exec.total_ms = trace.TotalMs("query");
  exec.plan_ms = metrics.plan_ms;
  return planner::ExplainPlan(prepared.plan_->plan, *prepared.plan_->vars,
                              /*stats=*/nullptr, &exec, &actuals,
                              &prepared.plan_->diagnostics);
}

// ---------------------------------------------------------------------------
// Engine: lint
// ---------------------------------------------------------------------------

namespace {

/// A pipeline error as one diagnostic: first message line (the snippet
/// AttachSnippet appended is re-derivable from the span), with the byte
/// offset recovered from the `offset=N` marker the parser and semantic
/// passes embed.
analysis::Diagnostic StatusToDiagnostic(const char* code, const Status& st) {
  analysis::Diagnostic d;
  d.code = code;
  d.severity = analysis::Severity::kError;
  std::string message = st.message();
  size_t nl = message.find('\n');
  if (nl != std::string::npos) message.resize(nl);
  size_t offset = 0;
  if (FindOffsetMarker(message, &offset)) {
    d.span = SourceSpan{offset, offset + 1};
  }
  d.message = std::move(message);
  return d;
}

}  // namespace

analysis::DiagnosticList Engine::Lint(const std::string& match_text) const {
  analysis::DiagnosticList diags = LintImpl(match_text);
  // Every span stays inside the linted text: errors reported at end of
  // input would otherwise point one byte past it ([size, size+1)).
  for (analysis::Diagnostic& d : diags.mutable_items()) {
    if (d.span.begin > match_text.size()) d.span.begin = match_text.size();
    if (d.span.end > match_text.size()) d.span.end = match_text.size();
  }
  return diags;
}

analysis::DiagnosticList Engine::LintImpl(const std::string& match_text) const {
  analysis::DiagnosticList diags;
  Result<GraphPattern> pattern = ParseGraphPattern(match_text);
  if (!pattern.ok()) {
    diags.Add(StatusToDiagnostic(analysis::kCodeSyntax, pattern.status()));
    return diags;
  }
  Result<GraphPattern> normalized = Normalize(*pattern);
  if (!normalized.ok()) {
    diags.Add(StatusToDiagnostic(analysis::kCodeSemantic,
                                 normalized.status()));
    return diags;
  }
  Result<Analysis> sem = Analyze(*normalized);
  if (!sem.ok()) {
    diags.Add(StatusToDiagnostic(analysis::kCodeSemantic, sem.status()));
    return diags;
  }
  if (Status st = CheckTermination(*normalized, *sem); !st.ok()) {
    diags.Add(StatusToDiagnostic(analysis::kCodeSemantic, st));
    return diags;
  }
  analysis::QueryAnalysis qa =
      analysis::AnalyzeQuery(*normalized, *sem, &graph_);
  if (options_.publish_metrics && !qa.diagnostics.empty()) {
    graph_.metrics_registry()
        ->GetCounter("gpml_diagnostics_emitted_total")
        ->Increment(qa.diagnostics.size());
  }
  return std::move(qa.diagnostics);
}

// ---------------------------------------------------------------------------
// Engine: batch execution (the differential oracle)
// ---------------------------------------------------------------------------

Result<MatchOutput> Engine::Match(const std::string& match_text) const {
  GPML_ASSIGN_OR_RETURN(GraphPattern pattern, ParseGraphPattern(match_text));
  return Match(pattern);
}

Result<MatchOutput> Engine::Match(const GraphPattern& pattern) const {
  // The legacy one-shot call is a thin prepare-bind-drain: prepare (or hit
  // the plan cache), bind the empty parameter set, materialize.
  GPML_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(pattern));
  return prepared.Execute();
}

Result<MatchOutput> Engine::ExecutePlan(
    const planner::CachedPlan& prepared, bool cache_hit,
    std::shared_ptr<const Params> params,
    std::vector<planner::DeclActual>* actuals, double parse_ms) const {
  obs::Stopwatch total_clock;
  ExecObserved observed;
  Result<MatchOutput> out =
      ExecutePlanImpl(prepared, cache_hit, std::move(params), actuals,
                      parse_ms, &observed);
  // Unlike the registry publication inside the impl (completed executions
  // only), workload statistics count failures too: a query that dies on
  // its step budget dominated that budget, and the whole point of the
  // store is to say so. `observed` carries the work spent before death.
  RecordQueryStats(options_, graph_, prepared, cache_hit,
                   total_clock.ElapsedMs(),
                   out.ok() ? out->rows.size() : 0, observed.seeds,
                   observed.steps, /*error=*/!out.ok(),
                   /*truncated=*/out.ok() && out->truncated,
                   /*batch_engaged=*/observed.batch_blocks > 0);
  return out;
}

Result<MatchOutput> Engine::ExecutePlanImpl(
    const planner::CachedPlan& prepared, bool cache_hit,
    std::shared_ptr<const Params> params,
    std::vector<planner::DeclActual>* actuals, double parse_ms,
    ExecObserved* observed) const {
  obs::Stopwatch total_clock;
  MatchOutput out;
  if (options_.metrics != nullptr) *options_.metrics = {};
  out.normalized = prepared.normalized;
  out.vars = prepared.vars;
  out.params = std::move(params);
  const planner::Plan& plan = prepared.plan;
  const bool truncate =
      options_.on_budget == EngineOptions::BudgetPolicy::kTruncate;

  const size_t num_workers = ResolvedThreads();
  MatcherOptions matcher_options = options_.matcher;
  matcher_options.num_threads = num_workers;
  matcher_options.use_csr = options_.use_csr;
  matcher_options.use_batch = options_.use_batch;

  // One trace per execution: the caller's, or a local one when only a sink
  // or the slow-query log will consume it.
  const bool slow_enabled = options_.slow_query_ms >= 0;
  obs::Trace local_trace;
  obs::Trace* tr = options_.trace;
  if (tr == nullptr && (options_.trace_sink != nullptr || slow_enabled)) {
    tr = &local_trace;
  }
  if (tr != nullptr) tr->Clear();
  // Slow-query capture renders EXPLAIN ANALYZE, so collect per-declaration
  // actuals locally even when the caller passed none.
  std::vector<planner::DeclActual> local_actuals;
  if (actuals == nullptr && slow_enabled) actuals = &local_actuals;

  // Compile cost this execution paid: parsing always runs (the fingerprint
  // needs a parsed pattern); the normalize/plan/compile half was only paid
  // on a cache miss — hits replay the entry's stored costs into the trace.
  const double compile_ms =
      prepared.analyze_ms + prepared.plan_ms + prepared.compile_ms;
  const double paid_plan_ms = parse_ms + (cache_hit ? 0.0 : compile_ms);

  int root = obs::Trace::kNoParent;
  if (tr != nullptr) {
    root = tr->Begin("query");
    tr->Attr(root, "threads", std::to_string(num_workers));
    tr->Attr(root, "cached", cache_hit ? "true" : "false");
    if (!options_.tenant.empty()) tr->Attr(root, "tenant", options_.tenant);
    if (!options_.trace_id.empty()) {
      tr->Attr(root, "trace_id", options_.trace_id);
    }
    if (parse_ms > 0) {
      tr->AddComplete("parse", root, 0, MsToUs(parse_ms));
    }
    int plan_span = tr->AddComplete("plan", root, 0, MsToUs(compile_ms));
    tr->Attr(plan_span, "cached", cache_hit ? "true" : "false");
  }

  if (options_.metrics != nullptr) {
    options_.metrics->threads = num_workers;
    options_.metrics->plan_ms = paid_plan_ms;
    if (cache_hit) {
      options_.metrics->plan_cache_hits = 1;
    } else {
      options_.metrics->plan_cache_misses = 1;
    }
  }

  // Registry aggregates (published at the end, for completed executions);
  // tracked locally so publication does not depend on options_.metrics.
  // Seeds/steps/batch-blocks accumulate through `observed` so the
  // ExecutePlan wrapper sees partial work after an error return.
  size_t& agg_seeded = observed->seeds;
  size_t& agg_steps = observed->steps;
  size_t& agg_batch_blocks = observed->batch_blocks;
  size_t agg_reversed = 0, agg_bound = 0, agg_indexed = 0;
  size_t agg_batch_candidates = 0, agg_batch_survivors = 0;
  double seed_ms_total = 0, match_ms_total = 0, join_ms_total = 0;

  // Evaluate every path declaration independently (§6.5) in plan order,
  // then join. The planner may mirror a declaration (anchor at its right
  // end) or seed it from the bindings of earlier declarations; both are
  // result-preserving (see docs/planner.md).
  const size_t num_decls = plan.decls.size();
  out.path_vars.assign(num_decls, -1);
  bool first = true;
  std::vector<ResultRow> rows;
  // Analyzer-proven empty pattern (docs/analysis.md): skip seeding, matching
  // and joining entirely — the loop guard below keeps the tail of this
  // function (reorder, filter, metrics publication, tracing) running over
  // zero rows, so the execution still publishes its counters (0 seeds,
  // 0 matcher steps, 0 rows) and a complete trace.
  const bool always_empty = prepared.always_empty;
  for (size_t plan_pos = 0; !always_empty && plan_pos < num_decls;
       ++plan_pos) {
    const planner::DeclPlan& dp = plan.decls[plan_pos];
    const PathPatternDecl& decl = dp.decl;
    int decl_span = obs::Trace::kNoParent;
    if (tr != nullptr) {
      decl_span = tr->Begin("decl", root);
      tr->Attr(decl_span, "decl", std::to_string(dp.decl_index));
    }
    out.path_vars[static_cast<size_t>(dp.decl_index)] =
        decl.path_var.empty() ? -1 : out.vars->Find(decl.path_var);

    // Compiled with the plan (and graph-bound); cache hits reuse it as-is.
    const Program& program = *prepared.programs[plan_pos];

    // Restricted seeding: the anchor variable is already bound by earlier
    // declarations, so only those nodes can start a joinable match; failing
    // that, an anchor with an inline equality predicate seeds from the
    // (label, prop) = value hash index — the value is the planned literal
    // or the bind-time $parameter binding. Both restrictions only drop
    // starts the pattern's first node check would reject anyway.
    std::vector<NodeId> seed_filter;
    const std::vector<NodeId>* filter = nullptr;
    bool use_filter = !first && dp.seed_bound_var >= 0;
    bool use_index = false;
    if (use_filter) {
      std::unordered_set<NodeId> distinct;
      for (const ResultRow& row : rows) {
        for (size_t i = row.bindings.size(); i-- > 0;) {
          const ElementRef* el = row.bindings[i]->LastOf(dp.seed_bound_var);
          if (el != nullptr) {
            if (el->is_node()) distinct.insert(el->id);
            break;
          }
        }
      }
      seed_filter.assign(distinct.begin(), distinct.end());
      std::sort(seed_filter.begin(), seed_filter.end());
      filter = &seed_filter;
    } else if (plan.planner_used && dp.anchor.has_index()) {
      const Value* idx_value =
          ResolveIndexValue(dp.anchor, out.params.get());
      if (idx_value != nullptr) {
        use_index = true;
        filter = &graph_.IndexedNodes(dp.anchor.label, dp.anchor.index_prop,
                                      *idx_value);
      }
      // A NULL-bound parameter falls back to label-scan seeding: the inline
      // predicate itself filters (to nothing — `= NULL` is never true).
    }

    MatchStats match_stats;
    bool decl_truncated = false;
    GPML_ASSIGN_OR_RETURN(
        MatchSet match,
        RunPattern(graph_, program, *out.vars, matcher_options, filter,
                   &match_stats, out.params.get(), /*shared_budget=*/nullptr,
                   truncate ? &decl_truncated : nullptr));
    if (decl_truncated) out.truncated = true;
    if (dp.reversed) planner::UnreverseMatchSet(&match);

    agg_seeded += match_stats.seeds;
    agg_steps += match_stats.steps;
    agg_batch_blocks += match_stats.batch_blocks;
    agg_batch_candidates += match_stats.batch_candidates;
    agg_batch_survivors += match_stats.batch_survivors;
    if (dp.reversed) ++agg_reversed;
    if (use_filter) ++agg_bound;
    if (use_index) ++agg_indexed;
    seed_ms_total += match_stats.seed_ms;
    match_ms_total += match_stats.match_ms;

    if (options_.metrics != nullptr) {
      EngineMetrics& m = *options_.metrics;
      ++m.decls;
      m.seeded_nodes += match_stats.seeds;
      m.matcher_steps += match_stats.steps;
      m.batch_blocks += match_stats.batch_blocks;
      m.batch_candidates += match_stats.batch_candidates;
      m.batch_survivors += match_stats.batch_survivors;
      if (dp.reversed) ++m.reversed_decls;
      if (use_filter) ++m.seed_filtered_decls;
      if (use_index) ++m.index_seeded_decls;
      m.seed_ms += match_stats.seed_ms;
      m.exec_ms += match_stats.match_ms;
    }
    if (actuals != nullptr) {
      planner::DeclActual a;
      a.seeds = match_stats.seeds;
      a.steps = match_stats.steps;
      a.bindings = match.bindings.size();
      a.index_seeded = use_index;
      a.seed_filtered = use_filter;
      a.ms = match_stats.match_ms;
      actuals->push_back(a);
    }
    if (tr != nullptr) {
      // Seed and shard children reconstructed from the matcher's measured
      // wall times (the trace is single-threaded; workers never touch it).
      tr->Attr(decl_span, "source",
               use_index ? "index" : (use_filter ? "bound" : "scan"));
      uint64_t decl_start = tr->spans()[decl_span].start_us;
      tr->AddComplete("seed", decl_span, decl_start,
                      MsToUs(match_stats.seed_ms));
      uint64_t shard_start = decl_start + MsToUs(match_stats.seed_ms);
      for (size_t s = 0; s < match_stats.shard_ms.size(); ++s) {
        int shard_span = tr->AddComplete("shard", decl_span, shard_start,
                                         MsToUs(match_stats.shard_ms[s]));
        tr->Attr(shard_span, "shard", std::to_string(s));
      }
      tr->End(decl_span);
    }

    std::vector<std::shared_ptr<const PathBinding>> bindings;
    bindings.reserve(match.bindings.size());
    for (PathBinding& pb : match.bindings) {
      bindings.push_back(std::make_shared<const PathBinding>(std::move(pb)));
    }

    if (first) {
      rows.reserve(bindings.size());
      for (auto& b : bindings) {
        ResultRow r;
        r.bindings.push_back(std::move(b));
        rows.push_back(std::move(r));
      }
      first = false;
      continue;
    }

    int join_span =
        tr != nullptr ? tr->Begin("join", root) : obs::Trace::kNoParent;
    obs::Stopwatch join_clock;
    bool join_truncated = false;
    GPML_ASSIGN_OR_RETURN(
        rows, JoinDecl(std::move(rows), bindings, dp.join_vars,
                       options_.max_rows, truncate, &join_truncated));
    join_ms_total += join_clock.ElapsedMs();
    if (tr != nullptr) tr->End(join_span);
    if (join_truncated) out.truncated = true;
  }

  // Row bindings were accumulated in plan execution order; restore source
  // declaration order so hosts and RowScope index them by declaration.
  bool reordered = false;
  for (size_t i = 0; i < num_decls; ++i) {
    if (plan.decls[i].decl_index != static_cast<int>(i)) reordered = true;
  }
  if (reordered) {
    for (ResultRow& row : rows) {
      std::vector<std::shared_ptr<const PathBinding>> ordered(num_decls);
      for (size_t i = 0; i < num_decls; ++i) {
        ordered[static_cast<size_t>(plan.decls[i].decl_index)] =
            std::move(row.bindings[i]);
      }
      row.bindings = std::move(ordered);
    }
  }

  // Per-row tail: match-mode filter (§7.1) and the final WHERE (§5.2) —
  // the same RowSurvives the cursor paths stream through.
  int filter_span =
      tr != nullptr ? tr->Begin("filter", root) : obs::Trace::kNoParent;
  obs::Stopwatch filter_clock;
  std::vector<ResultRow> surviving;
  surviving.reserve(rows.size());
  for (ResultRow& row : rows) {
    GPML_ASSIGN_OR_RETURN(bool keep, RowSurvives(out, graph_, row));
    if (keep) surviving.push_back(std::move(row));
  }
  out.rows = std::move(surviving);
  const double filter_ms = filter_clock.ElapsedMs();
  if (tr != nullptr) tr->End(filter_span);

  if (options_.metrics != nullptr) {
    options_.metrics->rows = out.rows.size();
    options_.metrics->budget_truncated = out.truncated ? 1 : 0;
  }

  // Observability publication — completed executions only (every error
  // above returned before reaching this point).
  if (tr != nullptr) {
    tr->Attr(root, "rows", std::to_string(out.rows.size()));
    tr->End(root);
  }
  const double total_ms = total_clock.ElapsedMs();
  if (options_.publish_metrics) {
    std::shared_ptr<obs::MetricsRegistry> registry = graph_.metrics_registry();
    registry->GetCounter("gpml_executions_total")->Increment();
    registry->GetCounter("gpml_decls_total")->Increment(num_decls);
    registry->GetCounter("gpml_seeded_nodes_total")->Increment(agg_seeded);
    registry->GetCounter("gpml_matcher_steps_total")->Increment(agg_steps);
    registry->GetCounter("gpml_reversed_decls_total")->Increment(agg_reversed);
    registry->GetCounter("gpml_seed_filtered_decls_total")
        ->Increment(agg_bound);
    registry->GetCounter("gpml_index_seeded_decls_total")
        ->Increment(agg_indexed);
    registry->GetCounter("gpml_rows_total")->Increment(out.rows.size());
    registry->GetCounter("gpml_budget_truncated_total")
        ->Increment(out.truncated ? 1 : 0);
    registry->GetCounter("gpml_batch_blocks_total")
        ->Increment(agg_batch_blocks);
    if (agg_batch_candidates > 0) {
      registry->GetHistogram("gpml_batch_survivor_rate")
          ->Observe(100.0 * static_cast<double>(agg_batch_survivors) /
                    static_cast<double>(agg_batch_candidates));
    }
    registry->GetHistogram(kStagePlan)->Observe(MsToUs(paid_plan_ms));
    registry->GetHistogram(kStageSeed)->Observe(MsToUs(seed_ms_total));
    registry->GetHistogram(kStageMatch)->Observe(MsToUs(match_ms_total));
    registry->GetHistogram(kStageJoin)->Observe(MsToUs(join_ms_total));
    registry->GetHistogram(kStageFilter)->Observe(MsToUs(filter_ms));
    registry->GetHistogram("gpml_query_duration_us")->Observe(MsToUs(total_ms));
    if (slow_enabled && total_ms > options_.slow_query_ms) {
      registry->GetCounter("gpml_slow_queries_total")->Increment();
    }
  }
  if (options_.trace_sink != nullptr) options_.trace_sink->Emit(*tr);
  if (slow_enabled && total_ms > options_.slow_query_ms) {
    planner::ExplainExec exec;
    exec.threads = num_workers;
    exec.cached = cache_hit;
    exec.batch = options_.use_batch ? kBatchBlockTarget : 0;
    exec.analyzed = true;
    exec.rows = out.rows.size();
    exec.truncated = out.truncated;
    exec.total_ms = total_ms;
    exec.plan_ms = paid_plan_ms;
    CaptureSlowQuery(options_, graph_, prepared, exec, actuals, tr, total_ms,
                     out.rows.size());
  }
  return out;
}

// ---------------------------------------------------------------------------
// PreparedQuery
// ---------------------------------------------------------------------------

PreparedQuery::PreparedQuery(const PropertyGraph& graph,
                             EngineOptions options,
                             std::shared_ptr<const planner::CachedPlan> plan,
                             ParamSignature signature, bool cache_hit)
    : graph_(&graph),
      options_(std::move(options)),
      plan_(std::move(plan)),
      signature_(std::move(signature)),
      cache_hit_(cache_hit) {}

Result<MatchOutput> PreparedQuery::Execute(const Params& params) const {
  GPML_RETURN_IF_ERROR(ValidateParams(signature_, params));
  std::shared_ptr<const Params> shared =
      params.empty() ? nullptr : std::make_shared<const Params>(params);
  Engine engine(*graph_, options_);
  return engine.ExecutePlan(*plan_, cache_hit_, std::move(shared),
                            /*actuals=*/nullptr, parse_ms_);
}

Result<Cursor> PreparedQuery::Open(const Params& params) const {
  return Open(params, std::nullopt);
}

Result<Cursor> PreparedQuery::Open(const Params& params,
                                   std::optional<uint64_t> limit) const {
  GPML_RETURN_IF_ERROR(ValidateParams(signature_, params));
  std::shared_ptr<const Params> shared =
      params.empty() ? nullptr : std::make_shared<const Params>(params);
  return Cursor(*graph_, options_, plan_, std::move(shared), cache_hit_,
                limit, parse_ms_);
}

Result<std::string> PreparedQuery::Explain() const {
  Engine engine(*graph_, options_);
  planner::ExplainExec exec;
  exec.threads = engine.ResolvedThreads();
  exec.cached = cache_hit_;
  exec.batch = options_.use_batch ? kBatchBlockTarget : 0;
  return planner::ExplainPlan(plan_->plan, *plan_->vars, /*stats=*/nullptr,
                              &exec, /*actuals=*/nullptr,
                              &plan_->diagnostics);
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

Cursor::Cursor(const PropertyGraph& graph, EngineOptions options,
               std::shared_ptr<const planner::CachedPlan> plan,
               std::shared_ptr<const Params> params, bool cache_hit,
               std::optional<uint64_t> limit, double parse_ms)
    : graph_(&graph),
      options_(std::move(options)),
      plan_(std::move(plan)),
      cache_hit_(cache_hit),
      limit_(limit),
      parse_ms_(parse_ms),
      open_us_(obs::MonotonicMicros()) {
  context_.normalized = plan_->normalized;
  context_.vars = plan_->vars;
  context_.params = std::move(params);
  const planner::Plan& p = plan_->plan;
  context_.path_vars.assign(p.decls.size(), -1);
  for (const planner::DeclPlan& dp : p.decls) {
    context_.path_vars[static_cast<size_t>(dp.decl_index)] =
        dp.decl.path_var.empty() ? -1 : context_.vars->Find(dp.decl.path_var);
  }

  // Streaming eligibility: a single declaration with no selector whose
  // matches all have one fixed path length. Then per-chunk merge order
  // (stable by-length sort) is the identity, chunk outputs concatenate in
  // seed order exactly like the full run's discovery order, and cross-chunk
  // duplicates cannot exist (distinct seeds; a reduced binding keeps its
  // start node) — so streamed rows are byte-identical to Execute.
  // Analyzer-proven empty plans stay in kBatch: FillBatch delegates to
  // ExecutePlan, whose always-empty early exit publishes the 0-seed /
  // 0-step execution without ever calling ComputeSeeds.
  if (!plan_->always_empty && p.decls.size() == 1 &&
      p.decls[0].decl.selector.IsNone() &&
      FixedPatternLength(*p.decls[0].decl.pattern).has_value()) {
    mode_ = Mode::kStream;
    const planner::DeclPlan& dp = p.decls[0];
    stream_reversed_ = dp.reversed;
    const std::vector<NodeId>* filter = nullptr;
    if (p.planner_used && dp.anchor.has_index()) {
      const Value* idx_value =
          ResolveIndexValue(dp.anchor, context_.params.get());
      if (idx_value != nullptr) {
        stream_index_seeded_ = true;
        filter = &graph.IndexedNodes(dp.anchor.label, dp.anchor.index_prop,
                                     *idx_value);
      }
    }
    obs::Stopwatch seed_clock;
    seeds_ = ComputeSeeds(graph, *plan_->programs[0], filter);
    seed_ms_total_ = seed_clock.ElapsedMs();
    chunk_size_ = kFirstChunkSeeds;
    // One budget across all chunks: the stream can never execute more
    // steps or accept more matches than a single materializing call.
    budget_ = std::make_unique<SharedBudget>(options_.matcher.max_steps,
                                             options_.matcher.max_matches);
  }

  if (options_.metrics != nullptr) {
    *options_.metrics = {};
    Engine engine(*graph_, options_);
    options_.metrics->threads = engine.ResolvedThreads();
    options_.metrics->plan_ms =
        parse_ms_ + (cache_hit_ ? 0.0
                                : plan_->analyze_ms + plan_->plan_ms +
                                      plan_->compile_ms);
    if (cache_hit_) {
      options_.metrics->plan_cache_hits = 1;
    } else {
      options_.metrics->plan_cache_misses = 1;
    }
    if (mode_ == Mode::kStream) {
      options_.metrics->decls = 1;
      options_.metrics->seed_ms = seed_ms_total_;
      if (stream_reversed_) options_.metrics->reversed_decls = 1;
      if (stream_index_seeded_) options_.metrics->index_seeded_decls = 1;
    }
  }
}

Status Cursor::FillChunk() {
  staged_.clear();
  staged_pos_ = 0;
  const planner::DeclPlan& dp = plan_->plan.decls[0];
  const Program& program = *plan_->programs[0];

  const size_t count = std::min(chunk_size_, seeds_.size() - seed_pos_);
  std::vector<NodeId> chunk(seeds_.begin() + static_cast<long>(seed_pos_),
                            seeds_.begin() +
                                static_cast<long>(seed_pos_ + count));
  seed_pos_ += count;
  chunk_size_ = std::min(chunk_size_ * 2, kMaxChunkSeeds);

  Engine engine(*graph_, options_);
  MatcherOptions matcher_options = options_.matcher;
  matcher_options.num_threads = engine.ResolvedThreads();
  matcher_options.use_csr = options_.use_csr;
  matcher_options.use_batch = options_.use_batch;

  const bool truncate =
      options_.on_budget == EngineOptions::BudgetPolicy::kTruncate;
  MatchStats stats;
  bool exhausted = false;
  Result<MatchSet> match =
      RunPattern(*graph_, program, *context_.vars, matcher_options, &chunk,
                 &stats, context_.params.get(), budget_.get(),
                 truncate ? &exhausted : nullptr);
  // Record the matcher work even when the run errored: RunPattern fills
  // `stats` with the steps actually spent before a budget refusal, and
  // downstream accounting (the server's per-tenant step charging) must see
  // them — a query that dies on its step cap still did that work.
  seeds_total_ += stats.seeds;
  steps_total_ += stats.steps;
  batch_blocks_total_ += stats.batch_blocks;
  batch_candidates_total_ += stats.batch_candidates;
  batch_survivors_total_ += stats.batch_survivors;
  seed_ms_total_ += stats.seed_ms;
  exec_ms_total_ += stats.match_ms;
  if (options_.metrics != nullptr) {
    options_.metrics->seeded_nodes += stats.seeds;
    options_.metrics->matcher_steps += stats.steps;
    options_.metrics->batch_blocks += stats.batch_blocks;
    options_.metrics->batch_candidates += stats.batch_candidates;
    options_.metrics->batch_survivors += stats.batch_survivors;
    options_.metrics->seed_ms += stats.seed_ms;
    options_.metrics->exec_ms += stats.match_ms;
  }
  if (!match.ok()) return match.status();
  if (dp.reversed) planner::UnreverseMatchSet(&*match);

  for (PathBinding& pb : match->bindings) {
    ResultRow row;
    row.bindings.push_back(
        std::make_shared<const PathBinding>(std::move(pb)));
    Result<bool> keep = RowSurvives(context_, *graph_, row);
    if (!keep.ok()) return keep.status();
    if (*keep) staged_.push_back(std::move(row));
  }

  if (exhausted) {
    truncated_ = true;
    context_.truncated = true;
    seed_pos_ = seeds_.size();  // No further chunks.
    if (options_.metrics != nullptr) {
      options_.metrics->budget_truncated = 1;
    }
  }
  return Status::OK();
}

Status Cursor::FillBatch() {
  batch_ran_ = true;
  Engine engine(*graph_, options_);
  Result<MatchOutput> out =
      engine.ExecutePlan(*plan_, cache_hit_, context_.params,
                         /*actuals=*/nullptr, parse_ms_);
  if (!out.ok()) return out.status();
  truncated_ = out->truncated;
  context_.truncated = out->truncated;
  staged_ = std::move(out->rows);
  staged_pos_ = 0;
  // ExecutePlan reported the materialized count; the cursor contract is
  // rows *emitted so far*, counted per pull in Next for both modes.
  if (options_.metrics != nullptr) options_.metrics->rows = 0;
  return Status::OK();
}

Result<bool> Cursor::Next(RowView* view) {
  if (!status_.ok()) return status_;
  if (limit_.has_value() && emitted_ >= *limit_) {
    if (!done_) {
      done_ = true;
      hit_limit_ = true;
      FinishStream();
    }
    return false;
  }
  if (done_) return false;
  while (true) {
    if (staged_pos_ < staged_.size()) {
      current_ = std::move(staged_[staged_pos_++]);
      ++emitted_;
      if (options_.metrics != nullptr) ++options_.metrics->rows;
      view->row = &current_;
      view->context = &context_;
      return true;
    }
    if (mode_ == Mode::kBatch) {
      if (batch_ran_) {
        done_ = true;
        return false;
      }
      status_ = FillBatch();
    } else {
      if (seed_pos_ >= seeds_.size()) {
        done_ = true;
        FinishStream();
        return false;
      }
      status_ = FillChunk();
    }
    if (!status_.ok()) {
      done_ = true;
      // kStream errors bypass FinishStream (no clean completion to
      // publish), but the workload store still counts them; kBatch
      // errors were already recorded inside ExecutePlan.
      RecordStreamStats(/*error=*/true);
      return status_;
    }
  }
}

void Cursor::FinishStream() {
  if (published_ || mode_ != Mode::kStream) return;
  published_ = true;
  const double total_ms =
      static_cast<double>(obs::MonotonicMicros() - open_us_) / 1e3;
  const double compile_ms =
      plan_->analyze_ms + plan_->plan_ms + plan_->compile_ms;
  const double paid_plan_ms = parse_ms_ + (cache_hit_ ? 0.0 : compile_ms);
  const bool slow_enabled = options_.slow_query_ms >= 0;

  // Streams have no live span nesting (work happened across pulls), so the
  // trace is reconstructed flat from the accumulated stage totals.
  obs::Trace local_trace;
  obs::Trace* tr = options_.trace;
  if (tr == nullptr && (options_.trace_sink != nullptr || slow_enabled)) {
    tr = &local_trace;
  }
  if (tr != nullptr) {
    tr->Clear();
    int root = tr->AddComplete("query", obs::Trace::kNoParent, 0,
                               MsToUs(total_ms));
    tr->Attr(root, "mode", "stream");
    tr->Attr(root, "cached", cache_hit_ ? "true" : "false");
    tr->Attr(root, "rows", std::to_string(emitted_));
    if (!options_.tenant.empty()) tr->Attr(root, "tenant", options_.tenant);
    if (!options_.trace_id.empty()) {
      tr->Attr(root, "trace_id", options_.trace_id);
    }
    if (parse_ms_ > 0) {
      tr->AddComplete("parse", root, 0, MsToUs(parse_ms_));
    }
    int plan_span = tr->AddComplete("plan", root, 0, MsToUs(compile_ms));
    tr->Attr(plan_span, "cached", cache_hit_ ? "true" : "false");
    tr->AddComplete("seed", root, 0, MsToUs(seed_ms_total_));
    tr->AddComplete("match", root, 0, MsToUs(exec_ms_total_));
  }

  if (options_.publish_metrics) {
    std::shared_ptr<obs::MetricsRegistry> registry =
        graph_->metrics_registry();
    registry->GetCounter("gpml_executions_total")->Increment();
    registry->GetCounter("gpml_decls_total")->Increment(1);
    registry->GetCounter("gpml_seeded_nodes_total")->Increment(seeds_total_);
    registry->GetCounter("gpml_matcher_steps_total")->Increment(steps_total_);
    registry->GetCounter("gpml_reversed_decls_total")
        ->Increment(stream_reversed_ ? 1 : 0);
    registry->GetCounter("gpml_index_seeded_decls_total")
        ->Increment(stream_index_seeded_ ? 1 : 0);
    registry->GetCounter("gpml_rows_total")->Increment(emitted_);
    registry->GetCounter("gpml_budget_truncated_total")
        ->Increment(truncated_ ? 1 : 0);
    registry->GetCounter("gpml_batch_blocks_total")
        ->Increment(batch_blocks_total_);
    if (batch_candidates_total_ > 0) {
      registry->GetHistogram("gpml_batch_survivor_rate")
          ->Observe(100.0 * static_cast<double>(batch_survivors_total_) /
                    static_cast<double>(batch_candidates_total_));
    }
    registry->GetHistogram(kStagePlan)->Observe(MsToUs(paid_plan_ms));
    registry->GetHistogram(kStageSeed)->Observe(MsToUs(seed_ms_total_));
    registry->GetHistogram(kStageMatch)->Observe(MsToUs(exec_ms_total_));
    registry->GetHistogram("gpml_query_duration_us")
        ->Observe(MsToUs(total_ms));
    if (slow_enabled && total_ms > options_.slow_query_ms) {
      registry->GetCounter("gpml_slow_queries_total")->Increment();
    }
  }
  if (options_.trace_sink != nullptr) options_.trace_sink->Emit(*tr);
  if (slow_enabled && total_ms > options_.slow_query_ms) {
    planner::ExplainExec exec;
    Engine engine(*graph_, options_);
    exec.threads = engine.ResolvedThreads();
    exec.cached = cache_hit_;
    exec.batch = options_.use_batch ? kBatchBlockTarget : 0;
    exec.analyzed = true;
    exec.rows = emitted_;
    exec.truncated = truncated_;
    exec.total_ms = total_ms;
    exec.plan_ms = paid_plan_ms;
    CaptureSlowQuery(options_, *graph_, *plan_, exec, /*actuals=*/nullptr,
                     tr, total_ms, emitted_);
  }
  RecordStreamStats(/*error=*/false);
}

void Cursor::RecordStreamStats(bool error) {
  if (stats_recorded_ || mode_ != Mode::kStream) return;
  stats_recorded_ = true;
  const double total_ms =
      static_cast<double>(obs::MonotonicMicros() - open_us_) / 1e3;
  RecordQueryStats(options_, *graph_, *plan_, cache_hit_, total_ms, emitted_,
                   seeds_total_, steps_total_, error, truncated_,
                   /*batch_engaged=*/batch_blocks_total_ > 0);
}

Result<MatchOutput> Cursor::Drain() {
  MatchOutput out = context_;
  RowView view;
  while (true) {
    GPML_ASSIGN_OR_RETURN(bool more, Next(&view));
    if (!more) break;
    out.rows.push_back(*view.row);
  }
  out.truncated = truncated_;
  return out;
}

}  // namespace gpml
