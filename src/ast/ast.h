#ifndef GPML_AST_AST_H_
#define GPML_AST_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/expr.h"
#include "ast/label_expr.h"
#include "common/source.h"

namespace gpml {

/// The seven edge-pattern orientations of Figure 5.
enum class EdgeOrientation {
  kLeft,               // <-[ ]-   pointing left
  kUndirected,         // ~[ ]~    undirected
  kRight,              // -[ ]->   pointing right
  kLeftOrUndirected,   // <~[ ]~   left or undirected
  kUndirectedOrRight,  // ~[ ]~>   undirected or right
  kLeftOrRight,        // <-[ ]->  left or right
  kAny,                // -[ ]-    left, undirected or right
};

const char* EdgeOrientationName(EdgeOrientation o);

/// Restrictors (Figure 7): path predicates that bound the match set.
enum class Restrictor { kNone, kTrail, kAcyclic, kSimple };

const char* RestrictorName(Restrictor r);

/// Selectors (Figure 8): partition the solutions by endpoint pair and keep a
/// finite subset of each partition.
struct Selector {
  enum class Kind {
    kNone,
    kAnyShortest,    // ANY SHORTEST
    kAllShortest,    // ALL SHORTEST
    kAny,            // ANY
    kAnyK,           // ANY k
    kShortestK,      // SHORTEST k
    kShortestKGroup, // SHORTEST k GROUP
  };
  Kind kind = Kind::kNone;
  int k = 1;  // kAnyK / kShortestK / kShortestKGroup.

  bool IsNone() const { return kind == Kind::kNone; }
  /// True for the selectors whose result is uniquely determined
  /// (ALL SHORTEST and SHORTEST k GROUP per Figure 8).
  bool IsDeterministic() const {
    return kind == Kind::kAllShortest || kind == Kind::kShortestKGroup;
  }
  std::string ToString() const;
};

/// A node pattern `(x:Account WHERE x.isBlocked='no')` — §4.1. All three
/// components are optional; `()` is the minimal node pattern.
struct NodePattern {
  std::string var;      // Empty = anonymous (normalization names it).
  LabelExprPtr labels;  // nullptr = no label constraint.
  ExprPtr where;        // nullptr = no inline predicate.
  SourceSpan span;      // '(' .. ')' in the query text; invalid if built
                        // programmatically. Survives normalization (copied).
};

/// An edge pattern `-[e:Transfer WHERE e.amount>5M]->` — §4.1, Figure 5.
struct EdgePattern {
  std::string var;
  LabelExprPtr labels;
  ExprPtr where;
  EdgeOrientation orientation = EdgeOrientation::kRight;
  SourceSpan span;  // Full edge pattern text; invalid if built
                    // programmatically.
};

struct PathPattern;
using PathPatternPtr = std::shared_ptr<const PathPattern>;

/// One term of a concatenation within a path pattern.
struct PathElement {
  enum class Kind {
    kNode,        // (x:L WHERE ...)
    kEdge,        // -[e:L WHERE ...]->
    kParen,       // [ RESTRICTOR? sub WHERE ...] — parenthesized path pattern
    kQuantified,  // elem{m,n} over an edge or parenthesized path pattern
    kOptional,    // elem?     (conditional-singleton semantics, §4.6)
  };

  Kind kind = Kind::kNode;
  NodePattern node;           // kNode.
  EdgePattern edge;           // kEdge.
  PathPatternPtr sub;         // kParen / kQuantified / kOptional.
  Restrictor restrictor = Restrictor::kNone;  // kParen family: head position.
  ExprPtr where;              // kParen family: trailing WHERE.
  uint64_t min = 0;           // kQuantified.
  std::optional<uint64_t> max;  // kQuantified; nullopt = unbounded.
  SourceSpan quantifier_span;   // kQuantified: the {m,n}/*/+ source bytes.
  /// kQuantified/kOptional: true when the quantifier was written on a bare
  /// edge pattern, so normalization must supply anonymous nodes (§4.4).
  bool bare_edge = false;

  static PathElement Node(NodePattern n);
  static PathElement Edge(EdgePattern e);
  static PathElement Paren(PathPatternPtr sub, Restrictor r, ExprPtr where);
  static PathElement Quantified(PathPatternPtr sub, uint64_t min,
                                std::optional<uint64_t> max, Restrictor r,
                                ExprPtr where, bool bare_edge);
  static PathElement Optional(PathPatternPtr sub, Restrictor r, ExprPtr where,
                              bool bare_edge);
};

/// A path pattern: either a concatenation of elements, a path pattern union
/// `|` (set semantics), or a multiset alternation `|+|` (§4.5).
struct PathPattern {
  enum class Kind { kConcat, kUnion, kAlternation };

  Kind kind = Kind::kConcat;
  std::vector<PathElement> elements;         // kConcat.
  std::vector<PathPatternPtr> alternatives;  // kUnion / kAlternation.

  static PathPatternPtr Concat(std::vector<PathElement> elements);
  static PathPatternPtr Union(std::vector<PathPatternPtr> alternatives);
  static PathPatternPtr Alternation(std::vector<PathPatternPtr> alternatives);
};

/// A top-level path pattern of a MATCH: optional selector, optional
/// restrictor, optional path variable (`p = ...`), then the pattern.
/// `MATCH ALL SHORTEST TRAIL p = (a)-[t:Transfer]->*(b)`.
struct PathPatternDecl {
  Selector selector;
  Restrictor restrictor = Restrictor::kNone;
  std::string path_var;  // Empty = none.
  PathPatternPtr pattern;
};

/// Match modes — the §7.1 "isomorphic match modes" Language Opportunity
/// (published GQL's REPEATABLE ELEMENTS / DIFFERENT EDGES). The default is
/// homomorphism: elements may repeat freely across the graph pattern.
enum class MatchMode {
  kRepeatableElements,  // Default (the paper's semantics throughout).
  kDifferentEdges,      // All matched edges pairwise distinct across the
                        // whole graph pattern (edge-isomorphic, §7.1).
  kDifferentNodes,      // All matched nodes pairwise distinct (stronger).
};

const char* MatchModeName(MatchMode m);

/// A graph pattern (§4.3): comma-separated path patterns joined on shared
/// singleton variables, plus the optional postfilter WHERE (§5.2).
struct GraphPattern {
  MatchMode mode = MatchMode::kRepeatableElements;
  std::vector<PathPatternDecl> paths;
  ExprPtr where;  // nullptr = absent.
};

/// A full GQL-side statement: MATCH <graph pattern> [RETURN items]. The
/// SQL/PGQ host wraps the same GraphPattern in GRAPH_TABLE/COLUMNS instead.
struct ReturnItem {
  ExprPtr expr;
  std::string alias;  // Defaults to expr->ToString() if empty.
};

struct MatchStatement {
  GraphPattern pattern;
  bool has_return = false;
  bool return_distinct = false;
  std::vector<ReturnItem> return_items;
  /// RETURN ... LIMIT n: cap on the projected row count (applied after
  /// DISTINCT). nullopt = unlimited.
  std::optional<uint64_t> limit;
};

}  // namespace gpml

#endif  // GPML_AST_AST_H_
