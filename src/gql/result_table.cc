#include "gql/result_table.h"

#include <set>

#include "eval/expr_eval.h"

namespace gpml {

namespace {

/// One projected output row of a RETURN/COLUMNS list over one result row.
Result<Row> ProjectOne(const MatchOutput& context, const ResultRow& row,
                       const PropertyGraph& g,
                       const std::vector<ReturnItem>& items) {
  RowScope scope(context, row);
  Row out_row;
  out_row.reserve(items.size());
  for (const ReturnItem& item : items) {
    GPML_ASSIGN_OR_RETURN(EvalValue v,
                          EvalExpr(*item.expr, g, *context.vars, scope));
    out_row.push_back(ToOutputValue(v, g));
  }
  return out_row;
}

Schema ItemsSchema(const std::vector<ReturnItem>& items) {
  std::vector<ColumnDef> columns;
  columns.reserve(items.size());
  for (const ReturnItem& item : items) {
    ColumnDef c;
    c.name = item.alias.empty() ? item.expr->ToString() : item.alias;
    c.type = ValueType::kNull;  // Dynamic.
    columns.push_back(std::move(c));
  }
  return Schema(std::move(columns));
}

}  // namespace

Result<Table> ProjectRows(const MatchOutput& output, const PropertyGraph& g,
                          const std::vector<ReturnItem>& items,
                          bool distinct) {
  Table table{ItemsSchema(items)};
  for (const ResultRow& row : output.rows) {
    GPML_ASSIGN_OR_RETURN(Row out_row, ProjectOne(output, row, g, items));
    table.AppendUnchecked(std::move(out_row));
  }
  if (distinct) table.DeduplicateRows();
  return table;
}

Result<Table> ProjectCursor(Cursor& cursor, const PropertyGraph& g,
                            const std::vector<ReturnItem>& items,
                            bool distinct, std::optional<uint64_t> limit) {
  Table table{ItemsSchema(items)};
  std::set<Row> seen;  // DISTINCT: streamed set-semantics dedup.
  RowView view;
  // DISTINCT must match ProjectRows exactly: set semantics with a final
  // sort (Table::DeduplicateRows), so the limit selects from the *sorted*
  // distinct rows and the stream drains fully. Without DISTINCT the
  // projection is row-for-row and stops as soon as `limit` rows arrived.
  while (distinct || !limit.has_value() || table.num_rows() < *limit) {
    GPML_ASSIGN_OR_RETURN(bool more, cursor.Next(&view));
    if (!more) break;
    GPML_ASSIGN_OR_RETURN(Row out_row,
                          ProjectOne(*view.context, *view.row, g, items));
    if (distinct && !seen.insert(out_row).second) continue;
    table.AppendUnchecked(std::move(out_row));
  }
  if (distinct) {
    table.DeduplicateRows();
    if (limit.has_value()) table.TruncateRows(*limit);
  }
  return table;
}

Result<Table> ProjectAllVariables(const MatchOutput& output,
                                  const PropertyGraph& g) {
  // Named variables in id order; skip anonymous ones.
  std::vector<int> ids;
  std::vector<ColumnDef> columns;
  for (int v = 0; v < output.vars->size(); ++v) {
    const VarInfo& info = output.vars->info(v);
    if (info.anonymous) continue;
    ids.push_back(v);
    columns.push_back({info.name, ValueType::kNull, true});
  }
  Table table{Schema(std::move(columns))};

  for (const ResultRow& row : output.rows) {
    RowScope scope(output, row);
    Row out_row;
    out_row.reserve(ids.size());
    for (int v : ids) {
      const VarInfo& info = output.vars->info(v);
      if (info.kind == VarInfo::Kind::kPath) {
        const Path* p = scope.LookupPath(v);
        out_row.push_back(p == nullptr ? Value::Null()
                                       : Value::String(p->ToString(g)));
        continue;
      }
      if (info.group) {
        // Group variable: comma-joined element names in binding order.
        std::vector<ElementRef> elems = scope.CollectGroup(v);
        std::string joined;
        for (size_t i = 0; i < elems.size(); ++i) {
          if (i > 0) joined += ",";
          joined += g.element(elems[i]).name;
        }
        out_row.push_back(Value::String(joined));
        continue;
      }
      std::optional<ElementRef> el = scope.LookupSingleton(v);
      out_row.push_back(el.has_value()
                            ? Value::String(g.element(*el).name)
                            : Value::Null());
    }
    table.AppendUnchecked(std::move(out_row));
  }
  return table;
}

}  // namespace gpml
