#include "graph/path.h"

#include <gtest/gtest.h>

#include "graph/sample_graph.h"

namespace gpml {
namespace {

class PathTest : public ::testing::Test {
 protected:
  PathTest() : g_(BuildPaperGraph()) {}

  NodeId N(const std::string& name) { return g_.FindNode(name); }
  EdgeId E(const std::string& name) { return g_.FindEdge(name); }

  /// Builds a path from alternating node/edge names, inferring traversals.
  Path MakePath(const std::vector<std::string>& names) {
    Path p(N(names[0]));
    for (size_t i = 1; i + 1 < names.size(); i += 2) {
      EdgeId e = E(names[i]);
      NodeId to = N(names[i + 2 - 1]);
      const EdgeData& ed = g_.edge(e);
      Traversal t = Traversal::kUndirected;
      if (ed.directed) {
        t = (g_.Cross(e, p.End(), Traversal::kForward) == to)
                ? Traversal::kForward
                : Traversal::kBackward;
      }
      p.Append(e, t, to);
    }
    return p;
  }

  PropertyGraph g_;
};

TEST_F(PathTest, EmptyAndZeroLength) {
  Path empty;
  EXPECT_TRUE(empty.IsEmpty());
  Path zero(N("a1"));
  EXPECT_FALSE(zero.IsEmpty());
  EXPECT_EQ(zero.Length(), 0u);
  EXPECT_EQ(zero.Start(), zero.End());
  EXPECT_TRUE(zero.IsTrail());
  EXPECT_TRUE(zero.IsAcyclic());
  EXPECT_TRUE(zero.IsSimple());
}

TEST_F(PathTest, PaperSection2Path) {
  // path(c1,li1,a1,t1,a3,hp3,p2): li1 backwards, t1 forward, hp3 undirected.
  Path p = MakePath({"c1", "li1", "a1", "t1", "a3", "hp3", "p2"});
  EXPECT_EQ(p.Length(), 3u);
  EXPECT_EQ(p.ToString(g_), "path(c1,li1,a1,t1,a3,hp3,p2)");
  EXPECT_EQ(p.traversals()[0], Traversal::kBackward);
  EXPECT_EQ(p.traversals()[1], Traversal::kForward);
  EXPECT_EQ(p.traversals()[2], Traversal::kUndirected);
}

TEST_F(PathTest, TrailFromSection51) {
  // path(a6,t5,a3,t7,a5,t8,a1,t1,a3,t2,a2): a trail (node a3 repeats).
  Path p = MakePath(
      {"a6", "t5", "a3", "t7", "a5", "t8", "a1", "t1", "a3", "t2", "a2"});
  EXPECT_TRUE(p.IsTrail());
  EXPECT_FALSE(p.IsAcyclic());
  EXPECT_FALSE(p.IsSimple());  // The repeat is not at first/last position.
}

TEST_F(PathTest, NonTrailFromSection51) {
  // path(a6,t5,a3,t2,a2,t3,a4,t4,a6,t5,a3,t2,a2) repeats edges: not a trail.
  Path p = MakePath({"a6", "t5", "a3", "t2", "a2", "t3", "a4", "t4", "a6",
                     "t5", "a3", "t2", "a2"});
  EXPECT_FALSE(p.IsTrail());
}

TEST_F(PathTest, SimpleCycleAllowed) {
  // a3 -> a2 -> a4 -> a6 -> a3: first == last, interior distinct: SIMPLE.
  Path p = MakePath({"a3", "t2", "a2", "t3", "a4", "t4", "a6", "t5", "a3"});
  EXPECT_TRUE(p.IsTrail());
  EXPECT_FALSE(p.IsAcyclic());
  EXPECT_TRUE(p.IsSimple());
}

TEST_F(PathTest, AcyclicPath) {
  Path p = MakePath({"a6", "t5", "a3", "t2", "a2"});
  EXPECT_TRUE(p.IsAcyclic());
  EXPECT_TRUE(p.IsSimple());
  EXPECT_TRUE(p.IsTrail());
}

TEST_F(PathTest, InteriorRepeatIsNotSimple) {
  // a5,t8,a1,t1,a3,t7,a5,t8,a1: repeats interior node a1 and edge t8.
  Path p = MakePath({"a5", "t8", "a1", "t1", "a3", "t7", "a5", "t8", "a1"});
  EXPECT_FALSE(p.IsTrail());
  EXPECT_FALSE(p.IsSimple());
}

TEST_F(PathTest, Concatenate) {
  Path a = MakePath({"a6", "t5", "a3"});
  Path b = MakePath({"a3", "t2", "a2"});
  a.Concatenate(b);
  EXPECT_EQ(a.ToString(g_), "path(a6,t5,a3,t2,a2)");
  EXPECT_EQ(a.Length(), 2u);
}

TEST_F(PathTest, ConcatenateEmpty) {
  Path a = MakePath({"a6", "t5", "a3"});
  Path empty;
  a.Concatenate(empty);
  EXPECT_EQ(a.Length(), 1u);
  Path e2;
  e2.Concatenate(a);
  EXPECT_EQ(e2.Length(), 1u);
}

TEST_F(PathTest, EqualityAndHash) {
  Path p1 = MakePath({"a6", "t5", "a3"});
  Path p2 = MakePath({"a6", "t5", "a3"});
  Path p3 = MakePath({"a6", "t6", "a5"});
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1.Hash(), p2.Hash());
  EXPECT_FALSE(p1 == p3);
}

}  // namespace
}  // namespace gpml
