#ifndef GPML_GRAPH_PROPERTY_GRAPH_H_
#define GPML_GRAPH_PROPERTY_GRAPH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "graph/adjacency.h"
#include "graph/csr_index.h"
#include "graph/symbol_table.h"

namespace gpml {

namespace planner {
struct GraphStats;  // planner/stats.h; cached on the graph, see below.
struct PlanCache;   // planner/plan_cache.h; cached on the graph, see below.
}  // namespace planner

namespace obs {
class MetricsRegistry;  // obs/metrics.h; per-graph registry, see below.
}  // namespace obs

/// A reference to a graph element (node or edge) — the codomain of variable
/// bindings in the execution model of §6.
struct ElementRef {
  enum class Kind : uint8_t { kNode, kEdge };
  Kind kind = Kind::kNode;
  uint32_t id = kInvalidId;

  static ElementRef Node(NodeId n) { return {Kind::kNode, n}; }
  static ElementRef Edge(EdgeId e) { return {Kind::kEdge, e}; }
  bool is_node() const { return kind == Kind::kNode; }
  bool is_edge() const { return kind == Kind::kEdge; }

  friend bool operator==(const ElementRef& a, const ElementRef& b) {
    return a.kind == b.kind && a.id == b.id;
  }
  friend bool operator<(const ElementRef& a, const ElementRef& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.id < b.id;
  }
};

struct ElementRefHash {
  size_t operator()(const ElementRef& r) const {
    // splitmix64 finalizer over (kind, id). Computed in uint64_t so the mix
    // is well-defined (and doesn't collapse) when size_t is 32 bits.
    uint64_t x = (static_cast<uint64_t>(r.kind) << 32) | r.id;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

/// Payload common to nodes and edges: external name, label set, properties.
/// Labels are kept sorted for deterministic printing and fast subset tests.
struct ElementData {
  std::string name;                       // External id, e.g. "a1", "t5".
  std::vector<std::string> labels;        // Sorted, unique.
  std::map<std::string, Value> properties;

  bool HasLabel(const std::string& label) const;
  /// Missing property -> NULL (the standard's semantics for x.prop).
  const Value& GetProperty(const std::string& name) const;
};

struct NodeData : ElementData {};

struct EdgeData : ElementData {
  bool directed = true;
  /// For directed edges: source/target. For undirected: the two endpoints in
  /// insertion order (self-loops allowed in both cases, Def. 2.1).
  NodeId u = kInvalidId;
  NodeId v = kInvalidId;
};

/// A view of one element's interned label set (sorted by symbol id).
struct SymSpan {
  const Symbol* data = nullptr;
  size_t count = 0;

  const Symbol* begin() const { return data; }
  const Symbol* end() const { return data + count; }
};

/// A property graph per Definition 2.1: finite node and edge sets, a total
/// endpoint function mapping each edge to an ordered pair (directed) or an
/// unordered pair (undirected) of nodes, a total label function and a partial
/// property function on elements. It is a multigraph and a pseudograph:
/// parallel edges and self-loops are allowed, on both directed and
/// undirected edges.
///
/// The class is an immutable-after-construction store: build through
/// GraphBuilder (or the pgq::GraphView materializer), then query. All engine
/// hot paths work on dense integer ids; external names are kept for result
/// rendering and tests.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  // Movable but not copyable: graphs can be large, copies should be explicit.
  PropertyGraph(PropertyGraph&&) = default;
  PropertyGraph& operator=(PropertyGraph&&) = default;
  PropertyGraph(const PropertyGraph&) = delete;
  PropertyGraph& operator=(const PropertyGraph&) = delete;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const NodeData& node(NodeId id) const { return nodes_[id]; }
  const EdgeData& edge(EdgeId id) const { return edges_[id]; }
  const ElementData& element(const ElementRef& ref) const {
    return ref.is_node() ? static_cast<const ElementData&>(nodes_[ref.id])
                         : static_cast<const ElementData&>(edges_[ref.id]);
  }

  /// All admissible single-step traversals leaving `n` (directed out-edges
  /// forward, directed in-edges backward, undirected incident edges).
  const std::vector<Adjacency>& adjacencies(NodeId n) const {
    return adjacency_[n];
  }

  /// The same records as `adjacencies(n)` as a span (the matcher's uniform
  /// expansion-range type; see also CsrIndex::Range).
  AdjSpan AdjacencySpan(NodeId n) const {
    return {adjacency_[n].data(), adjacency_[n].size()};
  }

  // --- interned storage layer (built once in BuildIndexes) -----------------

  /// Label and property-key strings interned to dense symbol ids. Label
  /// symbols are an id space of their own so label sets pack into 64-bit
  /// masks on graphs with <= 64 distinct labels.
  const SymbolTable& label_symbols() const { return label_symbols_; }
  const SymbolTable& property_symbols() const { return property_symbols_; }

  /// True when every label set fits the uint64 bitmask representation.
  bool label_bits_usable() const { return label_symbols_.size() <= 64; }

  /// Bitmask of `n`'s labels (bit i = label symbol i); meaningful only when
  /// label_bits_usable().
  uint64_t node_label_bits(NodeId n) const { return node_label_bits_[n]; }
  uint64_t edge_label_bits(EdgeId e) const { return edge_label_bits_[e]; }

  /// `n`'s labels as sorted symbol ids (valid at any universe size).
  SymSpan node_label_syms(NodeId n) const {
    return {node_label_syms_.data() + node_label_offsets_[n],
            node_label_offsets_[n + 1] - node_label_offsets_[n]};
  }
  SymSpan edge_label_syms(EdgeId e) const {
    return {edge_label_syms_.data() + edge_label_offsets_[e],
            edge_label_offsets_[e + 1] - edge_label_offsets_[e]};
  }

  /// Label-partitioned adjacency (see graph/csr_index.h): expansion with a
  /// known edge label is a contiguous range scan.
  const CsrIndex& csr() const { return csr_; }

  /// Columnar property access: the value of property-key symbol `key` on an
  /// element, NULL when absent. An array index per access — the interned
  /// mirror of ElementData::properties (which stays the string-keyed oracle).
  const Value& NodeColumnValue(Symbol key, NodeId n) const {
    const std::vector<Value>& col = node_columns_[key];
    return col.empty() ? kNullValue() : col[n];
  }
  const Value& EdgeColumnValue(Symbol key, EdgeId e) const {
    const std::vector<Value>& col = edge_columns_[key];
    return col.empty() ? kNullValue() : col[e];
  }

  /// Property lookup by name through the symbol table and columns: one hash
  /// of the key string (shared across all elements) plus an array index,
  /// replacing the per-element std::map walk of ElementData::GetProperty.
  const Value& GetPropertyFast(const ElementRef& ref,
                               const std::string& key) const {
    Symbol s = property_symbols_.Find(key);
    if (s == kInvalidSymbol) return kNullValue();
    return ref.is_node() ? NodeColumnValue(s, ref.id)
                         : EdgeColumnValue(s, ref.id);
  }

  /// Nodes carrying `label` whose `key` property equals `value` (ascending
  /// node id) — the equality seed index the planner's index-backed seeding
  /// consumes. Unknown labels/keys/values yield the empty list.
  const std::vector<NodeId>& IndexedNodes(const std::string& label,
                                          const std::string& key,
                                          const Value& value) const {
    static const std::vector<NodeId> kEmpty;
    Symbol ls = label_symbols_.Find(label);
    Symbol ks = property_symbols_.Find(key);
    if (ls == kInvalidSymbol || ks == kInvalidSymbol) return kEmpty;
    return seed_index_.Lookup(ls, ks, value);
  }

  /// Lookup by external name; kInvalidId when absent.
  NodeId FindNode(const std::string& name) const;
  EdgeId FindEdge(const std::string& name) const;

  /// Nodes carrying `label`; empty vector for unknown labels.
  const std::vector<NodeId>& NodesWithLabel(const std::string& label) const;
  const std::vector<EdgeId>& EdgesWithLabel(const std::string& label) const;

  /// The endpoint reached when crossing `e` from `from` with `t`;
  /// kInvalidId if the traversal is not admissible from that endpoint.
  NodeId Cross(EdgeId e, NodeId from, Traversal t) const;

  /// Human-readable one-line description ("6 nodes, 8 edges").
  std::string Summary() const;

  /// Process-unique identity of this graph's contents, assigned at
  /// construction and carried along by moves (identity follows the data).
  /// Derived-data caches (plan cache) key on it so an entry can never be
  /// served for a different graph, even across moved-into slots.
  uint64_t identity_token() const { return identity_token_; }

  /// Slot for the planner's graph statistics, computed lazily on first use
  /// (see planner::GetStats). The graph is immutable, so a cached derivation
  /// never goes stale. Accessors use atomic shared_ptr operations: concurrent
  /// read-only matching over one shared graph stays race-free even when two
  /// threads compute the stats at once (last store wins, both results are
  /// equivalent).
  std::shared_ptr<const planner::GraphStats> stats_cache() const {
    return std::atomic_load(&stats_cache_);
  }
  void set_stats_cache(std::shared_ptr<const planner::GraphStats> s) const {
    std::atomic_store(&stats_cache_, std::move(s));
  }

  /// Slot for compiled-plan reuse (see planner/plan_cache.h), with the same
  /// atomic-shared_ptr discipline as the stats slot: the cache object itself
  /// is an immutable snapshot, inserts publish a copied-and-extended
  /// snapshot, and racing inserts lose at worst an entry (last store wins),
  /// costing a future recompute, never a wrong plan.
  std::shared_ptr<const planner::PlanCache> plan_cache() const {
    return std::atomic_load(&plan_cache_);
  }
  void set_plan_cache(std::shared_ptr<const planner::PlanCache> c) const {
    std::atomic_store(&plan_cache_, std::move(c));
  }

  /// The graph's observability registry (docs/observability.md): counters
  /// and stage-latency histograms the engine publishes into on every
  /// execution over this graph, created lazily on first use and shared by
  /// every engine/host. Same slot discipline as stats/plan-cache, with a
  /// compare-exchange on creation so racing first users converge on one
  /// registry (counters are never split across two instances).
  std::shared_ptr<obs::MetricsRegistry> metrics_registry() const;

 private:
  friend class GraphBuilder;

  void BuildIndexes();
  void BuildInternedLayer();

  /// Shared NULL for missing-property results.
  static const Value& kNullValue() {
    static const Value kNull = Value::Null();
    return kNull;
  }

  /// Monotonic process-wide counter backing identity_token().
  static uint64_t NextIdentityToken();

  std::vector<NodeData> nodes_;
  std::vector<EdgeData> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
  std::unordered_map<std::string, NodeId> node_by_name_;
  std::unordered_map<std::string, EdgeId> edge_by_name_;
  std::unordered_map<std::string, std::vector<NodeId>> nodes_by_label_;
  std::unordered_map<std::string, std::vector<EdgeId>> edges_by_label_;

  // Interned storage layer (tentpole of the CSR PR; see docs/storage.md).
  SymbolTable label_symbols_;
  SymbolTable property_symbols_;
  std::vector<uint32_t> node_label_offsets_;  // size nodes+1.
  std::vector<Symbol> node_label_syms_;       // Sorted per element.
  std::vector<uint32_t> edge_label_offsets_;  // size edges+1.
  std::vector<Symbol> edge_label_syms_;
  std::vector<uint64_t> node_label_bits_;
  std::vector<uint64_t> edge_label_bits_;
  CsrIndex csr_;
  std::vector<std::vector<Value>> node_columns_;  // [key symbol][node id].
  std::vector<std::vector<Value>> edge_columns_;  // [key symbol][edge id].
  PropertySeedIndex seed_index_;
  mutable std::shared_ptr<const planner::GraphStats> stats_cache_;
  mutable std::shared_ptr<const planner::PlanCache> plan_cache_;
  mutable std::shared_ptr<obs::MetricsRegistry> metrics_registry_;
  uint64_t identity_token_ = NextIdentityToken();
};

}  // namespace gpml

#endif  // GPML_GRAPH_PROPERTY_GRAPH_H_
