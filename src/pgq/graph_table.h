#ifndef GPML_PGQ_GRAPH_TABLE_H_
#define GPML_PGQ_GRAPH_TABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/table.h"
#include "common/result.h"
#include "eval/engine.h"

namespace gpml {

/// SQL/PGQ's GRAPH_TABLE operator (Figure 9, left branch): runs a GPML
/// graph pattern against a graph in the catalog and projects the reduced
/// path bindings into a relational table through a COLUMNS list. In SQL
/// surface syntax this is
///
///   SELECT * FROM GRAPH_TABLE(g,
///     MATCH (x:Account)-[:isLocatedIn]->(c:City)
///     WHERE c.name = 'Ankh-Morpork'
///     COLUMNS (x.owner AS owner))
///
/// expressed here as a structured call; `match` carries the MATCH...WHERE
/// part and `columns` the COLUMNS list.
struct GraphTableQuery {
  std::string graph;
  std::string match;
  std::string columns;
  /// $name bindings for a parameterized `match` text. The SQL host's
  /// equivalent of a driver's bind step: the match text (with placeholders)
  /// is the plan-cache key, so calls differing only in bound values share
  /// one compiled plan.
  Params params;
  /// SQL's FETCH FIRST n ROWS ONLY: cap on projected rows, pushed into the
  /// streaming cursor so matching stops early. nullopt = unlimited.
  std::optional<uint64_t> limit;
};

/// Runs the query through the prepare-bind-cursor pipeline (docs/api.md):
/// the match text is prepared (or served from the graph's plan cache),
/// `query.params` is bound, and rows stream through a cursor into the
/// COLUMNS projection — `query.limit` never materializes more than needed.
/// When `query.match` starts with an EXPLAIN keyword ("EXPLAIN MATCH ...")
/// returns the planner's plan rendering as a one-column "plan" table
/// instead of executing (the COLUMNS list is ignored); EXPLAIN ANALYZE
/// executes the match with the bound parameters and renders measured
/// actuals. `options` plumbs the engine knobs through the SQL host —
/// notably num_threads (seed-partitioned parallelism) and use_plan_cache;
/// cached plans are keyed on the catalog graph's identity, so repeated
/// GRAPH_TABLE calls (and GQL statements) over the same graph share them.
Result<Table> GraphTable(const Catalog& catalog, const GraphTableQuery& query,
                         EngineOptions options = {});

/// Parses the SQL surface form "GRAPH_TABLE(<graph>, MATCH ... COLUMNS
/// (...))" into a GraphTableQuery — enough SQL syntax to run the paper's
/// examples verbatim.
Result<GraphTableQuery> ParseGraphTableCall(const std::string& sql);

/// Prometheus text-format rendering of the catalog graph's metrics
/// registry (docs/observability.md) — the SQL host's counterpart of
/// gql::Session::MetricsText, covering every GRAPH_TABLE call (and GQL
/// statement) executed against that graph.
Result<std::string> GraphTableMetricsText(const Catalog& catalog,
                                          const std::string& graph);

/// Static analysis of a GRAPH_TABLE call without executing it: the query's
/// MATCH text is linted against the named catalog graph's schema and the
/// engine's full diagnostic list — errors, warnings, and notes
/// (docs/analysis.md) — is returned. The SQL host's counterpart of
/// gql::Session::Lint: a bad match text never fails the call, it comes
/// back as GPML-E001/E002 diagnostics. Error only when the graph is
/// unknown.
Result<analysis::DiagnosticList> GraphTableLint(const Catalog& catalog,
                                               const GraphTableQuery& query,
                                               EngineOptions options = {});

/// The slow-query captures belonging to the catalog graph, oldest first.
/// `log` selects the slow log the executions wrote to
/// (EngineOptions::slow_log); null reads the process-wide
/// obs::GlobalSlowQueryLog().
Result<std::vector<obs::SlowQueryRecord>> GraphTableSlowQueries(
    const Catalog& catalog, const std::string& graph,
    const obs::SlowQueryLog* log = nullptr);

/// The per-fingerprint workload statistics belonging to the catalog graph,
/// most-recently-updated first — the SQL host's counterpart of
/// gql::Session::QueryStats. `store` selects the store the executions
/// recorded into (EngineOptions::query_stats); null reads the process-wide
/// obs::GlobalQueryStats(). Error only when the graph is unknown.
Result<std::vector<obs::QueryStatEntry>> GraphTableQueryStats(
    const Catalog& catalog, const std::string& graph,
    const obs::QueryStatsStore* store = nullptr);

}  // namespace gpml

#endif  // GPML_PGQ_GRAPH_TABLE_H_
