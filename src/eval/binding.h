#ifndef GPML_EVAL_BINDING_H_
#define GPML_EVAL_BINDING_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/strings.h"
#include "graph/path.h"
#include "graph/property_graph.h"
#include "semantics/analyze.h"

namespace gpml {

/// Interned variable ids for one compiled pattern. Two distinguished ids
/// represent the *reduced* anonymous node ("_") and edge ("-") variables of
/// §6.5: reduction maps every anonymous variable to one of them.
class VarTable {
 public:
  explicit VarTable(const Analysis& analysis);

  /// Id for `name`; -1 if unknown.
  int Find(const std::string& name) const;
  const VarInfo& info(int id) const { return infos_[static_cast<size_t>(id)]; }
  const std::string& name(int id) const {
    return infos_[static_cast<size_t>(id)].name;
  }
  int size() const { return static_cast<int>(infos_.size()); }

  int anon_node_id() const { return anon_node_id_; }
  int anon_edge_id() const { return anon_edge_id_; }

  /// Reduction (§6.5): named variables map to themselves, anonymous ones to
  /// the shared anonymous node/edge id.
  int Reduced(int id) const {
    const VarInfo& v = infos_[static_cast<size_t>(id)];
    if (!v.anonymous) return id;
    return v.kind == VarInfo::Kind::kEdge ? anon_edge_id_ : anon_node_id_;
  }

 private:
  std::vector<VarInfo> infos_;
  std::unordered_map<std::string, int> by_name_;
  int anon_node_id_ = -1;
  int anon_edge_id_ = -1;
};

/// An elementary binding (§6): one (variable, graph element) pair.
struct ElementaryBinding {
  int var = -1;
  ElementRef element;

  friend bool operator==(const ElementaryBinding& a,
                         const ElementaryBinding& b) {
    return a.var == b.var && a.element == b.element;
  }
};

/// Persistent (immutable, structurally shared) chain of elementary bindings
/// built up during pattern matching. Edge entries additionally record the
/// traversal direction so the matched Path can be reconstructed at accept
/// time without carrying a growing Path in every search state.
struct BindingLink {
  ElementaryBinding binding;
  Traversal traversal = Traversal::kForward;  // Meaningful for edge entries.
  std::shared_ptr<const BindingLink> prev;
  uint32_t size = 0;  // Chain length including this link.
};
using BindingChain = std::shared_ptr<const BindingLink>;

/// Appends a binding, returning the extended chain.
BindingChain Extend(const BindingChain& chain, ElementaryBinding b,
                    Traversal t = Traversal::kForward);

/// Materializes the chain front-to-back.
std::vector<BindingLink> Materialize(const BindingChain& chain);

/// Persistent environment of *named-variable* bindings used for implicit
/// equi-joins and predicate evaluation during the search. `serial`
/// identifies the quantifier-iteration instance in which the binding was
/// made (§6: the superscript); a lookup joins only when the serials match.
struct EnvLink {
  int var = -1;
  ElementRef element;
  uint64_t serial = 0;
  std::shared_ptr<const EnvLink> prev;
};
using EnvChain = std::shared_ptr<const EnvLink>;

EnvChain ExtendEnv(const EnvChain& env, int var, ElementRef element,
                   uint64_t serial);
/// Latest entry for `var`, or nullptr.
const EnvLink* LookupEnv(const EnvChain& env, int var);

/// A completed, reduced path binding (§6.5): the deduplication unit and the
/// row content delivered to the hosts.
struct PathBinding {
  /// Reduced elementary bindings (anonymous vars merged, adjacency runs
  /// cleaned up per §6.3/§6.5).
  std::vector<ElementaryBinding> reduced;
  /// The matched path (start/end nodes are the selector partition key).
  Path path;
  /// Multiset-alternation provenance (§4.5): one entry per |+| traversed,
  /// identifying the branch; distinguishes otherwise-equal bindings.
  std::vector<int32_t> tags;

  /// All elements bound to `var` in sequence order (group collection).
  std::vector<ElementRef> ElementsOf(int var) const;
  /// Last element bound to `var`, if any.
  const ElementRef* LastOf(int var) const;

  bool SameReduced(const PathBinding& other) const {
    return reduced == other.reduced && tags == other.tags;
  }
  size_t ReducedHash() const;

  /// Debug/trace rendering: "a=a4 b=t4 _=a6 ...".
  std::string ToString(const PropertyGraph& g, const VarTable& vars) const;
};

/// Builds the reduced PathBinding from a raw chain: walks front-to-back,
/// collapses every run of consecutive node bindings (which all refer to the
/// same graph node) by keeping the named ones — or a single anonymous
/// binding if the run has no named variable — and reconstructs the Path.
PathBinding ReduceChain(const BindingChain& chain, const VarTable& vars,
                        std::vector<int32_t> tags);

}  // namespace gpml

#endif  // GPML_EVAL_BINDING_H_
