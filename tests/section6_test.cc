// E18/E19: the execution model of Section 6, step by step, on the running
// example
//
//   MATCH TRAIL (a WHERE a.owner='Jay')
//         [-[b:Transfer WHERE b.amount>5M]->]+
//         (a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]
//
// covering normalization (§6.2), expansion into rigid patterns (§6.3),
// rigid-pattern matching (§6.4), reduction/deduplication (§6.5), the
// selector and multiset-alternation variants, and agreement between the
// reference evaluator and the production engine.

#include <gtest/gtest.h>

#include "eval/engine.h"
#include "eval/reference_eval.h"
#include "graph/sample_graph.h"
#include "parser/parser.h"
#include "semantics/normalize.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::CountRows;
using testing_util::Rows;

constexpr const char* kRunningQuery =
    "MATCH TRAIL (a WHERE a.owner='Jay')"
    "[-[b:Transfer WHERE b.amount>5M]->]+"
    "(a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]";

class Section6Test : public ::testing::Test {
 protected:
  Section6Test() : g_(BuildPaperGraph()) {}

  /// Parses, normalizes and analyzes the running query (or a variant).
  struct Prepared {
    GraphPattern normalized;
    std::shared_ptr<VarTable> vars;
  };
  Prepared Prepare(const std::string& text) {
    Result<GraphPattern> parsed = ParseGraphPattern(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    Result<GraphPattern> normalized = Normalize(*parsed);
    EXPECT_TRUE(normalized.ok()) << normalized.status();
    Result<Analysis> analysis = Analyze(*normalized);
    EXPECT_TRUE(analysis.ok()) << analysis.status();
    return {*normalized, std::make_shared<VarTable>(*analysis)};
  }

  PropertyGraph g_;
};

TEST_F(Section6Test, FinalResultHasExactlyTwoReducedBindings) {
  Engine engine(g_);
  Result<MatchOutput> out = engine.Match(kRunningQuery);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows.size(), 2u);
}

TEST_F(Section6Test, ReducedBindingsMatchPaperTables) {
  // §6.5's two final reduced path bindings, in the paper's variable order.
  Engine engine(g_);
  Result<MatchOutput> out = engine.Match(kRunningQuery);
  ASSERT_TRUE(out.ok()) << out.status();
  std::vector<std::string> rendered;
  for (const ResultRow& row : out->rows) {
    rendered.push_back(row.bindings[0]->ToString(g_, *out->vars));
  }
  std::sort(rendered.begin(), rendered.end());
  EXPECT_EQ(rendered,
            (std::vector<std::string>{
                "a=a4 b=t4 _=a6 b=t5 _=a3 b=t2 _=a2 b=t3 a=a4 -=li4 c=c2",
                "a=a4 b=t4 _=a6 b=t5 _=a3 b=t7 _=a5 b=t8 _=a1 b=t1 _=a3 "
                "b=t2 _=a2 b=t3 a=a4 -=li4 c=c2"}));
}

TEST_F(Section6Test, OnlyIterationCounts4And7Match) {
  // §6.4: π(n,ℓ) has matches only for n = 4 and n = 7.
  Engine engine(g_);
  Result<MatchOutput> out = engine.Match(kRunningQuery);
  ASSERT_TRUE(out.ok());
  std::vector<size_t> lengths;
  for (const ResultRow& row : out->rows) {
    lengths.push_back(row.bindings[0]->path.Length());
  }
  std::sort(lengths.begin(), lengths.end());
  // n transfers + 1 isLocatedIn edge.
  EXPECT_EQ(lengths, (std::vector<size_t>{5u, 8u}));
}

TEST_F(Section6Test, ExpansionProducesRigidPatternsPerIterationAndBranch) {
  Prepared p = Prepare(kRunningQuery);
  ReferenceOptions options;
  options.expansion_cap = 8;  // n in 1..8.
  Result<std::vector<RigidPattern>> rigids =
      ExpandPattern(p.normalized.paths[0], *p.vars, g_, options);
  ASSERT_TRUE(rigids.ok()) << rigids.status();
  // 8 iteration counts × 2 union branches.
  EXPECT_EQ(rigids->size(), 16u);
  // Every rigid pattern alternates and carries annotated b's.
  const RigidPattern& rp = (*rigids)[0];
  std::string printed = rp.ToString(*p.vars);
  EXPECT_NE(printed.find("b^1"), std::string::npos) << printed;
  EXPECT_NE(printed.find("a"), std::string::npos);
}

TEST_F(Section6Test, RigidPatternAnnotationsSeparateIterations) {
  Prepared p = Prepare(kRunningQuery);
  ReferenceOptions options;
  options.expansion_cap = 4;
  Result<std::vector<RigidPattern>> rigids =
      ExpandPattern(p.normalized.paths[0], *p.vars, g_, options);
  ASSERT_TRUE(rigids.ok());
  // Find a 4-iteration expansion: it must contain b^1..b^4.
  bool found = false;
  for (const RigidPattern& rp : *rigids) {
    std::string s = rp.ToString(*p.vars);
    if (s.find("b^4") != std::string::npos) {
      EXPECT_NE(s.find("b^1"), std::string::npos);
      EXPECT_NE(s.find("b^2"), std::string::npos);
      EXPECT_NE(s.find("b^3"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(Section6Test, ReferenceEvaluatorReproducesFinalResult) {
  Prepared p = Prepare(kRunningQuery);
  ReferenceOptions options;  // auto cap: TRAIL -> |E|+1.
  Result<MatchSet> ref =
      RunReference(g_, p.normalized.paths[0], *p.vars, options);
  ASSERT_TRUE(ref.ok()) << ref.status();
  EXPECT_EQ(ref->bindings.size(), 2u);

  // And it agrees with the production engine binding-for-binding.
  Engine engine(g_);
  Result<MatchOutput> out = engine.Match(kRunningQuery);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), ref->bindings.size());
  for (const PathBinding& rb : ref->bindings) {
    bool found = false;
    for (const ResultRow& row : out->rows) {
      if (row.bindings[0]->SameReduced(rb)) found = true;
    }
    EXPECT_TRUE(found) << rb.ToString(g_, *p.vars);
  }
}

TEST_F(Section6Test, AllShortestVariantKeepsOneBinding) {
  // §6.5 "Using selectors": replacing TRAIL by ALL SHORTEST keeps only the
  // shortest reduced binding for the (a4, c2) endpoint pair.
  std::string query =
      "MATCH ALL SHORTEST (a WHERE a.owner='Jay')"
      "[-[b:Transfer WHERE b.amount>5M]->]+"
      "(a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]";
  Engine engine(g_);
  Result<MatchOutput> out = engine.Match(query);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->rows.size(), 1u);
  EXPECT_EQ(out->rows[0].bindings[0]->path.ToString(g_),
            "path(a4,t4,a6,t5,a3,t2,a2,t3,a4,li4,c2)");
}

TEST_F(Section6Test, MultisetAlternationKeepsFourBindings) {
  // §6.5: |+| maintains all four reduced bindings (City/Country × n=4,7).
  std::string query =
      "MATCH TRAIL (a WHERE a.owner='Jay')"
      "[-[b:Transfer WHERE b.amount>5M]->]+"
      "(a) [-[:isLocatedIn]->(c:City) |+| -[:isLocatedIn]->(c:Country)]";
  EXPECT_EQ(CountRows(g_, query), 4u);
}

TEST_F(Section6Test, UnionEquivalentToLabelDisjunction) {
  // §6.5: the running query equals its label-disjunction rewrite.
  std::string rewritten =
      "MATCH TRAIL (a WHERE a.owner='Jay')"
      "[-[b:Transfer WHERE b.amount>5M]->]+"
      "(a)-[:isLocatedIn]->(c:City|Country)";
  EXPECT_EQ(Rows(g_, kRunningQuery, "a, c"),
            Rows(g_, rewritten, "a, c"));
  EXPECT_EQ(CountRows(g_, rewritten), 2u);
}

TEST_F(Section6Test, EdgeT6FailsThePrefilterEverywhere) {
  // §6.4: the edge (a6,t6,a5) appears in no per-part table — its amount
  // (4M) fails b.amount>5M. Hence no reduced binding contains t6.
  Engine engine(g_);
  Result<MatchOutput> out = engine.Match(kRunningQuery);
  ASSERT_TRUE(out.ok());
  for (const ResultRow& row : out->rows) {
    for (const ElementaryBinding& b : row.bindings[0]->reduced) {
      if (b.element.is_edge()) {
        EXPECT_NE(g_.edge(b.element.id).name, "t6");
      }
    }
  }
}

TEST_F(Section6Test, Pi8HasNoMatchBecauseOfTrail) {
  // §6.4: π(8,·) would need the (t4,t5,t2,t3) loop twice — not a trail.
  // Force n=8 with an exact quantifier: no results under TRAIL.
  EXPECT_EQ(CountRows(g_,
                      "MATCH TRAIL (a WHERE a.owner='Jay')"
                      "[-[b:Transfer WHERE b.amount>5M]->]{8}"
                      "(a)-[:isLocatedIn]->(c:City|Country)"),
            0u);
  // Without TRAIL, n=8 does match (the loop taken twice).
  EXPECT_EQ(CountRows(g_,
                      "MATCH (a WHERE a.owner='Jay')"
                      "[-[b:Transfer WHERE b.amount>5M]->]{8}"
                      "(a)-[:isLocatedIn]->(c:City|Country)"),
            1u);
}

TEST_F(Section6Test, ReductionMergesAnonymousVariables) {
  // §6.5: reduction strips annotations and merges anonymous variables; the
  // reduced sequence for n=4 has exactly 11 elementary bindings:
  // a b _ b _ b _ b a - c.
  Engine engine(g_);
  Result<MatchOutput> out = engine.Match(kRunningQuery);
  ASSERT_TRUE(out.ok());
  bool found_short = false;
  for (const ResultRow& row : out->rows) {
    const PathBinding& pb = *row.bindings[0];
    if (pb.path.Length() == 5) {
      found_short = true;
      EXPECT_EQ(pb.reduced.size(), 11u);
      // 'a' appears twice: positions 0 and 8.
      int a_id = out->vars->Find("a");
      EXPECT_EQ(pb.ElementsOf(a_id).size(), 2u);
      // Group variable b: four transfers.
      int b_id = out->vars->Find("b");
      EXPECT_EQ(pb.ElementsOf(b_id).size(), 4u);
    }
  }
  EXPECT_TRUE(found_short);
}

}  // namespace
}  // namespace gpml
