#ifndef GPML_EVAL_PARAMS_H_
#define GPML_EVAL_PARAMS_H_

#include <map>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/result.h"
#include "common/value.h"

namespace gpml {

/// Per-execution bindings of the $name placeholders of a prepared query.
/// An ordered map so signature listings and error messages are
/// deterministic; executions only read it (bindings are copied into the
/// execution, so the caller's map may be reused or mutated afterwards).
using Params = std::map<std::string, Value>;

/// One parameter of a prepared query, with the typing constraints
/// inferable from its use sites. Parameters carry no declared types; the
/// constraints below are the ones whose violation would otherwise surface
/// only as a SemanticError (or an every-row UNKNOWN) deep inside matching,
/// so Bind-time validation reports them up front.
struct ParamInfo {
  std::string name;
  bool needs_bool = false;     // Used directly as a predicate (WHERE $flag).
  bool needs_numeric = false;  // Used as an arithmetic operand ($x + 1), or
                               // ordered-compared with a numeric literal
                               // ($x < 5).
  bool needs_string = false;   // Ordered-compared with a string literal
                               // ($x < 'abc').
};

/// The parameter signature a prepared query was compiled against: every
/// $name the pattern (and, for statements, the RETURN items) references,
/// sorted by name, each with its inferred constraints.
struct ParamSignature {
  std::vector<ParamInfo> params;  // Sorted by name, unique.

  const ParamInfo* Find(const std::string& name) const;
  std::vector<std::string> Names() const;
  bool empty() const { return params.empty(); }

  /// Merges another signature in (set union; constraints OR together).
  void Merge(const ParamSignature& other);
};

/// Collects the $parameters of every expression position of a graph
/// pattern: inline node/edge predicates, parenthesized-subpattern WHEREs,
/// and the final postfilter.
ParamSignature CollectPatternParams(const GraphPattern& pattern);

/// Same, plus the RETURN items of a full statement.
ParamSignature CollectStatementParams(const MatchStatement& stmt);

/// The $parameters referenced by a projection list (GQL RETURN items or
/// SQL/PGQ COLUMNS items) — hosts merge this into the pattern signature
/// via PreparedQuery::ExtendSignature.
ParamSignature CollectItemParams(const std::vector<ReturnItem>& items);

/// Splits host-provided bindings for an EXPLAIN ANALYZE execution, which
/// runs the pattern only (RETURN/COLUMNS are parsed, not evaluated):
/// bindings for pattern parameters are kept, bindings for `projection_sig`
/// (projection-only) parameters are dropped, and any other name is an
/// unknown-parameter error — the same diagnosis normal execution gives.
Result<Params> PatternOnlyParams(const ParamSignature& pattern_sig,
                                 const ParamSignature& projection_sig,
                                 const Params& params);

/// Bind-time validation of a Params map against a signature:
///  - a provided name the signature does not contain is an unknown
///    parameter (kInvalidArgument),
///  - a signature name with no binding is a missing parameter
///    (kInvalidArgument),
///  - a non-NULL value violating an inferred constraint is a type mismatch
///    (kInvalidArgument). NULL is a valid binding everywhere — SQL
///    three-valued logic applies at evaluation.
Status ValidateParams(const ParamSignature& sig, const Params& params);

}  // namespace gpml

#endif  // GPML_EVAL_PARAMS_H_
