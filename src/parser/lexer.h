#ifndef GPML_PARSER_LEXER_H_
#define GPML_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace gpml {

/// Token kinds. Keywords are not distinguished here: GPML keywords are
/// case-insensitive and non-reserved, so the parser matches identifier
/// tokens against keywords contextually (a property may be called "where").
enum class TokenKind {
  kEnd,
  kIdent,
  kInt,      // 64-bit integer literal (suffixes K/M expand: 5M = 5000000).
  kDouble,
  kString,   // single-quoted, '' escapes a quote.
  kParam,    // $name parameter placeholder; text holds the bare name.

  kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
  kComma, kDot, kColon, kSemicolon,

  kPipe,          // |
  kPipePlusPipe,  // |+|
  kAmp,           // &
  kBang,          // !
  kPercent,       // %
  kPlus,          // +
  kStar,          // *
  kSlash,         // /
  kQuestion,      // ?
  kEq,            // =
  kNeq,           // <>
  kLt, kLe, kGt, kGe,
  kMinus,         // -
  kArrowRight,    // ->
  kArrowLeft,     // <-
  kLeftTilde,     // <~
  kTildeRight,    // ~>
  kLeftRight,     // <->
  kTilde,         // ~
};

const char* TokenKindName(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // kIdent: the identifier; literals: raw text.
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
  size_t offset = 0;    // Byte offset in the input, for error messages.
  size_t length = 0;    // Byte length of the source text the token spans.

  /// One-past-the-end byte offset of the token in the input.
  size_t end() const { return offset + length; }
};

/// Tokenizes a full GPML statement. Maximal-munch on operators; the parser
/// re-splits `<-` into `<` `-` in expression position (x < -1 vs <-[e]-).
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace gpml

#endif  // GPML_PARSER_LEXER_H_
