// E22 (§7.2): "How does one solve efficiently shortest path queries with
// arbitrary regular expressions, not just ->* as in Dijkstra's algorithm?"
// — the product-automaton answer, swept over graph size and regex
// complexity, against the GPML engine's ANY SHORTEST.

#include <benchmark/benchmark.h>

#include "baseline/rpq_nfa.h"
#include "bench_util.h"

namespace gpml {
namespace {

void BM_Sec72_ProductBfsOnCycle(benchmark::State& state) {
  PropertyGraph g = MakeCycleGraph(static_cast<int>(state.range(0)));
  baseline::RegexPtr regex = *baseline::ParseRegex("Transfer+");
  baseline::RpqNfa nfa = baseline::BuildNfa(*regex);
  NodeId src = g.FindNode("v0");
  NodeId dst = g.FindNode("v" + std::to_string(state.range(0) - 1));
  for (auto _ : state) {
    Result<Path> p = baseline::ShortestRegexPath(g, nfa, src, dst);
    if (!p.ok()) std::abort();
    benchmark::DoNotOptimize(p->Length());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sec72_ProductBfsOnCycle)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Sec72_RegexComplexitySweep(benchmark::State& state) {
  // Larger NFAs multiply the product space.
  static PropertyGraph* g = new PropertyGraph(MakeGridGraph(40, 40));
  const char* regexes[] = {
      "Transfer*",
      "(Transfer/Transfer)*",
      "(Transfer/Transfer/Transfer)*",
      "((Transfer|Transfer/Transfer))*",
  };
  baseline::RegexPtr regex =
      *baseline::ParseRegex(regexes[state.range(0)]);
  baseline::RpqNfa nfa = baseline::BuildNfa(*regex);
  NodeId src = g->FindNode("g0_0");
  NodeId dst = g->FindNode("g39_39");
  for (auto _ : state) {
    Result<Path> p = baseline::ShortestRegexPath(*g, nfa, src, dst);
    if (!p.ok()) std::abort();
    benchmark::DoNotOptimize(p->Length());
  }
  state.counters["nfa_states"] = nfa.num_states;
}
BENCHMARK(BM_Sec72_RegexComplexitySweep)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_Sec72_GpmlAnyShortestEquivalent(benchmark::State& state) {
  // The same question phrased in GPML; the engine's BFS covers general
  // patterns (predicates, group variables), so it pays overhead over the
  // specialized product BFS above.
  PropertyGraph g = MakeCycleGraph(static_cast<int>(state.range(0)));
  std::string query =
      "MATCH ANY SHORTEST (a WHERE a.owner='u0')-[:Transfer]->*"
      "(b WHERE b.owner='u" + std::to_string(state.range(0) - 1) + "')";
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::RunOrDie(g, query));
  }
}
BENCHMARK(BM_Sec72_GpmlAnyShortestEquivalent)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);

void BM_Sec72_ReachabilityOnlyBaseline(benchmark::State& state) {
  // SPARQL endpoint semantics (§3): existence, no path — the cheap end.
  PropertyGraph g = MakeCycleGraph(static_cast<int>(state.range(0)));
  baseline::RegexPtr regex = *baseline::ParseRegex("Transfer+");
  baseline::RpqNfa nfa = baseline::BuildNfa(*regex);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::EvalReachableFrom(g, nfa, 0).size());
  }
}
BENCHMARK(BM_Sec72_ReachabilityOnlyBaseline)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace gpml
