// Planner effectiveness on the Figure 4 fraud-query workload: seeded start
// nodes and matcher steps with the statistics-driven planner on vs off, at
// increasing graph scale. Unlike the timing benchmarks this is a plain
// executable (no google-benchmark dependency) with a checked contract: it
// exits non-zero if the planner fails to strictly reduce both counters or
// changes any row count, so it doubles as a ctest regression gate.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eval/engine.h"
#include "graph/generator.h"

namespace gpml {
namespace {

struct Workload {
  const char* name;
  std::string query;
};

struct Measurement {
  size_t rows = 0;
  EngineMetrics metrics;
  double millis = 0;
};

Measurement Measure(const PropertyGraph& g, const std::string& query,
                    bool use_planner, bool* ok) {
  Measurement m;
  EngineOptions options;
  options.use_planner = use_planner;
  options.metrics = &m.metrics;
  Engine engine(g, options);
  auto start = std::chrono::steady_clock::now();
  Result<MatchOutput> out = engine.Match(query);
  auto end = std::chrono::steady_clock::now();
  m.millis = std::chrono::duration<double, std::milli>(end - start).count();
  if (!out.ok()) {
    std::fprintf(stderr, "query failed (%s): %s\n  %s\n",
                 use_planner ? "planner on" : "planner off",
                 query.c_str(), out.status().ToString().c_str());
    *ok = false;
    return m;
  }
  m.rows = out->rows.size();
  return m;
}

int RunBench() {
  const Workload workloads[] = {
      {"fig4_fraud_any",
       "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
       "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
       "(y:Account WHERE y.isBlocked='yes'), "
       "ANY (x)-[:Transfer]->+(y)"},
      {"fig4_fraud_shortest_witness",
       "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
       "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
       "(y:Account WHERE y.isBlocked='yes'), "
       "ANY SHORTEST p = (x)-[:Transfer]->+(y)"},
      {"fig4_colocation_join",
       "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
       "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
       "(y:Account WHERE y.isBlocked='yes'), "
       "(x)-[t:Transfer]->(y2:Account), (y2)-[t2:Transfer]->(y)"},
  };

  bool ok = true;
  bench::JsonReport report("planner");
  std::printf(
      "%-28s %8s | %10s %10s | %12s %12s | %9s %9s | %6s\n",
      "workload", "accounts", "seeds:off", "seeds:on", "steps:off",
      "steps:on", "ms:off", "ms:on", "rows");
  for (int accounts : {100, 300}) {
    FraudGraphOptions options;
    options.num_accounts = accounts;
    options.num_cities = std::max(2, accounts / 100);
    PropertyGraph g = MakeFraudGraph(options);
    for (const Workload& w : workloads) {
      Measurement off = Measure(g, w.query, /*use_planner=*/false, &ok);
      Measurement on = Measure(g, w.query, /*use_planner=*/true, &ok);
      std::printf(
          "%-28s %8d | %10zu %10zu | %12zu %12zu | %9.2f %9.2f | %6zu\n",
          w.name, accounts, off.metrics.seeded_nodes, on.metrics.seeded_nodes,
          off.metrics.matcher_steps, on.metrics.matcher_steps, off.millis,
          on.millis, on.rows);
      std::string tag =
          std::string(w.name) + "@" + std::to_string(accounts);
      report.Add(tag + ":planner=off", off.millis, off.metrics.seeded_nodes,
                 off.metrics.matcher_steps, off.rows);
      report.Add(tag + ":planner=on", on.millis, on.metrics.seeded_nodes,
                 on.metrics.matcher_steps, on.rows);
      if (on.rows != off.rows) {
        std::fprintf(stderr,
                     "FAIL %s@%d: planner changed row count (%zu vs %zu)\n",
                     w.name, accounts, on.rows, off.rows);
        ok = false;
      }
      if (on.metrics.seeded_nodes >= off.metrics.seeded_nodes) {
        std::fprintf(stderr,
                     "FAIL %s@%d: planner did not reduce seeded nodes "
                     "(%zu vs %zu)\n",
                     w.name, accounts, on.metrics.seeded_nodes,
                     off.metrics.seeded_nodes);
        ok = false;
      }
      if (on.metrics.matcher_steps >= off.metrics.matcher_steps) {
        std::fprintf(stderr,
                     "FAIL %s@%d: planner did not reduce matcher steps "
                     "(%zu vs %zu)\n",
                     w.name, accounts, on.metrics.matcher_steps,
                     off.metrics.matcher_steps);
        ok = false;
      }
    }
  }
  report.Write();
  std::printf(ok ? "planner contract holds: strictly fewer seeds and steps, "
                   "identical rows\n"
                 : "planner contract VIOLATED (see stderr)\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gpml

int main() { return gpml::RunBench(); }
