// Vectorized batch matcher contracts on the fraud-300 workloads, run under
// ctest as a regression gate (see docs/vectorized.md):
//
//  1. Matcher-step throughput (enforced only in optimized, unsanitized
//     builds): on the expansion-heavy fraud-300 graph (300 accounts, 100
//     transfers per account) the batch path must deliver >= 3x matcher
//     throughput, geometric mean over the expansion workloads, and >= 1.5x
//     on every individual workload. Throughput is scalar-equivalent matcher
//     steps per second: the step count the use_batch=false oracle charges
//     for the workload, divided by each configuration's wall time — both
//     sides produce the same rows, the batch side just replaces per-edge
//     interpreter dispatch with block-at-a-time kernels. Measurements
//     interleave batch-off and batch-on repetitions (min of 5 each) so
//     frequency scaling and cache warmth hit both sides alike.
//  2. Byte-identity (always enforced): identical rows in identical order
//     across {batch on/off} x {threads 1, 8} on every workload.
//  3. Batch engagement (always enforced): every expansion workload must
//     actually run vectorized (batch_blocks > 0) with use_batch on, and
//     must not (batch_blocks == 0) with it off.
//
// Results land in BENCH_vector.json / BENCH_vector.prom (GPML_BENCH_OUT).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eval/engine.h"
#include "graph/generator.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GPML_BENCH_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GPML_BENCH_SANITIZED 1
#endif
#endif

namespace gpml {
namespace {

/// The expansion-heavy fraud-300 configuration (bench_csr's graph): every
/// Account node has ~200 Transfer adjacencies next to a handful of
/// isLocatedIn/hasPhone/signInWithIP records, so fixed-hop expansion is
/// dominated by the per-candidate filter work the batch kernels vectorize.
PropertyGraph MakeExpansionGraph() {
  FraudGraphOptions options;
  options.num_accounts = 300;
  options.num_cities = 3;
  options.transfers_per_account = 100;
  return MakeFraudGraph(options);
}

struct Workload {
  const char* name;
  std::string query;
};

/// Batch-eligible fixed-hop workloads: linear chains whose inline WHEREs
/// all compile to predicate kernels (comparisons against literals).
const Workload kExpansionWorkloads[] = {
    // The batch advantage is in the gather + filter cascade, not in row
    // materialization (survivor States cost the same on both paths), so
    // the gate workloads pair large candidate volumes with selective
    // kernels: many adjacencies gathered per block, few rows emitted.
    // Amounts are uniform over 1M..12M, so `> 11000000` keeps ~1/12.
    {"two_hop_amount_kernels",
     "MATCH (x:Account WHERE x.isBlocked='yes')-[t:Transfer WHERE "
     "t.amount > 9000000]->(y:Account)-[u:Transfer WHERE "
     "u.amount > 9000000]->(z:Account WHERE z.isBlocked='yes')"},
    {"blocked_two_hop",
     "MATCH (x:Account WHERE x.isBlocked='yes')-[:Transfer]->(y:Account)"
     "-[u:Transfer WHERE u.amount > 11000000]->"
     "(z:Account WHERE z.isBlocked='yes')"},
    {"transfer_cycle",
     "MATCH (x:Account)-[:Transfer]->(y:Account)-[:Transfer]->(x)"},
    {"cycle_amount_kernel",
     "MATCH (x:Account)-[t:Transfer WHERE t.amount > 11000000]->(y:Account)"
     "-[:Transfer]->(x)"},
};

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<std::string> CanonRows(const MatchOutput& out,
                                   const PropertyGraph& g) {
  std::vector<std::string> rows;
  rows.reserve(out.rows.size());
  for (const ResultRow& row : out.rows) {
    std::string s;
    for (const auto& pb : row.bindings) {
      s += pb->ToString(g, *out.vars);
      s += " | ";
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

struct Measurement {
  std::vector<std::string> rows;
  EngineMetrics metrics;
  double millis = 0;
};

/// One timed repetition; folds the wall time into the running minimum.
bool MeasureOnce(Engine& engine, const PropertyGraph& g,
                 const std::string& query, int rep, Measurement* m) {
  auto start = std::chrono::steady_clock::now();
  Result<MatchOutput> out = engine.Match(query);
  double ms = MillisSince(start);
  if (!out.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n", query.c_str(),
                 out.status().ToString().c_str());
    return false;
  }
  if (rep == 0 || ms < m->millis) m->millis = ms;
  if (rep == 0) m->rows = CanonRows(*out, g);
  return true;
}

bool ThroughputGateActive() {
#ifdef GPML_BENCH_SANITIZED
  std::printf("throughput gate: SKIPPED (sanitizer build distorts timings)\n");
  return false;
#elif !defined(NDEBUG)
  std::printf("throughput gate: SKIPPED (unoptimized build)\n");
  return false;
#else
  return true;
#endif
}

int RunBench() {
  bool ok = true;
  bench::JsonReport report("vector");
  PropertyGraph g = MakeExpansionGraph();
  std::printf("expansion graph: %s\n", g.Summary().c_str());

  // --- 1. matcher-step throughput + batch engagement ----------------------
  {
    const bool enforce = ThroughputGateActive();
    double log_ratio_sum = 0;
    size_t measured = 0;

    std::printf("%-28s | %10s %10s | %12s %12s | %7s\n", "workload", "ms:off",
                "ms:on", "steps/s:off", "steps/s:on", "ratio");
    for (const Workload& w : kExpansionWorkloads) {
      EngineOptions base;
      base.use_planner = false;  // Pure matcher comparison.
      base.num_threads = 1;
      Measurement off, on;
      base.use_batch = false;
      base.metrics = &off.metrics;
      Engine scalar_engine(g, base);
      base.use_batch = true;
      base.metrics = &on.metrics;
      Engine batch_engine(g, base);
      // Warm both plan caches, then interleave the timed repetitions so
      // frequency scaling and cache warmth hit both sides alike. A gate
      // failure on an earlier workload must not stop the measurements, so
      // execution errors get their own flag.
      bool ran = MeasureOnce(scalar_engine, g, w.query, 0, &off) &&
                 MeasureOnce(batch_engine, g, w.query, 0, &on);
      for (int rep = 0; ran && rep < 5; ++rep) {
        ran = MeasureOnce(scalar_engine, g, w.query, rep, &off) &&
              MeasureOnce(batch_engine, g, w.query, rep, &on);
      }
      if (!ran) {
        ok = false;
        break;
      }

      // Scalar-equivalent steps per second: same logical work (the scalar
      // oracle's step count), each side's own wall time.
      double work = static_cast<double>(off.metrics.matcher_steps);
      double thr_off = work / (off.millis / 1e3);
      double thr_on = work / (on.millis / 1e3);
      double ratio = on.millis > 0 ? off.millis / on.millis : 0;
      std::printf("%-28s | %10.3f %10.3f | %12.3g %12.3g | %6.2fx\n", w.name,
                  off.millis, on.millis, thr_off, thr_on, ratio);
      report.Add(std::string(w.name) + ":batch=off", off.millis,
                 off.metrics.seeded_nodes, off.metrics.matcher_steps,
                 off.rows.size());
      report.Add(std::string(w.name) + ":batch=on", on.millis,
                 on.metrics.seeded_nodes, on.metrics.matcher_steps,
                 on.rows.size(),
                 {{"throughput_ratio", ratio},
                  {"batch_blocks", static_cast<double>(on.metrics.batch_blocks)},
                  {"survivor_rate",
                   on.metrics.batch_candidates > 0
                       ? static_cast<double>(on.metrics.batch_survivors) /
                             static_cast<double>(on.metrics.batch_candidates)
                       : 0}});

      if (off.rows != on.rows) {
        std::fprintf(stderr, "FAIL %s: batch changed rows (%zu vs %zu)\n",
                     w.name, on.rows.size(), off.rows.size());
        ok = false;
      }
      if (on.metrics.batch_blocks == 0) {
        std::fprintf(stderr, "FAIL %s: batch path did not engage\n", w.name);
        ok = false;
      }
      if (off.metrics.batch_blocks != 0) {
        std::fprintf(stderr, "FAIL %s: scalar oracle ran batched\n", w.name);
        ok = false;
      }
      if (enforce && ratio < 1.5) {
        std::fprintf(stderr, "FAIL %s: batch throughput ratio %.2fx < 1.5x\n",
                     w.name, ratio);
        ok = false;
      }
      log_ratio_sum += std::log(std::max(ratio, 1e-9));
      ++measured;
    }
    if (ok && measured > 0) {
      double geomean = std::exp(log_ratio_sum / static_cast<double>(measured));
      std::printf("batch throughput: %.2fx geometric mean (gate: 3x)\n",
                  geomean);
      report.Add("geomean", 0, 0, 0, 0, {{"throughput_ratio", geomean}});
      if (enforce && geomean < 3.0) {
        std::fprintf(stderr,
                     "FAIL batch throughput %.2fx < 3x geometric mean\n",
                     geomean);
        ok = false;
      }
    }
  }

  // --- 2. byte-identity matrix --------------------------------------------
  // Identical rows in identical order across {batch on/off} x {threads}:
  // the drain order replays the scalar DFS accept order exactly, so the
  // batch matcher is held to the byte-identity bar, not just multiset
  // equality (docs/vectorized.md).
  {
    for (const Workload& w : kExpansionWorkloads) {
      std::vector<std::string> baseline;
      bool have_baseline = false;
      for (bool batch : {false, true}) {
        for (size_t threads : {size_t{1}, size_t{8}}) {
          EngineOptions base;
          base.use_batch = batch;
          base.num_threads = threads;
          // Force real sharding even on short seed lists.
          base.matcher.min_seeds_per_shard = 1;
          Measurement m;
          base.metrics = &m.metrics;
          Engine engine(g, base);
          if (!MeasureOnce(engine, g, w.query, 0, &m)) {
            ok = false;
            break;
          }
          if (!have_baseline) {
            baseline = m.rows;
            have_baseline = true;
          } else if (m.rows != baseline) {
            std::fprintf(stderr,
                         "FAIL %s: rows differ at batch=%d threads=%zu "
                         "(%zu vs %zu rows)\n",
                         w.name, batch ? 1 : 0, threads, m.rows.size(),
                         baseline.size());
            ok = false;
          }
        }
      }
      if (have_baseline) {
        std::printf(
            "byte-identity %-28s: %5zu rows identical over "
            "{batch on/off} x {threads 1,8}\n",
            w.name, baseline.size());
      }
    }
  }

  report.Write();
  std::printf(ok ? "vector contract holds: faster expansion, identical rows, "
                   "batch engagement verified\n"
                 : "vector contract VIOLATED (see stderr)\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gpml

int main() { return gpml::RunBench(); }
