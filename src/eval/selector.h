#ifndef GPML_EVAL_SELECTOR_H_
#define GPML_EVAL_SELECTOR_H_

#include <vector>

#include "ast/ast.h"
#include "eval/binding.h"

namespace gpml {

/// Applies a selector (Figure 8) to deduplicated path bindings: partitions
/// by endpoint pair (path start/end node) and keeps a finite subset per
/// partition. `bindings` MUST be ordered by nondecreasing path length;
/// within a length, enumeration order resolves the standard's permitted
/// non-determinism (ANY / ANY k / SHORTEST k), making results reproducible.
///
/// Selectors always run after deduplication and after restrictors (§5.1,
/// §6.5).
void ApplySelector(const Selector& selector,
                   std::vector<PathBinding>* bindings);

}  // namespace gpml

#endif  // GPML_EVAL_SELECTOR_H_
