#ifndef GPML_AST_PRINT_H_
#define GPML_AST_PRINT_H_

#include <string>

#include "ast/ast.h"

namespace gpml {

/// Renders AST back to GPML surface syntax. Round-trips with the parser
/// (parse(Print(x)) is structurally equal to x), which the parser tests
/// exercise; also used to display normalized patterns (§6.2).
std::string Print(const NodePattern& n);
std::string Print(const EdgePattern& e);
std::string Print(const PathElement& e);
std::string Print(const PathPattern& p);
std::string Print(const PathPatternDecl& d);
std::string Print(const GraphPattern& g);
std::string Print(const MatchStatement& m);

}  // namespace gpml

#endif  // GPML_AST_PRINT_H_
