// End-to-end reproduction of every worked example in the paper (DESIGN.md
// experiments E3–E16) on the Figure 1 graph. Where the paper's prose and its
// own data disagree, the graph-consistent answer is asserted and the
// discrepancy is documented in EXPERIMENTS.md (two cases: the "Natalia"
// owner name in §5.1 and the §5.2 shortest path overlooking edge t6).

#include <gtest/gtest.h>

#include "graph/sample_graph.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::CountRows;
using testing_util::Paths;
using testing_util::Rows;

class PaperExamplesTest : public ::testing::Test {
 protected:
  PaperExamplesTest() : g_(BuildPaperGraph()) {}
  PropertyGraph g_;
};

// --------------------------------------------------------------- Figure 3 --

TEST_F(PaperExamplesTest, Fig3aBlockedAccounts) {
  EXPECT_EQ(Rows(g_, "MATCH (x:Account WHERE x.isBlocked='yes')", "x"),
            (std::vector<std::string>{"a4"}));
}

TEST_F(PaperExamplesTest, Fig3bTransferBlockedToUnblocked) {
  // As drawn (date 3/1/2020, from a blocked account): no such transfer —
  // the only blocked account spends on 4/1/2020.
  EXPECT_EQ(CountRows(g_,
                      "MATCH (x:Account WHERE x.isBlocked='yes')"
                      "-[e:Transfer WHERE e.date='3/1/2020']->"
                      "(y:Account WHERE y.isBlocked='no')"),
            0u);
  // With the date of Jay's actual transfer, t4 matches.
  EXPECT_EQ(Rows(g_,
                 "MATCH (x:Account WHERE x.isBlocked='yes')"
                 "-[e:Transfer WHERE e.date='4/1/2020']->"
                 "(y:Account WHERE y.isBlocked='no')",
                 "x, e, y"),
            (std::vector<std::string>{"a4|t4|a6"}));
}

TEST_F(PaperExamplesTest, Fig3cTransferPathsIntoBlockedAccount) {
  // Paths of transfers from a non-blocked into the blocked account.
  std::vector<std::string> rows =
      Rows(g_,
           "MATCH TRAIL (x:Account WHERE x.isBlocked='no')"
           "-[:Transfer]->+(y:Account WHERE y.isBlocked='yes')",
           "x, y");
  ASSERT_FALSE(rows.empty());
  for (const std::string& r : rows) {
    EXPECT_EQ(r.substr(r.find('|') + 1), "a4") << r;
  }
}

// --------------------------------------------------------------- Figure 4 --

TEST_F(PaperExamplesTest, Fig4AnkhMorporkFraudPairs) {
  // Owners of a non-blocked and a blocked account, both located in
  // Ankh-Morpork, connected by a chain of transfers: (Aretha, Jay) and
  // (Dave, Jay).
  EXPECT_EQ(
      Rows(g_,
           "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
           "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
           "(y:Account WHERE y.isBlocked='yes'), "
           "ANY (x)-[:Transfer]->+(y)",
           "x.owner, y.owner"),
      (std::vector<std::string>{"Aretha|Jay", "Dave|Jay"}));
}

TEST_F(PaperExamplesTest, Fig4CypherStyleWithPathVariable) {
  // The Cypher rendition returns the path too.
  std::vector<std::string> rows =
      Rows(g_,
           "MATCH (a:Account WHERE a.isBlocked='no')-[:isLocatedIn]->"
           "(c:City WHERE c.name='Ankh-Morpork')<-[:isLocatedIn]-"
           "(b:Account WHERE b.isBlocked='yes'), "
           "ANY SHORTEST p = (a)-[:Transfer]->+(b)",
           "a.owner, b.owner, p");
  EXPECT_EQ(rows, (std::vector<std::string>{
                      "Aretha|Jay|path(a2,t3,a4)",
                      "Dave|Jay|path(a6,t5,a3,t2,a2,t3,a4)"}));
}

// ------------------------------------------------------------------- §4.1 --

TEST_F(PaperExamplesTest, Sec41AllNodes) {
  EXPECT_EQ(CountRows(g_, "MATCH (x)"), 14u);
}

TEST_F(PaperExamplesTest, Sec41AccountNodes) {
  EXPECT_EQ(CountRows(g_, "MATCH (x:Account)"), 6u);
}

TEST_F(PaperExamplesTest, Sec41AccountOrIp) {
  EXPECT_EQ(CountRows(g_, "MATCH (x:Account|IP)"), 8u);
}

TEST_F(PaperExamplesTest, Sec41NoUnlabelledNodes) {
  EXPECT_EQ(CountRows(g_, "MATCH (x:!%)"), 0u);
}

TEST_F(PaperExamplesTest, Sec41InlineVersusPostfixWhere) {
  EXPECT_EQ(Rows(g_, "MATCH (x:Account WHERE x.isBlocked='no')", "x"),
            Rows(g_, "MATCH (x:Account) WHERE x.isBlocked='no'", "x"));
}

TEST_F(PaperExamplesTest, Sec41AllDirectedEdges) {
  // -[e]-> matches every directed edge: 8 + 6 + 2 = 16.
  EXPECT_EQ(CountRows(g_, "MATCH -[e]->"), 16u);
}

TEST_F(PaperExamplesTest, Sec41AllUndirectedEdges) {
  // Six hasPhone edges, each traversable from both endpoints: the two
  // traversals differ in their (anonymous) endpoint bindings, so the
  // reduced-binding set has 12 entries while e covers exactly the 6 edges.
  EXPECT_EQ(CountRows(g_, "MATCH ~[e]~"), 12u);
  std::vector<std::string> edges = Rows(g_, "MATCH ~[e]~", "e");
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  EXPECT_EQ(edges, (std::vector<std::string>{"hp1", "hp2", "hp3", "hp4",
                                             "hp5", "hp6"}));
}

TEST_F(PaperExamplesTest, Sec41BigTransfers) {
  EXPECT_EQ(Rows(g_, "MATCH -[e:Transfer WHERE e.amount>5M]->", "e"),
            (std::vector<std::string>{"t1", "t2", "t3", "t4", "t5", "t7",
                                      "t8"}));
}

TEST_F(PaperExamplesTest, Sec41AnonymousMiddleNode) {
  // MATCH (x)-[:Transfer]->()-[:isLocatedIn]->(y)
  std::vector<std::string> rows =
      Rows(g_, "MATCH (x)-[:Transfer]->()-[:isLocatedIn]->(y)", "x, y");
  // Every transfer target has a location; e.g. t1's target a3 is in c1.
  EXPECT_NE(std::find(rows.begin(), rows.end(), "a1|c1"), rows.end());
  EXPECT_EQ(rows.size(), 8u);
}

// ------------------------------------------------------------------- §4.2 --

TEST_F(PaperExamplesTest, Sec42SourceAndTargetOfEveryEdge) {
  EXPECT_EQ(CountRows(g_, "MATCH (x)-[e]->(y)"), 16u);
  // Undirected: every edge twice (once per traversal).
  EXPECT_EQ(CountRows(g_, "MATCH (x)-[e]-(y)"), 16u * 2 + 6u * 2);
}

TEST_F(PaperExamplesTest, Sec42TransfersIntoAretha) {
  EXPECT_EQ(
      Rows(g_, "MATCH (y WHERE y.owner='Aretha')<-[e:Transfer]-(x)", "e, x"),
      (std::vector<std::string>{"t2|a3"}));
}

TEST_F(PaperExamplesTest, Sec42TwoHopPathsIncludePaperBinding) {
  // §4.2 lists s=a1, e=t1, m=a3, f=t2, t=a2 among the results.
  std::vector<std::string> rows =
      Rows(g_, "MATCH (s)-[e]->(m)-[f]->(t)", "s, e, m, f, t");
  EXPECT_NE(std::find(rows.begin(), rows.end(), "a1|t1|a3|t2|a2"),
            rows.end());
}

TEST_F(PaperExamplesTest, Sec42PhoneThenBigTransfer) {
  // Substantial transfers from accounts reachable over a phone edge; the
  // paper uses a blocked phone, which Figure 1 does not contain — with the
  // filter lifted the pattern yields the hasPhone×Transfer combinations.
  std::vector<std::string> rows =
      Rows(g_,
           "MATCH (p:Phone)~[e:hasPhone]~(a1:Account)"
           "-[t:Transfer WHERE t.amount>1M]->(a2)",
           "p, a1, t, a2");
  EXPECT_NE(std::find(rows.begin(), rows.end(), "p1|a1|t1|a3"), rows.end());
  EXPECT_NE(std::find(rows.begin(), rows.end(), "p2|a3|t2|a2"), rows.end());
  // No blocked phone exists: the verbatim query returns nothing.
  EXPECT_EQ(CountRows(g_,
                      "MATCH (p:Phone WHERE p.isBlocked='yes')~[e:hasPhone]~"
                      "(a1:Account)-[t:Transfer WHERE t.amount>1M]->(a2)"),
            0u);
}

TEST_F(PaperExamplesTest, Sec42SamePhoneTransfers) {
  // §4.2's closing example: transfers between accounts sharing a phone —
  // exactly two bindings.
  EXPECT_EQ(Rows(g_,
                 "MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->"
                 "(d:Account)~[:hasPhone]~(p)",
                 "p, s, t, d"),
            (std::vector<std::string>{"p1|a5|t8|a1", "p2|a3|t2|a2"}));
}

// ------------------------------------------------------------------- §5.1 --

TEST_F(PaperExamplesTest, Sec51TrailDaveToAretha) {
  EXPECT_EQ(Paths(g_,
                  "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
                  "(b WHERE b.owner='Aretha')"),
            (std::vector<std::string>{
                "path(a6,t5,a3,t2,a2)",
                "path(a6,t5,a3,t7,a5,t8,a1,t1,a3,t2,a2)",
                "path(a6,t6,a5,t8,a1,t1,a3,t2,a2)"}));
}

TEST_F(PaperExamplesTest, Sec51AnyShortestDaveToAretha) {
  EXPECT_EQ(Paths(g_,
                  "MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')"
                  "-[t:Transfer]->*(b WHERE b.owner='Aretha')"),
            (std::vector<std::string>{"path(a6,t5,a3,t2,a2)"}));
}

TEST_F(PaperExamplesTest, Sec51AllShortestTrailTwoLegs) {
  EXPECT_EQ(
      Paths(g_,
            "MATCH ALL SHORTEST TRAIL p = (a WHERE a.owner='Dave')"
            "-[t:Transfer]->*(b WHERE b.owner='Aretha')-[r:Transfer]->*"
            "(c WHERE c.owner='Mike')"),
      (std::vector<std::string>{
          "path(a6,t5,a3,t2,a2,t3,a4,t4,a6,t6,a5,t8,a1,t1,a3)",
          "path(a6,t6,a5,t8,a1,t1,a3,t2,a2,t3,a4,t4,a6,t5,a3)"}));
}

TEST_F(PaperExamplesTest, Sec51CharlesMikeScottSolution) {
  // The paper writes owner 'Natalia'; the displayed solution pins a5 =
  // Charles (EXPERIMENTS.md). The quoted path is among the solutions and is
  // shortest in its partition.
  const std::string body =
      "p = (x:Account WHERE x.owner='Charles')->{1,10}"
      "(q:Account WHERE q.owner='Mike')->{1,10}"
      "(r:Account WHERE r.owner='Scott')";
  std::vector<std::string> all = Paths(g_, "MATCH " + body);
  EXPECT_NE(std::find(all.begin(), all.end(),
                      "path(a5,t8,a1,t1,a3,t7,a5,t8,a1)"),
            all.end());
  std::vector<std::string> shortest =
      Paths(g_, "MATCH ALL SHORTEST " + body);
  EXPECT_EQ(shortest, (std::vector<std::string>{
                          "path(a5,t8,a1,t1,a3,t7,a5,t8,a1)"}));
  // §5.1: the solution repeats t8, so TRAIL/SIMPLE/ACYCLIC all empty it.
  EXPECT_TRUE(Paths(g_, "MATCH TRAIL " + body).empty());
  EXPECT_TRUE(Paths(g_, "MATCH SIMPLE " + body).empty());
  EXPECT_TRUE(Paths(g_, "MATCH ACYCLIC " + body).empty());
}

// ------------------------------------------------------------------- §5.2 --

TEST_F(PaperExamplesTest, Sec52PrefilterFindsBlockedIntermediate) {
  // ALL SHORTEST Scott ->+ blocked ->+ Charles with the predicate as a
  // prefilter. q must bind to a4 (Jay). NOTE: the paper prints a 6-edge
  // answer that overlooks edge t6 (a6->a5); the graph-consistent shortest
  // is the 5-edge path through t6 — see EXPERIMENTS.md.
  std::vector<std::string> rows =
      Rows(g_,
           "MATCH ALL SHORTEST p = (x:Account WHERE x.owner='Scott')->+"
           "(q:Account WHERE q.isBlocked='yes')->+"
           "(r:Account WHERE r.owner='Charles')",
           "p, q");
  EXPECT_EQ(rows, (std::vector<std::string>{
                      "path(a1,t1,a3,t2,a2,t3,a4,t4,a6,t6,a5)|a4"}));
}

TEST_F(PaperExamplesTest, Sec52PostfilterVariantIsEmpty) {
  // §5.2: placing the blocked-check in the final WHERE filters out the
  // selected shortest path (which passes through a3, not blocked).
  EXPECT_EQ(CountRows(g_,
                      "MATCH ALL SHORTEST (x:Account WHERE x.owner='Scott')"
                      "->+(q:Account)->+(r:Account WHERE r.owner='Charles') "
                      "WHERE q.isBlocked='yes'"),
            0u);
  // And the unfiltered selection is indeed the 2-edge path with q = a3.
  EXPECT_EQ(Rows(g_,
                 "MATCH ALL SHORTEST p = (x:Account WHERE x.owner='Scott')"
                 "->+(q:Account)->+(r:Account WHERE r.owner='Charles')",
                 "p, q"),
            (std::vector<std::string>{"path(a1,t1,a3,t7,a5)|a3"}));
}

// ------------------------------------------------------------------- §5.3 --

TEST_F(PaperExamplesTest, Sec53PostfilterQuotientIsEmptyButTerminates) {
  EXPECT_EQ(CountRows(g_,
                      "MATCH ALL SHORTEST (x)-[e]->*(y) "
                      "WHERE COUNT(e.*)/(COUNT(e.*)+1) > 1"),
            0u);
}

TEST_F(PaperExamplesTest, Sec53TrailPrefilterQuotientIsEmpty) {
  EXPECT_EQ(CountRows(g_,
                      "MATCH ALL SHORTEST [TRAIL (x)-[e]->*(y) WHERE "
                      "COUNT(e.*)/(COUNT(e.*)+1) > 1]"),
            0u);
}

TEST_F(PaperExamplesTest, Sec53BoundedPrefilterQuotientIsEmpty) {
  EXPECT_EQ(CountRows(g_,
                      "MATCH ALL SHORTEST [(x)-[e]->{0,10}(y) WHERE "
                      "COUNT(e.*)/(COUNT(e.*)+1) > 1]"),
            0u);
}

}  // namespace
}  // namespace gpml
