#ifndef GPML_GQL_GRAPH_PROJECTION_H_
#define GPML_GQL_GRAPH_PROJECTION_H_

#include "common/result.h"
#include "eval/engine.h"
#include "graph/property_graph.h"

namespace gpml {

/// GQL graph-shaped output (§6.6): every path binding defines a subgraph of
/// the input graph; the projection of a match result is the union of those
/// subgraphs — all bound nodes and edges, plus the endpoints of bound edges
/// so the result is a well-formed property graph. Labels and properties are
/// carried over unchanged.
Result<PropertyGraph> ProjectGraph(const PropertyGraph& source,
                                   const MatchOutput& output);

}  // namespace gpml

#endif  // GPML_GQL_GRAPH_PROJECTION_H_
