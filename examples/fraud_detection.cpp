// Fraud detection on the paper's banking graph (Figure 1) and on a scaled
// synthetic clone: the queries the paper's introduction motivates —
// suspicious transfer chains, shared devices, blocked counterparties.

#include <cstdio>
#include <string>

#include "catalog/catalog.h"
#include "gql/session.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"

namespace {

void Run(const gpml::Session& session, const char* title,
         const std::string& query) {
  std::printf("--- %s\ngpml> %s\n", title, query.c_str());
  gpml::Result<gpml::Table> table = session.Execute(query);
  if (!table.ok()) {
    std::printf("  error: %s\n\n", table.status().ToString().c_str());
    return;
  }
  gpml::Table t = *table;
  t.SortRows();
  std::printf("%s(%zu rows)\n\n", t.ToString().c_str(), t.num_rows());
}

}  // namespace

int main() {
  gpml::Catalog catalog;
  (void)catalog.AddGraph("bank", gpml::BuildPaperGraph());

  gpml::FraudGraphOptions big_options;
  big_options.num_accounts = 2000;
  big_options.transfers_per_account = 4;
  (void)catalog.AddGraph("bank_large", gpml::MakeFraudGraph(big_options));

  gpml::Session session(catalog);
  (void)session.UseGraph("bank");

  // Figure 4: fraudulent account pairs in Ankh-Morpork.
  Run(session, "Figure 4: co-located blocked/unblocked pairs",
      "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
      "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
      "(y:Account WHERE y.isBlocked='yes'), "
      "ANY SHORTEST p = (x)-[:Transfer]->+(y) "
      "RETURN x.owner AS suspect, y.owner AS blocked, p AS chain");

  // Money that flows back to its origin (§4.2 cycles).
  Run(session, "Round-tripping money (cycles)",
      "MATCH SIMPLE p = (a:Account)-[:Transfer]->+(a) "
      "RETURN a.owner AS owner, PATH_LENGTH(p) AS hops, p");

  // Shared phones across transfer counterparties (§4.2).
  Run(session, "Transfers between phone-sharing accounts",
      "MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->"
      "(d:Account)~[:hasPhone]~(p) "
      "RETURN p AS phone, s.owner AS sender, d.owner AS receiver, "
      "t.amount AS amount");

  // High-value chains with a total threshold (§4.4 group aggregates).
  Run(session, "Chains of large transfers totalling > 25M",
      "MATCH (a:Account) [()-[t:Transfer WHERE t.amount>5M]->()]{2,4} "
      "(b:Account) WHERE SUM(t.amount) > 25M "
      "RETURN a.owner AS src, b.owner AS dst, COUNT(t) AS hops, "
      "SUM(t.amount) AS total");

  // The §6 running example.
  Run(session, "Section 6: Jay's laundering loops and his location",
      "MATCH TRAIL (a WHERE a.owner='Jay')"
      "[-[b:Transfer WHERE b.amount>5M]->]+"
      "(a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)] "
      "RETURN a.owner AS owner, LISTAGG(b, ' -> ') AS loop_, c AS place");

  // Scale: the same Figure 4 query on 2000 accounts.
  (void)session.UseGraph("bank_large");
  Run(session, "Figure 4 at scale (2000 accounts)",
      "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
      "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
      "(y:Account WHERE y.isBlocked='yes'), "
      "ANY (x)-[:Transfer]->+(y) "
      "RETURN COUNT(x) AS witnesses, x.owner AS suspect, y.owner AS blocked");

  return 0;
}
