#ifndef GPML_EVAL_NFA_H_
#define GPML_EVAL_NFA_H_

#include <vector>

#include "ast/ast.h"
#include "common/result.h"
#include "eval/binding.h"

namespace gpml {

/// Sentinel for Instr::edge_label_sym: no single CSR partition covers this
/// edge step; expansion scans the full adjacency list.
inline constexpr Symbol kNoLabelPartition = 0xfffffffeu;

/// One instruction of the compiled pattern program. The matcher interprets
/// these over the graph: kEdgeStep is the only instruction that consumes a
/// graph edge; everything else is "epsilon" work (checks, bookkeeping,
/// forks). Quantifiers compile into copies plus a guarded loop, which keeps
/// the runtime a plain NFA — the execution-model expansion of §6.3 made
/// lazy.
struct Instr {
  enum class Op {
    kNodeCheck,   // Match current node against `node`; bind var.
    kEdgeStep,    // Traverse one admissible edge; bind var.
    kSplit,       // Fork: continue at next and at alt.
    kJump,        // Continue at next.
    kFrameBegin,  // Push an aggregation frame; quantifier frames also bump
                  // the iteration serial at `depth` (§6 superscripts).
    kWhereCheck,  // Evaluate `where` against the innermost frame.
    kFrameEnd,    // Pop frame; guarded loop frames require edge progress.
    kScopeBegin,  // Open restrictor scope `scope_id`.
    kScopeEnd,    // Close restrictor scope (SIMPLE finalization).
    kTag,         // Record multiset-alternation provenance (§4.5).
    kAccept,      // Pattern complete.
  };

  Op op = Op::kAccept;
  int next = -1;
  int alt = -1;                      // kSplit only.
  const NodePattern* node = nullptr;
  const EdgePattern* edge = nullptr;
  int var = -1;                      // Interned variable id.
  /// Graph-bound acceleration slots, filled by BindProgramToGraph (and left
  /// at their defaults on unbound programs, which then run the legacy
  /// string-matching paths):
  int lpred = -1;                    // kNodeCheck/kEdgeStep: index into
                                     // Program::label_preds; -1 = no label
                                     // constraint or unbound program.
  Symbol edge_label_sym = kNoLabelPartition;  // kEdgeStep: CSR partition to
                                     // scan; kNoLabelPartition = full
                                     // adjacency scan, kInvalidSymbol = the
                                     // label is unknown to the graph (empty
                                     // expansion).
  bool edge_prefiltered = false;     // kEdgeStep: bucket membership already
                                     // implies the label expression (plain
                                     // single-name labels), skip the check.
  int depth = 0;                     // Quantifier depth of this position.
  bool quant_frame = false;          // kFrameBegin: iteration frame.
  bool guard_progress = false;       // kFrameEnd: fail on zero-edge loop.
  ExprPtr where;                     // kWhereCheck.
  int scope_id = -1;                 // kScopeBegin/kScopeEnd.
  Restrictor restrictor = Restrictor::kNone;  // kScopeBegin.
  int32_t tag = 0;                   // kTag.
};

/// A compiled top-level path pattern.
struct Program {
  std::vector<Instr> code;
  int start = 0;
  int max_depth = 0;   // Deepest quantifier nesting (serial array size).
  int num_scopes = 0;
  Selector selector;
  int path_var = -1;   // Interned id of the path variable, -1 if none.
  bool has_unbounded = false;  // Any {m,} quantifier in the pattern.
  PathPatternPtr root; // Keeps the normalized AST alive (instrs borrow).

  /// Label expressions compiled against one graph's symbol table (see
  /// BindProgramToGraph); indexed by Instr::lpred. Empty on unbound
  /// programs.
  std::vector<CompiledLabelPred> label_preds;

  std::string ToString() const;  // Disassembly for tests/debugging.
};

/// Compiles one normalized path declaration. The declaration-level
/// restrictor becomes scope 0 around the whole pattern; the selector is
/// carried as metadata for the matcher.
Result<Program> CompilePattern(const PathPatternDecl& decl,
                               const VarTable& vars);

/// Binds `program` to `g`'s interned storage layer: every node/edge label
/// expression compiles once into a symbol-id predicate, and every edge step
/// resolves the CSR partition it can scan — the most selective required
/// label conjunct, or the exact partition (no per-edge label re-check) when
/// the expression is a single plain name. Programs bound to one graph must
/// only run over that graph; the plan cache guarantees this by keying
/// entries on the graph identity token. Unbound programs still execute
/// correctly through the legacy string paths.
void BindProgramToGraph(Program* program, const PropertyGraph& g);

}  // namespace gpml

#endif  // GPML_EVAL_NFA_H_
