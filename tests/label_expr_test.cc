#include "ast/label_expr.h"

#include <gtest/gtest.h>

namespace gpml {
namespace {

// E5: label expressions of §4.1 — &, |, !, %, grouping.

std::vector<std::string> L(std::initializer_list<const char*> names) {
  std::vector<std::string> out(names.begin(), names.end());
  // ElementData stores labels sorted.
  std::sort(out.begin(), out.end());
  return out;
}

TEST(LabelExprTest, PlainName) {
  LabelExprPtr e = LabelExpr::Name("Account");
  EXPECT_TRUE(e->Matches(L({"Account"})));
  EXPECT_TRUE(e->Matches(L({"Account", "Premium"})));
  EXPECT_FALSE(e->Matches(L({"IP"})));
  EXPECT_FALSE(e->Matches(L({})));
}

TEST(LabelExprTest, Disjunction) {
  // (x:Account|IP) from §4.1.
  LabelExprPtr e =
      LabelExpr::Or(LabelExpr::Name("Account"), LabelExpr::Name("IP"));
  EXPECT_TRUE(e->Matches(L({"Account"})));
  EXPECT_TRUE(e->Matches(L({"IP"})));
  EXPECT_FALSE(e->Matches(L({"Phone"})));
}

TEST(LabelExprTest, Conjunction) {
  // City&Country matches only c2-style nodes.
  LabelExprPtr e =
      LabelExpr::And(LabelExpr::Name("City"), LabelExpr::Name("Country"));
  EXPECT_TRUE(e->Matches(L({"City", "Country"})));
  EXPECT_FALSE(e->Matches(L({"Country"})));
  EXPECT_FALSE(e->Matches(L({"City"})));
}

TEST(LabelExprTest, WildcardMatchesAnyLabelled) {
  LabelExprPtr e = LabelExpr::Wildcard();
  EXPECT_TRUE(e->Matches(L({"Account"})));
  EXPECT_FALSE(e->Matches(L({})));
}

TEST(LabelExprTest, NotWildcardMatchesUnlabelled) {
  // (:!%) matches nodes that have no labels (§4.1).
  LabelExprPtr e = LabelExpr::Not(LabelExpr::Wildcard());
  EXPECT_TRUE(e->Matches(L({})));
  EXPECT_FALSE(e->Matches(L({"Account"})));
}

TEST(LabelExprTest, Negation) {
  LabelExprPtr e = LabelExpr::Not(LabelExpr::Name("Account"));
  EXPECT_FALSE(e->Matches(L({"Account"})));
  EXPECT_TRUE(e->Matches(L({"IP"})));
  EXPECT_TRUE(e->Matches(L({})));
}

TEST(LabelExprTest, NestedExpression) {
  // !(City&Country) | Phone
  LabelExprPtr e = LabelExpr::Or(
      LabelExpr::Not(
          LabelExpr::And(LabelExpr::Name("City"), LabelExpr::Name("Country"))),
      LabelExpr::Name("Phone"));
  EXPECT_FALSE(e->Matches(L({"City", "Country"})));
  EXPECT_TRUE(e->Matches(L({"City"})));
  EXPECT_TRUE(e->Matches(L({"City", "Country", "Phone"})));
}

TEST(LabelExprTest, PrintingMinimalParens) {
  EXPECT_EQ(LabelExpr::Name("A")->ToString(), "A");
  EXPECT_EQ(LabelExpr::Wildcard()->ToString(), "%");
  EXPECT_EQ(
      LabelExpr::Or(LabelExpr::Name("A"), LabelExpr::Name("B"))->ToString(),
      "A|B");
  EXPECT_EQ(
      LabelExpr::And(LabelExpr::Or(LabelExpr::Name("A"), LabelExpr::Name("B")),
                     LabelExpr::Name("C"))
          ->ToString(),
      "(A|B)&C");
  EXPECT_EQ(LabelExpr::Not(LabelExpr::And(LabelExpr::Name("A"),
                                          LabelExpr::Name("B")))
                ->ToString(),
            "!(A&B)");
  EXPECT_EQ(LabelExpr::Not(LabelExpr::Wildcard())->ToString(), "!%");
}

TEST(LabelExprTest, StructuralEquality) {
  LabelExprPtr a =
      LabelExpr::Or(LabelExpr::Name("A"), LabelExpr::Name("B"));
  LabelExprPtr b =
      LabelExpr::Or(LabelExpr::Name("A"), LabelExpr::Name("B"));
  LabelExprPtr c =
      LabelExpr::Or(LabelExpr::Name("B"), LabelExpr::Name("A"));
  EXPECT_TRUE(LabelExpr::Equal(a, b));
  EXPECT_FALSE(LabelExpr::Equal(a, c));
  EXPECT_TRUE(LabelExpr::Equal(nullptr, nullptr));
  EXPECT_FALSE(LabelExpr::Equal(a, nullptr));
}

}  // namespace
}  // namespace gpml
