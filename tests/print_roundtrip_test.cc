#include <gtest/gtest.h>

#include "ast/print.h"
#include "parser/parser.h"

namespace gpml {
namespace {

/// Structural equality of path patterns (spot-check fields that matter).
bool PatternsEqual(const PathPattern& a, const PathPattern& b);

bool ElementsEqual(const PathElement& a, const PathElement& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case PathElement::Kind::kNode:
      return a.node.var == b.node.var &&
             LabelExpr::Equal(a.node.labels, b.node.labels) &&
             Expr::Equal(a.node.where, b.node.where);
    case PathElement::Kind::kEdge:
      return a.edge.var == b.edge.var &&
             a.edge.orientation == b.edge.orientation &&
             LabelExpr::Equal(a.edge.labels, b.edge.labels) &&
             Expr::Equal(a.edge.where, b.edge.where);
    case PathElement::Kind::kParen:
    case PathElement::Kind::kOptional:
      return a.restrictor == b.restrictor && Expr::Equal(a.where, b.where) &&
             PatternsEqual(*a.sub, *b.sub);
    case PathElement::Kind::kQuantified:
      return a.min == b.min && a.max == b.max &&
             a.restrictor == b.restrictor && Expr::Equal(a.where, b.where) &&
             a.bare_edge == b.bare_edge && PatternsEqual(*a.sub, *b.sub);
  }
  return false;
}

bool PatternsEqual(const PathPattern& a, const PathPattern& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == PathPattern::Kind::kConcat) {
    if (a.elements.size() != b.elements.size()) return false;
    for (size_t i = 0; i < a.elements.size(); ++i) {
      if (!ElementsEqual(a.elements[i], b.elements[i])) return false;
    }
    return true;
  }
  if (a.alternatives.size() != b.alternatives.size()) return false;
  for (size_t i = 0; i < a.alternatives.size(); ++i) {
    if (!PatternsEqual(*a.alternatives[i], *b.alternatives[i])) return false;
  }
  return true;
}

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParsePrintParse) {
  const std::string text = GetParam();
  Result<GraphPattern> first = ParseGraphPattern(text);
  ASSERT_TRUE(first.ok()) << text << " -> " << first.status();
  std::string printed = Print(*first);
  Result<GraphPattern> second = ParseGraphPattern(printed);
  ASSERT_TRUE(second.ok()) << printed << " -> " << second.status();
  ASSERT_EQ(first->paths.size(), second->paths.size());
  for (size_t i = 0; i < first->paths.size(); ++i) {
    const PathPatternDecl& d1 = first->paths[i];
    const PathPatternDecl& d2 = second->paths[i];
    EXPECT_EQ(d1.selector.kind, d2.selector.kind) << printed;
    EXPECT_EQ(d1.restrictor, d2.restrictor) << printed;
    EXPECT_EQ(d1.path_var, d2.path_var) << printed;
    EXPECT_TRUE(PatternsEqual(*d1.pattern, *d2.pattern)) << printed;
  }
  EXPECT_TRUE(Expr::Equal(first->where, second->where)) << printed;
  // Printing must be a fixpoint.
  EXPECT_EQ(printed, Print(*second));
}

INSTANTIATE_TEST_SUITE_P(
    PaperQueries, RoundTripTest,
    ::testing::Values(
        "MATCH (x)",
        "MATCH (x:Account WHERE x.isBlocked='no')",
        "MATCH -[e:Transfer WHERE e.amount>5M]->",
        "MATCH ~[e]~",
        "MATCH (x)-[:Transfer]->()-[:isLocatedIn]->(y)",
        "MATCH (y WHERE y.owner='Aretha')<-[e:Transfer]-(x)",
        "MATCH (s)-[e]->(m)-[f]->(t)",
        "MATCH (p:Phone WHERE p.isBlocked='yes')~[e:hasPhone]~(a1:Account)"
        "-[t:Transfer WHERE t.amount>1M]->(a2)",
        "MATCH (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s)",
        "MATCH p = (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s)",
        "MATCH (a:Account)-[:Transfer]->{2,5}(b:Account)",
        "MATCH [(a:Account)-[:Transfer]->(b:Account) WHERE "
        "a.owner=b.owner]{2,5}",
        "MATCH (a:Account) [()-[t:Transfer]->() WHERE t.amount>1M]{2,5} "
        "(b:Account) WHERE SUM(t.amount)>10M",
        "MATCH (c:City) | (c:Country)",
        "MATCH (c:City) |+| (c:Country)",
        "MATCH ->{1,5} | ->{3,7}",
        "MATCH [(x)->(y)] | [(x)->(z)]",
        "MATCH (x) [->(y)]?",
        "MATCH (x:Account)-[:Transfer]->(y:Account) [-(:hasPhone)-(p)]? "
        "WHERE y.isBlocked='yes' OR p.isBlocked='yes'",
        "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
        "(b WHERE b.owner='Aretha')",
        "MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
        "(b WHERE b.owner='Aretha')",
        "MATCH ALL SHORTEST TRAIL p = (a)-[t:Transfer]->*(b)-[r:Transfer]->*"
        "(c)",
        "MATCH SHORTEST 2 GROUP (a)->*(b)",
        "MATCH ANY 3 (a)->*(b)",
        "MATCH ALL SHORTEST [TRAIL (x)-[e]->*(y) WHERE "
        "COUNT(e.*)/(COUNT(e.*)+1) > 1]",
        "MATCH TRAIL (a WHERE a.owner='Jay') "
        "[-[b:Transfer WHERE b.amount>5M]->]+ (a) "
        "[-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]",
        "MATCH (s:Account)-[:signInWithIP]-(), "
        "(s)-[t:Transfer WHERE t.amount>1M]->(), "
        "(s)~[:hasPhone]~(p:Phone WHERE p.isBlocked='yes')",
        "MATCH (x)<->(y)<~(z)~>(w)",
        "MATCH (n:!%)",
        "MATCH (n:(A&B)|!C)",
        "MATCH (x:Account WHERE x.owner=$owner)"
        "-[t:Transfer WHERE t.amount>$min]->(y) WHERE y.owner<>$owner",
        "MATCH (a)[(x)-[e]->(y) WHERE e.amount>$cap]{1,3}(b) WHERE $flag"));

TEST(StatementRoundTripTest, LimitAndParamsRoundTrip) {
  const std::string text =
      "MATCH (x:Account WHERE x.owner = $owner)-[t:Transfer]->(y) "
      "RETURN x.owner AS o, $tag AS tag LIMIT 7";
  Result<MatchStatement> first = ParseStatement(text);
  ASSERT_TRUE(first.ok()) << first.status();
  std::string printed = Print(*first);
  EXPECT_NE(printed.find("LIMIT 7"), std::string::npos) << printed;
  EXPECT_NE(printed.find("$owner"), std::string::npos) << printed;
  Result<MatchStatement> second = ParseStatement(printed);
  ASSERT_TRUE(second.ok()) << printed << " -> " << second.status();
  EXPECT_EQ(second->limit, first->limit);
  EXPECT_EQ(second->return_items.size(), first->return_items.size());
  // Printing is a fixpoint.
  EXPECT_EQ(printed, Print(*second));
}

}  // namespace
}  // namespace gpml
