#ifndef GPML_OBS_METRICS_H_
#define GPML_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace gpml {
namespace obs {

/// A monotonically increasing counter. Increments are single relaxed atomic
/// adds — lock-free, wait-free, safe from any number of threads. Handles
/// returned by MetricsRegistry stay valid for the registry's lifetime, so
/// hot paths resolve the name once and increment through the pointer.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A gauge: a value that goes up and down (live sessions, queue depth).
/// Same relaxed-atomic discipline as Counter; signed so a racing
/// decrement-before-increment interleaving never wraps.
class Gauge {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Decrement(int64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket latency histogram with log-scaled (power-of-two) bucket
/// bounds: bucket i counts observations <= 2^i microseconds, the last
/// bucket is the +Inf overflow. 27 bounds cover 1us .. ~67s, which spans
/// everything from a plan-cache hit to a pathological enumeration. Observe
/// is three relaxed atomic adds and a bit scan — no locks, no allocation,
/// safe from any number of threads.
class Histogram {
 public:
  /// Finite bucket count; bucket i holds observations <= kBounds[i], and
  /// one extra overflow slot holds the rest.
  static constexpr size_t kNumBounds = 27;

  Histogram() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  /// The upper bound of finite bucket i, in microseconds (2^i).
  static uint64_t BoundMicros(size_t i) { return uint64_t{1} << i; }

  void Observe(uint64_t value_us) {
    buckets_[BucketIndex(value_us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(value_us, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// The finite bucket an observation lands in (kNumBounds = overflow):
  /// the smallest i with value <= 2^i, found by a position-of-highest-bit
  /// scan rather than a loop.
  static size_t BucketIndex(uint64_t value_us) {
    if (value_us <= 1) return 0;
    // ceil(log2(value)): bit width of (value - 1).
    uint64_t v = value_us - 1;
    size_t bits = 0;
    while (v != 0) {
      v >>= 1;
      ++bits;
    }
    return bits < kNumBounds ? bits : kNumBounds;
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBounds + 1];
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
};

/// Plain-data copies of one registry's state at a point in time — what
/// tests assert against and what the Prometheus renderer consumes. Sorted
/// by metric name for deterministic output.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum_us = 0;
  std::vector<uint64_t> buckets;  // kNumBounds finite + 1 overflow.
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// The counter's value, or 0 when the name was never registered.
  uint64_t CounterValue(const std::string& name) const;
  /// The gauge's value, or 0 when the name was never registered.
  int64_t GaugeValue(const std::string& name) const;
  /// The histogram entry, or nullptr when the name was never registered.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

/// A thread-safe registry of named counters and histograms. Registration
/// and snapshotting take a mutex; the returned handles increment lock-free,
/// so the per-query hot path pays one short critical section per metric
/// lookup and plain atomic adds afterwards.
///
/// Metric names follow the Prometheus conventions rendered by
/// RenderPrometheus (obs/prometheus.h): `base{key="value",...}` — the
/// optional label block selects a labeled series of the base metric, e.g.
/// `gpml_stage_duration_us{stage="match"}`. Counter bases end in `_total`.
///
/// One registry lives on each PropertyGraph (created lazily, see
/// PropertyGraph::metrics_registry) and every registry is tracked in a
/// process-wide list so AggregateAllRegistries can merge them into the
/// engine-wide snapshot a server's /metrics endpoint would export.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The counter/gauge/histogram registered under `name`, created on first
  /// use. Handles stay valid for the registry's lifetime. A name registered
  /// as one kind cannot be re-registered as another; the mismatched lookup
  /// returns nullptr.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Merges the snapshots of every live MetricsRegistry in the process
/// (same-name counters sum, same-name histograms merge bucket-wise) — the
/// engine-wide aggregate over all graphs' per-graph registries.
MetricsSnapshot AggregateAllRegistries();

}  // namespace obs
}  // namespace gpml

#endif  // GPML_OBS_METRICS_H_
