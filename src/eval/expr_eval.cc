#include "eval/expr_eval.h"

#include <algorithm>
#include <set>

namespace gpml {

namespace {

Result<TriBool> AsPredicate(const EvalValue& v) {
  if (v.kind != EvalValue::Kind::kValue) {
    return Status::SemanticError("element used as a predicate");
  }
  if (v.value.is_null()) return TriBool::kUnknown;
  if (!v.value.is_bool()) {
    return Status::SemanticError("predicate is not boolean");
  }
  return v.value.bool_value() ? TriBool::kTrue : TriBool::kFalse;
}

Value FromTriBool(TriBool t) {
  switch (t) {
    case TriBool::kTrue: return Value::Bool(true);
    case TriBool::kFalse: return Value::Bool(false);
    case TriBool::kUnknown: return Value::Null();
  }
  return Value::Null();
}

/// Value-vs-value comparison under SQL semantics (the shared tail of
/// Compare and the borrowed fast path).
Result<TriBool> CompareValues(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return TriBool::kUnknown;
  switch (op) {
    case BinaryOp::kEq: return Value::SqlEquals(a, b);
    case BinaryOp::kNeq: return TriNot(Value::SqlEquals(a, b));
    default: break;
  }
  Result<int> cmp = Value::SqlCompare(a, b);
  // Incomparable types yield UNKNOWN rather than an error: predicates over
  // heterogeneous properties simply fail to select.
  if (!cmp.ok()) return TriBool::kUnknown;
  int c = *cmp;
  bool res = false;
  switch (op) {
    case BinaryOp::kLt: res = c < 0; break;
    case BinaryOp::kLe: res = c <= 0; break;
    case BinaryOp::kGt: res = c > 0; break;
    case BinaryOp::kGe: res = c >= 0; break;
    default: return Status::Internal("not a comparison");
  }
  return res ? TriBool::kTrue : TriBool::kFalse;
}

/// Comparison under SQL semantics; elements compare by identity (GQL-style
/// element equality, §4.7).
Result<TriBool> Compare(BinaryOp op, const EvalValue& l, const EvalValue& r) {
  if (l.kind == EvalValue::Kind::kElement ||
      r.kind == EvalValue::Kind::kElement) {
    if (l.kind != r.kind) {
      if (l.is_null() || r.is_null()) return TriBool::kUnknown;
      return Status::SemanticError("cannot compare element with value");
    }
    bool eq = l.element == r.element;
    if (op == BinaryOp::kEq) return eq ? TriBool::kTrue : TriBool::kFalse;
    if (op == BinaryOp::kNeq) return eq ? TriBool::kFalse : TriBool::kTrue;
    return Status::SemanticError("elements only support = and <>");
  }
  return CompareValues(op, l.value, r.value);
}

/// Resolves an expression to a borrowed Value when that needs no
/// construction: literals borrow themselves, property accesses borrow the
/// graph's column slot (or the shared NULL for unbound/unknown cases,
/// matching the EvalExpr NULL results exactly). Returns nullptr when the
/// expression needs full evaluation. This keeps `x.prop <op> literal` —
/// the dominant predicate shape in the matcher's hot loop — free of Value
/// (string) copies.
const Value* BorrowValue(const Expr& expr, const PropertyGraph& g,
                         const VarTable& vars, const EvalScope& scope) {
  static const Value kNull = Value::Null();
  if (expr.kind == Expr::Kind::kLiteral) return &expr.literal;
  if (expr.kind == Expr::Kind::kParam) {
    // Bound parameters borrow the execution's Params slot; unbound ones
    // fall through to full evaluation, which reports the error.
    return scope.LookupParam(expr.var);
  }
  if (expr.kind != Expr::Kind::kPropertyAccess) return nullptr;
  int id = vars.Find(expr.var);
  if (id < 0) return &kNull;
  std::optional<ElementRef> el = scope.LookupSingleton(id);
  if (!el.has_value()) return &kNull;
  return &g.GetPropertyFast(*el, expr.property);
}

/// Scope wrapper that overrides one variable with a specific element while
/// an aggregate argument is evaluated per group member.
class OverrideScope : public EvalScope {
 public:
  OverrideScope(const EvalScope& base, int var, ElementRef element)
      : base_(base), var_(var), element_(element) {}

  std::optional<ElementRef> LookupSingleton(int var) const override {
    if (var == var_) return element_;
    return base_.LookupSingleton(var);
  }
  std::vector<ElementRef> CollectGroup(int var) const override {
    if (var == var_) return {element_};
    return base_.CollectGroup(var);
  }
  const Path* LookupPath(int var) const override {
    return base_.LookupPath(var);
  }
  const Value* LookupParam(const std::string& name) const override {
    return base_.LookupParam(name);
  }

 private:
  const EvalScope& base_;
  int var_;
  ElementRef element_;
};

Result<EvalValue> EvalAggregate(const Expr& expr, const PropertyGraph& g,
                                const VarTable& vars, const EvalScope& scope) {
  // Identify the group variable driving the aggregate: the first variable
  // referenced by the argument that is a group (or any) element variable.
  std::vector<std::string> names;
  expr.arg->CollectVariables(&names);
  int group_var = -1;
  for (const std::string& n : names) {
    int id = vars.Find(n);
    if (id >= 0 && vars.info(id).kind != VarInfo::Kind::kPath) {
      group_var = id;
      break;
    }
  }

  std::vector<ElementRef> members;
  if (group_var >= 0) {
    members = scope.CollectGroup(group_var);
  }

  // COUNT(e) / COUNT(e.*) count the bindings themselves.
  bool count_star =
      expr.agg == AggFunc::kCount &&
      (expr.arg->kind == Expr::Kind::kVarRef ||
       (expr.arg->kind == Expr::Kind::kPropertyAccess &&
        expr.arg->property == "*"));

  std::vector<Value> inputs;
  std::set<std::pair<int, uint32_t>> distinct_elems;
  for (const ElementRef& m : members) {
    if (expr.distinct) {
      auto key = std::make_pair(static_cast<int>(m.kind), m.id);
      if (!distinct_elems.insert(key).second) continue;
    }
    if (count_star) {
      inputs.push_back(Value::Int(1));
      continue;
    }
    OverrideScope member_scope(scope, group_var, m);
    GPML_ASSIGN_OR_RETURN(EvalValue v,
                          EvalExpr(*expr.arg, g, vars, member_scope));
    if (v.kind == EvalValue::Kind::kElement) {
      // Aggregating bare elements: LISTAGG renders names, COUNT counts.
      inputs.push_back(Value::String(g.element(v.element).name));
    } else if (!v.value.is_null()) {
      inputs.push_back(v.value);
    }
  }

  switch (expr.agg) {
    case AggFunc::kCount:
      return EvalValue::Of(Value::Int(static_cast<int64_t>(inputs.size())));
    case AggFunc::kSum: {
      if (inputs.empty()) return EvalValue::Of(Value::Null());
      Value acc = Value::Int(0);
      for (const Value& v : inputs) {
        GPML_ASSIGN_OR_RETURN(acc, Value::Add(acc, v));
      }
      return EvalValue::Of(acc);
    }
    case AggFunc::kAvg: {
      if (inputs.empty()) return EvalValue::Of(Value::Null());
      double sum = 0;
      for (const Value& v : inputs) {
        if (!v.is_numeric()) {
          return Status::SemanticError("AVG over non-numeric values");
        }
        sum += v.AsDouble();
      }
      return EvalValue::Of(
          Value::Double(sum / static_cast<double>(inputs.size())));
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      if (inputs.empty()) return EvalValue::Of(Value::Null());
      const Value* best = &inputs[0];
      for (const Value& v : inputs) {
        bool less = v < *best;
        if (expr.agg == AggFunc::kMin ? less : (*best < v)) best = &v;
      }
      return EvalValue::Of(*best);
    }
    case AggFunc::kListAgg: {
      std::string out;
      const std::string& sep =
          expr.separator.empty() ? std::string(", ") : expr.separator;
      for (size_t i = 0; i < inputs.size(); ++i) {
        if (i > 0) out += sep;
        out += inputs[i].ToString();
      }
      return EvalValue::Of(Value::String(out));
    }
  }
  return Status::Internal("unknown aggregate");
}

}  // namespace

Result<EvalValue> EvalExpr(const Expr& expr, const PropertyGraph& g,
                           const VarTable& vars, const EvalScope& scope) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return EvalValue::Of(expr.literal);

    case Expr::Kind::kParam: {
      const Value* v = scope.LookupParam(expr.var);
      if (v == nullptr) {
        return Status::InvalidArgument(
            "unbound parameter $" + expr.var +
            "; bind it through PreparedQuery::Execute/Open");
      }
      return EvalValue::Of(*v);
    }

    case Expr::Kind::kVarRef: {
      int id = vars.Find(expr.var);
      if (id < 0) return EvalValue::Of(Value::Null());
      if (vars.info(id).kind == VarInfo::Kind::kPath) {
        const Path* p = scope.LookupPath(id);
        if (p == nullptr) return EvalValue::Of(Value::Null());
        return EvalValue::OfPath(p);
      }
      std::optional<ElementRef> el = scope.LookupSingleton(id);
      if (!el.has_value()) return EvalValue::Of(Value::Null());
      return EvalValue::OfElement(*el);
    }

    case Expr::Kind::kPropertyAccess: {
      int id = vars.Find(expr.var);
      if (id < 0) return EvalValue::Of(Value::Null());
      std::optional<ElementRef> el = scope.LookupSingleton(id);
      if (!el.has_value()) return EvalValue::Of(Value::Null());
      // Columnar access: one key-string hash shared across all elements,
      // then an array index — never the per-element property-map walk. The
      // mirror is exact (csr_index_test asserts it against the maps).
      return EvalValue::Of(g.GetPropertyFast(*el, expr.property));
    }

    case Expr::Kind::kBinary: {
      switch (expr.op) {
        case BinaryOp::kAnd: {
          GPML_ASSIGN_OR_RETURN(TriBool l,
                                EvalPredicate(*expr.lhs, g, vars, scope));
          if (l == TriBool::kFalse) return EvalValue::Of(Value::Bool(false));
          GPML_ASSIGN_OR_RETURN(TriBool r,
                                EvalPredicate(*expr.rhs, g, vars, scope));
          return EvalValue::Of(FromTriBool(TriAnd(l, r)));
        }
        case BinaryOp::kOr: {
          GPML_ASSIGN_OR_RETURN(TriBool l,
                                EvalPredicate(*expr.lhs, g, vars, scope));
          if (l == TriBool::kTrue) return EvalValue::Of(Value::Bool(true));
          GPML_ASSIGN_OR_RETURN(TriBool r,
                                EvalPredicate(*expr.rhs, g, vars, scope));
          return EvalValue::Of(FromTriBool(TriOr(l, r)));
        }
        case BinaryOp::kEq:
        case BinaryOp::kNeq:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          // Borrowed fast path: both operands reachable without
          // constructing EvalValues (no string copies per evaluation).
          const Value* lb = BorrowValue(*expr.lhs, g, vars, scope);
          if (lb != nullptr) {
            const Value* rb = BorrowValue(*expr.rhs, g, vars, scope);
            if (rb != nullptr) {
              GPML_ASSIGN_OR_RETURN(TriBool t,
                                    CompareValues(expr.op, *lb, *rb));
              return EvalValue::Of(FromTriBool(t));
            }
          }
          GPML_ASSIGN_OR_RETURN(EvalValue l,
                                EvalExpr(*expr.lhs, g, vars, scope));
          GPML_ASSIGN_OR_RETURN(EvalValue r,
                                EvalExpr(*expr.rhs, g, vars, scope));
          GPML_ASSIGN_OR_RETURN(TriBool t, Compare(expr.op, l, r));
          return EvalValue::Of(FromTriBool(t));
        }
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv: {
          GPML_ASSIGN_OR_RETURN(EvalValue l,
                                EvalExpr(*expr.lhs, g, vars, scope));
          GPML_ASSIGN_OR_RETURN(EvalValue r,
                                EvalExpr(*expr.rhs, g, vars, scope));
          if (l.kind != EvalValue::Kind::kValue ||
              r.kind != EvalValue::Kind::kValue) {
            return Status::SemanticError("arithmetic on elements");
          }
          switch (expr.op) {
            case BinaryOp::kAdd: {
              GPML_ASSIGN_OR_RETURN(Value v, Value::Add(l.value, r.value));
              return EvalValue::Of(std::move(v));
            }
            case BinaryOp::kSub: {
              GPML_ASSIGN_OR_RETURN(Value v,
                                    Value::Subtract(l.value, r.value));
              return EvalValue::Of(std::move(v));
            }
            case BinaryOp::kMul: {
              GPML_ASSIGN_OR_RETURN(Value v,
                                    Value::Multiply(l.value, r.value));
              return EvalValue::Of(std::move(v));
            }
            default: {
              GPML_ASSIGN_OR_RETURN(Value v, Value::Divide(l.value, r.value));
              return EvalValue::Of(std::move(v));
            }
          }
        }
      }
      return Status::Internal("unknown binary op");
    }

    case Expr::Kind::kNot: {
      GPML_ASSIGN_OR_RETURN(TriBool t, EvalPredicate(*expr.lhs, g, vars, scope));
      return EvalValue::Of(FromTriBool(TriNot(t)));
    }

    case Expr::Kind::kIsNull: {
      GPML_ASSIGN_OR_RETURN(EvalValue v, EvalExpr(*expr.lhs, g, vars, scope));
      bool is_null = v.is_null();
      return EvalValue::Of(Value::Bool(expr.negated ? !is_null : is_null));
    }

    case Expr::Kind::kAggregate:
      return EvalAggregate(expr, g, vars, scope);

    case Expr::Kind::kIsDirected: {
      int id = vars.Find(expr.var);
      std::optional<ElementRef> el =
          id < 0 ? std::nullopt : scope.LookupSingleton(id);
      if (!el.has_value() || !el->is_edge()) {
        return EvalValue::Of(Value::Null());
      }
      return EvalValue::Of(Value::Bool(g.edge(el->id).directed));
    }

    case Expr::Kind::kIsSourceOf:
    case Expr::Kind::kIsDestinationOf: {
      int node_id = vars.Find(expr.var);
      int edge_id = vars.Find(expr.var2);
      std::optional<ElementRef> node =
          node_id < 0 ? std::nullopt : scope.LookupSingleton(node_id);
      std::optional<ElementRef> edge =
          edge_id < 0 ? std::nullopt : scope.LookupSingleton(edge_id);
      if (!node.has_value() || !edge.has_value() || !node->is_node() ||
          !edge->is_edge()) {
        return EvalValue::Of(Value::Null());
      }
      const EdgeData& ed = g.edge(edge->id);
      if (!ed.directed) return EvalValue::Of(Value::Bool(false));
      NodeId endpoint =
          expr.kind == Expr::Kind::kIsSourceOf ? ed.u : ed.v;
      return EvalValue::Of(Value::Bool(endpoint == node->id));
    }

    case Expr::Kind::kSame:
    case Expr::Kind::kAllDifferent: {
      std::vector<ElementRef> elems;
      for (const std::string& name : expr.vars) {
        int id = vars.Find(name);
        std::optional<ElementRef> el =
            id < 0 ? std::nullopt : scope.LookupSingleton(id);
        if (!el.has_value()) return EvalValue::Of(Value::Null());
        elems.push_back(*el);
      }
      if (expr.kind == Expr::Kind::kSame) {
        for (size_t i = 1; i < elems.size(); ++i) {
          if (!(elems[i] == elems[0])) {
            return EvalValue::Of(Value::Bool(false));
          }
        }
        return EvalValue::Of(Value::Bool(true));
      }
      for (size_t i = 0; i < elems.size(); ++i) {
        for (size_t j = i + 1; j < elems.size(); ++j) {
          if (elems[i] == elems[j]) return EvalValue::Of(Value::Bool(false));
        }
      }
      return EvalValue::Of(Value::Bool(true));
    }

    case Expr::Kind::kPathLength: {
      int id = vars.Find(expr.var);
      const Path* p = id < 0 ? nullptr : scope.LookupPath(id);
      if (p == nullptr) return EvalValue::Of(Value::Null());
      return EvalValue::Of(Value::Int(static_cast<int64_t>(p->Length())));
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<TriBool> EvalPredicate(const Expr& expr, const PropertyGraph& g,
                              const VarTable& vars, const EvalScope& scope) {
  GPML_ASSIGN_OR_RETURN(EvalValue v, EvalExpr(expr, g, vars, scope));
  return AsPredicate(v);
}

Value ToOutputValue(const EvalValue& v, const PropertyGraph& g) {
  switch (v.kind) {
    case EvalValue::Kind::kValue: return v.value;
    case EvalValue::Kind::kElement:
      return Value::String(g.element(v.element).name);
    case EvalValue::Kind::kPath:
      return Value::String(v.path->ToString(g));
  }
  return Value::Null();
}

// ---------------------------------------------------------------------------
// Predicate kernels
// ---------------------------------------------------------------------------

namespace {

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

/// One comparison conjunct into a kernel term. Exactly one side must be a
/// property access on the pending variable, the other a literal or $param.
/// The operator is mirrored when the access is on the right, so the term
/// always reads `column <op> rhs`.
bool CompileTerm(const Expr& cmp, int var, const VarTable& vars,
                 const SymbolTable& property_symbols, PredicateKernel* out) {
  if (!IsComparisonOp(cmp.op)) return false;
  auto is_rhs = [](const Expr& e) {
    return e.kind == Expr::Kind::kLiteral || e.kind == Expr::Kind::kParam;
  };
  auto is_access = [&](const Expr& e) {
    return e.kind == Expr::Kind::kPropertyAccess && e.property != "*" &&
           vars.Find(e.var) == var;
  };
  const Expr* access = nullptr;
  const Expr* operand = nullptr;
  BinaryOp op = cmp.op;
  if (is_access(*cmp.lhs) && is_rhs(*cmp.rhs)) {
    access = cmp.lhs.get();
    operand = cmp.rhs.get();
  } else if (is_access(*cmp.rhs) && is_rhs(*cmp.lhs)) {
    access = cmp.rhs.get();
    operand = cmp.lhs.get();
    switch (op) {  // `lit < x.p` reads as `x.p > lit`.
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLe: op = BinaryOp::kGe; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGe: op = BinaryOp::kLe; break;
      default: break;  // = and <> are symmetric.
    }
  } else {
    return false;
  }
  PredicateKernel::Term term;
  term.prop = property_symbols.Find(access->property);
  term.op = op;
  if (operand->kind == Expr::Kind::kLiteral) {
    term.literal = &operand->literal;
  } else {
    term.param = operand->var;
  }
  out->terms.push_back(std::move(term));
  return true;
}

}  // namespace

bool PredicateKernel::Compile(const Expr& where, int var, const VarTable& vars,
                              const SymbolTable& property_symbols,
                              PredicateKernel* out) {
  if (where.kind != Expr::Kind::kBinary) return false;
  if (where.op == BinaryOp::kAnd) {
    return Compile(*where.lhs, var, vars, property_symbols, out) &&
           Compile(*where.rhs, var, vars, property_symbols, out);
  }
  return CompileTerm(where, var, vars, property_symbols, out);
}

bool BindPredicateKernel(const PredicateKernel& kernel, const Params* params,
                         BoundPredicateKernel* out) {
  out->terms.clear();
  out->terms.reserve(kernel.terms.size());
  for (const PredicateKernel::Term& t : kernel.terms) {
    BoundPredicateKernel::Term b;
    b.prop = t.prop;
    b.op = t.op;
    if (t.literal != nullptr) {
      b.rhs = t.literal;
    } else {
      if (params == nullptr) return false;
      auto it = params->find(t.param);
      if (it == params->end()) return false;
      b.rhs = &it->second;
    }
    out->terms.push_back(b);
  }
  return true;
}

bool EvalKernel(const BoundPredicateKernel& kernel, const PropertyGraph& g,
                bool is_node, uint32_t id) {
  for (const BoundPredicateKernel::Term& t : kernel.terms) {
    // An un-interned key means the column read is NULL, so the comparison
    // is UNKNOWN: the conjunction can never be kTrue.
    if (t.prop == kInvalidSymbol) return false;
    const Value& lhs =
        is_node ? g.NodeColumnValue(t.prop, id) : g.EdgeColumnValue(t.prop, id);
    Result<TriBool> r = CompareValues(t.op, lhs, *t.rhs);
    if (!r.ok() || *r != TriBool::kTrue) return false;
  }
  return true;
}

}  // namespace gpml
