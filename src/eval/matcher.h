#ifndef GPML_EVAL_MATCHER_H_
#define GPML_EVAL_MATCHER_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/result.h"
#include "eval/binding.h"
#include "eval/nfa.h"
#include "eval/params.h"
#include "graph/property_graph.h"

namespace gpml {

/// Evaluation guards. The search is complete and exact; these limits only
/// bound pathological instances (enumeration on dense graphs is inherently
/// exponential, §8's complexity discussion) and surface as
/// kResourceExhausted instead of runaway memory/time.
///
/// The limits apply to the whole RunPattern call, never per worker: with
/// `num_threads > 1` all seed shards draw from one shared atomic budget
/// (see SharedBudget), so a parallel run can never execute more than the
/// configured number of steps plus one charge batch per shard.
struct MatcherOptions {
  size_t max_matches = 1u << 20;       // Accepted bindings (pre-selector).
  size_t max_steps = 200u << 20;       // Executed instructions.
  /// Seed-partitioned worker threads. 1 (the default) runs the exact
  /// sequential engine; N > 1 shards the seed list into N contiguous blocks
  /// searched concurrently and merged back in seed-index order, which makes
  /// results byte-identical to the sequential run (see docs/parallel.md).
  size_t num_threads = 1;
  /// Minimum seeds per worker shard: seed lists shorter than
  /// 2 * min_seeds_per_shard never fan out, so small queries skip the
  /// thread spawn/join overhead entirely (a query's result is independent
  /// of the shard count, so this is purely a latency knob). Tests set 1 to
  /// force sharding on tiny graphs.
  size_t min_seeds_per_shard = 16;
  /// Interned-storage fast paths (see docs/storage.md): expansion over the
  /// label-partitioned CSR index and label matching through the program's
  /// compiled symbol predicates. Off runs the legacy full-adjacency scan
  /// with string label comparison — the differential oracle. Results are
  /// byte-identical either way (CSR partitions preserve the legacy scan
  /// order); only the step counts differ, because the CSR path never visits
  /// the records the label filter would reject.
  bool use_csr = true;
  /// Block-at-a-time frontier expansion (docs/vectorized.md): linear
  /// fixed-length patterns expand whole frontier blocks against contiguous
  /// CSR ranges with selection-vector filtering and compiled predicate
  /// kernels, materializing states only for accepted rows. Off runs the
  /// tuple-at-a-time interpreter for every pattern — the differential
  /// oracle, exactly like `use_csr` above. Rows are byte-identical either
  /// way (the batch drain replays the DFS accept order); only the step
  /// accounting differs, because the batch path charges per adjacency
  /// candidate rather than per interpreter instruction. Patterns outside
  /// the eligible shape (selectors, quantifiers, restrictors, non-kernel
  /// WHEREs) fall back to the scalar interpreter automatically.
  bool use_batch = true;
};

/// Target number of frontier entries expanded per batch block. Candidate
/// gathers run per block, so this bounds the transient candidate arrays
/// while keeping the filter loops long enough to vectorize.
inline constexpr size_t kBatchBlockTarget = 512;

/// One shared step/match budget drawn on by every seed shard of a RunPattern
/// call. Sequential runs charge every step individually, so the limit fires
/// at exactly the same instruction as the historical per-run counters;
/// parallel shards charge in small batches to keep the hot loop off the
/// shared cache line (bounded overshoot: one batch per shard).
class SharedBudget {
 public:
  SharedBudget(size_t max_steps, size_t max_matches)
      : max_steps_(max_steps), max_matches_(max_matches) {}

  /// The message of the status a shard receives when a *sibling* shard
  /// exhausted the budget first: it stops early without a limit violation of
  /// its own, and RunPattern reports the sibling's genuine error instead.
  static constexpr const char* kAbortedBySibling =
      "search aborted: shared budget exhausted by a sibling shard";

  /// Charges `n` executed instructions; kResourceExhausted once the total
  /// exceeds max_steps.
  Status ChargeSteps(size_t n) {
    if (exhausted_.load(std::memory_order_relaxed)) {
      return Status::ResourceExhausted(kAbortedBySibling);
    }
    if (steps_.fetch_add(n, std::memory_order_relaxed) + n > max_steps_) {
      exhausted_.store(true, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "match search exceeded max_steps; tighten the pattern or raise "
          "MatcherOptions::max_steps");
    }
    return Status::OK();
  }

  /// Charges one accepted (post-dedup) binding against max_matches.
  Status ChargeMatch() {
    if (matches_.fetch_add(1, std::memory_order_relaxed) + 1 > max_matches_) {
      exhausted_.store(true, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "match set exceeded max_matches; add restrictors/selectors or "
          "raise MatcherOptions::max_matches");
    }
    return Status::OK();
  }

  /// Tells sibling shards to stop at their next budget check (set when a
  /// shard fails for a non-budget reason, e.g. an expression type error).
  void Abort() { exhausted_.store(true, std::memory_order_relaxed); }

  size_t steps() const { return steps_.load(std::memory_order_relaxed); }

 private:
  std::atomic<size_t> steps_{0};
  std::atomic<size_t> matches_{0};
  std::atomic<bool> exhausted_{false};
  const size_t max_steps_;
  const size_t max_matches_;
};

/// The multiset of reduced path bindings of one path pattern declaration,
/// deduplicated (§6.5) — multiset alternation multiplicity is carried by the
/// provenance tags — in deterministic order (by path length, then discovery).
struct MatchSet {
  std::vector<PathBinding> bindings;
};

/// Execution counters of one RunPattern call (planner benchmarks, EXPLAIN
/// ANALYZE-style reporting). Filled once after all shards join — workers
/// count locally and the totals are merged at the end, so the struct stays
/// plain data with no synchronization.
struct MatchStats {
  size_t seeds = 0;   // Start nodes seeded.
  size_t steps = 0;   // Interpreter instructions executed (summed over shards).
  size_t shards = 0;  // Worker shards the seed list was split into.
  // Batch-path counters (zero when the scalar interpreter ran):
  size_t batch_blocks = 0;      // Frontier blocks expanded.
  size_t batch_candidates = 0;  // Adjacency candidates gathered into blocks.
  size_t batch_survivors = 0;   // Candidates surviving all filter passes.
  // Wall-clock timings (monotonic clock, see obs/clock.h), always measured:
  // two clock reads per region, far below the bench_obs 2% overhead gate.
  // The engine turns these into trace spans and EngineMetrics/stage-
  // histogram totals (docs/observability.md).
  double seed_ms = 0;             // ComputeSeeds (seed-list derivation).
  double match_ms = 0;            // The whole RunPattern call.
  std::vector<double> shard_ms;   // Per worker shard, in shard order.
};

/// Runs one compiled pattern over the graph: every admissible start node is
/// seeded, matches are collected, reduced, deduplicated, and the selector
/// (if any) is applied per endpoint partition (§5.1).
///
/// Route selection: patterns without a selector enumerate by DFS (the §5
/// termination rules guarantee finiteness through restrictors); patterns
/// with a selector run a level-order BFS that emits matches in increasing
/// path length with per-product-state pruning sound for each selector kind.
///
/// With `options.num_threads > 1` the seed list is split into contiguous
/// blocks, one per worker; per-seed searches are independent (the paper's
/// per-start-node determinism, §4–§6), and the per-shard results are merged
/// back in seed-index order, globally deduplicated, and selector-filtered,
/// reproducing the sequential output exactly (differential-tested).
///
/// `seed_filter`, when non-null, replaces the default seeding (label index
/// or all nodes) with the given start nodes — the planner passes the values
/// an earlier declaration bound to the pattern's first variable, which is
/// sound because the join discards every other start. `stats`, when
/// non-null, receives execution counters.
///
/// `params` supplies the $name bindings inline predicates may reference
/// (prepared queries); nullptr when the pattern is parameter-free.
///
/// `shared_budget`, when non-null, replaces the call-local step/match
/// budget: the cursor's chunked streaming execution passes one budget
/// across all of its per-chunk RunPattern calls, so a streamed query can
/// never execute more total steps than a single materializing call
/// (single-shard chunks charge per step, exactly like the sequential
/// engine). `budget_exhausted`, when non-null, switches budget exhaustion
/// from an error into partial delivery: the bindings found so far are
/// returned with *budget_exhausted = true (non-budget errors still fail
/// the call). Partial sets are best-effort — deterministic only for
/// single-shard runs.
Result<MatchSet> RunPattern(const PropertyGraph& g, const Program& program,
                            const VarTable& vars,
                            const MatcherOptions& options,
                            const std::vector<NodeId>* seed_filter = nullptr,
                            MatchStats* stats = nullptr,
                            const Params* params = nullptr,
                            SharedBudget* shared_budget = nullptr,
                            bool* budget_exhausted = nullptr);

/// The start-node seed list RunPattern derives for `program`: the explicit
/// filter when given, else the most selective required-label index of the
/// first node check, else all nodes — always distinct node ids in the scan
/// order matching visits them. Exposed so the streaming cursor can walk
/// the same list in chunks (docs/api.md).
std::vector<NodeId> ComputeSeeds(const PropertyGraph& g,
                                 const Program& program,
                                 const std::vector<NodeId>* seed_filter);

}  // namespace gpml

#endif  // GPML_EVAL_MATCHER_H_
