// E20 (Figure 9): host overhead — the same GPML match consumed by the GQL
// session (binding table) and by SQL/PGQ GRAPH_TABLE (relational table),
// plus graph projection (§6.6). The GPML processor dominates; host
// projection should be a thin layer.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "gql/graph_projection.h"
#include "gql/session.h"
#include "pgq/graph_table.h"
#include "pgq/graph_view.h"

namespace gpml {
namespace {

struct Env {
  Catalog catalog;
  Env() {
    FraudGraphOptions options;
    options.num_accounts = 500;
    (void)catalog.AddGraph("bank", MakeFraudGraph(options));
  }
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

constexpr const char* kMatch =
    "MATCH (x:Account WHERE x.isBlocked='no')-[t:Transfer WHERE "
    "t.amount>5M]->(y:Account WHERE y.isBlocked='yes')";

void BM_Fig9_EngineOnly(benchmark::State& state) {
  auto graph = *GetEnv().catalog.GetGraph("bank");
  Engine engine(*graph);
  for (auto _ : state) {
    Result<MatchOutput> out = engine.Match(kMatch);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out->rows.size());
  }
}
BENCHMARK(BM_Fig9_EngineOnly)->Unit(benchmark::kMillisecond);

void BM_Fig9_GqlSession(benchmark::State& state) {
  Session session(GetEnv().catalog);
  if (!session.UseGraph("bank").ok()) std::abort();
  std::string stmt = std::string(kMatch) +
                     " RETURN x.owner AS A, y.owner AS B, t.amount AS amt";
  for (auto _ : state) {
    Result<Table> t = session.Execute(stmt);
    if (!t.ok()) std::abort();
    benchmark::DoNotOptimize(t->num_rows());
  }
}
BENCHMARK(BM_Fig9_GqlSession)->Unit(benchmark::kMillisecond);

void BM_Fig9_PgqGraphTable(benchmark::State& state) {
  GraphTableQuery q;
  q.graph = "bank";
  q.match = kMatch;
  q.columns = "x.owner AS A, y.owner AS B, t.amount AS amt";
  for (auto _ : state) {
    Result<Table> t = GraphTable(GetEnv().catalog, q);
    if (!t.ok()) std::abort();
    benchmark::DoNotOptimize(t->num_rows());
  }
}
BENCHMARK(BM_Fig9_PgqGraphTable)->Unit(benchmark::kMillisecond);

void BM_Fig9_GraphProjection(benchmark::State& state) {
  auto graph = *GetEnv().catalog.GetGraph("bank");
  Engine engine(*graph);
  Result<MatchOutput> out = engine.Match(kMatch);
  if (!out.ok()) std::abort();
  for (auto _ : state) {
    Result<PropertyGraph> sub = ProjectGraph(*graph, *out);
    if (!sub.ok()) std::abort();
    benchmark::DoNotOptimize(sub->num_edges());
  }
}
BENCHMARK(BM_Fig9_GraphProjection)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gpml
