#ifndef GPML_COMMON_RESULT_H_
#define GPML_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace gpml {

/// Either a value of type T or a non-OK Status; the library's substitute for
/// exceptions on fallible value-returning APIs (absl::StatusOr / arrow::Result
/// idiom). A Result constructed from an OK Status is a programming error.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : repr_(std::move(value)) {}
  /* implicit */ Result(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be built from an OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `rexpr` (a Result<T>), propagating errors; otherwise moves the
/// value into `lhs` (which may be a declaration).
#define GPML_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define GPML_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define GPML_ASSIGN_OR_RETURN_CONCAT(x, y) GPML_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define GPML_ASSIGN_OR_RETURN(lhs, rexpr) \
  GPML_ASSIGN_OR_RETURN_IMPL(             \
      GPML_ASSIGN_OR_RETURN_CONCAT(_gpml_result_, __LINE__), lhs, rexpr)

}  // namespace gpml

#endif  // GPML_COMMON_RESULT_H_
