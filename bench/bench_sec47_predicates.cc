// E12 (§4.7): graphical predicate evaluation cost — orientation
// interrogation and element identity tests as postfilters.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace gpml {
namespace {

using bench::RunOrDie;

PropertyGraph& Mixed() {
  static PropertyGraph* g = new PropertyGraph(
      MakeRandomGraph(1500, 6000, 3, 0.4, 21));
  return *g;
}

void BM_Sec47_NoPredicate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(Mixed(), "MATCH (x)-[e]-(y)"));
  }
}
BENCHMARK(BM_Sec47_NoPredicate)->Unit(benchmark::kMillisecond);

void BM_Sec47_IsDirected(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunOrDie(Mixed(), "MATCH (x)-[e]-(y) WHERE e IS DIRECTED"));
  }
}
BENCHMARK(BM_Sec47_IsDirected)->Unit(benchmark::kMillisecond);

void BM_Sec47_IsSourceOf(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunOrDie(Mixed(), "MATCH (x)-[e]-(y) WHERE x IS SOURCE OF e"));
  }
}
BENCHMARK(BM_Sec47_IsSourceOf)->Unit(benchmark::kMillisecond);

void BM_Sec47_AllDifferent(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(
        Mixed(), "MATCH (x)-[e]->(y)-[f]->(z) WHERE ALL_DIFFERENT(x, y, z)"));
  }
}
BENCHMARK(BM_Sec47_AllDifferent)->Unit(benchmark::kMillisecond);

void BM_Sec47_SameViaPredicateVsVariableReuse(benchmark::State& state) {
  // Triangle closing via SAME postfilter vs variable reuse (prefiltered
  // equi-join during the walk): the reuse form prunes much earlier.
  bool reuse = state.range(0) == 1;
  std::string query =
      reuse ? "MATCH (x)-[:L0]->(y)-[:L0]->(z)-[:L0]->(x)"
            : "MATCH (x)-[:L0]->(y)-[:L0]->(z)-[:L0]->(w) WHERE SAME(x, w)";
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunOrDie(Mixed(), query);
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel(reuse ? "variable-reuse" : "SAME-postfilter");
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Sec47_SameViaPredicateVsVariableReuse)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace gpml
