#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "graph/sample_graph.h"

namespace gpml {
namespace {

Table MakeAccountsTable() {
  Table t{Schema({{"ID", ValueType::kString, false},
                  {"owner", ValueType::kString, true}})};
  EXPECT_TRUE(t.Append({Value::String("a1"), Value::String("Scott")}).ok());
  EXPECT_TRUE(t.Append({Value::String("a2"), Value::String("Aretha")}).ok());
  return t;
}

TEST(SchemaTest, FindColumnAndToString) {
  Schema s({{"ID", ValueType::kString, false},
            {"amount", ValueType::kInt, true}});
  EXPECT_EQ(s.FindColumn("ID"), 0);
  EXPECT_EQ(s.FindColumn("amount"), 1);
  EXPECT_EQ(s.FindColumn("nope"), -1);
  EXPECT_EQ(s.ToString(), "ID STRING, amount INT");
}

TEST(SchemaTest, RowValidation) {
  Schema s({{"ID", ValueType::kString, false},
            {"amount", ValueType::kInt, true}});
  EXPECT_TRUE(s.ValidateRow({Value::String("x"), Value::Int(1)}).ok());
  EXPECT_TRUE(s.ValidateRow({Value::String("x"), Value::Null()}).ok());
  EXPECT_FALSE(s.ValidateRow({Value::Null(), Value::Int(1)}).ok());
  EXPECT_FALSE(s.ValidateRow({Value::String("x")}).ok());
  EXPECT_FALSE(
      s.ValidateRow({Value::String("x"), Value::String("oops")}).ok());
}

TEST(TableTest, AppendAtAndSort) {
  Table t = MakeAccountsTable();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(*t.At(0, "owner"), Value::String("Scott"));
  EXPECT_FALSE(t.At(0, "ghost").ok());
  EXPECT_FALSE(t.At(9, "owner").ok());
  t.SortRows();
  EXPECT_EQ(*t.At(0, "ID"), Value::String("a1"));
}

TEST(TableTest, DeduplicateRows) {
  Table t{Schema({{"x", ValueType::kInt, true}})};
  t.AppendUnchecked({Value::Int(2)});
  t.AppendUnchecked({Value::Int(1)});
  t.AppendUnchecked({Value::Int(2)});
  t.DeduplicateRows();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(*t.At(0, "x"), Value::Int(1));
}

TEST(TableTest, ToStringRendersHeader) {
  Table t = MakeAccountsTable();
  std::string s = t.ToString();
  EXPECT_NE(s.find("ID"), std::string::npos);
  EXPECT_NE(s.find("Scott"), std::string::npos);
}

TEST(CatalogTest, TableRegistration) {
  Catalog c;
  EXPECT_TRUE(c.AddTable("Account", MakeAccountsTable()).ok());
  EXPECT_TRUE(c.HasTable("Account"));
  EXPECT_FALSE(c.HasTable("Nope"));
  EXPECT_EQ(c.AddTable("Account", MakeAccountsTable()).code(),
            StatusCode::kAlreadyExists);
  Result<const Table*> t = c.GetTable("Account");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 2u);
  EXPECT_FALSE(c.GetTable("Nope").ok());
  EXPECT_EQ(c.TableNames(), std::vector<std::string>{"Account"});
}

TEST(CatalogTest, GraphRegistration) {
  Catalog c;
  EXPECT_TRUE(c.AddGraph("bank", BuildPaperGraph()).ok());
  EXPECT_TRUE(c.HasGraph("bank"));
  EXPECT_EQ(c.AddGraph("bank", BuildPaperGraph()).code(),
            StatusCode::kAlreadyExists);
  auto g = c.GetGraph("bank");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ((*g)->num_nodes(), 14u);
  EXPECT_FALSE(c.GetGraph("other").ok());
  EXPECT_EQ(c.GraphNames(), std::vector<std::string>{"bank"});
}

}  // namespace
}  // namespace gpml
