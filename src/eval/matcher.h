#ifndef GPML_EVAL_MATCHER_H_
#define GPML_EVAL_MATCHER_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "eval/binding.h"
#include "eval/nfa.h"
#include "graph/property_graph.h"

namespace gpml {

/// Evaluation guards. The search is complete and exact; these limits only
/// bound pathological instances (enumeration on dense graphs is inherently
/// exponential, §8's complexity discussion) and surface as
/// kResourceExhausted instead of runaway memory/time.
struct MatcherOptions {
  size_t max_matches = 1u << 20;       // Accepted bindings (pre-selector).
  size_t max_steps = 200u << 20;       // Executed instructions.
};

/// The multiset of reduced path bindings of one path pattern declaration,
/// deduplicated (§6.5) — multiset alternation multiplicity is carried by the
/// provenance tags — in deterministic order (by path length, then discovery).
struct MatchSet {
  std::vector<PathBinding> bindings;
};

/// Execution counters of one RunPattern call (planner benchmarks, EXPLAIN
/// ANALYZE-style reporting).
struct MatchStats {
  size_t seeds = 0;  // Start nodes seeded.
  size_t steps = 0;  // Interpreter instructions executed.
};

/// Runs one compiled pattern over the graph: every admissible start node is
/// seeded, matches are collected, reduced, deduplicated, and the selector
/// (if any) is applied per endpoint partition (§5.1).
///
/// Route selection: patterns without a selector enumerate by DFS (the §5
/// termination rules guarantee finiteness through restrictors); patterns
/// with a selector run a level-order BFS that emits matches in increasing
/// path length with per-product-state pruning sound for each selector kind.
///
/// `seed_filter`, when non-null, replaces the default seeding (label index
/// or all nodes) with the given start nodes — the planner passes the values
/// an earlier declaration bound to the pattern's first variable, which is
/// sound because the join discards every other start. `stats`, when
/// non-null, receives execution counters.
Result<MatchSet> RunPattern(const PropertyGraph& g, const Program& program,
                            const VarTable& vars,
                            const MatcherOptions& options,
                            const std::vector<NodeId>* seed_filter = nullptr,
                            MatchStats* stats = nullptr);

}  // namespace gpml

#endif  // GPML_EVAL_MATCHER_H_
