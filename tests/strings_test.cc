#include "common/strings.h"

#include <gtest/gtest.h>

namespace gpml {
namespace {

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("MaTcH"), "match");
  EXPECT_EQ(ToUpper("trail"), "TRAIL");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("MATCH", "match"));
  EXPECT_TRUE(EqualsIgnoreCase("Shortest", "SHORTEST"));
  EXPECT_FALSE(EqualsIgnoreCase("MATCH", "MATCHES"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringsTest, HashCombineSpreads) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(HashCombine(0, 0), 0u);
}

}  // namespace
}  // namespace gpml
