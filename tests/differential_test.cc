// Property-based differential testing: the literal §6 reference evaluator
// (expand → match → join → reduce → dedup → select) and the production NFA
// engine must produce identical reduced-binding sets on randomized graphs
// for a family of generated patterns. This is the strongest evidence that
// the lazy product-graph search implements the declarative execution model.

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "eval/engine.h"
#include "eval/reference_eval.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"
#include "parser/parser.h"
#include "semantics/normalize.h"

namespace gpml {
namespace {

/// Canonical rendering of a MatchSet for comparison.
std::vector<std::string> Canon(const std::vector<PathBinding>& bindings,
                               const PropertyGraph& g, const VarTable& vars) {
  std::vector<std::string> out;
  out.reserve(bindings.size());
  for (const PathBinding& pb : bindings) {
    std::string s = pb.ToString(g, vars);
    for (int32_t t : pb.tags) s += " #" + std::to_string(t);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Runs both evaluators on the first path declaration of `query`; the
/// reference side applies the final WHERE (a graph-pattern concern, §6.5)
/// through the same RowScope machinery the engine uses.
void ExpectAgreement(const PropertyGraph& g, const std::string& query) {
  Result<GraphPattern> parsed = ParseGraphPattern(query);
  ASSERT_TRUE(parsed.ok()) << query << " -> " << parsed.status();
  Result<GraphPattern> normalized = Normalize(*parsed);
  ASSERT_TRUE(normalized.ok());
  Result<Analysis> analysis = Analyze(*normalized);
  ASSERT_TRUE(analysis.ok()) << query << " -> " << analysis.status();
  VarTable vars(*analysis);

  ReferenceOptions ref_options;
  Result<MatchSet> ref =
      RunReference(g, normalized->paths[0], vars, ref_options);
  ASSERT_TRUE(ref.ok()) << query << " -> " << ref.status();

  if (normalized->where != nullptr) {
    MatchOutput scratch;
    scratch.vars = std::make_shared<VarTable>(*analysis);
    scratch.normalized = *normalized;
    scratch.path_vars = {normalized->paths[0].path_var.empty()
                             ? -1
                             : vars.Find(normalized->paths[0].path_var)};
    std::vector<PathBinding> filtered;
    for (PathBinding& pb : ref->bindings) {
      ResultRow row;
      row.bindings.push_back(std::make_shared<const PathBinding>(pb));
      RowScope scope(scratch, row);
      Result<TriBool> keep =
          EvalPredicate(*normalized->where, g, vars, scope);
      ASSERT_TRUE(keep.ok()) << keep.status();
      if (*keep == TriBool::kTrue) filtered.push_back(std::move(pb));
    }
    ref->bindings = std::move(filtered);
  }

  Engine engine(g);
  Result<MatchOutput> out = engine.Match(*parsed);
  ASSERT_TRUE(out.ok()) << query << " -> " << out.status();

  std::vector<PathBinding> engine_bindings;
  engine_bindings.reserve(out->rows.size());
  for (const ResultRow& row : out->rows) {
    engine_bindings.push_back(*row.bindings[0]);
  }
  EXPECT_EQ(Canon(ref->bindings, g, vars),
            Canon(engine_bindings, g, vars))
      << query << " on " << g.Summary();
}

/// The generated pattern family: a representative slice of the language —
/// orientations, quantifiers, restrictors, unions, alternation, predicates.
/// Selector queries are compared for ALL SHORTEST / SHORTEST k GROUP only
/// (deterministic per Figure 8); nondeterministic selectors may legally
/// differ between evaluators.
const char* kPatternFamily[] = {
    "MATCH (x:L0)",
    "MATCH (x:L0|L1)",
    "MATCH (x:!L2)",
    "MATCH (x)-[e:L0]->(y)",
    "MATCH (x)<-[e:L1]-(y)",
    "MATCH (x)-[e]-(y)",
    "MATCH (x)~[e]~(y)",
    "MATCH (x)~[e]~>(y)",
    "MATCH (x)<~[e]~(y)",
    "MATCH (x)<-[e]->(y)",
    "MATCH (x)-[e:L0]->(y)-[f:L1]->(z)",
    "MATCH (x)-[e]->(y)<-[f]-(z)",
    "MATCH (x WHERE x.w < 50)-[e]->(y WHERE y.w >= 20)",
    "MATCH (x)-[e WHERE e.w > 30]->(y)",
    "MATCH (x)->{2}(y)",
    "MATCH (x)->{1,3}(y)",
    "MATCH (x)-[e:L0]->{0,2}(y)",
    "MATCH TRAIL (x)-[e]->*(y)",
    "MATCH TRAIL (x)-[e:L0]->+(y)",
    "MATCH ACYCLIC (x)-[e]->*(y)",
    "MATCH SIMPLE (x)-[e]->*(y)",
    "MATCH TRAIL (x)-[e]-*(y)",
    "MATCH (x)[-[e:L0]->(m)-[f:L1]->(n)]{1,2}(y)",
    "MATCH (a)[()-[t]->() WHERE t.w>20]{1,2}(b)",
    "MATCH (x)[->(y:L0)] | [->(y:L1)]",
    "MATCH (c:L0) | (c:L1)",
    "MATCH (c:L0) |+| (c:L1)",
    "MATCH (x)[-[e:L0]->(y) | <-[f:L1]-(y)]",
    "MATCH (x) [->(y)]?",
    "MATCH (x)-[e]->(y) WHERE x.w < y.w",
    "MATCH (s)->(m)->(t) WHERE ALL_DIFFERENT(s, m, t)",
    "MATCH (s)-[e]-(t) WHERE s IS SOURCE OF e",
    "MATCH TRAIL (x)-[e]->*(y) WHERE COUNT(e.*) >= 2",
    "MATCH ALL SHORTEST (x:L0)-[e]->*(y:L1)",
    "MATCH ALL SHORTEST (x)-[e:L0]->+(y)",
    "MATCH SHORTEST 2 GROUP (x:L0)-[e]->*(y)",
    "MATCH ALL SHORTEST TRAIL (x:L0)-[e]->*(y:L1)",
    // BFS pruning-soundness stressors: per-iteration predicates referencing
    // variables bound before the loop (environment must be part of the
    // product-state key), and restrictor memory inside the selector route.
    "MATCH ALL SHORTEST (x)[()-[t]->() WHERE t.w >= x.w]{1,3}(y)",
    "MATCH ALL SHORTEST (x:L0)-[e]->(m)[()-[t]->() WHERE t.w > m.w]{0,2}(y)",
    "MATCH ALL SHORTEST TRAIL (x)-[e]-*(y:L2)",
    "MATCH SHORTEST 2 GROUP TRAIL (x:L0)-[e:L0|L1]->*(y)",
};

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(DifferentialTest, ReferenceAgreesWithEngine) {
  auto [seed, query] = GetParam();
  // Small dense-ish graphs keep the reference expansion tractable while
  // still containing cycles, parallel edges and self-loops.
  PropertyGraph g =
      MakeRandomGraph(/*num_nodes=*/6, /*num_edges=*/9, /*num_labels=*/3,
                      /*undirected_fraction=*/0.3,
                      /*seed=*/static_cast<uint64_t>(seed));
  ExpectAgreement(g, query);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, DifferentialTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::ValuesIn(kPatternFamily)),
    [](const ::testing::TestParamInfo<DifferentialTest::ParamType>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_q" +
             std::to_string(info.index % std::size(kPatternFamily));
    });

/// Ordered row rendering (not sorted): the execution-matrix tests require
/// byte-identical rows in identical order, not just equal sets.
std::vector<std::string> OrderedRows(const MatchOutput& out,
                                     const PropertyGraph& g) {
  std::vector<std::string> rows;
  rows.reserve(out.rows.size());
  for (const ResultRow& row : out.rows) {
    std::string s;
    for (const auto& pb : row.bindings) {
      s += pb->ToString(g, *out.vars);
      s += " | ";
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

/// The storage/parallel/planner execution matrix over
/// {csr on/off} x {threads 1,8} x {planner on/off}:
///  * within each planner setting, every {csr, threads} combination must
///    produce byte-identical rows in identical order — CSR partitions
///    preserve the legacy scan order and shards merge in seed order;
///  * across planner on/off the row multiset must be identical (a mirrored
///    declaration discovers the same matches from the other end, so its
///    legal row order within one path-length group can differ — the
///    planner's historical contract, established in the PR 1 tests).
void ExpectMatrixIdentical(const PropertyGraph& g, const std::string& query) {
  std::vector<std::string> planner_baseline[2];
  bool have_planner_baseline[2] = {false, false};
  for (bool csr : {false, true}) {
    for (size_t threads : {size_t{1}, size_t{8}}) {
      for (bool planner : {false, true}) {
        EngineOptions options;
        options.use_csr = csr;
        options.num_threads = threads;
        options.use_planner = planner;
        options.matcher.min_seeds_per_shard = 1;  // Shard tiny seed lists.
        Engine engine(g, options);
        Result<MatchOutput> out = engine.Match(query);
        ASSERT_TRUE(out.ok()) << query << " -> " << out.status();
        std::vector<std::string> rows = OrderedRows(*out, g);
        std::vector<std::string>& baseline = planner_baseline[planner];
        if (!have_planner_baseline[planner]) {
          baseline = std::move(rows);
          have_planner_baseline[planner] = true;
        } else {
          ASSERT_EQ(rows, baseline)
              << query << " diverges at csr=" << csr
              << " threads=" << threads << " planner=" << planner;
        }
      }
    }
  }
  std::vector<std::string> on = planner_baseline[1];
  std::vector<std::string> off = planner_baseline[0];
  std::sort(on.begin(), on.end());
  std::sort(off.begin(), off.end());
  ASSERT_EQ(on, off) << query << ": planner changed the row multiset";
}

TEST(DifferentialMatrixTest, RandomGraphRowsIdenticalAcrossMatrix) {
  const char* queries[] = {
      "MATCH (x:L0)-[e:L1]->(y)",
      "MATCH (x:L0 WHERE x.w < 50)-[e:L0|L1]->(y WHERE y.w >= 20)",
      "MATCH TRAIL (x)-[e:L0]->+(y)",
      "MATCH ALL SHORTEST (x:L0)-[e]->*(y:L1)",
      "MATCH (x:L0)-[e:L1]->(y), (y)-[f:L0]->(z)",
      "MATCH (x)~[e:L2]~(y)-[f]->(z:!L1)",
  };
  for (uint64_t seed : {1u, 4u}) {
    PropertyGraph g = MakeRandomGraph(/*num_nodes=*/24, /*num_edges=*/60,
                                      /*num_labels=*/3,
                                      /*undirected_fraction=*/0.3, seed);
    for (const char* q : queries) ExpectMatrixIdentical(g, q);
  }
}

TEST(DifferentialMatrixTest, FraudGraphRowsIdenticalAcrossMatrix) {
  FraudGraphOptions options;
  options.num_accounts = 80;
  options.num_cities = 2;
  PropertyGraph g = MakeFraudGraph(options);
  const char* queries[] = {
      // Index-seeding candidates (equality predicates on labeled anchors).
      "MATCH (x:Account WHERE x.isBlocked='yes')-[:Transfer]->"
      "(y:Account WHERE y.isBlocked='no')",
      // Label conjunction seeding.
      "MATCH (c:City&Country)<-[:isLocatedIn]-(a:Account)",
      // The paper's shared-phone pattern (undirected + equi-join).
      "MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->"
      "(d:Account)~[:hasPhone]~(p)",
  };
  for (const char* q : queries) ExpectMatrixIdentical(g, q);
}

TEST(DifferentialPaperGraphTest, PaperQueriesAgree) {
  PropertyGraph g = BuildPaperGraph();
  const char* queries[] = {
      "MATCH (x:Account WHERE x.isBlocked='no')",
      "MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->"
      "(d:Account)~[:hasPhone]~(p)",
      "MATCH TRAIL (a WHERE a.owner='Dave')-[t:Transfer]->*"
      "(b WHERE b.owner='Aretha')",
      "MATCH TRAIL (a WHERE a.owner='Jay')"
      "[-[b:Transfer WHERE b.amount>5M]->]+"
      "(a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]",
      "MATCH ALL SHORTEST (a WHERE a.owner='Dave')-[t:Transfer]->*"
      "(b WHERE b.owner='Aretha')",
  };
  for (const char* q : queries) ExpectAgreement(g, q);
}

}  // namespace
}  // namespace gpml
