// Prepared-query + cursor API contracts on the Figure 4 fraud workload
// (300 accounts). Like the other bench gates this is a plain executable
// with checked contracts, run under ctest in the Release CI job:
//
//  1. Plan-cache contract (always enforced): 1000 executions of the
//     parameterized fraud query with 1000 distinct bound values produce
//     exactly 1 plan-cache miss — the first prepare compiles, everything
//     after hits, and EXPLAIN shows cached=true from the second execution
//     on. The literal-inlined rendition of the same workload is measured
//     alongside: every execution fingerprints differently, so it misses
//     (and churns) the cache on every call.
//
//  2. First-row contract: on a single fixed-length declaration the cursor
//     streams out of the matcher in seed-order chunks, so LIMIT 1 must
//     execute >= 10x fewer matcher steps than full materialization
//     (deterministic, always enforced) and be >= 10x faster wall-clock
//     (enforced only on non-sanitized builds; byte-identity of the
//     streamed prefix is asserted either way).
//
//  3. Analysis-overhead contract: the static analyzer (docs/analysis.md)
//     runs on every cold Prepare, so its cost is gated against the rest of
//     the prepare pipeline — cold prepares with use_analysis on must stay
//     within 5% of the same prepares with it off (plus a small absolute
//     epsilon; wall-clock gate enforced only on non-sanitized builds).
//     The measured per-prepare analyzer latency is reported either way.
//
// Writes BENCH_query_api.json via bench_util.h.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eval/engine.h"
#include "gql/session.h"
#include "graph/generator.h"
#include "planner/explain.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GPML_BENCH_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GPML_BENCH_SANITIZED 1
#endif
#endif

namespace gpml {
namespace {

constexpr int kAccounts = 300;
constexpr int kExecutions = 1000;

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

PropertyGraph MakeWorkloadGraph() {
  FraudGraphOptions options;
  options.num_accounts = kAccounts;
  options.num_cities = 3;
  return MakeFraudGraph(options);
}

bool Fail(const char* what) {
  std::fprintf(stderr, "CONTRACT FAILED: %s\n", what);
  return false;
}

/// Contract 1: 1000 literal-varying executions of the parameterized fraud
/// query share one compiled plan.
bool PlanCacheContract(bench::JsonReport* report) {
  Catalog catalog;
  if (!catalog.AddGraph("fraud", MakeWorkloadGraph()).ok()) return false;

  // The Figure 4 fraud pattern, parameterized on the suspect account's
  // owner (prepared-statement style: the client binds a fresh suspect per
  // call; $batch tags the projection, making all 1000 binding sets
  // distinct).
  const std::string parameterized =
      "MATCH (x:Account WHERE x.isBlocked='no' AND x.owner = $owner)"
      "-[:isLocatedIn]->(c:City WHERE c.name = $city)"
      "<-[:isLocatedIn]-(y:Account WHERE y.isBlocked='yes'), "
      "ANY (x)-[:Transfer]->+(y) "
      "RETURN x.owner AS suspect, y.owner AS receiver, $batch AS batch";

  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  Session session(catalog, options);
  if (!session.UseGraph("fraud").ok()) return false;

  size_t misses = 0;
  size_t hits = 0;
  size_t rows = 0;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kExecutions; ++i) {
    Params params = {{"owner", Value::String("u" + std::to_string(
                                                       i % kAccounts))},
                     {"city", Value::String("Ankh-Morpork")},
                     {"batch", Value::Int(i)}};
    Result<Table> table = session.Execute(parameterized, params);
    if (!table.ok()) {
      std::fprintf(stderr, "parameterized execution failed: %s\n",
                   table.status().ToString().c_str());
      return false;
    }
    rows += table->num_rows();
    misses += metrics.plan_cache_misses;
    hits += metrics.plan_cache_hits;
  }
  double param_ms = MillisSince(start);

  // EXPLAIN after the warm-up shows the cached plan.
  Result<Table> explain =
      session.Execute("EXPLAIN " + parameterized);
  bool explain_cached = false;
  if (explain.ok()) {
    for (const Row& row : explain->rows()) {
      if (row[0].ToString().find("cached=true") != std::string::npos) {
        explain_cached = true;
      }
    }
  }

  // The literal-inlined rendition: every execution is a distinct pattern
  // text, so the cache can never serve it.
  EngineMetrics lit_metrics;
  EngineOptions lit_options;
  lit_options.metrics = &lit_metrics;
  Session literal_session(catalog, lit_options);
  if (!literal_session.UseGraph("fraud").ok()) return false;
  size_t literal_hits = 0;
  auto lit_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kExecutions; ++i) {
    std::string text =
        "MATCH (x:Account WHERE x.isBlocked='no' AND x.owner = 'u" +
        std::to_string(i % kAccounts) +
        "')-[:isLocatedIn]->(c:City WHERE c.name = 'Ankh-Morpork')"
        "<-[:isLocatedIn]-(y:Account WHERE y.isBlocked='yes'), "
        "ANY (x)-[:Transfer]->+(y) "
        "RETURN x.owner AS suspect, y.owner AS receiver, " +
        std::to_string(i) + " AS batch";
    Result<Table> table = literal_session.Execute(text);
    if (!table.ok()) {
      std::fprintf(stderr, "literal execution failed: %s\n",
                   table.status().ToString().c_str());
      return false;
    }
    literal_hits += lit_metrics.plan_cache_hits;
  }
  double literal_ms = MillisSince(lit_start);

  std::printf(
      "plan cache: %d parameterized executions -> %zu miss(es), %zu hit(s) "
      "(%.1f ms); literal-inlined -> %zu hit(s) (%.1f ms); EXPLAIN "
      "cached=%s\n",
      kExecutions, misses, hits, param_ms, literal_hits, literal_ms,
      explain_cached ? "true" : "false");

  report->Add("plan_cache_parameterized", param_ms, 0, 0, rows,
              {{"executions", kExecutions},
               {"cache_misses", static_cast<double>(misses)},
               {"cache_hits", static_cast<double>(hits)}});
  report->Add("plan_cache_literal", literal_ms, 0, 0, rows,
              {{"executions", kExecutions},
               {"cache_hits", static_cast<double>(literal_hits)}});

  bool ok = true;
  if (misses != 1) ok = Fail("expected exactly 1 plan-cache miss");
  if (hits < static_cast<size_t>(kExecutions - 1)) {
    ok = Fail("expected >= 999/1000 plan-cache hits");
  }
  if (!explain_cached) ok = Fail("EXPLAIN must show cached=true after warmup");
  return ok;
}

/// Contract 2: LIMIT 1 through the streaming cursor beats full
/// materialization >= 10x in matcher steps (always) and wall time
/// (non-sanitized builds).
bool FirstRowContract(const PropertyGraph& g, bench::JsonReport* report) {
  const std::string query =
      "MATCH (x:Account WHERE x.isBlocked='no')-[t:Transfer]->"
      "(y:Account WHERE y.isBlocked='no')";

  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  Engine engine(g, options);
  Result<PreparedQuery> prepared = engine.Prepare(query);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    return false;
  }

  // Steps: deterministic comparison.
  Result<MatchOutput> full = prepared->Execute();
  if (!full.ok() || full->rows.empty()) return Fail("full run failed/empty");
  const size_t full_steps = metrics.matcher_steps;
  const size_t full_rows = full->rows.size();

  Result<Cursor> first = prepared->Open({}, uint64_t{1});
  if (!first.ok()) return false;
  RowView view;
  Result<bool> more = first->Next(&view);
  if (!more.ok() || !*more) return Fail("cursor produced no first row");
  const size_t first_steps = metrics.matcher_steps;

  // Byte-identity of the streamed prefix.
  {
    std::string a;
    for (const auto& pb : view.row->bindings) {
      a += pb->ToString(g, *view.context->vars);
    }
    std::string b;
    for (const auto& pb : full->rows[0].bindings) {
      b += pb->ToString(g, *full->vars);
    }
    if (a != b) return Fail("streamed first row differs from Match row 0");
  }

  // Wall time over repetitions (plan cache warm, prepared reused).
  constexpr int kReps = 200;
  auto full_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    Result<MatchOutput> out = prepared->Execute();
    if (!out.ok()) return false;
  }
  double full_ms = MillisSince(full_start) / kReps;

  auto stream_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    Result<Cursor> cursor = prepared->Open({}, uint64_t{1});
    if (!cursor.ok()) return false;
    RowView v;
    Result<bool> got = cursor->Next(&v);
    if (!got.ok() || !*got) return false;
  }
  double stream_ms = MillisSince(stream_start) / kReps;

  double step_ratio = static_cast<double>(full_steps) /
                      static_cast<double>(first_steps == 0 ? 1 : first_steps);
  double wall_ratio = stream_ms > 0 ? full_ms / stream_ms : 0;
  std::printf(
      "first row: full %zu steps / %.4f ms vs LIMIT 1 %zu steps / %.4f ms "
      "(step ratio %.1fx, wall ratio %.1fx, %zu rows)\n",
      full_steps, full_ms, first_steps, stream_ms, step_ratio, wall_ratio,
      full_rows);

  report->Add("limit1_full", full_ms, 0, full_steps, full_rows);
  report->Add("limit1_stream", stream_ms, 0, first_steps, 1,
              {{"step_ratio", step_ratio}, {"wall_ratio", wall_ratio}});

  bool ok = true;
  if (step_ratio < 10.0) {
    ok = Fail("LIMIT 1 must execute >= 10x fewer matcher steps");
  }
#ifdef GPML_BENCH_SANITIZED
  std::printf("wall-ratio gate: SKIPPED (sanitizer build distorts timings)\n");
#else
  if (wall_ratio < 10.0) {
    ok = Fail("LIMIT 1 first-row latency must be >= 10x better");
  }
#endif
  return ok;
}

/// Contract 3: static analysis adds <= 5% to a cold prepare. Plan cache is
/// disabled so every Prepare pays the full parse/normalize/analyze/plan
/// cost; the two configurations are measured interleaved to cancel drift.
bool AnalysisOverheadContract(const PropertyGraph& g,
                              bench::JsonReport* report) {
  const std::string query =
      "MATCH (x:Account WHERE x.isBlocked='no' AND x.owner = $owner)"
      "-[:isLocatedIn]->(c:City WHERE c.name = $city)"
      "<-[:isLocatedIn]-(y:Account WHERE y.isBlocked='yes'), "
      "ANY (x)-[:Transfer]->+(y)";
  constexpr int kReps = 300;

  EngineOptions base;
  base.use_plan_cache = false;  // Every Prepare is a cold compile.
  base.publish_metrics = false;
  EngineOptions no_analysis = base;
  no_analysis.use_analysis = false;
  Engine analyzed(g, base);
  Engine plain(g, no_analysis);

  double analyzed_ms = 0;
  double plain_ms = 0;
  double analysis_pass_ms = 0;
  for (int i = -20; i < kReps; ++i) {
    // Alternate which configuration runs first: the second Prepare of a
    // pair benefits from warm allocator/cache state, which would otherwise
    // bias the comparison one way for sub-50us operations.
    Engine& first = (i & 1) != 0 ? analyzed : plain;
    Engine& second = (i & 1) != 0 ? plain : analyzed;
    auto t0 = std::chrono::steady_clock::now();
    Result<PreparedQuery> f = first.Prepare(query);
    double f_ms = MillisSince(t0);
    auto t1 = std::chrono::steady_clock::now();
    Result<PreparedQuery> s = second.Prepare(query);
    double s_ms = MillisSince(t1);
    if (!f.ok() || !s.ok()) return Fail("cold prepare failed");
    if (i < 0) continue;  // Warmup reps.
    double a_ms = (i & 1) != 0 ? f_ms : s_ms;
    double p_ms = (i & 1) != 0 ? s_ms : f_ms;
    analyzed_ms += a_ms;
    plain_ms += p_ms;
    analysis_pass_ms += ((i & 1) != 0 ? f : s)->analysis_ms();
  }
  analyzed_ms /= kReps;
  plain_ms /= kReps;
  analysis_pass_ms /= kReps;

  double overhead_pct =
      plain_ms > 0 ? (analyzed_ms - plain_ms) / plain_ms * 100.0 : 0;
  std::printf(
      "analysis overhead: cold prepare %.4f ms with analysis vs %.4f ms "
      "without (%.1f%%); analyzer pass alone %.4f ms\n",
      analyzed_ms, plain_ms, overhead_pct, analysis_pass_ms);

  report->Add("prepare_cold_analysis_on", analyzed_ms, 0, 0, 0,
              {{"reps", kReps},
               {"analysis_pass_ms", analysis_pass_ms},
               {"overhead_pct", overhead_pct}});
  report->Add("prepare_cold_analysis_off", plain_ms, 0, 0, 0,
              {{"reps", kReps}});

  bool ok = true;
#ifdef GPML_BENCH_SANITIZED
  std::printf("analysis gate: SKIPPED (sanitizer build distorts timings)\n");
#else
  // 5% relative plus 5us absolute: sub-millisecond prepares jitter by
  // scheduler noise alone, which a pure ratio would amplify.
  if (analyzed_ms > plain_ms * 1.05 + 0.005) {
    ok = Fail("analysis must add <= 5% to cold prepare latency");
  }
#endif
  return ok;
}

}  // namespace
}  // namespace gpml

int main() {
  gpml::PropertyGraph g = gpml::MakeWorkloadGraph();
  gpml::bench::JsonReport report("query_api");
  bool ok = true;
  ok = gpml::PlanCacheContract(&report) && ok;
  ok = gpml::FirstRowContract(g, &report) && ok;
  ok = gpml::AnalysisOverheadContract(g, &report) && ok;
  report.Write();
  if (!ok) return 1;
  std::printf("bench_query_api: all contracts PASSED\n");
  return 0;
}
