#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace gpml {
namespace {

std::vector<TokenKind> Kinds(const std::string& s) {
  Result<std::vector<Token>> tokens = Tokenize(s);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  std::vector<TokenKind> out;
  for (const Token& t : *tokens) out.push_back(t.kind);
  return out;
}

using K = TokenKind;

TEST(LexerTest, Identifiers) {
  auto ks = Kinds("MATCH owner _x a1");
  EXPECT_EQ(ks, (std::vector<K>{K::kIdent, K::kIdent, K::kIdent, K::kIdent,
                                K::kEnd}));
}

TEST(LexerTest, IntegerLiterals) {
  Result<std::vector<Token>> ts = Tokenize("42 5M 10K 0");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ((*ts)[0].int_value, 42);
  EXPECT_EQ((*ts)[1].int_value, 5'000'000);
  EXPECT_EQ((*ts)[2].int_value, 10'000);
  EXPECT_EQ((*ts)[3].int_value, 0);
}

TEST(LexerTest, MagnitudeSuffixNotPartOfIdentifier) {
  // "5Max" is 5 then identifier Max, not 5M then ax.
  Result<std::vector<Token>> ts = Tokenize("5Max");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ((*ts)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*ts)[0].int_value, 5);
  EXPECT_EQ((*ts)[1].text, "Max");
}

TEST(LexerTest, DoubleLiterals) {
  Result<std::vector<Token>> ts = Tokenize("3.25 1.5M");
  ASSERT_TRUE(ts.ok());
  EXPECT_DOUBLE_EQ((*ts)[0].double_value, 3.25);
  EXPECT_DOUBLE_EQ((*ts)[1].double_value, 1'500'000.0);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  Result<std::vector<Token>> ts = Tokenize("'Ankh-Morpork' 'O''Neil'");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ((*ts)[0].string_value, "Ankh-Morpork");
  EXPECT_EQ((*ts)[1].string_value, "O'Neil");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, EdgePatternOperators) {
  EXPECT_EQ(Kinds("<-[e]-"), (std::vector<K>{K::kArrowLeft, K::kLBracket,
                                             K::kIdent, K::kRBracket,
                                             K::kMinus, K::kEnd}));
  EXPECT_EQ(Kinds("-[e]->"), (std::vector<K>{K::kMinus, K::kLBracket,
                                             K::kIdent, K::kRBracket,
                                             K::kArrowRight, K::kEnd}));
  EXPECT_EQ(Kinds("~[e]~>"), (std::vector<K>{K::kTilde, K::kLBracket,
                                             K::kIdent, K::kRBracket,
                                             K::kTildeRight, K::kEnd}));
  EXPECT_EQ(Kinds("<~[e]~"), (std::vector<K>{K::kLeftTilde, K::kLBracket,
                                             K::kIdent, K::kRBracket,
                                             K::kTilde, K::kEnd}));
}

TEST(LexerTest, AbbreviatedEdgeOperators) {
  EXPECT_EQ(Kinds("<-> <- -> <~ ~> ~ -"),
            (std::vector<K>{K::kLeftRight, K::kArrowLeft, K::kArrowRight,
                            K::kLeftTilde, K::kTildeRight, K::kTilde,
                            K::kMinus, K::kEnd}));
}

TEST(LexerTest, ComparisonOperators) {
  EXPECT_EQ(Kinds("= <> < <= > >="),
            (std::vector<K>{K::kEq, K::kNeq, K::kLt, K::kLe, K::kGt, K::kGe,
                            K::kEnd}));
}

TEST(LexerTest, MultisetAlternationToken) {
  EXPECT_EQ(Kinds("a |+| b"), (std::vector<K>{K::kIdent, K::kPipePlusPipe,
                                              K::kIdent, K::kEnd}));
  // Without the bars it is a plain plus.
  EXPECT_EQ(Kinds("a | + |"),
            (std::vector<K>{K::kIdent, K::kPipe, K::kPlus, K::kPipe,
                            K::kEnd}));
}

TEST(LexerTest, QuantifierPunctuation) {
  EXPECT_EQ(Kinds("{2,5} * + ?"),
            (std::vector<K>{K::kLBrace, K::kInt, K::kComma, K::kInt,
                            K::kRBrace, K::kStar, K::kPlus, K::kQuestion,
                            K::kEnd}));
}

TEST(LexerTest, OffsetsRecorded) {
  Result<std::vector<Token>> ts = Tokenize("ab cd");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ((*ts)[0].offset, 0u);
  EXPECT_EQ((*ts)[1].offset, 3u);
}

TEST(LexerTest, UnexpectedCharacter) {
  Result<std::vector<Token>> ts = Tokenize("a @ b");
  EXPECT_FALSE(ts.ok());
  EXPECT_EQ(ts.status().code(), StatusCode::kSyntaxError);
}

TEST(LexerTest, ParameterPlaceholders) {
  Result<std::vector<Token>> ts = Tokenize("$owner $_x $a1");
  ASSERT_TRUE(ts.ok()) << ts.status();
  ASSERT_EQ(ts->size(), 4u);  // Three params + end.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*ts)[i].kind, K::kParam);
  }
  // The token text is the bare name: '$' never reaches the parser.
  EXPECT_EQ((*ts)[0].text, "owner");
  EXPECT_EQ((*ts)[1].text, "_x");
  EXPECT_EQ((*ts)[2].text, "a1");
}

TEST(LexerTest, ParameterRequiresName) {
  EXPECT_EQ(Tokenize("$").status().code(), StatusCode::kSyntaxError);
  EXPECT_EQ(Tokenize("$1").status().code(), StatusCode::kSyntaxError);
  EXPECT_EQ(Tokenize("x = $ y").status().code(), StatusCode::kSyntaxError);
}

}  // namespace
}  // namespace gpml
