#include <gtest/gtest.h>

#include "baseline/rpq_nfa.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"

namespace gpml {
namespace baseline {
namespace {

// E22 (§7.2): shortest paths under arbitrary regular expressions via the
// product automaton — the research question answered with the textbook
// construction, cross-checked against the GPML engine's selector.

Path Shortest(const PropertyGraph& g, const std::string& regex,
              const std::string& from, const std::string& to) {
  Result<RegexPtr> r = ParseRegex(regex);
  EXPECT_TRUE(r.ok()) << r.status();
  RpqNfa nfa = BuildNfa(**r);
  Result<Path> p =
      ShortestRegexPath(g, nfa, g.FindNode(from), g.FindNode(to));
  EXPECT_TRUE(p.ok()) << regex << ": " << p.status();
  return p.ok() ? *p : Path{};
}

TEST(RpqShortestTest, PlainTransferStar) {
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(Shortest(g, "Transfer*", "a6", "a2").ToString(g),
            "path(a6,t5,a3,t2,a2)");
}

TEST(RpqShortestTest, ZeroLengthWhenSourceIsTarget) {
  PropertyGraph g = BuildPaperGraph();
  Path p = Shortest(g, "Transfer*", "a1", "a1");
  EXPECT_EQ(p.Length(), 0u);
}

TEST(RpqShortestTest, NonTrivialRegexShapesThePath) {
  PropertyGraph g = BuildPaperGraph();
  // Exactly (Transfer/Transfer)+ — even-length transfer walks only. The
  // direct a6->a3->a2 walk has even length, so it qualifies; a target at
  // odd distance must detour.
  Path p = Shortest(g, "(Transfer/Transfer)+", "a6", "a2");
  EXPECT_EQ(p.Length(), 2u) << p.ToString(g);
  // a6->a5 is 1 transfer; the even-length constraint forces length >= 2.
  Path detour = Shortest(g, "(Transfer/Transfer)+", "a6", "a5");
  EXPECT_EQ(detour.Length() % 2, 0u);
  EXPECT_EQ(detour.Length(), 2u) << detour.ToString(g);
  EXPECT_EQ(detour.ToString(g), "path(a6,t5,a3,t7,a5)");
}

TEST(RpqShortestTest, InverseAllowsBacktracking) {
  PropertyGraph g = BuildPaperGraph();
  // a2 backwards over its incoming transfer, then onwards: ^Transfer/
  // Transfer reaches siblings of a2's senders.
  Path p = Shortest(g, "^Transfer/Transfer", "a2", "a5");
  EXPECT_EQ(p.Length(), 2u);
  EXPECT_EQ(p.ToString(g), "path(a2,t2,a3,t7,a5)");
}

TEST(RpqShortestTest, MixedLabelRegex) {
  PropertyGraph g = BuildPaperGraph();
  // Transfers then a location hop.
  Path p = Shortest(g, "Transfer+/isLocatedIn", "a4", "c1");
  // a4 -> a6 -> a3 (2 transfers) -> c1.
  EXPECT_EQ(p.Length(), 3u);
  EXPECT_EQ(p.ToString(g), "path(a4,t4,a6,t5,a3,li3,c1)");
}

TEST(RpqShortestTest, UnreachableIsNotFound) {
  PropertyGraph g = BuildPaperGraph();
  Result<RegexPtr> r = ParseRegex("Transfer+");
  RpqNfa nfa = BuildNfa(**r);
  // Phones have no Transfer edges.
  Result<Path> p = ShortestRegexPath(g, nfa, g.FindNode("p1"),
                                     g.FindNode("a1"));
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

TEST(RpqShortestTest, AgreesWithGpmlAnyShortestOnGrids) {
  PropertyGraph g = MakeGridGraph(4, 4);
  Path p = Shortest(g, "Transfer*", "g0_0", "g3_3");
  EXPECT_EQ(p.Length(), 6u);
}

TEST(RpqShortestTest, LargeCyclePerformanceSanity) {
  PropertyGraph g = MakeCycleGraph(5000);
  Path p = Shortest(g, "Transfer+", "v0", "v4999");
  EXPECT_EQ(p.Length(), 4999u);
}

}  // namespace
}  // namespace baseline
}  // namespace gpml
