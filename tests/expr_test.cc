#include "ast/expr.h"

#include <gtest/gtest.h>

namespace gpml {
namespace {

TEST(ExprTest, FactoryKinds) {
  EXPECT_EQ(Expr::Lit(Value::Int(1))->kind, Expr::Kind::kLiteral);
  EXPECT_EQ(Expr::Var("x")->kind, Expr::Kind::kVarRef);
  EXPECT_EQ(Expr::Prop("x", "owner")->kind, Expr::Kind::kPropertyAccess);
  EXPECT_EQ(Expr::Not(Expr::Var("x"))->kind, Expr::Kind::kNot);
  EXPECT_EQ(Expr::IsDirected("e")->kind, Expr::Kind::kIsDirected);
  EXPECT_EQ(Expr::PathLength("p")->kind, Expr::Kind::kPathLength);
}

TEST(ExprTest, PrintingPrecedence) {
  // (1 + 2) * 3 needs parens; 1 + 2 * 3 does not.
  ExprPtr sum = Expr::Binary(BinaryOp::kAdd, Expr::Lit(Value::Int(1)),
                             Expr::Lit(Value::Int(2)));
  ExprPtr mul =
      Expr::Binary(BinaryOp::kMul, sum, Expr::Lit(Value::Int(3)));
  EXPECT_EQ(mul->ToString(), "(1 + 2) * 3");

  ExprPtr mul2 = Expr::Binary(BinaryOp::kMul, Expr::Lit(Value::Int(2)),
                              Expr::Lit(Value::Int(3)));
  ExprPtr sum2 = Expr::Binary(BinaryOp::kAdd, Expr::Lit(Value::Int(1)), mul2);
  EXPECT_EQ(sum2->ToString(), "1 + 2 * 3");
}

TEST(ExprTest, PrintingStringsQuoted) {
  ExprPtr e = Expr::Binary(BinaryOp::kEq, Expr::Prop("x", "owner"),
                           Expr::Lit(Value::String("Jay")));
  EXPECT_EQ(e->ToString(), "x.owner = 'Jay'");
}

TEST(ExprTest, PrintingAggregates) {
  ExprPtr e = Expr::Aggregate(AggFunc::kSum, Expr::Prop("t", "amount"));
  EXPECT_EQ(e->ToString(), "SUM(t.amount)");
  e = Expr::Aggregate(AggFunc::kCount, Expr::Prop("e", "*"), true);
  EXPECT_EQ(e->ToString(), "COUNT(DISTINCT e.*)");
  e = Expr::Aggregate(AggFunc::kListAgg, Expr::Prop("e", "ID"), false, ", ");
  EXPECT_EQ(e->ToString(), "LISTAGG(e.ID, ', ')");
}

TEST(ExprTest, PrintingPredicates) {
  EXPECT_EQ(Expr::IsSourceOf("s", "e")->ToString(), "s IS SOURCE OF e");
  EXPECT_EQ(Expr::IsDestinationOf("d", "e")->ToString(),
            "d IS DESTINATION OF e");
  EXPECT_EQ(Expr::Same({"p", "q"})->ToString(), "SAME(p, q)");
  EXPECT_EQ(Expr::AllDifferent({"a", "b", "c"})->ToString(),
            "ALL_DIFFERENT(a, b, c)");
  EXPECT_EQ(Expr::IsNull(Expr::Var("x"), false)->ToString(), "x IS NULL");
  EXPECT_EQ(Expr::IsNull(Expr::Var("x"), true)->ToString(), "x IS NOT NULL");
}

TEST(ExprTest, ContainsAggregate) {
  ExprPtr plain = Expr::Binary(BinaryOp::kGt, Expr::Prop("t", "amount"),
                               Expr::Lit(Value::Int(1)));
  EXPECT_FALSE(plain->ContainsAggregate());
  ExprPtr agg = Expr::Binary(
      BinaryOp::kGt, Expr::Aggregate(AggFunc::kSum, Expr::Prop("t", "amount")),
      Expr::Lit(Value::Int(1)));
  EXPECT_TRUE(agg->ContainsAggregate());
}

TEST(ExprTest, CollectVariables) {
  ExprPtr e = Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kEq, Expr::Prop("x", "a"), Expr::Var("y")),
      Expr::Same({"p", "q"}));
  std::vector<std::string> vars;
  e->CollectVariables(&vars);
  EXPECT_EQ(vars, (std::vector<std::string>{"x", "y", "p", "q"}));
}

TEST(ExprTest, StructuralEquality) {
  ExprPtr a = Expr::Binary(BinaryOp::kEq, Expr::Prop("x", "o"),
                           Expr::Lit(Value::Int(1)));
  ExprPtr b = Expr::Binary(BinaryOp::kEq, Expr::Prop("x", "o"),
                           Expr::Lit(Value::Int(1)));
  ExprPtr c = Expr::Binary(BinaryOp::kNeq, Expr::Prop("x", "o"),
                           Expr::Lit(Value::Int(1)));
  EXPECT_TRUE(Expr::Equal(a, b));
  EXPECT_FALSE(Expr::Equal(a, c));
  EXPECT_FALSE(Expr::Equal(a, nullptr));
}

}  // namespace
}  // namespace gpml
