// E13 (Figure 7): restrictor enumeration cost. TRAIL enumerates up to |E|!
// walks on dense graphs (the §8 complexity wall); ACYCLIC/SIMPLE are
// bounded by node permutations. The shape to observe: explosive growth in
// clique size, near-linear behaviour on sparse cyclic graphs.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace gpml {
namespace {

using bench::RunOrDie;

void BM_Fig7_TrailOnClique(benchmark::State& state) {
  // K5 already has over a million u0->u1 trails (the worst-case wall of
  // §8's complexity discussion, [38]); the sweep stops at K4.
  PropertyGraph g = MakeCompleteGraph(static_cast<int>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunOrDie(
        g, "MATCH TRAIL (a WHERE a.owner='u0')-[:Transfer]->*"
           "(b WHERE b.owner='u1')");
    benchmark::DoNotOptimize(rows);
  }
  state.counters["trails"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig7_TrailOnClique)->Arg(3)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_Fig7_AcyclicOnClique(benchmark::State& state) {
  PropertyGraph g = MakeCompleteGraph(static_cast<int>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunOrDie(
        g, "MATCH ACYCLIC (a WHERE a.owner='u0')-[:Transfer]->*"
           "(b WHERE b.owner='u1')");
    benchmark::DoNotOptimize(rows);
  }
  state.counters["paths"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig7_AcyclicOnClique)->Arg(4)->Arg(5)->Arg(6)->Arg(7)->Unit(
    benchmark::kMillisecond);

void BM_Fig7_SimpleOnClique(benchmark::State& state) {
  PropertyGraph g = MakeCompleteGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(
        g, "MATCH SIMPLE (a WHERE a.owner='u0')-[:Transfer]->*(a)"));
  }
}
BENCHMARK(BM_Fig7_SimpleOnClique)->Arg(4)->Arg(5)->Arg(6)->Unit(
    benchmark::kMillisecond);

void BM_Fig7_TrailOnSparseCycle(benchmark::State& state) {
  PropertyGraph g = MakeCycleGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(
        g, "MATCH TRAIL (a WHERE a.owner='u0')-[:Transfer]->*(b)"));
  }
}
BENCHMARK(BM_Fig7_TrailOnSparseCycle)->Arg(64)->Arg(256)->Arg(1024);

void BM_Fig7_RestrictorsOnPaperQuery(benchmark::State& state) {
  // The §5.1 Dave→Aretha query under each restrictor.
  static PropertyGraph* g = new PropertyGraph(BuildPaperGraph());
  const char* restrictor =
      state.range(0) == 0 ? "TRAIL" : (state.range(0) == 1 ? "ACYCLIC"
                                                           : "SIMPLE");
  std::string query = std::string("MATCH ") + restrictor +
                      " (a WHERE a.owner='Dave')-[t:Transfer]->*"
                      "(b WHERE b.owner='Aretha')";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(*g, query));
  }
  state.SetLabel(restrictor);
}
BENCHMARK(BM_Fig7_RestrictorsOnPaperQuery)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace gpml
