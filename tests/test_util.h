#ifndef GPML_TESTS_TEST_UTIL_H_
#define GPML_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "eval/engine.h"
#include "gql/result_table.h"
#include "parser/parser.h"

namespace gpml {
namespace testing_util {

/// Runs `match_text` and projects `columns` ("x, y.owner, p"), returning
/// rows rendered as "v1|v2|..." strings, sorted for order-insensitive
/// comparison. Errors surface as a single "ERROR: ..." row so assertions
/// show the message.
inline std::vector<std::string> Rows(const PropertyGraph& g,
                                     const std::string& match_text,
                                     const std::string& columns,
                                     EngineOptions options = {}) {
  Engine engine(g, options);
  Result<MatchOutput> out = engine.Match(match_text);
  if (!out.ok()) return {"ERROR: " + out.status().ToString()};
  Result<std::vector<ReturnItem>> items = ParseColumns(columns);
  if (!items.ok()) return {"ERROR: " + items.status().ToString()};
  Result<Table> table = ProjectRows(*out, g, *items, /*distinct=*/false);
  if (!table.ok()) return {"ERROR: " + table.status().ToString()};
  std::vector<std::string> rows;
  rows.reserve(table->num_rows());
  for (const Row& r : table->rows()) {
    std::vector<std::string> cells;
    cells.reserve(r.size());
    for (const Value& v : r) cells.push_back(v.ToString());
    rows.push_back(Join(cells, "|"));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Number of result rows of a match (post-join, post-postfilter).
inline size_t CountRows(const PropertyGraph& g, const std::string& match_text,
                        EngineOptions options = {}) {
  Engine engine(g, options);
  Result<MatchOutput> out = engine.Match(match_text);
  if (!out.ok()) {
    ADD_FAILURE() << match_text << " -> " << out.status();
    return 0;
  }
  return out->rows.size();
}

/// The status of running a match (for error-path assertions).
inline Status MatchStatusOf(const PropertyGraph& g,
                            const std::string& match_text,
                            EngineOptions options = {}) {
  Engine engine(g, options);
  Result<MatchOutput> out = engine.Match(match_text);
  return out.ok() ? Status::OK() : out.status();
}

/// Sorted path renderings of the declaration's path variable `p`.
inline std::vector<std::string> Paths(const PropertyGraph& g,
                                      const std::string& match_text,
                                      EngineOptions options = {}) {
  return Rows(g, match_text, "p", options);
}

}  // namespace testing_util
}  // namespace gpml

#endif  // GPML_TESTS_TEST_UTIL_H_
