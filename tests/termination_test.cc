#include "semantics/termination.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "semantics/normalize.h"

namespace gpml {
namespace {

// E17: the static termination rules of §5 and §5.3.

Status CheckText(const std::string& text) {
  Result<GraphPattern> g = ParseGraphPattern(text);
  EXPECT_TRUE(g.ok()) << g.status();
  Result<GraphPattern> n = Normalize(*g);
  EXPECT_TRUE(n.ok()) << n.status();
  Result<Analysis> a = Analyze(*n);
  EXPECT_TRUE(a.ok()) << a.status();
  return CheckTermination(*n, *a);
}

TEST(TerminationTest, UnboundedWithoutScopeRejected) {
  Status st = CheckText("MATCH (a)-[t:Transfer]->*(b)");
  EXPECT_EQ(st.code(), StatusCode::kNonTerminating);
}

TEST(TerminationTest, PlusWithoutScopeRejected) {
  EXPECT_EQ(CheckText("MATCH (a)-[t:Transfer]->+(b)").code(),
            StatusCode::kNonTerminating);
}

TEST(TerminationTest, OpenRangeWithoutScopeRejected) {
  EXPECT_EQ(CheckText("MATCH (a)->{3,}(b)").code(),
            StatusCode::kNonTerminating);
}

TEST(TerminationTest, BoundedQuantifierFine) {
  EXPECT_TRUE(CheckText("MATCH (a)->{1,10}(b)").ok());
}

TEST(TerminationTest, RestrictorAtHeadBounds) {
  EXPECT_TRUE(CheckText("MATCH TRAIL (a)-[t]->*(b)").ok());
  EXPECT_TRUE(CheckText("MATCH ACYCLIC (a)-[t]->*(b)").ok());
  EXPECT_TRUE(CheckText("MATCH SIMPLE (a)-[t]->*(b)").ok());
}

TEST(TerminationTest, SelectorAtHeadBounds) {
  EXPECT_TRUE(CheckText("MATCH ANY SHORTEST (a)-[t]->*(b)").ok());
  EXPECT_TRUE(CheckText("MATCH ALL SHORTEST (a)-[t]->*(b)").ok());
  EXPECT_TRUE(CheckText("MATCH SHORTEST 3 GROUP (a)-[t]->*(b)").ok());
}

TEST(TerminationTest, ParenRestrictorBoundsInnerQuantifier) {
  // §5.3's repaired query: restrictor inside the parens, quantifier within.
  EXPECT_TRUE(CheckText("MATCH [TRAIL (x)-[e]->*(y)]").ok());
}

TEST(TerminationTest, PerIterationRestrictorDoesNotBoundItsOwnQuantifier) {
  // [TRAIL body]* bounds each iteration's segment, not the loop: the number
  // of iterations stays unbounded.
  EXPECT_EQ(CheckText("MATCH [TRAIL (x)-[e]->(y)]*").code(),
            StatusCode::kNonTerminating);
}

TEST(TerminationTest, MultipleDeclsCheckedIndependently) {
  Status st = CheckText("MATCH TRAIL (a)->*(b), (c)-[t]->*(d)");
  EXPECT_EQ(st.code(), StatusCode::kNonTerminating)
      << "second declaration has no restrictor/selector";
}

// --- §5.3: prefilter aggregates over effectively-unbounded groups ---------

TEST(TerminationTest, PrefilterAggregateOverUnboundedGroupRejected) {
  // The paper's example: ALL SHORTEST [(x)-[e]->*(y) WHERE COUNT(e.*)...].
  Status st = CheckText(
      "MATCH ALL SHORTEST [(x)-[e]->*(y) WHERE "
      "COUNT(e.*)/(COUNT(e.*)+1) > 1]");
  EXPECT_EQ(st.code(), StatusCode::kNonTerminating);
  EXPECT_NE(st.message().find("§5.3"), std::string::npos);
}

TEST(TerminationTest, PostfilterAggregateAllowed) {
  // Moving the predicate to the final WHERE makes e effectively bounded.
  EXPECT_TRUE(CheckText("MATCH ALL SHORTEST (x)-[e]->*(y) WHERE "
                        "COUNT(e.*)/(COUNT(e.*)+1) > 1")
                  .ok());
}

TEST(TerminationTest, StaticBoundMakesPrefilterLegal) {
  EXPECT_TRUE(CheckText("MATCH ALL SHORTEST [(x)-[e]->{0,10}(y) WHERE "
                        "COUNT(e.*)/(COUNT(e.*)+1) > 1]")
                  .ok());
}

TEST(TerminationTest, RestrictorMakesPrefilterLegal) {
  // The paper's other repair: TRAIL inside the parenthesized pattern.
  EXPECT_TRUE(CheckText("MATCH ALL SHORTEST [TRAIL (x)-[e]->*(y) WHERE "
                        "COUNT(e.*)/(COUNT(e.*)+1) > 1]")
                  .ok());
}

TEST(TerminationTest, IterationPredicateOverBoundedGroupAllowed) {
  EXPECT_TRUE(
      CheckText("MATCH (a)[()-[t]->() WHERE t.amount>1M]{2,5}(b)").ok());
}

TEST(TerminationTest, AvgOnUnboundedGroupPrefilterRejected) {
  // §7.2's research-question query shape (KEEP aside): AVG over unbounded e.
  Status st =
      CheckText("MATCH ANY SHORTEST [(x)-[e]->*(y) WHERE AVG(e.a) < 1]");
  EXPECT_EQ(st.code(), StatusCode::kNonTerminating);
}

}  // namespace
}  // namespace gpml
