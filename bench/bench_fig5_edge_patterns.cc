// E6 (Figure 5): all seven edge-pattern orientations on a mixed graph —
// the relative cost of each orientation class (directed-only traversals
// visit fewer adjacency entries than `-`).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace gpml {
namespace {

using bench::RunOrDie;

PropertyGraph& MixedGraph() {
  static PropertyGraph* g = new PropertyGraph(
      MakeRandomGraph(2000, 8000, 4, 0.3, 99));
  return *g;
}

void RunOrientation(benchmark::State& state, const char* pattern) {
  PropertyGraph& g = MixedGraph();
  std::string query = std::string("MATCH (x)") + pattern + "(y)";
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunOrDie(g, query);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_Fig5_PointingRight(benchmark::State& s) { RunOrientation(s, "-[e]->"); }
void BM_Fig5_PointingLeft(benchmark::State& s) { RunOrientation(s, "<-[e]-"); }
void BM_Fig5_Undirected(benchmark::State& s) { RunOrientation(s, "~[e]~"); }
void BM_Fig5_LeftOrUndirected(benchmark::State& s) {
  RunOrientation(s, "<~[e]~");
}
void BM_Fig5_UndirectedOrRight(benchmark::State& s) {
  RunOrientation(s, "~[e]~>");
}
void BM_Fig5_LeftOrRight(benchmark::State& s) { RunOrientation(s, "<-[e]->"); }
void BM_Fig5_Any(benchmark::State& s) { RunOrientation(s, "-[e]-"); }

BENCHMARK(BM_Fig5_PointingRight)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_PointingLeft)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_Undirected)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_LeftOrUndirected)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_UndirectedOrRight)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_LeftOrRight)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_Any)->Unit(benchmark::kMillisecond);

void BM_Fig5_LabelFiltered(benchmark::State& state) {
  // Label expressions prune during the edge step.
  PropertyGraph& g = MixedGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(g, "MATCH (x)-[e:L0|L1]->(y)"));
  }
}
BENCHMARK(BM_Fig5_LabelFiltered)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gpml
