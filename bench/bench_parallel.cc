// Parallel-execution and plan-cache contracts on the Figure 4 fraud
// workload (300 accounts). Like bench_planner this is a plain executable
// with a checked contract, run under ctest as a regression gate:
//
//  1. Correctness (always enforced): num_threads ∈ {1, 4} and plan cache
//     on/off produce identical rows in identical order, and the matcher
//     executes the identical instruction count.
//  2. Speedup (enforced only with >= 4 hardware threads and no sanitizer):
//     4 worker threads must cut wall time by >= 2x vs num_threads=1.
//  3. Plan-cache latency (always enforced): the second compilation of an
//     identical query — a cache hit skipping normalize/analyze/plan — must
//     be >= 10x faster than the first on a cold graph.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "eval/engine.h"
#include "graph/generator.h"
#include "parser/parser.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GPML_BENCH_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GPML_BENCH_SANITIZED 1
#endif
#endif

namespace gpml {
namespace {

struct Workload {
  const char* name;
  std::string query;
  /// Only substantial workloads gate the 2x speedup; sub-10ms queries are
  /// dominated by shard spawn/merge overhead and gate correctness only.
  bool gate_speedup = false;
};

const Workload kWorkloads[] = {
    {"fig4_fraud_any",
     "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
     "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
     "(y:Account WHERE y.isBlocked='yes'), "
     "ANY (x)-[:Transfer]->+(y)",
     /*gate_speedup=*/true},
    {"fig4_colocation_join",
     "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
     "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
     "(y:Account WHERE y.isBlocked='yes'), "
     "(x)-[t:Transfer]->(y2:Account), (y2)-[t2:Transfer]->(y)",
     /*gate_speedup=*/false},
};

PropertyGraph MakeWorkloadGraph() {
  FraudGraphOptions options;
  options.num_accounts = 300;
  options.num_cities = 3;
  return MakeFraudGraph(options);
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One row per result, order-preserving, for byte-identity checks.
std::vector<std::string> CanonRows(const MatchOutput& out,
                                   const PropertyGraph& g) {
  std::vector<std::string> rows;
  rows.reserve(out.rows.size());
  for (const ResultRow& row : out.rows) {
    std::string s;
    for (const auto& pb : row.bindings) {
      s += pb->ToString(g, *out.vars);
      s += " | ";
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

struct Measurement {
  std::vector<std::string> rows;
  EngineMetrics metrics;
  double millis = 0;
};

Measurement Measure(const PropertyGraph& g, const std::string& query,
                    size_t num_threads, bool* ok) {
  Measurement m;
  EngineOptions options;
  options.num_threads = num_threads;
  // Isolate the matcher timing from compilation: plans come from the warm
  // cache for every thread count alike.
  options.use_plan_cache = true;
  options.metrics = &m.metrics;
  Engine engine(g, options);
  auto start = std::chrono::steady_clock::now();
  Result<MatchOutput> out = engine.Match(query);
  m.millis = MillisSince(start);
  if (!out.ok()) {
    std::fprintf(stderr, "query failed (threads=%zu): %s\n  %s\n",
                 num_threads, query.c_str(), out.status().ToString().c_str());
    *ok = false;
    return m;
  }
  m.rows = CanonRows(*out, g);
  return m;
}

bool SpeedupGateActive() {
#ifdef GPML_BENCH_SANITIZED
  std::printf("speedup gate: SKIPPED (sanitizer build distorts timings)\n");
  return false;
#else
  unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    std::printf(
        "speedup gate: SKIPPED (%u hardware thread(s); need >= 4 to "
        "demonstrate a 4-worker speedup)\n",
        hw);
    return false;
  }
  return true;
#endif
}

int RunBench() {
  bool ok = true;
  bench::JsonReport report("parallel");
  PropertyGraph g = MakeWorkloadGraph();
  const bool enforce_speedup = SpeedupGateActive();
  constexpr int kRepetitions = 3;

  std::printf("%-24s %8s | %10s %10s | %9s | %6s\n", "workload", "accounts",
              "ms:1thr", "ms:4thr", "speedup", "rows");
  for (const Workload& w : kWorkloads) {
    // Warm the plan cache and label indexes once so both sides measure the
    // same (pure matching) work.
    bool warm_ok = true;
    Measurement warm = Measure(g, w.query, 1, &warm_ok);
    if (!warm_ok) {
      ok = false;
      continue;
    }

    double best1 = 0, best4 = 0;
    Measurement m1, m4;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      m1 = Measure(g, w.query, 1, &ok);
      m4 = Measure(g, w.query, 4, &ok);
      if (!ok) break;
      best1 = rep == 0 ? m1.millis : std::min(best1, m1.millis);
      best4 = rep == 0 ? m4.millis : std::min(best4, m4.millis);
    }
    if (!ok) break;
    double speedup = best4 > 0 ? best1 / best4 : 0;
    std::printf("%-24s %8d | %10.2f %10.2f | %8.2fx | %6zu\n", w.name, 300,
                best1, best4, speedup, m4.rows.size());
    report.Add(std::string(w.name) + ":threads=1", best1,
               m1.metrics.seeded_nodes, m1.metrics.matcher_steps,
               m1.rows.size());
    report.Add(std::string(w.name) + ":threads=4", best4,
               m4.metrics.seeded_nodes, m4.metrics.matcher_steps,
               m4.rows.size(), {{"speedup", speedup}});

    if (m1.rows != m4.rows) {
      std::fprintf(stderr,
                   "FAIL %s: 4-thread rows differ from sequential rows "
                   "(%zu vs %zu, or order changed)\n",
                   w.name, m4.rows.size(), m1.rows.size());
      ok = false;
    }
    if (m1.metrics.matcher_steps != m4.metrics.matcher_steps) {
      std::fprintf(stderr,
                   "FAIL %s: sharding changed the executed instruction "
                   "count (%zu vs %zu)\n",
                   w.name, m1.metrics.matcher_steps,
                   m4.metrics.matcher_steps);
      ok = false;
    }
    if (enforce_speedup && w.gate_speedup && speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL %s: 4-thread speedup %.2fx < 2x (%.2fms -> "
                   "%.2fms)\n",
                   w.name, speedup, best1, best4);
      ok = false;
    }
  }

  // --- plan-cache latency gate ---------------------------------------------
  // A cold graph so the first compilation pays stats collection + planning;
  // the second execution of the identical query hits the cache and must
  // compile >= 10x faster. Measured on Engine::Plan, the compile path that
  // Match shares, so match time does not drown the comparison.
  {
    PropertyGraph cold = MakeWorkloadGraph();
    Result<GraphPattern> pattern = ParseGraphPattern(kWorkloads[0].query);
    if (!pattern.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   pattern.status().ToString().c_str());
      return 1;
    }
    Engine engine(cold);

    auto start = std::chrono::steady_clock::now();
    Result<planner::Plan> miss = engine.Plan(*pattern);
    double miss_ms = MillisSince(start);
    if (!miss.ok()) {
      std::fprintf(stderr, "plan failed: %s\n",
                   miss.status().ToString().c_str());
      return 1;
    }

    double hit_ms = 0;
    constexpr int kHits = 10;
    for (int i = 0; i < kHits; ++i) {
      start = std::chrono::steady_clock::now();
      Result<planner::Plan> hit = engine.Plan(*pattern);
      double ms = MillisSince(start);
      if (!hit.ok()) {
        std::fprintf(stderr, "cached plan failed: %s\n",
                     hit.status().ToString().c_str());
        return 1;
      }
      hit_ms = i == 0 ? ms : std::min(hit_ms, ms);
    }
    double ratio = hit_ms > 0 ? miss_ms / hit_ms : 1e9;
    std::printf(
        "plan cache: first compile %.3fms, cached compile %.4fms "
        "(%.0fx faster)\n",
        miss_ms, hit_ms, ratio);
    report.Add("plan_cache:miss", miss_ms, 0, 0, 0);
    report.Add("plan_cache:hit", hit_ms, 0, 0, 0, {{"speedup", ratio}});
    if (ratio < 10.0) {
      std::fprintf(stderr,
                   "FAIL plan cache: hit only %.1fx faster than miss "
                   "(need >= 10x)\n",
                   ratio);
      ok = false;
    }
  }

  report.Write();
  std::printf(ok ? "parallel contract holds: identical ordered rows, "
                   "shared-work sharding, cached compiles\n"
                 : "parallel contract VIOLATED (see stderr)\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gpml

int main() { return gpml::RunBench(); }
