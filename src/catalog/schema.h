#ifndef GPML_CATALOG_SCHEMA_H_
#define GPML_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace gpml {

/// A column of a relational table: name plus dynamic type. kNull as a column
/// type means "any" (used by computed columns whose type depends on data).
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;
  bool nullable = true;
};

/// An ordered list of named, typed columns. The SQL/PGQ host (Figure 2 /
/// Figure 9) uses schemas both for base tables and for GRAPH_TABLE outputs.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of `name`, or -1 if absent.
  int FindColumn(const std::string& name) const;

  /// Validates a row against the column types (NULLs allowed when nullable;
  /// kNull-typed columns accept anything).
  Status ValidateRow(const std::vector<Value>& row) const;

  /// "name TYPE, name TYPE, ..." rendering.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace gpml

#endif  // GPML_CATALOG_SCHEMA_H_
