#ifndef GPML_BASELINE_RPQ_NFA_H_
#define GPML_BASELINE_RPQ_NFA_H_

#include <string>
#include <utility>
#include <vector>

#include "baseline/regex.h"
#include "common/result.h"
#include "graph/path.h"
#include "graph/property_graph.h"

namespace gpml {
namespace baseline {

/// Thompson NFA over edge-label steps (forward / inverse), the classical
/// machinery for RPQ evaluation (§3, §8). States are dense ints; transitions
/// are label steps or epsilons.
struct RpqNfa {
  struct Step {
    int from = 0;
    int to = 0;
    bool epsilon = true;
    bool inverse = false;   // Inverse step traverses edges backwards.
    std::string label;
  };
  int num_states = 0;
  int start = 0;
  int accept = 0;
  std::vector<Step> steps;

  /// Adjacency by source state, built on construction.
  std::vector<std::vector<int>> out;  // Indices into steps.
};

RpqNfa BuildNfa(const Regex& regex);

/// SPARQL-style endpoint semantics (§3): the set of node pairs (x, y)
/// connected by a path matching the regex. Existence only — no paths are
/// materialized, which is why this baseline stays polynomial where path
/// enumeration cannot (the paper's §5/§8 discussion).
std::vector<std::pair<NodeId, NodeId>> EvalReachability(
    const PropertyGraph& g, const RpqNfa& nfa);

/// As above but restricted to a single source node.
std::vector<NodeId> EvalReachableFrom(const PropertyGraph& g,
                                      const RpqNfa& nfa, NodeId source);

/// Product-automaton BFS shortest path from `source` to `target` under the
/// regex — the §7.2 research question ("shortest path queries with arbitrary
/// regular expressions") answered with the textbook construction. Returns
/// nullopt-like empty path when unreachable.
Result<Path> ShortestRegexPath(const PropertyGraph& g, const RpqNfa& nfa,
                               NodeId source, NodeId target);

/// Cheapest path under edge weights — the §7.1 Language Opportunity
/// ("cheapest path search, by adding weights to edges", PGQL's ANY
/// CHEAPEST): Dijkstra over the (graph × NFA) product. Edge cost is the
/// numeric property `weight_property`; edges lacking it cost
/// `default_weight`. Negative weights are rejected.
Result<Path> CheapestRegexPath(const PropertyGraph& g, const RpqNfa& nfa,
                               NodeId source, NodeId target,
                               const std::string& weight_property,
                               double default_weight = 1.0);

/// Constrained variant answering §7.2's "most scenic route to the airport
/// in at most 2 hours": cheapest path whose hop count does not exceed
/// `max_hops`, via Dijkstra over the layered (graph × NFA × hops) product.
Result<Path> CheapestRegexPathWithinHops(
    const PropertyGraph& g, const RpqNfa& nfa, NodeId source, NodeId target,
    const std::string& weight_property, size_t max_hops,
    double default_weight = 1.0);

}  // namespace baseline
}  // namespace gpml

#endif  // GPML_BASELINE_RPQ_NFA_H_
