#ifndef GPML_ANALYSIS_DIAGNOSTIC_H_
#define GPML_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "common/source.h"

namespace gpml {
namespace analysis {

/// Diagnostic severity. Errors make Prepare fail; warnings and notes are
/// carried on the compiled plan (EXPLAIN `warnings=` section) and returned
/// by the Lint() APIs.
enum class Severity { kError, kWarning, kNote };

const char* SeverityName(Severity s);

// ---------------------------------------------------------------------------
// Diagnostic codes (docs/analysis.md has the authoritative table).
//
// GPML-Exxx  errors    — the query can never execute correctly.
// GPML-Wxxx  warnings  — the query is suspicious (often: can never match).
// GPML-Nxxx  notes     — informational, attached alongside other codes.
// ---------------------------------------------------------------------------

inline constexpr char kCodeSyntax[] = "GPML-E001";          // Parse failure.
inline constexpr char kCodeSemantic[] = "GPML-E002";        // §4 rule failure.
inline constexpr char kCodeArithmeticType[] = "GPML-E011";  // Non-numeric arith.
inline constexpr char kCodePredicateType[] = "GPML-E012";   // Non-bool predicate.
inline constexpr char kCodeAlwaysFalse[] = "GPML-W101";     // WHERE never true.
inline constexpr char kCodeAlwaysTrue[] = "GPML-W102";      // Conjunct is TRUE.
inline constexpr char kCodeContradictoryEq[] = "GPML-W103"; // x.a=1 AND x.a=2.
inline constexpr char kCodeQuantifierEmpty[] = "GPML-W104"; // {m,n} with m>n.
inline constexpr char kCodeLabelContradiction[] = "GPML-W105";  // A&!A.
inline constexpr char kCodeIncomparable[] = "GPML-W106";    // cmp always UNKNOWN.
inline constexpr char kCodeParamContradiction[] = "GPML-W107";  // $p bool+num.
inline constexpr char kCodeUnknownLabel[] = "GPML-W201";    // Not in schema.
inline constexpr char kCodeUnknownProperty[] = "GPML-W202"; // Not in schema.
inline constexpr char kCodeCartesianProduct[] = "GPML-W203";  // Disjoint decls.
inline constexpr char kCodeEmptyPlan[] = "GPML-N301";       // Compiled empty.

/// One analyzer finding: a stable machine-readable code, a severity, the
/// byte range of the offending source text (invalid span {0,0} when the
/// pattern was built programmatically), the human-readable message and an
/// optional fix hint.
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kWarning;
  SourceSpan span;
  std::string message;
  std::string hint;

  /// "GPML-W101 warning (offset=12): WHERE clause ... [hint: ...]".
  std::string ToString() const;
};

/// Collect-all container for one query's diagnostics. Unlike the fail-first
/// Result<> convention elsewhere, the analyzer records every finding and
/// lets the caller decide (Prepare fails on errors; Lint returns all).
class DiagnosticList {
 public:
  void Add(Diagnostic d) { items_.push_back(std::move(d)); }
  void Add(const char* code, Severity severity, SourceSpan span,
           std::string message, std::string hint = "") {
    items_.push_back(Diagnostic{code, severity, span, std::move(message),
                                std::move(hint)});
  }

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  const std::vector<Diagnostic>& items() const { return items_; }
  std::vector<Diagnostic>& mutable_items() { return items_; }
  std::vector<Diagnostic>::const_iterator begin() const {
    return items_.begin();
  }
  std::vector<Diagnostic>::const_iterator end() const { return items_.end(); }

  bool has_errors() const;
  size_t error_count() const;

  /// One diagnostic per line (Diagnostic::ToString).
  std::string ToString() const;

  /// Like ToString but with a caret snippet of `source` under each
  /// diagnostic that carries a valid span — the Lint() rendering.
  std::string Render(const std::string& source) const;

 private:
  std::vector<Diagnostic> items_;
};

}  // namespace analysis
}  // namespace gpml

#endif  // GPML_ANALYSIS_DIAGNOSTIC_H_
