#include "graph/property_graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace gpml {
namespace {

Result<PropertyGraph> SmallGraph() {
  GraphBuilder b;
  b.AddNode("n1", {"A"}, {{"k", Value::Int(1)}});
  b.AddNode("n2", {"A", "B"});
  b.AddNode("n3", {});
  b.AddDirectedEdge("e1", "n1", "n2", {"X"}, {{"w", Value::Int(7)}});
  b.AddUndirectedEdge("e2", "n2", "n3", {"Y"});
  b.AddDirectedEdge("e3", "n3", "n3", {"X"});   // Directed self-loop.
  b.AddUndirectedEdge("e4", "n1", "n1", {"Y"}); // Undirected self-loop.
  return std::move(b).Build();
}

TEST(PropertyGraphTest, BasicCounts) {
  PropertyGraph g = std::move(SmallGraph()).value();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.Summary(), "3 nodes, 4 edges");
}

TEST(PropertyGraphTest, LookupByName) {
  PropertyGraph g = std::move(SmallGraph()).value();
  EXPECT_NE(g.FindNode("n1"), kInvalidId);
  EXPECT_EQ(g.FindNode("nope"), kInvalidId);
  EXPECT_NE(g.FindEdge("e2"), kInvalidId);
  EXPECT_EQ(g.FindEdge("zzz"), kInvalidId);
}

TEST(PropertyGraphTest, LabelsAreSortedAndSearchable) {
  PropertyGraph g = std::move(SmallGraph()).value();
  const NodeData& n2 = g.node(g.FindNode("n2"));
  EXPECT_TRUE(n2.HasLabel("A"));
  EXPECT_TRUE(n2.HasLabel("B"));
  EXPECT_FALSE(n2.HasLabel("C"));
  const NodeData& n3 = g.node(g.FindNode("n3"));
  EXPECT_TRUE(n3.labels.empty());
}

TEST(PropertyGraphTest, LabelIndex) {
  PropertyGraph g = std::move(SmallGraph()).value();
  EXPECT_EQ(g.NodesWithLabel("A").size(), 2u);
  EXPECT_EQ(g.NodesWithLabel("B").size(), 1u);
  EXPECT_TRUE(g.NodesWithLabel("Z").empty());
  EXPECT_EQ(g.EdgesWithLabel("X").size(), 2u);
  EXPECT_EQ(g.EdgesWithLabel("Y").size(), 2u);
}

TEST(PropertyGraphTest, PropertiesAndMissingProperty) {
  PropertyGraph g = std::move(SmallGraph()).value();
  const NodeData& n1 = g.node(g.FindNode("n1"));
  EXPECT_EQ(n1.GetProperty("k"), Value::Int(1));
  EXPECT_TRUE(n1.GetProperty("missing").is_null());
  const EdgeData& e1 = g.edge(g.FindEdge("e1"));
  EXPECT_EQ(e1.GetProperty("w"), Value::Int(7));
}

TEST(PropertyGraphTest, DirectedAdjacency) {
  PropertyGraph g = std::move(SmallGraph()).value();
  NodeId n1 = g.FindNode("n1");
  NodeId n2 = g.FindNode("n2");
  // n1: forward e1, plus the undirected self-loop e4 (one record).
  int fwd = 0, bwd = 0, und = 0;
  for (const Adjacency& a : g.adjacencies(n1)) {
    if (a.traversal == Traversal::kForward) ++fwd;
    if (a.traversal == Traversal::kBackward) ++bwd;
    if (a.traversal == Traversal::kUndirected) ++und;
  }
  EXPECT_EQ(fwd, 1);
  EXPECT_EQ(bwd, 0);
  EXPECT_EQ(und, 1);
  // n2 sees e1 backward and e2 undirected.
  fwd = bwd = und = 0;
  for (const Adjacency& a : g.adjacencies(n2)) {
    if (a.traversal == Traversal::kForward) ++fwd;
    if (a.traversal == Traversal::kBackward) ++bwd;
    if (a.traversal == Traversal::kUndirected) ++und;
  }
  EXPECT_EQ(fwd, 0);
  EXPECT_EQ(bwd, 1);
  EXPECT_EQ(und, 1);
}

TEST(PropertyGraphTest, DirectedSelfLoopHasBothTraversals) {
  PropertyGraph g = std::move(SmallGraph()).value();
  NodeId n3 = g.FindNode("n3");
  int fwd = 0, bwd = 0;
  for (const Adjacency& a : g.adjacencies(n3)) {
    if (a.edge == g.FindEdge("e3")) {
      if (a.traversal == Traversal::kForward) ++fwd;
      if (a.traversal == Traversal::kBackward) ++bwd;
      EXPECT_EQ(a.neighbor, n3);
    }
  }
  EXPECT_EQ(fwd, 1);
  EXPECT_EQ(bwd, 1);
}

TEST(PropertyGraphTest, CrossSemantics) {
  PropertyGraph g = std::move(SmallGraph()).value();
  NodeId n1 = g.FindNode("n1");
  NodeId n2 = g.FindNode("n2");
  NodeId n3 = g.FindNode("n3");
  EdgeId e1 = g.FindEdge("e1");
  EdgeId e2 = g.FindEdge("e2");
  EXPECT_EQ(g.Cross(e1, n1, Traversal::kForward), n2);
  EXPECT_EQ(g.Cross(e1, n2, Traversal::kForward), kInvalidId);
  EXPECT_EQ(g.Cross(e1, n2, Traversal::kBackward), n1);
  EXPECT_EQ(g.Cross(e2, n2, Traversal::kUndirected), n3);
  EXPECT_EQ(g.Cross(e2, n3, Traversal::kUndirected), n2);
  EXPECT_EQ(g.Cross(e2, n2, Traversal::kForward), kInvalidId);
}

TEST(GraphBuilderTest, DuplicateNodeNameRejected) {
  GraphBuilder b;
  b.AddNode("x");
  b.AddNode("x");
  Result<PropertyGraph> g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kAlreadyExists);
}

TEST(GraphBuilderTest, DanglingEdgeRejected) {
  GraphBuilder b;
  b.AddNode("x");
  b.AddDirectedEdge("e", "x", "ghost");
  Result<PropertyGraph> g = std::move(b).Build();
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
}

TEST(GraphBuilderTest, DuplicateLabelsDeduplicated) {
  GraphBuilder b;
  b.AddNode("x", {"A", "A", "B"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  EXPECT_EQ(g.node(0).labels.size(), 2u);
}

TEST(PropertyGraphTest, ParallelEdgesAllowed) {
  GraphBuilder b;
  b.AddNode("u");
  b.AddNode("v");
  b.AddDirectedEdge("p1", "u", "v", {"T"});
  b.AddDirectedEdge("p2", "u", "v", {"T"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.adjacencies(g.FindNode("u")).size(), 2u);
}

}  // namespace
}  // namespace gpml
