#include "eval/matcher.h"

#include <gtest/gtest.h>

#include "eval/nfa.h"
#include "graph/generator.h"
#include "graph/graph_builder.h"
#include "parser/parser.h"
#include "semantics/normalize.h"

namespace gpml {
namespace {

/// Compiles one declaration and runs the matcher directly (below the
/// Engine facade) so the raw MatchSet is observable.
Result<MatchSet> RunMatch(const PropertyGraph& g, const std::string& text,
                     MatcherOptions options = {}) {
  GPML_ASSIGN_OR_RETURN(GraphPattern parsed, ParseGraphPattern(text));
  GPML_ASSIGN_OR_RETURN(GraphPattern normalized, Normalize(parsed));
  GPML_ASSIGN_OR_RETURN(Analysis analysis, Analyze(normalized));
  VarTable vars(analysis);
  GPML_ASSIGN_OR_RETURN(Program program,
                        CompilePattern(normalized.paths[0], vars));
  return RunPattern(g, program, vars, options);
}

TEST(MatcherTest, BindingsOrderedByPathLength) {
  PropertyGraph g = MakeChainGraph(5);
  Result<MatchSet> m = RunMatch(g, "MATCH TRAIL (a)-[:Transfer]->*(b)");
  ASSERT_TRUE(m.ok()) << m.status();
  for (size_t i = 1; i < m->bindings.size(); ++i) {
    EXPECT_LE(m->bindings[i - 1].path.Length(),
              m->bindings[i].path.Length());
  }
}

TEST(MatcherTest, DedupCollapsesSelfLoopTraversals) {
  GraphBuilder b;
  b.AddNode("s", {"N"});
  b.AddDirectedEdge("loop", "s", "s", {"T"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  Result<MatchSet> m = RunMatch(g, "MATCH (x)-[e]-(y)");
  ASSERT_TRUE(m.ok());
  // Forward and backward traversal of the loop reduce identically.
  EXPECT_EQ(m->bindings.size(), 1u);
}

TEST(MatcherTest, BfsRouteMatchesDfsOnBoundedPattern) {
  // A bounded pattern evaluated with and without a selector that keeps
  // everything: ALL SHORTEST on partitions with unique path lengths.
  PropertyGraph g = MakeChainGraph(6);
  Result<MatchSet> dfs = RunMatch(g, "MATCH (a)-[:Transfer]->{1,3}(b)");
  Result<MatchSet> bfs =
      RunMatch(g, "MATCH ALL SHORTEST (a)-[:Transfer]->{1,3}(b)");
  ASSERT_TRUE(dfs.ok());
  ASSERT_TRUE(bfs.ok());
  // On a chain every (a,b) pair has exactly one path: selector keeps all.
  EXPECT_EQ(dfs->bindings.size(), bfs->bindings.size());
}

TEST(MatcherTest, MaxMatchesEnforced) {
  PropertyGraph g = MakeCompleteGraph(7);
  MatcherOptions options;
  options.max_matches = 100;
  Result<MatchSet> m =
      RunMatch(g, "MATCH TRAIL (a)-[:Transfer]->*(b)", options);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kResourceExhausted);
}

TEST(MatcherTest, MaxStepsEnforced) {
  PropertyGraph g = MakeCompleteGraph(7);
  MatcherOptions options;
  options.max_steps = 500;
  Result<MatchSet> m =
      RunMatch(g, "MATCH TRAIL (a)-[:Transfer]->*(b)", options);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kResourceExhausted);
}

TEST(MatcherTest, LabelSeededSearchSkipsOtherLabels) {
  // A label-anchored first node restricts seeds; semantics unchanged.
  PropertyGraph g = MakeRandomGraph(30, 60, 3, 0.2, 11);
  Result<MatchSet> anchored = RunMatch(g, "MATCH (x:L1)-[e]->(y)");
  ASSERT_TRUE(anchored.ok());
  Result<MatchSet> scanned = RunMatch(g, "MATCH (x WHERE x.w>=0)-[e]->(y)");
  ASSERT_TRUE(scanned.ok());
  size_t l1 = 0;
  for (const PathBinding& pb : scanned->bindings) {
    if (g.node(pb.path.Start()).HasLabel("L1")) ++l1;
  }
  EXPECT_EQ(anchored->bindings.size(), l1);
}

TEST(MatcherTest, ShortestOnLargeCycleIsLinear) {
  // Sanity: ANY SHORTEST on a 2000-node cycle completes quickly and finds
  // the distance-1999 path.
  PropertyGraph g = MakeCycleGraph(2000);
  Result<MatchSet> m = RunMatch(
      g,
      "MATCH ANY SHORTEST (a WHERE a.owner='u0')-[:Transfer]->*"
      "(b WHERE b.owner='u1999')");
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->bindings.size(), 1u);
  EXPECT_EQ(m->bindings[0].path.Length(), 1999u);
}

TEST(MatcherTest, EmptyMatchSetForUnsatisfiableLabels) {
  PropertyGraph g = MakeChainGraph(4);
  Result<MatchSet> m = RunMatch(g, "MATCH (x:NoSuchLabel)");
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->bindings.empty());
}

TEST(MatcherTest, MultisetTagsPreserveMultiplicity) {
  PropertyGraph g = MakeChainGraph(3);
  Result<MatchSet> m =
      RunMatch(g, "MATCH (a)[-[:Transfer]->(b) |+| -[:Transfer]->(b)]");
  ASSERT_TRUE(m.ok());
  // Both branches match identically; tags keep them apart: 2 edges * 2.
  EXPECT_EQ(m->bindings.size(), 4u);
}

}  // namespace
}  // namespace gpml
