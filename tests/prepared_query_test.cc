// Prepared parameterized queries: $name placeholders are collected into a
// typed signature at Prepare, validated at bind time (unknown / missing /
// type-mismatch are Status errors), executions with different bound values
// share one plan-cache entry (the fingerprint is the parameterized text),
// bind-time index seeding resolves $parameters against the equality seed
// index, and prepared executions are row-identical to the same query with
// the values written as literals.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "eval/engine.h"
#include "eval/params.h"
#include "gql/session.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"
#include "parser/parser.h"
#include "pgq/graph_table.h"
#include "planner/explain.h"
#include "tests/test_util.h"

namespace gpml {
namespace {

using testing_util::Rows;

// ---------------------------------------------------------------------------
// Signature collection
// ---------------------------------------------------------------------------

ParamSignature SignatureOf(const std::string& match_text) {
  Result<GraphPattern> pattern = ParseGraphPattern(match_text);
  EXPECT_TRUE(pattern.ok()) << pattern.status();
  return CollectPatternParams(*pattern);
}

TEST(ParamSignatureTest, CollectsFromEveryExpressionPosition) {
  ParamSignature sig = SignatureOf(
      "MATCH (x:Account WHERE x.owner = $owner)"
      "-[t:Transfer WHERE t.amount > $amount]->(y) "
      "WHERE y.isBlocked = $blocked");
  EXPECT_EQ(sig.Names(),
            (std::vector<std::string>{"amount", "blocked", "owner"}));
}

TEST(ParamSignatureTest, CollectsFromSubpatternWhere) {
  ParamSignature sig = SignatureOf(
      "MATCH (a)[(x)-[e]->(y) WHERE e.amount > $min]{1,3}(b)");
  EXPECT_EQ(sig.Names(), (std::vector<std::string>{"min"}));
}

TEST(ParamSignatureTest, DedupesRepeatedUse) {
  ParamSignature sig = SignatureOf(
      "MATCH (x WHERE x.owner = $who)-[]->(y WHERE y.owner = $who)");
  EXPECT_EQ(sig.Names(), (std::vector<std::string>{"who"}));
}

TEST(ParamSignatureTest, InfersBoolAndNumericConstraints) {
  ParamSignature sig = SignatureOf(
      "MATCH (x)-[t]->(y) WHERE $flag AND t.amount + $delta > 0");
  const ParamInfo* flag = sig.Find("flag");
  ASSERT_NE(flag, nullptr);
  EXPECT_TRUE(flag->needs_bool);
  EXPECT_FALSE(flag->needs_numeric);
  const ParamInfo* delta = sig.Find("delta");
  ASSERT_NE(delta, nullptr);
  EXPECT_TRUE(delta->needs_numeric);
  EXPECT_FALSE(delta->needs_bool);
}

TEST(ParamSignatureTest, ComparisonOperandsAreUnconstrained) {
  ParamSignature sig = SignatureOf("MATCH (x) WHERE x.owner = $owner");
  const ParamInfo* owner = sig.Find("owner");
  ASSERT_NE(owner, nullptr);
  EXPECT_FALSE(owner->needs_bool);
  EXPECT_FALSE(owner->needs_numeric);
}

TEST(ParamSignatureTest, StatementCollectionIncludesReturnItems) {
  Result<MatchStatement> stmt =
      ParseStatement("MATCH (x WHERE x.owner = $a) RETURN x.owner, $tag");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ParamSignature sig = CollectStatementParams(*stmt);
  EXPECT_EQ(sig.Names(), (std::vector<std::string>{"a", "tag"}));
}

// ---------------------------------------------------------------------------
// Bind validation
// ---------------------------------------------------------------------------

TEST(PreparedQueryTest, MissingParameterIsError) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x:Account WHERE x.owner = $owner)");
  ASSERT_TRUE(q.ok()) << q.status();
  Result<MatchOutput> out = q->Execute();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out.status().message().find("missing parameter $owner"),
            std::string::npos)
      << out.status();
}

TEST(PreparedQueryTest, UnknownParameterIsError) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x:Account WHERE x.owner = $owner)");
  ASSERT_TRUE(q.ok()) << q.status();
  Result<MatchOutput> out = q->Execute(
      {{"owner", Value::String("Jay")}, {"oops", Value::Int(1)}});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out.status().message().find("unknown parameter $oops"),
            std::string::npos);
}

TEST(PreparedQueryTest, TypeMismatchIsError) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x)-[t]->(y) WHERE $flag");
  ASSERT_TRUE(q.ok()) << q.status();
  Result<MatchOutput> out = q->Execute({{"flag", Value::String("yes")}});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out.status().message().find("must be BOOL"), std::string::npos);

  Result<PreparedQuery> q2 =
      engine.Prepare("MATCH (x)-[t]->(y) WHERE t.amount + $delta > 10M");
  ASSERT_TRUE(q2.ok()) << q2.status();
  Result<MatchOutput> out2 = q2->Execute({{"delta", Value::Bool(true)}});
  ASSERT_FALSE(out2.ok());
  EXPECT_EQ(out2.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(out2.status().message().find("must be numeric"),
            std::string::npos);
}

TEST(PreparedQueryTest, NullIsBindableEverywhere) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<PreparedQuery> q =
      engine.Prepare("MATCH (x:Account WHERE x.owner = $owner)");
  ASSERT_TRUE(q.ok()) << q.status();
  Result<MatchOutput> out = q->Execute({{"owner", Value::Null()}});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows.size(), 0u);  // = NULL is never true (3VL).
}

TEST(PreparedQueryTest, LegacyMatchRejectsParameterizedText) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<MatchOutput> out =
      engine.Match("MATCH (x:Account WHERE x.owner = $owner)");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Prepared-vs-literal row equality
// ---------------------------------------------------------------------------

std::vector<std::string> PreparedRows(const PropertyGraph& g,
                                      const std::string& match_text,
                                      const Params& params,
                                      const std::string& columns,
                                      EngineOptions options = {}) {
  Engine engine(g, options);
  Result<PreparedQuery> q = engine.Prepare(match_text);
  if (!q.ok()) return {"ERROR: " + q.status().ToString()};
  Result<MatchOutput> out = q->Execute(params);
  if (!out.ok()) return {"ERROR: " + out.status().ToString()};
  Result<std::vector<ReturnItem>> items = ParseColumns(columns);
  if (!items.ok()) return {"ERROR: " + items.status().ToString()};
  Result<Table> table = ProjectRows(*out, g, *items, /*distinct=*/false);
  if (!table.ok()) return {"ERROR: " + table.status().ToString()};
  std::vector<std::string> rows;
  for (const Row& r : table->rows()) {
    std::string line;
    for (size_t i = 0; i < r.size(); ++i) {
      if (i > 0) line += "|";
      line += r[i].ToString();
    }
    rows.push_back(std::move(line));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(PreparedQueryTest, PreparedEqualsLiteralRows) {
  PropertyGraph g = BuildPaperGraph();
  struct Case {
    const char* parameterized;
    Params params;
    const char* literal;
    const char* columns;
  };
  const Case cases[] = {
      {"MATCH (x:Account WHERE x.owner = $owner)-[t:Transfer]->(y)",
       {{"owner", Value::String("Mike")}},
       "MATCH (x:Account WHERE x.owner = 'Mike')-[t:Transfer]->(y)",
       "x, y, t.amount"},
      {"MATCH (x)-[t:Transfer WHERE t.amount > $min]->(y)",
       {{"min", Value::Int(8'000'000)}},
       "MATCH (x)-[t:Transfer WHERE t.amount > 8M]->(y)", "x, y, t.amount"},
      {"MATCH (x:Account)-[t:Transfer]->(y) WHERE y.isBlocked = $b",
       {{"b", Value::String("yes")}},
       "MATCH (x:Account)-[t:Transfer]->(y) WHERE y.isBlocked = 'yes'",
       "x, y"},
      {"MATCH ANY (x WHERE x.owner = $a)-[:Transfer]->+"
       "(y WHERE y.owner = $b)",
       {{"a", Value::String("Scott")}, {"b", Value::String("Dave")}},
       "MATCH ANY (x WHERE x.owner = 'Scott')-[:Transfer]->+"
       "(y WHERE y.owner = 'Dave')",
       "x, y"},
  };
  for (const Case& c : cases) {
    for (bool planner : {true, false}) {
      EngineOptions options;
      options.use_planner = planner;
      EXPECT_EQ(PreparedRows(g, c.parameterized, c.params, c.columns,
                             options),
                Rows(g, c.literal, c.columns, options))
          << c.parameterized << " planner=" << planner;
    }
  }
}

TEST(PreparedQueryTest, RebindingChangesResultsNotThePlan) {
  PropertyGraph g = BuildPaperGraph();
  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  Engine engine(g, options);
  Result<PreparedQuery> q = engine.Prepare(
      "MATCH (x:Account WHERE x.owner = $owner)-[t:Transfer]->(y)");
  ASSERT_TRUE(q.ok()) << q.status();

  Result<MatchOutput> mike = q->Execute({{"owner", Value::String("Mike")}});
  ASSERT_TRUE(mike.ok()) << mike.status();
  Result<MatchOutput> dave = q->Execute({{"owner", Value::String("Dave")}});
  ASSERT_TRUE(dave.ok()) << dave.status();
  EXPECT_NE(mike->rows.size(), 0u);
  EXPECT_NE(dave->rows.size(), 0u);
  EXPECT_EQ(mike->rows.size(),
            Rows(g, "MATCH (x:Account WHERE x.owner = 'Mike')"
                    "-[t:Transfer]->(y)", "x").size());
}

// ---------------------------------------------------------------------------
// Plan-cache sharing across bound values
// ---------------------------------------------------------------------------

TEST(PreparedQueryTest, LiteralVaryingExecutionsShareOneCachedPlan) {
  PropertyGraph g = BuildPaperGraph();
  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  Engine engine(g, options);

  const std::string text =
      "MATCH (x:Account WHERE x.owner = $owner)-[t:Transfer]->(y)";
  const char* owners[] = {"Scott", "Aretha", "Mike", "Jay", "Charles",
                          "Dave"};
  size_t misses = 0;
  size_t hits = 0;
  for (const char* owner : owners) {
    Result<PreparedQuery> q = engine.Prepare(text);
    ASSERT_TRUE(q.ok()) << q.status();
    Result<MatchOutput> out =
        q->Execute({{"owner", Value::String(owner)}});
    ASSERT_TRUE(out.ok()) << out.status();
    misses += metrics.plan_cache_misses;
    hits += metrics.plan_cache_hits;
  }
  EXPECT_EQ(misses, 1u);  // Only the first prepare compiled.
  EXPECT_EQ(hits, 5u);
}

TEST(PreparedQueryTest, FromCacheReportsSecondPrepare) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  const std::string text = "MATCH (x WHERE x.owner = $o)-[]->(y)";
  Result<PreparedQuery> first = engine.Prepare(text);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->from_cache());
  Result<PreparedQuery> second = engine.Prepare(text);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->from_cache());
}

// ---------------------------------------------------------------------------
// Bind-time index seeding
// ---------------------------------------------------------------------------

TEST(PreparedQueryTest, IndexSeedingResolvesParameterAtBindTime) {
  FraudGraphOptions fraud;
  fraud.num_accounts = 200;
  PropertyGraph g = MakeFraudGraph(fraud);

  const std::string text =
      "MATCH (x:Account WHERE x.owner = $owner)-[t:Transfer]->(y:Account)";

  // The plan keeps the parameterized index source.
  Engine plain(g);
  Result<std::string> explain = plain.Explain(text);
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_NE(explain->find("source=index:Account.owner"), std::string::npos)
      << *explain;

  // Executing with a bound value seeds from the index: exactly the owner's
  // node, not the Account label scan.
  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  Engine engine(g, options);
  Result<PreparedQuery> q = engine.Prepare(text);
  ASSERT_TRUE(q.ok()) << q.status();
  Result<MatchOutput> out = q->Execute({{"owner", Value::String("u42")}});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(metrics.index_seeded_decls, 1u);
  EXPECT_EQ(metrics.seeded_nodes, 1u);  // One account owns "u42".

  // Row-identical to the literal form and to index-seeding off.
  EngineOptions no_index;
  no_index.use_seed_index = false;
  EXPECT_EQ(PreparedRows(g, text, {{"owner", Value::String("u42")}},
                         "x, y, t.amount"),
            Rows(g,
                 "MATCH (x:Account WHERE x.owner = 'u42')"
                 "-[t:Transfer]->(y:Account)",
                 "x, y, t.amount", no_index));

  // A NULL binding falls back to label-scan seeding and selects nothing.
  EngineMetrics null_metrics;
  EngineOptions null_options;
  null_options.metrics = &null_metrics;
  Engine null_engine(g, null_options);
  Result<PreparedQuery> qn = null_engine.Prepare(text);
  ASSERT_TRUE(qn.ok()) << qn.status();
  Result<MatchOutput> out_null = qn->Execute({{"owner", Value::Null()}});
  ASSERT_TRUE(out_null.ok()) << out_null.status();
  EXPECT_EQ(out_null->rows.size(), 0u);
  EXPECT_EQ(null_metrics.index_seeded_decls, 0u);
}

// ---------------------------------------------------------------------------
// Host-level parameters
// ---------------------------------------------------------------------------

TEST(PreparedQueryTest, SessionExecuteBindsParams) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddGraph("bank", BuildPaperGraph()).ok());
  Session session(catalog);
  ASSERT_TRUE(session.UseGraph("bank").ok());

  Result<Table> table = session.Execute(
      "MATCH (x:Account WHERE x.owner = $owner)-[t:Transfer]->(y) "
      "RETURN x.owner AS from_owner, y.owner AS to_owner, $tag AS tag",
      {{"owner", Value::String("Mike")}, {"tag", Value::String("audit")}});
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_NE(table->num_rows(), 0u);
  for (const Row& row : table->rows()) {
    EXPECT_EQ(row[0].ToString(), "Mike");
    EXPECT_EQ(row[2].ToString(), "audit");
  }
}

TEST(PreparedQueryTest, SessionPreparedStatementRebinds) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddGraph("bank", BuildPaperGraph()).ok());
  Session session(catalog);
  ASSERT_TRUE(session.UseGraph("bank").ok());

  Result<PreparedStatement> stmt = session.Prepare(
      "MATCH (x:Account WHERE x.owner = $owner)-[t:Transfer]->(y) "
      "RETURN y.owner AS receiver");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->signature().Names(),
            (std::vector<std::string>{"owner"}));

  Result<Table> mike = stmt->Execute({{"owner", Value::String("Mike")}});
  ASSERT_TRUE(mike.ok()) << mike.status();
  Result<Table> scott = stmt->Execute({{"owner", Value::String("Scott")}});
  ASSERT_TRUE(scott.ok()) << scott.status();
  EXPECT_NE(mike->num_rows(), 0u);
  EXPECT_NE(scott->num_rows(), 0u);
}

TEST(PreparedQueryTest, GraphTableBindsParamsAndSharesCache) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddGraph("bank", BuildPaperGraph()).ok());

  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;

  GraphTableQuery query;
  query.graph = "bank";
  query.match =
      "MATCH (x:Account WHERE x.owner = $owner)-[t:Transfer]->(y)";
  query.columns = "y.owner AS receiver, t.amount AS amount";

  size_t hits = 0;
  for (const char* owner : {"Mike", "Dave", "Scott"}) {
    query.params = {{"owner", Value::String(owner)}};
    Result<Table> table = GraphTable(catalog, query, options);
    ASSERT_TRUE(table.ok()) << table.status();
    hits += metrics.plan_cache_hits;
  }
  EXPECT_EQ(hits, 2u);  // First call compiled; the rest hit.
}

}  // namespace
}  // namespace gpml
