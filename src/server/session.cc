#include "server/session.h"

#include "obs/clock.h"

namespace gpml {
namespace server {

std::shared_ptr<ServerSession> SessionRegistry::Create(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  auto session = std::make_shared<ServerSession>(id, tenant);
  session->last_active_us = obs::MonotonicMicros();
  sessions_[id] = session;
  return session;
}

void SessionRegistry::Remove(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(id);
}

std::shared_ptr<ServerSession> SessionRegistry::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::vector<std::shared_ptr<ServerSession>> SessionRegistry::ReapIdle(
    uint64_t now_us, uint64_t idle_us) {
  std::vector<std::shared_ptr<ServerSession>> reaped;
  for (const std::shared_ptr<ServerSession>& session : Snapshot()) {
    std::lock_guard<std::mutex> lock(session->mu);
    if (session->expired || session->in_flight > 0) continue;
    if (now_us - session->last_active_us < idle_us) continue;
    session->expired = true;
    session->statements.clear();
    session->cursors.clear();
    session->graph.reset();
    reaped.push_back(session);
  }
  return reaped;
}

std::vector<std::shared_ptr<ServerSession>> SessionRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<ServerSession>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) out.push_back(session);
  return out;
}

}  // namespace server
}  // namespace gpml
