#include "graph/sample_graph.h"

#include <gtest/gtest.h>

namespace gpml {
namespace {

// E1 (DESIGN.md): the Figure 1 graph, pinned element by element.

class SampleGraphTest : public ::testing::Test {
 protected:
  SampleGraphTest() : g_(BuildPaperGraph()) {}
  PropertyGraph g_;
};

TEST_F(SampleGraphTest, Counts) {
  // 6 accounts + 2 places + 4 phones + 2 IPs = 14 nodes;
  // 8 transfers + 6 isLocatedIn + 6 hasPhone + 2 signInWithIP = 22 edges.
  EXPECT_EQ(g_.num_nodes(), 14u);
  EXPECT_EQ(g_.num_edges(), 22u);
}

TEST_F(SampleGraphTest, AccountOwnersAndBlockedFlags) {
  const char* owners[6] = {"Scott", "Aretha", "Mike", "Jay", "Charles",
                           "Dave"};
  for (int i = 0; i < 6; ++i) {
    NodeId n = g_.FindNode("a" + std::to_string(i + 1));
    ASSERT_NE(n, kInvalidId);
    const NodeData& nd = g_.node(n);
    EXPECT_TRUE(nd.HasLabel("Account"));
    EXPECT_EQ(nd.GetProperty("owner"), Value::String(owners[i]));
    EXPECT_EQ(nd.GetProperty("isBlocked"),
              Value::String(i == 3 ? "yes" : "no"))
        << "only Jay (a4) is blocked";
  }
}

TEST_F(SampleGraphTest, PlaceNodes) {
  const NodeData& c1 = g_.node(g_.FindNode("c1"));
  EXPECT_TRUE(c1.HasLabel("Country"));
  EXPECT_FALSE(c1.HasLabel("City"));
  EXPECT_EQ(c1.GetProperty("name"), Value::String("Zembla"));

  const NodeData& c2 = g_.node(g_.FindNode("c2"));
  EXPECT_TRUE(c2.HasLabel("Country"));
  EXPECT_TRUE(c2.HasLabel("City"));
  EXPECT_EQ(c2.GetProperty("name"), Value::String("Ankh-Morpork"));
}

TEST_F(SampleGraphTest, TransferTopologyAndAmounts) {
  struct Row {
    const char* id;
    const char* from;
    const char* to;
    int64_t millions;
  };
  // Endpoints pinned by the worked examples of §5 and §6.
  const Row rows[8] = {
      {"t1", "a1", "a3", 8},  {"t2", "a3", "a2", 10}, {"t3", "a2", "a4", 10},
      {"t4", "a4", "a6", 10}, {"t5", "a6", "a3", 10}, {"t6", "a6", "a5", 4},
      {"t7", "a3", "a5", 6},  {"t8", "a5", "a1", 9}};
  for (const Row& r : rows) {
    EdgeId e = g_.FindEdge(r.id);
    ASSERT_NE(e, kInvalidId) << r.id;
    const EdgeData& ed = g_.edge(e);
    EXPECT_TRUE(ed.directed);
    EXPECT_TRUE(ed.HasLabel("Transfer"));
    EXPECT_EQ(ed.u, g_.FindNode(r.from)) << r.id;
    EXPECT_EQ(ed.v, g_.FindNode(r.to)) << r.id;
    EXPECT_EQ(ed.GetProperty("amount"), Value::Int(r.millions * 1'000'000))
        << r.id;
  }
}

TEST_F(SampleGraphTest, LocationEdges) {
  // a1,a3,a5 -> c1 (Zembla); a2,a4,a6 -> c2 (Ankh-Morpork); §6.4 table.
  for (int i = 1; i <= 6; ++i) {
    EdgeId e = g_.FindEdge("li" + std::to_string(i));
    ASSERT_NE(e, kInvalidId);
    const EdgeData& ed = g_.edge(e);
    EXPECT_TRUE(ed.HasLabel("isLocatedIn"));
    EXPECT_EQ(ed.u, g_.FindNode("a" + std::to_string(i)));
    EXPECT_EQ(ed.v, g_.FindNode(i % 2 == 1 ? "c1" : "c2"));
  }
}

TEST_F(SampleGraphTest, PhoneEdgesAreUndirected) {
  struct Row {
    const char* id;
    const char* account;
    const char* phone;
  };
  const Row rows[6] = {{"hp1", "a1", "p1"}, {"hp2", "a2", "p2"},
                       {"hp3", "a3", "p2"}, {"hp4", "a4", "p3"},
                       {"hp5", "a5", "p1"}, {"hp6", "a6", "p4"}};
  for (const Row& r : rows) {
    EdgeId e = g_.FindEdge(r.id);
    ASSERT_NE(e, kInvalidId);
    const EdgeData& ed = g_.edge(e);
    EXPECT_FALSE(ed.directed) << r.id;
    EXPECT_TRUE(ed.HasLabel("hasPhone"));
    EXPECT_EQ(ed.u, g_.FindNode(r.account));
    EXPECT_EQ(ed.v, g_.FindNode(r.phone));
  }
}

TEST_F(SampleGraphTest, SignInEdges) {
  const EdgeData& sip1 = g_.edge(g_.FindEdge("sip1"));
  EXPECT_EQ(sip1.u, g_.FindNode("a1"));
  EXPECT_EQ(sip1.v, g_.FindNode("ip1"));
  EXPECT_TRUE(sip1.HasLabel("signInWithIP"));
  const EdgeData& sip2 = g_.edge(g_.FindEdge("sip2"));
  EXPECT_EQ(sip2.u, g_.FindNode("a5"));
  EXPECT_EQ(sip2.v, g_.FindNode("ip2"));
}

TEST_F(SampleGraphTest, TransferCycleOfSection6Exists) {
  // (t4,t5,t2,t3): a4->a6->a3->a2->a4 — the loop the §6 example walks.
  EXPECT_EQ(g_.Cross(g_.FindEdge("t4"), g_.FindNode("a4"),
                     Traversal::kForward),
            g_.FindNode("a6"));
  EXPECT_EQ(g_.Cross(g_.FindEdge("t5"), g_.FindNode("a6"),
                     Traversal::kForward),
            g_.FindNode("a3"));
  EXPECT_EQ(g_.Cross(g_.FindEdge("t2"), g_.FindNode("a3"),
                     Traversal::kForward),
            g_.FindNode("a2"));
  EXPECT_EQ(g_.Cross(g_.FindEdge("t3"), g_.FindNode("a2"),
                     Traversal::kForward),
            g_.FindNode("a4"));
}

}  // namespace
}  // namespace gpml
