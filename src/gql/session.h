#ifndef GPML_GQL_SESSION_H_
#define GPML_GQL_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/table.h"
#include "common/result.h"
#include "eval/engine.h"

namespace gpml {

/// A full GQL statement prepared against one graph: the pattern is parsed,
/// planned, and compiled once (shared through the graph's plan cache), the
/// $parameter signature spans the pattern and the RETURN items, and every
/// Execute binds fresh values — the classic prepare-once/execute-many
/// client contract (docs/api.md). Holds the graph alive, so the statement
/// stays valid after the session moves to another graph or is destroyed.
class PreparedStatement {
 public:
  /// Runs the statement with the given $parameter bindings. LIMIT and
  /// projection are streamed through a cursor: a `RETURN ... LIMIT n`
  /// statement stops matching as soon as n rows are projected.
  Result<Table> Execute(const Params& params = {}) const;

  /// The parameters Execute validates bindings against (pattern + RETURN).
  const ParamSignature& signature() const { return query_.signature(); }

  /// True when the compiled plan came from the graph's plan cache.
  bool from_cache() const { return query_.from_cache(); }

 private:
  friend class Session;
  PreparedStatement(std::shared_ptr<const PropertyGraph> graph,
                    PreparedQuery query, MatchStatement stmt)
      : graph_(std::move(graph)),
        query_(std::move(query)),
        stmt_(std::move(stmt)) {}

  std::shared_ptr<const PropertyGraph> graph_;  // Keeps query_'s graph alive.
  PreparedQuery query_;
  MatchStatement stmt_;  // RETURN items / DISTINCT / LIMIT (pattern unused).
};

/// A GQL host session (Figure 9, right branch): statements of the form
///
///   MATCH <graph pattern> [WHERE <postfilter>]
///   [RETURN [DISTINCT] <item> [AS alias], ... [LIMIT n]]
///
/// run against the session's current graph and produce a binding table.
/// Without a RETURN clause every named variable is projected. Statements
/// may reference $name parameters bound per call; Execute is a thin
/// Prepare + PreparedStatement::Execute, so repeated statements differing
/// only in bound values share one cached plan. A leading EXPLAIN renders
/// the plan; EXPLAIN ANALYZE executes and renders measured actuals.
class Session {
 public:
  explicit Session(const Catalog& catalog, EngineOptions options = {})
      : catalog_(catalog), options_(options) {}

  /// Selects the working graph (GQL's USE <graph>).
  Status UseGraph(const std::string& name);

  /// Prepares a full statement for repeated parameterized execution.
  Result<PreparedStatement> Prepare(const std::string& statement) const;

  /// Parses and runs a full statement against the current graph with the
  /// given $parameter bindings. A leading EXPLAIN keyword returns the
  /// planner's plan rendering as a one-column "plan" table instead of
  /// executing the match (any RETURN clause is parsed but not evaluated);
  /// EXPLAIN ANALYZE executes the match and renders per-declaration
  /// actuals.
  Result<Table> Execute(const std::string& statement,
                        const Params& params = {}) const;

  /// Runs just the MATCH part, exposing row-level results.
  Result<MatchOutput> Match(const std::string& match_text) const;

  /// Static analysis of a MATCH pattern text without preparing or running
  /// it: the engine's full diagnostic list — errors, warnings, and notes
  /// (docs/analysis.md) — against the current graph's schema. Unlike
  /// Prepare, Lint never fails on a bad query; parse and semantic errors
  /// come back as diagnostics. Error only when no graph is selected.
  Result<analysis::DiagnosticList> Lint(const std::string& match_text) const;

  /// The planner's EXPLAIN text for the MATCH part of `statement` (leading
  /// EXPLAIN [ANALYZE] keywords are accepted; ANALYZE executes the match
  /// with the given bindings and renders actuals).
  Result<std::string> Explain(const std::string& statement,
                              const Params& params = {}) const;

  const PropertyGraph* graph() const { return graph_.get(); }

  /// Prometheus text-format rendering of the current graph's metrics
  /// registry (PropertyGraph::metrics_registry, shared with every other
  /// engine/host over this graph) — what a server would serve from
  /// /metrics for this graph (docs/observability.md). Error when no graph
  /// is selected.
  Result<std::string> MetricsText() const;

  /// The slow-query captures belonging to the current graph, oldest first:
  /// the session's configured slow log (EngineOptions::slow_log, or the
  /// process-wide obs::GlobalSlowQueryLog()) filtered by graph identity.
  /// Error when no graph is selected.
  Result<std::vector<obs::SlowQueryRecord>> SlowQueries() const;

  /// The per-fingerprint workload statistics belonging to the current
  /// graph, most-recently-updated first: the session's configured store
  /// (EngineOptions::query_stats, or the process-wide
  /// obs::GlobalQueryStats()) filtered by graph identity
  /// (docs/observability.md). Error when no graph is selected.
  Result<std::vector<obs::QueryStatEntry>> QueryStats() const;

  /// Engine options applied to every statement (planner, worker threads,
  /// plan cache, evaluation budgets); adjustable between statements. The
  /// plan cache itself lives on the graph, so compiled plans survive both
  /// option changes and session teardown.
  const EngineOptions& options() const { return options_; }
  void set_options(EngineOptions options) { options_ = options; }

 private:
  const Catalog& catalog_;
  EngineOptions options_;
  std::shared_ptr<const PropertyGraph> graph_;
};

}  // namespace gpml

#endif  // GPML_GQL_SESSION_H_
