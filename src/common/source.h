#ifndef GPML_COMMON_SOURCE_H_
#define GPML_COMMON_SOURCE_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace gpml {

/// Half-open byte range [begin, end) into the query source text. Spans are
/// recorded by the parser from lexer token offsets and survive normalization
/// (pattern structs are copied wholesale), so semantic analysis and the
/// static analyzer can point diagnostics at the exact source bytes.
struct SourceSpan {
  size_t begin = 0;
  size_t end = 0;

  bool valid() const { return end > begin; }
  /// Union of two spans; an invalid operand leaves the other unchanged.
  SourceSpan Merge(const SourceSpan& other) const;
};

/// Renders the source line containing [begin, end) with a caret line
/// underneath, e.g. for offset 10..13 of "MATCH (x) WHERE x.a":
///
///   MATCH (x) WHERE x.a
///             ^~~~~
///
/// Out-of-bounds offsets are clamped; returns an empty string when the
/// source is empty. The result has no trailing newline.
std::string RenderSourceSnippet(const std::string& source, size_t begin,
                                size_t end);

/// Extracts the first "offset=N" marker from `message`; returns true and
/// stores N on success. Parse, semantic, and analysis errors all embed
/// their position in this form.
bool FindOffsetMarker(const std::string& message, size_t* offset);

/// If `st` is an error whose message carries an "offset=N" marker and no
/// caret snippet yet, returns the same status with the snippet for N
/// appended on the following lines. Used at the API boundary, where the
/// source text is in hand (the parser itself only sees tokens).
Status AttachSnippet(const Status& st, const std::string& source);

}  // namespace gpml

#endif  // GPML_COMMON_SOURCE_H_
