#include <gtest/gtest.h>

#include "graph/sample_graph.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::MatchStatusOf;
using testing_util::Rows;

// E11: conditional variables and the question-mark operator (§4.6).

TEST(ConditionalTest, PaperUnionForm) {
  PropertyGraph g = BuildPaperGraph();
  // Accounts transferring to a blocked account, or to an account with a
  // phone-sharing login — the §4.6 union form (adapted: the paper graph has
  // no blocked phones, so branch 2 filters on phone p3 instead).
  std::vector<std::string> rows = Rows(
      g,
      "MATCH [(x:Account)-[:Transfer]->(y:Account WHERE y.isBlocked='yes')]"
      " | [(x:Account)-[:Transfer]->()~[:hasPhone]~(p WHERE p.number=333)]",
      "x");
  // Branch 1: transfers into a4 (blocked): from a2. Branch 2: transfers
  // into a4 (the only p3 holder): from a2 again — deduplicated? The reduced
  // bindings differ (different shapes), so two rows remain.
  EXPECT_EQ(rows, (std::vector<std::string>{"a2", "a2"}));
}

TEST(ConditionalTest, QuestionMarkOptionalPart) {
  PropertyGraph g = BuildPaperGraph();
  // §4.6: y must be blocked OR the optional phone leg must exist with a
  // matching p. With no blocked phones, only blocked-y rows survive.
  std::vector<std::string> rows = Rows(
      g,
      "MATCH (x:Account)-[:Transfer]->(y:Account) [~(:Phone)~(p)]? "
      "WHERE y.isBlocked='yes' OR p.isBlocked='yes'",
      "x, y");
  // Transfers into a4: t3 from a2. Optional part may or may not match, but
  // the postfilter needs y blocked. Rows: skipped-variant (a2,a4) and
  // matched-variants (phone legs from a4: hp4 to p3... wait ~(:Phone)~
  // needs an intermediate Phone node; y~Phone~p means p is a neighbour of
  // the phone — only the account itself. Keep the skipped variant only.
  ASSERT_FALSE(rows.empty());
  for (const std::string& r : rows) {
    EXPECT_TRUE(r.find("a4") != std::string::npos) << r;
  }
}

TEST(ConditionalTest, UnmatchedOptionalBindsNull) {
  PropertyGraph g = BuildPaperGraph();
  // p1..p4 exist, but IPs have no phone edges: optional leg never matches
  // from an IP, so p projects as NULL.
  std::vector<std::string> rows =
      Rows(g, "MATCH (x:IP) [~[:hasPhone]~(p)]?", "x, p");
  EXPECT_EQ(rows, (std::vector<std::string>{"ip1|NULL", "ip2|NULL"}));
}

TEST(ConditionalTest, OptionalMatchedAndSkippedBothReturned) {
  PropertyGraph g = BuildPaperGraph();
  std::vector<std::string> rows =
      Rows(g, "MATCH (x WHERE x.number=111) [~[:hasPhone]~(p)]?", "x, p");
  // Phone p1 connects to a1 and a5; plus the skipped variant.
  EXPECT_EQ(rows,
            (std::vector<std::string>{"p1|NULL", "p1|a1", "p1|a5"}));
}

TEST(ConditionalTest, IllegalJoinRejectedAtMatchTime) {
  PropertyGraph g = BuildPaperGraph();
  Status st = MatchStatusOf(
      g, "MATCH [(x)->(y)] | [(x)->(z)], (y)->(w)");
  EXPECT_EQ(st.code(), StatusCode::kSemanticError);
}

TEST(ConditionalTest, ConditionalPredicateEvaluatesToUnknown) {
  PropertyGraph g = BuildPaperGraph();
  // Condition on the conditional var filters out skipped variants: NULL
  // comparison is UNKNOWN, not an error.
  std::vector<std::string> rows = Rows(
      g, "MATCH (x WHERE x.number=111) [~[:hasPhone]~(p)]? "
         "WHERE p.owner='Scott'",
      "x, p");
  EXPECT_EQ(rows, (std::vector<std::string>{"p1|a1"}));
}

TEST(ConditionalTest, IsNullOnConditionalVariable) {
  PropertyGraph g = BuildPaperGraph();
  std::vector<std::string> rows = Rows(
      g, "MATCH (x:IP) [~[:hasPhone]~(p)]? WHERE p IS NULL", "x");
  EXPECT_EQ(rows, (std::vector<std::string>{"ip1", "ip2"}));
}

}  // namespace
}  // namespace gpml
