#include "pgq/graph_view.h"

#include "graph/graph_builder.h"

namespace gpml {

namespace {

Result<std::vector<int>> ResolveColumns(const Table& table,
                                        const std::vector<std::string>& cols,
                                        int key_col, int skip1 = -1,
                                        int skip2 = -1) {
  std::vector<int> out;
  if (cols.empty()) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      int ci = static_cast<int>(c);
      if (ci == key_col || ci == skip1 || ci == skip2) continue;
      out.push_back(ci);
    }
    return out;
  }
  for (const std::string& name : cols) {
    int ci = table.schema().FindColumn(name);
    if (ci < 0) return Status::NotFound("no column named " + name);
    out.push_back(ci);
  }
  return out;
}

PropertyList RowProperties(const Table& table, const Row& row,
                           const std::vector<int>& property_cols) {
  PropertyList props;
  props.reserve(property_cols.size());
  for (int c : property_cols) {
    const Value& v = row[static_cast<size_t>(c)];
    if (v.is_null()) continue;  // Absent property, not a NULL-valued one.
    props.push_back({table.schema().column(static_cast<size_t>(c)).name, v});
  }
  return props;
}

}  // namespace

Result<PropertyGraph> MaterializeGraphView(const Catalog& catalog,
                                           const GraphViewDef& def) {
  GraphBuilder builder;

  for (const NodeTableMapping& m : def.nodes) {
    GPML_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(m.table));
    int key = table->schema().FindColumn(m.key_column);
    if (key < 0) {
      return Status::NotFound("node table " + m.table + " has no key column " +
                              m.key_column);
    }
    GPML_ASSIGN_OR_RETURN(std::vector<int> props,
                          ResolveColumns(*table, m.property_columns, key));
    for (const Row& row : table->rows()) {
      const Value& k = row[static_cast<size_t>(key)];
      if (k.is_null()) {
        return Status::InvalidArgument("NULL node key in table " + m.table);
      }
      builder.AddNode(k.ToString(), m.labels,
                      RowProperties(*table, row, props));
    }
  }

  for (const EdgeTableMapping& m : def.edges) {
    GPML_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(m.table));
    int key = table->schema().FindColumn(m.key_column);
    int src = table->schema().FindColumn(m.source_column);
    int dst = table->schema().FindColumn(m.target_column);
    if (key < 0 || src < 0 || dst < 0) {
      return Status::NotFound("edge table " + m.table +
                              " is missing key/source/target columns");
    }
    GPML_ASSIGN_OR_RETURN(
        std::vector<int> props,
        ResolveColumns(*table, m.property_columns, key, src, dst));
    for (const Row& row : table->rows()) {
      const Value& k = row[static_cast<size_t>(key)];
      const Value& s = row[static_cast<size_t>(src)];
      const Value& d = row[static_cast<size_t>(dst)];
      if (k.is_null() || s.is_null() || d.is_null()) {
        return Status::InvalidArgument("NULL key/endpoint in edge table " +
                                       m.table);
      }
      if (m.directed) {
        builder.AddDirectedEdge(k.ToString(), s.ToString(), d.ToString(),
                                m.labels, RowProperties(*table, row, props));
      } else {
        builder.AddUndirectedEdge(k.ToString(), s.ToString(), d.ToString(),
                                  m.labels,
                                  RowProperties(*table, row, props));
      }
    }
  }

  return std::move(builder).Build();
}

Status CreatePropertyGraph(Catalog& catalog, const GraphViewDef& def) {
  GPML_ASSIGN_OR_RETURN(PropertyGraph g, MaterializeGraphView(catalog, def));
  return catalog.AddGraph(def.name, std::move(g));
}

namespace {

Schema MakeSchema(std::vector<ColumnDef> cols) { return Schema(std::move(cols)); }

Status AddNodeTable(Catalog& catalog, const std::string& name,
                    std::vector<ColumnDef> cols,
                    std::vector<Row> rows) {
  Table t{MakeSchema(std::move(cols))};
  for (Row& r : rows) {
    GPML_RETURN_IF_ERROR(t.Append(std::move(r)));
  }
  return catalog.AddTable(name, std::move(t));
}

Value S(const char* s) { return Value::String(s); }
Value I(int64_t i) { return Value::Int(i); }

}  // namespace

Result<GraphViewDef> InstallPaperTables(Catalog& catalog) {
  constexpr int64_t M = 1'000'000;

  GPML_RETURN_IF_ERROR(AddNodeTable(
      catalog, "Account",
      {{"ID", ValueType::kString, false},
       {"owner", ValueType::kString, true},
       {"isBlocked", ValueType::kString, true}},
      {{S("a1"), S("Scott"), S("no")},
       {S("a2"), S("Aretha"), S("no")},
       {S("a3"), S("Mike"), S("no")},
       {S("a4"), S("Jay"), S("yes")},
       {S("a5"), S("Charles"), S("no")},
       {S("a6"), S("Dave"), S("no")}}));

  GPML_RETURN_IF_ERROR(AddNodeTable(catalog, "Country",
                                    {{"ID", ValueType::kString, false},
                                     {"name", ValueType::kString, true}},
                                    {{S("c1"), S("Zembla")}}));

  GPML_RETURN_IF_ERROR(AddNodeTable(catalog, "CityCountry",
                                    {{"ID", ValueType::kString, false},
                                     {"name", ValueType::kString, true}},
                                    {{S("c2"), S("Ankh-Morpork")}}));

  GPML_RETURN_IF_ERROR(AddNodeTable(
      catalog, "Phone",
      {{"ID", ValueType::kString, false},
       {"number", ValueType::kInt, true},
       {"isBlocked", ValueType::kString, true}},
      {{S("p1"), I(111), S("no")},
       {S("p2"), I(222), S("no")},
       {S("p3"), I(333), S("no")},
       {S("p4"), I(444), S("no")}}));

  GPML_RETURN_IF_ERROR(AddNodeTable(
      catalog, "IP",
      {{"ID", ValueType::kString, false},
       {"number", ValueType::kString, true},
       {"isBlocked", ValueType::kString, true}},
      {{S("ip1"), S("123.111"), S("no")}, {S("ip2"), S("123.222"), S("no")}}));

  GPML_RETURN_IF_ERROR(AddNodeTable(
      catalog, "Transfer",
      {{"ID", ValueType::kString, false},
       {"A_ID1", ValueType::kString, false},
       {"A_ID2", ValueType::kString, false},
       {"date", ValueType::kString, true},
       {"amount", ValueType::kInt, true}},
      {{S("t1"), S("a1"), S("a3"), S("1/1/2020"), I(8 * M)},
       {S("t2"), S("a3"), S("a2"), S("2/1/2020"), I(10 * M)},
       {S("t3"), S("a2"), S("a4"), S("3/1/2020"), I(10 * M)},
       {S("t4"), S("a4"), S("a6"), S("4/1/2020"), I(10 * M)},
       {S("t5"), S("a6"), S("a3"), S("6/1/2020"), I(10 * M)},
       {S("t6"), S("a6"), S("a5"), S("7/1/2020"), I(4 * M)},
       {S("t7"), S("a3"), S("a5"), S("8/1/2020"), I(6 * M)},
       {S("t8"), S("a5"), S("a1"), S("9/1/2020"), I(9 * M)}}));

  GPML_RETURN_IF_ERROR(AddNodeTable(
      catalog, "isLocatedIn",
      {{"ID", ValueType::kString, false},
       {"A_ID", ValueType::kString, false},
       {"C_ID", ValueType::kString, false}},
      {{S("li1"), S("a1"), S("c1")},
       {S("li2"), S("a2"), S("c2")},
       {S("li3"), S("a3"), S("c1")},
       {S("li4"), S("a4"), S("c2")},
       {S("li5"), S("a5"), S("c1")},
       {S("li6"), S("a6"), S("c2")}}));

  GPML_RETURN_IF_ERROR(AddNodeTable(
      catalog, "hasPhone",
      {{"ID", ValueType::kString, false},
       {"A_ID", ValueType::kString, false},
       {"P_ID", ValueType::kString, false}},
      {{S("hp1"), S("a1"), S("p1")},
       {S("hp2"), S("a2"), S("p2")},
       {S("hp3"), S("a3"), S("p2")},
       {S("hp4"), S("a4"), S("p3")},
       {S("hp5"), S("a5"), S("p1")},
       {S("hp6"), S("a6"), S("p4")}}));

  GPML_RETURN_IF_ERROR(
      AddNodeTable(catalog, "signInWithIP",
                   {{"ID", ValueType::kString, false},
                    {"A_ID", ValueType::kString, false},
                    {"s_ID", ValueType::kString, false}},
                   {{S("sip1"), S("a1"), S("ip1")},
                    {S("sip2"), S("a5"), S("ip2")}}));

  GraphViewDef def;
  def.name = "paper_graph";
  def.nodes = {
      {"Account", "ID", {"Account"}, {}},
      {"Country", "ID", {"Country"}, {}},
      {"CityCountry", "ID", {"City", "Country"}, {}},
      {"Phone", "ID", {"Phone"}, {}},
      {"IP", "ID", {"IP"}, {}},
  };
  def.edges = {
      {"Transfer", "ID", "A_ID1", "A_ID2", true, {"Transfer"}, {}},
      {"isLocatedIn", "ID", "A_ID", "C_ID", true, {"isLocatedIn"}, {}},
      {"hasPhone", "ID", "A_ID", "P_ID", false, {"hasPhone"}, {}},
      {"signInWithIP", "ID", "A_ID", "s_ID", true, {"signInWithIP"}, {}},
  };
  return def;
}

}  // namespace gpml
