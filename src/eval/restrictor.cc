#include "eval/restrictor.h"

namespace gpml {

bool SatisfiesRestrictor(const Path& path, Restrictor r) {
  switch (r) {
    case Restrictor::kNone: return true;
    case Restrictor::kTrail: return path.IsTrail();
    case Restrictor::kAcyclic: return path.IsAcyclic();
    case Restrictor::kSimple: return path.IsSimple();
  }
  return true;
}

}  // namespace gpml
