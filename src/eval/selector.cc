#include "eval/selector.h"

#include <map>
#include <utility>

namespace gpml {

void ApplySelector(const Selector& sel, std::vector<PathBinding>* bindings) {
  if (sel.IsNone()) return;

  struct Partition {
    size_t kept = 0;
    std::vector<uint32_t> lengths;  // Distinct lengths kept (GROUP).
    uint32_t min_len = 0;
    bool any = false;
  };
  std::map<std::pair<NodeId, NodeId>, Partition> parts;
  std::vector<PathBinding> kept;
  kept.reserve(bindings->size());

  for (PathBinding& pb : *bindings) {
    auto key = std::make_pair(pb.path.Start(), pb.path.End());
    Partition& p = parts[key];
    uint32_t len = static_cast<uint32_t>(pb.path.Length());
    bool keep = false;
    switch (sel.kind) {
      case Selector::Kind::kAny:
      case Selector::Kind::kAnyShortest:
        // First (= shortest, thanks to the length ordering) per partition.
        keep = !p.any;
        break;
      case Selector::Kind::kAllShortest:
        if (!p.any) {
          p.min_len = len;
          keep = true;
        } else {
          keep = len == p.min_len;
        }
        break;
      case Selector::Kind::kAnyK:
      case Selector::Kind::kShortestK:
        keep = p.kept < static_cast<size_t>(sel.k);
        break;
      case Selector::Kind::kShortestKGroup: {
        bool known = false;
        for (uint32_t l : p.lengths) known = known || l == len;
        if (known) {
          keep = true;
        } else if (p.lengths.size() < static_cast<size_t>(sel.k)) {
          p.lengths.push_back(len);
          keep = true;
        }
        break;
      }
      case Selector::Kind::kNone:
        keep = true;
        break;
    }
    if (keep) {
      p.any = true;
      ++p.kept;
      kept.push_back(std::move(pb));
    }
  }
  *bindings = std::move(kept);
}

}  // namespace gpml
