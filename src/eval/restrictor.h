#ifndef GPML_EVAL_RESTRICTOR_H_
#define GPML_EVAL_RESTRICTOR_H_

#include "ast/ast.h"
#include "graph/path.h"

namespace gpml {

/// Whole-path restrictor check (Figure 7), used by the reference evaluator
/// (§6.4 "restrictors are also checked at this point") and by property tests
/// validating the production engine's incremental pruning.
bool SatisfiesRestrictor(const Path& path, Restrictor r);

}  // namespace gpml

#endif  // GPML_EVAL_RESTRICTOR_H_
