#include "planner/planner.h"

#include <algorithm>
#include <set>

#include "graph/property_graph.h"

namespace gpml {
namespace planner {

namespace {

// ---------------------------------------------------------------------------
// Pattern mirroring
// ---------------------------------------------------------------------------

EdgeOrientation MirrorOrientation(EdgeOrientation o) {
  switch (o) {
    case EdgeOrientation::kLeft: return EdgeOrientation::kRight;
    case EdgeOrientation::kRight: return EdgeOrientation::kLeft;
    case EdgeOrientation::kLeftOrUndirected:
      return EdgeOrientation::kUndirectedOrRight;
    case EdgeOrientation::kUndirectedOrRight:
      return EdgeOrientation::kLeftOrUndirected;
    case EdgeOrientation::kUndirected:
    case EdgeOrientation::kLeftOrRight:
    case EdgeOrientation::kAny:
      return o;  // Symmetric.
  }
  return o;
}

PathElement ReverseElement(const PathElement& e) {
  PathElement out = e;
  switch (e.kind) {
    case PathElement::Kind::kNode:
      break;
    case PathElement::Kind::kEdge:
      out.edge.orientation = MirrorOrientation(e.edge.orientation);
      break;
    case PathElement::Kind::kParen:
    case PathElement::Kind::kQuantified:
    case PathElement::Kind::kOptional:
      out.sub = ReversePathPattern(e.sub);
      break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reversal safety
// ---------------------------------------------------------------------------

void CollectDeclaredVars(const PathPattern& p, std::set<std::string>* out) {
  switch (p.kind) {
    case PathPattern::Kind::kConcat:
      for (const PathElement& e : p.elements) {
        switch (e.kind) {
          case PathElement::Kind::kNode:
            if (!e.node.var.empty()) out->insert(e.node.var);
            break;
          case PathElement::Kind::kEdge:
            if (!e.edge.var.empty()) out->insert(e.edge.var);
            break;
          case PathElement::Kind::kParen:
          case PathElement::Kind::kQuantified:
          case PathElement::Kind::kOptional:
            CollectDeclaredVars(*e.sub, out);
            break;
        }
      }
      break;
    case PathPattern::Kind::kUnion:
    case PathPattern::Kind::kAlternation:
      for (const PathPatternPtr& alt : p.alternatives) {
        CollectDeclaredVars(*alt, out);
      }
      break;
  }
}

bool WhereLocal(const ExprPtr& where, const std::set<std::string>& allowed) {
  if (where == nullptr) return true;
  std::vector<std::string> refs;
  where->CollectVariables(&refs);
  for (const std::string& r : refs) {
    if (allowed.count(r) == 0) return false;
  }
  return true;
}

bool ReversalSafeWalk(const PathPattern& p) {
  switch (p.kind) {
    case PathPattern::Kind::kAlternation:
      // |+| provenance tags are recorded in traversal order; mirroring
      // permutes nested tag sequences in a way plain reversal can't undo.
      return false;
    case PathPattern::Kind::kUnion:
      for (const PathPatternPtr& alt : p.alternatives) {
        if (!ReversalSafeWalk(*alt)) return false;
      }
      return true;
    case PathPattern::Kind::kConcat:
      for (const PathElement& e : p.elements) {
        switch (e.kind) {
          case PathElement::Kind::kNode:
            if (!WhereLocal(e.node.where, {e.node.var})) return false;
            break;
          case PathElement::Kind::kEdge:
            if (!WhereLocal(e.edge.where, {e.edge.var})) return false;
            break;
          case PathElement::Kind::kParen:
          case PathElement::Kind::kQuantified:
          case PathElement::Kind::kOptional: {
            if (!ReversalSafeWalk(*e.sub)) return false;
            std::set<std::string> declared;
            CollectDeclaredVars(*e.sub, &declared);
            if (!WhereLocal(e.where, declared)) return false;
            break;
          }
        }
      }
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Endpoint extraction and estimation
// ---------------------------------------------------------------------------

const NodePattern* EndNodeOf(const PathPattern& p, bool last) {
  if (p.kind != PathPattern::Kind::kConcat || p.elements.empty()) {
    return nullptr;  // Union endpoints differ per branch: not extractable.
  }
  const PathElement& e = last ? p.elements.back() : p.elements.front();
  switch (e.kind) {
    case PathElement::Kind::kNode:
      return &e.node;
    case PathElement::Kind::kParen:
      return EndNodeOf(*e.sub, last);
    case PathElement::Kind::kQuantified:
      // With at least one mandatory iteration the path's end node is the
      // body's end node; with min=0 the quantifier can vanish entirely.
      return e.min >= 1 ? EndNodeOf(*e.sub, last) : nullptr;
    case PathElement::Kind::kEdge:
    case PathElement::Kind::kOptional:
      return nullptr;
  }
  return nullptr;
}

/// Expected first-hop fanout of the endpoint: how many adjacencies survive
/// the adjacent edge pattern's label and orientation, per surviving seed.
/// Falls back to per-label (or graph-wide) average degree when the adjacent
/// edge or the label-path frequencies can't pin it down.
double EndpointFanout(const PathPattern& p, bool right_end,
                      const SeedEstimate& est, const GraphStats& stats) {
  double fallback = est.label.empty() ? stats.AvgDegreeOverall()
                                      : stats.AvgDegree(est.label);
  if (p.kind != PathPattern::Kind::kConcat || p.elements.size() < 2) {
    return fallback;
  }
  const PathElement& e =
      right_end ? p.elements[p.elements.size() - 2] : p.elements[1];
  if (e.kind != PathElement::Kind::kEdge) return fallback;
  if (e.edge.labels == nullptr || e.edge.labels->kind != LabelExpr::Kind::kName)
    return fallback;
  if (est.label.empty()) return fallback;
  double denom = static_cast<double>(stats.NodeLabelCount(est.label));
  if (denom <= 0) return fallback;

  // Orientation as seen when walking away from this endpoint.
  EdgeOrientation o = right_end ? MirrorOrientation(e.edge.orientation)
                                : e.edge.orientation;
  bool forward = o == EdgeOrientation::kRight ||
                 o == EdgeOrientation::kUndirectedOrRight ||
                 o == EdgeOrientation::kLeftOrRight ||
                 o == EdgeOrientation::kAny;
  bool backward = o == EdgeOrientation::kLeft ||
                  o == EdgeOrientation::kLeftOrUndirected ||
                  o == EdgeOrientation::kLeftOrRight ||
                  o == EdgeOrientation::kAny;
  bool undirected = o == EdgeOrientation::kUndirected ||
                    o == EdgeOrientation::kLeftOrUndirected ||
                    o == EdgeOrientation::kUndirectedOrRight ||
                    o == EdgeOrientation::kAny;

  // label_path_counts mixes directed and undirected edges (the latter in
  // both orders); subtract the undirected share to cost each admissible
  // traversal kind with exactly the edges it can cross.
  const std::string& el = e.edge.labels->name;
  double out_all = 0, out_und = 0, in_all = 0, in_und = 0;
  for (const auto& [key, c] : stats.label_path_counts) {
    if (std::get<1>(key) != el) continue;
    if (std::get<0>(key) == est.label) out_all += c;
    if (std::get<2>(key) == est.label) in_all += c;
  }
  for (const auto& [key, c] : stats.undirected_label_path_counts) {
    if (std::get<1>(key) != el) continue;
    if (std::get<0>(key) == est.label) out_und += c;
    if (std::get<2>(key) == est.label) in_und += c;
  }
  double count = 0;
  if (forward) count += out_all - out_und;
  if (backward) count += in_all - in_und;
  if (undirected) count += out_und;  // Both orders recorded: one suffices.
  return count / denom;
}

/// A top-level AND-conjunct of `where` of the shape `var.prop = literal`
/// or `var.prop = $param` (either operand order); fills prop and either
/// value or param. Literals must be non-null because `= NULL` is never
/// kTrue (a $param may still be bound to NULL — the engine falls back to
/// label-scan seeding in that case); top-level because an equality under
/// OR/NOT is not necessary for the predicate to hold.
bool FindEqualityConjunct(const Expr& where, const std::string& var,
                          std::string* prop, Value* value,
                          std::string* param) {
  if (where.kind == Expr::Kind::kBinary && where.op == BinaryOp::kAnd) {
    return FindEqualityConjunct(*where.lhs, var, prop, value, param) ||
           FindEqualityConjunct(*where.rhs, var, prop, value, param);
  }
  if (where.kind != Expr::Kind::kBinary || where.op != BinaryOp::kEq) {
    return false;
  }
  auto is_rhs = [](const Expr& e) {
    return e.kind == Expr::Kind::kLiteral || e.kind == Expr::Kind::kParam;
  };
  const Expr* access = nullptr;
  const Expr* operand = nullptr;
  if (where.lhs->kind == Expr::Kind::kPropertyAccess && is_rhs(*where.rhs)) {
    access = where.lhs.get();
    operand = where.rhs.get();
  } else if (where.rhs->kind == Expr::Kind::kPropertyAccess &&
             is_rhs(*where.lhs)) {
    access = where.rhs.get();
    operand = where.lhs.get();
  } else {
    return false;
  }
  if (access->var != var || var.empty() || access->property == "*") {
    return false;
  }
  if (operand->kind == Expr::Kind::kLiteral) {
    if (operand->literal.is_null()) return false;
    *value = operand->literal;
  } else {
    *param = operand->var;
  }
  *prop = access->property;
  return true;
}

SeedEstimate EstimateEndpoint(const NodePattern* np, const GraphStats& stats,
                              const PlannerConfig& config) {
  SeedEstimate est;
  double n = static_cast<double>(stats.num_nodes);
  if (np == nullptr) {
    est.enumerated = n;
    est.survivors = n;
    return est;
  }
  est.has_node = true;
  // Mirror the matcher's seeding rule: seed from the most selective
  // required label conjunct (a plain name, or any name a conjunction
  // requires); anything else scans all nodes.
  if (np->labels != nullptr) {
    std::vector<const std::string*> required;
    np->labels->CollectRequiredNames(&required);
    const std::string* best = nullptr;
    size_t best_count = 0;
    for (const std::string* name : required) {
      size_t count = stats.NodeLabelCount(*name);
      if (best == nullptr || count < best_count) {
        best = name;
        best_count = count;
      }
    }
    if (best != nullptr) {
      est.label = *best;
      est.enumerated = static_cast<double>(best_count);
    } else {
      est.enumerated = n;
    }
  } else {
    est.enumerated = n;
  }
  SelectivityHints hints;
  hints.var = np->var;
  hints.label = est.label;
  hints.label_count = est.label.empty() ? n : est.enumerated;
  est.selectivity = PredicateSelectivity(np->where, config, hints);
  est.survivors = EstimateLabelCardinality(np->labels, stats) *
                  est.selectivity;
  est.survivors = std::min(est.survivors, est.enumerated);

  // Index-backed seeding: a labeled endpoint with an inline equality
  // predicate can seed from the (label, prop) = value hash index. The cost
  // comparison against the label scan is the eq-selectivity discount on the
  // enumerated seeds (exact bucket size when histograms are available); the
  // index is never larger than the label scan, so this estimate errs
  // conservative.
  if (config.use_seed_index && !est.label.empty() && np->where != nullptr &&
      FindEqualityConjunct(*np->where, np->var, &est.index_prop,
                           &est.index_value, &est.index_param)) {
    if (config.histograms != nullptr && est.index_param.empty()) {
      double exact = static_cast<double>(
          config.histograms
              ->IndexedNodes(est.label, est.index_prop, est.index_value)
              .size());
      est.enumerated = std::min(est.enumerated, exact);
    } else {
      est.enumerated *= config.eq_selectivity;
    }
    est.survivors = std::min(est.survivors, est.enumerated);
  }
  return est;
}

// ---------------------------------------------------------------------------
// Join variables
// ---------------------------------------------------------------------------

/// Named unconditional non-group singletons declared both in decl
/// `decl_index` and in any already-planned declaration — the same rule the
/// engine's hash join uses.
std::vector<int> JoinVars(const VarTable& vars, int decl_index,
                          const std::set<int>& processed) {
  std::vector<int> out;
  for (int v = 0; v < vars.size(); ++v) {
    const VarInfo& info = vars.info(v);
    if (info.anonymous || info.group || info.conditional) continue;
    if (info.kind == VarInfo::Kind::kPath) continue;
    bool in_this = false;
    bool in_processed = false;
    for (int d : info.decls) {
      if (d == decl_index) in_this = true;
      if (processed.count(d) > 0) in_processed = true;
    }
    if (in_this && in_processed) out.push_back(v);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public helpers
// ---------------------------------------------------------------------------

PathPatternPtr ReversePathPattern(const PathPatternPtr& p) {
  if (p == nullptr) return nullptr;
  switch (p->kind) {
    case PathPattern::Kind::kConcat: {
      std::vector<PathElement> elements;
      elements.reserve(p->elements.size());
      for (auto it = p->elements.rbegin(); it != p->elements.rend(); ++it) {
        elements.push_back(ReverseElement(*it));
      }
      return PathPattern::Concat(std::move(elements));
    }
    case PathPattern::Kind::kUnion:
    case PathPattern::Kind::kAlternation: {
      std::vector<PathPatternPtr> alts;
      alts.reserve(p->alternatives.size());
      for (const PathPatternPtr& alt : p->alternatives) {
        alts.push_back(ReversePathPattern(alt));
      }
      return p->kind == PathPattern::Kind::kUnion
                 ? PathPattern::Union(std::move(alts))
                 : PathPattern::Alternation(std::move(alts));
    }
  }
  return p;
}

bool ReversalSafe(const PathPatternDecl& decl) {
  switch (decl.selector.kind) {
    case Selector::Kind::kNone:
    case Selector::Kind::kAllShortest:
    case Selector::Kind::kShortestKGroup:
      break;  // Full enumeration or a deterministic subset: direction-free.
    default:
      return false;  // ANY-family selectors pick direction-dependent
                     // witnesses; mirroring would change results.
  }
  return ReversalSafeWalk(*decl.pattern);
}

void UnreverseMatchSet(MatchSet* match) {
  for (PathBinding& pb : match->bindings) {
    std::reverse(pb.reduced.begin(), pb.reduced.end());
    std::reverse(pb.tags.begin(), pb.tags.end());
    pb.path = pb.path.Reversed();
  }
}

double EstimateLabelCardinality(const LabelExprPtr& labels,
                                const GraphStats& stats) {
  double n = static_cast<double>(stats.num_nodes);
  if (labels == nullptr) return n;
  switch (labels->kind) {
    case LabelExpr::Kind::kName:
      return static_cast<double>(stats.NodeLabelCount(labels->name));
    case LabelExpr::Kind::kWildcard:
      return static_cast<double>(stats.num_labeled_nodes);
    case LabelExpr::Kind::kNot:
      return std::max(n - EstimateLabelCardinality(labels->left, stats), 0.0);
    case LabelExpr::Kind::kAnd:
      return std::min(EstimateLabelCardinality(labels->left, stats),
                      EstimateLabelCardinality(labels->right, stats));
    case LabelExpr::Kind::kOr:
      return std::min(n, EstimateLabelCardinality(labels->left, stats) +
                             EstimateLabelCardinality(labels->right, stats));
  }
  return n;
}

namespace {

/// Exact selectivity of `hints.var.prop = literal` from the property seed
/// index histogram: bucket count over label count, clamped to [0, 1].
/// Negative when the conjunct doesn't resolve (wrong shape, other variable,
/// $param operand, no label, empty histogram context).
double ExactEqualitySelectivity(const Expr& eq, const PlannerConfig& config,
                                const SelectivityHints& hints) {
  if (config.histograms == nullptr || hints.label.empty() ||
      hints.var.empty() || hints.label_count <= 0) {
    return -1.0;
  }
  const Expr* access = nullptr;
  const Expr* literal = nullptr;
  if (eq.lhs->kind == Expr::Kind::kPropertyAccess &&
      eq.rhs->kind == Expr::Kind::kLiteral) {
    access = eq.lhs.get();
    literal = eq.rhs.get();
  } else if (eq.rhs->kind == Expr::Kind::kPropertyAccess &&
             eq.lhs->kind == Expr::Kind::kLiteral) {
    access = eq.rhs.get();
    literal = eq.lhs.get();
  } else {
    return -1.0;
  }
  if (access->var != hints.var || access->property == "*" ||
      literal->literal.is_null()) {
    return -1.0;
  }
  double count = static_cast<double>(
      config.histograms
          ->IndexedNodes(hints.label, access->property, literal->literal)
          .size());
  return std::min(1.0, count / hints.label_count);
}

}  // namespace

double PredicateSelectivity(const ExprPtr& where, const PlannerConfig& config,
                            const SelectivityHints& hints) {
  if (where == nullptr) return 1.0;
  switch (where->kind) {
    case Expr::Kind::kBinary:
      switch (where->op) {
        case BinaryOp::kAnd:
          return PredicateSelectivity(where->lhs, config, hints) *
                 PredicateSelectivity(where->rhs, config, hints);
        case BinaryOp::kOr: {
          double a = PredicateSelectivity(where->lhs, config, hints);
          double b = PredicateSelectivity(where->rhs, config, hints);
          return std::min(1.0, a + b - a * b);
        }
        case BinaryOp::kEq: {
          double exact = ExactEqualitySelectivity(*where, config, hints);
          return exact >= 0 ? exact : config.eq_selectivity;
        }
        case BinaryOp::kNeq:
          return config.neq_selectivity;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return config.range_selectivity;
        default:
          return config.default_selectivity;
      }
    case Expr::Kind::kNot:
      return std::max(0.0,
                      1.0 - PredicateSelectivity(where->lhs, config, hints));
    case Expr::Kind::kIsNull:
      return where->negated ? config.neq_selectivity : config.eq_selectivity;
    case Expr::Kind::kLiteral:
      return 1.0;  // TRUE/FALSE literals are rare; don't special-case.
    default:
      return config.default_selectivity;
  }
}

double PredicateSelectivity(const ExprPtr& where,
                            const PlannerConfig& config) {
  return PredicateSelectivity(where, config, SelectivityHints{});
}

const NodePattern* FirstNodeOf(const PathPattern& p) {
  return EndNodeOf(p, /*last=*/false);
}

const NodePattern* LastNodeOf(const PathPattern& p) {
  return EndNodeOf(p, /*last=*/true);
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

Plan DirectPlan(const GraphPattern& normalized, const VarTable& vars) {
  Plan plan;
  std::set<int> processed;
  for (size_t d = 0; d < normalized.paths.size(); ++d) {
    DeclPlan dp;
    dp.decl_index = static_cast<int>(d);
    dp.decl = normalized.paths[d];
    dp.join_vars = JoinVars(vars, dp.decl_index, processed);
    processed.insert(dp.decl_index);
    plan.decls.push_back(std::move(dp));
  }
  return plan;
}

Result<Plan> PlanPattern(const GraphPattern& normalized, const VarTable& vars,
                         const GraphStats& stats,
                         const PlannerConfig& config) {
  Plan plan;
  plan.planner_used = true;
  const size_t n = normalized.paths.size();

  struct Cand {
    const NodePattern* first = nullptr;
    const NodePattern* last = nullptr;
    SeedEstimate left, right;
    int left_var = -1, right_var = -1;
    bool safe = false;
  };
  std::vector<Cand> cands(n);
  for (size_t d = 0; d < n; ++d) {
    const PathPatternDecl& decl = normalized.paths[d];
    Cand& c = cands[d];
    c.first = FirstNodeOf(*decl.pattern);
    c.last = LastNodeOf(*decl.pattern);
    c.left = EstimateEndpoint(c.first, stats, config);
    c.right = EstimateEndpoint(c.last, stats, config);
    c.left.fanout = EndpointFanout(*decl.pattern, false, c.left, stats);
    c.right.fanout = EndpointFanout(*decl.pattern, true, c.right, stats);
    if (c.first != nullptr) c.left_var = vars.Find(c.first->var);
    if (c.last != nullptr) c.right_var = vars.Find(c.last->var);
    c.safe = ReversalSafe(decl);
  }

  std::set<int> processed;
  std::vector<bool> done(n, false);
  while (processed.size() < n) {
    // Greedy pick: prefer declarations whose anchor endpoint is already
    // bound (restricted seed list), then ones sharing any join variable
    // (selective hash join), then the cheapest remaining; original index
    // breaks ties so equal-cost declarations keep source order.
    int best = -1;
    int best_class = 3;
    double best_cost = 0;
    std::vector<int> best_join;
    for (size_t d = 0; d < n; ++d) {
      if (done[d]) continue;
      const Cand& c = cands[d];
      std::vector<int> join =
          JoinVars(vars, static_cast<int>(d), processed);
      auto is_join_var = [&join](int v) {
        return v >= 0 &&
               std::find(join.begin(), join.end(), v) != join.end();
      };
      bool left_bound = is_join_var(c.left_var);
      bool right_bound = is_join_var(c.right_var) && c.safe;
      int cls = (left_bound || right_bound) ? 0 : (join.empty() ? 2 : 1);
      double cost = c.left.Cost();
      if (c.safe) cost = std::min(cost, c.right.Cost());
      if (best < 0 || cls < best_class ||
          (cls == best_class && cost < best_cost)) {
        best = static_cast<int>(d);
        best_class = cls;
        best_cost = cost;
        best_join = std::move(join);
      }
    }

    const Cand& c = cands[static_cast<size_t>(best)];
    const PathPatternDecl& decl = normalized.paths[static_cast<size_t>(best)];
    auto is_join_var = [&best_join](int v) {
      return v >= 0 && std::find(best_join.begin(), best_join.end(), v) !=
                           best_join.end();
    };
    bool left_bound = is_join_var(c.left_var);
    bool right_bound = is_join_var(c.right_var);

    DeclPlan dp;
    dp.decl_index = best;
    dp.join_vars = best_join;
    // Direction: a bound end wins outright (its seed list is the join
    // bindings, typically tiny); otherwise the statistically cheaper end,
    // with hysteresis toward the written direction.
    if (c.safe && right_bound && !left_bound) {
      dp.reversed = true;
    } else if (c.safe && !left_bound && !right_bound) {
      dp.reversed = c.right.Cost() * config.reverse_margin < c.left.Cost();
    }
    dp.anchor = dp.reversed ? c.right : c.left;
    dp.other = dp.reversed ? c.left : c.right;
    dp.anchor_var = dp.reversed ? c.right_var : c.left_var;
    if (is_join_var(dp.anchor_var)) dp.seed_bound_var = dp.anchor_var;
    if (dp.reversed) {
      dp.decl = decl;
      dp.decl.pattern = ReversePathPattern(decl.pattern);
    } else {
      dp.decl = decl;
    }

    done[static_cast<size_t>(best)] = true;
    processed.insert(best);
    plan.decls.push_back(std::move(dp));
  }
  return plan;
}

}  // namespace planner
}  // namespace gpml
