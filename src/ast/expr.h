#ifndef GPML_AST_EXPR_H_
#define GPML_AST_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/source.h"
#include "common/value.h"

namespace gpml {

struct Expr;
/// Expressions are immutable after parsing; subtrees are shared between the
/// parsed, normalized, and expanded forms of a pattern.
using ExprPtr = std::shared_ptr<const Expr>;

/// Binary operators of the WHERE-clause language (§4) in one enum; the
/// comparison subset yields TriBool under SQL three-valued logic.
enum class BinaryOp {
  kEq, kNeq, kLt, kLe, kGt, kGe,   // comparisons
  kAnd, kOr,                       // boolean connectives
  kAdd, kSub, kMul, kDiv,          // arithmetic
};

const char* BinaryOpName(BinaryOp op);

/// Aggregate functions applicable to group variables (§4.4, §5.3).
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax, kListAgg };

const char* AggFuncName(AggFunc f);

/// A scalar/boolean expression. One struct with a Kind tag rather than a
/// class hierarchy: the expression language is small and closed, and passes
/// switch over kinds exhaustively.
struct Expr {
  enum class Kind {
    kLiteral,         // 5000000, 'Ankh-Morpork', TRUE, NULL
    kParam,           // $amount — placeholder bound per execution (prepared
                      // queries); `var` holds the bare parameter name.
    kVarRef,          // x                 (element reference)
    kPropertyAccess,  // x.owner ; e.* is property == "*" (COUNT(e.*))
    kBinary,          // lhs op rhs
    kNot,             // NOT lhs
    kIsNull,          // lhs IS [NOT] NULL     (negated flag)
    kAggregate,       // SUM(arg), COUNT(DISTINCT arg), LISTAGG(arg, sep)
    kIsDirected,      // e IS DIRECTED          (§4.7)
    kIsSourceOf,      // s IS SOURCE OF e       (§4.7)
    kIsDestinationOf, // d IS DESTINATION OF e  (§4.7)
    kSame,            // SAME(p, q, ...)        (§4.7)
    kAllDifferent,    // ALL_DIFFERENT(p, ...)  (§4.7)
    kPathLength,      // PATH_LENGTH(p): edges in the path bound to p
  };

  Kind kind = Kind::kLiteral;

  Value literal;                  // kLiteral.
  std::string var;                // kVarRef/kPropertyAccess/kIsDirected/
                                  // kIsSourceOf (node var)/kPathLength.
  std::string property;           // kPropertyAccess ("*" for e.*).
  BinaryOp op = BinaryOp::kEq;    // kBinary.
  ExprPtr lhs;                    // kBinary, kNot, kIsNull (operand).
  ExprPtr rhs;                    // kBinary.
  bool negated = false;           // kIsNull: IS NOT NULL.
  AggFunc agg = AggFunc::kCount;  // kAggregate.
  bool distinct = false;          // kAggregate: COUNT(DISTINCT x).
  ExprPtr arg;                    // kAggregate argument.
  std::string separator;          // kAggregate: LISTAGG separator.
  std::string var2;               // kIsSourceOf/kIsDestinationOf: edge var.
  std::vector<std::string> vars;  // kSame/kAllDifferent.
  /// Byte range of the expression in the query text; {0,0} (invalid) for
  /// programmatically built trees. Set by the parser via WithSpan.
  SourceSpan span;

  // Factory helpers (the parser and tests build expressions through these).
  static ExprPtr Lit(Value v);
  static ExprPtr Param(std::string name);
  static ExprPtr Var(std::string name);
  static ExprPtr Prop(std::string var, std::string property);
  static ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr e);
  static ExprPtr IsNull(ExprPtr e, bool negated);
  static ExprPtr Aggregate(AggFunc f, ExprPtr arg, bool distinct = false,
                           std::string separator = "");
  static ExprPtr IsDirected(std::string edge_var);
  static ExprPtr IsSourceOf(std::string node_var, std::string edge_var);
  static ExprPtr IsDestinationOf(std::string node_var, std::string edge_var);
  static ExprPtr Same(std::vector<std::string> vars);
  static ExprPtr AllDifferent(std::vector<std::string> vars);
  static ExprPtr PathLength(std::string path_var);
  /// Stamps a source span onto a freshly built expression (the parser calls
  /// this immediately after a factory, while the node is still uniquely
  /// owned). Returns `e` for chaining.
  static ExprPtr WithSpan(ExprPtr e, SourceSpan span);

  /// Renders in GPML surface syntax.
  std::string ToString() const;

  /// Structural equality.
  static bool Equal(const ExprPtr& a, const ExprPtr& b);

  /// True if any node in the tree is an aggregate (used by the §5.3
  /// termination rules and by postfilter planning).
  bool ContainsAggregate() const;

  /// Collects every variable referenced anywhere in the tree. Parameter
  /// names are not variables and are excluded; signature collection walks
  /// the tree separately (eval/params.h, which also infers constraints).
  void CollectVariables(std::vector<std::string>* out) const;
};

}  // namespace gpml

#endif  // GPML_AST_EXPR_H_
