#include "eval/reference_eval.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/sample_graph.h"
#include "parser/parser.h"
#include "semantics/normalize.h"

namespace gpml {
namespace {

struct Prepared {
  GraphPattern normalized;
  std::unique_ptr<VarTable> vars;
};

Prepared Prepare(const std::string& text) {
  Prepared p;
  Result<GraphPattern> parsed = ParseGraphPattern(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  Result<GraphPattern> normalized = Normalize(*parsed);
  EXPECT_TRUE(normalized.ok());
  p.normalized = *normalized;
  Result<Analysis> analysis = Analyze(p.normalized);
  EXPECT_TRUE(analysis.ok()) << analysis.status();
  p.vars = std::make_unique<VarTable>(*analysis);
  return p;
}

TEST(ExpansionTest, BoundedQuantifierCounts) {
  PropertyGraph g = MakeChainGraph(3);
  Prepared p = Prepare("MATCH (a)[()-[t:T]->()]{1,3}(b)");
  ReferenceOptions options;
  Result<std::vector<RigidPattern>> rigids =
      ExpandPattern(p.normalized.paths[0], *p.vars, g, options);
  ASSERT_TRUE(rigids.ok());
  EXPECT_EQ(rigids->size(), 3u);  // n = 1, 2, 3.
}

TEST(ExpansionTest, UnionMultipliesPerIteration) {
  PropertyGraph g = MakeChainGraph(3);
  Prepared p = Prepare("MATCH (a)[()-[t:X]->() | ()-[t:Y]->()]{2}(b)");
  ReferenceOptions options;
  Result<std::vector<RigidPattern>> rigids =
      ExpandPattern(p.normalized.paths[0], *p.vars, g, options);
  ASSERT_TRUE(rigids.ok());
  // Each of the two iterations independently picks a branch: 2^2.
  EXPECT_EQ(rigids->size(), 4u);
}

TEST(ExpansionTest, OptionalAddsEmptyAlternative) {
  PropertyGraph g = MakeChainGraph(3);
  Prepared p = Prepare("MATCH (x)[->(y)]?");
  ReferenceOptions options;
  Result<std::vector<RigidPattern>> rigids =
      ExpandPattern(p.normalized.paths[0], *p.vars, g, options);
  ASSERT_TRUE(rigids.ok());
  EXPECT_EQ(rigids->size(), 2u);
  // One of them has a single item (just the x node).
  bool has_short = false;
  for (const RigidPattern& rp : *rigids) {
    if (rp.items.size() == 1) has_short = true;
  }
  EXPECT_TRUE(has_short);
}

TEST(ExpansionTest, GuardAgainstExplosion) {
  PropertyGraph g = MakeChainGraph(3);
  Prepared p = Prepare("MATCH (a)[()-[t:X]->() | ()-[t:Y]->()]{12}(b)");
  ReferenceOptions options;
  options.max_rigid_patterns = 100;  // 2^12 would exceed this.
  Result<std::vector<RigidPattern>> rigids =
      ExpandPattern(p.normalized.paths[0], *p.vars, g, options);
  EXPECT_FALSE(rigids.ok());
  EXPECT_EQ(rigids.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExpansionTest, AlternationAddsTags) {
  PropertyGraph g = MakeChainGraph(3);
  Prepared p = Prepare("MATCH (c:A) |+| (c:B)");
  ReferenceOptions options;
  Result<std::vector<RigidPattern>> rigids =
      ExpandPattern(p.normalized.paths[0], *p.vars, g, options);
  ASSERT_TRUE(rigids.ok());
  ASSERT_EQ(rigids->size(), 2u);
  EXPECT_NE((*rigids)[0].tags, (*rigids)[1].tags);
}

TEST(ReferenceEvalTest, SimpleEdgeQuery) {
  PropertyGraph g = MakeChainGraph(4);
  Prepared p = Prepare("MATCH (x)-[e:Transfer]->(y)");
  Result<MatchSet> m =
      RunReference(g, p.normalized.paths[0], *p.vars, {});
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->bindings.size(), 3u);
}

TEST(ReferenceEvalTest, TrailAutoCapSufficesForPaperQuery) {
  PropertyGraph g = BuildPaperGraph();
  Prepared p = Prepare(
      "MATCH TRAIL (a WHERE a.owner='Dave')-[t:Transfer]->*"
      "(b WHERE b.owner='Aretha')");
  Result<MatchSet> m =
      RunReference(g, p.normalized.paths[0], *p.vars, {});
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->bindings.size(), 3u);
}

TEST(ReferenceEvalTest, SelectorAppliedAfterDedup) {
  PropertyGraph g = BuildPaperGraph();
  Prepared p = Prepare(
      "MATCH ALL SHORTEST (a WHERE a.owner='Dave')-[t:Transfer]->*"
      "(b WHERE b.owner='Aretha')");
  Result<MatchSet> m =
      RunReference(g, p.normalized.paths[0], *p.vars, {});
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->bindings.size(), 1u);
  EXPECT_EQ(m->bindings[0].path.ToString(g), "path(a6,t5,a3,t2,a2)");
}

TEST(ReferenceEvalTest, RigidPatternPrintingShowsAnnotations) {
  PropertyGraph g = BuildPaperGraph();
  Prepared p = Prepare("MATCH (a)[-[b:Transfer]->]{2}(a)");
  ReferenceOptions options;
  Result<std::vector<RigidPattern>> rigids =
      ExpandPattern(p.normalized.paths[0], *p.vars, g, options);
  ASSERT_TRUE(rigids.ok());
  ASSERT_EQ(rigids->size(), 1u);
  std::string s = (*rigids)[0].ToString(*p.vars);
  EXPECT_NE(s.find("b^1:Transfer"), std::string::npos) << s;
  EXPECT_NE(s.find("b^2:Transfer"), std::string::npos) << s;
}

}  // namespace
}  // namespace gpml
