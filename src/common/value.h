#ifndef GPML_COMMON_VALUE_H_
#define GPML_COMMON_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "common/result.h"

namespace gpml {

/// Three-valued logic truth value used by WHERE-clause evaluation (§4): any
/// comparison involving an absent property or NULL yields kUnknown, and a
/// filter keeps a binding only when the predicate is kTrue.
enum class TriBool { kFalse = 0, kTrue = 1, kUnknown = 2 };

TriBool TriNot(TriBool v);
TriBool TriAnd(TriBool a, TriBool b);
TriBool TriOr(TriBool a, TriBool b);
const char* TriBoolName(TriBool v);

/// Dynamic type tag of a Value.
enum class ValueType { kNull = 0, kBool, kInt, kDouble, kString };

const char* ValueTypeName(ValueType t);

/// A property value (the `Val` domain of Definition 2.1). Property graphs
/// attach these to nodes and edges; expression evaluation produces them.
///
/// Values are small, regular, hashable and totally ordered (by type tag,
/// then payload) so they can key hash maps during deduplication; SQL-style
/// comparisons with NULL propagation are provided separately (SqlEquals /
/// SqlCompare).
class Value {
 public:
  /// NULL value; also what property access returns for a missing property.
  Value() : repr_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t i) { return Value(Repr(i)); }
  static Value Double(double d) { return Value(Repr(d)); }
  static Value String(std::string s) { return Value(Repr(std::move(s))); }

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Typed accessors; calling the wrong one is a programming error.
  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const {
    return std::get<std::string>(repr_);
  }

  /// Numeric payload widened to double (requires is_numeric()).
  double AsDouble() const;

  /// Renders the value for result tables: NULL, true/false, numbers, and
  /// strings without quotes.
  std::string ToString() const;

  /// Strict structural equality (used for container keys and binding
  /// deduplication): NULL == NULL here, and 1 == 1.0 (numeric cross-type
  /// compare), but no other cross-type equality.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  /// Total order: by type tag first (except int/double compare numerically),
  /// then payload. Used for sorting result rows deterministically.
  friend bool operator<(const Value& a, const Value& b);

  /// SQL-style equality: kUnknown if either side is NULL.
  static TriBool SqlEquals(const Value& a, const Value& b);
  /// SQL-style ordering comparison: kUnknown if either side is NULL or the
  /// types are incomparable. `cmp` < 0 / == 0 / > 0 selects < / = / >.
  static Result<int> SqlCompare(const Value& a, const Value& b);

  /// Arithmetic with NULL propagation; type errors are reported.
  static Result<Value> Add(const Value& a, const Value& b);
  static Result<Value> Subtract(const Value& a, const Value& b);
  static Result<Value> Multiply(const Value& a, const Value& b);
  static Result<Value> Divide(const Value& a, const Value& b);

  size_t Hash() const;

 private:
  using Repr =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr r) : repr_(std::move(r)) {}
  Repr repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace gpml

#endif  // GPML_COMMON_VALUE_H_
