// The per-fingerprint workload-statistics store (obs/query_stats.h) and
// its engine wiring: exact aggregation against a per-call oracle under the
// concurrent {threads} x {csr} x {batch} execution matrix (the TSan CI job
// races this), LRU eviction at capacity, plan-hash stability across
// plan-cache hits, plan-change detection when use_seed_index flips,
// per-tenant metric families in the Prometheus rendering, and both hosts'
// graph-identity-filtered retrieval surfaces.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "eval/engine.h"
#include "gql/session.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/query_stats.h"
#include "pgq/graph_table.h"

namespace gpml {
namespace {

// Single fixed-length declaration: streams through the cursor and is
// eligible for the batch path (under csr), so one query exercises every
// recording route in the matrix.
const char* kStreamQuery =
    "MATCH (x:Account WHERE x.isBlocked='no')-[t:Transfer]->(y:Account)";

// Inline equality on the anchor: the planner seeds this from the
// (City, name) hash index when use_seed_index is on and from a label scan
// when it is off — two different compiled plans for one query shape.
const char* kIndexedQuery =
    "MATCH (c:City WHERE c.name='Ankh-Morpork')<-[:isLocatedIn]-(x:Account)";

// No inline equality anywhere: the seed-index flag cannot affect this
// plan, so its entry must never record a plan change.
const char* kPlainQuery = "MATCH (x:Account)-[t:Transfer]->(y:Account)";

PropertyGraph TestGraph() {
  FraudGraphOptions options;
  options.num_accounts = 60;
  options.num_cities = 2;
  return MakeFraudGraph(options);
}

obs::QueryObservation Obs(const std::string& fingerprint, uint64_t plan_hash,
                          double total_ms = 1.0) {
  obs::QueryObservation o;
  o.fingerprint = fingerprint;
  o.graph_token = 7;
  o.plan_hash = plan_hash;
  o.total_ms = total_ms;
  o.rows = 2;
  o.seeds = 3;
  o.steps = 5;
  return o;
}

const obs::QueryStatEntry* FindEntry(
    const std::vector<obs::QueryStatEntry>& entries,
    const std::string& fingerprint_piece) {
  for (const obs::QueryStatEntry& e : entries) {
    if (e.fingerprint.find(fingerprint_piece) != std::string::npos) return &e;
  }
  return nullptr;
}

// --- store semantics ---------------------------------------------------------

TEST(QueryStatsStoreTest, RecordAggregatesUnderOneFingerprint) {
  obs::QueryStatsStore store;
  obs::QueryStatsStore::RecordOutcome first = store.Record(Obs("q1", 11, 2.0));
  EXPECT_TRUE(first.new_entry);
  EXPECT_FALSE(first.plan_changed);
  EXPECT_FALSE(first.evicted);
  obs::QueryStatsStore::RecordOutcome second =
      store.Record(Obs("q1", 11, 6.0));
  EXPECT_FALSE(second.new_entry);
  EXPECT_FALSE(second.plan_changed);

  std::vector<obs::QueryStatEntry> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const obs::QueryStatEntry& e = snap[0];
  EXPECT_EQ(e.fingerprint, "q1");
  EXPECT_EQ(e.graph_token, 7u);
  EXPECT_EQ(e.calls, 2u);
  EXPECT_EQ(e.rows, 4u);
  EXPECT_EQ(e.seeds, 6u);
  EXPECT_EQ(e.steps, 10u);
  EXPECT_DOUBLE_EQ(e.total_ms, 8.0);
  EXPECT_DOUBLE_EQ(e.min_ms, 2.0);
  EXPECT_DOUBLE_EQ(e.max_ms, 6.0);
  // One plan, stable across both calls.
  ASSERT_EQ(e.plans.size(), 1u);
  EXPECT_EQ(e.plans[0].plan_hash, 11u);
  EXPECT_EQ(e.plans[0].calls, 2u);
  EXPECT_FALSE(e.plan_changed);
  EXPECT_EQ(e.plan_changes, 0u);
  // Latency histogram holds every call.
  uint64_t bucketed = 0;
  for (uint64_t b : e.latency_buckets) bucketed += b;
  EXPECT_EQ(bucketed, 2u);
  EXPECT_EQ(store.total_recorded(), 2u);
}

TEST(QueryStatsStoreTest, TenantIsPartOfTheKey) {
  obs::QueryStatsStore store;
  obs::QueryObservation a = Obs("q", 1);
  a.tenant = "alpha";
  obs::QueryObservation b = Obs("q", 1);
  b.tenant = "beta";
  store.Record(a);
  store.Record(b);
  store.Record(a);
  std::vector<obs::QueryStatEntry> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // MRU first: alpha was updated last.
  EXPECT_EQ(snap[0].tenant, "alpha");
  EXPECT_EQ(snap[0].calls, 2u);
  EXPECT_EQ(snap[1].tenant, "beta");
  EXPECT_EQ(snap[1].calls, 1u);
}

TEST(QueryStatsStoreTest, LruEvictsLeastRecentlyUpdatedAtCapacity) {
  obs::QueryStatsStore store(3);
  EXPECT_EQ(store.capacity(), 3u);
  store.Record(Obs("q0", 1));
  store.Record(Obs("q1", 1));
  store.Record(Obs("q2", 1));
  // Touch q0 so q1 becomes the LRU victim.
  store.Record(Obs("q0", 1));
  obs::QueryStatsStore::RecordOutcome overflow = store.Record(Obs("q3", 1));
  EXPECT_TRUE(overflow.new_entry);
  EXPECT_TRUE(overflow.evicted);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.evictions(), 1u);

  std::vector<obs::QueryStatEntry> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].fingerprint, "q3");  // MRU first.
  EXPECT_EQ(snap[1].fingerprint, "q0");
  EXPECT_EQ(snap[2].fingerprint, "q2");
  EXPECT_EQ(FindEntry(snap, "q1"), nullptr) << "q1 was the LRU victim";

  // A re-recorded evicted fingerprint starts a fresh entry (and evicts
  // again); cumulative counters keep the history.
  obs::QueryStatsStore::RecordOutcome back = store.Record(Obs("q1", 1));
  EXPECT_TRUE(back.new_entry);
  EXPECT_TRUE(back.evicted);
  EXPECT_EQ(store.evictions(), 2u);
  EXPECT_EQ(store.total_recorded(), 6u);
}

TEST(QueryStatsStoreTest, PlanRingTracksChangesRevisitsAndCap) {
  obs::QueryStatsStore store;
  EXPECT_FALSE(store.Record(Obs("q", 1)).plan_changed);  // First plan.
  EXPECT_TRUE(store.Record(Obs("q", 2)).plan_changed);   // 1 -> 2.
  EXPECT_TRUE(store.Record(Obs("q", 1)).plan_changed);   // Revisit counts.
  EXPECT_FALSE(store.Record(Obs("q", 1)).plan_changed);  // Still current.
  EXPECT_TRUE(store.Record(Obs("q", 3)).plan_changed);
  EXPECT_TRUE(store.Record(Obs("q", 4)).plan_changed);
  EXPECT_TRUE(store.Record(Obs("q", 5)).plan_changed);  // Ring is full: 4.

  std::vector<obs::QueryStatEntry> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const obs::QueryStatEntry& e = snap[0];
  EXPECT_TRUE(e.plan_changed);
  EXPECT_EQ(e.plan_changes, 5u);
  ASSERT_EQ(e.plans.size(), obs::QueryStatsStore::kMaxPlans);
  // Oldest (plan 2) fell off; back() is the current plan.
  EXPECT_EQ(e.plans[0].plan_hash, 1u);
  EXPECT_EQ(e.plans[1].plan_hash, 3u);
  EXPECT_EQ(e.plans[2].plan_hash, 4u);
  EXPECT_EQ(e.plans[3].plan_hash, 5u);
  // The revisited plan kept its per-plan call count.
  EXPECT_EQ(e.plans[0].calls, 3u);
}

TEST(QueryStatsStoreTest, ConcurrentRecordsAreExact) {
  // 8 writers x 200 records each, half into a shared fingerprint and half
  // into a per-thread one: totals must come out exact, not approximate.
  obs::QueryStatsStore store;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        store.Record(Obs("shared", 1));
        store.Record(Obs("private" + std::to_string(t), 1));
      }
    });
  }
  for (std::thread& t : writers) t.join();

  std::vector<obs::QueryStatEntry> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 1u + kThreads);
  const obs::QueryStatEntry* shared = FindEntry(snap, "shared");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->calls, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(shared->rows, static_cast<uint64_t>(kThreads * kPerThread * 2));
  for (int t = 0; t < kThreads; ++t) {
    const obs::QueryStatEntry* mine =
        FindEntry(snap, "private" + std::to_string(t));
    ASSERT_NE(mine, nullptr) << t;
    EXPECT_EQ(mine->calls, static_cast<uint64_t>(kPerThread)) << t;
  }
  EXPECT_EQ(store.total_recorded(),
            static_cast<uint64_t>(2 * kThreads * kPerThread));
}

TEST(QueryStatsStoreTest, HashPlanTextIsStableAndDiscriminating) {
  const std::string plan_a = "decl 0: scan Account -> expand Transfer";
  EXPECT_EQ(obs::HashPlanText(plan_a), obs::HashPlanText(plan_a));
  EXPECT_NE(obs::HashPlanText(plan_a),
            obs::HashPlanText(plan_a + " reversed"));
  EXPECT_NE(obs::HashPlanText(""), 0u) << "FNV offset basis, not zero";
}

// --- engine recording --------------------------------------------------------

TEST(QueryStatsEngineTest, ExactAggregationAcrossConcurrentMatrix) {
  // {engine threads} x {csr} x {batch}; in every cell, 4 client threads
  // each run 5 executions against a shared private store. The per-call
  // EngineMetrics are the oracle: the store's cumulative entry must equal
  // their sums exactly, even under concurrent Record calls.
  constexpr int kClients = 4;
  constexpr int kCallsEach = 5;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    for (bool csr : {true, false}) {
      for (bool batch : {true, false}) {
        std::string config = "threads=" + std::to_string(threads) +
                             " csr=" + std::to_string(csr) +
                             " batch=" + std::to_string(batch);
        PropertyGraph g = TestGraph();
        obs::QueryStatsStore store;

        struct Oracle {
          uint64_t rows = 0;
          uint64_t seeds = 0;
          uint64_t steps = 0;
          uint64_t batch_calls = 0;
          uint64_t cache_hits = 0;
        };
        std::vector<Oracle> oracles(kClients);
        std::vector<std::thread> clients;
        for (int c = 0; c < kClients; ++c) {
          clients.emplace_back([&, c] {
            EngineMetrics metrics;
            EngineOptions options;
            options.num_threads = threads;
            options.use_csr = csr;
            options.use_batch = batch;
            options.query_stats = &store;
            options.metrics = &metrics;
            Engine engine(g, options);
            for (int i = 0; i < kCallsEach; ++i) {
              Result<MatchOutput> out = engine.Match(kStreamQuery);
              ASSERT_TRUE(out.ok()) << config << ": " << out.status();
              oracles[c].rows += metrics.rows;
              oracles[c].seeds += metrics.seeded_nodes;
              oracles[c].steps += metrics.matcher_steps;
              oracles[c].batch_calls += metrics.batch_blocks > 0 ? 1 : 0;
              oracles[c].cache_hits += metrics.plan_cache_hits;
            }
          });
        }
        for (std::thread& t : clients) t.join();

        Oracle want;
        for (const Oracle& o : oracles) {
          want.rows += o.rows;
          want.seeds += o.seeds;
          want.steps += o.steps;
          want.batch_calls += o.batch_calls;
          want.cache_hits += o.cache_hits;
        }
        std::vector<obs::QueryStatEntry> snap = store.Snapshot();
        ASSERT_EQ(snap.size(), 1u) << config;
        const obs::QueryStatEntry& e = snap[0];
        EXPECT_EQ(e.calls, static_cast<uint64_t>(kClients * kCallsEach))
            << config;
        EXPECT_EQ(e.rows, want.rows) << config;
        EXPECT_EQ(e.seeds, want.seeds) << config;
        EXPECT_EQ(e.steps, want.steps) << config;
        EXPECT_EQ(e.batch_calls, want.batch_calls) << config;
        EXPECT_EQ(e.cache_hits, want.cache_hits) << config;
        EXPECT_EQ(e.cache_hits + e.cache_misses, e.calls) << config;
        EXPECT_EQ(e.errors, 0u) << config;
        EXPECT_EQ(e.truncations, 0u) << config;
        uint64_t bucketed = 0;
        for (uint64_t b : e.latency_buckets) bucketed += b;
        EXPECT_EQ(bucketed, e.calls) << config;
        // One compiled plan per cell: the flags are fixed inside it.
        ASSERT_GE(e.plans.size(), 1u) << config;
        EXPECT_FALSE(e.plan_changed) << config;
      }
    }
  }
}

TEST(QueryStatsEngineTest, PlanHashIsStableAcrossCacheHits) {
  PropertyGraph g = TestGraph();
  obs::QueryStatsStore store;
  EngineMetrics metrics;
  EngineOptions options;
  options.query_stats = &store;
  options.metrics = &metrics;
  Engine engine(g, options);
  ASSERT_TRUE(engine.Match(kStreamQuery).ok());
  ASSERT_EQ(metrics.plan_cache_misses, 1u);
  ASSERT_TRUE(engine.Match(kStreamQuery).ok());
  ASSERT_EQ(metrics.plan_cache_hits, 1u);

  std::vector<obs::QueryStatEntry> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const obs::QueryStatEntry& e = snap[0];
  EXPECT_EQ(e.calls, 2u);
  EXPECT_EQ(e.cache_misses, 1u);
  EXPECT_EQ(e.cache_hits, 1u);
  ASSERT_EQ(e.plans.size(), 1u) << "a cache hit must reuse the plan hash";
  EXPECT_NE(e.plans[0].plan_hash, 0u);
  EXPECT_EQ(e.plans[0].calls, 2u);
  EXPECT_FALSE(e.plan_changed);
}

TEST(QueryStatsEngineTest, SeedIndexToggleRecordsExactlyOnePlanChange) {
  PropertyGraph g = TestGraph();
  obs::QueryStatsStore store;

  EngineOptions with_index;
  with_index.query_stats = &store;
  Engine indexed(g, with_index);

  EngineOptions without_index = with_index;
  without_index.use_seed_index = false;
  Engine scanned(g, without_index);

  // Premise check: the flag actually flips the compiled plan for the
  // indexed query and does not touch the plain one.
  Result<std::string> plan_on = indexed.Explain(kIndexedQuery);
  Result<std::string> plan_off = scanned.Explain(kIndexedQuery);
  ASSERT_TRUE(plan_on.ok() && plan_off.ok());
  ASSERT_NE(*plan_on, *plan_off);
  Result<std::string> plain_on = indexed.Explain(kPlainQuery);
  Result<std::string> plain_off = scanned.Explain(kPlainQuery);
  ASSERT_TRUE(plain_on.ok() && plain_off.ok());
  ASSERT_EQ(*plain_on, *plain_off);

  ASSERT_TRUE(indexed.Match(kIndexedQuery).ok());
  ASSERT_TRUE(indexed.Match(kIndexedQuery).ok());
  ASSERT_TRUE(indexed.Match(kPlainQuery).ok());
  // The toggle: the next indexed-query execution replans without the
  // index — same stats fingerprint, different plan hash.
  ASSERT_TRUE(scanned.Match(kIndexedQuery).ok());
  ASSERT_TRUE(scanned.Match(kIndexedQuery).ok());
  ASSERT_TRUE(scanned.Match(kPlainQuery).ok());

  std::vector<obs::QueryStatEntry> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 2u) << "flag must not split the stats entry";
  const obs::QueryStatEntry* affected = FindEntry(snap, "isLocatedIn");
  ASSERT_NE(affected, nullptr);
  EXPECT_EQ(affected->calls, 4u);
  EXPECT_TRUE(affected->plan_changed);
  EXPECT_EQ(affected->plan_changes, 1u) << "one toggle, one change";
  ASSERT_EQ(affected->plans.size(), 2u);
  EXPECT_NE(affected->plans[0].plan_hash, affected->plans[1].plan_hash);
  EXPECT_EQ(affected->plans[0].calls, 2u);
  EXPECT_EQ(affected->plans[1].calls, 2u);

  const obs::QueryStatEntry* unaffected = FindEntry(snap, "Transfer");
  ASSERT_NE(unaffected, nullptr);
  EXPECT_EQ(unaffected->calls, 2u);
  EXPECT_FALSE(unaffected->plan_changed);
  EXPECT_EQ(unaffected->plans.size(), 1u);

  // The regression signal is also a counter on the graph's registry.
  EXPECT_EQ(g.metrics_registry()->Snapshot().CounterValue(
                "gpml_plan_changes_total"),
            1u);
  EXPECT_EQ(g.metrics_registry()->Snapshot().CounterValue(
                "gpml_querystats_observations_total"),
            6u);
}

TEST(QueryStatsEngineTest, ErrorsAndTruncationsAreCounted) {
  PropertyGraph g = TestGraph();
  obs::QueryStatsStore store;

  EngineOptions strict;
  strict.query_stats = &store;
  strict.matcher.max_steps = 1;
  Engine failing(g, strict);
  EXPECT_FALSE(failing.Match(kStreamQuery).ok());

  EngineOptions lenient = strict;
  lenient.on_budget = EngineOptions::BudgetPolicy::kTruncate;
  Engine truncating(g, lenient);
  Result<MatchOutput> out = truncating.Match(kStreamQuery);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->truncated);

  std::vector<obs::QueryStatEntry> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].calls, 2u) << "errored executions are still workload";
  EXPECT_EQ(snap[0].errors, 1u);
  EXPECT_EQ(snap[0].truncations, 1u);
}

TEST(QueryStatsEngineTest, StreamRecordsOnCompletionNotAbandonment) {
  PropertyGraph g = TestGraph();
  obs::QueryStatsStore store;
  EngineOptions options;
  options.query_stats = &store;
  Engine engine(g, options);
  Result<PreparedQuery> q = engine.Prepare(kStreamQuery);
  ASSERT_TRUE(q.ok());

  {
    Result<Cursor> cursor = q->Open();
    ASSERT_TRUE(cursor.ok());
    RowView view;
    while (true) {
      Result<bool> more = cursor->Next(&view);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
    }
  }
  EXPECT_EQ(store.total_recorded(), 1u) << "drained stream records once";

  {
    Result<Cursor> cursor = q->Open();
    ASSERT_TRUE(cursor.ok());
    RowView view;
    ASSERT_TRUE(cursor->Next(&view).ok());
    // Abandoned mid-stream: no completed execution, nothing recorded.
  }
  EXPECT_EQ(store.total_recorded(), 1u);
  EXPECT_EQ(store.Snapshot()[0].calls, 1u);
}

TEST(QueryStatsEngineTest, PublishQueryStatsOffLeavesStoreEmpty) {
  PropertyGraph g = TestGraph();
  obs::QueryStatsStore store;
  EngineOptions options;
  options.query_stats = &store;
  options.publish_query_stats = false;
  Engine engine(g, options);
  ASSERT_TRUE(engine.Match(kStreamQuery).ok());
  EXPECT_EQ(store.total_recorded(), 0u);
  EXPECT_EQ(store.Snapshot().size(), 0u);
}

// --- per-tenant metric families ----------------------------------------------

TEST(QueryStatsPrometheusTest, TenantFamiliesRenderWithLabels) {
  obs::MetricsRegistry registry;
  registry.GetCounter("gpml_tenant_steps_total{tenant=\"acme\"}")
      ->Increment(42);
  registry.GetCounter("gpml_tenant_steps_total{tenant=\"zeta\"}")
      ->Increment(7);
  registry
      .GetCounter(
          "gpml_tenant_refusals_total{tenant=\"acme\","
          "reason=\"TENANT_STEP_BUDGET\"}")
      ->Increment();
  obs::Gauge* sessions =
      registry.GetGauge("gpml_tenant_active_sessions{tenant=\"acme\"}");
  ASSERT_NE(sessions, nullptr);
  sessions->Increment();
  sessions->Increment();
  sessions->Decrement();

  std::string text = obs::RenderPrometheus(registry);
  EXPECT_NE(text.find("# TYPE gpml_tenant_steps_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gpml_tenant_steps_total{tenant=\"acme\"} 42"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gpml_tenant_steps_total{tenant=\"zeta\"} 7"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("gpml_tenant_refusals_total{tenant=\"acme\","
                "reason=\"TENANT_STEP_BUDGET\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE gpml_tenant_active_sessions gauge"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gpml_tenant_active_sessions{tenant=\"acme\"} 1"),
            std::string::npos)
      << text;
  // The # TYPE line appears once per family, not once per labeled series.
  EXPECT_EQ(text.find("# TYPE gpml_tenant_steps_total"),
            text.rfind("# TYPE gpml_tenant_steps_total"));
}

TEST(QueryStatsPrometheusTest, GaugesMayRenderNegative) {
  obs::MetricsRegistry registry;
  registry.GetGauge("gpml_test_gauge")->Set(-3);
  std::string text = obs::RenderPrometheus(registry);
  EXPECT_NE(text.find("gpml_test_gauge -3"), std::string::npos) << text;
}

// --- host surfaces -----------------------------------------------------------

TEST(QueryStatsHostTest, SurfacesFilterByGraphIdentity) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddGraph("bank", TestGraph()).ok());
  ASSERT_TRUE(catalog.AddGraph("other", BuildPaperGraph()).ok());

  obs::QueryStatsStore store;
  EngineOptions options;
  options.query_stats = &store;

  Session session(catalog, options);
  ASSERT_TRUE(session.UseGraph("bank").ok());
  ASSERT_TRUE(session.Execute(kStreamQuery).ok());
  ASSERT_TRUE(session.Execute(kStreamQuery).ok());
  ASSERT_TRUE(session.UseGraph("other").ok());
  ASSERT_TRUE(session.Execute(kPlainQuery).ok());
  ASSERT_TRUE(session.UseGraph("bank").ok());

  // Session: only the selected graph's entries.
  Result<std::vector<obs::QueryStatEntry>> mine = session.QueryStats();
  ASSERT_TRUE(mine.ok());
  ASSERT_EQ(mine->size(), 1u);
  EXPECT_EQ((*mine)[0].calls, 2u);
  EXPECT_NE((*mine)[0].fingerprint.find("isBlocked"), std::string::npos);

  // SQL/PGQ host reads the same store through the catalog.
  Result<std::vector<obs::QueryStatEntry>> pgq =
      GraphTableQueryStats(catalog, "other", &store);
  ASSERT_TRUE(pgq.ok());
  ASSERT_EQ(pgq->size(), 1u);
  EXPECT_EQ((*pgq)[0].calls, 1u);
  EXPECT_FALSE(GraphTableQueryStats(catalog, "missing", &store).ok());

  Session detached(catalog, options);
  EXPECT_FALSE(detached.QueryStats().ok()) << "no graph selected";
}

}  // namespace
}  // namespace gpml
