#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <optional>
#include <utility>

#include "gql/json_export.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"
#include "obs/clock.h"
#include "obs/prometheus.h"
#include "obs/query_stats.h"
#include "obs/trace.h"
#include "pgq/graph_table.h"
#include "server/json.h"
#include "server/protocol.h"

namespace gpml {
namespace server {

namespace {

/// Writes all of `data`, riding out short writes and EINTR. MSG_NOSIGNAL:
/// a peer that hung up must surface as a failed send, not SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Buffered newline-delimited reader over a socket. One ReadLine call is
/// one protocol request; a line longer than kMaxLine aborts the
/// connection (hostile input must not buffer unboundedly).
struct LineReader {
  static constexpr size_t kMaxLine = 16u << 20;
  static constexpr size_t kCompactAt = 1u << 20;

  explicit LineReader(int fd_in) : fd(fd_in) {}

  bool ReadLine(std::string* line) {
    while (true) {
      size_t nl = buf.find('\n', pos);
      if (nl != std::string::npos) {
        line->assign(buf, pos, nl - pos);
        pos = nl + 1;
        if (pos >= kCompactAt) {
          buf.erase(0, pos);
          pos = 0;
        }
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      if (buf.size() - pos > kMaxLine) return false;
      char chunk[65536];
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;  // EOF, shutdown(SHUT_RD), or error.
      buf.append(chunk, static_cast<size_t>(n));
    }
  }

  int fd;
  std::string buf;
  size_t pos = 0;
};

/// Marks one request in flight against a session: bumps in_flight (which
/// fences out the reaper) and stamps the idle clock on both edges. When
/// the session was already expired, expired() reports it and nothing is
/// marked — the caller answers SESSION_EXPIRED.
class SessionOp {
 public:
  explicit SessionOp(std::shared_ptr<ServerSession> session)
      : session_(std::move(session)) {
    std::lock_guard<std::mutex> lock(session_->mu);
    if (session_->expired) {
      expired_ = true;
      return;
    }
    ++session_->in_flight;
    session_->last_active_us = obs::MonotonicMicros();
    active_ = true;
  }

  ~SessionOp() {
    if (!active_) return;
    std::lock_guard<std::mutex> lock(session_->mu);
    --session_->in_flight;
    session_->last_active_us = obs::MonotonicMicros();
  }

  SessionOp(const SessionOp&) = delete;
  SessionOp& operator=(const SessionOp&) = delete;

  bool expired() const { return expired_; }

 private:
  std::shared_ptr<ServerSession> session_;
  bool expired_ = false;
  bool active_ = false;
};

Status SessionExpiredError() {
  return Status::NotFound(
      "session expired after idle timeout; send hello to start a new one");
}

std::string SessionExpiredResponse(const std::string& id_raw) {
  return ErrorResponse(SessionExpiredError(), kReasonSessionExpired, id_raw);
}

const std::string* GetString(const JsonValue& req, const std::string& key) {
  const JsonValue* v = req.Find(key);
  return v != nullptr && v->is_string() ? &v->string_v : nullptr;
}

bool GetInt(const JsonValue& req, const std::string& key, int64_t* out) {
  const JsonValue* v = req.Find(key);
  if (v == nullptr || !v->is_int()) return false;
  *out = v->int_v;
  return true;
}

int64_t GetIntOr(const JsonValue& req, const std::string& key,
                 int64_t fallback) {
  int64_t v = fallback;
  GetInt(req, key, &v);
  return v;
}

std::string FormatMs(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

/// Prometheus label-value escaping (text format): backslash, double
/// quote, and newline. Tenant names are client-supplied, so they go
/// through here before being spliced into a series name.
std::string PromLabelEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// The value of `key` in an HTTP query string ("a=1&b=2"), or "". No
/// percent-decoding — graph and tenant names on these endpoints are the
/// same plain identifiers the NDJSON ops take.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    size_t end = amp == std::string::npos ? query.size() : amp;
    if (end > pos && query.compare(pos, key.size(), key) == 0 &&
        pos + key.size() < end && query[pos + key.size()] == '=') {
      return query.substr(pos + key.size() + 1, end - pos - key.size() - 1);
    }
    if (amp == std::string::npos) break;
    pos = amp + 1;
  }
  return "";
}

/// Upper-bound quantile estimate from a log2 latency histogram (the
/// query-stats buckets share obs::Histogram's bounds): the bound of the
/// first bucket whose cumulative count reaches ceil(q * calls).
double QuantileMsFromBuckets(const std::vector<uint64_t>& buckets,
                             uint64_t calls, double q) {
  if (calls == 0 || buckets.empty()) return 0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(calls)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      size_t bound = i < obs::Histogram::kNumBounds
                         ? i
                         : obs::Histogram::kNumBounds - 1;
      return static_cast<double>(obs::Histogram::BoundMicros(bound)) / 1e3;
    }
  }
  return static_cast<double>(
             obs::Histogram::BoundMicros(obs::Histogram::kNumBounds - 1)) /
         1e3;
}

/// Builds one of the generator graphs by kind name (docs/server.md lists
/// them). Sizes come from the request with test-friendly defaults.
Result<PropertyGraph> BuildGraphByKind(const std::string& kind,
                                       const JsonValue& req) {
  if (kind == "paper") return BuildPaperGraph();
  if (kind == "chain") {
    return MakeChainGraph(static_cast<int>(GetIntOr(req, "n", 100)));
  }
  if (kind == "cycle") {
    return MakeCycleGraph(static_cast<int>(GetIntOr(req, "n", 100)));
  }
  if (kind == "complete") {
    return MakeCompleteGraph(static_cast<int>(GetIntOr(req, "n", 16)));
  }
  if (kind == "diamond") {
    return MakeDiamondChain(static_cast<int>(GetIntOr(req, "k", 8)));
  }
  if (kind == "grid") {
    return MakeGridGraph(static_cast<int>(GetIntOr(req, "w", 10)),
                         static_cast<int>(GetIntOr(req, "h", 10)));
  }
  if (kind == "fraud") {
    FraudGraphOptions opts;
    opts.num_accounts = static_cast<int>(GetIntOr(req, "accounts", 300));
    opts.transfers_per_account =
        static_cast<int>(GetIntOr(req, "transfers", 4));
    opts.num_cities = static_cast<int>(GetIntOr(req, "cities", 10));
    opts.seed = static_cast<uint64_t>(GetIntOr(req, "seed", 42));
    return MakeFraudGraph(opts);
  }
  if (kind == "random") {
    return MakeRandomGraph(static_cast<int>(GetIntOr(req, "nodes", 100)),
                           static_cast<int>(GetIntOr(req, "edges", 300)),
                           static_cast<int>(GetIntOr(req, "labels", 3)),
                           /*undirected_fraction=*/0.25,
                           static_cast<uint64_t>(GetIntOr(req, "seed", 42)));
  }
  return Status::InvalidArgument(
      "unknown graph kind '" + kind +
      "' (expected paper|chain|cycle|complete|diamond|grid|fraud|random)");
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), admission_(options_.default_quota) {
  connections_total_ = metrics_.GetCounter("gpml_server_connections_total");
  requests_total_ = metrics_.GetCounter("gpml_server_requests_total");
  errors_total_ = metrics_.GetCounter("gpml_server_errors_total");
  rejected_saturated_total_ =
      metrics_.GetCounter("gpml_server_rejected_saturated_total");
  rejected_quota_total_ =
      metrics_.GetCounter("gpml_server_rejected_quota_total");
  sessions_opened_total_ =
      metrics_.GetCounter("gpml_server_sessions_opened_total");
  sessions_reaped_total_ =
      metrics_.GetCounter("gpml_server_sessions_reaped_total");
  queries_total_ = metrics_.GetCounter("gpml_server_queries_total");
  query_duration_us_ = metrics_.GetHistogram("gpml_server_query_duration_us");
}

Server::~Server() { Stop(); }

Status Server::AddGraph(std::string name, PropertyGraph graph) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return catalog_.AddGraph(std::move(name), std::move(graph));
}

Status Server::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (started_) return Status::InvalidArgument("server already started");
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    Status status =
        Status::Internal(std::string("bind/listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  pool_ = std::make_unique<WorkerPool>(options_.worker_threads,
                                       options_.max_queue);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  reaper_thread_ = std::thread(&Server::ReaperLoop, this);
  return Status::OK();
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true);
  reaper_cv_.notify_all();
  // Waking the accept loop: shutdown on a listening socket makes a blocked
  // accept return, so the loop observes stopping_ and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (reaper_thread_.joinable()) reaper_thread_.join();

  // Graceful drain: SHUT_RD wakes connection threads blocked in recv (they
  // see EOF and tear down) but leaves the write side open, so a request
  // already executing still gets its response before the thread exits.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
    }
  }
  // Accept and reaper are joined, so nothing mutates conns_ anymore.
  for (const auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns_.clear();
  if (pool_ != nullptr) pool_->Shutdown();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    sockaddr_in peer{};
    socklen_t len = sizeof(peer);
    int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener shut down (Stop) or broken beyond retry.
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    size_t live = 0;
    {
      // Sweep finished connections: join their threads and release fds.
      // Only here and never from the connection threads themselves, so an
      // fd is closed exactly once, strictly after its thread has exited.
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load()) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          ::close((*it)->fd);
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      live = conns_.size();
    }
    if (live >= options_.max_connections) {
      SendAll(fd, ErrorResponse(Status::ResourceExhausted(
                                    "server connection limit reached"),
                                kReasonServerSaturated) +
                      "\n");
      ::close(fd);
      continue;
    }
    connections_total_->Increment();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
      raw->thread = std::thread([this, raw] { HandleConnection(raw); });
    }
  }
}

void Server::ReaperLoop() {
  std::unique_lock<std::mutex> lock(reaper_mu_);
  while (!stopping_.load()) {
    reaper_cv_.wait_for(
        lock,
        std::chrono::milliseconds(
            static_cast<int64_t>(options_.reap_interval_ms)),
        [this] { return stopping_.load(); });
    if (stopping_.load()) break;
    uint64_t idle_us =
        static_cast<uint64_t>(options_.idle_timeout_ms * 1000.0);
    std::vector<std::shared_ptr<ServerSession>> reaped =
        registry_.ReapIdle(obs::MonotonicMicros(), idle_us);
    for (const std::shared_ptr<ServerSession>& session : reaped) {
      ReleaseSessionSlot(session);
      sessions_reaped_total_->Increment();
    }
  }
}

void Server::HandleConnection(Connection* conn) {
  LineReader reader(conn->fd);
  ConnState state;
  std::string line;
  bool first = true;
  while (reader.ReadLine(&line)) {
    if (line.empty()) continue;
    if (first && line.rfind("GET ", 0) == 0) {
      HandleHttp(conn->fd, line, &reader.buf, &reader.pos);
      // HTTP clients frame the response by EOF (Connection: close); the
      // sweep only closes the fd once a *new* connection arrives, so
      // signal EOF here. shutdown() doesn't free the descriptor number,
      // keeping the close-only-after-join discipline intact.
      ::shutdown(conn->fd, SHUT_RDWR);
      break;
    }
    first = false;
    std::string response = Dispatch(&state, line);
    if (!SendAll(conn->fd, response + "\n")) break;
    if (state.close_requested) break;
  }
  if (state.session != nullptr) {
    ReleaseSessionSlot(state.session);
    registry_.Remove(state.session->id());
  }
  // The fd is closed by the accept-loop sweep (or Stop) after this thread
  // is joined — never here, so a shutdown() from Stop can't race a reused
  // descriptor number.
  conn->done.store(true);
}

void Server::HandleHttp(int fd, const std::string& request_line,
                        std::string* buffered, size_t* buffer_pos) {
  // Drain the request headers (bounded by LineReader) so closing the
  // socket after the response doesn't reset unread client data.
  LineReader reader(fd);
  reader.buf = std::move(*buffered);
  reader.pos = *buffer_pos;
  std::string header;
  while (reader.ReadLine(&header)) {
    if (header.empty()) break;
  }

  size_t path_begin = 4;  // Past "GET ".
  size_t path_end = request_line.find(' ', path_begin);
  std::string target =
      path_end == std::string::npos
          ? request_line.substr(path_begin)
          : request_line.substr(path_begin, path_end - path_begin);
  std::string path = target;
  std::string query;
  size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }

  int code = 200;
  std::string reason = "OK";
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (path == "/metrics") {
    body = obs::RenderPrometheus(obs::AggregateAllRegistries());
  } else if (path == "/slow_queries") {
    Result<std::string> records = SlowQueriesJson(QueryParam(query, "graph"));
    if (records.ok()) {
      content_type = "application/json";
      body = *records;
      body += "\n";
    } else {
      code = 404;
      reason = "Not Found";
      body = records.status().message() + "\n";
    }
  } else if (path == "/query_stats") {
    Result<std::string> entries = QueryStatsJson(QueryParam(query, "graph"),
                                                 QueryParam(query, "tenant"));
    if (entries.ok()) {
      content_type = "application/json";
      body = *entries;
      body += "\n";
    } else {
      code = 404;
      reason = "Not Found";
      body = entries.status().message() + "\n";
    }
  } else {
    code = 404;
    reason = "Not Found";
    body = "not found\n";
  }

  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                code, reason.c_str(), content_type.c_str(), body.size());
  SendAll(fd, head + body);
}

std::string Server::Dispatch(ConnState* state, const std::string& line) {
  requests_total_->Increment();
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    errors_total_->Increment();
    return ErrorResponse(Status::InvalidArgument("request is not valid JSON: " +
                                                 parsed.status().message()),
                         kReasonBadRequest);
  }
  const JsonValue& req = *parsed;
  std::string id_raw;
  if (const JsonValue* id = req.Find("id")) id_raw = id->RawSpan(line);
  const std::string* op = GetString(req, "op");
  if (op == nullptr) {
    errors_total_->Increment();
    return ErrorResponse(
        Status::InvalidArgument("request needs a string \"op\" field"),
        kReasonBadRequest, id_raw);
  }

  std::string response;
  if (*op == "hello") {
    response = OpHello(state, req, id_raw);
  } else if (*op == "ping") {
    if (state->session != nullptr) {
      SessionOp touch(state->session);  // Refreshes the idle clock.
    }
    response = OkResponseHead(id_raw) + "}";
  } else if (*op == "bye") {
    state->close_requested = true;
    response = OkResponseHead(id_raw) + "}";
  } else if (*op == "list_graphs") {
    response = OpListGraphs(id_raw);
  } else if (*op == "load_graph") {
    response = OpLoadGraph(req, id_raw);
  } else if (*op == "use_graph") {
    response = OpUseGraph(state, req, id_raw);
  } else if (*op == "prepare") {
    response = OpPrepare(state, req, id_raw);
  } else if (*op == "explain") {
    response = OpExplain(state, req, id_raw);
  } else if (*op == "execute") {
    response = OpExecute(state, req, id_raw);
  } else if (*op == "open") {
    response = OpOpen(state, req, id_raw);
  } else if (*op == "fetch") {
    response = OpFetch(state, req, id_raw);
  } else if (*op == "close_cursor") {
    response = OpCloseCursor(state, req, id_raw);
  } else if (*op == "close_stmt") {
    response = OpCloseStatement(state, req, id_raw);
  } else if (*op == "metrics") {
    response = OpMetrics(id_raw);
  } else if (*op == "slow_queries") {
    response = OpSlowQueries(req, id_raw);
  } else if (*op == "query_stats") {
    response = OpQueryStats(req, id_raw);
  } else if (*op == "stats") {
    response = OpStats(state, id_raw);
  } else if (*op == "debug_sleep") {
    response = OpDebugSleep(state, req, id_raw);
  } else {
    response = ErrorResponse(
        Status::InvalidArgument("unknown op '" + *op + "'"), kReasonBadRequest,
        id_raw);
  }
  if (response.rfind("{\"ok\":false", 0) == 0) errors_total_->Increment();
  return response;
}

Status Server::EnsureSession(ConnState* state, const std::string& tenant) {
  if (state->session != nullptr) return Status::OK();
  std::string effective = tenant.empty() ? "default" : tenant;
  Status admitted = admission_.AdmitSession(effective);
  if (!admitted.ok()) {
    rejected_quota_total_->Increment();
    TenantRefusalsCounter(effective, kReasonTenantSessions)->Increment();
    return admitted;
  }
  state->session = registry_.Create(effective);
  sessions_opened_total_->Increment();
  TenantSessionsGauge(effective)->Increment();
  return Status::OK();
}

bool Server::ReleaseSessionSlot(
    const std::shared_ptr<ServerSession>& session) {
  bool release = false;
  {
    std::lock_guard<std::mutex> lock(session->mu);
    if (!session->admission_released) {
      session->admission_released = true;
      release = true;
    }
  }
  if (release) {
    admission_.ReleaseSession(session->tenant());
    TenantSessionsGauge(session->tenant())->Decrement();
  }
  return release;
}

obs::Counter* Server::TenantStepsCounter(const std::string& tenant) {
  return metrics_.GetCounter("gpml_tenant_steps_total{tenant=\"" +
                             PromLabelEscape(tenant) + "\"}");
}

obs::Counter* Server::TenantRefusalsCounter(const std::string& tenant,
                                            const char* reason) {
  return metrics_.GetCounter("gpml_tenant_refusals_total{tenant=\"" +
                             PromLabelEscape(tenant) + "\",reason=\"" +
                             reason + "\"}");
}

obs::Gauge* Server::TenantSessionsGauge(const std::string& tenant) {
  return metrics_.GetGauge("gpml_tenant_active_sessions{tenant=\"" +
                           PromLabelEscape(tenant) + "\"}");
}

void Server::ChargeTenantSteps(const std::string& tenant, uint64_t steps) {
  admission_.ChargeSteps(tenant, steps);
  if (steps > 0) TenantStepsCounter(tenant)->Increment(steps);
}

std::string Server::RunPooled(const char* op, const std::string& tenant,
                              const std::string& trace_id,
                              const std::string& id_raw,
                              const std::function<std::string()>& fn) {
  obs::Trace trace;
  int root = trace.Begin("request");
  trace.Attr(root, "op", op);
  trace.Attr(root, "tenant", tenant);
  if (!trace_id.empty()) trace.Attr(root, "trace_id", trace_id);

  int admission_span = trace.Begin("admission", root);
  obs::Stopwatch admission_clock;
  Status admitted = admission_.AdmitQuery(tenant);
  double admission_ms = admission_clock.ElapsedMs();
  trace.End(admission_span);
  if (!admitted.ok()) {
    rejected_quota_total_->Increment();
    // AdmitQuery has two refusal causes; the messages (admission.cc) are
    // the discriminator for the machine-readable reason.
    const char* reason =
        admitted.message().find("step budget") != std::string::npos
            ? kReasonTenantStepBudget
            : kReasonTenantConcurrency;
    TenantRefusalsCounter(tenant, reason)->Increment();
    return ErrorResponse(admitted, reason, id_raw);
  }
  QueryTicket ticket(&admission_, tenant);
  std::promise<std::string> result;
  std::future<std::string> future = result.get_future();
  // The worker writes these before set_value; future.get() synchronizes,
  // so the reads below are ordered after the writes.
  double queue_ms = 0;
  double exec_ms = 0;
  uint64_t queue_start_us = trace.NowUs();
  bool accepted = pool_->SubmitTimed(
      [&result, &fn, &queue_ms, &exec_ms](double waited_ms) {
        queue_ms = waited_ms;
        obs::Stopwatch exec_clock;
        std::string response = fn();
        exec_ms = exec_clock.ElapsedMs();
        result.set_value(std::move(response));
      });
  if (!accepted) {
    rejected_saturated_total_->Increment();
    bool stopping = stopping_.load();
    const char* reason =
        stopping ? kReasonServerStopping : kReasonServerSaturated;
    TenantRefusalsCounter(tenant, reason)->Increment();
    return ErrorResponse(
        Status::ResourceExhausted(
            stopping ? "server is shutting down"
                     : "server worker pool is saturated; retry later"),
        reason, id_raw);
  }
  std::string response = future.get();

  // The queue span starts at submission and ends at worker pickup (the
  // wait the pool measured); the session span is the handler running
  // under the session from pickup to completion. Both are reconstructed
  // here because the worker thread must not touch the trace while the
  // submitting thread owns it.
  uint64_t queue_us = static_cast<uint64_t>(queue_ms * 1e3);
  uint64_t exec_us = static_cast<uint64_t>(exec_ms * 1e3);
  trace.AddComplete("queue", root, queue_start_us, queue_us);
  trace.AddComplete("session", root, queue_start_us + queue_us, exec_us);
  trace.End(root);
  if (options_.engine.trace_sink != nullptr) {
    options_.engine.trace_sink->Emit(trace);
  }

  // Successful responses carry the request timing breakdown; error
  // response shapes stay pinned by the protocol tests.
  if (response.rfind("{\"ok\":true", 0) == 0 && !response.empty() &&
      response.back() == '}') {
    char timing[160];
    std::snprintf(timing, sizeof(timing),
                  ",\"timing\":{\"admission_ms\":%.3f,\"queue_ms\":%.3f,"
                  "\"exec_ms\":%.3f}",
                  admission_ms, queue_ms, exec_ms);
    response.insert(response.size() - 1, timing);
  }
  return response;
}

std::string Server::OpHello(ConnState* state, const JsonValue& req,
                            const std::string& id_raw) {
  std::string tenant = "default";
  if (const std::string* t = GetString(req, "tenant")) tenant = *t;
  if (state->session != nullptr) {
    // Re-hello after an idle reap is the documented recovery path: the
    // expired shell is discarded and a fresh session admitted.
    bool expired = false;
    {
      std::lock_guard<std::mutex> lock(state->session->mu);
      expired = state->session->expired;
    }
    if (expired) {
      registry_.Remove(state->session->id());
      state->session.reset();
    }
  }
  Status ensured = EnsureSession(state, tenant);
  if (!ensured.ok()) {
    return ErrorResponse(ensured, kReasonTenantSessions, id_raw);
  }
  return OkResponseHead(id_raw) + ",\"protocol\":" +
         std::to_string(kProtocolVersion) + ",\"server\":\"gpml\"" +
         ",\"session\":" + std::to_string(state->session->id()) +
         ",\"tenant\":\"" + JsonEscape(state->session->tenant()) + "\"}";
}

std::string Server::OpListGraphs(const std::string& id_raw) {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    names = catalog_.GraphNames();
  }
  std::string out = OkResponseHead(id_raw) + ",\"graphs\":[";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(names[i]) + "\"";
  }
  out += "]}";
  return out;
}

std::string Server::OpLoadGraph(const JsonValue& req,
                                const std::string& id_raw) {
  const std::string* name = GetString(req, "name");
  if (name == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("load_graph needs a string \"name\""),
        kReasonBadRequest, id_raw);
  }
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    if (catalog_.HasGraph(*name)) {
      return OkResponseHead(id_raw) + ",\"graph\":\"" + JsonEscape(*name) +
             "\",\"created\":false}";
    }
  }
  std::string kind = "paper";
  if (const std::string* k = GetString(req, "kind")) kind = *k;
  Result<PropertyGraph> graph = BuildGraphByKind(kind, req);
  if (!graph.ok()) return ErrorResponse(graph.status(), "", id_raw);
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    Status added = catalog_.AddGraph(*name, std::move(*graph));
    if (!added.ok() && added.code() != StatusCode::kAlreadyExists) {
      return ErrorResponse(added, "", id_raw);
    }
    return OkResponseHead(id_raw) + ",\"graph\":\"" + JsonEscape(*name) +
           "\",\"created\":" + (added.ok() ? "true" : "false") + "}";
  }
}

std::string Server::OpUseGraph(ConnState* state, const JsonValue& req,
                               const std::string& id_raw) {
  const std::string* name = GetString(req, "graph");
  if (name == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("use_graph needs a string \"graph\""),
        kReasonBadRequest, id_raw);
  }
  Status ensured = EnsureSession(state, "");
  if (!ensured.ok()) {
    return ErrorResponse(ensured, kReasonTenantSessions, id_raw);
  }
  SessionOp op(state->session);
  if (op.expired()) return SessionExpiredResponse(id_raw);
  Result<std::shared_ptr<const PropertyGraph>> graph = [&] {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    return catalog_.GetGraph(*name);
  }();
  if (!graph.ok()) return ErrorResponse(graph.status(), "", id_raw);
  {
    std::lock_guard<std::mutex> lock(state->session->mu);
    state->session->graph = *graph;
    state->session->graph_name = *name;
  }
  return OkResponseHead(id_raw) + ",\"graph\":\"" + JsonEscape(*name) + "\"}";
}

std::string Server::OpPrepare(ConnState* state, const JsonValue& req,
                              const std::string& id_raw) {
  const std::string* text = GetString(req, "query");
  if (text == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("prepare needs a string \"query\""),
        kReasonBadRequest, id_raw);
  }
  Status ensured = EnsureSession(state, "");
  if (!ensured.ok()) {
    return ErrorResponse(ensured, kReasonTenantSessions, id_raw);
  }
  SessionOp op(state->session);
  if (op.expired()) return SessionExpiredResponse(id_raw);
  std::shared_ptr<const PropertyGraph> graph;
  {
    std::lock_guard<std::mutex> lock(state->session->mu);
    graph = state->session->graph;
  }
  if (graph == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("no graph selected; send use_graph first"),
        kReasonBadRequest, id_raw);
  }
  Engine engine(*graph, options_.engine);
  Result<PreparedQuery> prepared = engine.Prepare(*text);
  if (!prepared.ok()) return ErrorResponse(prepared.status(), "", id_raw);

  std::string params_json = "[";
  std::vector<std::string> names = prepared->signature().Names();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) params_json += ",";
    params_json += "\"" + JsonEscape(names[i]) + "\"";
  }
  params_json += "]";
  bool from_cache = prepared->from_cache();
  bool always_empty = prepared->always_empty();

  int64_t handle = 0;
  {
    std::lock_guard<std::mutex> lock(state->session->mu);
    handle = state->session->next_handle++;
    state->session->statements.emplace(
        handle, PreparedHandle{std::move(*prepared), graph, *text});
  }
  return OkResponseHead(id_raw) + ",\"stmt\":" + std::to_string(handle) +
         ",\"params\":" + params_json +
         ",\"from_cache\":" + (from_cache ? "true" : "false") +
         ",\"always_empty\":" + (always_empty ? "true" : "false") + "}";
}

std::string Server::OpExplain(ConnState* state, const JsonValue& req,
                              const std::string& id_raw) {
  const std::string* text = GetString(req, "query");
  if (text == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("explain needs a string \"query\""),
        kReasonBadRequest, id_raw);
  }
  Status ensured = EnsureSession(state, "");
  if (!ensured.ok()) {
    return ErrorResponse(ensured, kReasonTenantSessions, id_raw);
  }
  SessionOp op(state->session);
  if (op.expired()) return SessionExpiredResponse(id_raw);
  std::shared_ptr<const PropertyGraph> graph;
  {
    std::lock_guard<std::mutex> lock(state->session->mu);
    graph = state->session->graph;
  }
  if (graph == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("no graph selected; send use_graph first"),
        kReasonBadRequest, id_raw);
  }
  Engine engine(*graph, options_.engine);
  Result<std::string> plan = engine.Explain(*text);
  if (!plan.ok()) return ErrorResponse(plan.status(), "", id_raw);
  return OkResponseHead(id_raw) + ",\"plan\":\"" + JsonEscape(*plan) + "\"}";
}

std::string Server::OpExecute(ConnState* state, const JsonValue& req,
                              const std::string& id_raw) {
  if (state->session == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("execute needs a session; send hello first"),
        kReasonBadRequest, id_raw);
  }
  SessionOp op(state->session);
  if (op.expired()) return SessionExpiredResponse(id_raw);
  int64_t stmt = 0;
  if (!GetInt(req, "stmt", &stmt)) {
    return ErrorResponse(
        Status::InvalidArgument("execute needs an integer \"stmt\" handle"),
        kReasonBadRequest, id_raw);
  }
  Params params;
  if (const JsonValue* p = req.Find("params")) {
    Result<Params> decoded = WireJsonToParams(*p);
    if (!decoded.ok()) {
      return ErrorResponse(decoded.status(), kReasonBadRequest, id_raw);
    }
    params = std::move(*decoded);
  }
  std::optional<uint64_t> limit;
  int64_t limit_v = 0;
  if (GetInt(req, "limit", &limit_v)) {
    if (limit_v < 0) {
      return ErrorResponse(
          Status::InvalidArgument("\"limit\" must be non-negative"),
          kReasonBadRequest, id_raw);
    }
    limit = static_cast<uint64_t>(limit_v);
  }

  std::shared_ptr<const PropertyGraph> graph;
  std::optional<PreparedQuery> stored;
  {
    std::lock_guard<std::mutex> lock(state->session->mu);
    auto it = state->session->statements.find(stmt);
    if (it != state->session->statements.end()) {
      graph = it->second.graph;
      stored = it->second.query;  // Cheap copy; shared compiled plan.
    }
  }
  if (!stored.has_value()) {
    return ErrorResponse(Status::NotFound("unknown statement handle " +
                                          std::to_string(stmt)),
                         "", id_raw);
  }

  std::string trace_id;
  if (const std::string* t = GetString(req, "trace_id")) trace_id = *t;
  const std::string& tenant = state->session->tenant();
  return RunPooled("execute", tenant, trace_id, id_raw, [&]() -> std::string {
    obs::Stopwatch watch;
    EngineMetrics metrics;
    PreparedQuery bound =
        stored->WithOptions(ExecutionOptions(tenant, &metrics, trace_id));
    Result<Cursor> cursor = bound.Open(params, limit);
    if (!cursor.ok()) {
      ChargeTenantSteps(tenant, metrics.matcher_steps);
      return ErrorResponse(cursor.status(), "", id_raw);
    }
    std::string rows;
    size_t count = 0;
    RowView view;
    while (true) {
      Result<bool> more = cursor->Next(&view);
      if (!more.ok()) {
        ChargeTenantSteps(tenant, metrics.matcher_steps);
        return ErrorResponse(more.status(), "", id_raw);
      }
      if (!*more) break;
      if (count > 0) rows += ",";
      rows += RowToJson(cursor->context(), *view.row, *graph);
      ++count;
    }
    ChargeTenantSteps(tenant, metrics.matcher_steps);
    queries_total_->Increment();
    query_duration_us_->Observe(watch.ElapsedMicros());
    return OkResponseHead(id_raw) + ",\"rows\":[" + rows +
           "],\"row_count\":" + std::to_string(count) +
           ",\"truncated\":" + (cursor->truncated() ? "true" : "false") +
           ",\"hit_limit\":" + (cursor->hit_limit() ? "true" : "false") + "}";
  });
}

std::string Server::OpOpen(ConnState* state, const JsonValue& req,
                           const std::string& id_raw) {
  if (state->session == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("open needs a session; send hello first"),
        kReasonBadRequest, id_raw);
  }
  SessionOp op(state->session);
  if (op.expired()) return SessionExpiredResponse(id_raw);
  int64_t stmt = 0;
  if (!GetInt(req, "stmt", &stmt)) {
    return ErrorResponse(
        Status::InvalidArgument("open needs an integer \"stmt\" handle"),
        kReasonBadRequest, id_raw);
  }
  Params params;
  if (const JsonValue* p = req.Find("params")) {
    Result<Params> decoded = WireJsonToParams(*p);
    if (!decoded.ok()) {
      return ErrorResponse(decoded.status(), kReasonBadRequest, id_raw);
    }
    params = std::move(*decoded);
  }
  std::optional<uint64_t> limit;
  int64_t limit_v = 0;
  if (GetInt(req, "limit", &limit_v) && limit_v >= 0) {
    limit = static_cast<uint64_t>(limit_v);
  }

  std::shared_ptr<const PropertyGraph> graph;
  std::optional<PreparedQuery> stored;
  {
    std::lock_guard<std::mutex> lock(state->session->mu);
    auto it = state->session->statements.find(stmt);
    if (it != state->session->statements.end()) {
      graph = it->second.graph;
      stored = it->second.query;
    }
  }
  if (!stored.has_value()) {
    return ErrorResponse(Status::NotFound("unknown statement handle " +
                                          std::to_string(stmt)),
                         "", id_raw);
  }

  std::string trace_id;
  if (const std::string* t = GetString(req, "trace_id")) trace_id = *t;
  const std::string& tenant = state->session->tenant();
  return RunPooled("open", tenant, trace_id, id_raw, [&]() -> std::string {
    auto metrics = std::make_unique<EngineMetrics>();
    PreparedQuery bound =
        stored->WithOptions(ExecutionOptions(tenant, metrics.get(), trace_id));
    Result<Cursor> cursor = bound.Open(params, limit);
    if (!cursor.ok()) return ErrorResponse(cursor.status(), "", id_raw);
    queries_total_->Increment();
    CursorHandle handle;
    handle.cursor = std::make_unique<Cursor>(std::move(*cursor));
    handle.metrics = std::move(metrics);
    handle.graph = graph;
    int64_t cursor_id = 0;
    {
      std::lock_guard<std::mutex> lock(state->session->mu);
      cursor_id = state->session->next_handle++;
      state->session->cursors[cursor_id] = std::move(handle);
    }
    return OkResponseHead(id_raw) +
           ",\"cursor\":" + std::to_string(cursor_id) + "}";
  });
}

std::string Server::OpFetch(ConnState* state, const JsonValue& req,
                            const std::string& id_raw) {
  if (state->session == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("fetch needs a session; send hello first"),
        kReasonBadRequest, id_raw);
  }
  SessionOp op(state->session);
  if (op.expired()) return SessionExpiredResponse(id_raw);
  int64_t cursor_id = 0;
  if (!GetInt(req, "cursor", &cursor_id)) {
    return ErrorResponse(
        Status::InvalidArgument("fetch needs an integer \"cursor\" handle"),
        kReasonBadRequest, id_raw);
  }
  int64_t max_rows = GetIntOr(req, "max_rows", 256);
  if (max_rows <= 0) max_rows = 256;
  if (max_rows > 65536) max_rows = 65536;

  CursorHandle* handle = nullptr;
  {
    // Map node pointers are stable; the handle stays valid while this op's
    // in_flight mark keeps the reaper away and the connection (the only
    // other mutator) is busy right here.
    std::lock_guard<std::mutex> lock(state->session->mu);
    auto it = state->session->cursors.find(cursor_id);
    if (it != state->session->cursors.end()) handle = &it->second;
  }
  if (handle == nullptr) {
    return ErrorResponse(Status::NotFound("unknown cursor handle " +
                                          std::to_string(cursor_id)),
                         "", id_raw);
  }

  std::string trace_id;
  if (const std::string* t = GetString(req, "trace_id")) trace_id = *t;
  const std::string& tenant = state->session->tenant();
  return RunPooled("fetch", tenant, trace_id, id_raw, [&]() -> std::string {
    std::string rows;
    size_t count = 0;
    bool done = false;
    RowView view;
    auto charge = [&] {
      uint64_t total = handle->metrics->matcher_steps;
      ChargeTenantSteps(tenant, total - handle->steps_charged);
      handle->steps_charged = total;
    };
    while (count < static_cast<size_t>(max_rows)) {
      Result<bool> more = handle->cursor->Next(&view);
      if (!more.ok()) {
        charge();
        return ErrorResponse(more.status(), "", id_raw);
      }
      if (!*more) {
        done = true;
        break;
      }
      if (count > 0) rows += ",";
      rows += RowToJson(handle->cursor->context(), *view.row, *handle->graph);
      ++count;
    }
    charge();
    return OkResponseHead(id_raw) + ",\"rows\":[" + rows +
           "],\"row_count\":" + std::to_string(count) +
           ",\"done\":" + (done ? "true" : "false") + ",\"truncated\":" +
           (handle->cursor->truncated() ? "true" : "false") +
           ",\"hit_limit\":" + (handle->cursor->hit_limit() ? "true" : "false") +
           "}";
  });
}

std::string Server::OpCloseCursor(ConnState* state, const JsonValue& req,
                                  const std::string& id_raw) {
  if (state->session == nullptr) {
    return ErrorResponse(Status::InvalidArgument(
                             "close_cursor needs a session; send hello first"),
                         kReasonBadRequest, id_raw);
  }
  SessionOp op(state->session);
  if (op.expired()) return SessionExpiredResponse(id_raw);
  int64_t cursor_id = 0;
  if (!GetInt(req, "cursor", &cursor_id)) {
    return ErrorResponse(Status::InvalidArgument(
                             "close_cursor needs an integer \"cursor\""),
                         kReasonBadRequest, id_raw);
  }
  size_t erased = 0;
  {
    std::lock_guard<std::mutex> lock(state->session->mu);
    erased = state->session->cursors.erase(cursor_id);
  }
  if (erased == 0) {
    return ErrorResponse(Status::NotFound("unknown cursor handle " +
                                          std::to_string(cursor_id)),
                         "", id_raw);
  }
  return OkResponseHead(id_raw) + ",\"closed\":true}";
}

std::string Server::OpCloseStatement(ConnState* state, const JsonValue& req,
                                     const std::string& id_raw) {
  if (state->session == nullptr) {
    return ErrorResponse(Status::InvalidArgument(
                             "close_stmt needs a session; send hello first"),
                         kReasonBadRequest, id_raw);
  }
  SessionOp op(state->session);
  if (op.expired()) return SessionExpiredResponse(id_raw);
  int64_t stmt = 0;
  if (!GetInt(req, "stmt", &stmt)) {
    return ErrorResponse(
        Status::InvalidArgument("close_stmt needs an integer \"stmt\""),
        kReasonBadRequest, id_raw);
  }
  size_t erased = 0;
  {
    std::lock_guard<std::mutex> lock(state->session->mu);
    erased = state->session->statements.erase(stmt);
  }
  if (erased == 0) {
    return ErrorResponse(
        Status::NotFound("unknown statement handle " + std::to_string(stmt)),
        "", id_raw);
  }
  return OkResponseHead(id_raw) + ",\"closed\":true}";
}

std::string Server::OpMetrics(const std::string& id_raw) {
  std::string text = obs::RenderPrometheus(obs::AggregateAllRegistries());
  return OkResponseHead(id_raw) + ",\"text\":\"" + JsonEscape(text) + "\"}";
}

std::string Server::OpSlowQueries(const JsonValue& req,
                                  const std::string& id_raw) {
  std::string graph;
  if (const std::string* g = GetString(req, "graph")) graph = *g;
  Result<std::string> records = SlowQueriesJson(graph);
  if (!records.ok()) return ErrorResponse(records.status(), "", id_raw);
  return OkResponseHead(id_raw) + ",\"records\":" + *records + "}";
}

std::string Server::OpQueryStats(const JsonValue& req,
                                 const std::string& id_raw) {
  std::string graph;
  std::string tenant;
  if (const std::string* g = GetString(req, "graph")) graph = *g;
  if (const std::string* t = GetString(req, "tenant")) tenant = *t;
  Result<std::string> entries = QueryStatsJson(graph, tenant);
  if (!entries.ok()) return ErrorResponse(entries.status(), "", id_raw);
  return OkResponseHead(id_raw) + ",\"entries\":" + *entries + "}";
}

std::string Server::OpStats(ConnState* state, const std::string& id_raw) {
  std::string tenant =
      state->session != nullptr ? state->session->tenant() : "default";
  AdmissionController::TenantCounts counts = admission_.CountsFor(tenant);
  return OkResponseHead(id_raw) +
         ",\"sessions\":" + std::to_string(registry_.size()) +
         ",\"queue_depth\":" + std::to_string(pool_->queue_depth()) +
         ",\"active\":" + std::to_string(pool_->active()) + ",\"tenant\":{" +
         "\"name\":\"" + JsonEscape(tenant) + "\"" +
         ",\"sessions\":" + std::to_string(counts.sessions) +
         ",\"in_flight\":" + std::to_string(counts.in_flight) +
         ",\"total_steps\":" + std::to_string(counts.total_steps) + "}}";
}

std::string Server::OpDebugSleep(ConnState* state, const JsonValue& req,
                                 const std::string& id_raw) {
  if (!options_.enable_debug_ops) {
    return ErrorResponse(
        Status::Unimplemented("debug ops are disabled on this server"), "",
        id_raw);
  }
  Status ensured = EnsureSession(state, "");
  if (!ensured.ok()) {
    return ErrorResponse(ensured, kReasonTenantSessions, id_raw);
  }
  SessionOp op(state->session);
  if (op.expired()) return SessionExpiredResponse(id_raw);
  int64_t ms = GetIntOr(req, "ms", 10);
  if (ms < 0) ms = 0;
  if (ms > 10000) ms = 10000;
  std::string trace_id;
  if (const std::string* t = GetString(req, "trace_id")) trace_id = *t;
  const std::string& tenant = state->session->tenant();
  return RunPooled("debug_sleep", tenant, trace_id, id_raw,
                   [&]() -> std::string {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return OkResponseHead(id_raw) + ",\"slept_ms\":" + std::to_string(ms) +
           "}";
  });
}

Result<std::string> Server::SlowQueriesJson(const std::string& graph) {
  std::vector<obs::SlowQueryRecord> records;
  if (!graph.empty()) {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    GPML_ASSIGN_OR_RETURN(records, GraphTableSlowQueries(
                                       catalog_, graph,
                                       options_.engine.slow_log));
  } else {
    const obs::SlowQueryLog* log = options_.engine.slow_log != nullptr
                                       ? options_.engine.slow_log
                                       : &obs::GlobalSlowQueryLog();
    records = log->Snapshot();
  }
  // Graph names are friendlier than identity tokens; resolve what we can.
  std::map<uint64_t, std::string> token_names;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    for (const std::string& name : catalog_.GraphNames()) {
      Result<std::shared_ptr<const PropertyGraph>> g = catalog_.GetGraph(name);
      if (g.ok()) token_names[(*g)->identity_token()] = name;
    }
  }
  std::string out = "[";
  for (size_t i = 0; i < records.size(); ++i) {
    const obs::SlowQueryRecord& record = records[i];
    if (i > 0) out += ",";
    auto name_it = token_names.find(record.graph_token);
    out += "{\"sequence\":" + std::to_string(record.sequence) +
           ",\"graph_token\":" + std::to_string(record.graph_token) +
           ",\"graph\":\"" +
           JsonEscape(name_it != token_names.end() ? name_it->second : "") +
           "\",\"fingerprint\":\"" + JsonEscape(record.fingerprint) +
           "\",\"tenant\":\"" + JsonEscape(record.tenant) +
           "\",\"trace_id\":\"" + JsonEscape(record.trace_id) +
           "\",\"total_ms\":" + FormatMs(record.total_ms) +
           ",\"rows\":" + std::to_string(record.rows) + ",\"explain\":\"" +
           JsonEscape(record.explain) + "\"}";
  }
  out += "]";
  return out;
}

Result<std::string> Server::QueryStatsJson(const std::string& graph,
                                           const std::string& tenant) {
  const obs::QueryStatsStore* store =
      options_.engine.query_stats != nullptr ? options_.engine.query_stats
                                             : &obs::GlobalQueryStats();
  std::vector<obs::QueryStatEntry> entries;
  if (!graph.empty()) {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    GPML_ASSIGN_OR_RETURN(entries,
                          GraphTableQueryStats(catalog_, graph, store));
  } else {
    entries = store->Snapshot();
  }
  if (!tenant.empty()) {
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [&](const obs::QueryStatEntry& e) {
                                   return e.tenant != tenant;
                                 }),
                  entries.end());
  }
  // Heaviest first: the gpml_top ordering, so a plain curl already reads
  // as a leaderboard.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const obs::QueryStatEntry& a,
                      const obs::QueryStatEntry& b) {
                     return a.total_ms > b.total_ms;
                   });
  std::map<uint64_t, std::string> token_names;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    for (const std::string& name : catalog_.GraphNames()) {
      Result<std::shared_ptr<const PropertyGraph>> g = catalog_.GetGraph(name);
      if (g.ok()) token_names[(*g)->identity_token()] = name;
    }
  }
  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const obs::QueryStatEntry& e = entries[i];
    if (i > 0) out += ",";
    auto name_it = token_names.find(e.graph_token);
    uint64_t current_plan = e.plans.empty() ? 0 : e.plans.back().plan_hash;
    double mean_ms =
        e.calls > 0 ? e.total_ms / static_cast<double>(e.calls) : 0;
    out += "{\"fingerprint\":\"" + JsonEscape(e.fingerprint) +
           "\",\"graph_token\":" + std::to_string(e.graph_token) +
           ",\"graph\":\"" +
           JsonEscape(name_it != token_names.end() ? name_it->second : "") +
           "\",\"tenant\":\"" + JsonEscape(e.tenant) +
           "\",\"calls\":" + std::to_string(e.calls) +
           ",\"errors\":" + std::to_string(e.errors) +
           ",\"truncations\":" + std::to_string(e.truncations) +
           ",\"rows\":" + std::to_string(e.rows) +
           ",\"seeds\":" + std::to_string(e.seeds) +
           ",\"steps\":" + std::to_string(e.steps) +
           ",\"cache_hits\":" + std::to_string(e.cache_hits) +
           ",\"cache_misses\":" + std::to_string(e.cache_misses) +
           ",\"batch_calls\":" + std::to_string(e.batch_calls) +
           ",\"total_ms\":" + FormatMs(e.total_ms) +
           ",\"mean_ms\":" + FormatMs(mean_ms) +
           ",\"min_ms\":" + FormatMs(e.min_ms) +
           ",\"max_ms\":" + FormatMs(e.max_ms) + ",\"p50_ms\":" +
           FormatMs(QuantileMsFromBuckets(e.latency_buckets, e.calls, 0.50)) +
           ",\"p95_ms\":" +
           FormatMs(QuantileMsFromBuckets(e.latency_buckets, e.calls, 0.95)) +
           ",\"plan_hash\":" + std::to_string(current_plan) +
           ",\"plan_changed\":" + (e.plan_changed ? "true" : "false") +
           ",\"plan_changes\":" + std::to_string(e.plan_changes) +
           ",\"plans\":[";
    for (size_t p = 0; p < e.plans.size(); ++p) {
      const obs::PlanRecord& plan = e.plans[p];
      if (p > 0) out += ",";
      out += "{\"plan_hash\":" + std::to_string(plan.plan_hash) +
             ",\"calls\":" + std::to_string(plan.calls) +
             ",\"total_ms\":" + FormatMs(plan.total_ms) +
             ",\"min_ms\":" + FormatMs(plan.min_ms) +
             ",\"max_ms\":" + FormatMs(plan.max_ms) +
             ",\"first_seen_us\":" + std::to_string(plan.first_seen_us) +
             ",\"last_seen_us\":" + std::to_string(plan.last_seen_us) + "}";
    }
    out += "]}";
  }
  out += "]";
  return out;
}

EngineOptions Server::ExecutionOptions(const std::string& tenant,
                                       EngineMetrics* metrics,
                                       const std::string& trace_id) const {
  EngineOptions opts = options_.engine;
  opts.metrics = metrics;
  opts.tenant = tenant;
  opts.trace_id = trace_id;
  opts.matcher = admission_.ApplyQuota(tenant, opts.matcher);
  return opts;
}

}  // namespace server
}  // namespace gpml
