#ifndef GPML_PGQ_GRAPH_VIEW_H_
#define GPML_PGQ_GRAPH_VIEW_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "graph/property_graph.h"

namespace gpml {

/// SQL/PGQ defines property graphs as views over a tabular schema (§1,
/// Figure 2): node tables contribute one node per row, edge tables one edge
/// per row with key references into node tables. This module is the
/// CREATE PROPERTY GRAPH machinery in API form.
///
/// Keys render to element names via Value::ToString, so a node with ID 'a1'
/// in table Account becomes node "a1" — exactly the Figure 1/Figure 2
/// correspondence.

struct NodeTableMapping {
  std::string table;
  std::string key_column;
  /// Labels of every node from this table; Figure 2's convention is one
  /// table per label combination (Account, Country, CityCountry, ...).
  std::vector<std::string> labels;
  /// Columns exposed as properties; empty = every column except the key.
  std::vector<std::string> property_columns;
};

struct EdgeTableMapping {
  std::string table;
  std::string key_column;
  std::string source_column;  // References a node key.
  std::string target_column;  // References a node key.
  bool directed = true;       // hasPhone in Figure 1 is undirected.
  std::vector<std::string> labels;
  std::vector<std::string> property_columns;
};

struct GraphViewDef {
  std::string name;
  std::vector<NodeTableMapping> nodes;
  std::vector<EdgeTableMapping> edges;
};

/// Materializes the view over the catalog's base tables into a
/// PropertyGraph. Key collisions across node tables and dangling edge
/// references are errors.
Result<PropertyGraph> MaterializeGraphView(const Catalog& catalog,
                                           const GraphViewDef& def);

/// Convenience: materializes and registers the graph under def.name.
Status CreatePropertyGraph(Catalog& catalog, const GraphViewDef& def);

/// Builds the Figure 2 tabular schema (Account, Transfer, Country,
/// CityCountry, Phone, IP, isLocatedIn, hasPhone, signInWithIP tables
/// populated with the Figure 1 data) into `catalog`, and returns the
/// GraphViewDef that maps it back to the Figure 1 graph.
Result<GraphViewDef> InstallPaperTables(Catalog& catalog);

}  // namespace gpml

#endif  // GPML_PGQ_GRAPH_VIEW_H_
