#include <gtest/gtest.h>

#include "eval/restrictor.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::Paths;
using testing_util::Rows;

// E13: restrictors (Figure 7, §5.1).

TEST(RestrictorTest, PaperTrailDaveToAretha) {
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(
      Paths(g,
            "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
            "(b WHERE b.owner='Aretha')"),
      (std::vector<std::string>{
          "path(a6,t5,a3,t2,a2)",
          "path(a6,t5,a3,t7,a5,t8,a1,t1,a3,t2,a2)",
          "path(a6,t6,a5,t8,a1,t1,a3,t2,a2)"}))
      << "exactly the three §5.1 trails";
}

TEST(RestrictorTest, PaperAcyclicDaveToAretha) {
  // §5.1: the 10-edge trail repeats node a3, so ACYCLIC drops it.
  PropertyGraph g = BuildPaperGraph();
  EXPECT_EQ(
      Paths(g,
            "MATCH ACYCLIC p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
            "(b WHERE b.owner='Aretha')"),
      (std::vector<std::string>{"path(a6,t5,a3,t2,a2)",
                                "path(a6,t6,a5,t8,a1,t1,a3,t2,a2)"}));
}

TEST(RestrictorTest, SimpleAllowsClosingCycle) {
  PropertyGraph g = BuildPaperGraph();
  // Transfer cycle a4->a6->a3->a2->a4: SIMPLE (first=last), not ACYCLIC.
  std::vector<std::string> simple = Paths(
      g, "MATCH SIMPLE p = (a WHERE a.owner='Jay')-[t:Transfer]->+(a)");
  EXPECT_EQ(simple,
            (std::vector<std::string>{
                "path(a4,t4,a6,t5,a3,t2,a2,t3,a4)",
                "path(a4,t4,a6,t6,a5,t8,a1,t1,a3,t2,a2,t3,a4)"}))
      << "both simple cycles through Jay's account";
  std::vector<std::string> acyclic = Paths(
      g, "MATCH ACYCLIC p = (a WHERE a.owner='Jay')-[t:Transfer]->+(a)");
  EXPECT_TRUE(acyclic.empty());
}

TEST(RestrictorTest, TrailAllowsNodeRepeats) {
  PropertyGraph g = BuildPaperGraph();
  // The 10-edge Dave->Aretha trail repeats a3 but no edge.
  std::vector<std::string> rows =
      Paths(g,
            "MATCH TRAIL p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
            "(b WHERE b.owner='Aretha')");
  EXPECT_NE(std::find(rows.begin(), rows.end(),
                      "path(a6,t5,a3,t7,a5,t8,a1,t1,a3,t2,a2)"),
            rows.end());
}

TEST(RestrictorTest, SelectorKeepsResultWhereRestrictorEmpties) {
  // §5.1's closing observation, on the Charles→Mike→Scott query (the paper
  // names the first owner "Natalia"; Figure 1 has no such account — the
  // answer path pins a5 = Charles, see EXPERIMENTS.md).
  PropertyGraph g = BuildPaperGraph();
  const std::string body =
      "p = (x:Account WHERE x.owner='Charles')->{1,10}"
      "(q:Account WHERE q.owner='Mike')->{1,10}"
      "(r:Account WHERE r.owner='Scott')";
  // Unrestricted: the paper's solution path exists.
  std::vector<std::string> all = Paths(g, "MATCH " + body);
  EXPECT_NE(std::find(all.begin(), all.end(),
                      "path(a5,t8,a1,t1,a3,t7,a5,t8,a1)"),
            all.end());
  // ALL SHORTEST keeps at least one result...
  EXPECT_FALSE(Paths(g, "MATCH ALL SHORTEST " + body).empty());
  // ...while TRAIL has none (every solution repeats t8).
  EXPECT_TRUE(Paths(g, "MATCH TRAIL " + body).empty());
}

TEST(RestrictorTest, WholePathRestrictorChecks) {
  // SatisfiesRestrictor agrees with Path::IsTrail/IsAcyclic/IsSimple.
  PropertyGraph g = MakeCycleGraph(3);
  Path cycle(0);
  cycle.Append(0, Traversal::kForward, 1);
  cycle.Append(1, Traversal::kForward, 2);
  cycle.Append(2, Traversal::kForward, 0);
  EXPECT_TRUE(SatisfiesRestrictor(cycle, Restrictor::kNone));
  EXPECT_TRUE(SatisfiesRestrictor(cycle, Restrictor::kTrail));
  EXPECT_FALSE(SatisfiesRestrictor(cycle, Restrictor::kAcyclic));
  EXPECT_TRUE(SatisfiesRestrictor(cycle, Restrictor::kSimple));
}

TEST(RestrictorTest, TrailEnumerationBoundedByEdges) {
  // On the complete graph K4 every TRAIL has at most 12 edges; the search
  // terminates and every result is a genuine trail.
  PropertyGraph g = MakeCompleteGraph(4);
  Engine engine(g);
  Result<MatchOutput> out = engine.Match(
      "MATCH TRAIL p = (a WHERE a.owner='u0')-[:Transfer]->*"
      "(b WHERE b.owner='u1')");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(out->rows.size(), 0u);
  for (const ResultRow& row : out->rows) {
    EXPECT_TRUE(row.bindings[0]->path.IsTrail());
  }
}

TEST(RestrictorTest, AcyclicEnumerationBoundedByNodes) {
  PropertyGraph g = MakeCompleteGraph(5);
  Engine engine(g);
  Result<MatchOutput> out = engine.Match(
      "MATCH ACYCLIC p = (a WHERE a.owner='u0')-[:Transfer]->*"
      "(b WHERE b.owner='u1')");
  ASSERT_TRUE(out.ok()) << out.status();
  // Acyclic u0->...->u1 paths in K5: orderings of intermediate nodes:
  // 1 + 3 + 3*2 + 3*2*1 = 16.
  EXPECT_EQ(out->rows.size(), 16u);
  for (const ResultRow& row : out->rows) {
    EXPECT_TRUE(row.bindings[0]->path.IsAcyclic());
  }
}

TEST(RestrictorTest, ParenthesizedRestrictorScopesSegmentOnly) {
  // TRAIL on the middle segment only: the outer edges may repeat an edge
  // used outside the scope.
  PropertyGraph g = MakeCycleGraph(3);
  std::vector<std::string> rows = Rows(
      g, "MATCH (a WHERE a.owner='u0') [TRAIL ()-[:Transfer]->*()] "
         "(b WHERE b.owner='u2')",
      "a, b");
  EXPECT_EQ(rows, (std::vector<std::string>{"v0|v2"}));
}

TEST(RestrictorTest, SimpleInteriorRevisitForbidden) {
  // v0->v1->v2->v0->... : SIMPLE forbids continuing after closing.
  PropertyGraph g = MakeCycleGraph(3);
  std::vector<std::string> rows = Paths(
      g, "MATCH SIMPLE p = (a WHERE a.owner='u0')-[:Transfer]->+(b)");
  EXPECT_EQ(rows, (std::vector<std::string>{
                      "path(v0,t0,v1)", "path(v0,t0,v1,t1,v2)",
                      "path(v0,t0,v1,t1,v2,t2,v0)"}));
}

}  // namespace
}  // namespace gpml
