#ifndef GPML_GRAPH_GRAPH_BUILDER_H_
#define GPML_GRAPH_GRAPH_BUILDER_H_

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/property_graph.h"

namespace gpml {

/// Convenience alias for inline property lists in builder calls.
using PropertyList = std::vector<std::pair<std::string, Value>>;

/// Constructs PropertyGraph instances. Element names must be unique per kind
/// (they serve as external identifiers, like a1/t5 in the paper); edges refer
/// to endpoint nodes by name, so nodes must be added first.
///
/// Usage:
///   GraphBuilder b;
///   b.AddNode("a1", {"Account"}, {{"owner", Value::String("Scott")}});
///   b.AddDirectedEdge("t1", "a1", "a3", {"Transfer"},
///                     {{"amount", Value::Int(8'000'000)}});
///   GPML_ASSIGN_OR_RETURN(PropertyGraph g, std::move(b).Build());
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds a node; returns its dense id. Duplicate names surface at Build().
  NodeId AddNode(std::string name, std::vector<std::string> labels = {},
                 PropertyList properties = {});

  /// Adds a directed edge from `from` to `to` (by node name).
  void AddDirectedEdge(std::string name, const std::string& from,
                       const std::string& to,
                       std::vector<std::string> labels = {},
                       PropertyList properties = {});

  /// Adds an undirected edge between `a` and `b` (by node name).
  void AddUndirectedEdge(std::string name, const std::string& a,
                         const std::string& b,
                         std::vector<std::string> labels = {},
                         PropertyList properties = {});

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Validates names/endpoints and produces the immutable graph.
  Result<PropertyGraph> Build() &&;

 private:
  struct PendingEdge {
    EdgeData data;
    std::string from;
    std::string to;
  };

  std::vector<NodeData> nodes_;
  std::vector<PendingEdge> edges_;
};

}  // namespace gpml

#endif  // GPML_GRAPH_GRAPH_BUILDER_H_
