#include "baseline/crpq.h"

#include <gtest/gtest.h>

#include "baseline/rpq_nfa.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"

namespace gpml {
namespace baseline {
namespace {

// E4 (baseline side): the classic CRPQ/RPQ machinery of §3/§8.

TEST(RegexTest, ParseAndPrint) {
  Result<RegexPtr> r = ParseRegex("Transfer+");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->kind, Regex::Kind::kPlus);
  r = ParseRegex("a/b | ^c*");
  ASSERT_TRUE(r.ok()) << r.status();
  r = ParseRegex("(a|b)/c?");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(ParseRegex("").ok());
  EXPECT_FALSE(ParseRegex("(a").ok());
  EXPECT_FALSE(ParseRegex("a$").ok());
}

TEST(RpqNfaTest, ReachabilityOnChain) {
  PropertyGraph g = MakeChainGraph(4);
  Result<RegexPtr> r = ParseRegex("Transfer+");
  RpqNfa nfa = BuildNfa(**r);
  std::vector<NodeId> from0 = EvalReachableFrom(g, nfa, 0);
  EXPECT_EQ(from0, (std::vector<NodeId>{1, 2, 3}));
  std::vector<NodeId> from3 = EvalReachableFrom(g, nfa, 3);
  EXPECT_TRUE(from3.empty());
}

TEST(RpqNfaTest, StarIncludesSelf) {
  PropertyGraph g = MakeChainGraph(3);
  Result<RegexPtr> r = ParseRegex("Transfer*");
  RpqNfa nfa = BuildNfa(**r);
  EXPECT_EQ(EvalReachableFrom(g, nfa, 1), (std::vector<NodeId>{1, 2}));
}

TEST(RpqNfaTest, InverseSteps) {
  PropertyGraph g = MakeChainGraph(3);
  Result<RegexPtr> r = ParseRegex("^Transfer");
  RpqNfa nfa = BuildNfa(**r);
  EXPECT_EQ(EvalReachableFrom(g, nfa, 2), (std::vector<NodeId>{1}));
}

TEST(RpqNfaTest, UnionAndConcat) {
  PropertyGraph g = BuildPaperGraph();
  // Account --isLocatedIn--> place, or account --hasPhone--> phone.
  Result<RegexPtr> r = ParseRegex("isLocatedIn|hasPhone");
  RpqNfa nfa = BuildNfa(**r);
  NodeId a1 = g.FindNode("a1");
  std::vector<NodeId> reached = EvalReachableFrom(g, nfa, a1);
  EXPECT_EQ(reached.size(), 2u);  // c1 and p1.
}

TEST(RpqNfaTest, ReachabilityAllPairsCountsEndpointSemantics) {
  // §3: SPARQL-style — pairs only, no path multiplicity. On a cycle,
  // Transfer+ connects every ordered pair.
  PropertyGraph g = MakeCycleGraph(4);
  Result<RegexPtr> r = ParseRegex("Transfer+");
  RpqNfa nfa = BuildNfa(**r);
  EXPECT_EQ(EvalReachability(g, nfa).size(), 16u);
}

TEST(CrpqTest, Figure4AsCrpq) {
  PropertyGraph g = BuildPaperGraph();
  CrpqQuery q;
  q.atoms = {{"x", "isLocatedIn", "g"},
             {"y", "isLocatedIn", "g"},
             {"x", "Transfer+", "y"}};
  q.filters = {{"x", "Account", "isBlocked", Value::String("no")},
               {"y", "Account", "isBlocked", Value::String("yes")},
               {"g", "", "name", Value::String("Ankh-Morpork")}};
  q.output_vars = {"x", "y"};
  Result<Table> t = EvalCrpq(g, q);
  ASSERT_TRUE(t.ok()) << t.status();
  Table table = *t;
  table.SortRows();
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(*table.At(0, "x"), Value::String("a2"));  // Aretha.
  EXPECT_EQ(*table.At(0, "y"), Value::String("a4"));  // Jay.
  EXPECT_EQ(*table.At(1, "x"), Value::String("a6"));  // Dave.
}

TEST(CrpqTest, SharedVariableJoin) {
  PropertyGraph g = BuildPaperGraph();
  CrpqQuery q;
  // x transfers to y, y transfers to z: composition via join on y.
  q.atoms = {{"x", "Transfer", "y"}, {"y", "Transfer", "z"}};
  q.output_vars = {"x", "z"};
  Result<Table> t = EvalCrpq(g, q);
  ASSERT_TRUE(t.ok());
  // Same pairs as Transfer/Transfer composition.
  CrpqQuery q2;
  q2.atoms = {{"x", "Transfer/Transfer", "z"}};
  q2.output_vars = {"x", "z"};
  Result<Table> t2 = EvalCrpq(g, q2);
  ASSERT_TRUE(t2.ok());
  Table a = *t;
  Table b = *t2;
  a.SortRows();
  b.SortRows();
  EXPECT_EQ(a.rows(), b.rows());
}

TEST(CrpqTest, OutputVariableMustBeBound) {
  PropertyGraph g = BuildPaperGraph();
  CrpqQuery q;
  q.atoms = {{"x", "Transfer", "y"}};
  q.output_vars = {"ghost"};
  EXPECT_EQ(EvalCrpq(g, q).status().code(), StatusCode::kSemanticError);
}

TEST(CrpqTest, SameVariableBothEndpoints) {
  PropertyGraph g = BuildPaperGraph();
  CrpqQuery q;
  // Nodes on a Transfer cycle of length exactly 4.
  q.atoms = {{"x", "Transfer/Transfer/Transfer/Transfer", "x"}};
  q.output_vars = {"x"};
  Result<Table> t = EvalCrpq(g, q);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 4u);  // a2, a3, a4, a6.
}

}  // namespace
}  // namespace baseline
}  // namespace gpml
