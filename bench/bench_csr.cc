// Interned-CSR storage contracts on the fraud-300 workloads, run under
// ctest as a regression gate (see docs/storage.md):
//
//  1. Expansion throughput (enforced only in optimized, unsanitized
//     builds): on the expansion-heavy fraud-300 graph (300 accounts, 100
//     transfers per account — high-degree nodes with mixed edge labels)
//     the CSR path must deliver >= 3x matcher throughput, geometric mean
//     over the expansion workloads. Throughput is legacy-equivalent
//     matcher steps per second: the instruction count the use_csr=false
//     oracle executes for the workload, divided by each configuration's
//     wall time — both sides do the same logical work, the CSR side just
//     never visits the records the label filter would reject.
//  2. Byte-identity (always enforced): identical rows in identical order
//     across {csr on/off} x {threads 1, 8} within each planner setting,
//     and an identical row multiset across planner on/off (a mirrored or
//     reordered plan may emit the same matches in a different order).
//  3. Index-backed seeding (always enforced): on the equality-predicate
//     workload, (label, prop) = value index seeding strictly reduces
//     seeded starts vs label-scan seeding, rows stay identical, and
//     EXPLAIN surfaces the choice as source=index:<label>.<prop>.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eval/engine.h"
#include "graph/generator.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GPML_BENCH_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GPML_BENCH_SANITIZED 1
#endif
#endif

namespace gpml {
namespace {

/// The expansion-heavy fraud-300 configuration: every Account node has
/// ~200 Transfer adjacencies next to a handful of isLocatedIn/hasPhone/
/// signInWithIP records, so expansion along a selective edge label is
/// dominated by label rejects on the legacy path.
PropertyGraph MakeExpansionGraph() {
  FraudGraphOptions options;
  options.num_accounts = 300;
  options.num_cities = 3;
  options.transfers_per_account = 100;
  return MakeFraudGraph(options);
}

/// The regular fraud-300 graph (bench_parallel's configuration) for the
/// byte-identity matrix and the seeding gate.
PropertyGraph MakeMatrixGraph() {
  FraudGraphOptions options;
  options.num_accounts = 300;
  options.num_cities = 3;
  return MakeFraudGraph(options);
}

struct Workload {
  const char* name;
  std::string query;
};

const Workload kExpansionWorkloads[] = {
    {"paper_sec2_shared_phone",
     "MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->"
     "(d:Account)~[:hasPhone]~(p)"},
    {"located_in_ankh_morpork",
     "MATCH (a:Account)-[:isLocatedIn]->(c:City WHERE "
     "c.name='Ankh-Morpork')"},
    {"city_account_blocked_phone",
     "MATCH (c:City)<-[:isLocatedIn]-(a:Account)~[:hasPhone]~"
     "(p:Phone WHERE p.isBlocked='yes')"},
};

const Workload kMatrixWorkloads[] = {
    {"paper_sec2_shared_phone",
     "MATCH (p:Phone)~[:hasPhone]~(s:Account)-[t:Transfer]->"
     "(d:Account)~[:hasPhone]~(p)"},
    {"fig4_fraud_any",
     "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
     "(g:City WHERE g.name='Ankh-Morpork')<-[:isLocatedIn]-"
     "(y:Account WHERE y.isBlocked='yes'), "
     "ANY (x)-[:Transfer]->+(y)"},
    {"trail_transfers",
     "MATCH TRAIL (a:Account WHERE a.owner='u0')-[:Transfer]->{1,3}"
     "(b:Account WHERE b.isBlocked='yes')"},
};

const Workload kSeedingWorkload = {
    "blocked_to_unblocked_transfer",
    "MATCH (x:Account WHERE x.isBlocked='yes')-[:Transfer]->"
    "(y:Account WHERE y.isBlocked='no')"};

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<std::string> CanonRows(const MatchOutput& out,
                                   const PropertyGraph& g) {
  std::vector<std::string> rows;
  rows.reserve(out.rows.size());
  for (const ResultRow& row : out.rows) {
    std::string s;
    for (const auto& pb : row.bindings) {
      s += pb->ToString(g, *out.vars);
      s += " | ";
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

struct Measurement {
  std::vector<std::string> rows;
  EngineMetrics metrics;
  double millis = 0;
};

Measurement Measure(const PropertyGraph& g, const std::string& query,
                    const EngineOptions& base, bool* ok, int reps = 5) {
  Measurement m;
  EngineOptions options = base;
  options.metrics = &m.metrics;
  Engine engine(g, options);
  Result<MatchOutput> warm = engine.Match(query);  // Plan cache + stats.
  if (!warm.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n", query.c_str(),
                 warm.status().ToString().c_str());
    *ok = false;
    return m;
  }
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    Result<MatchOutput> out = engine.Match(query);
    double ms = MillisSince(start);
    if (!out.ok()) {
      *ok = false;
      return m;
    }
    if (rep == 0 || ms < m.millis) m.millis = ms;
    if (rep == 0) m.rows = CanonRows(*out, g);
  }
  return m;
}

bool ThroughputGateActive() {
#ifdef GPML_BENCH_SANITIZED
  std::printf("throughput gate: SKIPPED (sanitizer build distorts timings)\n");
  return false;
#elif !defined(NDEBUG)
  std::printf("throughput gate: SKIPPED (unoptimized build)\n");
  return false;
#else
  return true;
#endif
}

int RunBench() {
  bool ok = true;
  bench::JsonReport report("csr");

  // --- 1. expansion throughput --------------------------------------------
  {
    PropertyGraph g = MakeExpansionGraph();
    std::printf("expansion graph: %s\n", g.Summary().c_str());
    const bool enforce = ThroughputGateActive();
    double log_ratio_sum = 0;
    size_t measured = 0;

    std::printf("%-28s | %10s %10s | %12s %12s | %7s\n", "workload", "ms:off",
                "ms:on", "steps/s:off", "steps/s:on", "ratio");
    for (const Workload& w : kExpansionWorkloads) {
      EngineOptions base;
      base.use_planner = false;  // Pure matcher comparison.
      base.num_threads = 1;
      base.use_csr = false;
      Measurement off = Measure(g, w.query, base, &ok);
      base.use_csr = true;
      Measurement on = Measure(g, w.query, base, &ok);
      if (!ok) break;

      // Legacy-equivalent steps per second: same logical work (the oracle's
      // instruction count), each side's own wall time.
      double work = static_cast<double>(off.metrics.matcher_steps);
      double thr_off = work / (off.millis / 1e3);
      double thr_on = work / (on.millis / 1e3);
      double ratio = on.millis > 0 ? off.millis / on.millis : 0;
      std::printf("%-28s | %10.3f %10.3f | %12.3g %12.3g | %6.2fx\n", w.name,
                  off.millis, on.millis, thr_off, thr_on, ratio);
      report.Add(std::string(w.name) + ":csr=off", off.millis,
                 off.metrics.seeded_nodes, off.metrics.matcher_steps,
                 off.rows.size());
      report.Add(std::string(w.name) + ":csr=on", on.millis,
                 on.metrics.seeded_nodes, on.metrics.matcher_steps,
                 on.rows.size(), {{"throughput_ratio", ratio}});

      if (off.rows != on.rows) {
        std::fprintf(stderr, "FAIL %s: csr changed rows (%zu vs %zu)\n",
                     w.name, on.rows.size(), off.rows.size());
        ok = false;
      }
      if (on.metrics.matcher_steps >= off.metrics.matcher_steps) {
        std::fprintf(stderr,
                     "FAIL %s: csr did not reduce considered records "
                     "(%zu vs %zu)\n",
                     w.name, on.metrics.matcher_steps,
                     off.metrics.matcher_steps);
        ok = false;
      }
      if (enforce && ratio < 1.5) {
        std::fprintf(stderr, "FAIL %s: csr throughput ratio %.2fx < 1.5x\n",
                     w.name, ratio);
        ok = false;
      }
      log_ratio_sum += std::log(std::max(ratio, 1e-9));
      ++measured;
    }
    if (ok && measured > 0) {
      double geomean = std::exp(log_ratio_sum / static_cast<double>(measured));
      std::printf("expansion throughput: %.2fx geometric mean (gate: 3x)\n",
                  geomean);
      if (enforce && geomean < 3.0) {
        std::fprintf(stderr,
                     "FAIL expansion throughput %.2fx < 3x geometric mean\n",
                     geomean);
        ok = false;
      }
    }
  }

  // --- 2. byte-identity matrix --------------------------------------------
  // Within each planner setting every {csr, threads} combination must be
  // byte-identical (same rows, same order); across planner on/off the row
  // multiset must be identical — a mirrored or reordered plan may emit the
  // same matches in a different order (the planner's contract since the
  // PR 1 differential tests).
  {
    PropertyGraph g = MakeMatrixGraph();
    for (const Workload& w : kMatrixWorkloads) {
      std::vector<std::string> baseline[2];
      bool have_baseline[2] = {false, false};
      for (bool csr : {true, false}) {
        for (size_t threads : {size_t{1}, size_t{8}}) {
          for (bool planner : {true, false}) {
            EngineOptions base;
            base.use_csr = csr;
            base.num_threads = threads;
            base.use_planner = planner;
            // Force real sharding even on short seed lists.
            base.matcher.min_seeds_per_shard = 1;
            Measurement m = Measure(g, w.query, base, &ok, /*reps=*/1);
            if (!ok) break;
            if (!have_baseline[planner]) {
              baseline[planner] = m.rows;
              have_baseline[planner] = true;
            } else if (m.rows != baseline[planner]) {
              std::fprintf(stderr,
                           "FAIL %s: rows differ at csr=%d threads=%zu "
                           "planner=%d (%zu vs %zu rows)\n",
                           w.name, csr ? 1 : 0, threads, planner ? 1 : 0,
                           m.rows.size(), baseline[planner].size());
              ok = false;
            }
          }
        }
      }
      if (have_baseline[0] && have_baseline[1]) {
        std::vector<std::string> on = baseline[1];
        std::vector<std::string> off = baseline[0];
        std::sort(on.begin(), on.end());
        std::sort(off.begin(), off.end());
        if (on != off) {
          std::fprintf(stderr,
                       "FAIL %s: planner changed the row multiset "
                       "(%zu vs %zu rows)\n",
                       w.name, on.size(), off.size());
          ok = false;
        }
        std::printf(
            "byte-identity %-28s: %4zu rows identical over "
            "{csr on/off} x {threads 1,8}, multiset-stable over planner\n",
            w.name, baseline[0].size());
      }
    }
  }

  // --- 3. index-backed seeding --------------------------------------------
  {
    PropertyGraph g = MakeMatrixGraph();
    EngineOptions base;
    base.num_threads = 1;
    base.use_seed_index = false;
    Measurement scan = Measure(g, kSeedingWorkload.query, base, &ok);
    base.use_seed_index = true;
    Measurement indexed = Measure(g, kSeedingWorkload.query, base, &ok);
    if (ok) {
      std::printf(
          "seeding %-28s: label-scan %zu seeds %.3fms, index %zu seeds "
          "%.3fms\n",
          kSeedingWorkload.name, scan.metrics.seeded_nodes, scan.millis,
          indexed.metrics.seeded_nodes, indexed.millis);
      report.Add(std::string(kSeedingWorkload.name) + ":seed=label",
                 scan.millis, scan.metrics.seeded_nodes,
                 scan.metrics.matcher_steps, scan.rows.size());
      report.Add(std::string(kSeedingWorkload.name) + ":seed=index",
                 indexed.millis, indexed.metrics.seeded_nodes,
                 indexed.metrics.matcher_steps, indexed.rows.size());
      if (indexed.rows != scan.rows) {
        std::fprintf(stderr, "FAIL seeding: index seeding changed rows\n");
        ok = false;
      }
      if (indexed.metrics.seeded_nodes >= scan.metrics.seeded_nodes) {
        std::fprintf(stderr,
                     "FAIL seeding: index did not reduce seeds (%zu vs "
                     "%zu)\n",
                     indexed.metrics.seeded_nodes, scan.metrics.seeded_nodes);
        ok = false;
      }
      if (indexed.metrics.matcher_steps >= scan.metrics.matcher_steps) {
        std::fprintf(stderr,
                     "FAIL seeding: index did not reduce matcher steps "
                     "(%zu vs %zu)\n",
                     indexed.metrics.matcher_steps,
                     scan.metrics.matcher_steps);
        ok = false;
      }
      if (indexed.metrics.index_seeded_decls == 0) {
        std::fprintf(stderr, "FAIL seeding: no declaration used the index\n");
        ok = false;
      }

      Engine engine(g);
      Result<std::string> explain = engine.Explain(kSeedingWorkload.query);
      if (!explain.ok() ||
          explain->find("source=index:Account.isBlocked") ==
              std::string::npos) {
        std::fprintf(stderr,
                     "FAIL seeding: EXPLAIN does not show "
                     "source=index:Account.isBlocked:\n%s\n",
                     explain.ok() ? explain->c_str()
                                  : explain.status().ToString().c_str());
        ok = false;
      } else {
        std::printf("seed: index=Account.isBlocked (EXPLAIN verified)\n");
      }
    }
  }

  report.Write();
  std::printf(ok ? "csr contract holds: faster expansion, identical rows, "
                   "index-backed seeding\n"
                 : "csr contract VIOLATED (see stderr)\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gpml

int main() { return gpml::RunBench(); }
