#include "eval/expr_eval.h"

#include <map>

#include <gtest/gtest.h>

#include "graph/sample_graph.h"
#include "parser/parser.h"
#include "semantics/normalize.h"

namespace gpml {
namespace {

/// A hand-rolled scope for unit-testing expression evaluation.
class FakeScope : public EvalScope {
 public:
  std::map<int, ElementRef> singletons;
  std::map<int, std::vector<ElementRef>> groups;
  std::map<int, const Path*> paths;

  std::optional<ElementRef> LookupSingleton(int var) const override {
    auto it = singletons.find(var);
    if (it == singletons.end()) return std::nullopt;
    return it->second;
  }
  std::vector<ElementRef> CollectGroup(int var) const override {
    auto it = groups.find(var);
    return it == groups.end() ? std::vector<ElementRef>{} : it->second;
  }
  const Path* LookupPath(int var) const override {
    auto it = paths.find(var);
    return it == paths.end() ? nullptr : it->second;
  }
};

class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest() : g_(BuildPaperGraph()) {
    // Variables: x (node), e (edge), t (group edge), p (path).
    Result<GraphPattern> parsed = ParseGraphPattern(
        "MATCH p = (x)-[e]->() [()-[t]->()]{1,3} ()");
    Result<GraphPattern> norm = Normalize(*parsed);
    Result<Analysis> analysis = Analyze(*norm);
    vars_ = std::make_unique<VarTable>(*analysis);
    scope_.singletons[vars_->Find("x")] =
        ElementRef::Node(g_.FindNode("a4"));
    scope_.singletons[vars_->Find("e")] =
        ElementRef::Edge(g_.FindEdge("t4"));
    scope_.groups[vars_->Find("t")] = {
        ElementRef::Edge(g_.FindEdge("t1")),
        ElementRef::Edge(g_.FindEdge("t2")),
        ElementRef::Edge(g_.FindEdge("t6"))};
  }

  Value Eval(const std::string& text) {
    Result<ExprPtr> e = ParseExpression(text);
    EXPECT_TRUE(e.ok()) << e.status();
    Result<EvalValue> v = EvalExpr(**e, g_, *vars_, scope_);
    EXPECT_TRUE(v.ok()) << text << " -> " << v.status();
    return ToOutputValue(*v, g_);
  }

  TriBool Pred(const std::string& text) {
    Result<ExprPtr> e = ParseExpression(text);
    EXPECT_TRUE(e.ok()) << e.status();
    Result<TriBool> v = EvalPredicate(**e, g_, *vars_, scope_);
    EXPECT_TRUE(v.ok()) << text << " -> " << v.status();
    return v.ok() ? *v : TriBool::kUnknown;
  }

  PropertyGraph g_;
  std::unique_ptr<VarTable> vars_;
  FakeScope scope_;
};

TEST_F(ExprEvalTest, Literals) {
  EXPECT_EQ(Eval("42"), Value::Int(42));
  EXPECT_EQ(Eval("5M"), Value::Int(5'000'000));
  EXPECT_EQ(Eval("'hi'"), Value::String("hi"));
  EXPECT_EQ(Eval("TRUE"), Value::Bool(true));
  EXPECT_TRUE(Eval("NULL").is_null());
}

TEST_F(ExprEvalTest, PropertyAccess) {
  EXPECT_EQ(Eval("x.owner"), Value::String("Jay"));
  EXPECT_EQ(Eval("e.amount"), Value::Int(10'000'000));
  EXPECT_TRUE(Eval("x.nonexistent").is_null());
}

TEST_F(ExprEvalTest, UnboundVariableIsNull) {
  EXPECT_TRUE(Eval("ghost").is_null());
  EXPECT_TRUE(Eval("ghost.prop").is_null());
  EXPECT_EQ(Pred("ghost.prop = 1"), TriBool::kUnknown);
}

TEST_F(ExprEvalTest, Comparisons) {
  EXPECT_EQ(Pred("x.owner = 'Jay'"), TriBool::kTrue);
  EXPECT_EQ(Pred("x.owner <> 'Jay'"), TriBool::kFalse);
  EXPECT_EQ(Pred("e.amount > 5M"), TriBool::kTrue);
  EXPECT_EQ(Pred("e.amount <= 5M"), TriBool::kFalse);
  EXPECT_EQ(Pred("x.missing = 1"), TriBool::kUnknown);
}

TEST_F(ExprEvalTest, BooleanConnectives) {
  EXPECT_EQ(Pred("TRUE AND FALSE"), TriBool::kFalse);
  EXPECT_EQ(Pred("TRUE OR x.missing = 1"), TriBool::kTrue);
  EXPECT_EQ(Pred("FALSE OR x.missing = 1"), TriBool::kUnknown);
  EXPECT_EQ(Pred("NOT (x.missing = 1)"), TriBool::kUnknown);
  EXPECT_EQ(Pred("NOT FALSE"), TriBool::kTrue);
}

TEST_F(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("e.amount / 2 + 1"), Value::Double(5'000'001));
  EXPECT_EQ(Eval("2 * 3 - 4"), Value::Int(2));
  EXPECT_EQ(Eval("-e.amount"), Value::Int(-10'000'000));
}

TEST_F(ExprEvalTest, IsNull) {
  EXPECT_EQ(Pred("x.missing IS NULL"), TriBool::kTrue);
  EXPECT_EQ(Pred("x.owner IS NULL"), TriBool::kFalse);
  EXPECT_EQ(Pred("x.owner IS NOT NULL"), TriBool::kTrue);
  EXPECT_EQ(Pred("ghost IS NULL"), TriBool::kTrue);
}

TEST_F(ExprEvalTest, AggregatesOverGroups) {
  // t group: t1 (8M), t2 (10M), t6 (4M).
  EXPECT_EQ(Eval("COUNT(t)"), Value::Int(3));
  EXPECT_EQ(Eval("COUNT(t.*)"), Value::Int(3));
  EXPECT_EQ(Eval("SUM(t.amount)"), Value::Int(22'000'000));
  EXPECT_EQ(Eval("MIN(t.amount)"), Value::Int(4'000'000));
  EXPECT_EQ(Eval("MAX(t.amount)"), Value::Int(10'000'000));
  EXPECT_EQ(Eval("AVG(t.amount)"),
            Value::Double(22'000'000.0 / 3.0));
}

TEST_F(ExprEvalTest, CountDistinct) {
  scope_.groups[vars_->Find("t")].push_back(
      ElementRef::Edge(g_.FindEdge("t1")));  // Duplicate member.
  EXPECT_EQ(Eval("COUNT(t)"), Value::Int(4));
  EXPECT_EQ(Eval("COUNT(DISTINCT t)"), Value::Int(3));
}

TEST_F(ExprEvalTest, ListAgg) {
  EXPECT_EQ(Eval("LISTAGG(t.date, '; ')"),
            Value::String("1/1/2020; 2/1/2020; 7/1/2020"));
  // LISTAGG over bare elements renders their names.
  EXPECT_EQ(Eval("LISTAGG(t, ',')"), Value::String("t1,t2,t6"));
}

TEST_F(ExprEvalTest, EmptyGroupAggregates) {
  scope_.groups[vars_->Find("t")].clear();
  EXPECT_EQ(Eval("COUNT(t)"), Value::Int(0));
  EXPECT_TRUE(Eval("SUM(t.amount)").is_null());
  EXPECT_TRUE(Eval("AVG(t.amount)").is_null());
  EXPECT_TRUE(Eval("MIN(t.amount)").is_null());
}

TEST_F(ExprEvalTest, GraphicalPredicates) {
  EXPECT_EQ(Pred("e IS DIRECTED"), TriBool::kTrue);
  EXPECT_EQ(Pred("x IS SOURCE OF e"), TriBool::kTrue);  // a4 -t4-> a6.
  EXPECT_EQ(Pred("x IS DESTINATION OF e"), TriBool::kFalse);
}

TEST_F(ExprEvalTest, SameAndAllDifferent) {
  EXPECT_EQ(Pred("SAME(x, x)"), TriBool::kTrue);
  EXPECT_EQ(Pred("ALL_DIFFERENT(x, e)"), TriBool::kTrue);
  // Unbound argument: UNKNOWN.
  EXPECT_EQ(Pred("SAME(x, ghost)"), TriBool::kUnknown);
}

TEST_F(ExprEvalTest, ElementEquality) {
  EXPECT_EQ(Pred("x = x"), TriBool::kTrue);
  EXPECT_EQ(Pred("x <> x"), TriBool::kFalse);
}

TEST_F(ExprEvalTest, PathFunctions) {
  Path p(g_.FindNode("a1"));
  p.Append(g_.FindEdge("t1"), Traversal::kForward, g_.FindNode("a3"));
  scope_.paths[vars_->Find("p")] = &p;
  EXPECT_EQ(Eval("PATH_LENGTH(p)"), Value::Int(1));
  EXPECT_EQ(Eval("p"), Value::String("path(a1,t1,a3)"));
}

TEST_F(ExprEvalTest, OutputRendering) {
  EXPECT_EQ(Eval("x"), Value::String("a4"));
  EXPECT_EQ(Eval("e"), Value::String("t4"));
}

TEST_F(ExprEvalTest, DivisionByZeroIsError) {
  Result<ExprPtr> e = ParseExpression("1 / 0");
  Result<EvalValue> v = EvalExpr(**e, g_, *vars_, scope_);
  EXPECT_FALSE(v.ok());
}

}  // namespace
}  // namespace gpml
