#include "pgq/graph_view.h"

#include <gtest/gtest.h>

#include "graph/sample_graph.h"

namespace gpml {
namespace {

// E2: the Figure 2 tabular representation materializes into the Figure 1
// graph.

class GraphViewTest : public ::testing::Test {
 protected:
  GraphViewTest() {
    Result<GraphViewDef> def = InstallPaperTables(catalog_);
    EXPECT_TRUE(def.ok()) << def.status();
    def_ = *def;
  }
  Catalog catalog_;
  GraphViewDef def_;
};

TEST_F(GraphViewTest, TablesInstalled) {
  for (const char* t : {"Account", "Transfer", "Country", "CityCountry",
                        "Phone", "IP", "isLocatedIn", "hasPhone",
                        "signInWithIP"}) {
    EXPECT_TRUE(catalog_.HasTable(t)) << t;
  }
  EXPECT_EQ((*catalog_.GetTable("Account"))->num_rows(), 6u);
  EXPECT_EQ((*catalog_.GetTable("Transfer"))->num_rows(), 8u);
}

TEST_F(GraphViewTest, MaterializedViewEqualsFigureOneGraph) {
  Result<PropertyGraph> view = MaterializeGraphView(catalog_, def_);
  ASSERT_TRUE(view.ok()) << view.status();
  PropertyGraph direct = BuildPaperGraph();

  ASSERT_EQ(view->num_nodes(), direct.num_nodes());
  ASSERT_EQ(view->num_edges(), direct.num_edges());

  // Element-by-element comparison through external names.
  for (NodeId n = 0; n < direct.num_nodes(); ++n) {
    const NodeData& want = direct.node(n);
    NodeId m = view->FindNode(want.name);
    ASSERT_NE(m, kInvalidId) << want.name;
    const NodeData& got = view->node(m);
    EXPECT_EQ(got.labels, want.labels) << want.name;
    for (const auto& [prop, value] : want.properties) {
      EXPECT_EQ(got.GetProperty(prop), value) << want.name << "." << prop;
    }
  }
  for (EdgeId e = 0; e < direct.num_edges(); ++e) {
    const EdgeData& want = direct.edge(e);
    EdgeId f = view->FindEdge(want.name);
    ASSERT_NE(f, kInvalidId) << want.name;
    const EdgeData& got = view->edge(f);
    EXPECT_EQ(got.directed, want.directed) << want.name;
    EXPECT_EQ(view->node(got.u).name, direct.node(want.u).name);
    EXPECT_EQ(view->node(got.v).name, direct.node(want.v).name);
    EXPECT_EQ(got.labels, want.labels);
    for (const auto& [prop, value] : want.properties) {
      EXPECT_EQ(got.GetProperty(prop), value) << want.name << "." << prop;
    }
  }
}

TEST_F(GraphViewTest, CityCountryTableYieldsBothLabels) {
  // Figure 2: one relation per label combination; CityCountry holds c2.
  Result<PropertyGraph> view = MaterializeGraphView(catalog_, def_);
  ASSERT_TRUE(view.ok());
  const NodeData& c2 = view->node(view->FindNode("c2"));
  EXPECT_TRUE(c2.HasLabel("City"));
  EXPECT_TRUE(c2.HasLabel("Country"));
}

TEST_F(GraphViewTest, CreatePropertyGraphRegisters) {
  EXPECT_TRUE(CreatePropertyGraph(catalog_, def_).ok());
  EXPECT_TRUE(catalog_.HasGraph("paper_graph"));
  // Re-creating collides.
  EXPECT_EQ(CreatePropertyGraph(catalog_, def_).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(GraphViewTest, MissingTableIsError) {
  GraphViewDef bad = def_;
  bad.nodes.push_back({"Ghost", "ID", {"G"}, {}});
  EXPECT_EQ(MaterializeGraphView(catalog_, bad).status().code(),
            StatusCode::kNotFound);
}

TEST_F(GraphViewTest, MissingColumnIsError) {
  GraphViewDef bad = def_;
  bad.nodes[0].key_column = "NoSuchColumn";
  EXPECT_EQ(MaterializeGraphView(catalog_, bad).status().code(),
            StatusCode::kNotFound);
}

TEST_F(GraphViewTest, DanglingEdgeKeyIsError) {
  Catalog catalog;
  Table nodes{Schema({{"ID", ValueType::kString, false}})};
  ASSERT_TRUE(nodes.Append({Value::String("n1")}).ok());
  ASSERT_TRUE(catalog.AddTable("N", std::move(nodes)).ok());
  Table edges{Schema({{"ID", ValueType::kString, false},
                      {"SRC", ValueType::kString, false},
                      {"DST", ValueType::kString, false}})};
  ASSERT_TRUE(edges
                  .Append({Value::String("e1"), Value::String("n1"),
                           Value::String("ghost")})
                  .ok());
  ASSERT_TRUE(catalog.AddTable("E", std::move(edges)).ok());
  GraphViewDef def;
  def.name = "g";
  def.nodes = {{"N", "ID", {"N"}, {}}};
  def.edges = {{"E", "ID", "SRC", "DST", true, {"E"}, {}}};
  EXPECT_EQ(MaterializeGraphView(catalog, def).status().code(),
            StatusCode::kNotFound);
}

TEST_F(GraphViewTest, ExplicitPropertyColumnSelection) {
  GraphViewDef def = def_;
  def.nodes[0].property_columns = {"owner"};  // Drop isBlocked.
  Result<PropertyGraph> view = MaterializeGraphView(catalog_, def);
  ASSERT_TRUE(view.ok());
  const NodeData& a1 = view->node(view->FindNode("a1"));
  EXPECT_FALSE(a1.GetProperty("owner").is_null());
  EXPECT_TRUE(a1.GetProperty("isBlocked").is_null());
}

}  // namespace
}  // namespace gpml
