// Network server contract gate (docs/server.md):
//
//   * byte-identity — a fleet of client threads executes >= 1000
//     parameterized queries against an in-process server and every result
//     row, as raw response bytes, equals the in-process engine's
//     RowToJson output for the same binding (transport adds nothing,
//     loses nothing);
//   * concurrency — the fleet runs on 8 connections concurrently through
//     the bounded worker pool with zero spurious failures;
//   * tail latency — per-query wall times are summarized as p50/p95/p99
//     into BENCH_server.json (bench_util.h percentile helpers);
//   * workload introspection — after the mixed fleet (two fingerprints),
//     GET /query_stats reports calls/rows/steps that exactly equal the
//     client-side oracle sums, and the per-tenant Prometheus families
//     (gpml_tenant_steps_total, gpml_tenant_active_sessions) carry the
//     fleet tenant's exact step total;
//   * graceful shutdown — Stop() drains with a cursor still open and a
//     subsequent fetch fails with a transport error, not a hang.
//
// Run under ctest as bench_server_contract; exits non-zero on violation.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "eval/engine.h"
#include "gql/json_export.h"
#include "graph/generator.h"
#include "obs/clock.h"
#include "obs/query_stats.h"
#include "server/client.h"
#include "server/json.h"
#include "server/server.h"

namespace gpml {
namespace {

constexpr int kAccounts = 300;
constexpr int kClientThreads = 8;
constexpr int kQueriesPerThread = 150;  // 1200 total, > the 1000 floor.

// Parameterized fraud probe: suspect account by $owner, transfers out to
// blocked receivers. MATCH-only text — the engine-level prepare surface
// the server exposes.
constexpr char kQuery[] =
    "MATCH (x:Account WHERE x.isBlocked='no' AND x.owner = $owner)"
    "-[t:Transfer]->(y:Account WHERE y.isBlocked='yes')";

// Every kScanEvery-th fleet query runs this second fingerprint instead, so
// the workload the /query_stats oracle checks is genuinely mixed.
constexpr char kScanQuery[] =
    "MATCH (x:Account)-[t:Transfer]->(y:Account WHERE y.isBlocked='yes')";
constexpr int kScanEvery = 10;

FraudGraphOptions WorkloadOptions() {
  FraudGraphOptions options;
  options.num_accounts = kAccounts;
  return options;
}

Params OwnerParams(int index) {
  return Params{{"owner", Value::String("u" + std::to_string(index))}};
}

/// The in-process oracle: expected row bytes and matcher steps per $owner
/// binding (plus the scan fingerprint's constants), computed on an
/// identical (same generator, same seed) graph. num_threads is pinned to 1
/// to match the server's per-query engine configuration, so step counts
/// are comparable, not just rows.
struct Oracle {
  std::vector<std::vector<std::string>> expected;  // Rows per binding.
  std::vector<uint64_t> owner_steps;               // Steps per binding.
  size_t scan_rows = 0;
  uint64_t scan_steps = 0;
};

Oracle ComputeOracle(const PropertyGraph& graph) {
  EngineMetrics metrics;
  EngineOptions options;
  options.num_threads = 1;
  options.metrics = &metrics;
  Engine engine(graph, options);
  Result<PreparedQuery> prepared = engine.Prepare(kQuery);
  if (!prepared.ok()) {
    std::fprintf(stderr, "oracle prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    std::exit(1);
  }
  Oracle oracle;
  oracle.expected.resize(kAccounts);
  oracle.owner_steps.resize(kAccounts);
  for (int i = 0; i < kAccounts; ++i) {
    Result<MatchOutput> output = prepared->Execute(OwnerParams(i));
    if (!output.ok()) {
      std::fprintf(stderr, "oracle execute failed: %s\n",
                   output.status().ToString().c_str());
      std::exit(1);
    }
    oracle.owner_steps[i] = metrics.matcher_steps;
    oracle.expected[i].reserve(output->rows.size());
    for (const ResultRow& row : output->rows) {
      oracle.expected[i].push_back(RowToJson(*output, row, graph));
    }
  }
  Result<MatchOutput> scan = engine.Match(kScanQuery);
  if (!scan.ok()) {
    std::fprintf(stderr, "oracle scan failed: %s\n",
                 scan.status().ToString().c_str());
    std::exit(1);
  }
  oracle.scan_rows = scan->rows.size();
  oracle.scan_steps = metrics.matcher_steps;
  return oracle;
}

struct FleetResult {
  std::vector<double> latencies_ms;
  size_t rows = 0;
  size_t failures = 0;
  size_t mismatches = 0;
  // Client-side tallies the /query_stats response must reproduce exactly.
  size_t owner_calls = 0;
  size_t owner_rows = 0;
  uint64_t owner_steps = 0;  // Oracle steps summed over executed bindings.
  size_t scan_calls = 0;
  size_t scan_rows = 0;
};

FleetResult RunFleet(int port, const Oracle& oracle) {
  std::mutex mu;
  FleetResult merged;
  std::vector<std::thread> threads;
  threads.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([t, port, &oracle, &mu, &merged] {
      FleetResult local;
      Result<server::Client> client =
          server::Client::Connect("127.0.0.1", port, "bench");
      if (!client.ok() || !client->UseGraph("fraud").ok()) {
        local.failures += kQueriesPerThread;
        std::lock_guard<std::mutex> lock(mu);
        merged.failures += local.failures;
        return;
      }
      Result<server::Client::PreparedInfo> prepared =
          client->Prepare(kQuery);
      Result<server::Client::PreparedInfo> scan = client->Prepare(kScanQuery);
      if (!prepared.ok() || !scan.ok()) {
        local.failures += kQueriesPerThread;
        std::lock_guard<std::mutex> lock(mu);
        merged.failures += local.failures;
        return;
      }
      for (int i = 0; i < kQueriesPerThread; ++i) {
        bool is_scan = i % kScanEvery == 0;
        int owner = (t * kQueriesPerThread + i) % kAccounts;
        obs::Stopwatch watch;
        Result<server::ExecuteResult> result =
            is_scan ? client->Execute(scan->stmt)
                    : client->Execute(prepared->stmt, OwnerParams(owner));
        double ms = static_cast<double>(watch.ElapsedMicros()) / 1e3;
        if (!result.ok()) {
          ++local.failures;
          continue;
        }
        local.latencies_ms.push_back(ms);
        local.rows += result->rows.size();
        if (is_scan) {
          ++local.scan_calls;
          local.scan_rows += result->rows.size();
          if (result->rows.size() != oracle.scan_rows) ++local.mismatches;
          continue;
        }
        ++local.owner_calls;
        local.owner_rows += result->rows.size();
        local.owner_steps += oracle.owner_steps[owner];
        const std::vector<std::string>& want = oracle.expected[owner];
        if (result->rows.size() != want.size()) {
          ++local.mismatches;
        } else {
          for (size_t r = 0; r < want.size(); ++r) {
            if (result->rows[r].raw != want[r]) {
              ++local.mismatches;
              break;
            }
          }
        }
      }
      client->Bye();
      std::lock_guard<std::mutex> lock(mu);
      merged.failures += local.failures;
      merged.mismatches += local.mismatches;
      merged.rows += local.rows;
      merged.owner_calls += local.owner_calls;
      merged.owner_rows += local.owner_rows;
      merged.owner_steps += local.owner_steps;
      merged.scan_calls += local.scan_calls;
      merged.scan_rows += local.scan_rows;
      merged.latencies_ms.insert(merged.latencies_ms.end(),
                                 local.latencies_ms.begin(),
                                 local.latencies_ms.end());
    });
  }
  for (std::thread& thread : threads) thread.join();
  return merged;
}

/// Blocking HTTP/1.1 GET against the server's observability port; returns
/// the body ("" on any transport or status failure).
std::string HttpGetBody(int port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (response.rfind("HTTP/1.1 200", 0) != 0) return "";
  size_t header_end = response.find("\r\n\r\n");
  return header_end == std::string::npos ? ""
                                         : response.substr(header_end + 4);
}

/// GET /query_stats vs the client-side oracle tallies: calls, rows, and
/// matcher steps for both fingerprints must match exactly.
bool QueryStatsContract(int port, const FleetResult& fleet,
                        const Oracle& oracle) {
  std::string body =
      HttpGetBody(port, "/query_stats?graph=fraud&tenant=bench");
  Result<server::JsonValue> parsed = server::ParseJson(body);
  if (!parsed.ok() || !parsed->is_array() || parsed->array_v.size() != 2) {
    std::fprintf(stderr, "bad /query_stats payload: %s\n", body.c_str());
    return false;
  }
  bool ok = true;
  for (const server::JsonValue& entry : parsed->array_v) {
    const server::JsonValue* fp = entry.Find("fingerprint");
    if (fp == nullptr || !fp->is_string()) return false;
    bool is_owner = fp->string_v.find("owner") != std::string::npos;
    uint64_t want_calls = is_owner ? fleet.owner_calls : fleet.scan_calls;
    uint64_t want_rows = is_owner ? fleet.owner_rows : fleet.scan_rows;
    uint64_t want_steps = is_owner
                              ? fleet.owner_steps
                              : fleet.scan_calls * oracle.scan_steps;
    uint64_t got_calls = static_cast<uint64_t>(entry.Find("calls")->int_v);
    uint64_t got_rows = static_cast<uint64_t>(entry.Find("rows")->int_v);
    uint64_t got_steps = static_cast<uint64_t>(entry.Find("steps")->int_v);
    uint64_t got_errors = static_cast<uint64_t>(entry.Find("errors")->int_v);
    if (got_calls != want_calls || got_rows != want_rows ||
        got_steps != want_steps || got_errors != 0) {
      std::fprintf(stderr,
                   "/query_stats mismatch for %s fingerprint: "
                   "calls %" PRIu64 "/%" PRIu64 ", rows %" PRIu64 "/%" PRIu64
                   ", steps %" PRIu64 "/%" PRIu64 ", errors %" PRIu64 "\n",
                   is_owner ? "owner" : "scan", got_calls, want_calls,
                   got_rows, want_rows, got_steps, want_steps, got_errors);
      ok = false;
    }
  }
  return ok;
}

/// Stop() must drain and return with a client cursor still open, and the
/// abandoned client must see a clean transport error afterwards.
bool ShutdownDrainContract(server::Server* srv) {
  Result<server::Client> client =
      server::Client::Connect("127.0.0.1", srv->port(), "drain");
  if (!client.ok() || !client->UseGraph("fraud").ok()) return false;
  Result<server::Client::PreparedInfo> prepared =
      client->Prepare("MATCH (x:Account)-[t:Transfer]->(y:Account)");
  if (!prepared.ok()) return false;
  Result<int64_t> cursor = client->Open(prepared->stmt);
  if (!cursor.ok()) return false;
  Result<server::ExecuteResult> page = client->Fetch(*cursor, 16);
  if (!page.ok() || page->rows.empty()) return false;

  srv->Stop();  // Must not hang on the open connection/cursor.

  Result<server::ExecuteResult> after = client->Fetch(*cursor, 16);
  if (after.ok()) {
    std::fprintf(stderr, "fetch succeeded after server Stop()\n");
    return false;
  }
  return true;
}

}  // namespace
}  // namespace gpml

int main() {
  using namespace gpml;

  PropertyGraph oracle_graph = MakeFraudGraph(WorkloadOptions());
  Oracle oracle = ComputeOracle(oracle_graph);
  size_t expected_rows = 0;
  for (const auto& rows : oracle.expected) expected_rows += rows.size();
  std::printf("oracle: %d bindings, %zu total rows (+%zu per scan)\n",
              kAccounts, expected_rows, oracle.scan_rows);

  obs::QueryStatsStore stats_store;
  server::ServerOptions options;
  options.worker_threads = 8;
  options.max_queue = 4096;
  options.engine.query_stats = &stats_store;  // Hermetic for the contract.
  server::Server srv(options);
  if (!srv.AddGraph("fraud", MakeFraudGraph(WorkloadOptions())).ok()) {
    std::fprintf(stderr, "AddGraph failed\n");
    return 1;
  }
  Status started = srv.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  obs::Stopwatch wall;
  FleetResult fleet = RunFleet(srv.port(), oracle);
  double wall_ms = wall.ElapsedMs();

  const size_t total = static_cast<size_t>(kClientThreads) *
                       static_cast<size_t>(kQueriesPerThread);
  std::printf(
      "fleet: %zu queries over %d connections in %.1f ms "
      "(%zu rows, %zu failures, %zu mismatched)\n",
      total, kClientThreads, wall_ms, fleet.rows, fleet.failures,
      fleet.mismatches);

  // The server's own telemetry must be visible through the aggregate the
  // /metrics endpoint serves — including the fleet tenant's per-tenant
  // families, with the step counter equal to the oracle's exact total.
  bool metrics_ok = false;
  bool tenant_metrics_ok = false;
  {
    Result<server::Client> probe =
        server::Client::Connect("127.0.0.1", srv.port(), "probe");
    if (probe.ok()) {
      Result<std::string> text = probe->Metrics();
      metrics_ok = text.ok() &&
                   text->find("gpml_server_queries_total") !=
                       std::string::npos;
      if (text.ok()) {
        uint64_t total_steps =
            fleet.owner_steps + fleet.scan_calls * oracle.scan_steps;
        char steps_line[128];
        std::snprintf(steps_line, sizeof(steps_line),
                      "gpml_tenant_steps_total{tenant=\"bench\"} %" PRIu64,
                      total_steps);
        tenant_metrics_ok =
            text->find(steps_line) != std::string::npos &&
            text->find("gpml_tenant_active_sessions{tenant=\"bench\"}") !=
                std::string::npos;
        if (!tenant_metrics_ok) {
          std::fprintf(stderr, "missing per-tenant series (want '%s')\n",
                       steps_line);
        }
      }
      probe->Bye();
    }
  }

  bool stats_ok = QueryStatsContract(srv.port(), fleet, oracle);
  bool drained = ShutdownDrainContract(&srv);

  std::vector<std::pair<std::string, double>> extra =
      bench::LatencySummary(fleet.latencies_ms);
  extra.emplace_back("connections", kClientThreads);
  extra.emplace_back("queries", static_cast<double>(total));
  extra.emplace_back("qps", wall_ms > 0 ? 1e3 * static_cast<double>(total) /
                                              wall_ms
                                        : 0);
  extra.emplace_back("failures", static_cast<double>(fleet.failures));
  extra.emplace_back("mismatches", static_cast<double>(fleet.mismatches));
  bench::JsonReport report("server");
  report.Add("fraud300_execute_8x150", wall_ms, 0, 0, fleet.rows, extra);
  report.Write();

  bool ok = true;
  if (fleet.failures != 0) {
    std::fprintf(stderr, "FAIL: %zu queries failed\n", fleet.failures);
    ok = false;
  }
  if (fleet.mismatches != 0) {
    std::fprintf(stderr, "FAIL: %zu queries returned rows differing from "
                         "the in-process oracle\n",
                 fleet.mismatches);
    ok = false;
  }
  if (fleet.latencies_ms.size() != total) {
    std::fprintf(stderr, "FAIL: expected %zu latency samples, got %zu\n",
                 total, fleet.latencies_ms.size());
    ok = false;
  }
  if (!metrics_ok) {
    std::fprintf(stderr, "FAIL: /metrics aggregate is missing "
                         "gpml_server_queries_total\n");
    ok = false;
  }
  if (!tenant_metrics_ok) {
    std::fprintf(stderr, "FAIL: per-tenant metric families absent or "
                         "step counter inexact\n");
    ok = false;
  }
  if (!stats_ok) {
    std::fprintf(stderr, "FAIL: /query_stats does not match the "
                         "client-side oracle\n");
    ok = false;
  }
  if (!drained) {
    std::fprintf(stderr, "FAIL: graceful-shutdown drain contract\n");
    ok = false;
  }
  if (!ok) return 1;
  std::printf("bench_server: all contracts PASSED\n");
  return 0;
}
