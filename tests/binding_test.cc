#include "eval/binding.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "semantics/normalize.h"

namespace gpml {
namespace {

Analysis AnalyzeQuery(const std::string& text) {
  Result<GraphPattern> g = ParseGraphPattern(text);
  EXPECT_TRUE(g.ok());
  Result<GraphPattern> n = Normalize(*g);
  EXPECT_TRUE(n.ok());
  Result<Analysis> a = Analyze(*n);
  EXPECT_TRUE(a.ok()) << a.status();
  return *a;
}

TEST(VarTableTest, InterningAndLookup) {
  Analysis a = AnalyzeQuery("MATCH (x)-[e:T]->(y)");
  VarTable vars(a);
  EXPECT_GE(vars.Find("x"), 0);
  EXPECT_GE(vars.Find("e"), 0);
  EXPECT_EQ(vars.Find("ghost"), -1);
  EXPECT_EQ(vars.name(vars.Find("x")), "x");
  // Total: x, e, y + the anonymous reduced node/edge ids.
  EXPECT_EQ(vars.size(), 5);
}

TEST(VarTableTest, ReducedMapsAnonymousToShared) {
  Analysis a = AnalyzeQuery("MATCH ()-[:T]->()");
  VarTable vars(a);
  int n1 = vars.Find("$n1");
  int e1 = vars.Find("$e1");
  int n2 = vars.Find("$n2");
  ASSERT_GE(n1, 0);
  ASSERT_GE(e1, 0);
  EXPECT_EQ(vars.Reduced(n1), vars.anon_node_id());
  EXPECT_EQ(vars.Reduced(n2), vars.anon_node_id());
  EXPECT_EQ(vars.Reduced(e1), vars.anon_edge_id());
  // Named variables reduce to themselves.
  Analysis a2 = AnalyzeQuery("MATCH (x)");
  VarTable vars2(a2);
  EXPECT_EQ(vars2.Reduced(vars2.Find("x")), vars2.Find("x"));
}

TEST(BindingChainTest, ExtendAndMaterialize) {
  BindingChain chain;
  chain = Extend(chain, {0, ElementRef::Node(5)});
  chain = Extend(chain, {1, ElementRef::Edge(2)}, Traversal::kBackward);
  chain = Extend(chain, {0, ElementRef::Node(6)});
  EXPECT_EQ(chain->size, 3u);
  std::vector<BindingLink> links = Materialize(chain);
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(links[0].binding.element.id, 5u);
  EXPECT_EQ(links[1].traversal, Traversal::kBackward);
  EXPECT_EQ(links[2].binding.element.id, 6u);
}

TEST(BindingChainTest, StructuralSharing) {
  BindingChain base = Extend(nullptr, {0, ElementRef::Node(1)});
  BindingChain left = Extend(base, {1, ElementRef::Node(2)});
  BindingChain right = Extend(base, {1, ElementRef::Node(3)});
  EXPECT_EQ(Materialize(left)[0].binding.element.id, 1u);
  EXPECT_EQ(Materialize(right)[0].binding.element.id, 1u);
  EXPECT_EQ(left->prev.get(), right->prev.get());
}

TEST(EnvChainTest, LookupFindsLatest) {
  EnvChain env;
  env = ExtendEnv(env, 0, ElementRef::Node(1), 0);
  env = ExtendEnv(env, 1, ElementRef::Node(2), 0);
  env = ExtendEnv(env, 0, ElementRef::Node(3), 7);
  const EnvLink* e0 = LookupEnv(env, 0);
  ASSERT_NE(e0, nullptr);
  EXPECT_EQ(e0->element.id, 3u);
  EXPECT_EQ(e0->serial, 7u);
  EXPECT_EQ(LookupEnv(env, 1)->element.id, 2u);
  EXPECT_EQ(LookupEnv(env, 9), nullptr);
}

TEST(PathBindingTest, ElementsOfAndLastOf) {
  PathBinding pb;
  pb.reduced = {{0, ElementRef::Node(1)},
                {1, ElementRef::Edge(0)},
                {0, ElementRef::Node(2)}};
  EXPECT_EQ(pb.ElementsOf(0).size(), 2u);
  EXPECT_EQ(pb.LastOf(0)->id, 2u);
  EXPECT_EQ(pb.LastOf(7), nullptr);
}

TEST(PathBindingTest, SameReducedIncludesTags) {
  PathBinding a;
  a.reduced = {{0, ElementRef::Node(1)}};
  PathBinding b = a;
  EXPECT_TRUE(a.SameReduced(b));
  b.tags = {1};
  EXPECT_FALSE(a.SameReduced(b));
  EXPECT_NE(a.ReducedHash(), b.ReducedHash());
}

TEST(ReduceChainTest, AdjacentAnonymousRunsCollapse) {
  Analysis an = AnalyzeQuery("MATCH ()-[:T]->()");
  VarTable vars(an);
  int n1 = vars.Find("$n1");
  int e1 = vars.Find("$e1");
  int n2 = vars.Find("$n2");
  BindingChain chain;
  chain = Extend(chain, {n1, ElementRef::Node(0)});
  chain = Extend(chain, {e1, ElementRef::Edge(0)});
  chain = Extend(chain, {n2, ElementRef::Node(1)});
  // Simulate an adjacent anonymous node (same graph node) after n2.
  chain = Extend(chain, {n1, ElementRef::Node(1)});
  PathBinding pb = ReduceChain(chain, vars, {});
  // Run (n2, n1) collapses to one anonymous binding.
  ASSERT_EQ(pb.reduced.size(), 3u);
  EXPECT_EQ(pb.reduced[0].var, vars.anon_node_id());
  EXPECT_EQ(pb.reduced[1].var, vars.anon_edge_id());
  EXPECT_EQ(pb.reduced[2].var, vars.anon_node_id());
}

TEST(ReduceChainTest, NamedBindingsSurviveRuns) {
  Analysis an = AnalyzeQuery("MATCH (a)-[:T]->(b)");
  VarTable vars(an);
  int a = vars.Find("a");
  int e = vars.Find("$e1");
  int b = vars.Find("b");
  BindingChain chain;
  chain = Extend(chain, {a, ElementRef::Node(0)});
  chain = Extend(chain, {e, ElementRef::Edge(0)});
  chain = Extend(chain, {b, ElementRef::Node(1)});
  chain = Extend(chain, {a, ElementRef::Node(1)});  // Named in same run.
  PathBinding pb = ReduceChain(chain, vars, {});
  ASSERT_EQ(pb.reduced.size(), 4u);
  EXPECT_EQ(pb.reduced[2].var, b);
  EXPECT_EQ(pb.reduced[3].var, a);
}

TEST(ReduceChainTest, PathReconstruction) {
  Analysis an = AnalyzeQuery("MATCH (a)-[:T]->(b)");
  VarTable vars(an);
  BindingChain chain;
  chain = Extend(chain, {vars.Find("a"), ElementRef::Node(4)});
  chain = Extend(chain, {vars.Find("$e1"), ElementRef::Edge(9)},
                 Traversal::kBackward);
  chain = Extend(chain, {vars.Find("b"), ElementRef::Node(7)});
  PathBinding pb = ReduceChain(chain, vars, {});
  EXPECT_EQ(pb.path.Start(), 4u);
  EXPECT_EQ(pb.path.End(), 7u);
  EXPECT_EQ(pb.path.Length(), 1u);
  EXPECT_EQ(pb.path.traversals()[0], Traversal::kBackward);
}

TEST(ReduceChainTest, EmptyChain) {
  Analysis an = AnalyzeQuery("MATCH (a)");
  VarTable vars(an);
  PathBinding pb = ReduceChain(nullptr, vars, {});
  EXPECT_TRUE(pb.reduced.empty());
  EXPECT_TRUE(pb.path.IsEmpty());
}

}  // namespace
}  // namespace gpml
