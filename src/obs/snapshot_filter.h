#ifndef GPML_OBS_SNAPSHOT_FILTER_H_
#define GPML_OBS_SNAPSHOT_FILTER_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace gpml {
namespace obs {

/// Keeps only the records of `snapshot` whose `graph_token` field matches
/// `token` — the one way every host surface narrows a process-wide
/// observability snapshot (slow queries, query stats) down to its own
/// graph. Works on any record type with a `graph_token` member; preserves
/// order and moves the survivors.
template <typename Record>
std::vector<Record> FilterByGraphToken(std::vector<Record> snapshot,
                                       uint64_t token) {
  std::vector<Record> mine;
  for (Record& rec : snapshot) {
    if (rec.graph_token == token) mine.push_back(std::move(rec));
  }
  return mine;
}

}  // namespace obs
}  // namespace gpml

#endif  // GPML_OBS_SNAPSHOT_FILTER_H_
