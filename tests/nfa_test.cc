#include "eval/nfa.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "semantics/normalize.h"

namespace gpml {
namespace {

struct Compiled {
  GraphPattern normalized;
  std::unique_ptr<VarTable> vars;
  Program program;
};

Compiled Compile(const std::string& text) {
  Compiled c;
  Result<GraphPattern> parsed = ParseGraphPattern(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  Result<GraphPattern> normalized = Normalize(*parsed);
  EXPECT_TRUE(normalized.ok());
  c.normalized = *normalized;
  Result<Analysis> analysis = Analyze(c.normalized);
  EXPECT_TRUE(analysis.ok()) << analysis.status();
  c.vars = std::make_unique<VarTable>(*analysis);
  Result<Program> program =
      CompilePattern(c.normalized.paths[0], *c.vars);
  EXPECT_TRUE(program.ok()) << program.status();
  c.program = std::move(*program);
  return c;
}

size_t CountOps(const Program& p, Instr::Op op) {
  size_t n = 0;
  for (const Instr& i : p.code) {
    if (i.op == op) ++n;
  }
  return n;
}

TEST(NfaTest, SimplePathCompiles) {
  Compiled c = Compile("MATCH (x)-[e:T]->(y)");
  EXPECT_EQ(CountOps(c.program, Instr::Op::kNodeCheck), 2u);
  EXPECT_EQ(CountOps(c.program, Instr::Op::kEdgeStep), 1u);
  EXPECT_EQ(CountOps(c.program, Instr::Op::kAccept), 1u);
  EXPECT_FALSE(c.program.has_unbounded);
  EXPECT_EQ(c.program.max_depth, 0);
}

TEST(NfaTest, BoundedQuantifierUnrolls) {
  Compiled c = Compile("MATCH (a)[()-[t:T]->()]{2,4}(b)");
  // 4 copies of the body: 4 edge steps.
  EXPECT_EQ(CountOps(c.program, Instr::Op::kEdgeStep), 4u);
  // 2 optional copies need skip splits.
  EXPECT_EQ(CountOps(c.program, Instr::Op::kSplit), 2u);
  // One frame per copy.
  EXPECT_EQ(CountOps(c.program, Instr::Op::kFrameBegin), 4u);
  EXPECT_EQ(c.program.max_depth, 1);
}

TEST(NfaTest, UnboundedQuantifierLoops) {
  Compiled c = Compile("MATCH TRAIL (a)-[t:T]->*(b)");
  EXPECT_TRUE(c.program.has_unbounded);
  // Loop split + body; guard on the loop frame end.
  bool guarded = false;
  for (const Instr& i : c.program.code) {
    if (i.op == Instr::Op::kFrameEnd && i.guard_progress) guarded = true;
  }
  EXPECT_TRUE(guarded);
  // Declaration restrictor compiles to scope 0 around everything.
  EXPECT_EQ(c.program.code[0].op, Instr::Op::kScopeBegin);
  EXPECT_EQ(c.program.code[0].restrictor, Restrictor::kTrail);
  EXPECT_EQ(c.program.num_scopes, 1);
}

TEST(NfaTest, MinCopiesAreMandatory) {
  Compiled c = Compile("MATCH (a)->{3,}(b)");
  // 3 mandatory copies + 1 loop copy = 4 edge steps.
  EXPECT_EQ(CountOps(c.program, Instr::Op::kEdgeStep), 4u);
}

TEST(NfaTest, UnionSplitsAndJoins) {
  Compiled c = Compile("MATCH (c:City) | (c:Country) | (c:Phone)");
  EXPECT_EQ(CountOps(c.program, Instr::Op::kSplit), 2u);
  EXPECT_EQ(CountOps(c.program, Instr::Op::kJump), 2u);
  EXPECT_EQ(CountOps(c.program, Instr::Op::kTag), 0u);
}

TEST(NfaTest, AlternationTagsBranches) {
  Compiled c = Compile("MATCH (c:City) |+| (c:Country)");
  EXPECT_EQ(CountOps(c.program, Instr::Op::kTag), 2u);
}

TEST(NfaTest, OptionalCompilesToSplit) {
  Compiled c = Compile("MATCH (x)[->(y)]?");
  EXPECT_EQ(CountOps(c.program, Instr::Op::kSplit), 1u);
  // `?` is not an iteration: no quantifier frames.
  EXPECT_EQ(CountOps(c.program, Instr::Op::kFrameBegin), 0u);
}

TEST(NfaTest, ParenWhereGetsFrameAndCheck) {
  Compiled c = Compile("MATCH [(x)-[e:T]->(y) WHERE e.w > 1]");
  EXPECT_EQ(CountOps(c.program, Instr::Op::kFrameBegin), 1u);
  EXPECT_EQ(CountOps(c.program, Instr::Op::kWhereCheck), 1u);
  EXPECT_EQ(CountOps(c.program, Instr::Op::kFrameEnd), 1u);
}

TEST(NfaTest, NestedQuantifierDepths) {
  Compiled c = Compile("MATCH (a)[[()-[t:T]->()]{1,2}]{1,2}(b)");
  EXPECT_EQ(c.program.max_depth, 2);
}

TEST(NfaTest, PathVariableRecorded) {
  Compiled c = Compile("MATCH p = (x)->(y)");
  EXPECT_EQ(c.program.path_var, c.vars->Find("p"));
  Compiled c2 = Compile("MATCH (x)->(y)");
  EXPECT_EQ(c2.program.path_var, -1);
}

TEST(NfaTest, SelectorCarriedAsMetadata) {
  Compiled c = Compile("MATCH ALL SHORTEST (x)->*(y)");
  EXPECT_EQ(c.program.selector.kind, Selector::Kind::kAllShortest);
}

TEST(NfaTest, DisassemblyIsReadable) {
  Compiled c = Compile("MATCH TRAIL (x)-[e:T]->*(y)");
  std::string dis = c.program.ToString();
  EXPECT_NE(dis.find("scope+"), std::string::npos);
  EXPECT_NE(dis.find("edge"), std::string::npos);
  EXPECT_NE(dis.find("accept"), std::string::npos);
}

}  // namespace
}  // namespace gpml
