// GQL host outputs beyond binding tables (§6.6, Figure 9 right branch):
// graph projection of match results, re-querying the projected graph, and
// the conceptual "new graph" output.

#include <cstdio>

#include "catalog/catalog.h"
#include "eval/engine.h"
#include "gql/graph_projection.h"
#include "gql/json_export.h"
#include "gql/session.h"
#include "graph/sample_graph.h"

int main() {
  gpml::Catalog catalog;
  (void)catalog.AddGraph("bank", gpml::BuildPaperGraph());
  auto bank = *catalog.GetGraph("bank");

  // Step 1: match the suspicious subnetwork — every trail of transfers
  // from Dave's account to Aretha's.
  gpml::Engine engine(*bank);
  gpml::Result<gpml::MatchOutput> out = engine.Match(
      "MATCH TRAIL (a WHERE a.owner='Dave')-[t:Transfer]->*"
      "(b WHERE b.owner='Aretha')");
  if (!out.ok()) {
    std::printf("match failed: %s\n", out.status().ToString().c_str());
    return 1;
  }
  std::printf("Matched %zu trails between Dave and Aretha.\n",
              out->rows.size());

  // Step 2: project the union of the bound subgraphs (§6.6).
  gpml::Result<gpml::PropertyGraph> sub = gpml::ProjectGraph(*bank, *out);
  if (!sub.ok()) {
    std::printf("projection failed: %s\n", sub.status().ToString().c_str());
    return 1;
  }
  std::printf("Projected transfer subnetwork: %s\n", sub->Summary().c_str());
  for (gpml::NodeId n = 0; n < sub->num_nodes(); ++n) {
    std::printf("  node %s owner=%s\n", sub->node(n).name.c_str(),
                sub->node(n).GetProperty("owner").ToString().c_str());
  }

  // Step 3: register the projection as a first-class graph and query it.
  (void)catalog.AddGraph("suspicious", std::move(*sub));
  gpml::Session session(catalog);
  (void)session.UseGraph("suspicious");
  gpml::Result<gpml::Table> t = session.Execute(
      "MATCH (x:Account)-[e:Transfer]->(y:Account) "
      "RETURN x.owner AS src, y.owner AS dst, e.amount AS amount");
  if (t.ok()) {
    gpml::Table sorted = *t;
    sorted.SortRows();
    std::printf("\nTransfers inside the projected subnetwork:\n%s",
                sorted.ToString().c_str());
  }

  // Step 4: JSON export (§7.1 Language Opportunity) of the shortest chain,
  // for downstream tooling.
  gpml::Result<gpml::MatchOutput> shortest = engine.Match(
      "MATCH ANY SHORTEST p = (a WHERE a.owner='Dave')-[t:Transfer]->*"
      "(b WHERE b.owner='Aretha')");
  if (shortest.ok()) {
    std::printf("\nJSON export of the shortest chain:\n%s\n",
                gpml::ExportJson(*shortest, *bank).c_str());
  }

  // Step 5: binding-table output with aggregates, for the analyst report.
  (void)session.UseGraph("bank");
  t = session.Execute(
      "MATCH (hub:Account)<-[in_:Transfer]-(src:Account) "
      "RETURN hub.owner AS hub, COUNT(in_) AS inbound, "
      "SUM(in_.amount) AS volume");
  if (t.ok()) {
    gpml::Table sorted = *t;
    sorted.DeduplicateRows();
    std::printf("\nInbound transfer volume per account:\n%s",
                sorted.ToString().c_str());
  }
  return 0;
}
