#include "ast/label_expr.h"

#include <algorithm>

namespace gpml {

namespace {

std::shared_ptr<LabelExpr> Make(LabelExpr::Kind kind) {
  auto e = std::make_shared<LabelExpr>();
  e->kind = kind;
  return e;
}

// Precedence for printing: Or(1) < And(2) < Not(3) < atoms(4).
int Precedence(LabelExpr::Kind k) {
  switch (k) {
    case LabelExpr::Kind::kOr: return 1;
    case LabelExpr::Kind::kAnd: return 2;
    case LabelExpr::Kind::kNot: return 3;
    default: return 4;
  }
}

std::string PrintChild(const LabelExprPtr& child, int parent_prec) {
  std::string s = child->ToString();
  if (Precedence(child->kind) < parent_prec) return "(" + s + ")";
  return s;
}

}  // namespace

LabelExprPtr LabelExpr::Name(std::string n) {
  auto e = Make(Kind::kName);
  e->name = std::move(n);
  return e;
}

LabelExprPtr LabelExpr::Wildcard() { return Make(Kind::kWildcard); }

LabelExprPtr LabelExpr::Not(LabelExprPtr sub) {
  auto e = Make(Kind::kNot);
  e->left = std::move(sub);
  return e;
}

LabelExprPtr LabelExpr::And(LabelExprPtr l, LabelExprPtr r) {
  auto e = Make(Kind::kAnd);
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

LabelExprPtr LabelExpr::Or(LabelExprPtr l, LabelExprPtr r) {
  auto e = Make(Kind::kOr);
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

bool LabelExpr::Matches(const std::vector<std::string>& labels) const {
  switch (kind) {
    case Kind::kName:
      return std::binary_search(labels.begin(), labels.end(), name);
    case Kind::kWildcard:
      return !labels.empty();
    case Kind::kNot:
      return !left->Matches(labels);
    case Kind::kAnd:
      return left->Matches(labels) && right->Matches(labels);
    case Kind::kOr:
      return left->Matches(labels) || right->Matches(labels);
  }
  return false;
}

void LabelExpr::CollectRequiredNames(
    std::vector<const std::string*>* out) const {
  switch (kind) {
    case Kind::kName:
      out->push_back(&name);
      break;
    case Kind::kAnd:
      left->CollectRequiredNames(out);
      right->CollectRequiredNames(out);
      break;
    case Kind::kWildcard:
    case Kind::kNot:
    case Kind::kOr:
      break;
  }
}

std::string LabelExpr::ToString() const {
  switch (kind) {
    case Kind::kName: return name;
    case Kind::kWildcard: return "%";
    case Kind::kNot: return "!" + PrintChild(left, Precedence(kind) + 1);
    case Kind::kAnd:
      return PrintChild(left, Precedence(kind)) + "&" +
             PrintChild(right, Precedence(kind));
    case Kind::kOr:
      return PrintChild(left, Precedence(kind)) + "|" +
             PrintChild(right, Precedence(kind));
  }
  return "?";
}

bool LabelExpr::Equal(const LabelExprPtr& a, const LabelExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind || a->name != b->name) return false;
  return Equal(a->left, b->left) && Equal(a->right, b->right);
}

}  // namespace gpml
