#include "ast/ast.h"

namespace gpml {

const char* EdgeOrientationName(EdgeOrientation o) {
  switch (o) {
    case EdgeOrientation::kLeft: return "left";
    case EdgeOrientation::kUndirected: return "undirected";
    case EdgeOrientation::kRight: return "right";
    case EdgeOrientation::kLeftOrUndirected: return "left-or-undirected";
    case EdgeOrientation::kUndirectedOrRight: return "undirected-or-right";
    case EdgeOrientation::kLeftOrRight: return "left-or-right";
    case EdgeOrientation::kAny: return "any";
  }
  return "?";
}

const char* MatchModeName(MatchMode m) {
  switch (m) {
    case MatchMode::kRepeatableElements: return "REPEATABLE ELEMENTS";
    case MatchMode::kDifferentEdges: return "DIFFERENT EDGES";
    case MatchMode::kDifferentNodes: return "DIFFERENT NODES";
  }
  return "?";
}

const char* RestrictorName(Restrictor r) {
  switch (r) {
    case Restrictor::kNone: return "";
    case Restrictor::kTrail: return "TRAIL";
    case Restrictor::kAcyclic: return "ACYCLIC";
    case Restrictor::kSimple: return "SIMPLE";
  }
  return "?";
}

std::string Selector::ToString() const {
  switch (kind) {
    case Kind::kNone: return "";
    case Kind::kAnyShortest: return "ANY SHORTEST";
    case Kind::kAllShortest: return "ALL SHORTEST";
    case Kind::kAny: return "ANY";
    case Kind::kAnyK: return "ANY " + std::to_string(k);
    case Kind::kShortestK: return "SHORTEST " + std::to_string(k);
    case Kind::kShortestKGroup:
      return "SHORTEST " + std::to_string(k) + " GROUP";
  }
  return "?";
}

PathElement PathElement::Node(NodePattern n) {
  PathElement e;
  e.kind = Kind::kNode;
  e.node = std::move(n);
  return e;
}

PathElement PathElement::Edge(EdgePattern ep) {
  PathElement e;
  e.kind = Kind::kEdge;
  e.edge = std::move(ep);
  return e;
}

PathElement PathElement::Paren(PathPatternPtr sub, Restrictor r,
                               ExprPtr where) {
  PathElement e;
  e.kind = Kind::kParen;
  e.sub = std::move(sub);
  e.restrictor = r;
  e.where = std::move(where);
  return e;
}

PathElement PathElement::Quantified(PathPatternPtr sub, uint64_t min,
                                    std::optional<uint64_t> max, Restrictor r,
                                    ExprPtr where, bool bare_edge) {
  PathElement e;
  e.kind = Kind::kQuantified;
  e.sub = std::move(sub);
  e.min = min;
  e.max = max;
  e.restrictor = r;
  e.where = std::move(where);
  e.bare_edge = bare_edge;
  return e;
}

PathElement PathElement::Optional(PathPatternPtr sub, Restrictor r,
                                  ExprPtr where, bool bare_edge) {
  PathElement e;
  e.kind = Kind::kOptional;
  e.sub = std::move(sub);
  e.restrictor = r;
  e.where = std::move(where);
  e.bare_edge = bare_edge;
  return e;
}

PathPatternPtr PathPattern::Concat(std::vector<PathElement> elements) {
  auto p = std::make_shared<PathPattern>();
  p->kind = Kind::kConcat;
  p->elements = std::move(elements);
  return p;
}

PathPatternPtr PathPattern::Union(std::vector<PathPatternPtr> alternatives) {
  auto p = std::make_shared<PathPattern>();
  p->kind = Kind::kUnion;
  p->alternatives = std::move(alternatives);
  return p;
}

PathPatternPtr PathPattern::Alternation(
    std::vector<PathPatternPtr> alternatives) {
  auto p = std::make_shared<PathPattern>();
  p->kind = Kind::kAlternation;
  p->alternatives = std::move(alternatives);
  return p;
}

}  // namespace gpml
