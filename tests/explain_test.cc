// EXPLAIN coverage: the rendering is stable and parseable (ParseExplain
// roundtrips every planning decision), and both hosts surface it — GQL
// sessions via a leading EXPLAIN keyword, SQL/PGQ via "EXPLAIN MATCH ..."
// inside GRAPH_TABLE.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "eval/engine.h"
#include "gql/session.h"
#include "graph/sample_graph.h"
#include "parser/parser.h"
#include "pgq/graph_table.h"
#include "planner/explain.h"
#include "planner/planner.h"
#include "planner/stats.h"
#include "semantics/normalize.h"

namespace gpml {
namespace {

const char* kFraudQuery =
    "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
    "(c:City WHERE c.name='Ankh-Morpork')<-[:isLocatedIn]-"
    "(y:Account WHERE y.isBlocked='yes'), "
    "ANY (x)-[:Transfer]->+(y)";

Catalog PaperCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog.AddGraph("bank", BuildPaperGraph()).ok());
  return catalog;
}

TEST(ExplainTest, RoundtripsThePlan) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<GraphPattern> pattern = ParseGraphPattern(kFraudQuery);
  ASSERT_TRUE(pattern.ok());
  Result<planner::Plan> plan = engine.Plan(*pattern);
  ASSERT_TRUE(plan.ok()) << plan.status();
  Result<std::string> text = engine.Explain(kFraudQuery);
  ASSERT_TRUE(text.ok()) << text.status();

  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << *text;
  EXPECT_TRUE(parsed->planner_on);
  ASSERT_EQ(parsed->decls.size(), plan->decls.size());

  // Re-derive the variable table to name-check parsed fields.
  Result<GraphPattern> normalized = Normalize(*pattern);
  ASSERT_TRUE(normalized.ok());
  Result<Analysis> analysis = Analyze(*normalized);
  ASSERT_TRUE(analysis.ok());
  VarTable vars(*analysis);

  for (size_t i = 0; i < plan->decls.size(); ++i) {
    const planner::DeclPlan& dp = plan->decls[i];
    const planner::ExplainedDecl& ed = parsed->decls[i];
    EXPECT_EQ(ed.step, static_cast<int>(i) + 1);
    EXPECT_EQ(ed.decl_index, dp.decl_index);
    EXPECT_EQ(ed.reversed, dp.reversed);
    EXPECT_EQ(ed.anchor, dp.reversed ? "right" : "left");
    if (dp.anchor_var >= 0) {
      EXPECT_EQ(ed.var, vars.name(dp.anchor_var));
    } else {
      EXPECT_EQ(ed.var, "_");
    }
    if (dp.seed_bound_var >= 0) {
      EXPECT_EQ(ed.seeds, -1) << "bound steps render seeds~*";
    } else {
      EXPECT_NEAR(ed.seeds, dp.anchor.enumerated,
                  1e-6 + 1e-6 * dp.anchor.enumerated);
    }
    if (dp.seed_bound_var >= 0) {
      EXPECT_EQ(ed.source, "bound:" + vars.name(dp.seed_bound_var));
    } else if (dp.anchor.has_index()) {
      EXPECT_EQ(ed.source,
                "index:" + dp.anchor.label + "." + dp.anchor.index_prop);
    } else if (!dp.anchor.label.empty()) {
      EXPECT_EQ(ed.source, "label:" + dp.anchor.label);
    } else {
      EXPECT_EQ(ed.source, "all");
    }
    ASSERT_EQ(ed.join_vars.size(), dp.join_vars.size());
    for (size_t j = 0; j < dp.join_vars.size(); ++j) {
      EXPECT_EQ(ed.join_vars[j], vars.name(dp.join_vars[j]));
    }
    std::string selector = dp.decl.selector.ToString();
    EXPECT_EQ(ed.selector, selector.empty() ? "none" : selector);
  }
}

TEST(ExplainTest, FraudQueryPlanDecisions) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<std::string> text = engine.Explain(kFraudQuery);
  ASSERT_TRUE(text.ok());
  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(*text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->decls.size(), 2u);
  // The selective co-location decl runs first, seeded from the equality
  // index on its inline isBlocked predicate; the transfer chain is seeded
  // from the bound x values.
  EXPECT_EQ(parsed->decls[0].decl_index, 0);
  EXPECT_EQ(parsed->decls[0].source, "index:Account.isBlocked");
  EXPECT_EQ(parsed->decls[1].decl_index, 1);
  EXPECT_EQ(parsed->decls[1].source, "bound:x");
  EXPECT_EQ(parsed->decls[1].join_vars,
            (std::vector<std::string>{"x", "y"}));
}

TEST(ExplainTest, SeedIndexOffFallsBackToLabelScan) {
  PropertyGraph g = BuildPaperGraph();
  EngineOptions options;
  options.use_seed_index = false;
  Engine engine(g, options);
  Result<std::string> text = engine.Explain(kFraudQuery);
  ASSERT_TRUE(text.ok());
  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(*text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->decls[0].source, "label:Account");
}

TEST(ExplainTest, PlannerOffIsReported) {
  PropertyGraph g = BuildPaperGraph();
  EngineOptions options;
  options.use_planner = false;
  Engine engine(g, options);
  Result<std::string> text = engine.Explain(kFraudQuery);
  ASSERT_TRUE(text.ok());
  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(*text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->planner_on);
  EXPECT_EQ(parsed->decls[1].source, "all");
}

TEST(ExplainTest, VerboseIncludesGraphStats) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<GraphPattern> pattern = ParseGraphPattern(kFraudQuery);
  ASSERT_TRUE(pattern.ok());
  Result<planner::Plan> plan = engine.Plan(*pattern);
  ASSERT_TRUE(plan.ok());
  Result<GraphPattern> normalized = Normalize(*pattern);
  ASSERT_TRUE(normalized.ok());
  Result<Analysis> analysis = Analyze(*normalized);
  ASSERT_TRUE(analysis.ok());
  VarTable vars(*analysis);
  auto stats = planner::GetStats(g);
  std::string text = planner::ExplainPlan(*plan, vars, stats.get());
  EXPECT_NE(text.find("-- graph stats --"), std::string::npos);
  EXPECT_NE(text.find("node label Account: 6"), std::string::npos);
  // The stats section must not confuse the parser.
  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->decls.size(), 2u);
}

TEST(ExplainTest, GqlSessionExplainStatement) {
  Catalog catalog = PaperCatalog();
  Session session(catalog);
  ASSERT_TRUE(session.UseGraph("bank").ok());
  Result<Table> table =
      session.Execute(std::string("EXPLAIN ") + kFraudQuery);
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->schema().num_columns(), 1u);
  EXPECT_EQ(table->schema().column(0).name, "plan");
  ASSERT_GE(table->num_rows(), 3u);  // Header + one step per declaration.
  EXPECT_EQ(table->row(0)[0].ToString().rfind("plan: 2 declaration", 0), 0u);

  // The string-level API agrees with the table rendering.
  Result<std::string> text = session.Explain(kFraudQuery);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("source=bound:x"), std::string::npos);
}

TEST(ExplainTest, GraphTableExplain) {
  Catalog catalog = PaperCatalog();
  GraphTableQuery query;
  query.graph = "bank";
  query.match = std::string("EXPLAIN ") + kFraudQuery;
  query.columns = "x.owner AS owner";  // Ignored under EXPLAIN.
  Result<Table> table = GraphTable(catalog, query);
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->schema().num_columns(), 1u);
  EXPECT_EQ(table->schema().column(0).name, "plan");
  ASSERT_GE(table->num_rows(), 3u);

  // The SQL surface form carries EXPLAIN through ParseGraphTableCall.
  Result<GraphTableQuery> sql = ParseGraphTableCall(
      "SELECT * FROM GRAPH_TABLE(bank, EXPLAIN MATCH "
      "(x:Account)-[:Transfer]->(y) COLUMNS (x.owner AS owner))");
  ASSERT_TRUE(sql.ok()) << sql.status();
  Result<Table> table2 = GraphTable(catalog, *sql);
  ASSERT_TRUE(table2.ok()) << table2.status();
  EXPECT_EQ(table2->schema().column(0).name, "plan");
}

TEST(ExplainTest, StripExplainPrefix) {
  std::string rest;
  EXPECT_TRUE(planner::StripExplainPrefix("EXPLAIN MATCH (x)", &rest));
  EXPECT_EQ(rest, " MATCH (x)");
  EXPECT_TRUE(planner::StripExplainPrefix("  explain MATCH (x)", &rest));
  EXPECT_TRUE(planner::StripExplainPrefix("EXPLAIN", &rest));
  EXPECT_FALSE(planner::StripExplainPrefix("EXPLAINER MATCH (x)", &rest));
  EXPECT_FALSE(planner::StripExplainPrefix("MATCH (x)", &rest));
}

TEST(ExplainTest, EscapeRoundtripsAdversarialValues) {
  const char* cases[] = {
      "plain",      "with space",  "a,b",     "line\nbreak",
      "back\\slash", "quote\"d",   "trail\\", "cr\rlf\n mix, \\s",
  };
  for (const char* v : cases) {
    std::string escaped = planner::EscapeExplainValue(v);
    EXPECT_EQ(escaped.find(' '), std::string::npos) << v;
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << v;
    EXPECT_EQ(escaped.find(','), std::string::npos) << v;
    EXPECT_EQ(planner::UnescapeExplainValue(escaped), v);

    // The end-of-line form keeps spaces but still never emits newlines.
    std::string eol = planner::EscapeExplainValue(v, /*keep_spaces=*/true);
    EXPECT_EQ(eol.find('\n'), std::string::npos) << v;
    EXPECT_EQ(planner::UnescapeExplainValue(eol), v);
  }
  // Unknown escapes and a trailing backslash survive unescaping literally.
  EXPECT_EQ(planner::UnescapeExplainValue("a\\qb"), "a\\qb");
  EXPECT_EQ(planner::UnescapeExplainValue("tail\\"), "tail\\");
}

TEST(ExplainTest, AdversarialLabelRoundtripsThroughParseExplain) {
  // A label containing quotes, a comma, spaces, and a newline — rendered
  // into a step line, it must neither break the line framing nor parse back
  // changed. (Labels are unconstrained strings at the graph level even
  // though the pattern parser only produces tame ones.)
  Result<GraphPattern> pattern = ParseGraphPattern("MATCH (x)-[e]->(y)");
  ASSERT_TRUE(pattern.ok());
  Result<GraphPattern> normalized = Normalize(*pattern);
  ASSERT_TRUE(normalized.ok());
  Result<Analysis> analysis = Analyze(*normalized);
  ASSERT_TRUE(analysis.ok());
  VarTable vars(*analysis);

  const std::string weird = "City \"of\"\nAnkh, Morpork\\step 9: decl=0";
  planner::Plan plan;
  plan.planner_used = true;
  planner::DeclPlan dp;
  dp.decl_index = 0;
  dp.anchor_var = vars.Find("x");
  dp.anchor.enumerated = 3;
  dp.anchor.fanout = 1.5;
  dp.anchor.label = weird;
  dp.decl = normalized->paths[0];
  plan.decls.push_back(std::move(dp));

  std::string text = planner::ExplainPlan(plan, vars);
  // Header plus exactly one (unbroken) step line.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);

  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  ASSERT_EQ(parsed->decls.size(), 1u);
  EXPECT_EQ(parsed->decls[0].source, "label:" + weird);
  EXPECT_EQ(parsed->decls[0].var, "x");
  EXPECT_EQ(parsed->decls[0].selector, "none");
}

TEST(ExplainTest, ExecLineRoundtrips) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<GraphPattern> pattern = ParseGraphPattern(kFraudQuery);
  ASSERT_TRUE(pattern.ok());
  Result<planner::Plan> plan = engine.Plan(*pattern);
  ASSERT_TRUE(plan.ok());
  Result<GraphPattern> normalized = Normalize(*pattern);
  ASSERT_TRUE(normalized.ok());
  Result<Analysis> analysis = Analyze(*normalized);
  ASSERT_TRUE(analysis.ok());
  VarTable vars(*analysis);

  planner::ExplainExec exec;
  exec.threads = 16;
  exec.cached = true;
  std::string text = planner::ExplainPlan(*plan, vars, nullptr, &exec);
  EXPECT_NE(text.find("exec: threads=16 cached=true"), std::string::npos);

  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->has_exec);
  EXPECT_EQ(parsed->threads, 16u);
  EXPECT_TRUE(parsed->cached);

  // Without the exec argument the line is absent and parsing reports so.
  std::string bare = planner::ExplainPlan(*plan, vars);
  Result<planner::ExplainedPlan> parsed_bare = planner::ParseExplain(bare);
  ASSERT_TRUE(parsed_bare.ok());
  EXPECT_FALSE(parsed_bare->has_exec);
}

TEST(ExplainTest, ParseExplainRejectsGarbage) {
  EXPECT_FALSE(planner::ParseExplain("no plan here").ok());
  EXPECT_FALSE(
      planner::ParseExplain("plan: 2 declaration(s), planner=on\n"
                            "step 1: decl=0 dir=forward anchor=left var=x "
                            "seeds~1 source=all fanout~0 join=[] "
                            "selector=none\n")
          .ok())
      << "header/step count mismatch must be rejected";
}

TEST(ExplainTest, StripAnalyzePrefix) {
  std::string rest;
  EXPECT_TRUE(planner::StripAnalyzePrefix("ANALYZE MATCH (x)", &rest));
  EXPECT_EQ(rest, " MATCH (x)");
  EXPECT_TRUE(planner::StripAnalyzePrefix("  analyze MATCH (x)", &rest));
  EXPECT_FALSE(planner::StripAnalyzePrefix("ANALYZER MATCH (x)", &rest));
  EXPECT_FALSE(planner::StripAnalyzePrefix("MATCH (x)", &rest));
}

TEST(ExplainTest, ExplainAnalyzeRendersAndParsesActuals) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<std::string> text = engine.ExplainAnalyze(kFraudQuery);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("actual_seeds="), std::string::npos) << *text;
  EXPECT_NE(text->find("actual_steps="), std::string::npos);
  EXPECT_NE(text->find("actual_rows="), std::string::npos);
  EXPECT_NE(text->find("rows="), std::string::npos);
  EXPECT_NE(text->find("truncated=false"), std::string::npos);
  // Wall-clock actuals: total and plan cost on the exec line, per-stage
  // time on each step line (docs/observability.md).
  EXPECT_NE(text->find(" ms="), std::string::npos) << *text;
  EXPECT_NE(text->find(" plan_ms="), std::string::npos);
  EXPECT_NE(text->find(" actual_ms="), std::string::npos);

  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << *text;
  EXPECT_TRUE(parsed->analyzed);
  EXPECT_GE(parsed->total_ms, 0) << *text;
  EXPECT_GE(parsed->plan_ms, 0) << *text;
  ASSERT_EQ(parsed->decls.size(), 2u);
  for (const planner::ExplainedDecl& d : parsed->decls) {
    EXPECT_GE(d.actual_seeds, 0) << *text;
    EXPECT_GT(d.actual_steps, 0) << *text;
    EXPECT_GE(d.actual_rows, 0);
    EXPECT_GE(d.actual_ms, 0) << *text;
    EXPECT_FALSE(d.actual_source.empty());
  }
  // The measured actuals agree with the engine's metrics.
  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  Engine measured(g, options);
  ASSERT_TRUE(measured.Match(kFraudQuery).ok());
  long total_steps = 0;
  for (const planner::ExplainedDecl& d : parsed->decls) {
    total_steps += d.actual_steps;
  }
  EXPECT_EQ(static_cast<size_t>(total_steps), metrics.matcher_steps);
  EXPECT_EQ(parsed->rows, metrics.rows);
}

TEST(ExplainTest, PlainExplainCarriesNoActuals) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<std::string> text = engine.Explain(kFraudQuery);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->find("actual_seeds="), std::string::npos);
  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(*text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->analyzed);
  EXPECT_EQ(parsed->decls[0].actual_seeds, -1);
  EXPECT_LT(parsed->total_ms, 0);
  EXPECT_LT(parsed->decls[0].actual_ms, 0);
}

}  // namespace
}  // namespace gpml
