#include "common/value.h"

#include <gtest/gtest.h>

namespace gpml {
namespace {

TEST(TriBoolTest, NotTruthTable) {
  EXPECT_EQ(TriNot(TriBool::kTrue), TriBool::kFalse);
  EXPECT_EQ(TriNot(TriBool::kFalse), TriBool::kTrue);
  EXPECT_EQ(TriNot(TriBool::kUnknown), TriBool::kUnknown);
}

TEST(TriBoolTest, AndTruthTable) {
  EXPECT_EQ(TriAnd(TriBool::kTrue, TriBool::kTrue), TriBool::kTrue);
  EXPECT_EQ(TriAnd(TriBool::kTrue, TriBool::kFalse), TriBool::kFalse);
  EXPECT_EQ(TriAnd(TriBool::kFalse, TriBool::kUnknown), TriBool::kFalse);
  EXPECT_EQ(TriAnd(TriBool::kTrue, TriBool::kUnknown), TriBool::kUnknown);
  EXPECT_EQ(TriAnd(TriBool::kUnknown, TriBool::kUnknown), TriBool::kUnknown);
}

TEST(TriBoolTest, OrTruthTable) {
  EXPECT_EQ(TriOr(TriBool::kFalse, TriBool::kFalse), TriBool::kFalse);
  EXPECT_EQ(TriOr(TriBool::kTrue, TriBool::kUnknown), TriBool::kTrue);
  EXPECT_EQ(TriOr(TriBool::kFalse, TriBool::kUnknown), TriBool::kUnknown);
  EXPECT_EQ(TriOr(TriBool::kUnknown, TriBool::kUnknown), TriBool::kUnknown);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int(42).int_value(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(5'000'000).ToString(), "5000000");
  EXPECT_EQ(Value::String("Ankh-Morpork").ToString(), "Ankh-Morpork");
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(1), Value::Double(1.0));
  EXPECT_NE(Value::Int(1), Value::Double(1.5));
  EXPECT_NE(Value::Int(1), Value::String("1"));
  // Equal values must hash equal (dedup correctness).
  EXPECT_EQ(Value::Int(1).Hash(), Value::Double(1.0).Hash());
}

TEST(ValueTest, NullComparisonsAreUnknown) {
  EXPECT_EQ(Value::SqlEquals(Value::Null(), Value::Int(1)),
            TriBool::kUnknown);
  EXPECT_EQ(Value::SqlEquals(Value::Null(), Value::Null()),
            TriBool::kUnknown);
  EXPECT_EQ(Value::SqlEquals(Value::Int(1), Value::Int(1)), TriBool::kTrue);
  EXPECT_EQ(Value::SqlEquals(Value::Int(1), Value::Int(2)), TriBool::kFalse);
}

TEST(ValueTest, TypeMismatchEqualsIsFalse) {
  EXPECT_EQ(Value::SqlEquals(Value::String("1"), Value::Int(1)),
            TriBool::kFalse);
  EXPECT_EQ(Value::SqlEquals(Value::Bool(true), Value::Int(1)),
            TriBool::kFalse);
}

TEST(ValueTest, SqlCompare) {
  EXPECT_EQ(*Value::SqlCompare(Value::Int(1), Value::Int(2)), -1);
  EXPECT_EQ(*Value::SqlCompare(Value::Double(2.0), Value::Int(2)), 0);
  EXPECT_EQ(*Value::SqlCompare(Value::String("b"), Value::String("a")), 1);
  EXPECT_FALSE(Value::SqlCompare(Value::Null(), Value::Int(1)).ok());
  EXPECT_FALSE(Value::SqlCompare(Value::String("x"), Value::Int(1)).ok());
}

TEST(ValueTest, Arithmetic) {
  EXPECT_EQ(*Value::Add(Value::Int(2), Value::Int(3)), Value::Int(5));
  EXPECT_EQ(*Value::Subtract(Value::Int(2), Value::Int(3)), Value::Int(-1));
  EXPECT_EQ(*Value::Multiply(Value::Int(4), Value::Int(3)), Value::Int(12));
  EXPECT_EQ(*Value::Divide(Value::Int(3), Value::Int(2)),
            Value::Double(1.5));
  EXPECT_EQ(*Value::Add(Value::Int(1), Value::Double(0.5)),
            Value::Double(1.5));
}

TEST(ValueTest, ArithmeticNullPropagates) {
  EXPECT_TRUE(Value::Add(Value::Null(), Value::Int(1))->is_null());
  EXPECT_TRUE(Value::Divide(Value::Int(1), Value::Null())->is_null());
}

TEST(ValueTest, ArithmeticErrors) {
  EXPECT_FALSE(Value::Divide(Value::Int(1), Value::Int(0)).ok());
  EXPECT_FALSE(Value::Multiply(Value::String("a"), Value::Int(2)).ok());
}

TEST(ValueTest, StringConcatenationViaAdd) {
  EXPECT_EQ(*Value::Add(Value::String("a"), Value::String("b")),
            Value::String("ab"));
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Int(1), Value::Double(1.5));
  // Cross-type ordering is by type tag (stable, for sorting rows).
  EXPECT_LT(Value::Null(), Value::Bool(false));
}

}  // namespace
}  // namespace gpml
