#ifndef GPML_GRAPH_SYMBOL_TABLE_H_
#define GPML_GRAPH_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace gpml {

/// Dense interned id of a label or property-key string within one
/// PropertyGraph. Ids are assigned in first-intern order starting at 0, so a
/// graph with <= 64 distinct labels can represent any element's label set as
/// a single uint64_t bitmask (see PropertyGraph::node_label_bits).
using Symbol = uint32_t;

inline constexpr Symbol kInvalidSymbol = 0xffffffffu;

/// Interns strings to dense Symbol ids. Built once per graph in
/// PropertyGraph::BuildIndexes and immutable afterwards, so lookups are safe
/// from concurrent matcher shards. The engine keeps two instances per graph:
/// one for labels, one for property keys — separate id spaces keep the label
/// universe dense enough for bitset representation.
class SymbolTable {
 public:
  /// Id of `s`, interning it if new.
  Symbol Intern(const std::string& s) {
    auto [it, inserted] = ids_.emplace(s, static_cast<Symbol>(names_.size()));
    if (inserted) names_.push_back(s);
    return it->second;
  }

  /// Id of `s`, or kInvalidSymbol when never interned. A pattern mentioning
  /// a label the graph does not contain resolves to kInvalidSymbol, which
  /// the compiled predicates treat as "matches no element".
  Symbol Find(const std::string& s) const {
    auto it = ids_.find(s);
    return it == ids_.end() ? kInvalidSymbol : it->second;
  }

  const std::string& name(Symbol id) const {
    return names_[static_cast<size_t>(id)];
  }
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, Symbol> ids_;
  std::vector<std::string> names_;
};

}  // namespace gpml

#endif  // GPML_GRAPH_SYMBOL_TABLE_H_
