#include "planner/stats.h"

#include <sstream>

namespace gpml {
namespace planner {

namespace {

/// One shared "no label" key so unlabeled elements still participate in the
/// label-path frequency table.
const std::string kNoLabel = "";

const std::vector<std::string>& LabelsOrNone(
    const std::vector<std::string>& labels,
    const std::vector<std::string>& none) {
  return labels.empty() ? none : labels;
}

}  // namespace

size_t GraphStats::NodeLabelCount(const std::string& label) const {
  auto it = node_label_counts.find(label);
  return it == node_label_counts.end() ? 0 : it->second;
}

size_t GraphStats::EdgeLabelCount(const std::string& label) const {
  auto it = edge_label_counts.find(label);
  return it == edge_label_counts.end() ? 0 : it->second;
}

size_t GraphStats::LabelPathCount(const std::string& src_label,
                                  const std::string& edge_label,
                                  const std::string& dst_label) const {
  auto it =
      label_path_counts.find(std::make_tuple(src_label, edge_label, dst_label));
  return it == label_path_counts.end() ? 0 : it->second;
}

size_t GraphStats::UndirectedLabelPathCount(const std::string& src_label,
                                            const std::string& edge_label,
                                            const std::string& dst_label) const {
  auto it = undirected_label_path_counts.find(
      std::make_tuple(src_label, edge_label, dst_label));
  return it == undirected_label_path_counts.end() ? 0 : it->second;
}

double GraphStats::AvgDegree(const std::string& label) const {
  auto it = degree_by_label.find(label);
  if (it == degree_by_label.end()) return AvgDegreeOverall();
  return it->second.avg_out + it->second.avg_in + it->second.avg_undirected;
}

double GraphStats::AvgDegreeOverall() const {
  if (num_nodes == 0) return 0;
  // Every edge produces two adjacency entries (forward+backward or the two
  // undirected endpoints).
  return 2.0 * static_cast<double>(num_edges) /
         static_cast<double>(num_nodes);
}

std::string GraphStats::ToString() const {
  std::ostringstream os;
  os << "graph stats: " << num_nodes << " nodes (" << num_labeled_nodes
     << " labeled), " << num_edges << " edges (" << num_labeled_edges
     << " labeled)\n";
  for (const auto& [label, count] : node_label_counts) {
    os << "  node label " << label << ": " << count;
    auto it = degree_by_label.find(label);
    if (it != degree_by_label.end()) {
      os << " (avg deg out=" << it->second.avg_out
         << " in=" << it->second.avg_in
         << " undir=" << it->second.avg_undirected << ")";
    }
    os << "\n";
  }
  for (const auto& [label, count] : edge_label_counts) {
    os << "  edge label " << label << ": " << count << "\n";
  }
  for (const auto& [key, count] : label_path_counts) {
    os << "  path (" << (std::get<0>(key).empty() ? "*" : std::get<0>(key))
       << ")-[" << (std::get<1>(key).empty() ? "*" : std::get<1>(key)) << "]->("
       << (std::get<2>(key).empty() ? "*" : std::get<2>(key))
       << "): " << count << "\n";
  }
  return os.str();
}

GraphStats ComputeStats(const PropertyGraph& g) {
  GraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_edges = g.num_edges();

  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const NodeData& nd = g.node(n);
    if (!nd.labels.empty()) ++s.num_labeled_nodes;
    for (const std::string& l : nd.labels) ++s.node_label_counts[l];
  }

  // Per-label degree accumulators keyed like node_label_counts.
  std::map<std::string, LabelDegree> degree_sums;

  const std::vector<std::string> none = {kNoLabel};
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const EdgeData& ed = g.edge(e);
    if (!ed.labels.empty()) ++s.num_labeled_edges;
    for (const std::string& l : ed.labels) ++s.edge_label_counts[l];

    const auto& u_labels = LabelsOrNone(g.node(ed.u).labels, none);
    const auto& v_labels = LabelsOrNone(g.node(ed.v).labels, none);
    const auto& e_labels = LabelsOrNone(ed.labels, none);
    for (const std::string& el : e_labels) {
      for (const std::string& ul : u_labels) {
        for (const std::string& vl : v_labels) {
          ++s.label_path_counts[std::make_tuple(ul, el, vl)];
          if (!ed.directed) {
            ++s.label_path_counts[std::make_tuple(vl, el, ul)];
            ++s.undirected_label_path_counts[std::make_tuple(ul, el, vl)];
            ++s.undirected_label_path_counts[std::make_tuple(vl, el, ul)];
          }
        }
      }
    }

    for (const std::string& ul : u_labels) {
      if (ed.directed) {
        degree_sums[ul].avg_out += 1;
      } else {
        degree_sums[ul].avg_undirected += 1;
      }
    }
    for (const std::string& vl : v_labels) {
      if (ed.directed) {
        degree_sums[vl].avg_in += 1;
      } else {
        degree_sums[vl].avg_undirected += 1;
      }
    }
  }

  for (auto& [label, sums] : degree_sums) {
    if (label == kNoLabel) continue;
    double n = static_cast<double>(s.NodeLabelCount(label));
    if (n == 0) continue;  // Edge-only label; no node denominator.
    LabelDegree d;
    d.avg_out = sums.avg_out / n;
    d.avg_in = sums.avg_in / n;
    d.avg_undirected = sums.avg_undirected / n;
    s.degree_by_label[label] = d;
  }
  return s;
}

std::shared_ptr<const GraphStats> GetStats(const PropertyGraph& g) {
  if (std::shared_ptr<const GraphStats> cached = g.stats_cache()) {
    return cached;
  }
  auto stats = std::make_shared<const GraphStats>(ComputeStats(g));
  g.set_stats_cache(stats);
  return stats;
}

}  // namespace planner
}  // namespace gpml
