// Invariants of the interned storage layer (docs/storage.md): the
// label-partitioned CSR must contain, for every (node, label) pair, exactly
// the legacy adjacency records whose edge carries the label — in the legacy
// order, which is what keeps matcher results byte-identical across
// use_csr on/off. The symbol tables, label bitsets, columnar property
// mirror, and equality seed index are all checked against the string-keyed
// originals on the paper graph, generated graphs (undirected edges,
// parallel edges, self-loops), and a graph whose label universe exceeds
// the 64-bit masks.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ast/label_expr.h"
#include "eval/engine.h"
#include "graph/generator.h"
#include "graph/graph_builder.h"
#include "graph/sample_graph.h"

namespace gpml {
namespace {

/// Legacy reference: the adjacency records of `n` whose edge carries
/// `label`, in adjacency-list order.
std::vector<Adjacency> FilteredAdjacency(const PropertyGraph& g, NodeId n,
                                         const std::string& label) {
  std::vector<Adjacency> out;
  for (const Adjacency& adj : g.adjacencies(n)) {
    if (g.edge(adj.edge).HasLabel(label)) out.push_back(adj);
  }
  return out;
}

bool SameRecords(const std::vector<Adjacency>& want, AdjSpan got) {
  if (want.size() != got.count) return false;
  for (size_t i = 0; i < want.size(); ++i) {
    const Adjacency& a = want[i];
    const Adjacency& b = got.data[i];
    if (a.edge != b.edge || a.neighbor != b.neighbor ||
        a.traversal != b.traversal) {
      return false;
    }
  }
  return true;
}

/// Every storage-layer invariant on one graph.
void CheckGraph(const PropertyGraph& g) {
  const SymbolTable& labels = g.label_symbols();

  // --- label interning: per-element symbols and bitsets match the strings.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const NodeData& nd = g.node(n);
    SymSpan syms = g.node_label_syms(n);
    ASSERT_EQ(syms.count, nd.labels.size());
    ASSERT_TRUE(std::is_sorted(syms.begin(), syms.end()));
    uint64_t bits = 0;
    for (const std::string& l : nd.labels) {
      Symbol s = labels.Find(l);
      ASSERT_NE(s, kInvalidSymbol) << l;
      EXPECT_TRUE(std::binary_search(syms.begin(), syms.end(), s)) << l;
      if (g.label_bits_usable()) bits |= uint64_t{1} << s;
    }
    if (g.label_bits_usable()) {
      EXPECT_EQ(g.node_label_bits(n), bits);
    }
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const EdgeData& ed = g.edge(e);
    SymSpan syms = g.edge_label_syms(e);
    ASSERT_EQ(syms.count, ed.labels.size());
    for (const std::string& l : ed.labels) {
      EXPECT_TRUE(std::binary_search(syms.begin(), syms.end(),
                                     labels.Find(l)))
          << l;
    }
  }

  // --- CSR ranges equal the filtered legacy adjacency for every (node,
  // label) pair, including labels absent at the node (empty range).
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    size_t bucket_total = 0;
    for (Symbol s = 0; s < labels.size(); ++s) {
      std::vector<Adjacency> want = FilteredAdjacency(g, n, labels.name(s));
      AdjSpan got = g.csr().Range(n, s);
      EXPECT_TRUE(SameRecords(want, got))
          << "node " << n << " label " << labels.name(s) << ": want "
          << want.size() << " records, got " << got.count;
      bucket_total += got.count;
    }
    // Cross-check the partition sizes: every record of a k-labeled edge
    // appears in exactly k buckets.
    size_t want_total = 0;
    for (const Adjacency& adj : g.adjacencies(n)) {
      want_total += g.edge(adj.edge).labels.size();
    }
    EXPECT_EQ(bucket_total, want_total) << "node " << n;
    // Unknown symbols yield empty ranges, never out-of-bounds.
    EXPECT_EQ(g.csr().Range(n, static_cast<Symbol>(labels.size())).count,
              0u);
  }

  // --- property columns mirror the string-keyed maps exactly.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const NodeData& nd = g.node(n);
    for (const auto& [key, value] : nd.properties) {
      EXPECT_EQ(g.GetPropertyFast(ElementRef::Node(n), key), value)
          << "node " << n << "." << key;
    }
    EXPECT_TRUE(
        g.GetPropertyFast(ElementRef::Node(n), "no_such_key").is_null());
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const EdgeData& ed = g.edge(e);
    for (const auto& [key, value] : ed.properties) {
      EXPECT_EQ(g.GetPropertyFast(ElementRef::Edge(e), key), value)
          << "edge " << e << "." << key;
    }
  }

  // --- equality seed index: for every (label, key, value) present on some
  // labeled node, the index returns exactly the scan result in ascending
  // node-id order.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const NodeData& nd = g.node(n);
    for (const std::string& label : nd.labels) {
      for (const auto& [key, value] : nd.properties) {
        std::vector<NodeId> want;
        for (NodeId m = 0; m < g.num_nodes(); ++m) {
          const NodeData& md = g.node(m);
          if (!md.HasLabel(label)) continue;
          auto it = md.properties.find(key);
          if (it != md.properties.end() && it->second == value) {
            want.push_back(m);
          }
        }
        EXPECT_EQ(g.IndexedNodes(label, key, value), want)
            << label << "." << key << " = " << value.ToString();
      }
    }
  }
  EXPECT_TRUE(g.IndexedNodes("NoSuchLabel", "k", Value::Int(1)).empty());
  EXPECT_TRUE(g.IndexedNodes("", "", Value::Null()).empty());
}

TEST(CsrIndexTest, PaperGraph) { CheckGraph(BuildPaperGraph()); }

TEST(CsrIndexTest, FraudGraph) {
  FraudGraphOptions options;
  options.num_accounts = 60;
  options.num_cities = 3;
  CheckGraph(MakeFraudGraph(options));
}

TEST(CsrIndexTest, GeneratedGraphs) {
  // Mixed directed/undirected multigraphs with parallel edges and
  // self-loops (random endpoints collide at this density).
  for (uint64_t seed : {1u, 2u, 3u, 7u}) {
    CheckGraph(MakeRandomGraph(/*num_nodes=*/8, /*num_edges=*/40,
                               /*num_labels=*/3,
                               /*undirected_fraction=*/0.4, seed));
  }
  CheckGraph(MakeChainGraph(12));
  CheckGraph(MakeDiamondChain(3));
}

TEST(CsrIndexTest, SelfLoopsAndParallelEdges) {
  GraphBuilder b;
  b.AddNode("a", {"A", "B"}, {{"w", Value::Int(1)}});
  b.AddNode("b", {"A"}, {{"w", Value::Int(1)}});
  b.AddDirectedEdge("d1", "a", "a", {"T"});             // Directed self-loop.
  b.AddUndirectedEdge("u1", "b", "b", {"T", "S"});      // Undirected loop.
  b.AddDirectedEdge("d2", "a", "b", {"T"});             // Parallel pair...
  b.AddDirectedEdge("d3", "a", "b", {"T"});
  b.AddUndirectedEdge("u2", "a", "b", {"S"});
  b.AddDirectedEdge("plain", "a", "b", {});             // Label-less.
  PropertyGraph g = std::move(b).Build().value();
  CheckGraph(g);

  // The directed self-loop contributes forward and backward records to one
  // bucket; the undirected loop exactly one record.
  NodeId a = g.FindNode("a");
  NodeId bn = g.FindNode("b");
  Symbol t = g.label_symbols().Find("T");
  Symbol s = g.label_symbols().Find("S");
  EXPECT_EQ(g.csr().Range(a, t).count, 4u);  // d1 fwd+bwd, d2, d3.
  EXPECT_EQ(g.csr().Range(bn, t).count, 3u);  // u1 once, d2+d3 backward.
  EXPECT_EQ(g.csr().Range(a, s).count, 1u);
  EXPECT_EQ(g.csr().Range(bn, s).count, 2u);  // u1 + u2.
}

TEST(CsrIndexTest, CompiledLabelPredsAgreeWithStringMatching) {
  PropertyGraph g = MakeRandomGraph(10, 30, 4, 0.3, /*seed=*/5);
  const SymbolTable& labels = g.label_symbols();
  ASSERT_TRUE(g.label_bits_usable());

  std::vector<LabelExprPtr> exprs = {
      nullptr,
      LabelExpr::Name("L0"),
      LabelExpr::Name("Unknown"),
      LabelExpr::Wildcard(),
      LabelExpr::And(LabelExpr::Name("L0"), LabelExpr::Name("L1")),
      LabelExpr::Or(LabelExpr::Name("L0"), LabelExpr::Name("L2")),
      LabelExpr::Or(LabelExpr::Name("Unknown"), LabelExpr::Name("L1")),
      LabelExpr::Not(LabelExpr::Name("L0")),
      LabelExpr::Not(LabelExpr::Wildcard()),
      LabelExpr::And(LabelExpr::Not(LabelExpr::Name("L0")),
                     LabelExpr::Or(LabelExpr::Name("L1"),
                                   LabelExpr::Name("L2"))),
      LabelExpr::Or(LabelExpr::And(LabelExpr::Name("L0"),
                                   LabelExpr::Name("Unknown")),
                    LabelExpr::Not(LabelExpr::Name("L3"))),
  };
  for (bool use_bits : {true, false}) {
    for (const LabelExprPtr& expr : exprs) {
      CompiledLabelPred pred =
          CompiledLabelPred::Compile(expr, labels, use_bits);
      for (NodeId n = 0; n < g.num_nodes(); ++n) {
        SymSpan syms = g.node_label_syms(n);
        bool want = expr == nullptr || expr->Matches(g.node(n).labels);
        EXPECT_EQ(pred.Matches(use_bits ? g.node_label_bits(n) : 0,
                               syms.data, syms.count),
                  want)
            << (expr ? expr->ToString() : "<null>") << " on node " << n
            << " bits=" << use_bits;
      }
    }
  }
}

TEST(CsrIndexTest, LabelUniverseBeyondBitsetStillExact) {
  // 70 distinct labels: the bitset representation is unusable and every
  // path (predicates, CSR, seeding) must fall back to symbol arrays.
  GraphBuilder b;
  const int kNodes = 70;
  for (int i = 0; i < kNodes; ++i) {
    b.AddNode("n" + std::to_string(i),
              {"L" + std::to_string(i), "Common"},
              {{"w", Value::Int(i % 7)}});
  }
  for (int i = 0; i < kNodes; ++i) {
    b.AddDirectedEdge("e" + std::to_string(i), "n" + std::to_string(i),
                      "n" + std::to_string((i + 1) % kNodes),
                      {"E" + std::to_string(i % 5)});
  }
  PropertyGraph g = std::move(b).Build().value();
  ASSERT_FALSE(g.label_bits_usable());
  CheckGraph(g);

  // End-to-end through the engine: the conjunction must match and results
  // agree between the CSR path and the legacy oracle.
  const std::string q =
      "MATCH (x:L3&Common)-[:E3]->(y:Common WHERE y.w < 5)";
  EngineOptions on;
  EngineOptions off;
  off.use_csr = false;
  Result<MatchOutput> rows_on = Engine(g, on).Match(q);
  Result<MatchOutput> rows_off = Engine(g, off).Match(q);
  ASSERT_TRUE(rows_on.ok());
  ASSERT_TRUE(rows_off.ok());
  EXPECT_EQ(rows_on->rows.size(), 1u);
  EXPECT_EQ(rows_off->rows.size(), 1u);
}

TEST(CsrIndexTest, ConjunctionSeedsFromMostSelectiveConjunct) {
  // Paper graph: 2 Country nodes, 1 City node (c2 is City & Country). The
  // conjunction must seed from the City index (1 node), not all nodes.
  PropertyGraph g = BuildPaperGraph();
  EngineMetrics metrics;
  EngineOptions options;
  options.use_planner = false;  // Exercise the matcher's own seeding rule.
  options.metrics = &metrics;
  Engine engine(g, options);
  Result<MatchOutput> out = engine.Match("MATCH (x:City&Country)");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 1u);
  EXPECT_EQ(metrics.seeded_nodes, 1u);

  // The planner's estimate mirrors the same rule (EXPLAIN seeds~1).
  EngineOptions planned;
  planned.metrics = &metrics;
  Result<MatchOutput> out2 =
      Engine(g, planned).Match("MATCH (x:City&Country)");
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->rows.size(), 1u);
  EXPECT_EQ(metrics.seeded_nodes, 1u);
}

TEST(CsrIndexTest, SymbolTableRoundtrip) {
  SymbolTable t;
  EXPECT_EQ(t.Find("x"), kInvalidSymbol);
  Symbol a = t.Intern("alpha");
  Symbol b = t.Intern("beta");
  EXPECT_EQ(t.Intern("alpha"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Find("alpha"), a);
  EXPECT_EQ(t.name(b), "beta");
  EXPECT_EQ(t.size(), 2u);
}

}  // namespace
}  // namespace gpml
