#include "semantics/normalize.h"

#include <gtest/gtest.h>

#include "ast/print.h"
#include "parser/parser.h"

namespace gpml {
namespace {

GraphPattern ParseAndNormalize(const std::string& text) {
  Result<GraphPattern> g = ParseGraphPattern(text);
  EXPECT_TRUE(g.ok()) << g.status();
  Result<GraphPattern> n = Normalize(*g);
  EXPECT_TRUE(n.ok()) << n.status();
  return *n;
}

const PathPattern& P(const GraphPattern& g, size_t i = 0) {
  return *g.paths[i].pattern;
}

TEST(NormalizeTest, AnonymousVarHelpers) {
  EXPECT_TRUE(IsAnonymousVar("$n1"));
  EXPECT_TRUE(IsAnonymousNodeVar("$n1"));
  EXPECT_FALSE(IsAnonymousEdgeVar("$n1"));
  EXPECT_TRUE(IsAnonymousEdgeVar("$e2"));
  EXPECT_FALSE(IsAnonymousVar("x"));
}

TEST(NormalizeTest, BareEdgeGetsBothNodes) {
  GraphPattern g = ParseAndNormalize("MATCH -[e:Transfer]->");
  const PathPattern& p = P(g);
  ASSERT_EQ(p.elements.size(), 3u);
  EXPECT_EQ(p.elements[0].kind, PathElement::Kind::kNode);
  EXPECT_TRUE(IsAnonymousNodeVar(p.elements[0].node.var));
  EXPECT_EQ(p.elements[1].kind, PathElement::Kind::kEdge);
  EXPECT_EQ(p.elements[1].edge.var, "e");
  EXPECT_EQ(p.elements[2].kind, PathElement::Kind::kNode);
  EXPECT_TRUE(IsAnonymousNodeVar(p.elements[2].node.var));
}

TEST(NormalizeTest, AdjacentEdgesGetMiddleNode) {
  GraphPattern g = ParseAndNormalize("MATCH (x)->->(y)");
  const PathPattern& p = P(g);
  ASSERT_EQ(p.elements.size(), 5u);
  EXPECT_EQ(p.elements[2].kind, PathElement::Kind::kNode);
  EXPECT_TRUE(IsAnonymousNodeVar(p.elements[2].node.var));
}

TEST(NormalizeTest, AnonymousEdgeGetsVariable) {
  GraphPattern g = ParseAndNormalize("MATCH (x)-[:Transfer]->(y)");
  const PathPattern& p = P(g);
  EXPECT_TRUE(IsAnonymousEdgeVar(p.elements[1].edge.var));
  // The label survives.
  EXPECT_EQ(p.elements[1].edge.labels->ToString(), "Transfer");
}

TEST(NormalizeTest, Section62RunningExample) {
  // §6.2: the quantified bare edge gains anonymous nodes inside the
  // brackets; the union alternatives gain leading anonymous nodes.
  GraphPattern g = ParseAndNormalize(
      "MATCH TRAIL (a WHERE a.owner='Jay')"
      "[-[b:Transfer WHERE b.amount>5M]->]+"
      "(a) [-[:isLocatedIn]->(c:City) | -[:isLocatedIn]->(c:Country)]");
  const PathPattern& p = P(g);
  ASSERT_EQ(p.elements.size(), 4u);

  // Element 1: the quantified pattern, sub = ($ni)-[b]->($nii).
  const PathElement& q = p.elements[1];
  ASSERT_EQ(q.kind, PathElement::Kind::kQuantified);
  EXPECT_EQ(q.min, 1u);
  EXPECT_FALSE(q.max.has_value());
  ASSERT_EQ(q.sub->elements.size(), 3u);
  EXPECT_TRUE(IsAnonymousNodeVar(q.sub->elements[0].node.var));
  EXPECT_EQ(q.sub->elements[1].edge.var, "b");
  EXPECT_TRUE(IsAnonymousNodeVar(q.sub->elements[2].node.var));

  // Element 3: the union; each branch starts with an anonymous node.
  const PathElement& u = p.elements[3];
  ASSERT_EQ(u.kind, PathElement::Kind::kParen);
  ASSERT_EQ(u.sub->kind, PathPattern::Kind::kUnion);
  for (const auto& alt : u.sub->alternatives) {
    ASSERT_EQ(alt->elements.size(), 3u);
    EXPECT_TRUE(IsAnonymousNodeVar(alt->elements[0].node.var));
    EXPECT_TRUE(IsAnonymousEdgeVar(alt->elements[1].edge.var));
    EXPECT_EQ(alt->elements[2].node.var, "c");
  }
}

TEST(NormalizeTest, FreshVariablesAreUnique) {
  GraphPattern g = ParseAndNormalize("MATCH ()-[:A]->()-[:B]->()");
  std::vector<std::string> names;
  for (const PathElement& e : P(g).elements) {
    names.push_back(e.kind == PathElement::Kind::kNode ? e.node.var
                                                       : e.edge.var);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end())
      << "duplicate fresh variable";
}

TEST(NormalizeTest, PreservesDeclHeaders) {
  GraphPattern g = ParseAndNormalize(
      "MATCH ALL SHORTEST TRAIL p = (a)-[t:Transfer]->*(b)");
  EXPECT_EQ(g.paths[0].selector.kind, Selector::Kind::kAllShortest);
  EXPECT_EQ(g.paths[0].restrictor, Restrictor::kTrail);
  EXPECT_EQ(g.paths[0].path_var, "p");
}

TEST(NormalizeTest, PreservesPostfilter) {
  GraphPattern g = ParseAndNormalize("MATCH (x) WHERE x.a=1");
  ASSERT_NE(g.where, nullptr);
  EXPECT_EQ(g.where->ToString(), "x.a = 1");
}

TEST(NormalizeTest, NormalizationIsIdempotent) {
  GraphPattern once = ParseAndNormalize(
      "MATCH (a)[-[b:Transfer]->]+(a)[->(c:City) | ->(c:Country)]");
  Result<GraphPattern> twice = Normalize(once);
  ASSERT_TRUE(twice.ok());
  // Same shape: printing both gives identical text except possibly fresh
  // variable numbering, so compare element counts recursively via Print.
  EXPECT_EQ(Print(*once.paths[0].pattern).size(),
            Print(*twice->paths[0].pattern).size());
}

TEST(NormalizeTest, QuantifiedParenKeepsWhereAndRestrictor) {
  GraphPattern g = ParseAndNormalize(
      "MATCH [TRAIL (x)-[e:T]->(y) WHERE e.w>1]{2,3}");
  const PathElement& q = P(g).elements[0];
  EXPECT_EQ(q.kind, PathElement::Kind::kQuantified);
  EXPECT_EQ(q.restrictor, Restrictor::kTrail);
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.min, 2u);
}

}  // namespace
}  // namespace gpml
