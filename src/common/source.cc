#include "common/source.h"

#include <algorithm>
#include <cctype>

namespace gpml {

SourceSpan SourceSpan::Merge(const SourceSpan& other) const {
  if (!valid()) return other;
  if (!other.valid()) return *this;
  return SourceSpan{std::min(begin, other.begin), std::max(end, other.end)};
}

std::string RenderSourceSnippet(const std::string& source, size_t begin,
                                size_t end) {
  if (source.empty()) return "";
  begin = std::min(begin, source.size());
  end = std::min(std::max(end, begin), source.size());

  // The line containing `begin` (a marker at end-of-input points past the
  // last line; back up onto it so the snippet still shows context).
  size_t anchor = begin < source.size() ? begin : source.size() - 1;
  if (source[anchor] == '\n' && anchor > 0) --anchor;
  size_t line_start = source.rfind('\n', anchor);
  line_start = line_start == std::string::npos ? 0 : line_start + 1;
  size_t line_end = source.find('\n', line_start);
  if (line_end == std::string::npos) line_end = source.size();

  std::string line = source.substr(line_start, line_end - line_start);
  std::string caret;
  size_t col = begin >= line_start ? begin - line_start : 0;
  col = std::min(col, line.size());
  for (size_t i = 0; i < col; ++i) {
    // Preserve tabs so the caret lines up under the source text.
    caret.push_back(line[i] == '\t' ? '\t' : ' ');
  }
  caret.push_back('^');
  size_t span_end = end > begin ? std::min(end - line_start, line.size())
                                : col + 1;
  for (size_t i = col + 1; i < span_end; ++i) caret.push_back('~');
  return "  " + line + "\n  " + caret;
}

bool FindOffsetMarker(const std::string& message, size_t* offset) {
  static const char kMarker[] = "offset=";
  size_t at = message.find(kMarker);
  if (at == std::string::npos) return false;
  size_t pos = at + sizeof(kMarker) - 1;
  if (pos >= message.size() ||
      !std::isdigit(static_cast<unsigned char>(message[pos]))) {
    return false;
  }
  size_t value = 0;
  while (pos < message.size() &&
         std::isdigit(static_cast<unsigned char>(message[pos]))) {
    value = value * 10 + static_cast<size_t>(message[pos] - '0');
    ++pos;
  }
  *offset = value;
  return true;
}

Status AttachSnippet(const Status& st, const std::string& source) {
  if (st.ok()) return st;
  size_t offset = 0;
  if (!FindOffsetMarker(st.message(), &offset)) return st;
  if (st.message().find('\n') != std::string::npos) return st;  // Already has one.
  std::string snippet = RenderSourceSnippet(source, offset, offset);
  if (snippet.empty()) return st;
  return Status(st.code(), st.message() + "\n" + snippet);
}

}  // namespace gpml
