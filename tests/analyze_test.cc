#include "semantics/analyze.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "semantics/normalize.h"

namespace gpml {
namespace {

Result<Analysis> AnalyzeText(const std::string& text) {
  GPML_ASSIGN_OR_RETURN(GraphPattern g, ParseGraphPattern(text));
  GPML_ASSIGN_OR_RETURN(GraphPattern n, Normalize(g));
  return Analyze(n);
}

Analysis MustAnalyze(const std::string& text) {
  Result<Analysis> a = AnalyzeText(text);
  EXPECT_TRUE(a.ok()) << text << " -> " << a.status();
  return a.ok() ? *a : Analysis{};
}

TEST(AnalyzeTest, KindsOfVariables) {
  Analysis a = MustAnalyze("MATCH p = (x)-[e:Transfer]->(y)");
  EXPECT_EQ(a.Get("x").kind, VarInfo::Kind::kNode);
  EXPECT_EQ(a.Get("e").kind, VarInfo::Kind::kEdge);
  EXPECT_EQ(a.Get("p").kind, VarInfo::Kind::kPath);
  EXPECT_FALSE(a.Get("x").group);
  EXPECT_FALSE(a.Get("x").conditional);
}

TEST(AnalyzeTest, ConflictingKindsRejected) {
  Result<Analysis> a = AnalyzeText("MATCH (x)-[x]->(y)");
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kSemanticError);
}

TEST(AnalyzeTest, PathAndElementKindsConflict) {
  EXPECT_FALSE(AnalyzeText("MATCH p = (p)-[e]->(y)").ok());
}

TEST(AnalyzeTest, GroupVariablesUnderQuantifier) {
  Analysis a =
      MustAnalyze("MATCH (a) [()-[t:Transfer]->()]{2,5} (b)");
  EXPECT_TRUE(a.Get("t").group);
  EXPECT_EQ(a.Get("t").depth, 1);
  EXPECT_FALSE(a.Get("a").group);
}

TEST(AnalyzeTest, DeclaredInsideAndOutsideQuantifierRejected) {
  Result<Analysis> a = AnalyzeText("MATCH (a) [(a)-[t]->()]{1,3} (b)");
  EXPECT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("inside and outside"),
            std::string::npos);
}

TEST(AnalyzeTest, ConditionalSingletonsFromUnion) {
  // §4.6: x unconditional, y and z conditional.
  Analysis a = MustAnalyze("MATCH [(x)->(y)] | [(x)->(z)]");
  EXPECT_FALSE(a.Get("x").conditional);
  EXPECT_TRUE(a.Get("y").conditional);
  EXPECT_TRUE(a.Get("z").conditional);
}

TEST(AnalyzeTest, ConditionalSingletonsFromQuestionMark) {
  Analysis a = MustAnalyze("MATCH (x) [->(y)]?");
  EXPECT_FALSE(a.Get("x").conditional);
  EXPECT_TRUE(a.Get("y").conditional);
  // `?` does not make y a group variable (§4.6).
  EXPECT_FALSE(a.Get("y").group);
}

TEST(AnalyzeTest, QuantifierZeroOneMakesGroup) {
  // {0,1} exposes variables as group, unlike `?` (§4.6).
  Analysis a = MustAnalyze("MATCH (x) [->(y)]{0,1}");
  EXPECT_TRUE(a.Get("y").group);
}

TEST(AnalyzeTest, IllegalEquiJoinOnConditionalSingleton) {
  // §4.6's illegal query.
  Result<Analysis> a =
      AnalyzeText("MATCH [(x)->(y)] | [(x)->(z)], (y)->(w)");
  EXPECT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("conditional singleton"),
            std::string::npos);
}

TEST(AnalyzeTest, JoinOnUnconditionalAcrossDeclsAllowed) {
  EXPECT_TRUE(AnalyzeText("MATCH (x)->(y), (y)->(z)").ok());
}

TEST(AnalyzeTest, SameUnionVariableInBothBranchesAllowed) {
  // c is declared in every branch: unconditional despite the union.
  Analysis a = MustAnalyze("MATCH (a)[->(c:City) | ->(c:Country)]");
  EXPECT_FALSE(a.Get("c").conditional);
}

TEST(AnalyzeTest, UndeclaredVariableInPostfilter) {
  Result<Analysis> a = AnalyzeText("MATCH (x) WHERE ghost.a = 1");
  EXPECT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("undeclared"), std::string::npos);
}

TEST(AnalyzeTest, GroupReferenceWithoutAggregateRejected) {
  Result<Analysis> a =
      AnalyzeText("MATCH (a)[()-[t]->()]{1,3}(b) WHERE t.amount > 1");
  EXPECT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("group variable"), std::string::npos);
}

TEST(AnalyzeTest, GroupReferenceUnderAggregateAllowed) {
  EXPECT_TRUE(
      AnalyzeText("MATCH (a)[()-[t]->()]{1,3}(b) WHERE SUM(t.amount) > 1")
          .ok());
}

TEST(AnalyzeTest, SingletonReferenceInsideIterationAllowed) {
  // §4.4: inside the quantifier, t is a singleton reference.
  EXPECT_TRUE(
      AnalyzeText(
          "MATCH (a)[()-[t:Transfer]->() WHERE t.amount>1M]{2,5}(b)")
          .ok());
}

TEST(AnalyzeTest, AggregateInInlinePredicateRejected) {
  Result<Analysis> a =
      AnalyzeText("MATCH (x WHERE COUNT(x.*) > 1)");
  EXPECT_FALSE(a.ok());
}

TEST(AnalyzeTest, SameRequiresUnconditionalSingletons) {
  Result<Analysis> a =
      AnalyzeText("MATCH (x)[->(y)]?, (z)->(w) WHERE SAME(x, y)");
  EXPECT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("conditional"), std::string::npos);
}

TEST(AnalyzeTest, SameOnGroupVariableRejected) {
  Result<Analysis> a =
      AnalyzeText("MATCH (a)[()-[t]->()]{1,2}(b) WHERE SAME(a, t)");
  EXPECT_FALSE(a.ok());
  EXPECT_NE(a.status().message().find("group"), std::string::npos);
}

TEST(AnalyzeTest, AllDifferentOnSingletonsAllowed) {
  EXPECT_TRUE(
      AnalyzeText("MATCH (x)->(y)->(z) WHERE ALL_DIFFERENT(x, y, z)").ok());
}

TEST(AnalyzeTest, AnonymousVariablesTracked) {
  Analysis a = MustAnalyze("MATCH (x)-[:T]->(y)");
  int anonymous = 0;
  for (const auto& [name, info] : a.variables()) {
    if (info.anonymous) ++anonymous;
  }
  EXPECT_EQ(anonymous, 1) << "the anonymous edge variable";
}

TEST(AnalyzeTest, DeclIndicesRecorded) {
  Analysis a = MustAnalyze("MATCH (x)->(y), (y)->(z)");
  EXPECT_EQ(a.Get("y").decls.size(), 2u);
  EXPECT_EQ(a.Get("x").decls.size(), 1u);
}

}  // namespace
}  // namespace gpml
