#ifndef GPML_GRAPH_GENERATOR_H_
#define GPML_GRAPH_GENERATOR_H_

#include <cstdint>

#include "graph/property_graph.h"

namespace gpml {

/// Synthetic workload graphs for benchmarks and property tests. The paper
/// has no public testbed, so these generators provide the controlled
/// topologies that each language feature stresses: chains and cycles for
/// quantifiers, dense graphs for restrictor blow-up, diamond chains for
/// exponential path counts, and a scaled clone of the Figure 1 banking
/// schema for the end-to-end fraud queries.

/// n nodes labelled Account in a directed Transfer chain v0->v1->...->v(n-1).
/// Node i carries owner "u<i>", amount on each edge alternates 4M/10M so
/// amount predicates select half the edges.
PropertyGraph MakeChainGraph(int n);

/// Like MakeChainGraph but closing the loop v(n-1)->v0.
PropertyGraph MakeCycleGraph(int n);

/// Complete directed graph on n Account nodes (no self-loops): n*(n-1)
/// Transfer edges. TRAIL/ACYCLIC enumeration on this is the worst case.
PropertyGraph MakeCompleteGraph(int n);

/// Chain of k diamonds: each diamond splits into two parallel 2-edge
/// branches and refolds, so the number of distinct shortest source-to-sink
/// paths is 2^k. Exercises ALL SHORTEST and deduplication.
PropertyGraph MakeDiamondChain(int k);

/// w*h grid with directed "right" and "down" Transfer edges; classic
/// many-shortest-paths topology (C(w+h-2, w-1) shortest paths corner to
/// corner).
PropertyGraph MakeGridGraph(int w, int h);

/// Parameters for the scaled banking graph (Figure 1's schema at size).
struct FraudGraphOptions {
  int num_accounts = 1000;
  int transfers_per_account = 4;   // Average out-degree of Transfer edges.
  int num_cities = 10;
  int num_phones_per_100 = 60;     // Phones per 100 accounts (shared).
  double blocked_fraction = 0.1;   // Fraction of blocked accounts.
  uint64_t seed = 42;
};

/// Scaled synthetic clone of the Figure 1 banking graph: Account nodes with
/// owner/isBlocked, City/Country nodes, shared Phones (undirected hasPhone),
/// IPs (signInWithIP), and Transfer edges with date/amount properties.
/// Used by the Figure 4 fraud-query benchmarks and the differential tests.
PropertyGraph MakeFraudGraph(const FraudGraphOptions& options);

/// Uniformly random mixed multigraph: `num_edges` edges between random
/// endpoint pairs, a fraction undirected, labels drawn from a small
/// alphabet (L0..L<num_labels-1>), integer property "w" in [0, 100).
/// Deterministic in `seed`; used by the differential/property tests.
PropertyGraph MakeRandomGraph(int num_nodes, int num_edges, int num_labels,
                              double undirected_fraction, uint64_t seed);

}  // namespace gpml

#endif  // GPML_GRAPH_GENERATOR_H_
