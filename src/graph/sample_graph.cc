#include "graph/sample_graph.h"

#include "graph/graph_builder.h"

namespace gpml {

namespace {

constexpr int64_t kMillion = 1'000'000;

}  // namespace

PropertyGraph BuildPaperGraph() {
  GraphBuilder b;

  auto account = [&](const std::string& id, const std::string& owner,
                     bool blocked) {
    b.AddNode(id, {"Account"},
              {{"owner", Value::String(owner)},
               {"isBlocked", Value::String(blocked ? "yes" : "no")}});
  };
  account("a1", "Scott", false);
  account("a2", "Aretha", false);
  account("a3", "Mike", false);
  account("a4", "Jay", true);
  account("a5", "Charles", false);
  account("a6", "Dave", false);

  b.AddNode("c1", {"Country"}, {{"name", Value::String("Zembla")}});
  b.AddNode("c2", {"City", "Country"},
            {{"name", Value::String("Ankh-Morpork")}});

  auto phone = [&](const std::string& id, int64_t number) {
    b.AddNode(id, {"Phone"},
              {{"number", Value::Int(number)},
               {"isBlocked", Value::String("no")}});
  };
  phone("p1", 111);
  phone("p2", 222);
  phone("p3", 333);
  phone("p4", 444);

  b.AddNode("ip1", {"IP"},
            {{"number", Value::String("123.111")},
             {"isBlocked", Value::String("no")}});
  b.AddNode("ip2", {"IP"},
            {{"number", Value::String("123.222")},
             {"isBlocked", Value::String("no")}});

  auto transfer = [&](const std::string& id, const std::string& from,
                      const std::string& to, const std::string& date,
                      int64_t millions) {
    b.AddDirectedEdge(id, from, to, {"Transfer"},
                      {{"date", Value::String(date)},
                       {"amount", Value::Int(millions * kMillion)}});
  };
  transfer("t1", "a1", "a3", "1/1/2020", 8);
  transfer("t2", "a3", "a2", "2/1/2020", 10);
  transfer("t3", "a2", "a4", "3/1/2020", 10);
  transfer("t4", "a4", "a6", "4/1/2020", 10);
  transfer("t5", "a6", "a3", "6/1/2020", 10);
  transfer("t6", "a6", "a5", "7/1/2020", 4);
  transfer("t7", "a3", "a5", "8/1/2020", 6);
  transfer("t8", "a5", "a1", "9/1/2020", 9);

  b.AddDirectedEdge("li1", "a1", "c1", {"isLocatedIn"});
  b.AddDirectedEdge("li2", "a2", "c2", {"isLocatedIn"});
  b.AddDirectedEdge("li3", "a3", "c1", {"isLocatedIn"});
  b.AddDirectedEdge("li4", "a4", "c2", {"isLocatedIn"});
  b.AddDirectedEdge("li5", "a5", "c1", {"isLocatedIn"});
  b.AddDirectedEdge("li6", "a6", "c2", {"isLocatedIn"});

  b.AddUndirectedEdge("hp1", "a1", "p1", {"hasPhone"});
  b.AddUndirectedEdge("hp2", "a2", "p2", {"hasPhone"});
  b.AddUndirectedEdge("hp3", "a3", "p2", {"hasPhone"});
  b.AddUndirectedEdge("hp4", "a4", "p3", {"hasPhone"});
  b.AddUndirectedEdge("hp5", "a5", "p1", {"hasPhone"});
  b.AddUndirectedEdge("hp6", "a6", "p4", {"hasPhone"});

  b.AddDirectedEdge("sip1", "a1", "ip1", {"signInWithIP"});
  b.AddDirectedEdge("sip2", "a5", "ip2", {"signInWithIP"});

  Result<PropertyGraph> g = std::move(b).Build();
  // The fixture is internally consistent by construction.
  return std::move(g).value();
}

}  // namespace gpml
