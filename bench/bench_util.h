#ifndef GPML_BENCH_BENCH_UTIL_H_
#define GPML_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "eval/engine.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"

namespace gpml {
namespace bench {

/// Runs a match and returns the row count; aborts on error so benchmarks
/// fail loudly instead of measuring garbage.
inline size_t RunOrDie(const PropertyGraph& g, const std::string& query,
                       EngineOptions options = {}) {
  Engine engine(g, options);
  Result<MatchOutput> out = engine.Match(query);
  if (!out.ok()) {
    std::fprintf(stderr, "benchmark query failed: %s\n  %s\n", query.c_str(),
                 out.status().ToString().c_str());
    std::abort();
  }
  return out->rows.size();
}

}  // namespace bench
}  // namespace gpml

#endif  // GPML_BENCH_BENCH_UTIL_H_
