// E2 (Figure 2): SQL/PGQ graph views — cost of materializing a property
// graph from its tabular representation, as table sizes grow.

#include <benchmark/benchmark.h>

#include "pgq/graph_view.h"

namespace gpml {
namespace {

/// Builds scaled Account/Transfer tables (the Figure 2 schema at size n).
void InstallScaledTables(Catalog& catalog, int n) {
  Table accounts{Schema({{"ID", ValueType::kString, false},
                         {"owner", ValueType::kString, true},
                         {"isBlocked", ValueType::kString, true}})};
  for (int i = 0; i < n; ++i) {
    accounts.AppendUnchecked({Value::String("a" + std::to_string(i)),
                              Value::String("u" + std::to_string(i)),
                              Value::String(i % 10 == 0 ? "yes" : "no")});
  }
  (void)catalog.AddTable("Account", std::move(accounts));

  Table transfers{Schema({{"ID", ValueType::kString, false},
                          {"A_ID1", ValueType::kString, false},
                          {"A_ID2", ValueType::kString, false},
                          {"amount", ValueType::kInt, true}})};
  for (int i = 0; i < 4 * n; ++i) {
    transfers.AppendUnchecked(
        {Value::String("t" + std::to_string(i)),
         Value::String("a" + std::to_string((i * 37) % n)),
         Value::String("a" + std::to_string((i * 61 + 13) % n)),
         Value::Int((i % 12 + 1) * 1'000'000)});
  }
  (void)catalog.AddTable("Transfer", std::move(transfers));
}

GraphViewDef ScaledDef() {
  GraphViewDef def;
  def.name = "g";
  def.nodes = {{"Account", "ID", {"Account"}, {}}};
  def.edges = {{"Transfer", "ID", "A_ID1", "A_ID2", true, {"Transfer"}, {}}};
  return def;
}

void BM_MaterializeScaledView(benchmark::State& state) {
  Catalog catalog;
  InstallScaledTables(catalog, static_cast<int>(state.range(0)));
  GraphViewDef def = ScaledDef();
  for (auto _ : state) {
    Result<PropertyGraph> g = MaterializeGraphView(catalog, def);
    if (!g.ok()) std::abort();
    benchmark::DoNotOptimize(g->num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 5);
}
BENCHMARK(BM_MaterializeScaledView)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MaterializePaperTables(benchmark::State& state) {
  Catalog catalog;
  Result<GraphViewDef> def = InstallPaperTables(catalog);
  if (!def.ok()) std::abort();
  for (auto _ : state) {
    Result<PropertyGraph> g = MaterializeGraphView(catalog, *def);
    if (!g.ok()) std::abort();
    benchmark::DoNotOptimize(g->num_nodes());
  }
}
BENCHMARK(BM_MaterializePaperTables);

}  // namespace
}  // namespace gpml
