#ifndef GPML_OBS_PROMETHEUS_H_
#define GPML_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace gpml {
namespace obs {

/// Renders a metrics snapshot in the Prometheus text exposition format —
/// the exact payload a server's /metrics endpoint returns:
///
///   # TYPE gpml_plan_cache_hits_total counter
///   gpml_plan_cache_hits_total 42
///   # TYPE gpml_stage_duration_us histogram
///   gpml_stage_duration_us_bucket{stage="match",le="1"} 0
///   ...
///   gpml_stage_duration_us_bucket{stage="match",le="+Inf"} 7
///   gpml_stage_duration_us_sum{stage="match"} 1234
///   gpml_stage_duration_us_count{stage="match"} 7
///
/// Registry names of the form `base{key="value",...}` render the label
/// block verbatim (histograms splice the cumulative `le` label in); one
/// `# TYPE` line is emitted per base name, before its first series.
/// Output order follows the snapshot's name order, so it is deterministic.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// Snapshot-and-render convenience for one registry.
std::string RenderPrometheus(const MetricsRegistry& registry);

/// Splits a registry metric name into its base and its label block
/// (without braces; empty when the name carries no labels). Exposed for
/// the renderer's tests.
void SplitMetricName(const std::string& name, std::string* base,
                     std::string* labels);

}  // namespace obs
}  // namespace gpml

#endif  // GPML_OBS_PROMETHEUS_H_
