// Seed-partitioned parallel execution: num_threads ∈ {1, 2, 8} crossed with
// use_planner ∈ {on, off} must produce results byte-identical to the
// sequential engine — same rows in the same order — on the Figure 2–4
// workloads (the paper graph of Figure 2 with the basic patterns of
// Figure 3 and the fraud queries of Figure 4, plus the scaled fraud and
// random generator graphs). Single-declaration workloads are additionally
// checked against the §6 reference evaluator, the ground truth the
// sequential engine is differential-tested against. Also covers the shared
// resource budget: one atomic max_steps/max_matches budget spans all shards,
// so a parallel run cannot execute N× the configured limits, and the
// sequential path still trips at exactly the historical instruction.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/engine.h"
#include "eval/reference_eval.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"
#include "parser/parser.h"
#include "semantics/normalize.h"

namespace gpml {
namespace {

/// Canonical order-preserving rendering of a MatchOutput: one string per
/// row, bindings in declaration order. Two runs agree iff these sequences
/// are equal element-for-element (row order included).
std::vector<std::string> CanonRows(const MatchOutput& out,
                                   const PropertyGraph& g) {
  std::vector<std::string> rows;
  rows.reserve(out.rows.size());
  for (const ResultRow& row : out.rows) {
    std::string s;
    for (const auto& pb : row.bindings) {
      s += pb->ToString(g, *out.vars);
      for (int32_t t : pb->tags) s += " #" + std::to_string(t);
      s += " | ";
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

Result<MatchOutput> RunQuery(const PropertyGraph& g, const std::string& query,
                        size_t num_threads, bool use_planner,
                        EngineMetrics* metrics = nullptr) {
  EngineOptions options;
  options.num_threads = num_threads;
  options.use_planner = use_planner;
  options.metrics = metrics;
  // Force fan-out even on tiny test graphs (the default threshold keeps
  // short seed lists sequential as a latency guard).
  options.matcher.min_seeds_per_shard = 1;
  Engine engine(g, options);
  return engine.Match(query);
}

/// The workload family: Figure 3 basic patterns, the Figure 4 fraud queries
/// (both BFS/selector and DFS routes), quantifiers, restrictors, unions,
/// multiset alternation, match modes, and multi-declaration joins.
const char* kWorkloads[] = {
    // Figure 3: node / edge patterns with inline predicates.
    "MATCH (x:Account WHERE x.isBlocked='yes')",
    "MATCH (x:Account WHERE x.isBlocked='yes')-[t:Transfer]->"
    "(y:Account WHERE y.isBlocked='yes')",
    "MATCH (x:Account)-[t:Transfer WHERE t.amount > 5000000]->(y:Account)",
    // Quantified transfer chains (DFS route, TRAIL-bounded).
    "MATCH TRAIL (x:Account)-[:Transfer]->+(y:Account WHERE "
    "y.isBlocked='yes')",
    "MATCH (x:Account)->{1,3}(y:Account)",
    // Figure 4: the fraud co-location query, joined declarations.
    "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
    "(c:City WHERE c.name='Ankh-Morpork')<-[:isLocatedIn]-"
    "(y:Account WHERE y.isBlocked='yes'), "
    "ANY (x)-[:Transfer]->+(y)",
    "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
    "(c:City WHERE c.name='Ankh-Morpork')<-[:isLocatedIn]-"
    "(y:Account WHERE y.isBlocked='yes'), "
    "ANY SHORTEST p = (x)-[:Transfer]->+(y)",
    // Selectors on the BFS route, deterministic kinds included.
    "MATCH ALL SHORTEST (x:Account)-[:Transfer]->+(y:Account)",
    "MATCH SHORTEST 2 GROUP (x:Account)-[:Transfer]->+(y:Account)",
    // Union, alternation, restrictors, undirected steps.
    "MATCH ACYCLIC (x:Account)(-[:Transfer]->|<-[:Transfer]-)+"
    "(y:Account WHERE y.isBlocked='yes')",
    "MATCH (x:Phone)~[:hasPhone]~(y:Account)",
    // Match modes postfilter the joined rows.
    "MATCH DIFFERENT EDGES (x)-[e:Transfer]->(y), (y)-[f:Transfer]->(z)",
};

void ExpectParallelAgreement(const PropertyGraph& g,
                             const std::string& query) {
  for (bool use_planner : {true, false}) {
    EngineMetrics seq_metrics;
    Result<MatchOutput> seq = RunQuery(g, query, 1, use_planner, &seq_metrics);
    ASSERT_TRUE(seq.ok()) << query << " -> " << seq.status();
    std::vector<std::string> want = CanonRows(*seq, g);
    for (size_t threads : {size_t{2}, size_t{8}}) {
      EngineMetrics par_metrics;
      Result<MatchOutput> par =
          RunQuery(g, query, threads, use_planner, &par_metrics);
      ASSERT_TRUE(par.ok())
          << query << " threads=" << threads << " -> " << par.status();
      EXPECT_EQ(want, CanonRows(*par, g))
          << query << " threads=" << threads
          << " planner=" << (use_planner ? "on" : "off") << " on "
          << g.Summary();
      // Sharding repartitions the same per-seed searches: the total
      // instruction count is invariant in the thread count.
      EXPECT_EQ(seq_metrics.matcher_steps, par_metrics.matcher_steps)
          << query << " threads=" << threads;
      EXPECT_EQ(seq_metrics.seeded_nodes, par_metrics.seeded_nodes);
      EXPECT_EQ(par_metrics.threads, threads);
    }
  }
}

TEST(ParallelTest, PaperGraphWorkloads) {
  PropertyGraph g = BuildPaperGraph();
  for (const char* query : kWorkloads) {
    ExpectParallelAgreement(g, query);
  }
}

TEST(ParallelTest, ScaledFraudGraphWorkloads) {
  // The full family runs on the paper graph above; at generator scale the
  // unbounded TRAIL/ACYCLIC enumerations are replaced by bounded
  // quantifiers (their walk count is exponential in the transfer density,
  // overflowing default budgets long before testing anything new).
  FraudGraphOptions options;
  options.num_accounts = 30;
  options.transfers_per_account = 2;
  options.num_cities = 2;
  PropertyGraph g = MakeFraudGraph(options);
  const char* queries[] = {
      "MATCH (x:Account WHERE x.isBlocked='yes')",
      "MATCH (x:Account WHERE x.isBlocked='yes')-[t:Transfer]->"
      "(y:Account WHERE y.isBlocked='yes')",
      "MATCH (x:Account)-[t:Transfer WHERE t.amount > 5000000]->(y:Account)",
      "MATCH TRAIL (x:Account)-[:Transfer]->{1,3}(y:Account WHERE "
      "y.isBlocked='yes')",
      "MATCH (x:Account)->{1,3}(y:Account)",
      "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
      "(c:City WHERE c.name='Ankh-Morpork')<-[:isLocatedIn]-"
      "(y:Account WHERE y.isBlocked='yes'), "
      "ANY (x)-[:Transfer]->+(y)",
      "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
      "(c:City WHERE c.name='Ankh-Morpork')<-[:isLocatedIn]-"
      "(y:Account WHERE y.isBlocked='yes'), "
      "ANY SHORTEST p = (x)-[:Transfer]->+(y)",
      "MATCH ALL SHORTEST (x:Account)-[:Transfer]->+(y:Account)",
      "MATCH SHORTEST 2 GROUP (x:Account)-[:Transfer]->+(y:Account)",
      "MATCH (x:Phone)~[:hasPhone]~(y:Account)",
      "MATCH DIFFERENT EDGES (x)-[e:Transfer]->(y), (y)-[f:Transfer]->(z)",
  };
  for (const char* query : queries) {
    ExpectParallelAgreement(g, query);
  }
}

TEST(ParallelTest, RandomGraphWorkloads) {
  PropertyGraph g = MakeRandomGraph(40, 160, 3, 0.25, /*seed=*/7);
  const char* queries[] = {
      "MATCH (x:L0)-[e]->(y:L1)",
      "MATCH (x)-[e:L0]->(y)-[f]-(z)",
      "MATCH TRAIL (x:L0)-[:L1]->+(y)",
      "MATCH ALL SHORTEST (x:L0)-[]->+(y:L2)",
      "MATCH (x WHERE x.w < 50)-[e]->(y WHERE y.w >= 20)",
  };
  for (const char* query : queries) {
    ExpectParallelAgreement(g, query);
  }
}

/// Single-declaration workloads double-checked against the §6 reference
/// evaluator (set equality; order is the engine's own contract, asserted
/// against the sequential engine above).
TEST(ParallelTest, AgreesWithReferenceEvaluator) {
  PropertyGraph g = BuildPaperGraph();
  const char* queries[] = {
      "MATCH (x:Account WHERE x.isBlocked='yes')",
      "MATCH (x:Account)-[t:Transfer WHERE t.amount > 5000000]->(y:Account)",
      "MATCH TRAIL (x:Account)-[:Transfer]->+(y:Account WHERE "
      "y.isBlocked='yes')",
  };
  for (const char* query : queries) {
    Result<GraphPattern> parsed = ParseGraphPattern(query);
    ASSERT_TRUE(parsed.ok()) << query;
    Result<GraphPattern> normalized = Normalize(*parsed);
    ASSERT_TRUE(normalized.ok());
    Result<Analysis> analysis = Analyze(*normalized);
    ASSERT_TRUE(analysis.ok());
    VarTable vars(*analysis);
    Result<MatchSet> ref =
        RunReference(g, normalized->paths[0], vars, ReferenceOptions{});
    ASSERT_TRUE(ref.ok()) << query << " -> " << ref.status();
    std::vector<std::string> want;
    for (const PathBinding& pb : ref->bindings) {
      want.push_back(pb.ToString(g, vars));
    }
    std::sort(want.begin(), want.end());

    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      Result<MatchOutput> out = RunQuery(g, query, threads, /*use_planner=*/true);
      ASSERT_TRUE(out.ok()) << query;
      std::vector<std::string> got;
      for (const ResultRow& row : out->rows) {
        got.push_back(row.bindings[0]->ToString(g, *out->vars));
      }
      std::sort(got.begin(), got.end());
      EXPECT_EQ(want, got) << query << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Shared resource budget
// ---------------------------------------------------------------------------

const char* kBudgetQuery =
    "MATCH (x:Account)-[:Transfer]->(y:Account)-[:Transfer]->(z:Account)"
    "-[:Transfer]->(w:Account)";

size_t StepsUsed(const PropertyGraph& g, const std::string& query) {
  EngineMetrics metrics;
  Result<MatchOutput> out = RunQuery(g, query, 1, /*use_planner=*/true, &metrics);
  EXPECT_TRUE(out.ok()) << out.status();
  return metrics.matcher_steps;
}

/// The sequential path charges every instruction individually, so the limit
/// trips at exactly the same instruction as the historical per-run counter:
/// max_steps == steps-used passes, one less fails.
TEST(ParallelTest, SequentialBudgetTriggersAtTheSamePoint) {
  FraudGraphOptions options;
  options.num_accounts = 40;
  PropertyGraph g = MakeFraudGraph(options);
  size_t steps = StepsUsed(g, kBudgetQuery);
  ASSERT_GT(steps, 1000u);

  EngineOptions opts;
  opts.num_threads = 1;
  opts.matcher.max_steps = steps;
  EXPECT_TRUE(Engine(g, opts).Match(kBudgetQuery).ok());

  opts.matcher.max_steps = steps - 1;
  Result<MatchOutput> clipped = Engine(g, opts).Match(kBudgetQuery);
  ASSERT_FALSE(clipped.ok());
  EXPECT_EQ(clipped.status().code(), StatusCode::kResourceExhausted);
}

/// Under N shards the budget is one shared atomic, not N per-shard copies: a
/// limit well below the total work must trip even though every individual
/// shard stays below it.
TEST(ParallelTest, ParallelBudgetIsSharedAcrossShards) {
  FraudGraphOptions options;
  // 60 accounts keeps the step count (batch charging: one per gathered
  // candidate) far above the grain even on the vectorized path.
  options.num_accounts = 60;
  PropertyGraph g = MakeFraudGraph(options);
  size_t steps = StepsUsed(g, kBudgetQuery);
  // Far above the parallel charge batching grain (256 x 8 shards), so the
  // shared limit below must trip even with pending uncharged batches.
  ASSERT_GT(steps, 10000u) << "workload too small to exercise batching";

  EngineOptions opts;
  opts.num_threads = 8;
  opts.matcher.min_seeds_per_shard = 1;
  opts.matcher.max_steps = steps / 2;
  Result<MatchOutput> clipped = Engine(g, opts).Match(kBudgetQuery);
  ASSERT_FALSE(clipped.ok())
      << "8 shards executed 4x a per-shard budget share without tripping "
         "the shared limit";
  EXPECT_EQ(clipped.status().code(), StatusCode::kResourceExhausted);

  // A budget covering the whole run passes regardless of shard count.
  opts.matcher.max_steps = steps;
  EXPECT_TRUE(Engine(g, opts).Match(kBudgetQuery).ok());
}

/// max_matches is shared the same way.
TEST(ParallelTest, SharedMatchBudget) {
  FraudGraphOptions options;
  options.num_accounts = 40;
  PropertyGraph g = MakeFraudGraph(options);
  Result<MatchOutput> full = RunQuery(g, kBudgetQuery, 1, true);
  ASSERT_TRUE(full.ok());
  size_t rows = full->rows.size();
  ASSERT_GT(rows, 16u);

  for (size_t threads : {size_t{1}, size_t{8}}) {
    EngineOptions opts;
    opts.num_threads = threads;
    opts.matcher.min_seeds_per_shard = 1;
    opts.matcher.max_matches = rows / 4;
    Result<MatchOutput> clipped = Engine(g, opts).Match(kBudgetQuery);
    ASSERT_FALSE(clipped.ok()) << "threads=" << threads;
    EXPECT_EQ(clipped.status().code(), StatusCode::kResourceExhausted);
  }
}

}  // namespace
}  // namespace gpml
