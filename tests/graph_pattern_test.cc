#include <gtest/gtest.h>

#include "graph/sample_graph.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::CountRows;
using testing_util::Rows;

// E8: graph patterns — comma-joined path patterns (§4.3, §6.5).

TEST(GraphPatternTest, SharedVariableJoins) {
  PropertyGraph g = BuildPaperGraph();
  // §4.3: split the phone/transfer path into two path patterns sharing s.
  std::vector<std::string> split = Rows(
      g,
      "MATCH (p:Phone WHERE p.number=222)~[:hasPhone]~(s:Account), "
      "(s)-[t:Transfer WHERE t.amount>1M]->(d)",
      "p, s, t, d");
  std::vector<std::string> single = Rows(
      g,
      "MATCH (p:Phone WHERE p.number=222)~[:hasPhone]~(s:Account)"
      "-[t:Transfer WHERE t.amount>1M]->(d)",
      "p, s, t, d");
  EXPECT_EQ(split, single);
  EXPECT_FALSE(split.empty());
}

TEST(GraphPatternTest, PaperThreeLeggedPattern) {
  PropertyGraph g = BuildPaperGraph();
  // §4.3's three path patterns out of s (phone filter adapted: the paper
  // graph has no blocked phone, so anchor on number 111).
  std::vector<std::string> rows = Rows(
      g,
      "MATCH (s:Account)-[:signInWithIP]-(), "
      "(s)-[t:Transfer WHERE t.amount>1M]->(), "
      "(s)~[:hasPhone]~(p:Phone WHERE p.number=111)",
      "s, t, p");
  // Accounts with sign-ins: a1, a5. Both hold phone p1 (111). Transfers
  // >1M: a1-t1, a5-t8.
  EXPECT_EQ(rows, (std::vector<std::string>{"a1|t1|p1", "a5|t8|p1"}));
}

TEST(GraphPatternTest, CrossProductWhenDisjoint) {
  PropertyGraph g = BuildPaperGraph();
  // No shared variables: |City| x |IP| = 1 * 2.
  EXPECT_EQ(CountRows(g, "MATCH (c:City), (i:IP)"), 2u);
}

TEST(GraphPatternTest, TriangleByVariableReuse) {
  PropertyGraph g = BuildPaperGraph();
  // §4.2: the triangle query. The paper graph contains the a1->a3->a5->a1
  // triangle (t1, t7, t8), seen from each of its three rotations.
  EXPECT_EQ(Rows(g,
                 "MATCH (s)-[:Transfer]->(s1)-[:Transfer]->(s2)"
                 "-[:Transfer]->(s)",
                 "s, s1, s2"),
            (std::vector<std::string>{"a1|a3|a5", "a3|a5|a1", "a5|a1|a3"}));
}

TEST(GraphPatternTest, FourCycleByVariableReuse) {
  PropertyGraph g = BuildPaperGraph();
  // The a2->a4->a6->a3->a2 cycle, from each of 4 rotations; plus the
  // 3-cycle a1->a3->a5->a1 does not match (length 4 pattern).
  std::vector<std::string> rows =
      Rows(g,
           "MATCH (s)-[:Transfer]->(a)-[:Transfer]->(b)-[:Transfer]->(c)"
           "-[:Transfer]->(s)",
           "s");
  EXPECT_EQ(rows.size(), 4u);
}

TEST(GraphPatternTest, JoinRespectsPostfilterAcrossDecls) {
  PropertyGraph g = BuildPaperGraph();
  std::vector<std::string> rows = Rows(
      g,
      "MATCH (x:Account)-[:isLocatedIn]->(c), (y:Account)-[:isLocatedIn]->(c)"
      " WHERE x.owner='Scott' AND ALL_DIFFERENT(x, y)",
      "y");
  // Scott (a1) is in Zembla (c1) with a3 and a5.
  EXPECT_EQ(rows, (std::vector<std::string>{"a3", "a5"}));
}

TEST(GraphPatternTest, PathVariablesPerDeclaration) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<MatchOutput> out = engine.Match(
      "MATCH p = (a WHERE a.owner='Jay')-[:Transfer]->(b), "
      "q = (b)-[:Transfer]->(c)");
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->rows.size(), 2u);  // a4->a6 then a6->{a3,a5}.
  std::vector<std::string> rows =
      testing_util::Rows(g,
                         "MATCH p = (a WHERE a.owner='Jay')-[:Transfer]->(b), "
                         "q = (b)-[:Transfer]->(c)",
                         "p, q");
  EXPECT_EQ(rows, (std::vector<std::string>{
                      "path(a4,t4,a6)|path(a6,t5,a3)",
                      "path(a4,t4,a6)|path(a6,t6,a5)"}));
}

TEST(GraphPatternTest, ThreeWayJoinChain) {
  PropertyGraph g = BuildPaperGraph();
  std::vector<std::string> joined = Rows(
      g, "MATCH (a WHERE a.owner='Scott')-[:Transfer]->(b), "
         "(b)-[:Transfer]->(c), (c)-[:Transfer]->(d)",
      "a, b, c, d");
  std::vector<std::string> single = Rows(
      g, "MATCH (a WHERE a.owner='Scott')-[:Transfer]->(b)-[:Transfer]->(c)"
         "-[:Transfer]->(d)",
      "a, b, c, d");
  EXPECT_EQ(joined, single);
  EXPECT_FALSE(joined.empty());
}

TEST(GraphPatternTest, JoinOnMultipleSharedVariables) {
  PropertyGraph g = BuildPaperGraph();
  // Both x and c shared across decls.
  std::vector<std::string> rows = Rows(
      g,
      "MATCH (x:Account)-[:isLocatedIn]->(c:City), "
      "(x)-[:Transfer]->(y)-[:isLocatedIn]->(c)",
      "x, y, c");
  // x,y both in Ankh-Morpork with a transfer x->y: a2->a4 and a4->a6.
  EXPECT_EQ(rows, (std::vector<std::string>{"a2|a4|c2", "a4|a6|c2"}));
}

}  // namespace
}  // namespace gpml
