// The observability layer (docs/observability.md): the metrics registry's
// counter/histogram semantics (including exactness under concurrent
// increments — run under TSan in CI), the engine's span-tree tracing across
// the {threads} x {csr} x {planner} x {cache} execution matrix, Prometheus
// text-format rendering validated against the exposition-format grammar,
// the slow-query ring buffer and its engine capture path, streaming-cursor
// publication semantics, and both hosts' retrieval surfaces.

#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "eval/engine.h"
#include "gql/session.h"
#include "graph/generator.h"
#include "graph/sample_graph.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "pgq/graph_table.h"
#include "planner/explain.h"

namespace gpml {
namespace {

const char* kFraudQuery =
    "MATCH (x:Account WHERE x.isBlocked='no')-[:isLocatedIn]->"
    "(c:City WHERE c.name='Ankh-Morpork')<-[:isLocatedIn]-"
    "(y:Account WHERE y.isBlocked='yes'), "
    "ANY (x)-[:Transfer]->+(y)";

// Single fixed-length declaration: takes the cursor's chunked stream mode.
const char* kStreamQuery =
    "MATCH (x:Account WHERE x.isBlocked='no')-[t:Transfer]->(y:Account)";

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsTest, CounterHandleAndSnapshot) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("test_total");
  ASSERT_NE(c, nullptr);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name, same handle: hot paths resolve once and keep the pointer.
  EXPECT_EQ(registry.GetCounter("test_total"), c);

  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("test_total"), 42u);
  EXPECT_EQ(snap.CounterValue("never_registered_total"), 0u);
}

TEST(MetricsTest, HistogramBucketsAreLogScaled) {
  // BucketIndex picks the smallest i with value <= 2^i.
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(obs::Histogram::BucketIndex(uint64_t{1} << 26), 26u);
  // Past the last finite bound: the overflow slot.
  EXPECT_EQ(obs::Histogram::BucketIndex((uint64_t{1} << 26) + 1),
            obs::Histogram::kNumBounds);

  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("lat_us");
  ASSERT_NE(h, nullptr);
  h->Observe(1);
  h->Observe(100);   // <= 128 = 2^7.
  h->Observe(1000);  // <= 1024 = 2^10.
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum_us(), 1101u);
  EXPECT_EQ(h->bucket(0), 1u);
  EXPECT_EQ(h->bucket(7), 1u);
  EXPECT_EQ(h->bucket(10), 1u);

  obs::MetricsSnapshot snapshot = registry.Snapshot();
  const obs::HistogramSnapshot* snap = snapshot.FindHistogram("lat_us");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, 3u);
  EXPECT_EQ(snap->sum_us, 1101u);
  ASSERT_EQ(snap->buckets.size(), obs::Histogram::kNumBounds + 1);
  EXPECT_EQ(snap->buckets[7], 1u);
}

TEST(MetricsTest, TypeMismatchReturnsNull) {
  obs::MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("name_total"), nullptr);
  EXPECT_EQ(registry.GetHistogram("name_total"), nullptr);
  ASSERT_NE(registry.GetHistogram("lat_us"), nullptr);
  EXPECT_EQ(registry.GetCounter("lat_us"), nullptr);
}

TEST(MetricsTest, ConcurrentIncrementsAreExact) {
  // The lock-free contract: concurrent relaxed adds lose nothing. CI runs
  // this under TSan (see .github/workflows/ci.yml).
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Each thread resolves its own handles (exercises the registration
      // mutex) and then hammers the shared atomics.
      obs::Counter* c = registry.GetCounter("race_total");
      obs::Histogram* h = registry.GetHistogram("race_us");
      for (int i = 0; i < kIters; ++i) {
        c->Increment();
        h->Observe(static_cast<uint64_t>(i % 1000));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("race_total"),
            static_cast<uint64_t>(kThreads) * kIters);
  const obs::HistogramSnapshot* h = snap.FindHistogram("race_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<uint64_t>(kThreads) * kIters);
  uint64_t bucket_sum = 0;
  for (uint64_t b : h->buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, h->count) << "every observation lands in a bucket";
}

TEST(MetricsTest, AggregateSumsAcrossRegistries) {
  // Two graphs, one query each: the process-wide aggregate sees both
  // executions (other live registries may add more, never less).
  PropertyGraph a = BuildPaperGraph();
  PropertyGraph b = BuildPaperGraph();
  uint64_t before =
      obs::AggregateAllRegistries().CounterValue("gpml_executions_total");
  ASSERT_TRUE(Engine(a).Match(kStreamQuery).ok());
  ASSERT_TRUE(Engine(b).Match(kStreamQuery).ok());
  EXPECT_EQ(a.metrics_registry()->Snapshot().CounterValue(
                "gpml_executions_total"),
            1u);
  EXPECT_GE(
      obs::AggregateAllRegistries().CounterValue("gpml_executions_total"),
      before + 2);
}

// --- Trace -------------------------------------------------------------------

TEST(TraceTest, SpanTreeBasics) {
  obs::Trace trace;
  EXPECT_TRUE(trace.empty());
  int root = trace.Begin("query");
  int child = trace.Begin("plan", root);
  trace.Attr(child, "cached", "false");
  trace.End(child);
  trace.End(root);
  int replayed = trace.AddComplete("shard", root, 5, 17);

  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[child].parent, root);
  EXPECT_EQ(trace.spans()[root].parent, obs::Trace::kNoParent);
  EXPECT_GE(trace.spans()[root].duration_us, 0);
  EXPECT_EQ(trace.spans()[replayed].start_us, 5u);
  EXPECT_EQ(trace.spans()[replayed].duration_us, 17);

  const obs::Span* found = trace.Find("plan");
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->attrs.size(), 1u);
  EXPECT_EQ(found->attrs[0].first, "cached");
  EXPECT_DOUBLE_EQ(trace.TotalMs("shard"), 0.017);

  std::string json = trace.ToJsonLines();
  EXPECT_NE(json.find("{\"span\":\"query\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"attrs\":{\"cached\":\"false\"}"), std::string::npos)
      << json;

  trace.Clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.Find("query"), nullptr);
}

/// Asserts the engine-built span tree is well formed: a closed "query"
/// root, a "plan" span with the expected cached attribute, per-declaration
/// "decl" spans owning "seed" and "shard" children, valid parent indices,
/// and no span left open.
void CheckEngineTrace(const obs::Trace& trace, bool expect_cached,
                      const std::string& config) {
  ASSERT_FALSE(trace.empty()) << config;
  const std::vector<obs::Span>& spans = trace.spans();
  const obs::Span* root = trace.Find("query");
  ASSERT_NE(root, nullptr) << config;
  EXPECT_EQ(root->parent, obs::Trace::kNoParent) << config;

  size_t decls = 0, seeds = 0, shards = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    const obs::Span& s = spans[i];
    EXPECT_GE(s.duration_us, 0) << config << ": open span " << s.name;
    if (s.parent != obs::Trace::kNoParent) {
      ASSERT_GE(s.parent, 0) << config;
      ASSERT_LT(static_cast<size_t>(s.parent), i)
          << config << ": parents precede children";
    }
    if (s.name == "decl") ++decls;
    if (s.name == "seed") {
      ++seeds;
      EXPECT_EQ(spans[s.parent].name, "decl") << config;
    }
    if (s.name == "shard") {
      ++shards;
      EXPECT_EQ(spans[s.parent].name, "decl") << config;
    }
  }
  EXPECT_EQ(decls, 2u) << config << ": fraud query has two declarations";
  EXPECT_EQ(seeds, decls) << config;
  EXPECT_GE(shards, decls) << config << ": at least one shard per decl";

  const obs::Span* plan = trace.Find("plan");
  ASSERT_NE(plan, nullptr) << config;
  bool cached_attr = false;
  for (const auto& [key, value] : plan->attrs) {
    if (key == "cached") cached_attr = value == "true";
  }
  EXPECT_EQ(cached_attr, expect_cached) << config;
}

TEST(TraceTest, EngineTraceAcrossExecutionMatrix) {
  FraudGraphOptions graph_options;
  graph_options.num_accounts = 60;
  graph_options.num_cities = 2;

  size_t want_rows = 0;
  bool first_config = true;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    for (bool csr : {true, false}) {
      for (bool planner : {true, false}) {
        // Fresh graph per config: the first run is a plan-cache miss, the
        // second a hit whose trace replays the stored compile costs.
        PropertyGraph g = MakeFraudGraph(graph_options);
        EngineMetrics metrics;
        obs::Trace trace;
        EngineOptions options;
        options.num_threads = threads;
        options.use_csr = csr;
        options.use_planner = planner;
        options.metrics = &metrics;
        options.trace = &trace;
        Engine engine(g, options);

        for (bool warm : {false, true}) {
          std::string config = "threads=" + std::to_string(threads) +
                               " csr=" + std::to_string(csr) +
                               " planner=" + std::to_string(planner) +
                               " warm=" + std::to_string(warm);
          Result<MatchOutput> out = engine.Match(kFraudQuery);
          ASSERT_TRUE(out.ok()) << config << ": " << out.status();
          if (first_config) {
            want_rows = out->rows.size();
            first_config = false;
          }
          EXPECT_EQ(out->rows.size(), want_rows)
              << config << ": tracing must not change results";
          CheckEngineTrace(trace, /*expect_cached=*/warm, config);
          // The trace's stage totals are the same measurements the
          // metrics report (docs/observability.md).
          EXPECT_GE(metrics.plan_ms, 0) << config;
          EXPECT_GE(metrics.seed_ms, 0) << config;
          EXPECT_GE(metrics.exec_ms, 0) << config;
          EXPECT_EQ(metrics.plan_cache_hits, warm ? 1u : 0u) << config;
        }
      }
    }
  }
}

TEST(TraceTest, SinkReceivesJsonLinesWithoutAttachedTrace) {
  // A sink alone is enough: the engine builds a trace internally.
  PropertyGraph g = BuildPaperGraph();
  obs::StringTraceSink sink;
  EngineOptions options;
  options.trace_sink = &sink;
  Engine engine(g, options);
  ASSERT_TRUE(engine.Match(kFraudQuery).ok());
  ASSERT_TRUE(engine.Match(kFraudQuery).ok());
  EXPECT_EQ(sink.traces_emitted(), 2u);
  std::string out = sink.TakeOutput();
  EXPECT_NE(out.find("{\"span\":\"query\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"span\":\"decl\""), std::string::npos) << out;
  // Errored executions emit nothing.
  EXPECT_FALSE(engine.Match("MATCH (x WHERE $missing = 1)").ok());
  EXPECT_EQ(sink.traces_emitted(), 2u);
}

// --- registry publication from the engine ------------------------------------

TEST(MetricsTest, EnginePublishesToGraphRegistry) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<MatchOutput> out = engine.Match(kFraudQuery);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(engine.Match(kFraudQuery).ok());

  obs::MetricsSnapshot snap = g.metrics_registry()->Snapshot();
  EXPECT_EQ(snap.CounterValue("gpml_executions_total"), 2u);
  EXPECT_EQ(snap.CounterValue("gpml_decls_total"), 4u);
  EXPECT_EQ(snap.CounterValue("gpml_rows_total"), 2 * out->rows.size());
  EXPECT_EQ(snap.CounterValue("gpml_plan_cache_misses_total"), 1u);
  EXPECT_EQ(snap.CounterValue("gpml_plan_cache_hits_total"), 1u);
  EXPECT_GT(snap.CounterValue("gpml_matcher_steps_total"), 0u);
  EXPECT_GT(snap.CounterValue("gpml_seeded_nodes_total"), 0u);

  for (const char* stage : {"plan", "seed", "match", "join", "filter"}) {
    const obs::HistogramSnapshot* h = snap.FindHistogram(
        std::string("gpml_stage_duration_us{stage=\"") + stage + "\"}");
    ASSERT_NE(h, nullptr) << stage;
    EXPECT_EQ(h->count, 2u) << stage;
  }
  const obs::HistogramSnapshot* total =
      snap.FindHistogram("gpml_query_duration_us");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count, 2u);
}

TEST(MetricsTest, BatchMatcherPublishesBlockTelemetry) {
  // The vectorized matcher's telemetry (docs/vectorized.md): per-execution
  // block/candidate/survivor counts on EngineMetrics, a cumulative
  // gpml_batch_blocks_total counter, and per-execution survivor rates in
  // the gpml_batch_survivor_rate histogram.
  PropertyGraph g = BuildPaperGraph();
  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  options.use_batch = true;
  ASSERT_TRUE(Engine(g, options).Match(kStreamQuery).ok());
  EXPECT_GT(metrics.batch_blocks, 0u);
  EXPECT_GT(metrics.batch_candidates, 0u);
  EXPECT_GT(metrics.batch_survivors, 0u);
  EXPECT_LE(metrics.batch_survivors, metrics.batch_candidates);

  obs::MetricsSnapshot snap = g.metrics_registry()->Snapshot();
  EXPECT_EQ(snap.CounterValue("gpml_batch_blocks_total"),
            metrics.batch_blocks);
  const obs::HistogramSnapshot* rate =
      snap.FindHistogram("gpml_batch_survivor_rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->count, 1u);

  // The scalar oracle leaves the batch telemetry untouched.
  PropertyGraph scalar_graph = BuildPaperGraph();
  options.use_batch = false;
  ASSERT_TRUE(Engine(scalar_graph, options).Match(kStreamQuery).ok());
  EXPECT_EQ(metrics.batch_blocks, 0u);
  EXPECT_EQ(metrics.batch_candidates, 0u);
  obs::MetricsSnapshot scalar_snap =
      scalar_graph.metrics_registry()->Snapshot();
  EXPECT_EQ(scalar_snap.CounterValue("gpml_batch_blocks_total"), 0u);
  EXPECT_EQ(scalar_snap.FindHistogram("gpml_batch_survivor_rate"), nullptr);
}

TEST(MetricsTest, PublishMetricsOffLeavesRegistryEmpty) {
  PropertyGraph g = BuildPaperGraph();
  EngineOptions options;
  options.publish_metrics = false;
  options.slow_query_ms = -1;
  ASSERT_TRUE(Engine(g, options).Match(kFraudQuery).ok());
  obs::MetricsSnapshot snap = g.metrics_registry()->Snapshot();
  EXPECT_EQ(snap.CounterValue("gpml_executions_total"), 0u);
  EXPECT_EQ(snap.CounterValue("gpml_plan_cache_misses_total"), 0u);
  EXPECT_TRUE(snap.histograms.empty());
}

// --- Prometheus rendering ----------------------------------------------------

/// Strips `suffix` off `s` in place; false when `s` does not end with it.
bool StripSuffix(std::string* s, const std::string& suffix) {
  if (s->size() < suffix.size() ||
      s->compare(s->size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  s->resize(s->size() - suffix.size());
  return true;
}

/// A line-level validator for the Prometheus text exposition format:
/// comment lines are `# TYPE <base> <counter|histogram>`, sample lines are
/// `<name>[{<labels>}] <number>`, every base is TYPE-declared before its
/// first sample with the series suffixes its type allows, histogram buckets
/// are cumulative per label set with the series' `_count` equal to its
/// final le="+Inf" bucket.
void ValidatePrometheusText(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  std::map<std::string, std::string> declared;  // base -> type.
  std::map<std::string, uint64_t> last_bucket;  // base|labels -> last count.
  std::map<std::string, uint64_t> inf_bucket;   // base|labels -> +Inf count.
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition output";
    if (line[0] == '#') {
      std::istringstream fields(line);
      std::string hash, kw, base, type;
      fields >> hash >> kw >> base >> type;
      EXPECT_EQ(hash, "#") << line;
      EXPECT_EQ(kw, "TYPE") << line;
      EXPECT_TRUE(type == "counter" || type == "histogram") << line;
      EXPECT_TRUE(declared.emplace(base, type).second)
          << "duplicate TYPE for " << base;
      continue;
    }
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    std::string value = line.substr(space + 1);
    char* end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    ASSERT_TRUE(end != value.c_str() && *end == '\0')
        << "unparseable sample value: " << line;
    EXPECT_GE(v, 0) << line;

    // Split `base{labels}`, peeling the le pair off histogram buckets.
    size_t brace = name.find('{');
    std::string base = name.substr(0, brace);
    std::string labels;
    std::string le;
    if (brace != std::string::npos) {
      ASSERT_EQ(name.back(), '}') << line;
      labels = name.substr(brace + 1, name.size() - brace - 2);
      size_t le_pos = labels.find("le=\"");
      if (le_pos != std::string::npos) {
        size_t le_end = labels.find('"', le_pos + 4);
        ASSERT_NE(le_end, std::string::npos) << line;
        le = labels.substr(le_pos + 4, le_end - le_pos - 4);
        // Remove the pair (and the comma joining it to a predecessor).
        size_t cut = le_pos > 0 ? le_pos - 1 : le_pos;
        labels.erase(cut, le_end + 1 - cut);
      }
    }

    if (declared.count(base) && declared[base] == "counter") {
      EXPECT_TRUE(le.empty()) << "le label on a counter: " << line;
      continue;
    }
    // Histogram series: base must carry a _bucket/_sum/_count suffix and
    // the stripped base must be TYPE-declared as a histogram.
    std::string stripped = base;
    if (StripSuffix(&stripped, "_bucket")) {
      ASSERT_FALSE(le.empty()) << "bucket without le: " << line;
      std::string key = stripped + "|" + labels;
      uint64_t count = static_cast<uint64_t>(v);
      if (last_bucket.count(key)) {
        EXPECT_GE(count, last_bucket[key])
            << "non-cumulative buckets: " << line;
      }
      last_bucket[key] = count;
      if (le == "+Inf") inf_bucket[key] = count;
    } else if (StripSuffix(&stripped, "_count")) {
      std::string key = stripped + "|" + labels;
      ASSERT_TRUE(inf_bucket.count(key))
          << "_count before its +Inf bucket: " << line;
      EXPECT_EQ(static_cast<uint64_t>(v), inf_bucket[key]) << line;
    } else {
      EXPECT_TRUE(StripSuffix(&stripped, "_sum"))
          << "unexpected histogram series: " << line;
    }
    EXPECT_TRUE(declared.count(stripped) &&
                declared[stripped] == "histogram")
        << "sample before TYPE: " << line;
  }
  EXPECT_FALSE(declared.empty()) << "no metrics rendered";
}

TEST(PrometheusTest, RenderedOutputFollowsTheTextGrammar) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  ASSERT_TRUE(engine.Match(kFraudQuery).ok());
  ASSERT_TRUE(engine.Match(kStreamQuery).ok());
  std::string text = obs::RenderPrometheus(*g.metrics_registry());
  ValidatePrometheusText(text);
  EXPECT_NE(text.find("# TYPE gpml_executions_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gpml_executions_total 2"), std::string::npos) << text;
  EXPECT_NE(
      text.find("gpml_stage_duration_us_bucket{stage=\"match\",le=\"+Inf\"}"),
      std::string::npos)
      << text;
}

TEST(PrometheusTest, SplitMetricName) {
  std::string base, labels;
  obs::SplitMetricName("gpml_executions_total", &base, &labels);
  EXPECT_EQ(base, "gpml_executions_total");
  EXPECT_TRUE(labels.empty());
  obs::SplitMetricName("gpml_stage_duration_us{stage=\"seed\"}", &base,
                       &labels);
  EXPECT_EQ(base, "gpml_stage_duration_us");
  EXPECT_EQ(labels, "stage=\"seed\"");
}

// --- slow-query log ----------------------------------------------------------

TEST(SlowLogTest, RingBufferKeepsNewest) {
  obs::SlowQueryLog log(3);
  EXPECT_EQ(log.capacity(), 3u);
  for (int i = 0; i < 5; ++i) {
    obs::SlowQueryRecord rec;
    rec.fingerprint = "q" + std::to_string(i);
    log.Add(std::move(rec));
  }
  EXPECT_EQ(log.total_added(), 5u);
  std::vector<obs::SlowQueryRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].fingerprint, "q2");
  EXPECT_EQ(snap[2].fingerprint, "q4");
  EXPECT_EQ(snap[0].sequence + 2, snap[2].sequence);
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(SlowLogTest, EngineCapturesSlowExecutions) {
  PropertyGraph g = BuildPaperGraph();
  obs::SlowQueryLog log(8);
  EngineOptions options;
  options.slow_query_ms = 0;  // Everything is "slow".
  options.slow_log = &log;
  Engine engine(g, options);
  Result<MatchOutput> out = engine.Match(kFraudQuery);
  ASSERT_TRUE(out.ok());

  std::vector<obs::SlowQueryRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const obs::SlowQueryRecord& rec = snap[0];
  EXPECT_EQ(rec.graph_token, g.identity_token());
  EXPECT_NE(rec.fingerprint.find("MATCH"), std::string::npos);
  EXPECT_EQ(rec.rows, out->rows.size());
  EXPECT_GE(rec.total_ms, 0);
  EXPECT_NE(rec.trace_json.find("{\"span\":\"query\""), std::string::npos);
  // The stored EXPLAIN ANALYZE parses back with measured actuals — the
  // capture is a post-hoc EXPLAIN ANALYZE of the slow run, for free.
  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(rec.explain);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << rec.explain;
  EXPECT_TRUE(parsed->analyzed);
  EXPECT_GE(parsed->total_ms, 0);
  EXPECT_EQ(parsed->rows, out->rows.size());

  // Fast executions (or capture disabled) never touch the log.
  options.slow_query_ms = 1e9;
  ASSERT_TRUE(Engine(g, options).Match(kFraudQuery).ok());
  options.slow_query_ms = -1;
  ASSERT_TRUE(Engine(g, options).Match(kFraudQuery).ok());
  EXPECT_EQ(log.total_added(), 1u);
}

TEST(SlowLogTest, HostsFilterByGraphIdentity) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddGraph("bank", BuildPaperGraph()).ok());
  ASSERT_TRUE(catalog.AddGraph("other", BuildPaperGraph()).ok());

  obs::SlowQueryLog log(8);
  EngineOptions options;
  options.slow_query_ms = 0;
  options.slow_log = &log;

  Session session(catalog, options);
  ASSERT_TRUE(session.UseGraph("bank").ok());
  ASSERT_TRUE(session.Execute(kStreamQuery).ok());
  ASSERT_TRUE(session.UseGraph("other").ok());
  ASSERT_TRUE(session.Execute(kFraudQuery).ok());
  ASSERT_TRUE(session.UseGraph("bank").ok());

  // Session: only the current graph's captures.
  Result<std::vector<obs::SlowQueryRecord>> mine = session.SlowQueries();
  ASSERT_TRUE(mine.ok());
  ASSERT_EQ(mine->size(), 1u);
  EXPECT_NE((*mine)[0].fingerprint.find("Transfer"), std::string::npos);

  // SQL/PGQ host sees the same log through the catalog.
  Result<std::vector<obs::SlowQueryRecord>> pgq =
      GraphTableSlowQueries(catalog, "other", &log);
  ASSERT_TRUE(pgq.ok());
  EXPECT_EQ(pgq->size(), 1u);
  EXPECT_FALSE(GraphTableSlowQueries(catalog, "missing", &log).ok());

  // Metrics surfaces of both hosts render Prometheus text.
  Result<std::string> session_text = session.MetricsText();
  ASSERT_TRUE(session_text.ok());
  ValidatePrometheusText(*session_text);
  Result<std::string> pgq_text = GraphTableMetricsText(catalog, "bank");
  ASSERT_TRUE(pgq_text.ok());
  EXPECT_EQ(*pgq_text, *session_text);

  Session detached(catalog);
  EXPECT_FALSE(detached.MetricsText().ok()) << "no graph selected";
  EXPECT_FALSE(detached.SlowQueries().ok());
}

// --- streaming cursors -------------------------------------------------------

TEST(CursorObsTest, StreamPublishesOnceOnCleanCompletion) {
  PropertyGraph g = BuildPaperGraph();
  obs::StringTraceSink sink;
  obs::SlowQueryLog log(8);
  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  options.trace_sink = &sink;
  options.slow_query_ms = 0;
  options.slow_log = &log;
  Engine engine(g, options);
  Result<PreparedQuery> q = engine.Prepare(kStreamQuery);
  ASSERT_TRUE(q.ok());

  Result<Cursor> cursor = q->Open();
  ASSERT_TRUE(cursor.ok());
  RowView view;
  size_t rows = 0;
  while (true) {
    Result<bool> more = cursor->Next(&view);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++rows;
  }
  // One execution published: counters advanced once, one trace emitted,
  // one slow capture (threshold 0), and the metrics describe the stream.
  obs::MetricsSnapshot snap = g.metrics_registry()->Snapshot();
  EXPECT_EQ(snap.CounterValue("gpml_executions_total"), 1u);
  EXPECT_EQ(snap.CounterValue("gpml_rows_total"), rows);
  EXPECT_EQ(sink.traces_emitted(), 1u);
  std::string json = sink.TakeOutput();
  EXPECT_NE(json.find("\"mode\":\"stream\""), std::string::npos) << json;
  EXPECT_EQ(log.total_added(), 1u);
  EXPECT_EQ(log.Snapshot()[0].rows, rows);
  EXPECT_EQ(metrics.rows, rows);
  EXPECT_GE(metrics.exec_ms, 0);

  // Pulling past the end never re-publishes (FinishStream is one-shot).
  Result<bool> more = cursor->Next(&view);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
  EXPECT_EQ(g.metrics_registry()->Snapshot().CounterValue(
                "gpml_executions_total"),
            1u);
  EXPECT_EQ(sink.traces_emitted(), 1u);
  EXPECT_EQ(log.total_added(), 1u);
}

TEST(CursorObsTest, LimitStopPublishesAbandonmentDoesNot) {
  PropertyGraph g = BuildPaperGraph();
  obs::StringTraceSink sink;
  EngineOptions options;
  options.trace_sink = &sink;
  options.slow_query_ms = -1;
  Engine engine(g, options);
  Result<PreparedQuery> q = engine.Prepare(kStreamQuery);
  ASSERT_TRUE(q.ok());

  // LIMIT hit: a clean completion — publishes.
  {
    Result<Cursor> cursor = q->Open({}, 1);
    ASSERT_TRUE(cursor.ok());
    RowView view;
    while (true) {
      Result<bool> more = cursor->Next(&view);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
    }
    EXPECT_TRUE(cursor->hit_limit());
  }
  EXPECT_EQ(sink.traces_emitted(), 1u);
  EXPECT_EQ(g.metrics_registry()->Snapshot().CounterValue(
                "gpml_executions_total"),
            1u);

  // Abandoned mid-stream: no publication (the stream never completed).
  {
    Result<Cursor> cursor = q->Open();
    ASSERT_TRUE(cursor.ok());
    RowView view;
    Result<bool> more = cursor->Next(&view);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
  }
  EXPECT_EQ(sink.traces_emitted(), 1u);
  EXPECT_EQ(g.metrics_registry()->Snapshot().CounterValue(
                "gpml_executions_total"),
            1u);
}

TEST(CursorObsTest, MetricsResetOnEachExecution) {
  // Reset-on-execute (engine.h): the struct always describes the latest
  // execution — including a cursor stream, which resets at Open and
  // accumulates across pulls.
  PropertyGraph g = BuildPaperGraph();
  EngineMetrics metrics;
  EngineOptions options;
  options.metrics = &metrics;
  Engine engine(g, options);

  ASSERT_TRUE(engine.Match(kFraudQuery).ok());
  size_t fraud_rows = metrics.rows;
  EXPECT_GT(metrics.decls, 1u);

  Result<PreparedQuery> q = engine.Prepare(kStreamQuery);
  ASSERT_TRUE(q.ok());
  Result<Cursor> cursor = q->Open();
  ASSERT_TRUE(cursor.ok());
  // Open started a new execution: the fraud run's counters are gone.
  EXPECT_EQ(metrics.decls, 1u);
  EXPECT_EQ(metrics.rows, 0u);
  RowView view;
  size_t pulled = 0;
  while (true) {
    Result<bool> more = cursor->Next(&view);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    ++pulled;
    EXPECT_EQ(metrics.rows, pulled) << "counters grow as rows are pulled";
  }
  EXPECT_EQ(metrics.rows, cursor->rows_emitted());

  // And the next materializing execution resets again.
  ASSERT_TRUE(engine.Match(kFraudQuery).ok());
  EXPECT_EQ(metrics.rows, fraud_rows);
}

// --- ExplainAnalyze plumbing -------------------------------------------------

TEST(ObsTest, ExplainAnalyzeReportsStageActuals) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<std::string> text = engine.ExplainAnalyze(kFraudQuery);
  ASSERT_TRUE(text.ok()) << text.status();
  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << *text;
  EXPECT_TRUE(parsed->analyzed);
  EXPECT_GE(parsed->total_ms, 0) << *text;
  EXPECT_GE(parsed->plan_ms, 0) << *text;
  double decl_ms = 0;
  for (const planner::ExplainedDecl& d : parsed->decls) {
    EXPECT_GE(d.actual_ms, 0) << *text;
    decl_ms += d.actual_ms;
  }
  EXPECT_LE(decl_ms, parsed->total_ms + 1.0)
      << "per-declaration time is contained in the total\n"
      << *text;
}

TEST(ObsTest, ExplainAnalyzeRoundTripsBatchBlockTarget) {
  // The exec line's batch= token (the vectorized block target, 0 when the
  // batch path is disabled) survives a render -> ParseExplain round trip.
  PropertyGraph g = BuildPaperGraph();
  EngineOptions options;
  options.use_batch = true;
  Result<std::string> text = Engine(g, options).ExplainAnalyze(kStreamQuery);
  ASSERT_TRUE(text.ok()) << text.status();
  Result<planner::ExplainedPlan> parsed = planner::ParseExplain(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << *text;
  EXPECT_EQ(parsed->batch, 512) << *text;

  options.use_batch = false;
  Result<std::string> off = Engine(g, options).ExplainAnalyze(kStreamQuery);
  ASSERT_TRUE(off.ok()) << off.status();
  Result<planner::ExplainedPlan> parsed_off = planner::ParseExplain(*off);
  ASSERT_TRUE(parsed_off.ok()) << parsed_off.status() << "\n" << *off;
  EXPECT_EQ(parsed_off->batch, 0) << *off;
}

}  // namespace
}  // namespace gpml
