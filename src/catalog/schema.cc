#include "catalog/schema.h"

#include "common/strings.h"

namespace gpml {

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = columns_[i];
    if (row[i].is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("NULL in non-nullable column " +
                                       col.name);
      }
      continue;
    }
    if (col.type != ValueType::kNull && row[i].type() != col.type) {
      return Status::InvalidArgument(
          "column " + col.name + " expects " + ValueTypeName(col.type) +
          ", got " + ValueTypeName(row[i].type()));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const ColumnDef& c : columns_) {
    parts.push_back(c.name + " " + ValueTypeName(c.type));
  }
  return Join(parts, ", ");
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.columns_.size() != b.columns_.size()) return false;
  for (size_t i = 0; i < a.columns_.size(); ++i) {
    if (a.columns_[i].name != b.columns_[i].name ||
        a.columns_[i].type != b.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace gpml
