#ifndef GPML_COMMON_STATUS_H_
#define GPML_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace gpml {

/// Error categories used across the library. The taxonomy mirrors the places
/// where the GPML standard allows an implementation to reject a query:
/// syntax (parser), semantic analysis (variable rules of §4.6), and the
/// termination rules of §5, plus the usual runtime/internal buckets.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // Malformed input to an API call.
  kSyntaxError,       // Lexer/parser rejection.
  kSemanticError,     // Variable misuse, unknown graph, type errors.
  kNonTerminating,    // §5: unbounded quantifier outside restrictor/selector
                      // scope, or prefilter aggregate over unbounded group.
  kNotFound,          // Missing catalog object, property, column.
  kAlreadyExists,     // Duplicate catalog object.
  kResourceExhausted, // Evaluation guard tripped (configurable limits).
  kUnimplemented,     // Feature declared by the standard but not built.
  kInternal,          // Invariant violation inside the engine.
};

/// Returns a stable human-readable name for `code` ("OK", "SyntaxError", ...).
const char* StatusCodeName(StatusCode code);

/// Value-type error carrier used instead of exceptions, following the
/// RocksDB/Arrow idiom. A default-constructed Status is OK. Statuses are
/// cheap to copy (small string payload only in the error case).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status SyntaxError(std::string msg) {
    return Status(StatusCode::kSyntaxError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status NonTerminating(std::string msg) {
    return Status(StatusCode::kNonTerminating, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kSyntaxError: return "SyntaxError";
    case StatusCode::kSemanticError: return "SemanticError";
    case StatusCode::kNonTerminating: return "NonTerminating";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

/// Propagates a non-OK Status from an expression to the caller.
#define GPML_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::gpml::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace gpml

#endif  // GPML_COMMON_STATUS_H_
