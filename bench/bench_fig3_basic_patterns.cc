// E3 (Figure 3): the three basic pattern shapes — node pattern, edge
// pattern, arbitrary-length path pattern — on the scaled banking graph.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace gpml {
namespace {

using bench::RunOrDie;

PropertyGraph& Graph(int accounts) {
  static std::map<int, PropertyGraph>* cache =
      new std::map<int, PropertyGraph>();
  auto it = cache->find(accounts);
  if (it == cache->end()) {
    FraudGraphOptions options;
    options.num_accounts = accounts;
    it = cache->emplace(accounts, MakeFraudGraph(options)).first;
  }
  return it->second;
}

void BM_Fig3a_NodePattern(benchmark::State& state) {
  PropertyGraph& g = Graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunOrDie(g, "MATCH (x:Account WHERE x.isBlocked='yes')"));
  }
}
BENCHMARK(BM_Fig3a_NodePattern)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Fig3b_EdgePattern(benchmark::State& state) {
  PropertyGraph& g = Graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunOrDie(
        g,
        "MATCH (x:Account WHERE x.isBlocked='yes')"
        "-[e:Transfer WHERE e.amount>5M]->"
        "(y:Account WHERE y.isBlocked='no')"));
  }
}
BENCHMARK(BM_Fig3b_EdgePattern)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Fig3c_PathPattern(benchmark::State& state) {
  // Arbitrary-length Transfer chains into blocked accounts; ANY keeps one
  // witness per endpoint pair (the unrestricted set would be astronomical).
  PropertyGraph& g = Graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunOrDie(g,
                 "MATCH ANY (x:Account WHERE x.isBlocked='no')"
                 "-[:Transfer]->+(y:Account WHERE y.isBlocked='yes')"));
  }
}
BENCHMARK(BM_Fig3c_PathPattern)->Arg(100)->Arg(300)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace gpml
