#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/sample_graph.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::Rows;

// E12: graphical predicates (§4.7).

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest() {
    GraphBuilder b;
    b.AddNode("u", {"N"});
    b.AddNode("v", {"N"});
    b.AddDirectedEdge("d", "u", "v", {"E"});
    b.AddUndirectedEdge("a", "u", "v", {"E"});
    g_ = std::move(std::move(b).Build()).value();
  }
  PropertyGraph g_;
};

TEST_F(PredicateTest, IsDirected) {
  EXPECT_EQ(Rows(g_, "MATCH (x)-[e]-(y) WHERE e IS DIRECTED", "e"),
            (std::vector<std::string>{"d", "d"}));
  EXPECT_EQ(Rows(g_, "MATCH (x)-[e]-(y) WHERE NOT e IS DIRECTED", "e"),
            (std::vector<std::string>{"a", "a"}));
}

TEST_F(PredicateTest, IsSourceOf) {
  // -[e]- is ambiguous about orientation; the postfilter pins it.
  EXPECT_EQ(
      Rows(g_, "MATCH (x)-[e]-(y) WHERE x IS SOURCE OF e", "x, e, y"),
      (std::vector<std::string>{"u|d|v"}));
}

TEST_F(PredicateTest, IsDestinationOf) {
  EXPECT_EQ(
      Rows(g_, "MATCH (x)-[e]-(y) WHERE x IS DESTINATION OF e", "x, e, y"),
      (std::vector<std::string>{"v|d|u"}));
}

TEST_F(PredicateTest, UndirectedEdgeHasNoSource) {
  EXPECT_TRUE(
      Rows(g_, "MATCH (x)~[e]~(y) WHERE x IS SOURCE OF e", "x").empty());
}

TEST_F(PredicateTest, SamePredicate) {
  PropertyGraph g = BuildPaperGraph();
  // Triangle query via SAME instead of variable reuse.
  std::vector<std::string> direct = Rows(
      g, "MATCH (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s)",
      "s, s1, s2");
  std::vector<std::string> same = Rows(
      g,
      "MATCH (s)-[:Transfer]->(s1)-[:Transfer]->(s2)-[:Transfer]->(s3) "
      "WHERE SAME(s, s3)",
      "s, s1, s2");
  EXPECT_EQ(direct, same);
  EXPECT_EQ(direct, (std::vector<std::string>{"a1|a3|a5", "a3|a5|a1",
                                              "a5|a1|a3"}))
      << "the a1->a3->a5->a1 Transfer triangle from its three rotations";
  // The 4-cycle a2->a4->a6->a3->a2 via SAME on a fresh end variable.
  EXPECT_EQ(
      Rows(g,
           "MATCH (s)-[:Transfer]->(a)-[:Transfer]->(b)-[:Transfer]->(c)"
           "-[:Transfer]->(s2) WHERE SAME(s, s2)",
           "s")
          .size(),
      4u);
}

TEST_F(PredicateTest, AllDifferent) {
  PropertyGraph g = BuildPaperGraph();
  std::vector<std::string> rows = Rows(
      g,
      "MATCH (x)-[:Transfer]->(y)-[:Transfer]->(z) "
      "WHERE ALL_DIFFERENT(x, y, z)",
      "x, y, z");
  for (const std::string& r : rows) {
    // No repeated account in any row.
    std::vector<std::string> parts = Split(r, '|');
    EXPECT_NE(parts[0], parts[1]);
    EXPECT_NE(parts[1], parts[2]);
    EXPECT_NE(parts[0], parts[2]);
  }
  // a5->a1->a3 qualifies; a3->a5 then a5->a1: also fine. The 2-walks that
  // return to the start (none here since no 2-cycles) would be excluded.
  EXPECT_FALSE(rows.empty());
}

TEST_F(PredicateTest, EqualityOfElementReferences) {
  PropertyGraph g = BuildPaperGraph();
  // GQL permits x = y on elements; SAME is the portable form (§4.7).
  EXPECT_EQ(
      Rows(g, "MATCH (x:City), (y:Country) WHERE x = y", "x"),
      (std::vector<std::string>{"c2"}));
  EXPECT_EQ(
      Rows(g, "MATCH (x:City), (y:Country) WHERE SAME(x, y)", "x"),
      (std::vector<std::string>{"c2"}));
}

TEST_F(PredicateTest, IsNullOnMissingProperty) {
  PropertyGraph g = BuildPaperGraph();
  // Accounts have no 'name' property; countries do.
  EXPECT_EQ(Rows(g, "MATCH (x:Country) WHERE x.name IS NOT NULL", "x").size(),
            2u);
  EXPECT_EQ(
      Rows(g, "MATCH (x:Account) WHERE x.name IS NULL", "x").size(), 6u);
}

TEST_F(PredicateTest, OrientationPredicatesInPostfilterOfAnyEdge) {
  // §4.2: "Even if the edge pattern is ambiguous about the orientation of
  // e, we may wish to refer to this orientation in a postfilter."
  PropertyGraph g = BuildPaperGraph();
  std::vector<std::string> rows = Rows(
      g,
      "MATCH (s WHERE s.owner='Scott')-[e:Transfer]-(o) "
      "WHERE s IS SOURCE OF e",
      "e, o");
  EXPECT_EQ(rows, (std::vector<std::string>{"t1|a3"}));
  rows = Rows(g,
              "MATCH (s WHERE s.owner='Scott')-[e:Transfer]-(o) "
              "WHERE s IS DESTINATION OF e",
              "e, o");
  EXPECT_EQ(rows, (std::vector<std::string>{"t8|a5"}));
}

}  // namespace
}  // namespace gpml
