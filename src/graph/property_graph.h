#ifndef GPML_GRAPH_PROPERTY_GRAPH_H_
#define GPML_GRAPH_PROPERTY_GRAPH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace gpml {

namespace planner {
struct GraphStats;  // planner/stats.h; cached on the graph, see below.
struct PlanCache;   // planner/plan_cache.h; cached on the graph, see below.
}  // namespace planner

/// Dense integer handle of a node within one PropertyGraph.
using NodeId = uint32_t;
/// Dense integer handle of an edge within one PropertyGraph.
using EdgeId = uint32_t;

inline constexpr uint32_t kInvalidId = 0xffffffffu;

/// A reference to a graph element (node or edge) — the codomain of variable
/// bindings in the execution model of §6.
struct ElementRef {
  enum class Kind : uint8_t { kNode, kEdge };
  Kind kind = Kind::kNode;
  uint32_t id = kInvalidId;

  static ElementRef Node(NodeId n) { return {Kind::kNode, n}; }
  static ElementRef Edge(EdgeId e) { return {Kind::kEdge, e}; }
  bool is_node() const { return kind == Kind::kNode; }
  bool is_edge() const { return kind == Kind::kEdge; }

  friend bool operator==(const ElementRef& a, const ElementRef& b) {
    return a.kind == b.kind && a.id == b.id;
  }
  friend bool operator<(const ElementRef& a, const ElementRef& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.id < b.id;
  }
};

struct ElementRefHash {
  size_t operator()(const ElementRef& r) const {
    // splitmix64 finalizer over (kind, id). Computed in uint64_t so the mix
    // is well-defined (and doesn't collapse) when size_t is 32 bits.
    uint64_t x = (static_cast<uint64_t>(r.kind) << 32) | r.id;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

/// How an edge is traversed within a path: a directed edge can be walked
/// along its direction (forward) or against it (backward); an undirected
/// edge has no orientation. Edge patterns of Figure 5 constrain which
/// traversals are admissible.
enum class Traversal : uint8_t { kForward, kBackward, kUndirected };

/// Payload common to nodes and edges: external name, label set, properties.
/// Labels are kept sorted for deterministic printing and fast subset tests.
struct ElementData {
  std::string name;                       // External id, e.g. "a1", "t5".
  std::vector<std::string> labels;        // Sorted, unique.
  std::map<std::string, Value> properties;

  bool HasLabel(const std::string& label) const;
  /// Missing property -> NULL (the standard's semantics for x.prop).
  const Value& GetProperty(const std::string& name) const;
};

struct NodeData : ElementData {};

struct EdgeData : ElementData {
  bool directed = true;
  /// For directed edges: source/target. For undirected: the two endpoints in
  /// insertion order (self-loops allowed in both cases, Def. 2.1).
  NodeId u = kInvalidId;
  NodeId v = kInvalidId;
};

/// An incident-edge record in a node's adjacency list.
struct Adjacency {
  EdgeId edge;
  NodeId neighbor;       // The endpoint reached by this traversal.
  Traversal traversal;   // How `edge` is crossed when leaving this node.
};

/// A property graph per Definition 2.1: finite node and edge sets, a total
/// endpoint function mapping each edge to an ordered pair (directed) or an
/// unordered pair (undirected) of nodes, a total label function and a partial
/// property function on elements. It is a multigraph and a pseudograph:
/// parallel edges and self-loops are allowed, on both directed and
/// undirected edges.
///
/// The class is an immutable-after-construction store: build through
/// GraphBuilder (or the pgq::GraphView materializer), then query. All engine
/// hot paths work on dense integer ids; external names are kept for result
/// rendering and tests.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  // Movable but not copyable: graphs can be large, copies should be explicit.
  PropertyGraph(PropertyGraph&&) = default;
  PropertyGraph& operator=(PropertyGraph&&) = default;
  PropertyGraph(const PropertyGraph&) = delete;
  PropertyGraph& operator=(const PropertyGraph&) = delete;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  const NodeData& node(NodeId id) const { return nodes_[id]; }
  const EdgeData& edge(EdgeId id) const { return edges_[id]; }
  const ElementData& element(const ElementRef& ref) const {
    return ref.is_node() ? static_cast<const ElementData&>(nodes_[ref.id])
                         : static_cast<const ElementData&>(edges_[ref.id]);
  }

  /// All admissible single-step traversals leaving `n` (directed out-edges
  /// forward, directed in-edges backward, undirected incident edges).
  const std::vector<Adjacency>& adjacencies(NodeId n) const {
    return adjacency_[n];
  }

  /// Lookup by external name; kInvalidId when absent.
  NodeId FindNode(const std::string& name) const;
  EdgeId FindEdge(const std::string& name) const;

  /// Nodes carrying `label`; empty vector for unknown labels.
  const std::vector<NodeId>& NodesWithLabel(const std::string& label) const;
  const std::vector<EdgeId>& EdgesWithLabel(const std::string& label) const;

  /// The endpoint reached when crossing `e` from `from` with `t`;
  /// kInvalidId if the traversal is not admissible from that endpoint.
  NodeId Cross(EdgeId e, NodeId from, Traversal t) const;

  /// Human-readable one-line description ("6 nodes, 8 edges").
  std::string Summary() const;

  /// Process-unique identity of this graph's contents, assigned at
  /// construction and carried along by moves (identity follows the data).
  /// Derived-data caches (plan cache) key on it so an entry can never be
  /// served for a different graph, even across moved-into slots.
  uint64_t identity_token() const { return identity_token_; }

  /// Slot for the planner's graph statistics, computed lazily on first use
  /// (see planner::GetStats). The graph is immutable, so a cached derivation
  /// never goes stale. Accessors use atomic shared_ptr operations: concurrent
  /// read-only matching over one shared graph stays race-free even when two
  /// threads compute the stats at once (last store wins, both results are
  /// equivalent).
  std::shared_ptr<const planner::GraphStats> stats_cache() const {
    return std::atomic_load(&stats_cache_);
  }
  void set_stats_cache(std::shared_ptr<const planner::GraphStats> s) const {
    std::atomic_store(&stats_cache_, std::move(s));
  }

  /// Slot for compiled-plan reuse (see planner/plan_cache.h), with the same
  /// atomic-shared_ptr discipline as the stats slot: the cache object itself
  /// is an immutable snapshot, inserts publish a copied-and-extended
  /// snapshot, and racing inserts lose at worst an entry (last store wins),
  /// costing a future recompute, never a wrong plan.
  std::shared_ptr<const planner::PlanCache> plan_cache() const {
    return std::atomic_load(&plan_cache_);
  }
  void set_plan_cache(std::shared_ptr<const planner::PlanCache> c) const {
    std::atomic_store(&plan_cache_, std::move(c));
  }

 private:
  friend class GraphBuilder;

  void BuildIndexes();

  /// Monotonic process-wide counter backing identity_token().
  static uint64_t NextIdentityToken();

  std::vector<NodeData> nodes_;
  std::vector<EdgeData> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
  std::unordered_map<std::string, NodeId> node_by_name_;
  std::unordered_map<std::string, EdgeId> edge_by_name_;
  std::unordered_map<std::string, std::vector<NodeId>> nodes_by_label_;
  std::unordered_map<std::string, std::vector<EdgeId>> edges_by_label_;
  mutable std::shared_ptr<const planner::GraphStats> stats_cache_;
  mutable std::shared_ptr<const planner::PlanCache> plan_cache_;
  uint64_t identity_token_ = NextIdentityToken();
};

}  // namespace gpml

#endif  // GPML_GRAPH_PROPERTY_GRAPH_H_
