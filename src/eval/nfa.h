#ifndef GPML_EVAL_NFA_H_
#define GPML_EVAL_NFA_H_

#include <memory>
#include <vector>

#include "ast/ast.h"
#include "common/result.h"
#include "eval/binding.h"
#include "eval/expr_eval.h"

namespace gpml {

/// Sentinel for Instr::edge_label_sym: no single CSR partition covers this
/// edge step; expansion scans the full adjacency list.
inline constexpr Symbol kNoLabelPartition = 0xfffffffeu;

/// One instruction of the compiled pattern program. The matcher interprets
/// these over the graph: kEdgeStep is the only instruction that consumes a
/// graph edge; everything else is "epsilon" work (checks, bookkeeping,
/// forks). Quantifiers compile into copies plus a guarded loop, which keeps
/// the runtime a plain NFA — the execution-model expansion of §6.3 made
/// lazy.
struct Instr {
  enum class Op {
    kNodeCheck,   // Match current node against `node`; bind var.
    kEdgeStep,    // Traverse one admissible edge; bind var.
    kSplit,       // Fork: continue at next and at alt.
    kJump,        // Continue at next.
    kFrameBegin,  // Push an aggregation frame; quantifier frames also bump
                  // the iteration serial at `depth` (§6 superscripts).
    kWhereCheck,  // Evaluate `where` against the innermost frame.
    kFrameEnd,    // Pop frame; guarded loop frames require edge progress.
    kScopeBegin,  // Open restrictor scope `scope_id`.
    kScopeEnd,    // Close restrictor scope (SIMPLE finalization).
    kTag,         // Record multiset-alternation provenance (§4.5).
    kAccept,      // Pattern complete.
  };

  Op op = Op::kAccept;
  int next = -1;
  int alt = -1;                      // kSplit only.
  const NodePattern* node = nullptr;
  const EdgePattern* edge = nullptr;
  int var = -1;                      // Interned variable id.
  /// Graph-bound acceleration slots, filled by BindProgramToGraph (and left
  /// at their defaults on unbound programs, which then run the legacy
  /// string-matching paths):
  int lpred = -1;                    // kNodeCheck/kEdgeStep: index into
                                     // Program::label_preds; -1 = no label
                                     // constraint or unbound program.
  Symbol edge_label_sym = kNoLabelPartition;  // kEdgeStep: CSR partition to
                                     // scan; kNoLabelPartition = full
                                     // adjacency scan, kInvalidSymbol = the
                                     // label is unknown to the graph (empty
                                     // expansion).
  bool edge_prefiltered = false;     // kEdgeStep: bucket membership already
                                     // implies the label expression (plain
                                     // single-name labels), skip the check.
  int depth = 0;                     // Quantifier depth of this position.
  bool quant_frame = false;          // kFrameBegin: iteration frame.
  bool guard_progress = false;       // kFrameEnd: fail on zero-edge loop.
  ExprPtr where;                     // kWhereCheck.
  int scope_id = -1;                 // kScopeBegin/kScopeEnd.
  Restrictor restrictor = Restrictor::kNone;  // kScopeBegin.
  int32_t tag = 0;                   // kTag.
};

/// The block-at-a-time execution plan of a program (docs/vectorized.md).
/// Built by BindProgramToGraph for programs of the linear fixed-length shape
/// `NodeCheck (EdgeStep NodeCheck)* Accept` — no selector, splits, frames,
/// restrictor scopes, or provenance tags — whose inline WHEREs all compile
/// into PredicateKernels. Anything else leaves `eligible` false and the
/// matcher runs the scalar interpreter (which stays the differential oracle
/// either way; see MatcherOptions::use_batch).
struct BatchPlan {
  /// One kNodeCheck position. `nodes[i]` binds the node reached after i
  /// edge hops.
  struct NodeStep {
    int pc = -1;   // Program position of the kNodeCheck.
    int var = -1;  // Interned variable id.
    /// Implicit equi-join (§4.2): the variable already bound at
    /// nodes[eq_pos]; a candidate must be that exact node. -1 for first
    /// occurrences and anonymous variables.
    int eq_pos = -1;
    /// The label predicate is subsumed by the equi-join: this position's
    /// label expression is absent or textually identical to the one at
    /// eq_pos, which the joined-to node already passed — so the batch path
    /// skips re-evaluating it on cyclic re-visits (the scalar interpreter
    /// re-checks redundantly; see the Figure 4 regression test).
    bool label_implied = false;
    bool has_kernel = false;  // Inline WHERE present (compiled below).
    PredicateKernel kernel;
  };
  /// One kEdgeStep position; `edges[i]` is hop i.
  struct EdgeStep {
    int pc = -1;
    int var = -1;
    int eq_pos = -1;  // Into `edges`, same discipline as NodeStep::eq_pos.
    bool has_kernel = false;
    PredicateKernel kernel;
  };
  std::vector<NodeStep> nodes;  // hops + 1 entries.
  std::vector<EdgeStep> edges;  // One per hop.
  bool eligible = false;
};

/// A compiled top-level path pattern.
struct Program {
  std::vector<Instr> code;
  int start = 0;
  int max_depth = 0;   // Deepest quantifier nesting (serial array size).
  int num_scopes = 0;
  Selector selector;
  int path_var = -1;   // Interned id of the path variable, -1 if none.
  bool has_unbounded = false;  // Any {m,} quantifier in the pattern.
  PathPatternPtr root; // Keeps the normalized AST alive (instrs borrow).

  /// Label expressions compiled against one graph's symbol table (see
  /// BindProgramToGraph); indexed by Instr::lpred. Empty on unbound
  /// programs.
  std::vector<CompiledLabelPred> label_preds;

  /// Block-at-a-time plan, built when BindProgramToGraph is given the
  /// variable table; nullptr (or !eligible) routes to the scalar
  /// interpreter. Stored on the program so plan-cache hits reuse the
  /// compiled kernels exactly like they reuse label_preds.
  std::shared_ptr<const BatchPlan> batch;

  std::string ToString() const;  // Disassembly for tests/debugging.
};

/// Compiles one normalized path declaration. The declaration-level
/// restrictor becomes scope 0 around the whole pattern; the selector is
/// carried as metadata for the matcher.
Result<Program> CompilePattern(const PathPatternDecl& decl,
                               const VarTable& vars);

/// Binds `program` to `g`'s interned storage layer: every node/edge label
/// expression compiles once into a symbol-id predicate, and every edge step
/// resolves the CSR partition it can scan — the most selective required
/// label conjunct, or the exact partition (no per-edge label re-check) when
/// the expression is a single plain name. Programs bound to one graph must
/// only run over that graph; the plan cache guarantees this by keying
/// entries on the graph identity token. Unbound programs still execute
/// correctly through the legacy string paths.
///
/// When `vars` is non-null the batch plan is built too (Program::batch):
/// shape eligibility, per-position equi-join targets, bind-time label
/// hoisting, and the inline-WHERE predicate kernels — all derived data, so
/// both the batch and scalar routes can run the same bound program.
void BindProgramToGraph(Program* program, const PropertyGraph& g,
                        const VarTable* vars = nullptr);

}  // namespace gpml

#endif  // GPML_EVAL_NFA_H_
