#ifndef GPML_PLANNER_STATS_H_
#define GPML_PLANNER_STATS_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "graph/property_graph.h"

namespace gpml {
namespace planner {

/// Average adjacency fanout of the nodes carrying one label, split by how
/// the incident edge would be traversed when leaving the node.
struct LabelDegree {
  double avg_out = 0;         // Directed out-edges (forward traversal).
  double avg_in = 0;          // Directed in-edges (backward traversal).
  double avg_undirected = 0;  // Undirected incident edges.
};

/// Summary statistics of one PropertyGraph, collected in a single pass and
/// cached on the graph (see GetStats). Everything the planner's cost model
/// consumes: per-label cardinalities for seed estimation, label-path
/// frequencies and per-label degrees for expansion estimation.
struct GraphStats {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_labeled_nodes = 0;  // Nodes with at least one label (`%`).
  size_t num_labeled_edges = 0;

  std::map<std::string, size_t> node_label_counts;
  std::map<std::string, size_t> edge_label_counts;

  /// Frequencies of (source-node-label, edge-label, target-node-label)
  /// one-step paths. Directed edges contribute their (u-label, e-label,
  /// v-label) combinations; undirected edges contribute both orders. Elements
  /// with several labels contribute one entry per label combination.
  std::map<std::tuple<std::string, std::string, std::string>, size_t>
      label_path_counts;

  /// The undirected-edge share of label_path_counts (both orders), kept
  /// separately so the planner can cost each edge-pattern orientation with
  /// exactly the traversals it admits (a `~[ ]~` pattern never crosses a
  /// directed edge, and `-[ ]->` never an undirected one).
  std::map<std::tuple<std::string, std::string, std::string>, size_t>
      undirected_label_path_counts;

  /// Average degrees of the nodes carrying each label.
  std::map<std::string, LabelDegree> degree_by_label;

  /// 0 when the label is unknown.
  size_t NodeLabelCount(const std::string& label) const;
  size_t EdgeLabelCount(const std::string& label) const;
  size_t LabelPathCount(const std::string& src_label,
                        const std::string& edge_label,
                        const std::string& dst_label) const;
  size_t UndirectedLabelPathCount(const std::string& src_label,
                                  const std::string& edge_label,
                                  const std::string& dst_label) const;

  /// Average total fanout (out + in + undirected) of nodes with `label`;
  /// falls back to the graph-wide average for unknown labels.
  double AvgDegree(const std::string& label) const;
  /// Graph-wide average adjacency-list length.
  double AvgDegreeOverall() const;

  /// Multi-line human-readable rendering (EXPLAIN VERBOSE, tests).
  std::string ToString() const;
};

/// Collects GraphStats in one pass over nodes and edges.
GraphStats ComputeStats(const PropertyGraph& g);

/// The cached stats of `g`: computed on first call, stored in the graph's
/// derived-data slot, shared by every subsequent planner invocation.
std::shared_ptr<const GraphStats> GetStats(const PropertyGraph& g);

}  // namespace planner
}  // namespace gpml

#endif  // GPML_PLANNER_STATS_H_
