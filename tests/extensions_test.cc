// The §7.1 Language Opportunities implemented beyond the core paper:
// isomorphic match modes, cheapest (weighted) paths with and without hop
// bounds, and JSON export of bindings.

#include <gtest/gtest.h>

#include "baseline/rpq_nfa.h"
#include "gql/json_export.h"
#include "graph/graph_builder.h"
#include "graph/sample_graph.h"
#include "parser/parser.h"
#include "test_util.h"

namespace gpml {
namespace {

using testing_util::CountRows;
using testing_util::Rows;

// --- match modes (edge-isomorphism) ----------------------------------------

TEST(MatchModeTest, ParsesAndPrints) {
  Result<GraphPattern> g =
      ParseGraphPattern("MATCH DIFFERENT EDGES (x)->(y), (y)->(z)");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->mode, MatchMode::kDifferentEdges);
  g = ParseGraphPattern("MATCH DIFFERENT NODES (x)->(y)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->mode, MatchMode::kDifferentNodes);
  g = ParseGraphPattern("MATCH REPEATABLE ELEMENTS (x)->(y)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->mode, MatchMode::kRepeatableElements);
  EXPECT_FALSE(ParseGraphPattern("MATCH DIFFERENT THINGS (x)").ok());
}

TEST(MatchModeTest, DifferentEdgesFiltersRepeats) {
  PropertyGraph g = BuildPaperGraph();
  // Two decls both matching one edge: homomorphism allows e1 == e2.
  size_t repeatable = CountRows(
      g, "MATCH (x)-[e1:Transfer]->(y), (x)-[e2:Transfer]->(y)");
  size_t different = CountRows(
      g, "MATCH DIFFERENT EDGES (x)-[e1:Transfer]->(y), "
         "(x)-[e2:Transfer]->(y)");
  EXPECT_EQ(repeatable, 8u) << "each transfer matched by both variables";
  EXPECT_EQ(different, 0u) << "no two parallel transfers share endpoints";
}

TEST(MatchModeTest, DifferentEdgesAllowsDistinctPairs) {
  GraphBuilder b;
  b.AddNode("u", {"N"});
  b.AddNode("v", {"N"});
  b.AddDirectedEdge("e1", "u", "v", {"T"});
  b.AddDirectedEdge("e2", "u", "v", {"T"});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  EXPECT_EQ(CountRows(g, "MATCH (x)-[a:T]->(y), (x)-[b:T]->(y)"), 4u);
  // Edge-isomorphic: (e1,e2) and (e2,e1) remain.
  EXPECT_EQ(CountRows(
                g, "MATCH DIFFERENT EDGES (x)-[a:T]->(y), (x)-[b:T]->(y)"),
            2u);
}

TEST(MatchModeTest, DifferentEdgesWithinOnePathPattern) {
  PropertyGraph g = BuildPaperGraph();
  // The 4-walk Charles→Scott repeats t8; DIFFERENT EDGES excludes it.
  const std::string body =
      "(x:Account WHERE x.owner='Charles')-[e:Transfer]->{4}"
      "(y:Account WHERE y.owner='Scott')";
  EXPECT_EQ(CountRows(g, "MATCH " + body), 1u);
  EXPECT_EQ(CountRows(g, "MATCH DIFFERENT EDGES " + body), 0u);
}

TEST(MatchModeTest, DifferentNodesSemantics) {
  PropertyGraph g = BuildPaperGraph();
  // Distinctness applies to logical bindings: the closing equi-join of a
  // triangle binds s once, so cycles via variable reuse survive, while a
  // fresh variable bound to an already-used node does not.
  const std::string triangle =
      "(s)-[:Transfer]->(m)-[:Transfer]->(t)-[:Transfer]->(s)";
  EXPECT_EQ(CountRows(g, "MATCH " + triangle), 3u);
  EXPECT_EQ(CountRows(g, "MATCH DIFFERENT NODES " + triangle), 3u);
  // Two distinct variables on one node: rejected.
  EXPECT_EQ(CountRows(g, "MATCH (x:City), (y:Country) WHERE SAME(x, y)"),
            1u);
  EXPECT_EQ(CountRows(g, "MATCH DIFFERENT NODES (x:City), (y:Country) "
                         "WHERE SAME(x, y)"),
            0u);
  // Anonymous positions count separately: a walk revisiting a node through
  // anonymous middles is rejected.
  EXPECT_GT(CountRows(g, "MATCH (a)-[:Transfer]->()-[:Transfer]->()"
                         "-[:Transfer]->()-[:Transfer]->(a)"),
            0u);
  EXPECT_EQ(CountRows(g, "MATCH DIFFERENT NODES (a)-[:Transfer]->()"
                         "-[:Transfer]->()-[:Transfer]->()-[:Transfer]->"
                         "(b) WHERE SAME(a, b)"),
            0u);
}

// --- cheapest paths (weights) ----------------------------------------------

class CheapestTest : public ::testing::Test {
 protected:
  CheapestTest() {
    // Two routes u -> w: direct (cost 10) and via v (cost 2 + 3 = 5, two
    // hops).
    GraphBuilder b;
    b.AddNode("u", {"N"});
    b.AddNode("v", {"N"});
    b.AddNode("w", {"N"});
    b.AddDirectedEdge("direct", "u", "w", {"T"},
                      {{"cost", Value::Int(10)}});
    b.AddDirectedEdge("leg1", "u", "v", {"T"}, {{"cost", Value::Int(2)}});
    b.AddDirectedEdge("leg2", "v", "w", {"T"}, {{"cost", Value::Int(3)}});
    g_ = std::move(std::move(b).Build()).value();
    nfa_ = baseline::BuildNfa(**baseline::ParseRegex("T+"));
  }
  PropertyGraph g_;
  baseline::RpqNfa nfa_;
};

TEST_F(CheapestTest, PrefersCheaperDetour) {
  Result<Path> p = baseline::CheapestRegexPath(
      g_, nfa_, g_.FindNode("u"), g_.FindNode("w"), "cost");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->ToString(g_), "path(u,leg1,v,leg2,w)");
}

TEST_F(CheapestTest, HopBoundForcesDirectRoute) {
  // "Most scenic route in at most 2 hours" (§7.2): with max 1 hop, the
  // expensive direct edge is the only option.
  Result<Path> p = baseline::CheapestRegexPathWithinHops(
      g_, nfa_, g_.FindNode("u"), g_.FindNode("w"), "cost", /*max_hops=*/1);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->ToString(g_), "path(u,direct,w)");
  // With 2 hops the detour wins again.
  p = baseline::CheapestRegexPathWithinHops(
      g_, nfa_, g_.FindNode("u"), g_.FindNode("w"), "cost", /*max_hops=*/2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Length(), 2u);
}

TEST_F(CheapestTest, MissingWeightUsesDefault) {
  Result<Path> p = baseline::CheapestRegexPath(
      g_, nfa_, g_.FindNode("u"), g_.FindNode("w"), "nonexistent");
  ASSERT_TRUE(p.ok());
  // All edges cost 1: the 1-hop direct route is cheapest.
  EXPECT_EQ(p->ToString(g_), "path(u,direct,w)");
}

TEST_F(CheapestTest, NegativeWeightRejected) {
  GraphBuilder b;
  b.AddNode("x", {"N"});
  b.AddNode("y", {"N"});
  b.AddDirectedEdge("e", "x", "y", {"T"}, {{"cost", Value::Int(-1)}});
  PropertyGraph g = std::move(std::move(b).Build()).value();
  Result<Path> p = baseline::CheapestRegexPath(g, nfa_, 0, 1, "cost");
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CheapestTest, UnreachableWithinBound) {
  Result<Path> p = baseline::CheapestRegexPathWithinHops(
      g_, nfa_, g_.FindNode("u"), g_.FindNode("w"), "cost", /*max_hops=*/0);
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

TEST_F(CheapestTest, PaperGraphCheapestByAmount) {
  PropertyGraph g = BuildPaperGraph();
  baseline::RpqNfa nfa = baseline::BuildNfa(
      **baseline::ParseRegex("Transfer+"));
  // Cheapest (by transferred amount) Dave→Aretha route: t6(4M)+t8(9M)+
  // t1(8M)+t2(10M)=31M vs t5(10M)+t2(10M)=20M: the 2-hop route wins.
  Result<Path> p = baseline::CheapestRegexPath(
      g, nfa, g.FindNode("a6"), g.FindNode("a2"), "amount");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(g), "path(a6,t5,a3,t2,a2)");
}

// --- JSON export -------------------------------------------------------------

TEST(JsonExportTest, EscapesStrings) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

TEST(JsonExportTest, ElementObject) {
  PropertyGraph g = BuildPaperGraph();
  std::string node = ElementToJson(g, ElementRef::Node(g.FindNode("a4")));
  EXPECT_NE(node.find("\"kind\":\"node\""), std::string::npos);
  EXPECT_NE(node.find("\"name\":\"a4\""), std::string::npos);
  EXPECT_NE(node.find("\"labels\":[\"Account\"]"), std::string::npos);
  EXPECT_NE(node.find("\"owner\":\"Jay\""), std::string::npos);

  std::string edge = ElementToJson(g, ElementRef::Edge(g.FindEdge("t4")));
  EXPECT_NE(edge.find("\"kind\":\"edge\""), std::string::npos);
  EXPECT_NE(edge.find("\"directed\":true"), std::string::npos);
  EXPECT_NE(edge.find("\"endpoints\":[\"a4\",\"a6\"]"), std::string::npos);
  EXPECT_NE(edge.find("\"amount\":10000000"), std::string::npos);
}

TEST(JsonExportTest, RowsWithSingletonGroupPathAndNull) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<MatchOutput> out = engine.Match(
      "MATCH p = (a WHERE a.owner='Jay')[-[b:Transfer]->]{2}(c) "
      "[~[:hasPhone]~(ph:IP)]?");
  ASSERT_TRUE(out.ok()) << out.status();
  std::string json = ExportJson(*out, g);
  // Two rows (a4->a6->{a3,a5}), group b as array of two edges, unbound
  // conditional ph as null, path p as a path object.
  EXPECT_NE(json.find("\"rows\":["), std::string::npos);
  EXPECT_NE(json.find("\"b\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":null"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"path\""), std::string::npos);
  EXPECT_NE(json.find("\"length\":2"), std::string::npos);
  // Valid JSON sanity: balanced braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(JsonExportTest, EmptyResult) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<MatchOutput> out = engine.Match("MATCH (x:NoSuchLabel)");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(ExportJson(*out, g), "{\"rows\":[]}");
}

}  // namespace
}  // namespace gpml
