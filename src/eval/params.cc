#include "eval/params.h"

#include <algorithm>

namespace gpml {

namespace {

using InfoMap = std::map<std::string, ParamInfo>;

/// Walks an expression tree marking every $parameter. `predicate_pos` is
/// true when the expression's own value is consumed as a predicate (the
/// root of a WHERE, or an operand of AND/OR/NOT), which is where a bare
/// $param must evaluate to a boolean.
void WalkExpr(const Expr& e, bool predicate_pos, InfoMap* out) {
  switch (e.kind) {
    case Expr::Kind::kParam: {
      ParamInfo& info = (*out)[e.var];
      info.name = e.var;
      if (predicate_pos) info.needs_bool = true;
      return;
    }
    case Expr::Kind::kBinary:
      switch (e.op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          WalkExpr(*e.lhs, /*predicate_pos=*/true, out);
          WalkExpr(*e.rhs, /*predicate_pos=*/true, out);
          return;
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          for (const ExprPtr* child : {&e.lhs, &e.rhs}) {
            if ((*child)->kind == Expr::Kind::kParam) {
              ParamInfo& info = (*out)[(*child)->var];
              info.name = (*child)->var;
              info.needs_numeric = true;
            } else {
              WalkExpr(**child, /*predicate_pos=*/false, out);
            }
          }
          return;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          // An ordered comparison against a *literal* pins the parameter's
          // comparability class: any other binding makes the predicate
          // UNKNOWN on every row (CompareValues never crosses classes).
          // Equality is not tightened — cross-type `=` is a legitimate
          // always-UNKNOWN miss rather than a binding mistake, and property
          // operands stay dynamically typed.
          for (const ExprPtr* child : {&e.lhs, &e.rhs}) {
            const ExprPtr& other = child == &e.lhs ? e.rhs : e.lhs;
            if ((*child)->kind == Expr::Kind::kParam &&
                other->kind == Expr::Kind::kLiteral) {
              ParamInfo& info = (*out)[(*child)->var];
              info.name = (*child)->var;
              if (other->literal.is_numeric()) info.needs_numeric = true;
              if (other->literal.is_string()) info.needs_string = true;
            } else {
              WalkExpr(**child, /*predicate_pos=*/false, out);
            }
          }
          return;
        default:  // kEq/kNeq: operands may be any value type.
          WalkExpr(*e.lhs, /*predicate_pos=*/false, out);
          WalkExpr(*e.rhs, /*predicate_pos=*/false, out);
          return;
      }
    case Expr::Kind::kNot:
      WalkExpr(*e.lhs, /*predicate_pos=*/true, out);
      return;
    default:
      for (const ExprPtr* child : {&e.lhs, &e.rhs, &e.arg}) {
        if (*child != nullptr) {
          WalkExpr(**child, /*predicate_pos=*/false, out);
        }
      }
      return;
  }
}

void WalkWhere(const ExprPtr& where, InfoMap* out) {
  if (where != nullptr) WalkExpr(*where, /*predicate_pos=*/true, out);
}

void WalkPathPattern(const PathPattern& p, InfoMap* out) {
  switch (p.kind) {
    case PathPattern::Kind::kConcat:
      for (const PathElement& e : p.elements) {
        switch (e.kind) {
          case PathElement::Kind::kNode:
            WalkWhere(e.node.where, out);
            break;
          case PathElement::Kind::kEdge:
            WalkWhere(e.edge.where, out);
            break;
          case PathElement::Kind::kParen:
          case PathElement::Kind::kQuantified:
          case PathElement::Kind::kOptional:
            WalkPathPattern(*e.sub, out);
            WalkWhere(e.where, out);
            break;
        }
      }
      return;
    case PathPattern::Kind::kUnion:
    case PathPattern::Kind::kAlternation:
      for (const PathPatternPtr& alt : p.alternatives) {
        WalkPathPattern(*alt, out);
      }
      return;
  }
}

ParamSignature FromMap(const InfoMap& map) {
  ParamSignature sig;
  sig.params.reserve(map.size());
  for (const auto& [name, info] : map) sig.params.push_back(info);
  return sig;  // Map iteration is name-sorted already.
}

InfoMap PatternMap(const GraphPattern& pattern) {
  InfoMap map;
  for (const PathPatternDecl& decl : pattern.paths) {
    WalkPathPattern(*decl.pattern, &map);
  }
  WalkWhere(pattern.where, &map);
  return map;
}

}  // namespace

const ParamInfo* ParamSignature::Find(const std::string& name) const {
  auto it = std::lower_bound(
      params.begin(), params.end(), name,
      [](const ParamInfo& p, const std::string& n) { return p.name < n; });
  if (it == params.end() || it->name != name) return nullptr;
  return &*it;
}

std::vector<std::string> ParamSignature::Names() const {
  std::vector<std::string> out;
  out.reserve(params.size());
  for (const ParamInfo& p : params) out.push_back(p.name);
  return out;
}

void ParamSignature::Merge(const ParamSignature& other) {
  InfoMap map;
  for (const ParamInfo& p : params) map[p.name] = p;
  for (const ParamInfo& p : other.params) {
    ParamInfo& info = map[p.name];
    info.name = p.name;
    info.needs_bool = info.needs_bool || p.needs_bool;
    info.needs_numeric = info.needs_numeric || p.needs_numeric;
    info.needs_string = info.needs_string || p.needs_string;
  }
  *this = FromMap(map);
}

ParamSignature CollectPatternParams(const GraphPattern& pattern) {
  return FromMap(PatternMap(pattern));
}

ParamSignature CollectStatementParams(const MatchStatement& stmt) {
  InfoMap map = PatternMap(stmt.pattern);
  for (const ReturnItem& item : stmt.return_items) {
    WalkExpr(*item.expr, /*predicate_pos=*/false, &map);
  }
  return FromMap(map);
}

ParamSignature CollectItemParams(const std::vector<ReturnItem>& items) {
  InfoMap map;
  for (const ReturnItem& item : items) {
    WalkExpr(*item.expr, /*predicate_pos=*/false, &map);
  }
  return FromMap(map);
}

Result<Params> PatternOnlyParams(const ParamSignature& pattern_sig,
                                 const ParamSignature& projection_sig,
                                 const Params& params) {
  Params kept;
  for (const auto& [name, value] : params) {
    if (pattern_sig.Find(name) != nullptr) {
      kept[name] = value;
    } else if (projection_sig.Find(name) == nullptr) {
      return Status::InvalidArgument("unknown parameter $" + name +
                                     ": the prepared query does not "
                                     "reference it");
    }
  }
  return kept;
}

Status ValidateParams(const ParamSignature& sig, const Params& params) {
  for (const auto& [name, value] : params) {
    if (sig.Find(name) == nullptr) {
      return Status::InvalidArgument("unknown parameter $" + name +
                                     ": the prepared query does not "
                                     "reference it");
    }
  }
  for (const ParamInfo& info : sig.params) {
    auto it = params.find(info.name);
    if (it == params.end()) {
      return Status::InvalidArgument("missing parameter $" + info.name);
    }
    const Value& v = it->second;
    if (v.is_null()) continue;  // NULL is bindable everywhere (3VL).
    if (info.needs_bool && !v.is_bool()) {
      return Status::InvalidArgument(
          "parameter $" + info.name + " is used as a predicate and must be "
          "BOOL or NULL, got " + ValueTypeName(v.type()));
    }
    if (info.needs_numeric && !v.is_numeric()) {
      return Status::InvalidArgument(
          "parameter $" + info.name + " is used in arithmetic or a numeric "
          "comparison and must be numeric or NULL, got " +
          ValueTypeName(v.type()));
    }
    if (info.needs_string && !v.is_string()) {
      return Status::InvalidArgument(
          "parameter $" + info.name + " is ordered against a string and "
          "must be STRING or NULL, got " + ValueTypeName(v.type()));
    }
  }
  return Status::OK();
}

}  // namespace gpml
