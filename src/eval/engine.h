#ifndef GPML_EVAL_ENGINE_H_
#define GPML_EVAL_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/result.h"
#include "eval/binding.h"
#include "eval/expr_eval.h"
#include "eval/matcher.h"
#include "graph/property_graph.h"
#include "planner/planner.h"
#include "semantics/analyze.h"

namespace gpml {

/// Execution counters of one Engine::Match call, aggregated over all path
/// declarations. Filled when EngineOptions::metrics points here; the
/// planner benchmarks compare these with the planner on and off.
struct EngineMetrics {
  size_t decls = 0;                // Path declarations executed.
  size_t seeded_nodes = 0;         // Start nodes seeded, summed over decls.
  size_t matcher_steps = 0;        // Matcher instructions executed.
  size_t reversed_decls = 0;       // Declarations run against the mirrored
                                   // pattern (right-end anchor).
  size_t seed_filtered_decls = 0;  // Declarations seeded from the bindings
                                   // of earlier declarations.
};

struct EngineOptions {
  MatcherOptions matcher;
  size_t max_rows = 1u << 20;  // Join-output guard.
  /// Statistics-driven planning: anchor-end selection (running a pattern
  /// from its more selective endpoint, mirrored when that is the right one),
  /// join ordering, and seed lists restricted to already-bound variables.
  /// Off reproduces the unplanned engine exactly (differential testing).
  bool use_planner = true;
  /// When non-null, reset and filled on every Match call.
  EngineMetrics* metrics = nullptr;
};

/// One solution of a graph pattern: a path binding per path declaration
/// (§6.5 "Multiple patterns"), sharing singleton variables.
struct ResultRow {
  std::vector<std::shared_ptr<const PathBinding>> bindings;
};

/// The output of pattern matching, self-contained: rows plus the compiled
/// context needed to interpret them (variable table, normalized pattern with
/// the expressions the rows may be projected through, per-declaration path
/// variables).
struct MatchOutput {
  std::vector<ResultRow> rows;
  std::shared_ptr<const VarTable> vars;
  GraphPattern normalized;        // Keeps pattern ASTs alive.
  std::vector<int> path_vars;     // Per declaration; -1 when absent.

  size_t size() const { return rows.size(); }
};

/// Expression scope over one result row: singleton lookups see the last
/// binding of a variable, group collections span the whole row, path
/// variables resolve to their declaration's matched path. Used for the
/// final WHERE postfilter and by both hosts for projection.
class RowScope : public EvalScope {
 public:
  RowScope(const MatchOutput& output, const ResultRow& row)
      : output_(output), row_(row) {}

  std::optional<ElementRef> LookupSingleton(int var) const override;
  std::vector<ElementRef> CollectGroup(int var) const override;
  const Path* LookupPath(int var) const override;

 private:
  const MatchOutput& output_;
  const ResultRow& row_;
};

/// The GPML processor of Figure 9: evaluates graph patterns over one
/// property graph. Both hosts (SQL/PGQ's GRAPH_TABLE and GQL sessions)
/// delegate here; the pre-projection semantics is identical in both, as the
/// paper requires.
class Engine {
 public:
  explicit Engine(const PropertyGraph& graph, EngineOptions options = {})
      : graph_(graph), options_(options) {}

  /// Full pipeline from MATCH text: parse, normalize (§6.2), analyze
  /// (§4.4/§4.6/§4.7), termination-check (§5), compile, match, join
  /// declarations on shared singletons, apply the final WHERE.
  Result<MatchOutput> Match(const std::string& match_text) const;

  /// Same, starting from a parsed (unnormalized) pattern.
  Result<MatchOutput> Match(const GraphPattern& pattern) const;

  /// The execution plan the engine would use for this pattern: normalize,
  /// analyze, then run the statistics-driven planner (or the direct plan
  /// when use_planner is off).
  Result<planner::Plan> Plan(const GraphPattern& pattern) const;

  /// Human-readable EXPLAIN of the plan (see planner/explain.h for the
  /// format); both hosts surface this for EXPLAIN statements.
  Result<std::string> Explain(const std::string& match_text) const;
  Result<std::string> Explain(const GraphPattern& pattern) const;

  const PropertyGraph& graph() const { return graph_; }
  const EngineOptions& options() const { return options_; }

 private:
  /// The shared front half of Match/Plan/Explain: normalize (§6.2), analyze
  /// (§4.4/§4.6/§4.7), termination-check (§5), intern variables.
  struct Prepared {
    GraphPattern normalized;
    std::shared_ptr<const VarTable> vars;
  };
  Result<Prepared> Prepare(const GraphPattern& pattern) const;

  Result<planner::Plan> PlanNormalized(const GraphPattern& normalized,
                                       const VarTable& vars) const;

  const PropertyGraph& graph_;
  EngineOptions options_;
};

}  // namespace gpml

#endif  // GPML_EVAL_ENGINE_H_
