#ifndef GPML_EVAL_EXPR_EVAL_H_
#define GPML_EVAL_EXPR_EVAL_H_

#include <optional>
#include <vector>

#include "ast/expr.h"
#include "common/result.h"
#include "common/value.h"
#include "eval/binding.h"
#include "eval/params.h"
#include "graph/path.h"
#include "graph/property_graph.h"

namespace gpml {

/// Where expression evaluation finds its variable bindings. Implementations
/// exist for the three evaluation contexts: in-flight search states (inline
/// and frame prefilters), joined result rows (postfilter, projection), and
/// the reference evaluator's rigid-pattern rows.
class EvalScope {
 public:
  virtual ~EvalScope() = default;

  /// Latest element bound to `var` visible as a singleton reference;
  /// nullopt when unbound (conditional variable not matched, or forward
  /// reference), which evaluates to NULL.
  virtual std::optional<ElementRef> LookupSingleton(int var) const = 0;

  /// All elements bound to `var` for group aggregation, innermost frame (or
  /// whole row for postfilters).
  virtual std::vector<ElementRef> CollectGroup(int var) const = 0;

  /// Path bound to a path variable, nullptr if none.
  virtual const Path* LookupPath(int var) const {
    (void)var;
    return nullptr;
  }

  /// The value bound to $name for this execution; nullptr when the scope
  /// carries no parameter bindings or the name is unbound (evaluating an
  /// unbound $param is an error — prepared-query bind validation makes
  /// this unreachable in the normal API flow).
  virtual const Value* LookupParam(const std::string& name) const {
    (void)name;
    return nullptr;
  }

 protected:
  /// Shared lookup helper for scope implementations holding a Params map.
  static const Value* FindParam(const Params* params,
                                const std::string& name) {
    if (params == nullptr) return nullptr;
    auto it = params->find(name);
    return it == params->end() ? nullptr : &it->second;
  }
};

/// The result of evaluating an expression: either a property value or an
/// element/path reference (element references arise from bare variable
/// references and can be compared, §4.7 / GQL element equality).
struct EvalValue {
  enum class Kind { kValue, kElement, kPath };
  Kind kind = Kind::kValue;
  Value value;
  ElementRef element;
  const Path* path = nullptr;

  static EvalValue Of(Value v) {
    EvalValue e;
    e.value = std::move(v);
    return e;
  }
  static EvalValue OfElement(ElementRef r) {
    EvalValue e;
    e.kind = Kind::kElement;
    e.element = r;
    return e;
  }
  static EvalValue OfPath(const Path* p) {
    EvalValue e;
    e.kind = Kind::kPath;
    e.path = p;
    return e;
  }
  bool is_null() const {
    return kind == Kind::kValue && value.is_null();
  }
};

/// Evaluates `expr` to a value. Unbound variables yield NULL; type errors
/// surface as Status.
Result<EvalValue> EvalExpr(const Expr& expr, const PropertyGraph& g,
                           const VarTable& vars, const EvalScope& scope);

/// Evaluates `expr` as a predicate under SQL three-valued logic; a binding
/// passes a filter only when the result is kTrue.
Result<TriBool> EvalPredicate(const Expr& expr, const PropertyGraph& g,
                              const VarTable& vars, const EvalScope& scope);

/// Renders an EvalValue for result tables: elements by name, paths in
/// path(...) notation.
Value ToOutputValue(const EvalValue& v, const PropertyGraph& g);

// ---------------------------------------------------------------------------
// Vectorizable predicate kernels (batch matcher fast path)
// ---------------------------------------------------------------------------

/// The compiled form of an inline WHERE the batch matcher can evaluate over
/// a dense candidate block (docs/vectorized.md): an AND-conjunction of
/// `var.prop <op> literal-or-$param` comparison terms, all over the one
/// element being bound. Compiled at plan-bind time next to the program's
/// CompiledLabelPreds and stored on the Program, so plan-cache hits reuse
/// the kernel like they reuse compiled label predicates. Property keys are
/// pre-resolved to column symbols; evaluation is a column read plus a SQL
/// comparison per term — no expression-tree walk, no EvalScope virtual
/// dispatch, and no per-candidate string hashing.
struct PredicateKernel {
  struct Term {
    /// Column of the pending element's property; kInvalidSymbol when the
    /// graph never interned the key (the column read is then NULL, so the
    /// comparison is UNKNOWN and the term rejects every candidate — the
    /// same verdict the scalar evaluator reaches).
    Symbol prop = kInvalidSymbol;
    BinaryOp op = BinaryOp::kEq;  // Comparison subset only.
    const Value* literal = nullptr;  // Borrowed from the plan's AST.
    std::string param;  // $name when literal == nullptr.
  };
  std::vector<Term> terms;

  /// Compiles `where` over the pending variable `var` (the node/edge being
  /// bound). Returns false when the predicate falls outside the kernel
  /// shape — references to other variables, OR/NOT, arithmetic, aggregates,
  /// `e.*` accesses, element comparisons — in which case the caller must
  /// stay on the scalar evaluator.
  static bool Compile(const Expr& where, int var, const VarTable& vars,
                      const SymbolTable& property_symbols,
                      PredicateKernel* out);
};

/// A kernel with its $parameters resolved for one execution: plain
/// (column, op, value) triples, every Value borrowed (AST literal or
/// Params slot — both outlive the run).
struct BoundPredicateKernel {
  struct Term {
    Symbol prop = kInvalidSymbol;
    BinaryOp op = BinaryOp::kEq;
    const Value* rhs = nullptr;
  };
  std::vector<Term> terms;
};

/// Resolves `kernel`'s parameters against `params`. Returns false when a
/// referenced $param is unbound — the caller falls back to the scalar path,
/// which reproduces the unbound-parameter error exactly. A NULL-bound
/// parameter binds fine (and rejects every candidate, as `= NULL` should).
bool BindPredicateKernel(const PredicateKernel& kernel, const Params* params,
                         BoundPredicateKernel* out);

/// Evaluates a bound kernel against one element (node when `is_node`, edge
/// otherwise): passes iff every term compares kTrue under the engine's SQL
/// three-valued comparison — exactly EvalPredicate's verdict on the same
/// conjunction.
bool EvalKernel(const BoundPredicateKernel& kernel, const PropertyGraph& g,
                bool is_node, uint32_t id);

}  // namespace gpml

#endif  // GPML_EVAL_EXPR_EVAL_H_
