#include "analysis/analyzer.h"

#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "analysis/satisfiability.h"
#include "analysis/type_check.h"
#include "graph/symbol_table.h"

namespace gpml {
namespace analysis {
namespace {

void CollectLabelNames(const LabelExpr& e, std::vector<std::string>* out) {
  if (e.kind == LabelExpr::Kind::kName) out->push_back(e.name);
  if (e.left != nullptr) CollectLabelNames(*e.left, out);
  if (e.right != nullptr) CollectLabelNames(*e.right, out);
}

/// Walks the normalized pattern tracking which sites are *mandatory*: part
/// of every match (not under `?`, a `{0,n}` quantifier, or a union branch).
/// Only unsatisfiable mandatory sites make the whole pattern empty.
class PatternWalker {
 public:
  PatternWalker(const PropertyGraph* graph, DiagnosticList* diags)
      : graph_(graph), diags_(diags) {}

  void WalkDecl(const PathPatternDecl& decl) {
    Walk(decl.pattern, /*mandatory=*/true);
  }

  void CheckWhere(const ExprPtr& where, bool mandatory) {
    if (where == nullptr) return;
    CheckPredicateTypes(*where, diags_, &params_);
    LintProperties(*where);
    if (PredicateUnsatisfiable(where, diags_) && mandatory) {
      always_empty_ = true;
    }
  }

  void LintProperties(const Expr& e) {
    if (graph_ != nullptr && e.kind == Expr::Kind::kPropertyAccess &&
        e.property != "*" &&
        graph_->property_symbols().Find(e.property) == kInvalidSymbol) {
      diags_->Add(kCodeUnknownProperty, Severity::kWarning, e.span,
                  "property '" + e.property +
                      "' does not occur in the bound graph",
                  "the access always yields NULL");
    }
    if (e.lhs != nullptr) LintProperties(*e.lhs);
    if (e.rhs != nullptr) LintProperties(*e.rhs);
    if (e.arg != nullptr) LintProperties(*e.arg);
  }

  ParamConstraintMap* params() { return &params_; }
  bool always_empty() const { return always_empty_; }
  void set_always_empty() { always_empty_ = true; }

 private:
  void CheckLabels(const LabelExprPtr& labels, const SourceSpan& span,
                   bool mandatory) {
    if (labels == nullptr) return;
    std::string conflicted;
    if (LabelConjunctionContradicts(*labels, &conflicted)) {
      diags_->Add(kCodeLabelContradiction, Severity::kWarning, span,
                  "label expression " + labels->ToString() +
                      " both requires and forbids '" + conflicted + "'",
                  "no element can satisfy this conjunction");
      if (mandatory) always_empty_ = true;
    }
    if (graph_ == nullptr) return;
    std::vector<std::string> names;
    CollectLabelNames(*labels, &names);
    for (const std::string& name : names) {
      if (graph_->label_symbols().Find(name) == kInvalidSymbol) {
        diags_->Add(kCodeUnknownLabel, Severity::kWarning, span,
                    "label '" + name + "' does not occur in the bound graph",
                    "check the label for a typo");
      }
    }
  }

  void WalkElement(const PathElement& el, bool mandatory) {
    switch (el.kind) {
      case PathElement::Kind::kNode:
        CheckLabels(el.node.labels, el.node.span, mandatory);
        CheckWhere(el.node.where, mandatory);
        return;
      case PathElement::Kind::kEdge:
        CheckLabels(el.edge.labels, el.edge.span, mandatory);
        CheckWhere(el.edge.where, mandatory);
        return;
      case PathElement::Kind::kParen:
        CheckWhere(el.where, mandatory);
        Walk(el.sub, mandatory);
        return;
      case PathElement::Kind::kQuantified: {
        if (el.max.has_value() && *el.max < el.min) {
          diags_->Add(kCodeQuantifierEmpty, Severity::kWarning,
                      el.quantifier_span,
                      "quantifier admits no repetition count (max " +
                          std::to_string(*el.max) + " < min " +
                          std::to_string(el.min) + ")",
                      "no path can repeat this element");
          if (mandatory) always_empty_ = true;
        }
        bool sub_mandatory = mandatory && el.min > 0;
        CheckWhere(el.where, sub_mandatory);
        Walk(el.sub, sub_mandatory);
        return;
      }
      case PathElement::Kind::kOptional:
        CheckWhere(el.where, /*mandatory=*/false);
        Walk(el.sub, /*mandatory=*/false);
        return;
    }
  }

  void Walk(const PathPatternPtr& p, bool mandatory) {
    if (p == nullptr) return;
    switch (p->kind) {
      case PathPattern::Kind::kConcat:
        for (const PathElement& el : p->elements) WalkElement(el, mandatory);
        return;
      case PathPattern::Kind::kUnion:
      case PathPattern::Kind::kAlternation:
        // A branch is skippable whenever a sibling matches, so nothing
        // inside a union is mandatory for the whole pattern.
        for (const PathPatternPtr& alt : p->alternatives) {
          Walk(alt, /*mandatory=*/false);
        }
        return;
    }
  }

  const PropertyGraph* graph_;
  DiagnosticList* diags_;
  ParamConstraintMap params_;
  bool always_empty_ = false;
};

// Union-find over path-declaration indices, linked by shared variables.
class DeclComponents {
 public:
  explicit DeclComponents(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }
  size_t Count() {
    size_t roots = 0;
    for (size_t i = 0; i < parent_.size(); ++i) {
      if (Find(static_cast<int>(i)) == static_cast<int>(i)) ++roots;
    }
    return roots;
  }

 private:
  std::vector<int> parent_;
};

void LintCartesianProduct(const GraphPattern& normalized, const Analysis& vars,
                          DiagnosticList* diags) {
  if (normalized.paths.size() < 2) return;
  DeclComponents components(normalized.paths.size());
  for (const auto& [name, info] : vars.variables()) {
    for (size_t i = 1; i < info.decls.size(); ++i) {
      components.Union(info.decls[0], info.decls[i]);
    }
  }
  // The postfilter can join declarations too (`WHERE a.id = b.id`): link
  // the declarations of every pair of variables it references.
  if (normalized.where != nullptr) {
    std::vector<std::string> where_vars;
    normalized.where->CollectVariables(&where_vars);
    int first_decl = -1;
    for (const std::string& v : where_vars) {
      if (!vars.Has(v)) continue;
      const VarInfo& info = vars.Get(v);
      if (info.decls.empty()) continue;
      if (first_decl < 0) {
        first_decl = info.decls[0];
      } else {
        components.Union(first_decl, info.decls[0]);
      }
    }
  }
  size_t n = components.Count();
  if (n > 1) {
    diags->Add(kCodeCartesianProduct, Severity::kWarning, SourceSpan{},
               "graph pattern has " + std::to_string(n) +
                   " disconnected path pattern groups",
               "unjoined path patterns multiply into a cartesian product");
  }
}

}  // namespace

QueryAnalysis AnalyzeQuery(const GraphPattern& normalized,
                           const Analysis& vars, const PropertyGraph* graph) {
  QueryAnalysis out;
  PatternWalker walker(graph, &out.diagnostics);
  for (const PathPatternDecl& decl : normalized.paths) {
    walker.WalkDecl(decl);
  }

  // Postfilter (§5.2): mandatory by construction. DropAlwaysTrueConjuncts
  // owns the W102s here, so the satisfiability check mutes its own.
  if (normalized.where != nullptr) {
    CheckPredicateTypes(*normalized.where, &out.diagnostics, walker.params());
    walker.LintProperties(*normalized.where);
    if (PredicateUnsatisfiable(normalized.where, &out.diagnostics,
                               /*emit_always_true=*/false)) {
      walker.set_always_empty();
    } else {
      ExprPtr rewritten =
          DropAlwaysTrueConjuncts(normalized.where, &out.diagnostics);
      if (rewritten != normalized.where) {
        out.rewritten_postfilter = std::move(rewritten);
        out.postfilter_rewritten = true;
      }
    }
  }

  CheckParamContradictions(*walker.params(), &out.diagnostics);
  LintCartesianProduct(normalized, vars, &out.diagnostics);

  out.always_empty = walker.always_empty();
  if (out.always_empty) {
    out.diagnostics.Add(kCodeEmptyPlan, Severity::kNote, SourceSpan{},
                        "pattern compiles to the cached empty plan",
                        "execution returns no rows without touching the "
                        "graph");
  }
  return out;
}

}  // namespace analysis
}  // namespace gpml
