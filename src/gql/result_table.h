#ifndef GPML_GQL_RESULT_TABLE_H_
#define GPML_GQL_RESULT_TABLE_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "catalog/table.h"
#include "common/result.h"
#include "eval/engine.h"

namespace gpml {

/// Projects pattern-matching output through RETURN/COLUMNS items into a
/// relational table — the common machinery behind GQL's RETURN and
/// SQL/PGQ's GRAPH_TABLE ... COLUMNS (Figure 9). Elements render as their
/// external names, paths in path(...) notation, group variables referenced
/// under aggregates per §4.4.
Result<Table> ProjectRows(const MatchOutput& output, const PropertyGraph& g,
                          const std::vector<ReturnItem>& items,
                          bool distinct);

/// Convenience projection when no RETURN list is given: one column per
/// named, non-anonymous element variable (group variables render as a
/// comma-separated list) plus one per path variable.
Result<Table> ProjectAllVariables(const MatchOutput& output,
                                  const PropertyGraph& g);

}  // namespace gpml

#endif  // GPML_GQL_RESULT_TABLE_H_
