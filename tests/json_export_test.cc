// Hardened JSON string escaping and UTF-8 sanitation (gql/json_export.h).
//
// The escaping here is load-bearing for the wire protocol: the server
// serializes every result row with RowToJson and clients diff the raw
// bytes against in-process exports (bench_server), so JsonEscape must
// produce output that (a) always parses under the strict wire parser and
// (b) is always valid UTF-8, whatever bytes a property value holds. The
// exhaustive round-trips below pin that down for every 1- and 2-byte
// input; targeted cases cover the boundary code points and the classic
// invalid-UTF-8 shapes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eval/engine.h"
#include "gql/json_export.h"
#include "graph/graph_builder.h"
#include "graph/sample_graph.h"
#include "server/json.h"

namespace gpml {
namespace {

// Escape, wrap as a JSON string literal, parse with the strict wire
// parser, and return the decoded payload. Any parse failure is fatal: it
// means JsonEscape emitted something the protocol cannot carry.
std::string RoundTrip(const std::string& s) {
  std::string doc = "\"" + JsonEscape(s) + "\"";
  Result<server::JsonValue> parsed = server::ParseJson(doc);
  EXPECT_TRUE(parsed.ok()) << "escaped form does not parse: " << doc << "\n  "
                           << parsed.status().ToString();
  if (!parsed.ok()) return "<unparseable>";
  EXPECT_TRUE(parsed->is_string());
  return parsed->string_v;
}

// --- exhaustive byte-level round-trips -------------------------------------

// Every single-byte string: escaping must yield a parseable JSON literal
// that decodes to the sanitized input (identical for ASCII, U+FFFD for
// stray continuation/lead bytes).
TEST(JsonEscapeTest, ExhaustiveOneByteRoundTrip) {
  for (int b = 0; b < 256; ++b) {
    std::string s(1, static_cast<char>(b));
    std::string decoded = RoundTrip(s);
    EXPECT_EQ(decoded, SanitizeUtf8(s)) << "byte 0x" << std::hex << b;
    EXPECT_TRUE(IsValidUtf8(decoded)) << "byte 0x" << std::hex << b;
  }
}

// Every two-byte string: covers all valid 2-byte UTF-8 sequences, all
// truncated lead bytes followed by ASCII, overlong 2-byte encodings, and
// every control/quote/backslash pairing.
TEST(JsonEscapeTest, ExhaustiveTwoByteRoundTrip) {
  for (int b0 = 0; b0 < 256; ++b0) {
    for (int b1 = 0; b1 < 256; ++b1) {
      std::string s;
      s.push_back(static_cast<char>(b0));
      s.push_back(static_cast<char>(b1));
      std::string doc = "\"" + JsonEscape(s) + "\"";
      Result<server::JsonValue> parsed = server::ParseJson(doc);
      ASSERT_TRUE(parsed.ok())
          << "bytes 0x" << std::hex << b0 << " 0x" << b1 << ": " << doc;
      ASSERT_TRUE(parsed->is_string());
      ASSERT_EQ(parsed->string_v, SanitizeUtf8(s))
          << "bytes 0x" << std::hex << b0 << " 0x" << b1;
    }
  }
}

// --- the escape table itself -----------------------------------------------

TEST(JsonEscapeTest, TwoCharEscapes) {
  EXPECT_EQ(JsonEscape("\""), "\\\"");
  EXPECT_EQ(JsonEscape("\\"), "\\\\");
  EXPECT_EQ(JsonEscape("\b"), "\\b");
  EXPECT_EQ(JsonEscape("\f"), "\\f");
  EXPECT_EQ(JsonEscape("\n"), "\\n");
  EXPECT_EQ(JsonEscape("\r"), "\\r");
  EXPECT_EQ(JsonEscape("\t"), "\\t");
}

TEST(JsonEscapeTest, ControlCharsWithoutShortEscapesUseU00XX) {
  EXPECT_EQ(JsonEscape(std::string(1, '\0')), "\\u0000");
  EXPECT_EQ(JsonEscape("\x01"), "\\u0001");
  EXPECT_EQ(JsonEscape("\x0b"), "\\u000b");  // Vertical tab: no \v in JSON.
  EXPECT_EQ(JsonEscape("\x1f"), "\\u001f");
  // 0x20 and up are not control characters.
  EXPECT_EQ(JsonEscape(" "), " ");
  EXPECT_EQ(JsonEscape("\x7f"), "\x7f");  // DEL is legal raw in JSON.
}

// The expectations extensions_test has always pinned must keep holding.
TEST(JsonEscapeTest, LegacyExpectations) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

TEST(JsonEscapeTest, ValidMultiByteUtf8PassesVerbatim) {
  // Never \u-escaped: the wire stays UTF-8, not ASCII-armored.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
  EXPECT_EQ(JsonEscape("\xe2\x82\xac"), "\xe2\x82\xac");          // €
  EXPECT_EQ(JsonEscape("\xf0\x9f\x98\x80"), "\xf0\x9f\x98\x80");  // 😀
}

// --- UTF-8 boundary code points --------------------------------------------

struct Boundary {
  const char* bytes;
  const char* what;
};

TEST(Utf8Test, BoundaryCodePointsAreValid) {
  const Boundary kValid[] = {
      {"\x7f", "U+007F (last 1-byte)"},
      {"\xc2\x80", "U+0080 (first 2-byte)"},
      {"\xdf\xbf", "U+07FF (last 2-byte)"},
      {"\xe0\xa0\x80", "U+0800 (first 3-byte)"},
      {"\xed\x9f\xbf", "U+D7FF (below surrogates)"},
      {"\xee\x80\x80", "U+E000 (above surrogates)"},
      {"\xef\xbf\xbf", "U+FFFF (last 3-byte)"},
      {"\xf0\x90\x80\x80", "U+10000 (first 4-byte)"},
      {"\xf4\x8f\xbf\xbf", "U+10FFFF (last code point)"},
  };
  for (const Boundary& c : kValid) {
    std::string s = c.bytes;
    EXPECT_TRUE(IsValidUtf8(s)) << c.what;
    EXPECT_EQ(SanitizeUtf8(s), s) << c.what;
    EXPECT_EQ(RoundTrip(s), s) << c.what;
  }
}

TEST(Utf8Test, InvalidSequencesAreRejectedAndSanitized) {
  const Boundary kInvalid[] = {
      {"\x80", "stray continuation byte"},
      {"\xbf", "stray continuation byte (high)"},
      {"\xc0\xaf", "overlong 2-byte '/'"},
      {"\xc1\xbf", "overlong 2-byte"},
      {"\xe0\x80\x80", "overlong 3-byte NUL"},
      {"\xe0\x9f\xbf", "overlong 3-byte U+07FF"},
      {"\xf0\x80\x80\x80", "overlong 4-byte NUL"},
      {"\xf0\x8f\xbf\xbf", "overlong 4-byte U+FFFF"},
      {"\xed\xa0\x80", "surrogate U+D800 (CESU-8)"},
      {"\xed\xbf\xbf", "surrogate U+DFFF (CESU-8)"},
      {"\xf4\x90\x80\x80", "above U+10FFFF"},
      {"\xf5\x80\x80\x80", "lead byte 0xF5 (always invalid)"},
      {"\xfe", "lead byte 0xFE (never valid)"},
      {"\xff", "lead byte 0xFF (never valid)"},
      {"\xc2", "truncated 2-byte sequence"},
      {"\xe2\x82", "truncated 3-byte sequence"},
      {"\xf0\x9f\x98", "truncated 4-byte sequence"},
  };
  const std::string kReplacement = "\xef\xbf\xbd";  // U+FFFD.
  for (const Boundary& c : kInvalid) {
    std::string s = c.bytes;
    EXPECT_FALSE(IsValidUtf8(s)) << c.what;
    std::string sane = SanitizeUtf8(s);
    EXPECT_TRUE(IsValidUtf8(sane)) << c.what;
    // One replacement per invalid byte, nothing else.
    EXPECT_EQ(sane.size(), s.size() * kReplacement.size()) << c.what;
    for (size_t i = 0; i + 3 <= sane.size(); i += 3) {
      EXPECT_EQ(sane.substr(i, 3), kReplacement) << c.what;
    }
  }
}

TEST(Utf8Test, InvalidByteInsideValidTextOnlyReplacesThatByte) {
  std::string s = "ok\x80go\xc3\xa9" + std::string("\xff");
  std::string sane = SanitizeUtf8(s);
  EXPECT_EQ(sane, "ok\xef\xbf\xbdgo\xc3\xa9\xef\xbf\xbd");
  EXPECT_TRUE(IsValidUtf8(sane));
}

TEST(Utf8Test, TruncatedLeadFollowedByAsciiKeepsTheAscii) {
  // 0xE2 opens a 3-byte sequence but 'x' is not a continuation: only the
  // lead byte is replaced; the ASCII resynchronizes.
  EXPECT_EQ(SanitizeUtf8("\xe2x"), "\xef\xbf\xbdx");
}

TEST(Utf8Test, SanitizeIsIdempotent) {
  const char* cases[] = {"plain", "\x80\x80", "\xed\xa0\x80", "a\xffz",
                         "\xf0\x9f\x98\x80"};
  for (const char* c : cases) {
    std::string once = SanitizeUtf8(c);
    EXPECT_EQ(SanitizeUtf8(once), once) << c;
  }
}

TEST(Utf8Test, EmptyAndPureAscii) {
  EXPECT_TRUE(IsValidUtf8(""));
  EXPECT_EQ(SanitizeUtf8(""), "");
  std::string ascii;
  for (int b = 0; b < 0x80; ++b) ascii.push_back(static_cast<char>(b));
  EXPECT_TRUE(IsValidUtf8(ascii));
  EXPECT_EQ(SanitizeUtf8(ascii), ascii);
}

// --- RowToJson vs ExportJson -----------------------------------------------

// RowToJson must emit exactly the element ExportJson puts in its "rows"
// array — this equivalence is what lets the server stream rows one at a
// time while staying byte-identical to a whole-result export.
TEST(RowToJsonTest, RowsMatchExportJsonElements) {
  PropertyGraph g = BuildPaperGraph();
  Engine engine(g);
  Result<MatchOutput> out = engine.Match(
      "MATCH (x:Account)-[t:Transfer]->(y:Account)");
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_FALSE(out->rows.empty());

  std::string doc = ExportJson(*out, g);
  Result<server::JsonValue> parsed = server::ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const server::JsonValue* rows = parsed->Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  ASSERT_EQ(rows->array_v.size(), out->rows.size());
  for (size_t i = 0; i < out->rows.size(); ++i) {
    EXPECT_EQ(rows->array_v[i].RawSpan(doc),
              RowToJson(*out, out->rows[i], g))
        << "row " << i;
  }
}

// Hostile property values survive export: the document still parses and
// every decoded string is valid UTF-8.
TEST(RowToJsonTest, HostilePropertyValuesStayParseable) {
  GraphBuilder b;
  b.AddNode("n1", {"N"},
            {{"ctrl", Value::String(std::string("a\0b\x1f", 4))},
             {"bad", Value::String("x\x80y\xed\xa0\x80z")},
             {"quote", Value::String("say \"hi\"\\done")},
             {"emoji", Value::String("ok \xf0\x9f\x98\x80")}});
  b.AddNode("n2", {"N"});
  b.AddDirectedEdge("e1", "n1", "n2", {"E"},
                    {{"note", Value::String("tab\there\xc2")}});
  Result<PropertyGraph> built = std::move(b).Build();
  ASSERT_TRUE(built.ok()) << built.status();
  Engine engine(*built);
  Result<MatchOutput> out = engine.Match("MATCH (x:N)-[e:E]->(y:N)");
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->rows.size(), 1u);

  std::string row = RowToJson(*out, out->rows[0], *built);
  EXPECT_TRUE(IsValidUtf8(row));
  Result<server::JsonValue> parsed = server::ParseJson(row);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n  " << row;

  const server::JsonValue* x = parsed->Find("x");
  ASSERT_NE(x, nullptr);
  const server::JsonValue* props = x->Find("properties");
  ASSERT_NE(props, nullptr);
  const server::JsonValue* ctrl = props->Find("ctrl");
  ASSERT_NE(ctrl, nullptr);
  EXPECT_EQ(ctrl->string_v, std::string("a\0b\x1f", 4));
  const server::JsonValue* bad = props->Find("bad");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->string_v, SanitizeUtf8("x\x80y\xed\xa0\x80z"));
  const server::JsonValue* quote = props->Find("quote");
  ASSERT_NE(quote, nullptr);
  EXPECT_EQ(quote->string_v, "say \"hi\"\\done");
}

}  // namespace
}  // namespace gpml
