#include "parser/lexer.h"

#include <cctype>

namespace gpml {

const char* TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kEnd: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer";
    case TokenKind::kDouble: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kParam: return "parameter";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kComma: return ",";
    case TokenKind::kDot: return ".";
    case TokenKind::kColon: return ":";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kPipe: return "|";
    case TokenKind::kPipePlusPipe: return "|+|";
    case TokenKind::kAmp: return "&";
    case TokenKind::kBang: return "!";
    case TokenKind::kPercent: return "%";
    case TokenKind::kPlus: return "+";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kQuestion: return "?";
    case TokenKind::kEq: return "=";
    case TokenKind::kNeq: return "<>";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kMinus: return "-";
    case TokenKind::kArrowRight: return "->";
    case TokenKind::kArrowLeft: return "<-";
    case TokenKind::kLeftTilde: return "<~";
    case TokenKind::kTildeRight: return "~>";
    case TokenKind::kLeftRight: return "<->";
    case TokenKind::kTilde: return "~";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&](TokenKind kind, size_t offset, size_t len) {
    Token t;
    t.kind = kind;
    t.offset = offset;
    t.length = len;
    t.text = input.substr(offset, len);
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;

    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      push(TokenKind::kIdent, start, i - start);
      continue;
    }

    // $name parameter placeholder (prepared queries); the token text is the
    // bare name so the parser and signature collection never see the '$'.
    if (c == '$') {
      ++i;
      if (i >= n || !IsIdentStart(input[i])) {
        return Status::SyntaxError("expected parameter name after '$' (offset=" +
                                   std::to_string(start) + ")");
      }
      size_t name_start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      Token t;
      t.kind = TokenKind::kParam;
      t.offset = start;
      t.length = i - start;
      t.text = input.substr(name_start, i - name_start);
      tokens.push_back(std::move(t));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      bool is_double = false;
      // A fractional part requires a digit after the dot, so "1." stays an
      // integer followed by a dot (e.g. in quantifiers "{1,2}" no dot occurs,
      // but property paths never follow numbers anyway).
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      int64_t multiplier = 1;
      // Paper-style magnitude suffixes: 5M = 5,000,000; 10K = 10,000. Only
      // when the suffix is not the start of a longer identifier.
      if (i < n && (input[i] == 'M' || input[i] == 'K') &&
          (i + 1 >= n || !IsIdentChar(input[i + 1]))) {
        multiplier = input[i] == 'M' ? 1'000'000 : 1'000;
        ++i;
      }
      Token t;
      t.offset = start;
      t.length = i - start;
      t.text = input.substr(start, i - start);
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.double_value =
            std::stod(input.substr(start, i - start)) * multiplier;
      } else {
        t.kind = TokenKind::kInt;
        std::string digits = input.substr(start, i - start);
        if (multiplier != 1) digits.pop_back();
        t.int_value = std::stoll(digits) * multiplier;
      }
      tokens.push_back(std::move(t));
      continue;
    }

    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // '' escapes a quote
            value.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::SyntaxError("unterminated string literal (offset=" +
                                   std::to_string(start) + ")");
      }
      Token t;
      t.kind = TokenKind::kString;
      t.offset = start;
      t.length = i - start;
      t.string_value = std::move(value);
      tokens.push_back(std::move(t));
      continue;
    }

    // Operators, maximal munch.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && input[i + 1] == b;
    };
    if (c == '|' && i + 2 < n && input[i + 1] == '+' && input[i + 2] == '|') {
      push(TokenKind::kPipePlusPipe, start, 3);
      i += 3;
      continue;
    }
    if (c == '<' && i + 2 < n && input[i + 1] == '-' && input[i + 2] == '>') {
      push(TokenKind::kLeftRight, start, 3);
      i += 3;
      continue;
    }
    if (two('<', '-')) { push(TokenKind::kArrowLeft, start, 2); i += 2; continue; }
    if (two('<', '~')) { push(TokenKind::kLeftTilde, start, 2); i += 2; continue; }
    if (two('<', '=')) { push(TokenKind::kLe, start, 2); i += 2; continue; }
    if (two('<', '>')) { push(TokenKind::kNeq, start, 2); i += 2; continue; }
    if (two('>', '=')) { push(TokenKind::kGe, start, 2); i += 2; continue; }
    if (two('-', '>')) { push(TokenKind::kArrowRight, start, 2); i += 2; continue; }
    if (two('~', '>')) { push(TokenKind::kTildeRight, start, 2); i += 2; continue; }

    TokenKind kind;
    switch (c) {
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '[': kind = TokenKind::kLBracket; break;
      case ']': kind = TokenKind::kRBracket; break;
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case ',': kind = TokenKind::kComma; break;
      case '.': kind = TokenKind::kDot; break;
      case ':': kind = TokenKind::kColon; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case '|': kind = TokenKind::kPipe; break;
      case '&': kind = TokenKind::kAmp; break;
      case '!': kind = TokenKind::kBang; break;
      case '%': kind = TokenKind::kPercent; break;
      case '+': kind = TokenKind::kPlus; break;
      case '*': kind = TokenKind::kStar; break;
      case '/': kind = TokenKind::kSlash; break;
      case '?': kind = TokenKind::kQuestion; break;
      case '=': kind = TokenKind::kEq; break;
      case '<': kind = TokenKind::kLt; break;
      case '>': kind = TokenKind::kGt; break;
      case '-': kind = TokenKind::kMinus; break;
      case '~': kind = TokenKind::kTilde; break;
      default:
        return Status::SyntaxError(std::string("unexpected character '") + c +
                                   "' (offset=" + std::to_string(start) + ")");
    }
    push(kind, start, 1);
    ++i;
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace gpml
