#include "eval/engine.h"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "eval/nfa.h"
#include "parser/parser.h"
#include "planner/explain.h"
#include "planner/stats.h"
#include "semantics/normalize.h"
#include "semantics/termination.h"

namespace gpml {

std::optional<ElementRef> RowScope::LookupSingleton(int var) const {
  for (size_t i = row_.bindings.size(); i-- > 0;) {
    const ElementRef* el = row_.bindings[i]->LastOf(var);
    if (el != nullptr) return *el;
  }
  return std::nullopt;
}

std::vector<ElementRef> RowScope::CollectGroup(int var) const {
  std::vector<ElementRef> out;
  for (const auto& pb : row_.bindings) {
    std::vector<ElementRef> part = pb->ElementsOf(var);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

const Path* RowScope::LookupPath(int var) const {
  for (size_t i = 0; i < row_.bindings.size(); ++i) {
    if (i < output_.path_vars.size() && output_.path_vars[i] == var) {
      return &row_.bindings[i]->path;
    }
  }
  return nullptr;
}

namespace {

/// Joins the accumulated rows with the next declaration's bindings on the
/// given join variables (hash join; cross product when none).
Result<std::vector<ResultRow>> JoinDecl(
    std::vector<ResultRow> rows,
    const std::vector<std::shared_ptr<const PathBinding>>& bindings,
    const std::vector<int>& join_vars, size_t max_rows) {
  auto key_of_binding =
      [&](const PathBinding& pb) -> std::optional<std::vector<ElementRef>> {
    std::vector<ElementRef> key;
    key.reserve(join_vars.size());
    for (int v : join_vars) {
      const ElementRef* el = pb.LastOf(v);
      if (el == nullptr) return std::nullopt;
      key.push_back(*el);
    }
    return key;
  };
  auto hash_key = [](const std::vector<ElementRef>& key) {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const ElementRef& r : key) h = HashCombine(h, ElementRefHash()(r));
    return h;
  };

  // Index the new declaration's bindings by join key.
  std::unordered_map<size_t, std::vector<size_t>> index;
  std::vector<std::optional<std::vector<ElementRef>>> keys(bindings.size());
  for (size_t i = 0; i < bindings.size(); ++i) {
    keys[i] = key_of_binding(*bindings[i]);
    if (keys[i].has_value()) index[hash_key(*keys[i])].push_back(i);
  }

  std::vector<ResultRow> out;
  for (ResultRow& row : rows) {
    std::optional<std::vector<ElementRef>> row_key;
    if (!join_vars.empty()) {
      std::vector<ElementRef> key;
      key.reserve(join_vars.size());
      bool ok = true;
      for (int v : join_vars) {
        const ElementRef* el = nullptr;
        for (size_t i = row.bindings.size(); i-- > 0 && el == nullptr;) {
          el = row.bindings[i]->LastOf(v);
        }
        if (el == nullptr) {
          ok = false;
          break;
        }
        key.push_back(*el);
      }
      if (!ok) continue;
      row_key = std::move(key);
    }

    auto extend_with = [&](size_t i) -> Status {
      ResultRow nr = row;
      nr.bindings.push_back(bindings[i]);
      out.push_back(std::move(nr));
      if (out.size() > max_rows) {
        return Status::ResourceExhausted(
            "joined result exceeded max_rows; refine the pattern or raise "
            "EngineOptions::max_rows");
      }
      return Status::OK();
    };

    if (!row_key.has_value()) {
      for (size_t i = 0; i < bindings.size(); ++i) {
        GPML_RETURN_IF_ERROR(extend_with(i));
      }
    } else {
      auto it = index.find(hash_key(*row_key));
      if (it == index.end()) continue;
      for (size_t i : it->second) {
        if (*keys[i] == *row_key) {
          GPML_RETURN_IF_ERROR(extend_with(i));
        }
      }
    }
  }
  return out;
}

}  // namespace

Result<MatchOutput> Engine::Match(const std::string& match_text) const {
  GPML_ASSIGN_OR_RETURN(GraphPattern pattern, ParseGraphPattern(match_text));
  return Match(pattern);
}

Result<planner::Plan> Engine::PlanNormalized(const GraphPattern& normalized,
                                             const VarTable& vars) const {
  if (!options_.use_planner) {
    return planner::DirectPlan(normalized, vars);
  }
  std::shared_ptr<const planner::GraphStats> stats =
      planner::GetStats(graph_);
  planner::PlannerConfig config;
  config.use_seed_index = options_.use_seed_index;
  return planner::PlanPattern(normalized, vars, *stats, config);
}

Result<Engine::Prepared> Engine::Prepare(const GraphPattern& pattern) const {
  Prepared p;
  GPML_ASSIGN_OR_RETURN(p.normalized, Normalize(pattern));
  GPML_ASSIGN_OR_RETURN(Analysis analysis, Analyze(p.normalized));
  GPML_RETURN_IF_ERROR(CheckTermination(p.normalized, analysis));
  p.vars = std::make_shared<const VarTable>(analysis);
  return p;
}

size_t Engine::ResolvedThreads() const {
  if (options_.num_threads != 0) return options_.num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

Result<std::shared_ptr<const planner::CachedPlan>> Engine::PreparePlan(
    const GraphPattern& pattern, bool* cache_hit) const {
  *cache_hit = false;
  std::string fingerprint;
  if (options_.use_plan_cache) {
    fingerprint = planner::PlanFingerprint(pattern, options_.use_planner,
                                           options_.use_seed_index);
    if (std::shared_ptr<const planner::CachedPlan> cached =
            planner::LookupPlan(graph_, fingerprint)) {
      *cache_hit = true;
      return cached;
    }
  }
  auto entry = std::make_shared<planner::CachedPlan>();
  GPML_ASSIGN_OR_RETURN(Prepared p, Prepare(pattern));
  entry->normalized = std::move(p.normalized);
  entry->vars = std::move(p.vars);
  GPML_ASSIGN_OR_RETURN(entry->plan,
                        PlanNormalized(entry->normalized, *entry->vars));
  // Compile and graph-bind every declaration's program now, so cache hits
  // skip compilation and label-predicate binding as well as planning. The
  // entry is keyed on the graph identity token, so the bound symbol ids can
  // never be replayed against a different graph.
  entry->programs.reserve(entry->plan.decls.size());
  for (const planner::DeclPlan& dp : entry->plan.decls) {
    GPML_ASSIGN_OR_RETURN(Program program,
                          CompilePattern(dp.decl, *entry->vars));
    BindProgramToGraph(&program, graph_);
    entry->programs.push_back(
        std::make_shared<const Program>(std::move(program)));
  }
  std::shared_ptr<const planner::CachedPlan> shared = std::move(entry);
  if (options_.use_plan_cache) {
    planner::StorePlan(graph_, fingerprint, shared);
  }
  return shared;
}

Result<planner::Plan> Engine::Plan(const GraphPattern& pattern) const {
  bool cache_hit = false;
  GPML_ASSIGN_OR_RETURN(std::shared_ptr<const planner::CachedPlan> prepared,
                        PreparePlan(pattern, &cache_hit));
  return prepared->plan;
}

Result<std::string> Engine::Explain(const std::string& match_text) const {
  GPML_ASSIGN_OR_RETURN(GraphPattern pattern, ParseGraphPattern(match_text));
  return Explain(pattern);
}

Result<std::string> Engine::Explain(const GraphPattern& pattern) const {
  bool cache_hit = false;
  GPML_ASSIGN_OR_RETURN(std::shared_ptr<const planner::CachedPlan> prepared,
                        PreparePlan(pattern, &cache_hit));
  planner::ExplainExec exec;
  exec.threads = ResolvedThreads();
  exec.cached = cache_hit;
  return planner::ExplainPlan(prepared->plan, *prepared->vars,
                              /*stats=*/nullptr, &exec);
}

Result<MatchOutput> Engine::Match(const GraphPattern& pattern) const {
  MatchOutput out;
  if (options_.metrics != nullptr) *options_.metrics = {};

  bool cache_hit = false;
  GPML_ASSIGN_OR_RETURN(std::shared_ptr<const planner::CachedPlan> prepared,
                        PreparePlan(pattern, &cache_hit));
  out.normalized = prepared->normalized;
  out.vars = prepared->vars;
  const planner::Plan& plan = prepared->plan;

  const size_t num_workers = ResolvedThreads();
  MatcherOptions matcher_options = options_.matcher;
  matcher_options.num_threads = num_workers;
  matcher_options.use_csr = options_.use_csr;

  if (options_.metrics != nullptr) {
    options_.metrics->threads = num_workers;
    if (cache_hit) {
      options_.metrics->plan_cache_hits = 1;
    } else {
      options_.metrics->plan_cache_misses = 1;
    }
  }

  // Evaluate every path declaration independently (§6.5) in plan order,
  // then join. The planner may mirror a declaration (anchor at its right
  // end) or seed it from the bindings of earlier declarations; both are
  // result-preserving (see docs/planner.md).
  const size_t num_decls = plan.decls.size();
  out.path_vars.assign(num_decls, -1);
  bool first = true;
  std::vector<ResultRow> rows;
  for (size_t plan_pos = 0; plan_pos < num_decls; ++plan_pos) {
    const planner::DeclPlan& dp = plan.decls[plan_pos];
    const PathPatternDecl& decl = dp.decl;
    out.path_vars[static_cast<size_t>(dp.decl_index)] =
        decl.path_var.empty() ? -1 : out.vars->Find(decl.path_var);

    // Compiled with the plan (and graph-bound); cache hits reuse it as-is.
    const Program& program = *prepared->programs[plan_pos];

    // Restricted seeding: the anchor variable is already bound by earlier
    // declarations, so only those nodes can start a joinable match; failing
    // that, an anchor with an inline equality predicate seeds from the
    // (label, prop) = value hash index — both restrictions only drop starts
    // the pattern's first node check would reject anyway.
    std::vector<NodeId> seed_filter;
    const std::vector<NodeId>* filter = nullptr;
    bool use_filter = !first && dp.seed_bound_var >= 0;
    bool use_index = false;
    if (use_filter) {
      std::unordered_set<NodeId> distinct;
      for (const ResultRow& row : rows) {
        for (size_t i = row.bindings.size(); i-- > 0;) {
          const ElementRef* el = row.bindings[i]->LastOf(dp.seed_bound_var);
          if (el != nullptr) {
            if (el->is_node()) distinct.insert(el->id);
            break;
          }
        }
      }
      seed_filter.assign(distinct.begin(), distinct.end());
      std::sort(seed_filter.begin(), seed_filter.end());
      filter = &seed_filter;
    } else if (plan.planner_used && dp.anchor.has_index()) {
      use_index = true;
      filter = &graph_.IndexedNodes(dp.anchor.label, dp.anchor.index_prop,
                                    dp.anchor.index_value);
    }

    MatchStats match_stats;
    GPML_ASSIGN_OR_RETURN(
        MatchSet match,
        RunPattern(graph_, program, *out.vars, matcher_options, filter,
                   &match_stats));
    if (dp.reversed) planner::UnreverseMatchSet(&match);

    if (options_.metrics != nullptr) {
      EngineMetrics& m = *options_.metrics;
      ++m.decls;
      m.seeded_nodes += match_stats.seeds;
      m.matcher_steps += match_stats.steps;
      if (dp.reversed) ++m.reversed_decls;
      if (use_filter) ++m.seed_filtered_decls;
      if (use_index) ++m.index_seeded_decls;
    }

    std::vector<std::shared_ptr<const PathBinding>> bindings;
    bindings.reserve(match.bindings.size());
    for (PathBinding& pb : match.bindings) {
      bindings.push_back(std::make_shared<const PathBinding>(std::move(pb)));
    }

    if (first) {
      rows.reserve(bindings.size());
      for (auto& b : bindings) {
        ResultRow r;
        r.bindings.push_back(std::move(b));
        rows.push_back(std::move(r));
      }
      first = false;
      continue;
    }

    GPML_ASSIGN_OR_RETURN(
        rows, JoinDecl(std::move(rows), bindings, dp.join_vars,
                       options_.max_rows));
  }

  // Row bindings were accumulated in plan execution order; restore source
  // declaration order so hosts and RowScope index them by declaration.
  bool reordered = false;
  for (size_t i = 0; i < num_decls; ++i) {
    if (plan.decls[i].decl_index != static_cast<int>(i)) reordered = true;
  }
  if (reordered) {
    for (ResultRow& row : rows) {
      std::vector<std::shared_ptr<const PathBinding>> ordered(num_decls);
      for (size_t i = 0; i < num_decls; ++i) {
        ordered[static_cast<size_t>(plan.decls[i].decl_index)] =
            std::move(row.bindings[i]);
      }
      row.bindings = std::move(ordered);
    }
  }

  // Match mode (§7.1 Language Opportunity): DIFFERENT EDGES requires all
  // matched edges across the whole graph pattern to be pairwise distinct;
  // DIFFERENT NODES likewise for nodes. The default (REPEATABLE ELEMENTS)
  // is the paper's homomorphism semantics.
  if (out.normalized.mode != MatchMode::kRepeatableElements) {
    // Distinctness is over logical bindings: all occurrences of one named
    // singleton variable are a single binding (equi-joins assert equality,
    // they must not self-collide), while group-variable iterations and
    // anonymous positions each count separately — so a walk reusing an
    // edge across quantifier iterations is rejected under DIFFERENT EDGES.
    bool edges_only = out.normalized.mode == MatchMode::kDifferentEdges;
    std::vector<ResultRow> kept;
    kept.reserve(rows.size());
    for (ResultRow& row : rows) {
      std::unordered_set<uint32_t> seen;
      std::unordered_set<uint64_t> singleton_bindings;
      bool ok = true;
      for (const auto& pb : row.bindings) {
        for (const ElementaryBinding& b : pb->reduced) {
          if (b.element.is_edge() != edges_only) continue;
          const VarInfo& vi = out.vars->info(b.var);
          if (!vi.group && !vi.anonymous) {
            uint64_t key = (static_cast<uint64_t>(b.var) << 32) |
                           b.element.id;
            if (!singleton_bindings.insert(key).second) continue;
          }
          if (!seen.insert(b.element.id).second) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
      if (ok) kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }

  // Final WHERE: the postfilter of §5.2.
  if (out.normalized.where != nullptr) {
    std::vector<ResultRow> filtered;
    for (ResultRow& row : rows) {
      RowScope scope(out, row);
      GPML_ASSIGN_OR_RETURN(
          TriBool ok,
          EvalPredicate(*out.normalized.where, graph_, *out.vars, scope));
      if (ok == TriBool::kTrue) filtered.push_back(std::move(row));
    }
    rows = std::move(filtered);
  }

  out.rows = std::move(rows);
  return out;
}

}  // namespace gpml
